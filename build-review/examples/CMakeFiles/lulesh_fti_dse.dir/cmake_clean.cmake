file(REMOVE_RECURSE
  "CMakeFiles/lulesh_fti_dse.dir/lulesh_fti_dse.cpp.o"
  "CMakeFiles/lulesh_fti_dse.dir/lulesh_fti_dse.cpp.o.d"
  "lulesh_fti_dse"
  "lulesh_fti_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lulesh_fti_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
