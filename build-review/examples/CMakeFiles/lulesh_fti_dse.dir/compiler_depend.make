# Empty compiler generated dependencies file for lulesh_fti_dse.
# This may be replaced when dependencies are built.
