# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lulesh_fti_dse.
