file(REMOVE_RECURSE
  "CMakeFiles/network_dse.dir/network_dse.cpp.o"
  "CMakeFiles/network_dse.dir/network_dse.cpp.o.d"
  "network_dse"
  "network_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
