# Empty compiler generated dependencies file for network_dse.
# This may be replaced when dependencies are built.
