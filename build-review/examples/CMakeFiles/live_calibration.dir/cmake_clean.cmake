file(REMOVE_RECURSE
  "CMakeFiles/live_calibration.dir/live_calibration.cpp.o"
  "CMakeFiles/live_calibration.dir/live_calibration.cpp.o.d"
  "live_calibration"
  "live_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
