# Empty compiler generated dependencies file for live_calibration.
# This may be replaced when dependencies are built.
