file(REMOVE_RECURSE
  "CMakeFiles/fault_injection_study.dir/fault_injection_study.cpp.o"
  "CMakeFiles/fault_injection_study.dir/fault_injection_study.cpp.o.d"
  "fault_injection_study"
  "fault_injection_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_injection_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
