# Empty compiler generated dependencies file for fault_injection_study.
# This may be replaced when dependencies are built.
