file(REMOVE_RECURSE
  "CMakeFiles/executable_resilience.dir/executable_resilience.cpp.o"
  "CMakeFiles/executable_resilience.dir/executable_resilience.cpp.o.d"
  "executable_resilience"
  "executable_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executable_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
