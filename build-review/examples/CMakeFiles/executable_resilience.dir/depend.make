# Empty dependencies file for executable_resilience.
# This may be replaced when dependencies are built.
