# Empty dependencies file for notional_scaling.
# This may be replaced when dependencies are built.
