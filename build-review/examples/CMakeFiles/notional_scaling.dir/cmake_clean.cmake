file(REMOVE_RECURSE
  "CMakeFiles/notional_scaling.dir/notional_scaling.cpp.o"
  "CMakeFiles/notional_scaling.dir/notional_scaling.cpp.o.d"
  "notional_scaling"
  "notional_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notional_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
