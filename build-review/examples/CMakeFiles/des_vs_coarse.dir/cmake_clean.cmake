file(REMOVE_RECURSE
  "CMakeFiles/des_vs_coarse.dir/des_vs_coarse.cpp.o"
  "CMakeFiles/des_vs_coarse.dir/des_vs_coarse.cpp.o.d"
  "des_vs_coarse"
  "des_vs_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_vs_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
