# Empty compiler generated dependencies file for des_vs_coarse.
# This may be replaced when dependencies are built.
