# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lulesh_fti_dse "/root/repo/build-review/examples/lulesh_fti_dse")
set_tests_properties(example_lulesh_fti_dse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_notional_scaling "/root/repo/build-review/examples/notional_scaling")
set_tests_properties(example_notional_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_injection_study "/root/repo/build-review/examples/fault_injection_study")
set_tests_properties(example_fault_injection_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_des_vs_coarse "/root/repo/build-review/examples/des_vs_coarse")
set_tests_properties(example_des_vs_coarse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_dse "/root/repo/build-review/examples/network_dse")
set_tests_properties(example_network_dse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_calibration "/root/repo/build-review/examples/live_calibration")
set_tests_properties(example_live_calibration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_executable_resilience "/root/repo/build-review/examples/executable_resilience")
set_tests_properties(example_executable_resilience PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
