file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_fullsystem.dir/bench_fig7_8_fullsystem.cpp.o"
  "CMakeFiles/bench_fig7_8_fullsystem.dir/bench_fig7_8_fullsystem.cpp.o.d"
  "bench_fig7_8_fullsystem"
  "bench_fig7_8_fullsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_fullsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
