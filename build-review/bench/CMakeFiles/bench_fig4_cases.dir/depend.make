# Empty dependencies file for bench_fig4_cases.
# This may be replaced when dependencies are built.
