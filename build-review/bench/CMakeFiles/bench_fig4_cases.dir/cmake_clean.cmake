file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cases.dir/bench_fig4_cases.cpp.o"
  "CMakeFiles/bench_fig4_cases.dir/bench_fig4_cases.cpp.o.d"
  "bench_fig4_cases"
  "bench_fig4_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
