# Empty compiler generated dependencies file for bench_ext_l3l4.
# This may be replaced when dependencies are built.
