file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_l3l4.dir/bench_ext_l3l4.cpp.o"
  "CMakeFiles/bench_ext_l3l4.dir/bench_ext_l3l4.cpp.o.d"
  "bench_ext_l3l4"
  "bench_ext_l3l4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_l3l4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
