# Empty compiler generated dependencies file for bench_ext_symreg.
# This may be replaced when dependencies are built.
