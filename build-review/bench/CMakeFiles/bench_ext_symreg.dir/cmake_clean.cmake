file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_symreg.dir/bench_ext_symreg.cpp.o"
  "CMakeFiles/bench_ext_symreg.dir/bench_ext_symreg.cpp.o.d"
  "bench_ext_symreg"
  "bench_ext_symreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_symreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
