file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_vulcan.dir/bench_fig1_vulcan.cpp.o"
  "CMakeFiles/bench_fig1_vulcan.dir/bench_fig1_vulcan.cpp.o.d"
  "bench_fig1_vulcan"
  "bench_fig1_vulcan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_vulcan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
