# Empty dependencies file for bench_ext_pool.
# This may be replaced when dependencies are built.
