file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pool.dir/bench_ext_pool.cpp.o"
  "CMakeFiles/bench_ext_pool.dir/bench_ext_pool.cpp.o.d"
  "bench_ext_pool"
  "bench_ext_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
