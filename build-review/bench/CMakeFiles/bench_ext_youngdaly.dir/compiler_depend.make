# Empty compiler generated dependencies file for bench_ext_youngdaly.
# This may be replaced when dependencies are built.
