file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_youngdaly.dir/bench_ext_youngdaly.cpp.o"
  "CMakeFiles/bench_ext_youngdaly.dir/bench_ext_youngdaly.cpp.o.d"
  "bench_ext_youngdaly"
  "bench_ext_youngdaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_youngdaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
