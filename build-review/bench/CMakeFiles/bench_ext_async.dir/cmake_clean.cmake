file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_async.dir/bench_ext_async.cpp.o"
  "CMakeFiles/bench_ext_async.dir/bench_ext_async.cpp.o.d"
  "bench_ext_async"
  "bench_ext_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
