file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_analytic.dir/bench_ext_analytic.cpp.o"
  "CMakeFiles/bench_ext_analytic.dir/bench_ext_analytic.cpp.o.d"
  "bench_ext_analytic"
  "bench_ext_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
