# Empty compiler generated dependencies file for bench_ext_svc.
# This may be replaced when dependencies are built.
