file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_svc.dir/bench_ext_svc.cpp.o"
  "CMakeFiles/bench_ext_svc.dir/bench_ext_svc.cpp.o.d"
  "bench_ext_svc"
  "bench_ext_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
