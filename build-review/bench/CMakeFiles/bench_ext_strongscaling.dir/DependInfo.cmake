
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_strongscaling.cpp" "bench/CMakeFiles/bench_ext_strongscaling.dir/bench_ext_strongscaling.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_strongscaling.dir/bench_ext_strongscaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/apps/CMakeFiles/ftbesst_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/ftbesst_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analytic/CMakeFiles/ftbesst_analytic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ftbesst_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ftbesst_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/ftbesst_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ft/CMakeFiles/ftbesst_ft.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
