# Empty compiler generated dependencies file for bench_ext_strongscaling.
# This may be replaced when dependencies are built.
