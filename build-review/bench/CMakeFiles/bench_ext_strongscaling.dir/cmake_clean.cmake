file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_strongscaling.dir/bench_ext_strongscaling.cpp.o"
  "CMakeFiles/bench_ext_strongscaling.dir/bench_ext_strongscaling.cpp.o.d"
  "bench_ext_strongscaling"
  "bench_ext_strongscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_strongscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
