file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_network.dir/bench_ext_network.cpp.o"
  "CMakeFiles/bench_ext_network.dir/bench_ext_network.cpp.o.d"
  "bench_ext_network"
  "bench_ext_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
