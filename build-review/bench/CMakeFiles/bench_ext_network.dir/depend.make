# Empty dependencies file for bench_ext_network.
# This may be replaced when dependencies are built.
