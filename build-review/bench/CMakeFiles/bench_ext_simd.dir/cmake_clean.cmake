file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_simd.dir/bench_ext_simd.cpp.o"
  "CMakeFiles/bench_ext_simd.dir/bench_ext_simd.cpp.o.d"
  "bench_ext_simd"
  "bench_ext_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
