# Empty dependencies file for bench_ext_simd.
# This may be replaced when dependencies are built.
