file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_modelcmp.dir/bench_ext_modelcmp.cpp.o"
  "CMakeFiles/bench_ext_modelcmp.dir/bench_ext_modelcmp.cpp.o.d"
  "bench_ext_modelcmp"
  "bench_ext_modelcmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_modelcmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
