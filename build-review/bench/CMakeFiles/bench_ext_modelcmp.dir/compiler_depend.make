# Empty compiler generated dependencies file for bench_ext_modelcmp.
# This may be replaced when dependencies are built.
