file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pareto.dir/bench_ext_pareto.cpp.o"
  "CMakeFiles/bench_ext_pareto.dir/bench_ext_pareto.cpp.o.d"
  "bench_ext_pareto"
  "bench_ext_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
