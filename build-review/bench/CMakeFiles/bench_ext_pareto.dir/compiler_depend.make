# Empty compiler generated dependencies file for bench_ext_pareto.
# This may be replaced when dependencies are built.
