file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_levels.dir/bench_table1_levels.cpp.o"
  "CMakeFiles/bench_table1_levels.dir/bench_table1_levels.cpp.o.d"
  "bench_table1_levels"
  "bench_table1_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
