# Empty dependencies file for bench_ext_obs.
# This may be replaced when dependencies are built.
