file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_obs.dir/bench_ext_obs.cpp.o"
  "CMakeFiles/bench_ext_obs.dir/bench_ext_obs.cpp.o.d"
  "bench_ext_obs"
  "bench_ext_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
