# CMake generated Testfile for 
# Source directory: /root/repo/tools/fuzz
# Build directory: /root/repo/build-review/tools/fuzz
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
