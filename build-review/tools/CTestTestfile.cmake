# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_plan "/root/repo/build-review/tools/ftbesst" "plan" "--node-mtbf-hours" "24" "--nodes" "512" "--work-hours" "24" "--downtime" "10")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pipeline "/usr/bin/cmake" "-DFTBESST=/root/repo/build-review/tools/ftbesst" "-DWORK_DIR=/root/repo/build-review/tools/cli_scratch" "-P" "/root/repo/tools/cli_pipeline_test.cmake")
set_tests_properties(cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_experiment "/root/repo/build-review/tools/ftbesst" "run-experiment" "--config" "/root/repo/examples/experiment.ini")
set_tests_properties(cli_run_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify_differential "/root/repo/build-review/tools/ftbesst" "verify" "--differential" "200" "--seed" "1")
set_tests_properties(cli_verify_differential PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify_corpus "/root/repo/build-review/tools/ftbesst" "verify" "--corpus" "/root/repo/tests/corpus")
set_tests_properties(cli_verify_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
subdirs("fuzz")
