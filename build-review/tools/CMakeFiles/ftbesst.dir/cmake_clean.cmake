file(REMOVE_RECURSE
  "CMakeFiles/ftbesst.dir/ftbesst_cli.cpp.o"
  "CMakeFiles/ftbesst.dir/ftbesst_cli.cpp.o.d"
  "ftbesst"
  "ftbesst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
