# Empty compiler generated dependencies file for ftbesst.
# This may be replaced when dependencies are built.
