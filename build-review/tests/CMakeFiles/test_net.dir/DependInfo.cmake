
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_adaptive_routing.cpp" "tests/CMakeFiles/test_net.dir/net/test_adaptive_routing.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_adaptive_routing.cpp.o.d"
  "/root/repo/tests/net/test_comm.cpp" "tests/CMakeFiles/test_net.dir/net/test_comm.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_comm.cpp.o.d"
  "/root/repo/tests/net/test_des_network.cpp" "tests/CMakeFiles/test_net.dir/net/test_des_network.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_des_network.cpp.o.d"
  "/root/repo/tests/net/test_des_torus.cpp" "tests/CMakeFiles/test_net.dir/net/test_des_torus.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_des_torus.cpp.o.d"
  "/root/repo/tests/net/test_topology.cpp" "tests/CMakeFiles/test_net.dir/net/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/net/CMakeFiles/ftbesst_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ftbesst_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
