# Empty dependencies file for test_ft_slow.
# This may be replaced when dependencies are built.
