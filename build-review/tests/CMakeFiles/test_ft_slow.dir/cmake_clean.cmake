file(REMOVE_RECURSE
  "CMakeFiles/test_ft_slow.dir/ft/test_fti_runtime_stress.cpp.o"
  "CMakeFiles/test_ft_slow.dir/ft/test_fti_runtime_stress.cpp.o.d"
  "test_ft_slow"
  "test_ft_slow.pdb"
  "test_ft_slow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ft_slow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
