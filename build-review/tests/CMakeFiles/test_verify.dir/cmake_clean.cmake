file(REMOVE_RECURSE
  "CMakeFiles/test_verify.dir/verify/test_corpus.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_corpus.cpp.o.d"
  "CMakeFiles/test_verify.dir/verify/test_differential.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_differential.cpp.o.d"
  "CMakeFiles/test_verify.dir/verify/test_fuzz.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_fuzz.cpp.o.d"
  "CMakeFiles/test_verify.dir/verify/test_scenario.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_scenario.cpp.o.d"
  "CMakeFiles/test_verify.dir/verify/test_verify_obs.cpp.o"
  "CMakeFiles/test_verify.dir/verify/test_verify_obs.cpp.o.d"
  "test_verify"
  "test_verify.pdb"
  "test_verify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
