
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ft/test_fault_log.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_fault_log.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_fault_log.cpp.o.d"
  "/root/repo/tests/ft/test_fault_stats.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_fault_stats.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_fault_stats.cpp.o.d"
  "/root/repo/tests/ft/test_faults_younddaly.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_faults_younddaly.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_faults_younddaly.cpp.o.d"
  "/root/repo/tests/ft/test_fti.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_fti.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_fti.cpp.o.d"
  "/root/repo/tests/ft/test_fti_runtime.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_fti_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_fti_runtime.cpp.o.d"
  "/root/repo/tests/ft/test_gf256.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_gf256.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_gf256.cpp.o.d"
  "/root/repo/tests/ft/test_multilevel.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_multilevel.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_multilevel.cpp.o.d"
  "/root/repo/tests/ft/test_reed_solomon.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_reed_solomon.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_reed_solomon.cpp.o.d"
  "/root/repo/tests/ft/test_weibull.cpp" "tests/CMakeFiles/test_ft.dir/ft/test_weibull.cpp.o" "gcc" "tests/CMakeFiles/test_ft.dir/ft/test_weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ft/CMakeFiles/ftbesst_ft.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
