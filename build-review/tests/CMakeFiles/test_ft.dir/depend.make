# Empty dependencies file for test_ft.
# This may be replaced when dependencies are built.
