file(REMOVE_RECURSE
  "CMakeFiles/test_ft.dir/ft/test_fault_log.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_fault_log.cpp.o.d"
  "CMakeFiles/test_ft.dir/ft/test_fault_stats.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_fault_stats.cpp.o.d"
  "CMakeFiles/test_ft.dir/ft/test_faults_younddaly.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_faults_younddaly.cpp.o.d"
  "CMakeFiles/test_ft.dir/ft/test_fti.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_fti.cpp.o.d"
  "CMakeFiles/test_ft.dir/ft/test_fti_runtime.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_fti_runtime.cpp.o.d"
  "CMakeFiles/test_ft.dir/ft/test_gf256.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_gf256.cpp.o.d"
  "CMakeFiles/test_ft.dir/ft/test_multilevel.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_multilevel.cpp.o.d"
  "CMakeFiles/test_ft.dir/ft/test_reed_solomon.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_reed_solomon.cpp.o.d"
  "CMakeFiles/test_ft.dir/ft/test_weibull.cpp.o"
  "CMakeFiles/test_ft.dir/ft/test_weibull.cpp.o.d"
  "test_ft"
  "test_ft.pdb"
  "test_ft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
