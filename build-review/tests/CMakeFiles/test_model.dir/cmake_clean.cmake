file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/test_crossval.cpp.o"
  "CMakeFiles/test_model.dir/model/test_crossval.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_dataset.cpp.o"
  "CMakeFiles/test_model.dir/model/test_dataset.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_expr.cpp.o"
  "CMakeFiles/test_model.dir/model/test_expr.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_expr_program.cpp.o"
  "CMakeFiles/test_model.dir/model/test_expr_program.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_expr_simd.cpp.o"
  "CMakeFiles/test_model.dir/model/test_expr_simd.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_feature_model.cpp.o"
  "CMakeFiles/test_model.dir/model/test_feature_model.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_linalg.cpp.o"
  "CMakeFiles/test_model.dir/model/test_linalg.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_loglog.cpp.o"
  "CMakeFiles/test_model.dir/model/test_loglog.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_powerlaw.cpp.o"
  "CMakeFiles/test_model.dir/model/test_powerlaw.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_serialize.cpp.o"
  "CMakeFiles/test_model.dir/model/test_serialize.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_simplify.cpp.o"
  "CMakeFiles/test_model.dir/model/test_simplify.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_symreg.cpp.o"
  "CMakeFiles/test_model.dir/model/test_symreg.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_table_loglog_method.cpp.o"
  "CMakeFiles/test_model.dir/model/test_table_loglog_method.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_table_model.cpp.o"
  "CMakeFiles/test_model.dir/model/test_table_model.cpp.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
