
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/test_crossval.cpp" "tests/CMakeFiles/test_model.dir/model/test_crossval.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_crossval.cpp.o.d"
  "/root/repo/tests/model/test_dataset.cpp" "tests/CMakeFiles/test_model.dir/model/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_dataset.cpp.o.d"
  "/root/repo/tests/model/test_expr.cpp" "tests/CMakeFiles/test_model.dir/model/test_expr.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_expr.cpp.o.d"
  "/root/repo/tests/model/test_expr_program.cpp" "tests/CMakeFiles/test_model.dir/model/test_expr_program.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_expr_program.cpp.o.d"
  "/root/repo/tests/model/test_expr_simd.cpp" "tests/CMakeFiles/test_model.dir/model/test_expr_simd.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_expr_simd.cpp.o.d"
  "/root/repo/tests/model/test_feature_model.cpp" "tests/CMakeFiles/test_model.dir/model/test_feature_model.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_feature_model.cpp.o.d"
  "/root/repo/tests/model/test_linalg.cpp" "tests/CMakeFiles/test_model.dir/model/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_linalg.cpp.o.d"
  "/root/repo/tests/model/test_loglog.cpp" "tests/CMakeFiles/test_model.dir/model/test_loglog.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_loglog.cpp.o.d"
  "/root/repo/tests/model/test_powerlaw.cpp" "tests/CMakeFiles/test_model.dir/model/test_powerlaw.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_powerlaw.cpp.o.d"
  "/root/repo/tests/model/test_serialize.cpp" "tests/CMakeFiles/test_model.dir/model/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_serialize.cpp.o.d"
  "/root/repo/tests/model/test_simplify.cpp" "tests/CMakeFiles/test_model.dir/model/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_simplify.cpp.o.d"
  "/root/repo/tests/model/test_symreg.cpp" "tests/CMakeFiles/test_model.dir/model/test_symreg.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_symreg.cpp.o.d"
  "/root/repo/tests/model/test_table_loglog_method.cpp" "tests/CMakeFiles/test_model.dir/model/test_table_loglog_method.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_table_loglog_method.cpp.o.d"
  "/root/repo/tests/model/test_table_model.cpp" "tests/CMakeFiles/test_model.dir/model/test_table_model.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/test_table_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/model/CMakeFiles/ftbesst_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
