file(REMOVE_RECURSE
  "CMakeFiles/test_svc.dir/svc/test_cache.cpp.o"
  "CMakeFiles/test_svc.dir/svc/test_cache.cpp.o.d"
  "CMakeFiles/test_svc.dir/svc/test_json.cpp.o"
  "CMakeFiles/test_svc.dir/svc/test_json.cpp.o.d"
  "CMakeFiles/test_svc.dir/svc/test_registry.cpp.o"
  "CMakeFiles/test_svc.dir/svc/test_registry.cpp.o.d"
  "CMakeFiles/test_svc.dir/svc/test_server.cpp.o"
  "CMakeFiles/test_svc.dir/svc/test_server.cpp.o.d"
  "CMakeFiles/test_svc.dir/svc/test_wire.cpp.o"
  "CMakeFiles/test_svc.dir/svc/test_wire.cpp.o.d"
  "test_svc"
  "test_svc.pdb"
  "test_svc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
