file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_lulesh.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_lulesh.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_minihydro.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_minihydro.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_stencil3d.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_stencil3d.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_strong_scaling.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_strong_scaling.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_testbed.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_testbed.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
