# Empty dependencies file for test_svc_slow.
# This may be replaced when dependencies are built.
