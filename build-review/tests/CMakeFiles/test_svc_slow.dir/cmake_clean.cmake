file(REMOVE_RECURSE
  "CMakeFiles/test_svc_slow.dir/svc/test_server_soak.cpp.o"
  "CMakeFiles/test_svc_slow.dir/svc/test_server_soak.cpp.o.d"
  "test_svc_slow"
  "test_svc_slow.pdb"
  "test_svc_slow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svc_slow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
