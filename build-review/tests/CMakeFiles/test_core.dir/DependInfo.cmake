
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_arch.cpp" "tests/CMakeFiles/test_core.dir/core/test_arch.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_arch.cpp.o.d"
  "/root/repo/tests/core/test_async_checkpoint.cpp" "tests/CMakeFiles/test_core.dir/core/test_async_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_async_checkpoint.cpp.o.d"
  "/root/repo/tests/core/test_beo.cpp" "tests/CMakeFiles/test_core.dir/core/test_beo.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_beo.cpp.o.d"
  "/root/repo/tests/core/test_des_network_engine.cpp" "tests/CMakeFiles/test_core.dir/core/test_des_network_engine.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_des_network_engine.cpp.o.d"
  "/root/repo/tests/core/test_determinism.cpp" "tests/CMakeFiles/test_core.dir/core/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_determinism.cpp.o.d"
  "/root/repo/tests/core/test_engine_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_engine_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_engine_properties.cpp.o.d"
  "/root/repo/tests/core/test_engines.cpp" "tests/CMakeFiles/test_core.dir/core/test_engines.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_engines.cpp.o.d"
  "/root/repo/tests/core/test_fault_replay.cpp" "tests/CMakeFiles/test_core.dir/core/test_fault_replay.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fault_replay.cpp.o.d"
  "/root/repo/tests/core/test_pruning.cpp" "tests/CMakeFiles/test_core.dir/core/test_pruning.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pruning.cpp.o.d"
  "/root/repo/tests/core/test_scenario_plan.cpp" "tests/CMakeFiles/test_core.dir/core/test_scenario_plan.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scenario_plan.cpp.o.d"
  "/root/repo/tests/core/test_trace.cpp" "tests/CMakeFiles/test_core.dir/core/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  "/root/repo/tests/core/test_workflow.cpp" "tests/CMakeFiles/test_core.dir/core/test_workflow.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ftbesst_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/apps/CMakeFiles/ftbesst_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ftbesst_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ftbesst_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/ftbesst_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ft/CMakeFiles/ftbesst_ft.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
