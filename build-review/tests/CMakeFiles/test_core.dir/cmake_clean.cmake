file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_arch.cpp.o"
  "CMakeFiles/test_core.dir/core/test_arch.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_async_checkpoint.cpp.o"
  "CMakeFiles/test_core.dir/core/test_async_checkpoint.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_beo.cpp.o"
  "CMakeFiles/test_core.dir/core/test_beo.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_des_network_engine.cpp.o"
  "CMakeFiles/test_core.dir/core/test_des_network_engine.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_determinism.cpp.o"
  "CMakeFiles/test_core.dir/core/test_determinism.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_engine_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_engine_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_engines.cpp.o"
  "CMakeFiles/test_core.dir/core/test_engines.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fault_replay.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fault_replay.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pruning.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pruning.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scenario_plan.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scenario_plan.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_workflow.cpp.o"
  "CMakeFiles/test_core.dir/core/test_workflow.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
