
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_event_heap.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_event_heap.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event_heap.cpp.o.d"
  "/root/repo/tests/sim/test_parallel.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_parallel.cpp.o.d"
  "/root/repo/tests/sim/test_payload_pool.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_payload_pool.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_payload_pool.cpp.o.d"
  "/root/repo/tests/sim/test_sim_edge.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_sim_edge.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sim_edge.cpp.o.d"
  "/root/repo/tests/sim/test_simulation.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulation.cpp.o.d"
  "/root/repo/tests/sim/test_stats.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/ftbesst_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ftbesst_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
