# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_util[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_net[1]_include.cmake")
include("/root/repo/build-review/tests/test_model[1]_include.cmake")
include("/root/repo/build-review/tests/test_ft[1]_include.cmake")
include("/root/repo/build-review/tests/test_ft_slow[1]_include.cmake")
include("/root/repo/build-review/tests/test_analytic[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_apps[1]_include.cmake")
include("/root/repo/build-review/tests/test_obs[1]_include.cmake")
include("/root/repo/build-review/tests/test_svc[1]_include.cmake")
include("/root/repo/build-review/tests/test_svc_slow[1]_include.cmake")
include("/root/repo/build-review/tests/test_verify[1]_include.cmake")
include("/root/repo/build-review/tests/test_umbrella[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
