# Empty dependencies file for ftbesst_ft.
# This may be replaced when dependencies are built.
