file(REMOVE_RECURSE
  "libftbesst_ft.a"
)
