
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ft/checkpoint_cost.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/checkpoint_cost.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/checkpoint_cost.cpp.o.d"
  "/root/repo/src/ft/fault_log.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/fault_log.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/fault_log.cpp.o.d"
  "/root/repo/src/ft/faults.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/faults.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/faults.cpp.o.d"
  "/root/repo/src/ft/fti.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/fti.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/fti.cpp.o.d"
  "/root/repo/src/ft/fti_runtime.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/fti_runtime.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/fti_runtime.cpp.o.d"
  "/root/repo/src/ft/gf256.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/gf256.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/gf256.cpp.o.d"
  "/root/repo/src/ft/multilevel_opt.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/multilevel_opt.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/multilevel_opt.cpp.o.d"
  "/root/repo/src/ft/reed_solomon.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/reed_solomon.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/reed_solomon.cpp.o.d"
  "/root/repo/src/ft/young_daly.cpp" "src/ft/CMakeFiles/ftbesst_ft.dir/young_daly.cpp.o" "gcc" "src/ft/CMakeFiles/ftbesst_ft.dir/young_daly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
