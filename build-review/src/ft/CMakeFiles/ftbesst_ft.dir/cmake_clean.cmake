file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_ft.dir/checkpoint_cost.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/checkpoint_cost.cpp.o.d"
  "CMakeFiles/ftbesst_ft.dir/fault_log.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/fault_log.cpp.o.d"
  "CMakeFiles/ftbesst_ft.dir/faults.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/faults.cpp.o.d"
  "CMakeFiles/ftbesst_ft.dir/fti.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/fti.cpp.o.d"
  "CMakeFiles/ftbesst_ft.dir/fti_runtime.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/fti_runtime.cpp.o.d"
  "CMakeFiles/ftbesst_ft.dir/gf256.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/gf256.cpp.o.d"
  "CMakeFiles/ftbesst_ft.dir/multilevel_opt.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/multilevel_opt.cpp.o.d"
  "CMakeFiles/ftbesst_ft.dir/reed_solomon.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/ftbesst_ft.dir/young_daly.cpp.o"
  "CMakeFiles/ftbesst_ft.dir/young_daly.cpp.o.d"
  "libftbesst_ft.a"
  "libftbesst_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
