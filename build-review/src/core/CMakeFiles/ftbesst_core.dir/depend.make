# Empty dependencies file for ftbesst_core.
# This may be replaced when dependencies are built.
