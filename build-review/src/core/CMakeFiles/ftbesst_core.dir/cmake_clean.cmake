file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_core.dir/arch.cpp.o"
  "CMakeFiles/ftbesst_core.dir/arch.cpp.o.d"
  "CMakeFiles/ftbesst_core.dir/beo.cpp.o"
  "CMakeFiles/ftbesst_core.dir/beo.cpp.o.d"
  "CMakeFiles/ftbesst_core.dir/engine_bsp.cpp.o"
  "CMakeFiles/ftbesst_core.dir/engine_bsp.cpp.o.d"
  "CMakeFiles/ftbesst_core.dir/engine_des.cpp.o"
  "CMakeFiles/ftbesst_core.dir/engine_des.cpp.o.d"
  "CMakeFiles/ftbesst_core.dir/montecarlo.cpp.o"
  "CMakeFiles/ftbesst_core.dir/montecarlo.cpp.o.d"
  "CMakeFiles/ftbesst_core.dir/pruning.cpp.o"
  "CMakeFiles/ftbesst_core.dir/pruning.cpp.o.d"
  "CMakeFiles/ftbesst_core.dir/trace.cpp.o"
  "CMakeFiles/ftbesst_core.dir/trace.cpp.o.d"
  "CMakeFiles/ftbesst_core.dir/workflow.cpp.o"
  "CMakeFiles/ftbesst_core.dir/workflow.cpp.o.d"
  "libftbesst_core.a"
  "libftbesst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
