file(REMOVE_RECURSE
  "libftbesst_core.a"
)
