
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arch.cpp" "src/core/CMakeFiles/ftbesst_core.dir/arch.cpp.o" "gcc" "src/core/CMakeFiles/ftbesst_core.dir/arch.cpp.o.d"
  "/root/repo/src/core/beo.cpp" "src/core/CMakeFiles/ftbesst_core.dir/beo.cpp.o" "gcc" "src/core/CMakeFiles/ftbesst_core.dir/beo.cpp.o.d"
  "/root/repo/src/core/engine_bsp.cpp" "src/core/CMakeFiles/ftbesst_core.dir/engine_bsp.cpp.o" "gcc" "src/core/CMakeFiles/ftbesst_core.dir/engine_bsp.cpp.o.d"
  "/root/repo/src/core/engine_des.cpp" "src/core/CMakeFiles/ftbesst_core.dir/engine_des.cpp.o" "gcc" "src/core/CMakeFiles/ftbesst_core.dir/engine_des.cpp.o.d"
  "/root/repo/src/core/montecarlo.cpp" "src/core/CMakeFiles/ftbesst_core.dir/montecarlo.cpp.o" "gcc" "src/core/CMakeFiles/ftbesst_core.dir/montecarlo.cpp.o.d"
  "/root/repo/src/core/pruning.cpp" "src/core/CMakeFiles/ftbesst_core.dir/pruning.cpp.o" "gcc" "src/core/CMakeFiles/ftbesst_core.dir/pruning.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/ftbesst_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/ftbesst_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/core/CMakeFiles/ftbesst_core.dir/workflow.cpp.o" "gcc" "src/core/CMakeFiles/ftbesst_core.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/model/CMakeFiles/ftbesst_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/ftbesst_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ft/CMakeFiles/ftbesst_ft.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ftbesst_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
