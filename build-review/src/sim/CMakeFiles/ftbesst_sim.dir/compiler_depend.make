# Empty compiler generated dependencies file for ftbesst_sim.
# This may be replaced when dependencies are built.
