file(REMOVE_RECURSE
  "libftbesst_sim.a"
)
