file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_sim.dir/component.cpp.o"
  "CMakeFiles/ftbesst_sim.dir/component.cpp.o.d"
  "CMakeFiles/ftbesst_sim.dir/detail/payload_pool.cpp.o"
  "CMakeFiles/ftbesst_sim.dir/detail/payload_pool.cpp.o.d"
  "CMakeFiles/ftbesst_sim.dir/simulation.cpp.o"
  "CMakeFiles/ftbesst_sim.dir/simulation.cpp.o.d"
  "libftbesst_sim.a"
  "libftbesst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
