# Empty dependencies file for ftbesst_verify.
# This may be replaced when dependencies are built.
