file(REMOVE_RECURSE
  "libftbesst_verify.a"
)
