file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_verify.dir/corpus.cpp.o"
  "CMakeFiles/ftbesst_verify.dir/corpus.cpp.o.d"
  "CMakeFiles/ftbesst_verify.dir/differential.cpp.o"
  "CMakeFiles/ftbesst_verify.dir/differential.cpp.o.d"
  "CMakeFiles/ftbesst_verify.dir/fuzz.cpp.o"
  "CMakeFiles/ftbesst_verify.dir/fuzz.cpp.o.d"
  "CMakeFiles/ftbesst_verify.dir/reference.cpp.o"
  "CMakeFiles/ftbesst_verify.dir/reference.cpp.o.d"
  "CMakeFiles/ftbesst_verify.dir/scenario.cpp.o"
  "CMakeFiles/ftbesst_verify.dir/scenario.cpp.o.d"
  "libftbesst_verify.a"
  "libftbesst_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
