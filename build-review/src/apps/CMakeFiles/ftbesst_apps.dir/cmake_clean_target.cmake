file(REMOVE_RECURSE
  "libftbesst_apps.a"
)
