file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_apps.dir/cmtbone.cpp.o"
  "CMakeFiles/ftbesst_apps.dir/cmtbone.cpp.o.d"
  "CMakeFiles/ftbesst_apps.dir/lulesh.cpp.o"
  "CMakeFiles/ftbesst_apps.dir/lulesh.cpp.o.d"
  "CMakeFiles/ftbesst_apps.dir/minihydro.cpp.o"
  "CMakeFiles/ftbesst_apps.dir/minihydro.cpp.o.d"
  "CMakeFiles/ftbesst_apps.dir/stencil3d.cpp.o"
  "CMakeFiles/ftbesst_apps.dir/stencil3d.cpp.o.d"
  "CMakeFiles/ftbesst_apps.dir/testbed.cpp.o"
  "CMakeFiles/ftbesst_apps.dir/testbed.cpp.o.d"
  "CMakeFiles/ftbesst_apps.dir/testbed_local.cpp.o"
  "CMakeFiles/ftbesst_apps.dir/testbed_local.cpp.o.d"
  "libftbesst_apps.a"
  "libftbesst_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
