# Empty compiler generated dependencies file for ftbesst_apps.
# This may be replaced when dependencies are built.
