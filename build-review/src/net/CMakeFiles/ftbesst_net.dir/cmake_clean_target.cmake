file(REMOVE_RECURSE
  "libftbesst_net.a"
)
