file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_net.dir/comm.cpp.o"
  "CMakeFiles/ftbesst_net.dir/comm.cpp.o.d"
  "CMakeFiles/ftbesst_net.dir/des_network.cpp.o"
  "CMakeFiles/ftbesst_net.dir/des_network.cpp.o.d"
  "CMakeFiles/ftbesst_net.dir/des_torus.cpp.o"
  "CMakeFiles/ftbesst_net.dir/des_torus.cpp.o.d"
  "CMakeFiles/ftbesst_net.dir/topology.cpp.o"
  "CMakeFiles/ftbesst_net.dir/topology.cpp.o.d"
  "libftbesst_net.a"
  "libftbesst_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
