# Empty dependencies file for ftbesst_net.
# This may be replaced when dependencies are built.
