
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/comm.cpp" "src/net/CMakeFiles/ftbesst_net.dir/comm.cpp.o" "gcc" "src/net/CMakeFiles/ftbesst_net.dir/comm.cpp.o.d"
  "/root/repo/src/net/des_network.cpp" "src/net/CMakeFiles/ftbesst_net.dir/des_network.cpp.o" "gcc" "src/net/CMakeFiles/ftbesst_net.dir/des_network.cpp.o.d"
  "/root/repo/src/net/des_torus.cpp" "src/net/CMakeFiles/ftbesst_net.dir/des_torus.cpp.o" "gcc" "src/net/CMakeFiles/ftbesst_net.dir/des_torus.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/ftbesst_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/ftbesst_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ftbesst_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
