file(REMOVE_RECURSE
  "libftbesst_analytic.a"
)
