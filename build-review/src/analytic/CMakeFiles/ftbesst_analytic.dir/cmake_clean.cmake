file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_analytic.dir/speedup.cpp.o"
  "CMakeFiles/ftbesst_analytic.dir/speedup.cpp.o.d"
  "libftbesst_analytic.a"
  "libftbesst_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
