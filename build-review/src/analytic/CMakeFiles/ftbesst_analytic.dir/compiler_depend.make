# Empty compiler generated dependencies file for ftbesst_analytic.
# This may be replaced when dependencies are built.
