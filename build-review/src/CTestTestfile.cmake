# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("util")
subdirs("sim")
subdirs("net")
subdirs("model")
subdirs("ft")
subdirs("analytic")
subdirs("core")
subdirs("apps")
subdirs("svc")
subdirs("verify")
