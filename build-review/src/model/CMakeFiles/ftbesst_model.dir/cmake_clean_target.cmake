file(REMOVE_RECURSE
  "libftbesst_model.a"
)
