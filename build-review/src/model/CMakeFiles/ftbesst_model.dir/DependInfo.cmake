
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/crossval.cpp" "src/model/CMakeFiles/ftbesst_model.dir/crossval.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/crossval.cpp.o.d"
  "/root/repo/src/model/dataset.cpp" "src/model/CMakeFiles/ftbesst_model.dir/dataset.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/dataset.cpp.o.d"
  "/root/repo/src/model/expr.cpp" "src/model/CMakeFiles/ftbesst_model.dir/expr.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/expr.cpp.o.d"
  "/root/repo/src/model/expr_program.cpp" "src/model/CMakeFiles/ftbesst_model.dir/expr_program.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/expr_program.cpp.o.d"
  "/root/repo/src/model/expr_simd.cpp" "src/model/CMakeFiles/ftbesst_model.dir/expr_simd.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/expr_simd.cpp.o.d"
  "/root/repo/src/model/expr_simd_avx2.cpp" "src/model/CMakeFiles/ftbesst_model.dir/expr_simd_avx2.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/expr_simd_avx2.cpp.o.d"
  "/root/repo/src/model/feature_model.cpp" "src/model/CMakeFiles/ftbesst_model.dir/feature_model.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/feature_model.cpp.o.d"
  "/root/repo/src/model/fitting.cpp" "src/model/CMakeFiles/ftbesst_model.dir/fitting.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/fitting.cpp.o.d"
  "/root/repo/src/model/linalg.cpp" "src/model/CMakeFiles/ftbesst_model.dir/linalg.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/linalg.cpp.o.d"
  "/root/repo/src/model/perf_model.cpp" "src/model/CMakeFiles/ftbesst_model.dir/perf_model.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/perf_model.cpp.o.d"
  "/root/repo/src/model/powerlaw.cpp" "src/model/CMakeFiles/ftbesst_model.dir/powerlaw.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/powerlaw.cpp.o.d"
  "/root/repo/src/model/serialize.cpp" "src/model/CMakeFiles/ftbesst_model.dir/serialize.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/serialize.cpp.o.d"
  "/root/repo/src/model/symreg.cpp" "src/model/CMakeFiles/ftbesst_model.dir/symreg.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/symreg.cpp.o.d"
  "/root/repo/src/model/table_model.cpp" "src/model/CMakeFiles/ftbesst_model.dir/table_model.cpp.o" "gcc" "src/model/CMakeFiles/ftbesst_model.dir/table_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/ftbesst_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ftbesst_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
