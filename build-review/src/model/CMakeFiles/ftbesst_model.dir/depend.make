# Empty dependencies file for ftbesst_model.
# This may be replaced when dependencies are built.
