file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_model.dir/crossval.cpp.o"
  "CMakeFiles/ftbesst_model.dir/crossval.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/dataset.cpp.o"
  "CMakeFiles/ftbesst_model.dir/dataset.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/expr.cpp.o"
  "CMakeFiles/ftbesst_model.dir/expr.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/expr_program.cpp.o"
  "CMakeFiles/ftbesst_model.dir/expr_program.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/expr_simd.cpp.o"
  "CMakeFiles/ftbesst_model.dir/expr_simd.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/expr_simd_avx2.cpp.o"
  "CMakeFiles/ftbesst_model.dir/expr_simd_avx2.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/feature_model.cpp.o"
  "CMakeFiles/ftbesst_model.dir/feature_model.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/fitting.cpp.o"
  "CMakeFiles/ftbesst_model.dir/fitting.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/linalg.cpp.o"
  "CMakeFiles/ftbesst_model.dir/linalg.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/perf_model.cpp.o"
  "CMakeFiles/ftbesst_model.dir/perf_model.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/powerlaw.cpp.o"
  "CMakeFiles/ftbesst_model.dir/powerlaw.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/serialize.cpp.o"
  "CMakeFiles/ftbesst_model.dir/serialize.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/symreg.cpp.o"
  "CMakeFiles/ftbesst_model.dir/symreg.cpp.o.d"
  "CMakeFiles/ftbesst_model.dir/table_model.cpp.o"
  "CMakeFiles/ftbesst_model.dir/table_model.cpp.o.d"
  "libftbesst_model.a"
  "libftbesst_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
