# Empty dependencies file for ftbesst_obs.
# This may be replaced when dependencies are built.
