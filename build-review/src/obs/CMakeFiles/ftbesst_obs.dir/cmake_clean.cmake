file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_obs.dir/clock.cpp.o"
  "CMakeFiles/ftbesst_obs.dir/clock.cpp.o.d"
  "CMakeFiles/ftbesst_obs.dir/export.cpp.o"
  "CMakeFiles/ftbesst_obs.dir/export.cpp.o.d"
  "CMakeFiles/ftbesst_obs.dir/metrics.cpp.o"
  "CMakeFiles/ftbesst_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/ftbesst_obs.dir/trace.cpp.o"
  "CMakeFiles/ftbesst_obs.dir/trace.cpp.o.d"
  "libftbesst_obs.a"
  "libftbesst_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
