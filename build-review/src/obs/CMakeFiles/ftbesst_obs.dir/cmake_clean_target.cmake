file(REMOVE_RECURSE
  "libftbesst_obs.a"
)
