# Empty compiler generated dependencies file for ftbesst_svc.
# This may be replaced when dependencies are built.
