file(REMOVE_RECURSE
  "libftbesst_svc.a"
)
