file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_svc.dir/cache.cpp.o"
  "CMakeFiles/ftbesst_svc.dir/cache.cpp.o.d"
  "CMakeFiles/ftbesst_svc.dir/client.cpp.o"
  "CMakeFiles/ftbesst_svc.dir/client.cpp.o.d"
  "CMakeFiles/ftbesst_svc.dir/json.cpp.o"
  "CMakeFiles/ftbesst_svc.dir/json.cpp.o.d"
  "CMakeFiles/ftbesst_svc.dir/registry.cpp.o"
  "CMakeFiles/ftbesst_svc.dir/registry.cpp.o.d"
  "CMakeFiles/ftbesst_svc.dir/server.cpp.o"
  "CMakeFiles/ftbesst_svc.dir/server.cpp.o.d"
  "CMakeFiles/ftbesst_svc.dir/wire.cpp.o"
  "CMakeFiles/ftbesst_svc.dir/wire.cpp.o.d"
  "libftbesst_svc.a"
  "libftbesst_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
