file(REMOVE_RECURSE
  "libftbesst_util.a"
)
