file(REMOVE_RECURSE
  "CMakeFiles/ftbesst_util.dir/args.cpp.o"
  "CMakeFiles/ftbesst_util.dir/args.cpp.o.d"
  "CMakeFiles/ftbesst_util.dir/config.cpp.o"
  "CMakeFiles/ftbesst_util.dir/config.cpp.o.d"
  "CMakeFiles/ftbesst_util.dir/io.cpp.o"
  "CMakeFiles/ftbesst_util.dir/io.cpp.o.d"
  "CMakeFiles/ftbesst_util.dir/log.cpp.o"
  "CMakeFiles/ftbesst_util.dir/log.cpp.o.d"
  "CMakeFiles/ftbesst_util.dir/rng.cpp.o"
  "CMakeFiles/ftbesst_util.dir/rng.cpp.o.d"
  "CMakeFiles/ftbesst_util.dir/stats.cpp.o"
  "CMakeFiles/ftbesst_util.dir/stats.cpp.o.d"
  "CMakeFiles/ftbesst_util.dir/table.cpp.o"
  "CMakeFiles/ftbesst_util.dir/table.cpp.o.d"
  "CMakeFiles/ftbesst_util.dir/task_pool.cpp.o"
  "CMakeFiles/ftbesst_util.dir/task_pool.cpp.o.d"
  "libftbesst_util.a"
  "libftbesst_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftbesst_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
