# Empty dependencies file for ftbesst_util.
# This may be replaced when dependencies are built.
