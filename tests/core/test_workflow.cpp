#include "core/workflow.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "net/topology.hpp"

namespace ftbesst::core {
namespace {

model::Dataset linear_kernel_data(double slope) {
  model::Dataset d({"x", "ranks"});
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
    for (double r : {8.0, 64.0, 512.0})
      d.add_row({x, r}, {slope * x, slope * x * 1.01, slope * x * 0.99});
  return d;
}

TEST(DevelopModels, FitsEveryKernelAndReports) {
  std::map<std::string, model::Dataset> calib;
  calib.emplace("fast", linear_kernel_data(0.001));
  calib.emplace("slow", linear_kernel_data(0.5));
  model::FitOptions opt;
  opt.method = model::ModelMethod::kFeatureRegression;
  const ModelSuite suite = develop_models(calib, opt);
  EXPECT_EQ(suite.kernels.size(), 2u);
  ASSERT_EQ(suite.reports.size(), 2u);
  for (const auto& report : suite.reports)
    EXPECT_LT(report.fit.full_mape, 5.0) << report.kernel;
  EXPECT_THROW(develop_models({}, opt), std::invalid_argument);
}

TEST(DevelopModels, BindIntoArch) {
  std::map<std::string, model::Dataset> calib;
  calib.emplace("k", linear_kernel_data(0.01));
  model::FitOptions opt;
  opt.method = model::ModelMethod::kFeatureRegression;
  const ModelSuite suite = develop_models(calib, opt);

  auto topo = std::make_shared<net::TwoStageFatTree>(16, 36, 8);
  ArchBEO arch("quartz-like", topo, net::CommParams{}, 36);
  suite.bind_into(arch);
  EXPECT_TRUE(arch.has_kernel("k"));
  EXPECT_GT(arch.kernel("k").predict(std::vector<double>{3.0, 64.0}), 0.0);
}

TEST(RunDse, SweepsScenariosTimesPoints) {
  auto topo = std::make_shared<net::TwoStageFatTree>(16, 8, 4);
  ArchBEO arch("m", topo, net::CommParams{}, 8);
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(0.01));
  arch.bind_kernel("ckpt_l1", std::make_shared<model::ConstantModel>(0.05));

  const std::vector<Scenario> scenarios{
      {"No FT", {}},
      {"L1", {{ft::Level::kL1, 2}}},
  };
  const std::vector<std::vector<double>> points{{4.0}, {8.0}};
  auto make_app = [](const Scenario& s, const std::vector<double>& p) {
    AppBEO app("toy", static_cast<std::int64_t>(p[0]));
    const ft::CheckpointScheduler sched(s.plan);
    for (int step = 1; step <= 10; ++step) {
      app.compute("work", p);
      app.end_timestep();
      for (ft::Level level : sched.due_after(step))
        app.checkpoint(level, "ckpt_l1", p);
    }
    return app;
  };
  const auto results =
      run_dse(scenarios, points, make_app, arch, EngineOptions{}, 4);
  ASSERT_EQ(results.size(), 4u);
  // L1 scenario strictly slower than No FT at matched params.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double no_ft = results[i].ensemble.total.mean;
    const double l1 = results[points.size() + i].ensemble.total.mean;
    EXPECT_GT(l1, no_ft);
    EXPECT_NEAR(no_ft, 0.1, 1e-9);
    EXPECT_NEAR(l1, 0.1 + 5 * 0.05, 1e-9);
  }
}

TEST(RunDseCells, SubsetBitMatchesExhaustiveSweep) {
  auto topo = std::make_shared<net::TwoStageFatTree>(16, 8, 4);
  ArchBEO arch("m", topo, net::CommParams{}, 8);
  arch.bind_kernel(
      "work", std::make_shared<model::NoisyModel>(
                  std::make_shared<model::ConstantModel>(0.01), 0.2));
  arch.bind_kernel("ckpt_l1", std::make_shared<model::ConstantModel>(0.05));

  const std::vector<Scenario> scenarios{
      {"No FT", {}},
      {"L1", {{ft::Level::kL1, 2}}},
  };
  const std::vector<std::vector<double>> points{{4.0}, {8.0}};
  auto make_app = [](const Scenario& s, const std::vector<double>& p) {
    AppBEO app("toy", static_cast<std::int64_t>(p[0]));
    const ft::CheckpointScheduler sched(s.plan);
    for (int step = 1; step <= 10; ++step) {
      app.compute("work", p);
      app.end_timestep();
      for (ft::Level level : sched.due_after(step))
        app.checkpoint(level, "ckpt_l1", p);
    }
    return app;
  };
  EngineOptions opt;
  opt.seed = 7;
  opt.monte_carlo = true;
  const auto exhaustive =
      run_dse(scenarios, points, make_app, arch, opt, 4);
  ASSERT_EQ(exhaustive.size(), 4u);

  auto bits_equal = [](const std::vector<double>& a,
                       const std::vector<double>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
  };

  // An out-of-order subset priced serially and pooled: every cell must be
  // bit-identical to the matching entry of the exhaustive sweep.
  const std::vector<DseCell> cells{{3, 0}, {0, 0}};
  const auto serial =
      run_dse_cells(scenarios, points, cells, make_app, arch, opt, 4, 1);
  const auto pooled =
      run_dse_cells(scenarios, points, cells, make_app, arch, opt, 4, 0);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(pooled.size(), 2u);
  EXPECT_TRUE(bits_equal(serial[0].ensemble.totals,
                         exhaustive[3].ensemble.totals));
  EXPECT_TRUE(bits_equal(serial[1].ensemble.totals,
                         exhaustive[0].ensemble.totals));
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_TRUE(
        bits_equal(serial[i].ensemble.totals, pooled[i].ensemble.totals));

  // A reduced-fidelity cell (bandit rung) is a bit-exact prefix of the
  // full-trials evaluation: per-trial seeds split by trial index.
  const auto rung = run_dse_cells(scenarios, points, {{2, 2}}, make_app,
                                  arch, opt, 4, 1);
  ASSERT_EQ(rung.size(), 1u);
  ASSERT_EQ(rung[0].ensemble.totals.size(), 2u);
  ASSERT_EQ(exhaustive[2].ensemble.totals.size(), 4u);
  for (std::size_t t = 0; t < 2; ++t) {
    const double a = rung[0].ensemble.totals[t];
    const double b = exhaustive[2].ensemble.totals[t];
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << "trial " << t;
  }
}

TEST(OverheadGrid, NormalizesToBaseline) {
  std::vector<DsePoint> points;
  auto mk = [](std::string scenario, std::vector<double> params,
               double mean) {
    DsePoint p;
    p.scenario = std::move(scenario);
    p.params = std::move(params);
    p.ensemble.total.mean = mean;
    return p;
  };
  points.push_back(mk("No FT", {10.0, 64.0}, 2.0));
  points.push_back(mk("No FT", {10.0, 1000.0}, 2.4));
  points.push_back(mk("L1", {10.0, 64.0}, 2.2));
  points.push_back(mk("L1", {10.0, 1000.0}, 4.3));

  const auto grid = overhead_grid(points, "No FT", {10.0, 64.0});
  EXPECT_DOUBLE_EQ(grid.at("No FT").at({10.0, 64.0}), 100.0);
  EXPECT_DOUBLE_EQ(grid.at("No FT").at({10.0, 1000.0}), 120.0);
  EXPECT_DOUBLE_EQ(grid.at("L1").at({10.0, 64.0}), 110.0);
  EXPECT_DOUBLE_EQ(grid.at("L1").at({10.0, 1000.0}), 215.0);
  EXPECT_THROW(overhead_grid(points, "nope", {10.0, 64.0}),
               std::invalid_argument);
}

TEST(OverheadGrid, QuantizedKeysSurviveFloatNoiseAndTextRoundTrip) {
  std::vector<DsePoint> points;
  DsePoint base;
  base.scenario = "No FT";
  base.params = {0.1 + 0.2, 2.0 / 3.0};  // 0.30000000000000004, 0.666...
  base.ensemble.total.mean = 2.0;
  points.push_back(base);
  DsePoint other = base;
  other.scenario = "L1";
  other.ensemble.total.mean = 3.0;
  points.push_back(other);

  // The stored coordinate differs bitwise from the literal a caller would
  // write; the quantized key bridges the gap.
  ASSERT_NE(0.1 + 0.2, 0.3);
  const auto grid = overhead_grid(points, "No FT", {0.3, 2.0 / 3.0});
  EXPECT_DOUBLE_EQ(grid.at("L1").at(quantize_params({0.3, 2.0 / 3.0})),
                   150.0);

  // Coordinates that went through text formatting (12 significant digits,
  // the CLI/report precision) land on the same cell as the originals.
  std::vector<double> reparsed;
  for (double v : base.params) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    reparsed.push_back(std::strtod(buf, nullptr));
  }
  ASSERT_NE(reparsed[1], base.params[1]);  // truncated below 1e-12
  EXPECT_EQ(quantize_params(reparsed), quantize_params(base.params));
  EXPECT_DOUBLE_EQ(grid.at("No FT").at(quantize_params(reparsed)), 100.0);
}

}  // namespace
}  // namespace ftbesst::core
