// Property tests on the coarse engine: invariants that must hold for every
// seed, scenario, and fault timeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "net/topology.hpp"

namespace ftbesst::core {
namespace {

struct Fixture {
  std::shared_ptr<net::TwoStageFatTree> topo =
      std::make_shared<net::TwoStageFatTree>(16, 8, 4);
  ArchBEO arch{"m", topo, net::CommParams{}, 8};

  Fixture() {
    ft::FtiConfig fti;
    fti.group_size = 4;
    fti.node_size = 2;
    arch.set_fti(fti);
    arch.bind_kernel(apps::kLuleshTimestep,
                     std::make_shared<model::NoisyModel>(
                         std::make_shared<model::ConstantModel>(0.05), 0.1));
    arch.bind_kernel("ckpt_l2",
                     std::make_shared<model::NoisyModel>(
                         std::make_shared<model::ConstantModel>(0.4), 0.15));
    arch.bind_restart(ft::Level::kL2,
                      std::make_shared<model::ConstantModel>(0.3));
  }

  AppBEO app(int steps = 60, int period = 15) const {
    apps::LuleshConfig cfg;
    cfg.epr = 10;
    cfg.ranks = 64;
    cfg.timesteps = steps;
    if (period > 0) cfg.plan = {{ft::Level::kL2, period}};
    cfg.fti = arch.fti();
    return apps::build_lulesh_fti(cfg);
  }
};

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, TraceIsMonotoneAndConsistent) {
  Fixture f;
  EngineOptions opt;
  opt.monte_carlo = true;
  opt.seed = GetParam();
  const RunResult r = run_bsp(f.app(), f.arch, opt);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.timestep_end_times.size(), 60u);
  EXPECT_TRUE(std::is_sorted(r.timestep_end_times.begin(),
                             r.timestep_end_times.end()));
  EXPECT_GE(r.total_seconds, r.timestep_end_times.back());
  EXPECT_GT(r.timestep_end_times.front(), 0.0);
  // Checkpoints land exactly on the planned steps.
  EXPECT_EQ(r.checkpoint_timesteps, (std::vector<int>{15, 30, 45, 60}));
}

TEST_P(EngineProperty, FaultyRunsNeverBeatTheirFaultFreeTwin) {
  Fixture f;
  EngineOptions clean;
  clean.monte_carlo = true;
  clean.seed = GetParam();
  const double baseline = run_bsp(f.app(), f.arch, clean).total_seconds;

  f.arch.set_fault_process(ft::FaultProcess(900.0, 1.0));  // frequent faults
  EngineOptions faulty = clean;
  faulty.inject_faults = true;
  faulty.downtime_seconds = 1.0;
  faulty.max_sim_seconds = 3600.0;
  const RunResult r = run_bsp(f.app(), f.arch, faulty);
  if (r.completed && r.faults == 0) {
    EXPECT_DOUBLE_EQ(r.total_seconds, baseline);
  } else if (r.completed) {
    EXPECT_GT(r.total_seconds, baseline);
  }
  // Accounting identity: every fault either rolled back, restarted, or
  // aborted the run.
  EXPECT_GE(r.faults, r.rollbacks + r.full_restarts);
}

TEST_P(EngineProperty, NoFtScenarioNeverRollsBack) {
  Fixture f;
  f.arch.set_fault_process(ft::FaultProcess(1200.0, 1.0));
  EngineOptions opt;
  opt.monte_carlo = true;
  opt.inject_faults = true;
  opt.seed = GetParam();
  opt.max_sim_seconds = 3600.0;
  const RunResult r = run_bsp(f.app(60, /*no plan*/ 0), f.arch, opt);
  EXPECT_EQ(r.rollbacks, 0);  // nothing to roll back to
  EXPECT_LE(r.full_restarts, r.faults);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99999u));

}  // namespace
}  // namespace ftbesst::core
