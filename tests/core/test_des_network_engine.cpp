// Tests for the network-executed DES engine mode (use_des_network).

#include <gtest/gtest.h>

#include <memory>

#include "apps/kernels.hpp"
#include "apps/stencil3d.hpp"
#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "core/engine_des.hpp"
#include "net/topology.hpp"

namespace ftbesst::core {
namespace {

ArchBEO fat_tree_arch(net::CommParams params = {}) {
  auto topo = std::make_shared<net::TwoStageFatTree>(8, 8, 4);
  ArchBEO arch("cluster", topo, params, 8);
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  arch.set_fti(fti);
  arch.bind_kernel(apps::kStencilSweep,
                   std::make_shared<model::ConstantModel>(0.001));
  return arch;
}

AppBEO stencil_app(std::int64_t ranks, int sweeps,
                   std::uint64_t halo_scale = 1) {
  apps::Stencil3dConfig cfg;
  cfg.nx = static_cast<int>(32 * halo_scale);
  cfg.ranks = ranks;
  cfg.sweeps = sweeps;
  return apps::build_stencil3d(cfg);
}

TEST(DesNetworkEngine, TorusBackendExecutesExchanges) {
  auto torus = std::make_shared<net::Torus>(std::vector<net::NodeId>{4, 4});
  ArchBEO arch("torus", torus, net::CommParams{}, 8);
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  arch.set_fti(fti);
  arch.bind_kernel(apps::kStencilSweep,
                   std::make_shared<model::ConstantModel>(0.001));
  EngineOptions opt;
  opt.use_des_network = true;
  const RunResult r = run_des(stencil_app(8, 3), arch, opt);
  EXPECT_EQ(r.timestep_end_times.size(), 3u);
  EXPECT_GT(r.total_seconds, 3 * 0.001);  // exchanges cost network time
  // Deterministic.
  const RunResult r2 = run_des(stencil_app(8, 3), arch, opt);
  EXPECT_DOUBLE_EQ(r2.total_seconds, r.total_seconds);
}

TEST(DesNetworkEngine, CompletesAndChargesForCommunication) {
  ArchBEO arch = fat_tree_arch();
  const AppBEO app = stencil_app(27, 5);
  EngineOptions analytic;
  EngineOptions networked;
  networked.use_des_network = true;
  const RunResult a = run_des(app, arch, analytic);
  const RunResult n = run_des(app, arch, networked);
  ASSERT_EQ(n.timestep_end_times.size(), a.timestep_end_times.size());
  // Pure compute floor: 5 sweeps x 1 ms.
  EXPECT_GT(n.total_seconds, 5 * 0.001);
  // Both paths charge something for the exchanges.
  EXPECT_GT(a.total_seconds, 5 * 0.001);
}

TEST(DesNetworkEngine, DeterministicAcrossRuns) {
  ArchBEO arch = fat_tree_arch();
  const AppBEO app = stencil_app(8, 4);
  EngineOptions opt;
  opt.use_des_network = true;
  const RunResult r1 = run_des(app, arch, opt);
  const RunResult r2 = run_des(app, arch, opt);
  EXPECT_DOUBLE_EQ(r1.total_seconds, r2.total_seconds);
  EXPECT_EQ(r1.timestep_end_times, r2.timestep_end_times);
}

TEST(DesNetworkEngine, BiggerHalosTakeLonger) {
  ArchBEO arch = fat_tree_arch();
  EngineOptions opt;
  opt.use_des_network = true;
  const RunResult small = run_des(stencil_app(27, 3, 1), arch, opt);
  const RunResult big = run_des(stencil_app(27, 3, 4), arch, opt);
  // 4x nx -> 16x halo bytes; network time must grow (compute constant).
  EXPECT_GT(big.total_seconds, small.total_seconds);
}

TEST(DesNetworkEngine, FasterFabricShortensRuns) {
  net::CommParams slow;
  slow.bandwidth = 0.5e9;
  net::CommParams fast;
  fast.bandwidth = 100e9;
  ArchBEO arch_slow = fat_tree_arch(slow);
  ArchBEO arch_fast = fat_tree_arch(fast);
  EngineOptions opt;
  opt.use_des_network = true;
  const AppBEO app = stencil_app(27, 3, 4);
  EXPECT_LT(run_des(app, arch_fast, opt).total_seconds,
            run_des(app, arch_slow, opt).total_seconds);
}

TEST(DesNetworkEngine, TooManyRanksForNetworkThrows) {
  // 64 physical nodes, node_size 2 -> at most 128 ranks on the network.
  ArchBEO arch = fat_tree_arch();
  EngineOptions opt;
  opt.use_des_network = true;
  // 216 ranks need 108 nodes > 64.
  EXPECT_THROW((void)run_des(stencil_app(216, 1), arch, opt),
               std::invalid_argument);
}

TEST(DesNetworkEngine, SingleRankSkipsNetwork) {
  ArchBEO arch = fat_tree_arch();
  EngineOptions opt;
  opt.use_des_network = true;
  const RunResult r = run_des(stencil_app(1, 3), arch, opt);
  EXPECT_NEAR(r.total_seconds, 3 * 0.001, 1e-9);
}

}  // namespace
}  // namespace ftbesst::core
