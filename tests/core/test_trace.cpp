#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ftbesst::core {
namespace {

TEST(Trace, RunCsvMarksCheckpointRows) {
  RunResult r;
  r.timestep_end_times = {1.0, 2.0, 3.5, 4.5};
  r.checkpoint_timesteps = {2, 4};
  r.total_seconds = 5.0;
  std::ostringstream os;
  write_run_csv(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("timestep,cumulative_seconds,checkpoint_after"),
            std::string::npos);
  EXPECT_NE(out.find("1,1,0"), std::string::npos);
  EXPECT_NE(out.find("2,2,1"), std::string::npos);
  EXPECT_NE(out.find("3,3.5,0"), std::string::npos);
  EXPECT_NE(out.find("4,4.5,1"), std::string::npos);
}

TEST(Trace, EnsembleCsvHasTotalsAndMeanTrace) {
  EnsembleResult e;
  e.totals = {10.0, 12.0};
  e.mean_timestep_end = {5.0, 11.0};
  std::ostringstream os;
  write_ensemble_csv(os, e);
  const std::string out = os.str();
  EXPECT_NE(out.find("total,0,10"), std::string::npos);
  EXPECT_NE(out.find("total,1,12"), std::string::npos);
  EXPECT_NE(out.find("mean_trace,1,5"), std::string::npos);
  EXPECT_NE(out.find("mean_trace,2,11"), std::string::npos);
}

TEST(Trace, EmptyResultsProduceHeadersOnly) {
  std::ostringstream os;
  write_run_csv(os, RunResult{});
  EXPECT_EQ(os.str(), "timestep,cumulative_seconds,checkpoint_after\n");
}

}  // namespace
}  // namespace ftbesst::core
