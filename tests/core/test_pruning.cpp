#include "core/pruning.hpp"

#include <gtest/gtest.h>

namespace ftbesst::core {
namespace {

DsePoint point(std::string scenario, double mean, double stddev) {
  DsePoint p;
  p.scenario = std::move(scenario);
  p.ensemble.total.mean = mean;
  p.ensemble.total.stddev = stddev;
  return p;
}

TEST(Pruning, KeepsBestFractionByObjective) {
  std::vector<DsePoint> points;
  for (double mean : {10.0, 20.0, 30.0, 40.0})
    points.push_back(point("s", mean, 0.1));
  PruneOptions opt;
  opt.keep_fraction = 0.5;
  const auto decisions = prune_design_space(points, opt);
  ASSERT_EQ(decisions.size(), 4u);
  EXPECT_EQ(decisions[0].verdict, Verdict::kKeep);
  EXPECT_EQ(decisions[1].verdict, Verdict::kKeep);
  EXPECT_EQ(decisions[2].verdict, Verdict::kPrune);
  EXPECT_EQ(decisions[3].verdict, Verdict::kPrune);
}

TEST(Pruning, HighUncertaintyGoesToDetailedStudy) {
  std::vector<DsePoint> points;
  points.push_back(point("best", 5.0, 0.1));
  points.push_back(point("noisy", 10.0, 8.0));  // cv = 0.8
  points.push_back(point("worst", 20.0, 0.1));
  PruneOptions opt;
  opt.keep_fraction = 0.34;  // keep the single best point
  opt.uncertainty_threshold = 0.2;
  const auto decisions = prune_design_space(points, opt);
  EXPECT_EQ(decisions[0].verdict, Verdict::kKeep);
  // Untrustworthy predictions go to fine-grained study regardless of rank.
  EXPECT_EQ(decisions[1].verdict, Verdict::kDetailStudy);
  EXPECT_EQ(decisions[2].verdict, Verdict::kPrune);
}

TEST(Pruning, CustomObjective) {
  std::vector<DsePoint> points;
  points.push_back(point("a", 10.0, 0.0));
  points.push_back(point("b", 20.0, 0.0));
  PruneOptions opt;
  opt.keep_fraction = 0.5;
  // Invert the objective: prefer the larger mean.
  opt.objective = [](const DsePoint& p) { return -p.ensemble.total.mean; };
  const auto decisions = prune_design_space(points, opt);
  EXPECT_EQ(decisions[0].verdict, Verdict::kPrune);
  EXPECT_EQ(decisions[1].verdict, Verdict::kKeep);
}

TEST(Pruning, AlwaysKeepsAtLeastOne) {
  std::vector<DsePoint> points{point("only", 5.0, 0.0)};
  PruneOptions opt;
  opt.keep_fraction = 0.01;
  const auto decisions = prune_design_space(points, opt);
  EXPECT_EQ(decisions[0].verdict, Verdict::kKeep);
}

TEST(Pruning, EmptyAndInvalidInputs) {
  EXPECT_TRUE(prune_design_space({}).empty());
  std::vector<DsePoint> points{point("a", 1.0, 0.0)};
  PruneOptions bad;
  bad.keep_fraction = 0.0;
  EXPECT_THROW((void)prune_design_space(points, bad), std::invalid_argument);
  bad.keep_fraction = 0.5;
  bad.uncertainty_threshold = -1.0;
  EXPECT_THROW((void)prune_design_space(points, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::core
