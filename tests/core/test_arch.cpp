#include "core/arch.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.hpp"

namespace ftbesst::core {
namespace {

std::shared_ptr<net::TwoStageFatTree> topo() {
  return std::make_shared<net::TwoStageFatTree>(4, 4, 2);
}

TEST(ArchBEO, ConstructionValidation) {
  EXPECT_THROW(ArchBEO("x", nullptr, net::CommParams{}, 4),
               std::invalid_argument);
  EXPECT_THROW(ArchBEO("x", topo(), net::CommParams{}, 0),
               std::invalid_argument);
  ArchBEO arch("m", topo(), net::CommParams{}, 4);
  EXPECT_EQ(arch.max_ranks(), 64);
  EXPECT_EQ(arch.node_of_rank(0), 0);
  EXPECT_EQ(arch.node_of_rank(7), 1);
}

TEST(ArchBEO, KernelBindingLifecycle) {
  ArchBEO arch("m", topo(), net::CommParams{}, 4);
  EXPECT_FALSE(arch.has_kernel("k"));
  EXPECT_THROW((void)arch.kernel("k"), std::out_of_range);
  EXPECT_THROW(arch.bind_kernel("k", nullptr), std::invalid_argument);
  arch.bind_kernel("k", std::make_shared<model::ConstantModel>(1.0));
  EXPECT_TRUE(arch.has_kernel("k"));
  EXPECT_DOUBLE_EQ(arch.kernel("k").predict(std::vector<double>{}), 1.0);
  // Re-binding replaces.
  arch.bind_kernel("k", std::make_shared<model::ConstantModel>(2.0));
  EXPECT_DOUBLE_EQ(arch.kernel("k").predict(std::vector<double>{}), 2.0);
}

TEST(ArchBEO, RestartBindings) {
  ArchBEO arch("m", topo(), net::CommParams{}, 4);
  EXPECT_EQ(arch.restart(ft::Level::kL2), nullptr);
  EXPECT_THROW(arch.bind_restart(ft::Level::kL2, nullptr),
               std::invalid_argument);
  arch.bind_restart(ft::Level::kL2,
                    std::make_shared<model::ConstantModel>(3.0));
  ASSERT_NE(arch.restart(ft::Level::kL2), nullptr);
  EXPECT_DOUBLE_EQ(arch.restart(ft::Level::kL2)->predict(
                       std::vector<double>{}),
                   3.0);
  EXPECT_EQ(arch.restart(ft::Level::kL4), nullptr);
}

TEST(ArchBEO, FaultProcessOptional) {
  ArchBEO arch("m", topo(), net::CommParams{}, 4);
  EXPECT_FALSE(arch.fault_process().has_value());
  arch.set_fault_process(ft::FaultProcess(100.0));
  EXPECT_TRUE(arch.fault_process().has_value());
  arch.set_fault_process(std::nullopt);
  EXPECT_FALSE(arch.fault_process().has_value());
}

}  // namespace
}  // namespace ftbesst::core
