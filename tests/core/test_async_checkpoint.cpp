// Asynchronous (staged) checkpointing in the coarse engine.

#include <gtest/gtest.h>

#include <memory>

#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "net/topology.hpp"

namespace ftbesst::core {
namespace {

ArchBEO make_arch() {
  auto topo = std::make_shared<net::TwoStageFatTree>(4, 4, 2);
  ArchBEO arch("m", topo, net::CommParams{}, 4);
  ft::FtiConfig fti;
  fti.group_size = 2;
  fti.node_size = 2;
  arch.set_fti(fti);
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(1.0));
  arch.bind_kernel("ckpt_l4", std::make_shared<model::ConstantModel>(4.0));
  return arch;
}

AppBEO app_with_ckpts(int timesteps, int period, bool async) {
  AppBEO app("toy", 4);
  for (int step = 1; step <= timesteps; ++step) {
    app.compute("work", {});
    app.end_timestep();
    if (step % period == 0)
      app.checkpoint(ft::Level::kL4, "ckpt_l4", {}, async);
  }
  return app;
}

TEST(AsyncCheckpoint, OverlapsFlushWithComputation) {
  ArchBEO arch = make_arch();
  EngineOptions opt;
  opt.async_stage_fraction = 0.25;
  // 20 steps x 1 s work, checkpoints every 10 (at steps 10 and 20).
  const RunResult sync = run_bsp(app_with_ckpts(20, 10, false), arch, opt);
  const RunResult async = run_bsp(app_with_ckpts(20, 10, true), arch, opt);
  EXPECT_DOUBLE_EQ(sync.total_seconds, 20.0 + 2 * 4.0);
  // Async: step-10 checkpoint stages 1 s, its 3 s background flush hides
  // under the next 10 s of work; the final checkpoint's flush cannot be
  // hidden (nothing follows), so it is waited for: 20 + 1 + 1 + 3 = 25.
  EXPECT_DOUBLE_EQ(async.total_seconds, 25.0);
  EXPECT_LT(async.total_seconds, sync.total_seconds);
}

TEST(AsyncCheckpoint, BackToBackFlushesStall) {
  ArchBEO arch = make_arch();
  EngineOptions opt;
  opt.async_stage_fraction = 0.25;
  // Checkpoints every step: each 3 s background flush outlasts the 1 s of
  // intervening work, so the channel throttles progress to flush speed.
  const RunResult r = run_bsp(app_with_ckpts(5, 1, true), arch, opt);
  // Step pattern: work(1) + stage(1) then stall for the previous flush.
  // Lower bound: 5 work + 5 stages + final flush > 5 + 5 + 3; and the
  // stalls make it strictly larger than the no-stall 13.
  EXPECT_GT(r.total_seconds, 13.0);
  // Never worse than fully synchronous.
  const RunResult sync = run_bsp(app_with_ckpts(5, 1, false), arch, opt);
  EXPECT_LE(r.total_seconds, sync.total_seconds + 1e-9);
}

TEST(AsyncCheckpoint, InFlightFlushIsNotRecoverable) {
  // A fault after the staged (critical-path) part but before the background
  // flush completes must NOT recover from that checkpoint.
  ArchBEO arch = make_arch();
  arch.bind_restart(ft::Level::kL4,
                    std::make_shared<model::ConstantModel>(0.0));
  // Fault at t = 11.5 s: step-10 async checkpoint staged at t = 11
  // (10 work + 1 stage), background flush completes at t = 14.
  // Deterministic fault timeline via a degenerate process is hard; instead
  // run both semantics directly: at fault time 11.5 the only record has
  // available_at = 14 -> full restart expected.
  // We emulate by comparing sync (recoverable at 14) vs async behaviours
  // through the fault process with a seed that produces an early fault.
  arch.set_fault_process(ft::FaultProcess(60.0, 1.0));  // 30 s system MTBF
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 0.5;
  opt.async_stage_fraction = 0.25;
  int async_restarts = 0, sync_restarts = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    opt.seed = seed;
    async_restarts += run_bsp(app_with_ckpts(20, 10, true), arch, opt)
                          .full_restarts;
    sync_restarts += run_bsp(app_with_ckpts(20, 10, false), arch, opt)
                         .full_restarts;
  }
  // The async variant has a strictly larger unprotected window, so across
  // seeds it restarts from scratch at least as often.
  EXPECT_GE(async_restarts, sync_restarts);
  EXPECT_GT(async_restarts + sync_restarts, 0);
}

TEST(AsyncCheckpoint, TrailingFlushIsWaitedFor) {
  ArchBEO arch = make_arch();
  EngineOptions opt;
  opt.async_stage_fraction = 0.25;
  // Single checkpoint at the very end: nothing to overlap with, so async
  // equals sync.
  const RunResult sync = run_bsp(app_with_ckpts(10, 10, false), arch, opt);
  const RunResult async = run_bsp(app_with_ckpts(10, 10, true), arch, opt);
  EXPECT_DOUBLE_EQ(async.total_seconds, sync.total_seconds);
}

TEST(AsyncCheckpoint, PlanEntryFlagFlowsThroughBuilder) {
  AppBEO app("x", 4);
  app.checkpoint(ft::Level::kL4, "ckpt_l4", {}, /*async=*/true);
  ASSERT_EQ(app.size(), 1u);
  EXPECT_TRUE(app.program()[0].async);
  app.checkpoint(ft::Level::kL1, "ckpt_l1", {});
  EXPECT_FALSE(app.program()[1].async);
}

}  // namespace
}  // namespace ftbesst::core
