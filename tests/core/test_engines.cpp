#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/arch.hpp"
#include "core/beo.hpp"
#include "core/engine_bsp.hpp"
#include "core/engine_des.hpp"
#include "core/montecarlo.hpp"

namespace ftbesst::core {
namespace {

/// Small test machine: 8-node fat-tree, 2 ranks per node.
ArchBEO make_arch() {
  auto topo = std::make_shared<net::TwoStageFatTree>(2, 4, 1);
  ArchBEO arch("testmachine", topo, net::CommParams{}, 2);
  ft::FtiConfig fti;
  fti.group_size = 2;
  fti.node_size = 2;
  arch.set_fti(fti);
  return arch;
}

/// App: N timesteps of a constant-cost kernel + checkpoint every `period`.
AppBEO make_app(int timesteps, int period, std::int64_t ranks = 4) {
  AppBEO app("toy", ranks);
  for (int step = 1; step <= timesteps; ++step) {
    app.compute("work", {static_cast<double>(ranks)});
    app.end_timestep();
    if (period > 0 && step % period == 0)
      app.checkpoint(ft::Level::kL1, "ckpt_l1",
                     {static_cast<double>(ranks)});
  }
  return app;
}

TEST(BspEngine, DeterministicTotalsAndTrace) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(2.0));
  arch.bind_kernel("ckpt_l1", std::make_shared<model::ConstantModel>(5.0));
  const AppBEO app = make_app(10, 5);
  const RunResult r = run_bsp(app, arch);
  // 10 * 2s compute + 2 * 5s checkpoints.
  EXPECT_DOUBLE_EQ(r.total_seconds, 30.0);
  ASSERT_EQ(r.timestep_end_times.size(), 10u);
  EXPECT_DOUBLE_EQ(r.timestep_end_times[0], 2.0);
  EXPECT_DOUBLE_EQ(r.timestep_end_times[4], 10.0);   // before 1st ckpt
  EXPECT_DOUBLE_EQ(r.timestep_end_times[5], 17.0);   // 10 + 5 + 2
  EXPECT_EQ(r.checkpoint_timesteps, (std::vector<int>{5, 10}));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.faults, 0);
}

TEST(BspEngine, MissingKernelThrows) {
  ArchBEO arch = make_arch();
  const AppBEO app = make_app(1, 0);
  EXPECT_THROW((void)run_bsp(app, arch), std::out_of_range);
}

TEST(BspEngine, TooManyRanksThrows) {
  ArchBEO arch = make_arch();  // capacity 16
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(1.0));
  const AppBEO app = make_app(1, 0, /*ranks=*/64);
  EXPECT_THROW((void)run_bsp(app, arch), std::invalid_argument);
}

TEST(BspEngine, FaultInjectionRequiresFaultProcess) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(1.0));
  const AppBEO app = make_app(2, 0);
  EngineOptions opt;
  opt.inject_faults = true;
  EXPECT_THROW((void)run_bsp(app, arch, opt), std::invalid_argument);
}

TEST(BspEngine, CommInstructionsUseNetworkModel) {
  ArchBEO arch = make_arch();
  AppBEO app("comm", 8);
  app.allreduce(1024).barrier().neighbor_exchange(6, 512).end_timestep();
  const RunResult r = run_bsp(app, arch);
  const double expected = arch.comm().allreduce_time(8, 1024) +
                          arch.comm().barrier_time(8) +
                          arch.comm().neighbor_exchange_time(8, 6, 512);
  EXPECT_NEAR(r.total_seconds, expected, 1e-12);
}

TEST(DesEngine, MatchesBspExactlyInDeterministicMode) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(0.5));
  arch.bind_kernel("ckpt_l1", std::make_shared<model::ConstantModel>(1.25));
  const AppBEO app = make_app(20, 4, 8);
  const RunResult bsp = run_bsp(app, arch);
  const RunResult des = run_des(app, arch);
  ASSERT_EQ(des.timestep_end_times.size(), bsp.timestep_end_times.size());
  for (std::size_t i = 0; i < bsp.timestep_end_times.size(); ++i)
    EXPECT_NEAR(des.timestep_end_times[i], bsp.timestep_end_times[i], 1e-8)
        << "timestep " << i;
  EXPECT_NEAR(des.total_seconds, bsp.total_seconds, 1e-8);
  EXPECT_EQ(des.checkpoint_timesteps, bsp.checkpoint_timesteps);
}

TEST(DesEngine, MatchesBspWithCommInstructions) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(0.1));
  AppBEO app("mix", 8);
  for (int step = 1; step <= 5; ++step) {
    app.compute("work", {});
    app.neighbor_exchange(6, 2048);
    app.allreduce(8);
    app.end_timestep();
  }
  const RunResult bsp = run_bsp(app, arch);
  const RunResult des = run_des(app, arch);
  EXPECT_NEAR(des.total_seconds, bsp.total_seconds, 1e-8);
}

TEST(DesEngine, RejectsFaultInjection) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(1.0));
  EngineOptions opt;
  opt.inject_faults = true;
  EXPECT_THROW((void)run_des(make_app(1, 0), arch, opt),
               std::invalid_argument);
}

TEST(MonteCarlo, NoisyModelsProduceSpreadCenteredOnPrediction) {
  ArchBEO arch = make_arch();
  auto base = std::make_shared<model::ConstantModel>(1.0);
  arch.bind_kernel("work", std::make_shared<model::NoisyModel>(base, 0.1));
  const AppBEO app = make_app(50, 0);
  const EnsembleResult ens = run_ensemble(app, arch, EngineOptions{}, 40);
  EXPECT_EQ(ens.totals.size(), 40u);
  EXPECT_NEAR(ens.total.mean, 50.0, 2.0);
  EXPECT_GT(ens.total.stddev, 0.0);
  EXPECT_EQ(ens.incomplete_trials, 0u);
  ASSERT_EQ(ens.mean_timestep_end.size(), 50u);
  EXPECT_NEAR(ens.mean_timestep_end[24], 25.0, 1.5);
}

TEST(MonteCarlo, DeterministicModelsGiveZeroSpread) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(1.0));
  const EnsembleResult ens =
      run_ensemble(make_app(5, 0), arch, EngineOptions{}, 8);
  EXPECT_DOUBLE_EQ(ens.total.stddev, 0.0);
  EXPECT_DOUBLE_EQ(ens.total.mean, 5.0);
  EXPECT_THROW(run_ensemble(make_app(5, 0), arch, EngineOptions{}, 0),
               std::invalid_argument);
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  AppBEO ft_app(int timesteps, int period) {
    AppBEO app = make_app(timesteps, period);
    return app;
  }
};

TEST_F(FaultInjectionTest, NoFtRestartsFromScratch) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(10.0));
  // One fault guaranteed inside the run: node MTBF chosen so system MTBF
  // ~ 40 s over a 200 s fault-free run.
  arch.set_fault_process(ft::FaultProcess(40.0 * 8, 1.0));
  const AppBEO app = make_app(20, /*no ckpt*/ 0);
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 5.0;
  opt.seed = 3;
  const RunResult r = run_bsp(app, arch, opt);
  EXPECT_GT(r.faults, 0);
  EXPECT_EQ(r.rollbacks, 0);  // nothing to roll back to
  EXPECT_EQ(r.full_restarts, r.faults);
  EXPECT_GT(r.total_seconds, 200.0);  // lost work + downtime
}

TEST_F(FaultInjectionTest, CheckpointsConvertRestartsToRollbacks) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(10.0));
  arch.bind_kernel("ckpt_l4", std::make_shared<model::ConstantModel>(1.0));
  arch.set_fault_process(ft::FaultProcess(40.0 * 8, 1.0));
  AppBEO app("toy", 4);
  for (int step = 1; step <= 20; ++step) {
    app.compute("work", {});
    app.end_timestep();
    if (step % 2 == 0)
      app.checkpoint(ft::Level::kL4, "ckpt_l4", {});
  }
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 5.0;
  opt.seed = 3;
  const RunResult r = run_bsp(app, arch, opt);
  EXPECT_GT(r.faults, 0);
  EXPECT_GT(r.rollbacks, 0);
  EXPECT_TRUE(r.completed);
}

TEST_F(FaultInjectionTest, L1CannotRecoverNodeLossButL4Can) {
  // L1 checkpoints are useless against node loss (full restarts); L4
  // checkpoints recover (rollbacks). Aggregate over seeds so the assertion
  // does not hinge on one fault-timeline draw.
  auto run_with_level = [&](ft::Level level, std::uint64_t seed) {
    ArchBEO arch = make_arch();
    arch.bind_kernel("work", std::make_shared<model::ConstantModel>(5.0));
    const std::string ck = level == ft::Level::kL1 ? "ckpt_l1" : "ckpt_l4";
    arch.bind_kernel(ck, std::make_shared<model::ConstantModel>(0.5));
    // 2 nodes at 40 s node-MTBF -> 20 s system MTBF over a ~100 s run.
    arch.set_fault_process(ft::FaultProcess(40.0, 1.0));
    AppBEO app("toy", 4);
    for (int step = 1; step <= 20; ++step) {
      app.compute("work", {});
      app.end_timestep();
      if (step % 2 == 0) app.checkpoint(level, ck, {});
    }
    EngineOptions opt;
    opt.inject_faults = true;
    opt.seed = seed;
    return run_bsp(app, arch, opt);
  };
  int l1_restarts = 0, l1_rollbacks = 0, l4_restarts = 0, l4_rollbacks = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RunResult l1 = run_with_level(ft::Level::kL1, seed);
    const RunResult l4 = run_with_level(ft::Level::kL4, seed);
    l1_restarts += l1.full_restarts;
    l1_rollbacks += l1.rollbacks;
    l4_restarts += l4.full_restarts;
    l4_rollbacks += l4.rollbacks;
  }
  EXPECT_GT(l1_restarts, 0);
  EXPECT_EQ(l1_rollbacks, 0);
  EXPECT_GT(l4_rollbacks, 0);
  // L4 full restarts can only come from faults striking before the first
  // checkpoint completes; L1 restarts on every node loss.
  EXPECT_GT(l1_restarts, l4_restarts);
}

TEST_F(FaultInjectionTest, HorizonGuardMarksIncomplete) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(100.0));
  arch.set_fault_process(ft::FaultProcess(8.0 * 8, 1.0));  // MTBF << phase
  const AppBEO app = make_app(10, 0);
  EngineOptions opt;
  opt.inject_faults = true;
  opt.max_sim_seconds = 10000.0;
  const RunResult r = run_bsp(app, arch, opt);
  EXPECT_FALSE(r.completed);
}

TEST(RestartModels, RollbackPaysBoundRestartCost) {
  ArchBEO arch = make_arch();
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(10.0));
  arch.bind_kernel("ckpt_l4", std::make_shared<model::ConstantModel>(0.0));
  arch.bind_restart(ft::Level::kL4,
                    std::make_shared<model::ConstantModel>(42.0));
  // 2 nodes at 60 s node-MTBF -> 30 s system MTBF over a 100 s run.
  arch.set_fault_process(ft::FaultProcess(60.0, 1.0));
  AppBEO app("toy", 4);
  for (int step = 1; step <= 10; ++step) {
    app.compute("work", {});
    app.end_timestep();
    app.checkpoint(ft::Level::kL4, "ckpt_l4", {});
  }
  int total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EngineOptions opt;
    opt.inject_faults = true;
    opt.downtime_seconds = 0.0;
    opt.seed = seed;
    const RunResult r = run_bsp(app, arch, opt);
    total_faults += r.faults;
    if (r.rollbacks > 0 && r.completed) {
      // Every completed rollback paid the 42 s restart model.
      EXPECT_GE(r.total_seconds, 100.0 + 42.0 * r.rollbacks);
    }
  }
  EXPECT_GT(total_faults, 0);
}

}  // namespace
}  // namespace ftbesst::core
