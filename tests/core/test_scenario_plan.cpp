#include "core/workflow.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace ftbesst::core {
namespace {

std::string error_of(const std::string& text) {
  try {
    (void)parse_plan(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ParsePlan, EmptyTextIsTheValidNoFtPlan) {
  EXPECT_TRUE(parse_plan("").empty());
  EXPECT_TRUE(parse_plan("  ").empty());
  EXPECT_TRUE(parse_plan(",").empty());
}

TEST(ParsePlan, ParsesLevelsPeriodsAndAsyncSuffix) {
  const auto plan = parse_plan("L1:40,L2:80,l4:100a");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].level, ft::Level::kL1);
  EXPECT_EQ(plan[0].period, 40);
  EXPECT_FALSE(plan[0].async);
  EXPECT_EQ(plan[1].level, ft::Level::kL2);
  EXPECT_EQ(plan[1].period, 80);
  EXPECT_EQ(plan[2].level, ft::Level::kL4);
  EXPECT_EQ(plan[2].period, 100);
  EXPECT_TRUE(plan[2].async);
}

TEST(ParsePlan, TrimsSpacesAroundEntries) {
  const auto plan = parse_plan(" L1:40 , L2:40 ");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[1].level, ft::Level::kL2);
}

TEST(ParsePlan, RejectsZeroAndNegativePeriods) {
  EXPECT_THROW((void)parse_plan("L1:0"), std::invalid_argument);
  EXPECT_THROW((void)parse_plan("L1:-5"), std::invalid_argument);
  EXPECT_NE(error_of("L1:0").find("period"), std::string::npos);
}

TEST(ParsePlan, RejectsLevelsOutsideOneToFour) {
  EXPECT_THROW((void)parse_plan("L0:40"), std::invalid_argument);
  EXPECT_THROW((void)parse_plan("L5:40"), std::invalid_argument);
  EXPECT_NE(error_of("L5:40").find("1-4"), std::string::npos);
}

TEST(ParsePlan, RejectsDuplicateLevels) {
  EXPECT_THROW((void)parse_plan("L1:40,L1:80"), std::invalid_argument);
  EXPECT_NE(error_of("L1:40,L1:80").find("duplicate"), std::string::npos);
  // Same level with different async flags is still a duplicate.
  EXPECT_THROW((void)parse_plan("L4:40,L4:40a"), std::invalid_argument);
}

TEST(ParsePlan, RejectsMalformedEntriesNamingTheEntry) {
  for (const char* bad :
       {"x1:10", "L1", "L1:", "L1:abc", "L1:10x", "Lx:10", "L:10", "1:10",
        "L1;10", "L1:10aa", "L1:99999999999999999999"}) {
    EXPECT_THROW((void)parse_plan(bad), std::invalid_argument) << bad;
  }
  // The error names the offending entry, not just "bad plan".
  EXPECT_NE(error_of("L1:40,wat,L2:40").find("'wat'"), std::string::npos);
}

TEST(ValidatePlan, ChecksHandBuiltPlans) {
  EXPECT_NO_THROW(validate_plan({}));
  EXPECT_NO_THROW(validate_plan({{ft::Level::kL1, 40}, {ft::Level::kL4, 80}}));
  EXPECT_THROW(validate_plan({{ft::Level::kL1, 0}}), std::invalid_argument);
  EXPECT_THROW(validate_plan({{ft::Level::kL1, -1}}), std::invalid_argument);
  EXPECT_THROW(validate_plan({{ft::Level::kL2, 10}, {ft::Level::kL2, 20}}),
               std::invalid_argument);
  EXPECT_THROW(validate_plan({{static_cast<ft::Level>(7), 10}}),
               std::invalid_argument);
}

TEST(ParsePlan, RoundTripsIntoScenarios) {
  // The Scenario struct consumes parse_plan output directly; a plan built
  // from text must satisfy validate_plan (parse_plan already ran it).
  Scenario scenario{"L1 & L4", parse_plan("L1:40,L4:400a")};
  EXPECT_NO_THROW(validate_plan(scenario.plan));
  ASSERT_EQ(scenario.plan.size(), 2u);
  EXPECT_TRUE(scenario.plan[1].async);
}

}  // namespace
}  // namespace ftbesst::core
