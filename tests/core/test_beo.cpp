#include "core/beo.hpp"

#include <gtest/gtest.h>

namespace ftbesst::core {
namespace {

TEST(AppBEO, BuilderAppendsInstructionsInOrder) {
  AppBEO app("demo", 8);
  app.compute("k1", {1.0, 2.0})
      .neighbor_exchange(6, 4096)
      .allreduce(8)
      .barrier()
      .checkpoint(ft::Level::kL2, "ckpt_l2", {1.0, 8.0})
      .end_timestep();
  ASSERT_EQ(app.size(), 6u);
  EXPECT_EQ(app.program()[0].kind, InstrKind::kCompute);
  EXPECT_EQ(app.program()[0].kernel, "k1");
  EXPECT_EQ(app.program()[1].kind, InstrKind::kNeighborExchange);
  EXPECT_EQ(app.program()[1].degree, 6);
  EXPECT_EQ(app.program()[1].bytes, 4096u);
  EXPECT_EQ(app.program()[2].kind, InstrKind::kAllReduce);
  EXPECT_EQ(app.program()[3].kind, InstrKind::kBarrier);
  EXPECT_EQ(app.program()[4].kind, InstrKind::kCheckpoint);
  EXPECT_EQ(app.program()[4].level, ft::Level::kL2);
  EXPECT_EQ(app.program()[5].kind, InstrKind::kTimestepEnd);
  EXPECT_EQ(app.timesteps(), 1);
}

TEST(AppBEO, TimestepCountTracksMarkers) {
  AppBEO app("demo", 1);
  for (int i = 0; i < 5; ++i) app.compute("k", {}).end_timestep();
  EXPECT_EQ(app.timesteps(), 5);
}

TEST(AppBEO, ValidatesInput) {
  EXPECT_THROW(AppBEO("bad", 0), std::invalid_argument);
  AppBEO app("demo", 4);
  EXPECT_THROW(app.compute("", {}), std::invalid_argument);
  EXPECT_THROW(app.checkpoint(ft::Level::kL1, "", {}), std::invalid_argument);
  EXPECT_THROW(app.neighbor_exchange(-1, 0), std::invalid_argument);
}

TEST(AppBEO, CheckpointBytesRoundTrip) {
  AppBEO app("demo", 4);
  app.set_checkpoint_bytes_per_rank(123456);
  EXPECT_EQ(app.checkpoint_bytes_per_rank(), 123456u);
}

}  // namespace
}  // namespace ftbesst::core
