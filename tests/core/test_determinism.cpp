// Scheduling-invariance contract of the shared-pool sweep path: for a fixed
// seed, run_ensemble and run_dse produce bit-identical results whether they
// run inline (threads=1) or fan out onto the shared task pool (threads=0),
// because per-trial / per-point seeds are derived before submission.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/arch.hpp"
#include "core/beo.hpp"
#include "core/engine_bsp.hpp"
#include "core/montecarlo.hpp"
#include "core/workflow.hpp"

namespace ftbesst::core {
namespace {

ArchBEO make_arch() {
  auto topo = std::make_shared<net::TwoStageFatTree>(2, 4, 1);
  ArchBEO arch("testmachine", topo, net::CommParams{}, 2);
  ft::FtiConfig fti;
  fti.group_size = 2;
  fti.node_size = 2;
  arch.set_fti(fti);
  auto base = std::make_shared<model::ConstantModel>(1.0);
  arch.bind_kernel("work", std::make_shared<model::NoisyModel>(base, 0.2));
  arch.bind_kernel("ckpt_l1", std::make_shared<model::ConstantModel>(0.5));
  arch.bind_restart(ft::Level::kL1,
                    std::make_shared<model::ConstantModel>(2.0));
  return arch;
}

AppBEO make_app(int timesteps, int period, std::int64_t ranks = 4) {
  AppBEO app("toy", ranks);
  for (int step = 1; step <= timesteps; ++step) {
    app.compute("work", {static_cast<double>(ranks)});
    app.end_timestep();
    if (period > 0 && step % period == 0)
      app.checkpoint(ft::Level::kL1, "ckpt_l1",
                     {static_cast<double>(ranks)});
  }
  return app;
}

/// Bitwise double equality — "within rounding error" is not the contract.
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_bit_identical(const EnsembleResult& a, const EnsembleResult& b) {
  ASSERT_EQ(a.totals.size(), b.totals.size());
  for (std::size_t i = 0; i < a.totals.size(); ++i)
    EXPECT_TRUE(bits_equal(a.totals[i], b.totals[i])) << "trial " << i;
  ASSERT_EQ(a.mean_timestep_end.size(), b.mean_timestep_end.size());
  for (std::size_t i = 0; i < a.mean_timestep_end.size(); ++i)
    EXPECT_TRUE(bits_equal(a.mean_timestep_end[i], b.mean_timestep_end[i]))
        << "timestep " << i;
  EXPECT_TRUE(bits_equal(a.total.mean, b.total.mean));
  EXPECT_TRUE(bits_equal(a.total.stddev, b.total.stddev));
  EXPECT_TRUE(bits_equal(a.mean_faults, b.mean_faults));
  EXPECT_TRUE(bits_equal(a.mean_rollbacks, b.mean_rollbacks));
  EXPECT_TRUE(bits_equal(a.mean_full_restarts, b.mean_full_restarts));
  EXPECT_EQ(a.incomplete_trials, b.incomplete_trials);
}

TEST(Determinism, EnsembleSerialVsPoolBitIdentical) {
  const ArchBEO arch = make_arch();
  const AppBEO app = make_app(30, 5);
  EngineOptions opt;
  opt.seed = 42;
  const auto serial = run_ensemble(app, arch, opt, 24, /*threads=*/1);
  const auto pooled = run_ensemble(app, arch, opt, 24, /*threads=*/0);
  const auto hinted = run_ensemble(app, arch, opt, 24, /*threads=*/4);
  expect_bit_identical(serial, pooled);
  expect_bit_identical(serial, hinted);
}

TEST(Determinism, EnsembleWithFaultInjectionBitIdentical) {
  // Faulty trials run much longer than clean ones — the imbalanced case
  // dynamic claiming exists for. The schedule may differ; results may not.
  ArchBEO arch = make_arch();
  arch.set_fault_process(ft::FaultProcess(50.0, 1.0));
  const AppBEO app = make_app(40, 5);
  EngineOptions opt;
  opt.seed = 7;
  opt.inject_faults = true;
  opt.downtime_seconds = 1.0;
  const auto serial = run_ensemble(app, arch, opt, 16, /*threads=*/1);
  const auto pooled = run_ensemble(app, arch, opt, 16, /*threads=*/0);
  expect_bit_identical(serial, pooled);
  EXPECT_GT(serial.mean_faults, 0.0);  // the scenario actually faulted
}

TEST(Determinism, DseSerialVsPoolBitIdentical) {
  const ArchBEO arch = make_arch();
  const std::vector<Scenario> scenarios{
      {"No FT", {}},
      {"L1", {{ft::Level::kL1, 5}}},
  };
  const std::vector<std::vector<double>> points{{10, 4}, {20, 4}, {15, 2}};
  auto make_dse_app = [](const Scenario& scenario,
                         const std::vector<double>& params) {
    AppBEO app = make_app(static_cast<int>(params[0]),
                          scenario.plan.empty() ? 0 : 5,
                          static_cast<std::int64_t>(params[1]));
    return app;
  };
  EngineOptions opt;
  opt.seed = 2021;
  const auto serial =
      run_dse(scenarios, points, make_dse_app, arch, opt, 8, /*threads=*/1);
  const auto pooled =
      run_dse(scenarios, points, make_dse_app, arch, opt, 8, /*threads=*/0);
  ASSERT_EQ(serial.size(), pooled.size());
  ASSERT_EQ(serial.size(), scenarios.size() * points.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scenario, pooled[i].scenario) << "point " << i;
    EXPECT_EQ(serial[i].params, pooled[i].params) << "point " << i;
    expect_bit_identical(serial[i].ensemble, pooled[i].ensemble);
  }
}

TEST(Determinism, DsePointOrderMatchesSubmissionOrder) {
  // Pool scheduling must not reorder the returned points.
  const ArchBEO arch = make_arch();
  const std::vector<Scenario> scenarios{{"A", {}}, {"B", {}}};
  const std::vector<std::vector<double>> points{{5, 4}, {6, 4}};
  auto make_dse_app = [](const Scenario&, const std::vector<double>& params) {
    return make_app(static_cast<int>(params[0]), 0,
                    static_cast<std::int64_t>(params[1]));
  };
  const auto dse =
      run_dse(scenarios, points, make_dse_app, arch, EngineOptions{}, 2);
  ASSERT_EQ(dse.size(), 4u);
  EXPECT_EQ(dse[0].scenario, "A");
  EXPECT_EQ(dse[0].params, (std::vector<double>{5, 4}));
  EXPECT_EQ(dse[1].params, (std::vector<double>{6, 4}));
  EXPECT_EQ(dse[2].scenario, "B");
  EXPECT_EQ(dse[3].params, (std::vector<double>{6, 4}));
}

}  // namespace
}  // namespace ftbesst::core
