// Recorded-fault-trace replay through the coarse engine.

#include <gtest/gtest.h>

#include <memory>

#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "net/topology.hpp"

namespace ftbesst::core {
namespace {

ArchBEO make_arch() {
  auto topo = std::make_shared<net::TwoStageFatTree>(4, 4, 2);
  ArchBEO arch("m", topo, net::CommParams{}, 4);
  ft::FtiConfig fti;
  fti.group_size = 2;
  fti.node_size = 2;
  arch.set_fti(fti);
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(10.0));
  arch.bind_kernel("ckpt_l4", std::make_shared<model::ConstantModel>(1.0));
  return arch;
}

AppBEO make_app() {
  AppBEO app("toy", 4);
  for (int step = 1; step <= 10; ++step) {
    app.compute("work", {});
    app.end_timestep();
    if (step % 2 == 0) app.checkpoint(ft::Level::kL4, "ckpt_l4", {});
  }
  return app;
}

ft::FaultEvent loss_at(double t, std::int64_t node = 0) {
  ft::FaultEvent ev;
  ev.time = t;
  ev.node = node;
  ev.kind = ft::FailureKind::kNodeLoss;
  return ev;
}

TEST(FaultReplay, DeterministicSingleFaultAccounting) {
  // Fault at t=35: two L4 checkpoints completed (t=22, ...); rollback.
  ArchBEO arch = make_arch();  // no fault process needed for replay
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 5.0;
  opt.fault_trace = {loss_at(35.0)};
  const RunResult r = run_bsp(make_app(), arch, opt);
  EXPECT_EQ(r.faults, 1);
  EXPECT_EQ(r.rollbacks, 1);
  EXPECT_EQ(r.full_restarts, 0);
  // Fault-free total = 10*10 + 5*1 = 105. The step-2 checkpoint completes
  // at t=21; the fault at t=35 loses the 14 s since then and pays 5 s of
  // downtime: total = 105 + 14 + 5 = 124.
  EXPECT_DOUBLE_EQ(r.total_seconds, 124.0);
}

TEST(FaultReplay, FaultBeforeAnyCheckpointRestartsFromScratch) {
  ArchBEO arch = make_arch();
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 2.0;
  opt.fault_trace = {loss_at(7.0)};
  const RunResult r = run_bsp(make_app(), arch, opt);
  EXPECT_EQ(r.full_restarts, 1);
  // Lost 7 s + 2 s downtime on top of the clean 105.
  EXPECT_DOUBLE_EQ(r.total_seconds, 105.0 + 7.0 + 2.0);
}

TEST(FaultReplay, ExhaustedTraceRunsCleanAfterwards) {
  ArchBEO arch = make_arch();
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 1.0;
  opt.fault_trace = {loss_at(7.0), loss_at(9.0)};
  const RunResult r = run_bsp(make_app(), arch, opt);
  EXPECT_EQ(r.faults, 2);
  EXPECT_TRUE(r.completed);
  // Both faults hit before the first checkpoint: restart twice, then clean.
  EXPECT_EQ(r.full_restarts, 2);
}

TEST(FaultReplay, TracePrecedesFaultProcess) {
  // With both a (very aggressive) process and a one-event trace, only the
  // trace fires — the run is deterministic.
  ArchBEO arch = make_arch();
  arch.set_fault_process(ft::FaultProcess(1.0, 1.0));  // would thrash
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 5.0;
  opt.fault_trace = {loss_at(35.0)};
  const RunResult a = run_bsp(make_app(), arch, opt);
  const RunResult b = run_bsp(make_app(), arch, opt);
  EXPECT_EQ(a.faults, 1);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.total_seconds, 124.0);
}

TEST(FaultReplay, UnorderedTraceRejected) {
  ArchBEO arch = make_arch();
  EngineOptions opt;
  opt.inject_faults = true;
  opt.fault_trace = {loss_at(50.0), loss_at(10.0)};
  EXPECT_THROW((void)run_bsp(make_app(), arch, opt), std::invalid_argument);
}

TEST(FaultReplay, TraceWithoutInjectFlagIsIgnored) {
  ArchBEO arch = make_arch();
  EngineOptions opt;
  opt.fault_trace = {loss_at(35.0)};  // inject_faults left false
  const RunResult r = run_bsp(make_app(), arch, opt);
  EXPECT_EQ(r.faults, 0);
  EXPECT_DOUBLE_EQ(r.total_seconds, 105.0);
}

}  // namespace
}  // namespace ftbesst::core
