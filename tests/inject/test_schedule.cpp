// Fault-schedule materialization: determinism, ordering, validation, and
// the SDC process.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "inject/schedule.hpp"

namespace ftbesst::inject {
namespace {

TEST(Schedule, PureFunctionOfSeedAndArguments) {
  const ft::FaultProcess crashes(50.0, 0.5);
  const SdcProcess sdc(80.0, 4.0);
  const util::Rng root(7);
  const auto a = make_schedule(&crashes, &sdc, 8, 1000.0, root);
  const auto b = make_schedule(&crashes, &sdc, 8, 1000.0, root);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].detect_after, b[i].detect_after);
  }
  const auto c = make_schedule(&crashes, &sdc, 8, 1000.0, util::Rng(8));
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].time != c[i].time || a[i].node != c[i].node;
  EXPECT_TRUE(differs);
}

TEST(Schedule, PerNodeStreamsAreHorizonAndNeighborIndependent) {
  // Node n's events depend only on root.split(2n)/split(2n+1): dropping
  // other nodes or extending the horizon never perturbs what node 0 sees.
  const ft::FaultProcess crashes(50.0, 1.0);
  const util::Rng root(11);
  const auto one = make_schedule(&crashes, nullptr, 1, 500.0, root);
  const auto many = make_schedule(&crashes, nullptr, 4, 500.0, root);
  std::vector<ft::FaultEvent> node0;
  for (const auto& ev : many)
    if (ev.node == 0) node0.push_back(ev);
  ASSERT_EQ(node0.size(), one.size());
  for (std::size_t i = 0; i < one.size(); ++i)
    EXPECT_EQ(one[i].time, node0[i].time);
  const auto longer = make_schedule(&crashes, nullptr, 1, 1000.0, root);
  ASSERT_GE(longer.size(), one.size());
  for (std::size_t i = 0; i < one.size(); ++i)
    EXPECT_EQ(longer[i].time, one[i].time);
}

TEST(Schedule, TimeOrderedWithEventsInsideHorizon) {
  const ft::FaultProcess crashes(20.0, 0.3);
  const SdcProcess sdc(30.0);
  const auto events = make_schedule(&crashes, &sdc, 5, 400.0, util::Rng(3));
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, 0.0);
    EXPECT_LT(events[i].time, 400.0);
    EXPECT_GE(events[i].node, 0);
    EXPECT_LT(events[i].node, 5);
    if (i > 0) {
      EXPECT_LE(events[i - 1].time, events[i].time);
    }
  }
  EXPECT_NO_THROW(validate_schedule(events, 5));
}

TEST(Schedule, ArgumentValidation) {
  const ft::FaultProcess crashes(50.0);
  const util::Rng root(1);
  EXPECT_THROW((void)make_schedule(&crashes, nullptr, 0, 10.0, root),
               std::invalid_argument);
  EXPECT_THROW((void)make_schedule(&crashes, nullptr, 2, -1.0, root),
               std::invalid_argument);
  EXPECT_THROW((void)make_schedule(&crashes, nullptr, 2,
                                   std::numeric_limits<double>::infinity(),
                                   root),
               std::invalid_argument);
  // Both processes off is a legal (empty) schedule.
  EXPECT_TRUE(make_schedule(nullptr, nullptr, 2, 10.0, root).empty());
}

TEST(Schedule, ValidateRejectsMalformedTraces) {
  ft::FaultEvent ok;
  ok.time = 5.0;
  ok.node = 0;
  auto bad_time = ok;
  bad_time.time = -1.0;
  EXPECT_THROW(validate_schedule({bad_time}, 2), std::invalid_argument);
  auto nan_time = ok;
  nan_time.time = std::nan("");
  EXPECT_THROW(validate_schedule({nan_time}, 2), std::invalid_argument);
  auto bad_node = ok;
  bad_node.node = 2;
  EXPECT_THROW(validate_schedule({bad_node}, 2), std::invalid_argument);
  auto bad_detect = ok;
  bad_detect.detect_after = -0.5;
  EXPECT_THROW(validate_schedule({bad_detect}, 2), std::invalid_argument);
  auto earlier = ok;
  earlier.time = 1.0;
  EXPECT_THROW(validate_schedule({ok, earlier}, 2), std::invalid_argument);
  EXPECT_NO_THROW(validate_schedule({earlier, ok}, 2));
}

TEST(SdcProcess, RejectsBadParameters) {
  EXPECT_THROW(SdcProcess(0.0), std::invalid_argument);
  EXPECT_THROW(SdcProcess(-5.0), std::invalid_argument);
  EXPECT_THROW(SdcProcess(10.0, -1.0), std::invalid_argument);
}

TEST(SdcProcess, SampleNodeDrawsOrderedCorruptionsWithLatency) {
  const SdcProcess sdc(10.0, 2.0);
  util::Rng rng(17);
  const auto events = sdc.sample_node(500.0, rng);
  ASSERT_FALSE(events.empty());
  bool any_latency = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, ft::FailureKind::kSilentCorruption);
    EXPECT_GE(events[i].detect_after, 0.0);
    any_latency = any_latency || events[i].detect_after > 0.0;
    if (i > 0) {
      EXPECT_LT(events[i - 1].time, events[i].time);
    }
  }
  EXPECT_TRUE(any_latency);
}

TEST(SdcProcess, InstantDetectorHasZeroLatency) {
  const SdcProcess sdc(10.0, 0.0);
  util::Rng rng(17);
  for (const auto& ev : sdc.sample_node(500.0, rng))
    EXPECT_EQ(ev.detect_after, 0.0);
}

}  // namespace
}  // namespace ftbesst::inject
