// Campaign driver: thread-count invariance, argument validation, and the
// Young/Daly acceptance leg over the golden corpus machines.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/arch.hpp"
#include "core/engine_des.hpp"
#include "inject/campaign.hpp"
#include "net/topology.hpp"
#include "support/test_seed.hpp"
#include "verify/differential.hpp"
#include "verify/scenario.hpp"

namespace ftbesst::inject {
namespace {

core::ArchBEO make_arch() {
  auto topo = std::make_shared<net::TwoStageFatTree>(4, 4, 2);
  core::ArchBEO arch("m", topo, net::CommParams{}, 4);
  arch.set_fti(ft::FtiConfig{2, 2, 1});
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(10.0));
  arch.bind_kernel("ckpt", std::make_shared<model::ConstantModel>(1.0));
  arch.set_fault_process(ft::FaultProcess(200.0, 0.5));
  return arch;
}

core::AppBEO make_app() {
  core::AppBEO app("toy", 4);
  for (int step = 1; step <= 10; ++step) {
    app.compute("work", {});
    app.end_timestep();
    if (step % 2 == 0) app.checkpoint(ft::Level::kL2, "ckpt", {});
  }
  return app;
}

CampaignOptions base_options(std::uint64_t seed) {
  CampaignOptions opt;
  opt.trials = 8;
  opt.engine.seed = seed;
  opt.engine.downtime_seconds = 3.0;
  opt.engine.max_sim_seconds = 5000.0;
  return opt;
}

TEST(Campaign, BitIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = test::test_seed(77);
  CampaignOptions opt = base_options(seed);
  opt.threads = 1;
  const CampaignResult a = run_campaign(make_app(), make_arch(), opt);
  opt.threads = 4;
  const CampaignResult b = run_campaign(make_app(), make_arch(), opt);
  ASSERT_EQ(a.totals.size(), b.totals.size());
  for (std::size_t i = 0; i < a.totals.size(); ++i)
    EXPECT_EQ(std::memcmp(&a.totals[i], &b.totals[i], sizeof(double)), 0)
        << "trial " << i;
  EXPECT_EQ(a.total.mean, b.total.mean);
  EXPECT_EQ(a.p10, b.p10);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.mean_faults, b.mean_faults);
  EXPECT_EQ(a.mean_lost_work, b.mean_lost_work);
  EXPECT_EQ(a.mean_recoveries_by_level, b.mean_recoveries_by_level);
  EXPECT_EQ(a.incomplete_trials, b.incomplete_trials);
  ASSERT_EQ(a.fault_log.size(), b.fault_log.size());
  EXPECT_EQ(a.fault_log.to_text(), b.fault_log.to_text());
}

TEST(Campaign, DesAndBspBackendsBothComplete) {
  CampaignOptions opt = base_options(5);
  opt.threads = 1;
  const CampaignResult des = run_campaign(make_app(), make_arch(), opt);
  opt.use_des = false;
  const CampaignResult bsp = run_campaign(make_app(), make_arch(), opt);
  EXPECT_EQ(des.totals.size(), 8u);
  EXPECT_EQ(bsp.totals.size(), 8u);
  EXPECT_EQ(des.incomplete_trials, 0u);
  EXPECT_EQ(bsp.incomplete_trials, 0u);
  // Every trial runs at least as long as the clean 105 s program.
  EXPECT_GE(des.total.min, 105.0);
  EXPECT_GE(bsp.total.min, 105.0);
}

TEST(Campaign, PerTrialFaultLogIsReplayable) {
  CampaignOptions opt = base_options(13);
  opt.trials = 4;
  opt.threads = 1;
  const CampaignResult res = run_campaign(make_app(), make_arch(), opt);
  ASSERT_GT(res.fault_log.size(), 0u);
  // Records are tagged with their trial; replaying one trial's trace
  // through the engine reproduces that trial's makespan exactly.
  for (std::size_t t = 0; t < 4; ++t) {
    core::EngineOptions replay = opt.engine;
    replay.inject_faults = true;
    replay.fault_trace =
        res.fault_log.to_trace(static_cast<std::int64_t>(t));
    const core::RunResult r = core::run_des(make_app(), make_arch(), replay);
    EXPECT_EQ(std::memcmp(&r.total_seconds, &res.totals[t], sizeof(double)),
              0)
        << "trial " << t;
  }
}

TEST(Campaign, ZeroTrialsRejected) {
  CampaignOptions opt;
  opt.trials = 0;
  EXPECT_THROW((void)run_campaign(make_app(), make_arch(), opt),
               std::invalid_argument);
}

// Acceptance leg: on the golden-corpus fault machines the full
// differential battery — including the injected-campaign-vs-Young/Daly
// band and the fold/thread bit-identity checks — must pass, and at least
// one corpus machine must be Young/Daly-eligible so the statistical
// comparison actually runs.
TEST(Campaign, GoldenCorpusMachinesPassTheInjectionBattery) {
  const char* names[] = {"l1_local", "l2_partner", "crash_only",
                         "young_daly_interval"};
  int inject_checks = 0;
  int young_daly_checks = 0;
  for (const char* name : names) {
    const std::string path =
        std::string(FTBESST_CORPUS_DIR) + "/" + name + ".scenario";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const verify::Scenario s = verify::Scenario::from_text(text.str());
    const verify::DiffReport report = verify::check_scenario(s);
    EXPECT_TRUE(report.ok()) << name << ":\n" << report.summary();
    inject_checks += report.inject_checks;
    young_daly_checks += report.inject_young_daly_checks;
  }
  EXPECT_GE(inject_checks, 4);
  EXPECT_GE(young_daly_checks, 1);
}

}  // namespace
}  // namespace ftbesst::inject
