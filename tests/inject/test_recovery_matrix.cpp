// Recoverability matrix: FailureKind x FTI level, at both layers — the
// ft::recoverable predicate for multi-node failure sets and the replay
// engine for end-to-end accounting (surviving level, lost-work window,
// restart cost).

#include <gtest/gtest.h>

#include <memory>

#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "ft/fti.hpp"
#include "net/topology.hpp"

namespace ftbesst::core {
namespace {

// 4 ranks over 2 nodes, FTI group {2 nodes, 2 ranks/node, 1 L2 partner}.
// Work 10 s/step, checkpoint 1 s after every 2nd of 10 steps: clean total
// 105 s; checkpoints complete at t = 21, 42, 63, 84, 105.
ArchBEO make_arch(double restart_cost = 0.0) {
  auto topo = std::make_shared<net::TwoStageFatTree>(4, 4, 2);
  ArchBEO arch("m", topo, net::CommParams{}, 4);
  arch.set_fti(ft::FtiConfig{2, 2, 1});
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(10.0));
  arch.bind_kernel("ckpt", std::make_shared<model::ConstantModel>(1.0));
  if (restart_cost > 0.0)
    for (const ft::Level level : {ft::Level::kL1, ft::Level::kL2,
                                  ft::Level::kL3, ft::Level::kL4})
      arch.bind_restart(level,
                        std::make_shared<model::ConstantModel>(restart_cost));
  return arch;
}

AppBEO make_app(ft::Level level) {
  AppBEO app("toy", 4);
  for (int step = 1; step <= 10; ++step) {
    app.compute("work", {});
    app.end_timestep();
    if (step % 2 == 0) app.checkpoint(level, "ckpt", {});
  }
  return app;
}

ft::FaultEvent event(ft::FailureKind kind, double t, double detect_after = 0.0,
                     std::int64_t node = 0) {
  ft::FaultEvent ev;
  ev.time = t;
  ev.node = node;
  ev.kind = kind;
  ev.detect_after = detect_after;
  return ev;
}

RunResult replay(ft::Level level, ft::FaultEvent ev,
                 double restart_cost = 0.0) {
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 5.0;
  opt.fault_trace = {ev};
  return run_bsp(make_app(level), make_arch(restart_cost), opt);
}

// --- crash row: every level's files survive; always a rollback ---

TEST(RecoveryMatrix, CrashRecoversAtEveryLevel) {
  for (const ft::Level level : {ft::Level::kL1, ft::Level::kL2,
                                ft::Level::kL3, ft::Level::kL4}) {
    const RunResult r =
        replay(level, event(ft::FailureKind::kProcessCrash, 35.0));
    EXPECT_EQ(r.rollbacks, 1) << ft::to_string(level);
    EXPECT_EQ(r.full_restarts, 0) << ft::to_string(level);
    EXPECT_EQ(r.recoveries_by_level[static_cast<int>(level) - 1], 1);
    // Roll back to the t=21 checkpoint: 14 s of work discarded, 5 s of
    // downtime, then re-execution -> 105 + 14 + 5.
    EXPECT_DOUBLE_EQ(r.total_seconds, 124.0) << ft::to_string(level);
    EXPECT_DOUBLE_EQ(r.lost_work_seconds, 14.0) << ft::to_string(level);
  }
}

// --- node-loss row: the surviving level depends on the FTI layout ---

TEST(RecoveryMatrix, NodeLossDefeatsL1) {
  const RunResult r = replay(ft::Level::kL1,
                             event(ft::FailureKind::kNodeLoss, 35.0));
  EXPECT_EQ(r.full_restarts, 1);
  EXPECT_EQ(r.rollbacks, 0);
  // Full restart discards the entire 35 s and pays 5 s of downtime.
  EXPECT_DOUBLE_EQ(r.total_seconds, 105.0 + 35.0 + 5.0);
  EXPECT_DOUBLE_EQ(r.lost_work_seconds, 35.0);
  ASSERT_EQ(r.fault_log.size(), 1u);
  EXPECT_EQ(r.fault_log.records()[0].recovery_level, 0);
}

TEST(RecoveryMatrix, NodeLossSurvivesPartnerRsAndPfsLevels) {
  // L2 (ring partner on the surviving node), L3 (1 erasure <= floor(2/2)),
  // and L4 (PFS) all recover the t=21 checkpoint.
  for (const ft::Level level :
       {ft::Level::kL2, ft::Level::kL3, ft::Level::kL4}) {
    const RunResult r =
        replay(level, event(ft::FailureKind::kNodeLoss, 35.0));
    EXPECT_EQ(r.rollbacks, 1) << ft::to_string(level);
    EXPECT_EQ(r.full_restarts, 0) << ft::to_string(level);
    EXPECT_EQ(r.recoveries_by_level[static_cast<int>(level) - 1], 1);
    EXPECT_DOUBLE_EQ(r.total_seconds, 124.0) << ft::to_string(level);
    ASSERT_EQ(r.fault_log.size(), 1u);
    EXPECT_EQ(r.fault_log.records()[0].recovery_level,
              static_cast<int>(level));
    EXPECT_DOUBLE_EQ(r.fault_log.records()[0].lost_work_seconds, 14.0);
  }
}

TEST(RecoveryMatrix, RestartCostIsChargedOnRollback) {
  const RunResult r =
      replay(ft::Level::kL4, event(ft::FailureKind::kNodeLoss, 35.0), 2.0);
  EXPECT_EQ(r.rollbacks, 1);
  EXPECT_DOUBLE_EQ(r.total_seconds, 126.0);  // 124 + 2 s read-back
  ASSERT_EQ(r.fault_log.size(), 1u);
  EXPECT_DOUBLE_EQ(r.fault_log.records()[0].restart_cost_seconds, 2.0);
}

// --- SDC row: storage survives, but freshness poisons late checkpoints ---

TEST(RecoveryMatrix, SdcRollsBackToPreCorruptionCheckpoint) {
  // Corruption at t=30, detected at t=45. The t=42 checkpoint snapshots
  // corrupted state; recovery restores t=21 and replays from the detection:
  // clock = 45 + 5 downtime, then 8 steps + 4 checkpoints = 84 -> 134.
  const RunResult r = replay(
      ft::Level::kL4, event(ft::FailureKind::kSilentCorruption, 30.0, 15.0));
  EXPECT_EQ(r.rollbacks, 1);
  EXPECT_EQ(r.full_restarts, 0);
  EXPECT_DOUBLE_EQ(r.total_seconds, 134.0);
  // Lost work spans corruption-to-detection too: 45 - 21 = 24 s.
  EXPECT_DOUBLE_EQ(r.lost_work_seconds, 24.0);
}

TEST(RecoveryMatrix, SdcBeforeAnyCheckpointForcesFullRestart) {
  // Corruption at t=15 poisons every checkpoint ever taken; detection at
  // t=25 -> full restart: 105 + 25 + 5.
  const RunResult r = replay(
      ft::Level::kL4, event(ft::FailureKind::kSilentCorruption, 15.0, 10.0));
  EXPECT_EQ(r.full_restarts, 1);
  EXPECT_DOUBLE_EQ(r.total_seconds, 135.0);
  EXPECT_DOUBLE_EQ(r.lost_work_seconds, 25.0);
}

// --- multi-node failure sets: the predicate layer ---

TEST(RecoveryMatrix, PredicateMatrixForMultiNodeLosses) {
  const ft::FtiConfig small{2, 2, 1};   // 1 group of 2 nodes (4 ranks)
  const ft::FtiConfig wide{4, 2, 1};    // 1 group of 4 nodes (8 ranks)
  const ft::FailureSet both{{0, 1}, ft::FailureKind::kNodeLoss};

  // Losing a node and its only ring partner defeats L2.
  EXPECT_FALSE(ft::recoverable(ft::Level::kL2, small, 4, both));
  // In the 4-node group node 0's single ring partner is node 1 — also
  // dead, so node 0's copy is gone even though the group mostly survives.
  EXPECT_FALSE(ft::recoverable(ft::Level::kL2, wide, 8, both));
  const ft::FailureSet spread{{0, 2}, ft::FailureKind::kNodeLoss};
  EXPECT_TRUE(ft::recoverable(ft::Level::kL2, wide, 8, spread));

  // Reed-Solomon tolerates floor(group/2) erasures per group.
  EXPECT_FALSE(ft::recoverable(ft::Level::kL3, small, 4, both));  // 2 > 1
  EXPECT_TRUE(ft::recoverable(ft::Level::kL3, wide, 8, both));    // 2 <= 2
  const ft::FailureSet three{{0, 1, 2}, ft::FailureKind::kNodeLoss};
  EXPECT_FALSE(ft::recoverable(ft::Level::kL3, wide, 8, three));  // 3 > 2

  // L4 shrugs off anything; L1 survives nothing (node-loss kind).
  EXPECT_TRUE(ft::recoverable(ft::Level::kL4, small, 4, both));
  EXPECT_FALSE(ft::recoverable(ft::Level::kL1, small, 4, both));

  // Crash and SDC kinds never lose files, whatever the set.
  const ft::FailureSet crash2{{0, 1}, ft::FailureKind::kProcessCrash};
  const ft::FailureSet sdc2{{0, 1}, ft::FailureKind::kSilentCorruption};
  for (const ft::Level level : {ft::Level::kL1, ft::Level::kL2,
                                ft::Level::kL3, ft::Level::kL4}) {
    EXPECT_TRUE(ft::recoverable(level, small, 4, crash2));
    EXPECT_TRUE(ft::recoverable(level, small, 4, sdc2));
  }
}

}  // namespace
}  // namespace ftbesst::core
