// RecoveryLedger record/trim, purge, and selection semantics.

#include <gtest/gtest.h>

#include "inject/ledger.hpp"

namespace ftbesst::inject {
namespace {

// group 2, node 2 -> 4 ranks over 2 nodes; one node loss leaves the ring
// partner alive, so L2 survives but L1 does not.
ft::FtiConfig toy_fti() { return ft::FtiConfig{2, 2, 1}; }

ft::FailureSet loss(std::int64_t node) {
  return ft::FailureSet{{node}, ft::FailureKind::kNodeLoss};
}

ft::FailureSet crash(std::int64_t node) {
  return ft::FailureSet{{node}, ft::FailureKind::kProcessCrash};
}

ft::FailureSet sdc(std::int64_t node) {
  return ft::FailureSet{{node}, ft::FailureKind::kSilentCorruption};
}

CheckpointRecord rec(int timesteps_done, double completed_at,
                     double available_at = -1.0) {
  CheckpointRecord r;
  r.resume_pc = static_cast<std::size_t>(timesteps_done);
  r.timesteps_done = timesteps_done;
  r.completed_at = completed_at;
  r.available_at = available_at < 0.0 ? completed_at : available_at;
  return r;
}

TEST(RecoveryLedger, KeepsNewestTwoRecordsPerLevel) {
  RecoveryLedger ledger;
  ledger.record(ft::Level::kL1, rec(1, 10.0));
  ledger.record(ft::Level::kL1, rec(2, 20.0));
  ledger.record(ft::Level::kL1, rec(3, 30.0));
  // The t=10 record was evicted: selection limited to available_by=15
  // (only the evicted record would qualify) finds nothing.
  const auto none = ledger.select(toy_fti(), 4, crash(0), 15.0,
                                  RecoveryLedger::no_freshness_limit());
  EXPECT_EQ(none.record, nullptr);
  const auto newest = ledger.select(toy_fti(), 4, crash(0), 100.0,
                                    RecoveryLedger::no_freshness_limit());
  ASSERT_NE(newest.record, nullptr);
  EXPECT_EQ(newest.record->timesteps_done, 3);
}

TEST(RecoveryLedger, SelectsMostProgressedAcrossLevels) {
  RecoveryLedger ledger;
  ledger.record(ft::Level::kL4, rec(2, 20.0));
  ledger.record(ft::Level::kL1, rec(4, 40.0));
  const auto sel = ledger.select(toy_fti(), 4, crash(0), 100.0,
                                 RecoveryLedger::no_freshness_limit());
  ASSERT_NE(sel.record, nullptr);
  EXPECT_EQ(sel.record->timesteps_done, 4);
  EXPECT_EQ(sel.level, ft::Level::kL1);
}

TEST(RecoveryLedger, TieBreaksOnDeeperLevel) {
  RecoveryLedger ledger;
  ledger.record(ft::Level::kL1, rec(4, 40.0));
  ledger.record(ft::Level::kL4, rec(4, 41.0));
  const auto sel = ledger.select(toy_fti(), 4, crash(0), 100.0,
                                 RecoveryLedger::no_freshness_limit());
  ASSERT_NE(sel.record, nullptr);
  EXPECT_EQ(sel.level, ft::Level::kL4);
}

TEST(RecoveryLedger, UnrecoverableLevelsAreExcluded) {
  RecoveryLedger ledger;
  ledger.record(ft::Level::kL1, rec(6, 60.0));
  ledger.record(ft::Level::kL2, rec(4, 40.0));
  // Node loss kills L1 (local files gone); the older L2 partner copy wins.
  const auto sel = ledger.select(toy_fti(), 4, loss(0), 100.0,
                                 RecoveryLedger::no_freshness_limit());
  ASSERT_NE(sel.record, nullptr);
  EXPECT_EQ(sel.level, ft::Level::kL2);
  EXPECT_EQ(sel.record->timesteps_done, 4);
  // The same ledger under a mere crash restores the newer L1 snapshot.
  const auto c = ledger.select(toy_fti(), 4, crash(0), 100.0,
                               RecoveryLedger::no_freshness_limit());
  EXPECT_EQ(c.level, ft::Level::kL1);
  EXPECT_EQ(c.record->timesteps_done, 6);
}

TEST(RecoveryLedger, AsyncFlushNotYetAvailableIsSkipped) {
  RecoveryLedger ledger;
  ledger.record(ft::Level::kL4, rec(2, 20.0));
  // Critical path done at t=40 but the background flush lands at t=90.
  ledger.record(ft::Level::kL4, rec(4, 40.0, 90.0));
  const auto sel = ledger.select(toy_fti(), 4, crash(0), 50.0,
                                 RecoveryLedger::no_freshness_limit());
  ASSERT_NE(sel.record, nullptr);
  EXPECT_EQ(sel.record->timesteps_done, 2);
}

TEST(RecoveryLedger, SdcFreshnessSkipsPoisonedRecordWithoutConsumingLevel) {
  RecoveryLedger ledger;
  ledger.record(ft::Level::kL4, rec(2, 20.0));
  ledger.record(ft::Level::kL4, rec(4, 40.0));
  // Corruption at t=30: the t=40 checkpoint snapshots corrupted state; the
  // pre-corruption t=20 record must still be found behind it.
  const auto sel = ledger.select(toy_fti(), 4, sdc(0), 100.0, 30.0);
  ASSERT_NE(sel.record, nullptr);
  EXPECT_EQ(sel.record->timesteps_done, 2);
  // Corruption before every checkpoint: nothing clean -> full restart.
  const auto none = ledger.select(toy_fti(), 4, sdc(0), 100.0, 10.0);
  EXPECT_EQ(none.record, nullptr);
}

TEST(RecoveryLedger, PurgeAfterDropsRecordsPastTheStrike) {
  RecoveryLedger ledger;
  ledger.record(ft::Level::kL4, rec(2, 20.0));
  ledger.record(ft::Level::kL4, rec(4, 40.0));
  ledger.purge_after(30.0);
  const auto sel = ledger.select(toy_fti(), 4, crash(0), 100.0,
                                 RecoveryLedger::no_freshness_limit());
  ASSERT_NE(sel.record, nullptr);
  EXPECT_EQ(sel.record->timesteps_done, 2);
  ledger.purge_after(10.0);
  EXPECT_EQ(ledger
                .select(toy_fti(), 4, crash(0), 100.0,
                        RecoveryLedger::no_freshness_limit())
                .record,
            nullptr);
}

TEST(RecoveryLedger, ClearEmptiesEverything) {
  RecoveryLedger ledger;
  ledger.record(ft::Level::kL1, rec(2, 20.0));
  ledger.record(ft::Level::kL4, rec(2, 21.0));
  EXPECT_FALSE(ledger.empty());
  ledger.clear();
  EXPECT_TRUE(ledger.empty());
  EXPECT_EQ(ledger
                .select(toy_fti(), 4, crash(0), 100.0,
                        RecoveryLedger::no_freshness_limit())
                .record,
            nullptr);
}

}  // namespace
}  // namespace ftbesst::inject
