// DES injection engine: agreement with the coarse engine on replayed
// traces, fold invariance under injection, horizon abandonment, and exact
// replay from a dumped fault log.

#include <gtest/gtest.h>

#include <memory>

#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "core/engine_des.hpp"
#include "inject/sdc.hpp"
#include "net/topology.hpp"

namespace ftbesst::core {
namespace {

// Same toy fixture as the recovery-matrix tests: 4 ranks over 2 FTI nodes,
// 10 steps of 10 s work, a 1 s checkpoint after every 2nd step (clean
// total 105 s; checkpoints complete at t = 21, 42, 63, 84, 105).
ArchBEO make_arch() {
  auto topo = std::make_shared<net::TwoStageFatTree>(4, 4, 2);
  ArchBEO arch("m", topo, net::CommParams{}, 4);
  arch.set_fti(ft::FtiConfig{2, 2, 1});
  arch.bind_kernel("work", std::make_shared<model::ConstantModel>(10.0));
  arch.bind_kernel("ckpt", std::make_shared<model::ConstantModel>(1.0));
  return arch;
}

AppBEO make_app(ft::Level level = ft::Level::kL4) {
  AppBEO app("toy", 4);
  for (int step = 1; step <= 10; ++step) {
    app.compute("work", {});
    app.end_timestep();
    if (step % 2 == 0) app.checkpoint(level, "ckpt", {});
  }
  return app;
}

ft::FaultEvent event(ft::FailureKind kind, double t,
                     double detect_after = 0.0) {
  ft::FaultEvent ev;
  ev.time = t;
  ev.node = 0;
  ev.kind = kind;
  ev.detect_after = detect_after;
  return ev;
}

void expect_same_run(const RunResult& a, const RunResult& b) {
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.full_restarts, b.full_restarts);
  EXPECT_DOUBLE_EQ(a.lost_work_seconds, b.lost_work_seconds);
  EXPECT_EQ(a.recoveries_by_level, b.recoveries_by_level);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(DesInject, MatchesCoarseEngineOnReplayedLoss) {
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 5.0;
  opt.fault_trace = {event(ft::FailureKind::kNodeLoss, 35.0)};
  const RunResult bsp = run_bsp(make_app(), make_arch(), opt);
  const RunResult des = run_des(make_app(), make_arch(), opt);
  expect_same_run(bsp, des);
  EXPECT_DOUBLE_EQ(des.total_seconds, 124.0);
  EXPECT_EQ(des.rollbacks, 1);
}

TEST(DesInject, MatchesCoarseEngineOnSilentCorruption) {
  // Corruption at t=30 detected at t=45: the DES actually executes the
  // corrupted window (taking — and then poisoning — the t=42 checkpoint);
  // the coarse engine charges the latency as outage. Both must land on the
  // same answer: restore t=21, resume at 50, replay 84 s -> 134.
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 5.0;
  opt.fault_trace = {event(ft::FailureKind::kSilentCorruption, 30.0, 15.0)};
  const RunResult bsp = run_bsp(make_app(), make_arch(), opt);
  const RunResult des = run_des(make_app(), make_arch(), opt);
  expect_same_run(bsp, des);
  EXPECT_DOUBLE_EQ(des.total_seconds, 134.0);
  EXPECT_DOUBLE_EQ(des.lost_work_seconds, 24.0);
}

TEST(DesInject, FoldedInjectedRunIsBitIdenticalToUnfolded) {
  ArchBEO arch = make_arch();
  arch.set_fault_process(ft::FaultProcess(200.0, 0.5));
  arch.set_sdc_process(inject::SdcProcess(400.0, 2.0));
  EngineOptions opt;
  opt.seed = 33;
  opt.inject_faults = true;
  opt.downtime_seconds = 3.0;
  opt.max_sim_seconds = 5000.0;
  opt.fold_symmetry = true;
  const RunResult folded = run_des(make_app(), arch, opt);
  opt.fold_symmetry = false;
  const RunResult unfolded = run_des(make_app(), arch, opt);
  expect_same_run(folded, unfolded);
  EXPECT_TRUE(folded.completed);
  EXPECT_GT(folded.faults, 0);
}

TEST(DesInject, HorizonExceededAbandonsIncomplete) {
  EngineOptions opt;
  opt.inject_faults = true;
  opt.downtime_seconds = 5.0;
  opt.max_sim_seconds = 20.0;
  // Full restart at t=7 resumes at 12; the next step ends at 22 > 20.
  opt.fault_trace = {event(ft::FailureKind::kNodeLoss, 7.0)};
  const RunResult des = run_des(make_app(ft::Level::kL1), make_arch(), opt);
  EXPECT_FALSE(des.completed);
  const RunResult bsp = run_bsp(make_app(ft::Level::kL1), make_arch(), opt);
  EXPECT_FALSE(bsp.completed);
}

TEST(DesInject, DumpedFaultLogReplaysBitIdentically) {
  ArchBEO arch = make_arch();
  arch.set_fault_process(ft::FaultProcess(150.0, 0.5));
  arch.set_sdc_process(inject::SdcProcess(500.0, 1.0));
  EngineOptions opt;
  opt.seed = 91;
  opt.inject_faults = true;
  opt.downtime_seconds = 2.0;
  opt.max_sim_seconds = 5000.0;
  const RunResult sampled = run_des(make_app(), arch, opt);
  ASSERT_TRUE(sampled.completed);
  ASSERT_GT(sampled.faults, 0);

  // Round-trip the log through its text form, then feed it back as a
  // replay trace: the replayed run must reproduce the sampled one bit for
  // bit, on either engine-independent sampling state.
  const ft::FaultLog log =
      ft::FaultLog::from_text(sampled.fault_log.to_text());
  EngineOptions replay = opt;
  replay.fault_trace = log.to_trace(0);
  ASSERT_EQ(replay.fault_trace.size(), sampled.fault_log.size());
  const RunResult again = run_des(make_app(), arch, replay);
  expect_same_run(sampled, again);
}

}  // namespace
}  // namespace ftbesst::core
