// Observability must not perturb verification: pricing a corpus scenario
// and running the differential checker with metrics/tracing enabled must
// produce bit-identical output to the obs-off runs (the obs layer's own
// bit-identity tests cover the engines; this covers the verify harness's
// paths through them).

#include <gtest/gtest.h>

#include <string>

#include "obs/obs.hpp"
#include "support/test_seed.hpp"
#include "verify/corpus.hpp"
#include "verify/differential.hpp"
#include "verify/scenario.hpp"

namespace ftbesst::verify {
namespace {

class VerifyObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::enable(false);
    obs::reset();
    obs::trace_reset();
  }
  void TearDown() override {
    obs::enable(false);
    obs::reset();
    obs::trace_reset();
  }
};

Scenario faulty_scenario() {
  Scenario s;
  s.trials = 8;
  s.timesteps = 15;
  s.plan = {{ft::Level::kL2, 4, false}};
  s.inject_faults = true;
  s.node_mtbf_seconds = 300.0;
  s.loss_fraction = 0.3;
  return s;
}

TEST_F(VerifyObsTest, ResultTextIsBitIdenticalObsOnVsOff) {
  const Scenario s = faulty_scenario();
  obs::enable(false);
  const std::string off = result_to_text(s, 1);
  obs::enable(true);
  const std::string on = result_to_text(s, 1);
  const std::string on_threaded = result_to_text(s, 4);
  EXPECT_EQ(on, off);
  EXPECT_EQ(on_threaded, off);
  // The instrumented runs did record something — obs was genuinely on.
  const auto snap = obs::scrape();
  EXPECT_GT(snap.counter("mc.ensembles"), 0u);
}

TEST_F(VerifyObsTest, CommittedCorpusReplaysByteExactWithObsEnabled) {
  // The .expected recordings were made with obs off; replaying them with
  // obs on is the acceptance criterion verbatim (byte-exact obs on/off).
  obs::enable(true);
  const CorpusReport report = replay_corpus(FTBESST_CORPUS_DIR);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.replayed, report.entries);
}

TEST_F(VerifyObsTest, DifferentialRunIsCleanWithObsEnabled) {
  const std::uint64_t seed = test::test_seed(11);
  obs::enable(false);
  const DiffReport off = run_differential(10, seed);
  obs::enable(true);
  const DiffReport on = run_differential(10, seed);
  EXPECT_TRUE(off.ok()) << off.summary();
  EXPECT_TRUE(on.ok()) << on.summary();
  // Same scenarios, same checks: the reports agree exactly.
  EXPECT_EQ(on.scenarios, off.scenarios);
  EXPECT_EQ(on.analytic_checks, off.analytic_checks);
  EXPECT_EQ(on.engine_checks, off.engine_checks);
  EXPECT_EQ(on.thread_checks, off.thread_checks);
  EXPECT_EQ(on.young_daly_checks, off.young_daly_checks);
}

}  // namespace
}  // namespace ftbesst::verify
