#include "verify/search_check.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

namespace ftbesst::verify {
namespace {

Scenario small_clean_scenario() {
  Scenario s;
  s.seed = 21;
  s.trials = 2;
  s.timesteps = 6;
  s.ranks = 4;
  s.kernel_cost = 0.02;
  s.plan = {{ft::Level::kL1, 2}};
  return s;
}

TEST(SearchCheck, DeriveGridBuildsPlanVariantsTimesParameterPoints) {
  const SearchGrid g = derive_search_grid(small_clean_scenario());
  EXPECT_GE(g.space.scenarios.size(), 3u);
  std::set<std::string> plans;
  for (const core::Scenario& v : g.space.scenarios)
    plans.insert(core::format_plan(v.plan));
  EXPECT_EQ(plans.size(), g.space.scenarios.size());  // all distinct
  EXPECT_TRUE(plans.count(""));                       // a No-FT variant
  EXPECT_TRUE(plans.count("L1:2"));                   // the plan itself
  ASSERT_FALSE(g.space.points.empty());
  for (const auto& p : g.space.points) {
    ASSERT_EQ(p.size(), 2u);  // {kernel_scale, ranks}
    EXPECT_GT(p[0], 0.0);
    EXPECT_GE(p[1], 4.0);
  }
  EXPECT_NO_THROW(g.space.validate());
}

TEST(SearchCheck, DerivedModelsPriceEveryCellOfTheGrid) {
  const SearchGrid g = derive_search_grid(small_clean_scenario());
  // Price the first and last cells directly; parameter-aware models must
  // serve both without rebinding.
  const std::vector<core::DseCell> cells{{0, 0}, {g.space.size() - 1, 0}};
  const auto points =
      core::run_dse_cells(g.space.scenarios, g.space.points, cells,
                          g.make_app, g.arch, g.options, 1, 1);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].ensemble.total.mean, 0.0);
  EXPECT_GT(points[1].ensemble.total.mean, 0.0);
}

TEST(SearchCheck, CleanScenarioPassesEveryGate) {
  const DiffReport report =
      check_search_vs_exhaustive(small_clean_scenario());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.scenarios, 1);
  EXPECT_GE(report.search_checks, 5);  // incl. the deterministic bandit gate
}

TEST(SearchCheck, RejectsScenariosThatCannotHostAGrid) {
  Scenario s = small_clean_scenario();
  s.timesteps = 0;
  DiffReport report = check_search_vs_exhaustive(s);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].check, "exception");

  s = small_clean_scenario();
  s.ranks = 1 << 20;  // exceeds the machine
  EXPECT_THROW((void)derive_search_grid(s), std::invalid_argument);
}

TEST(SearchCheck, RunSearchCorpusThrowsOnAMissingDirectory) {
  EXPECT_THROW((void)run_search_corpus("/nonexistent/search-corpus"),
               std::invalid_argument);
}

TEST(SearchCheck, GoldenSearchCorpusPassesTheAcceptanceGates) {
  const DiffReport report = run_search_corpus(FTBESST_CORPUS_DIR);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.scenarios, 3);  // the committed search_*.scenario set
}

}  // namespace
}  // namespace ftbesst::verify
