// In-process budgeted fuzzing as a tier-1 ctest target: fixed seeds, fixed
// iteration counts, so CI both exercises every parser invariant and stays
// deterministic. The same entry points back the optional libFuzzer
// harnesses under tools/fuzz/.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/test_seed.hpp"
#include "verify/fuzz.hpp"

namespace ftbesst::verify {
namespace {

constexpr std::uint64_t kBudget = 400;  // per target; ~instant in CI

TEST(Fuzz, AllTargetsRunCleanUnderBudget) {
  const std::uint64_t seed = test::test_seed(1);
  for (const FuzzResult& r : fuzz_all(seed, kBudget)) {
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(r.iterations, kBudget) << r.target;
    // The grammar generators must actually reach the accepting parse
    // paths, not just bounce off the first validation error.
    EXPECT_GT(r.accepted, 0u) << r.target;
  }
}

TEST(Fuzz, CampaignsAreDeterministicPerSeed) {
  const FuzzResult a = fuzz_json(99, 200);
  const FuzzResult b = fuzz_json(99, 200);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.bugs.size(), b.bugs.size());
  const FuzzResult c = fuzz_plan(7, 200);
  const FuzzResult d = fuzz_plan(7, 200);
  EXPECT_EQ(c.accepted, d.accepted);
}

bool feed(bool (*entry)(const std::uint8_t*, std::size_t),
          const std::string& text) {
  return entry(reinterpret_cast<const std::uint8_t*>(text.data()),
               text.size());
}

TEST(Fuzz, EntryPointsAcceptValidAndRejectHostileInput) {
  EXPECT_TRUE(feed(fuzz_json_one, "{\"a\":[1,2.5,null],\"b\":\"x\"}"));
  EXPECT_FALSE(feed(fuzz_json_one, "{\"a\":"));
  EXPECT_FALSE(feed(fuzz_json_one, std::string(200, '[')));  // depth bomb

  EXPECT_TRUE(feed(fuzz_plan_one, "L1:10,L4:100a"));
  EXPECT_TRUE(feed(fuzz_plan_one, ""));  // No-FT is a valid plan
  EXPECT_FALSE(feed(fuzz_plan_one, "L9:4"));
  EXPECT_FALSE(feed(fuzz_plan_one, "L1:-3"));

  EXPECT_TRUE(feed(fuzz_model_one, "ftbesst-model v1\nconstant 2.5\n"));
  EXPECT_FALSE(feed(fuzz_model_one, "not a model"));
  // Hostile count fields (grammar: powerlaw <coeff> <count> <exps...>)
  // must be rejected, not allocated.
  EXPECT_FALSE(
      feed(fuzz_model_one, "ftbesst-model v1\npowerlaw 1.0 99999999\n"));
  // Variable indices wider than the bytecode compiler's 16-bit operand
  // must be rejected at parse time (found by this fuzz target: the parse
  // used to accept them and the compile threw the wrong exception type).
  EXPECT_FALSE(feed(fuzz_model_one,
                    "ftbesst-model v1\nexprmodel 1.0 0.0 0\n"
                    "(mul (var 161067261) (const 2.0))\n"));

  // The wire codec never throws anything but clean rejections on garbage.
  EXPECT_NO_THROW((void)feed(fuzz_wire_one, "\xff\xff\xff\xff????"));
  EXPECT_NO_THROW((void)feed(fuzz_wire_one, std::string("\0\0\0\x02hi", 6)));
}

TEST(Fuzz, UnhexDecodesReproducers) {
  const std::vector<std::uint8_t> bytes = fuzz_unhex("00ff10a5");
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_EQ(bytes[1], 0xff);
  EXPECT_EQ(bytes[2], 0x10);
  EXPECT_EQ(bytes[3], 0xa5);
}

}  // namespace
}  // namespace ftbesst::verify
