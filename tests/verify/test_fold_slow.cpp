// Slow tier: the notional-machine fold invariant at full scale. Prices the
// 393,216-rank Vulcan corpus entry (and every other corpus scenario)
// through run_des with the unfolded-rank cap lifted, so the folded run is
// compared byte-exactly against a true 400k-component unfolded execution —
// several seconds of wall-clock, hence the `slow` ctest label. The tier-1
// fold replay (test_corpus.cpp) covers the same corpus with the Vulcan
// entry folded-only.

#include <gtest/gtest.h>

#include "verify/corpus.hpp"

#ifndef FTBESST_CORPUS_DIR
#error "FTBESST_CORPUS_DIR must point at tests/corpus"
#endif

namespace ftbesst::verify {
namespace {

TEST(FoldCorpusSlow, VulcanUnfoldedReplayMatchesByteExactly) {
  const CorpusReport report =
      replay_corpus_folded(FTBESST_CORPUS_DIR, std::int64_t{1} << 30);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.replayed, report.entries);
  EXPECT_GE(report.entries, 21);  // incl. the 393k-rank Vulcan entry
}

}  // namespace
}  // namespace ftbesst::verify
