// Golden corpus replay: the committed corpus must replay byte-exactly
// (threads 1 and 4), and the replay machinery must actually detect drift —
// a checker that cannot fail protects nothing.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "verify/corpus.hpp"
#include "verify/scenario.hpp"

#ifndef FTBESST_CORPUS_DIR
#error "FTBESST_CORPUS_DIR must point at tests/corpus"
#endif

namespace ftbesst::verify {
namespace {

namespace fs = std::filesystem;

TEST(Corpus, CommittedCorpusReplaysByteExactly) {
  const CorpusReport report = replay_corpus(FTBESST_CORPUS_DIR);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.entries, 20);  // curated coverage floor (ISSUE 5)
  EXPECT_EQ(report.replayed, report.entries);
}

TEST(Corpus, FoldedReplayMatchesUnfoldedByteExactly) {
  // Tier-1 fold invariant: every corpus machine prices identically with
  // symmetry folding on and off. The 393k-rank Vulcan entry stays under
  // the default unfolded-rank cap (folded-only here); the slow tier
  // (test_fold_slow.cpp) lifts the cap and runs it truly unfolded.
  const CorpusReport report = replay_corpus_folded(FTBESST_CORPUS_DIR);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.replayed, report.entries);
  EXPECT_GE(report.entries, 21);
}

TEST(Corpus, ResultTextIsThreadInvariant) {
  Scenario s;
  s.trials = 6;
  s.timesteps = 12;
  s.plan = {{ft::Level::kL1, 3, false}};
  s.inject_faults = true;
  s.node_mtbf_seconds = 400.0;
  const std::string serial = result_to_text(s, 1);
  EXPECT_EQ(result_to_text(s, 4), serial);
  EXPECT_NE(serial.find("ftbesst-verify-result v1"), std::string::npos);
}

/// Scratch corpus dir containing one trivial scenario.
fs::path make_scratch_corpus() {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "ftbesst-corpus-scratch";
  fs::remove_all(dir);
  fs::create_directories(dir);
  Scenario s;
  s.trials = 2;
  s.timesteps = 3;
  std::ofstream(dir / "tiny.scenario") << s.to_text();
  return dir;
}

TEST(Corpus, MissingExpectedFileIsReportedAsMismatch) {
  const fs::path dir = make_scratch_corpus();
  const CorpusReport report = replay_corpus(dir.string());
  ASSERT_EQ(report.mismatches.size(), 1u);
  EXPECT_EQ(report.mismatches[0].name, "tiny");
  // The report tells the operator how to record the baseline.
  EXPECT_NE(report.mismatches[0].detail.find("--update"), std::string::npos);
}

TEST(Corpus, RecordThenReplayIsCleanAndDriftIsDetected) {
  const fs::path dir = make_scratch_corpus();
  EXPECT_EQ(record_corpus(dir.string()), 1);
  EXPECT_TRUE(replay_corpus(dir.string()).ok());

  // Tamper with one recorded byte: replay must name the divergence.
  std::string recorded;
  {
    std::ifstream in(dir / "tiny.expected");
    recorded.assign(std::istreambuf_iterator<char>(in), {});
  }
  recorded.back() = recorded.back() == '0' ? '1' : '0';
  std::ofstream(dir / "tiny.expected") << recorded;
  const CorpusReport drift = replay_corpus(dir.string());
  ASSERT_EQ(drift.mismatches.size(), 1u);
  EXPECT_EQ(drift.mismatches[0].name, "tiny");
}

}  // namespace
}  // namespace ftbesst::verify
