// The differential checker checks the engines — these tests check the
// checker: a clean pass over generated scenarios, a guaranteed catch of a
// deliberately mis-priced checkpoint model (the harness's reason to exist),
// and deterministic shrinking.

#include <gtest/gtest.h>

#include <string>

#include "support/test_seed.hpp"
#include "verify/differential.hpp"
#include "verify/scenario.hpp"

namespace ftbesst::verify {
namespace {

TEST(Differential, GeneratedScenariosPassAllChecks) {
  const DiffReport report = run_differential(40, test::test_seed(1));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.scenarios, 40);
  EXPECT_EQ(report.analytic_checks, 40);
  EXPECT_EQ(report.thread_checks, 40);
  EXPECT_GT(report.engine_checks, 0);
  // Every scenario also prices an expression stream across the available
  // ExprProgram backends (bit-identity leg).
  EXPECT_GT(report.backend_checks, 0);
}

/// A scenario whose plan actually fires checkpoints, so checkpoint pricing
/// is on the analytic-twin critical path.
Scenario checkpointed_scenario() {
  Scenario s;
  s.timesteps = 8;
  s.plan = {{ft::Level::kL2, 2, false}};
  return s;
}

TEST(Differential, MispricedCheckpointModelIsCaught) {
  const Scenario s = checkpointed_scenario();

  // Control: correctly priced, every check passes.
  EXPECT_TRUE(check_scenario(s).ok());

  // A 0.1% error in the engines' checkpoint cost — the shape of an
  // off-by-one or dropped term in ft::CheckpointCostModel — must surface
  // as an analytic_twin failure (the twin prices the scenario
  // independently and is immune to the override).
  BuildOverrides skewed;
  skewed.checkpoint_cost_scale = 1.001;
  const DiffReport report = check_scenario(s, DiffTolerances{}, skewed);
  ASSERT_FALSE(report.ok());
  bool saw_analytic = false;
  for (const DiffFailure& f : report.failures)
    saw_analytic = saw_analytic || f.check == "analytic_twin";
  EXPECT_TRUE(saw_analytic) << report.summary();
}

TEST(Differential, EvenTinyMispricingIsCaught) {
  // Far below any plausible rounding slop, far above the 1e-9 contract.
  BuildOverrides skewed;
  skewed.checkpoint_cost_scale = 1.0 + 1e-6;
  const DiffReport report =
      check_scenario(checkpointed_scenario(), DiffTolerances{}, skewed);
  EXPECT_FALSE(report.ok());
}

TEST(Differential, ShrinkIsDeterministicAndMinimal) {
  ScenarioGenerator gen(test::test_seed(5));
  Scenario big = gen.next();
  big.timesteps = 32;
  big.plan = {{ft::Level::kL1, 2, false}, {ft::Level::kL3, 5, false}};

  // Failure model: any scenario that still fires an L1 checkpoint.
  const auto still_fails = [](const Scenario& s) {
    for (const auto& entry : s.plan)
      if (entry.level == ft::Level::kL1 && entry.period <= s.timesteps)
        return true;
    return false;
  };
  ASSERT_TRUE(still_fails(big));

  const Scenario small = shrink(big, still_fails);
  EXPECT_TRUE(still_fails(small));             // shrinking preserves failure
  EXPECT_LE(small.timesteps, big.timesteps);   // and removes structure
  EXPECT_LE(small.plan.size(), big.plan.size());
  EXPECT_EQ(small.plan.size(), 1u);            // the L3 entry was dropped
  EXPECT_FALSE(small.inject_faults);
  EXPECT_EQ(small.noise_sigma, 0.0);

  // Deterministic: shrinking again from the same start is byte-identical,
  // and the result is a fixpoint.
  EXPECT_EQ(shrink(big, still_fails).to_text(), small.to_text());
  EXPECT_EQ(shrink(small, still_fails).to_text(), small.to_text());
}

TEST(Differential, FailuresCarryReproducibleScenarioText) {
  BuildOverrides skewed;
  skewed.checkpoint_cost_scale = 1.001;
  const DiffReport report =
      check_scenario(checkpointed_scenario(), DiffTolerances{}, skewed);
  ASSERT_FALSE(report.ok());
  // The summary embeds a parseable scenario block for copy-paste replay.
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("ftbesst-scenario v1"), std::string::npos);
  EXPECT_NE(summary.find("analytic_twin"), std::string::npos);
  for (const DiffFailure& f : report.failures)
    EXPECT_NO_THROW((void)Scenario::from_text(f.scenario.to_text()));
}

}  // namespace
}  // namespace ftbesst::verify
