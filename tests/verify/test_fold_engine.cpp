// Engine-level symmetry folding: run_des with fold_symmetry on must price
// every deterministic scenario bitwise-identically to the unfolded engine
// while processing strictly fewer PDES events; the Monte-Carlo and
// DES-network paths must disable folding outright (per-rank RNG streams /
// physical network positions); divergent_ranks must break single ranks out
// of their class without perturbing predictions.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/engine_des.hpp"
#include "verify/scenario.hpp"

namespace ftbesst::verify {
namespace {

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// A symmetric machine big enough that folding has something to collapse:
/// 16 identical ranks, halo exchange, allreduce, and a two-level plan.
Scenario symmetric_scenario() {
  Scenario s;
  s.leaves = 2;
  s.nodes_per_leaf = 4;
  s.ranks_per_node = 2;
  s.ranks = 16;
  s.fti = {4, 2, 1};
  s.timesteps = 8;
  s.kernel_cost = 0.25;
  s.exchange_degree = 4;
  s.exchange_bytes = 1u << 16;
  s.allreduce_bytes = 4096;
  s.plan = {{ft::Level::kL1, 2, false}, {ft::Level::kL4, 4, false}};
  return s;
}

core::RunResult price(const Scenario& s, bool fold,
                      std::vector<std::int64_t> divergent = {}) {
  BuiltScenario built = build(s);
  built.options.fold_symmetry = fold;
  built.options.divergent_ranks = std::move(divergent);
  return core::run_des(built.app, built.arch, built.options);
}

void expect_identical_predictions(const core::RunResult& a,
                                  const core::RunResult& b) {
  EXPECT_TRUE(bits_equal({a.total_seconds}, {b.total_seconds}));
  EXPECT_TRUE(bits_equal(a.timestep_end_times, b.timestep_end_times));
  EXPECT_EQ(a.checkpoint_timesteps, b.checkpoint_timesteps);
  EXPECT_EQ(a.instructions_executed, b.instructions_executed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
}

TEST(EngineFold, FoldedMatchesUnfoldedBitwiseWithFewerEvents) {
  const Scenario s = symmetric_scenario();
  const core::RunResult folded = price(s, true);
  const core::RunResult unfolded = price(s, false);
  expect_identical_predictions(folded, unfolded);
  // 16 identical ranks collapse to one representative.
  EXPECT_LT(folded.sim_events, unfolded.sim_events);
  EXPECT_GT(folded.sim_events, 0u);
}

TEST(EngineFold, DivergentRanksBreakOutWithoutChangingPredictions) {
  const Scenario s = symmetric_scenario();
  const core::RunResult folded = price(s, true);
  const core::RunResult partial = price(s, true, {0, 5});
  const core::RunResult unfolded = price(s, false);
  expect_identical_predictions(partial, unfolded);
  // Two clones rejoin the event population: strictly between the extremes.
  EXPECT_GT(partial.sim_events, folded.sim_events);
  EXPECT_LT(partial.sim_events, unfolded.sim_events);
  // Out-of-range ids are ignored, not errors.
  const core::RunResult ignored = price(s, true, {-3, 1 << 20});
  EXPECT_EQ(ignored.sim_events, folded.sim_events);
}

TEST(EngineFold, MonteCarloDisablesFolding) {
  Scenario s = symmetric_scenario();
  s.monte_carlo = true;
  s.noise_sigma = 0.05;
  const core::RunResult on = price(s, true);
  const core::RunResult off = price(s, false);
  // Per-rank RNG streams make ranks non-equivalent: the fold flag must be
  // a no-op here, down to the event count.
  EXPECT_EQ(on.sim_events, off.sim_events);
  expect_identical_predictions(on, off);
}

TEST(EngineFold, DesNetworkDisablesFolding) {
  Scenario s = symmetric_scenario();
  const auto run = [&](bool fold) {
    BuiltScenario built = build(s);
    built.options.use_des_network = true;
    built.options.fold_symmetry = fold;
    return core::run_des(built.app, built.arch, built.options);
  };
  const core::RunResult on = run(true);
  const core::RunResult off = run(false);
  // Ranks occupy concrete network positions: folding must stay off.
  EXPECT_EQ(on.sim_events, off.sim_events);
  expect_identical_predictions(on, off);
}

TEST(EngineFold, AsymmetricPlansStillFoldPerClass) {
  // Same machine, but Monte-Carlo off and a rank count that is not a
  // multiple of anything special: every rank still runs the same AppBEO
  // program, so they all fold regardless of the FTI group structure.
  Scenario s = symmetric_scenario();
  s.ranks = 8;
  const core::RunResult folded = price(s, true);
  const core::RunResult unfolded = price(s, false);
  expect_identical_predictions(folded, unfolded);
  EXPECT_LT(folded.sim_events, unfolded.sim_events);
}

}  // namespace
}  // namespace ftbesst::verify
