// The `.scenario` text format is the verification harness's persistence
// layer: shrunk counterexamples and golden corpus entries both live in it,
// so round-tripping must be exact and parsing must be strict.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "support/test_seed.hpp"
#include "verify/scenario.hpp"

namespace ftbesst::verify {
namespace {

TEST(ScenarioText, DefaultScenarioRoundTripsExactly) {
  const Scenario s;
  const std::string text = s.to_text();
  const Scenario back = Scenario::from_text(text);
  EXPECT_EQ(back.to_text(), text);  // to_text is a fixpoint through parse
}

TEST(ScenarioText, GeneratedScenariosRoundTripExactly) {
  ScenarioGenerator gen(test::test_seed(2024));
  for (int i = 0; i < 50; ++i) {
    const Scenario s = gen.next();
    const std::string text = s.to_text();
    const Scenario back = Scenario::from_text(text);
    EXPECT_EQ(back.to_text(), text) << "scenario index " << i;
  }
}

TEST(ScenarioText, OmittedKeysKeepDefaults) {
  const Scenario parsed =
      Scenario::from_text("ftbesst-scenario v1\ntimesteps 7\n");
  const Scenario reference;
  EXPECT_EQ(parsed.timesteps, 7);
  EXPECT_EQ(parsed.trials, reference.trials);
  EXPECT_EQ(parsed.seed, reference.seed);
  EXPECT_EQ(parsed.kernel_cost, reference.kernel_cost);
  EXPECT_TRUE(parsed.plan.empty());
}

TEST(ScenarioText, CommentsAndBlankLinesAreIgnored) {
  const Scenario parsed = Scenario::from_text(
      "ftbesst-scenario v1\n\n# hand-written corpus entry\ntrials 3\n");
  EXPECT_EQ(parsed.trials, 3);
}

TEST(ScenarioText, StrictParsingRejectsBadInput) {
  EXPECT_THROW((void)Scenario::from_text(""), std::invalid_argument);
  EXPECT_THROW((void)Scenario::from_text("wrong-header v1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)Scenario::from_text(
                   "ftbesst-scenario v1\nno_such_key 1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)Scenario::from_text("ftbesst-scenario v1\ntrials banana\n"),
      std::invalid_argument);
  EXPECT_THROW((void)Scenario::from_text("ftbesst-scenario v1\nplan L9:4\n"),
               std::invalid_argument);
}

TEST(ScenarioText, PlanSpellingsRoundTrip) {
  Scenario s;
  s.plan = {{ft::Level::kL1, 3, false}, {ft::Level::kL4, 12, true}};
  EXPECT_EQ(plan_to_string(s.plan), "L1:3,L4:12a");
  const Scenario back = Scenario::from_text(s.to_text());
  ASSERT_EQ(back.plan.size(), 2u);
  EXPECT_EQ(back.plan[1].period, 12);
  EXPECT_TRUE(back.plan[1].async);
  EXPECT_TRUE(back.has_async());

  // Empty plan (No-FT) uses the "-" sentinel and comes back empty.
  s.plan.clear();
  EXPECT_FALSE(Scenario::from_text(s.to_text()).has_async());
  EXPECT_TRUE(Scenario::from_text(s.to_text()).plan.empty());
}

TEST(ScenarioBuild, RejectsInconsistentScenarios) {
  // More ranks than the machine can host.
  Scenario s;
  s.ranks = 10000;
  EXPECT_THROW((void)build(s), std::invalid_argument);

  // A checkpointing plan with faults requires a positive MTBF.
  Scenario faulty;
  faulty.inject_faults = true;
  faulty.node_mtbf_seconds = 0.0;
  EXPECT_THROW((void)build(faulty), std::invalid_argument);
}

TEST(ScenarioBuild, GeneratedScenariosAlwaysBuild) {
  ScenarioGenerator gen(test::test_seed(7));
  for (int i = 0; i < 50; ++i) {
    const Scenario s = gen.next();
    EXPECT_NO_THROW((void)build(s)) << "scenario index " << i << "\n"
                                    << s.to_text();
  }
}

}  // namespace
}  // namespace ftbesst::verify
