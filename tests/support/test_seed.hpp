#pragma once
// Seed plumbing for randomized tests.
//
// Every test that draws from util::Rng takes its seed through test_seed():
// the FTBESST_TEST_SEED environment variable, when set to an unsigned
// integer, overrides the test's built-in default. The effective seed is
// printed (and recorded as a gtest property), so a failing `ctest
// --output-on-failure` log always contains the exact line needed to
// reproduce the run:
//
//   FTBESST_TEST_SEED=12345 ctest -R <test> --output-on-failure
//
// A malformed value is ignored in favour of the default rather than
// aborting the suite.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

namespace ftbesst::test {

inline std::uint64_t test_seed(std::uint64_t default_seed) {
  std::uint64_t seed = default_seed;
  if (const char* env = std::getenv("FTBESST_TEST_SEED")) {
    try {
      seed = std::stoull(env);
    } catch (const std::exception&) {
      std::cerr << "[   SEED   ] ignoring malformed FTBESST_TEST_SEED=\""
                << env << "\"\n";
    }
  }
  ::testing::Test::RecordProperty("ftbesst_test_seed",
                                  std::to_string(seed));
  std::cout << "[   SEED   ] effective seed " << seed
            << " (override with FTBESST_TEST_SEED)\n";
  return seed;
}

}  // namespace ftbesst::test
