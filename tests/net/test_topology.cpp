#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ftbesst::net {
namespace {

TEST(FatTree, NodeCountAndLeafAssignment) {
  TwoStageFatTree ft(4, 8, 2);
  EXPECT_EQ(ft.num_nodes(), 32);
  EXPECT_EQ(ft.leaf_of(0), 0);
  EXPECT_EQ(ft.leaf_of(7), 0);
  EXPECT_EQ(ft.leaf_of(8), 1);
  EXPECT_EQ(ft.leaf_of(31), 3);
}

TEST(FatTree, HopCounts) {
  TwoStageFatTree ft(4, 8, 2);
  EXPECT_EQ(ft.hops(3, 3), 0);
  EXPECT_EQ(ft.hops(0, 7), 2);   // same leaf
  EXPECT_EQ(ft.hops(0, 8), 4);   // via spine
  EXPECT_EQ(ft.hops(31, 0), 4);
}

TEST(FatTree, DiameterAndBisection) {
  TwoStageFatTree ft(4, 8, 2);
  EXPECT_EQ(ft.diameter(), 4);
  EXPECT_DOUBLE_EQ(ft.bisection_links(), 4.0);  // 4 leaves * 2 spines / 2
  EXPECT_DOUBLE_EQ(ft.oversubscription(), 4.0);
  TwoStageFatTree single(1, 8, 1);
  EXPECT_EQ(single.diameter(), 2);
}

TEST(FatTree, RejectsBadDimensions) {
  EXPECT_THROW(TwoStageFatTree(0, 8, 2), std::invalid_argument);
  EXPECT_THROW(TwoStageFatTree(4, 0, 2), std::invalid_argument);
  EXPECT_THROW(TwoStageFatTree(4, 8, 0), std::invalid_argument);
}

TEST(FatTree, RejectsOutOfRangeNodes) {
  TwoStageFatTree ft(2, 2, 1);
  EXPECT_THROW((void)ft.hops(0, 4), std::out_of_range);
  EXPECT_THROW((void)ft.hops(-1, 0), std::out_of_range);
}

TEST(Torus, CoordinateRoundTrip) {
  Torus t({3, 4, 5});
  EXPECT_EQ(t.num_nodes(), 60);
  for (NodeId n = 0; n < 60; ++n)
    EXPECT_EQ(t.node_at(t.coords(n)), n);
}

TEST(Torus, RingDistancesWrap) {
  Torus ring({8});
  EXPECT_EQ(ring.hops(0, 1), 1);
  EXPECT_EQ(ring.hops(0, 4), 4);
  EXPECT_EQ(ring.hops(0, 7), 1);  // wraps
  EXPECT_EQ(ring.hops(1, 6), 3);
}

TEST(Torus, MultiDimDistanceIsManhattanWithWrap) {
  Torus t({4, 4});
  // node = row*4 + col
  EXPECT_EQ(t.hops(0, 5), 2);   // (0,0)->(1,1)
  EXPECT_EQ(t.hops(0, 15), 2);  // (0,0)->(3,3): wrap both dims
  EXPECT_EQ(t.hops(0, 10), 4);  // (0,0)->(2,2)
}

TEST(Torus, DiameterMatchesHalfDims) {
  Torus t({4, 6, 3});
  EXPECT_EQ(t.diameter(), 2 + 3 + 1);
}

TEST(Torus, BisectionUsesLargestDim) {
  Torus t({8, 4});
  EXPECT_DOUBLE_EQ(t.bisection_links(), 2.0 * 32 / 8);
}

TEST(Torus, RejectsBadInput) {
  EXPECT_THROW(Torus({}), std::invalid_argument);
  EXPECT_THROW(Torus({4, 0}), std::invalid_argument);
  Torus t({4});
  EXPECT_THROW((void)t.node_at({1, 1}), std::invalid_argument);
  EXPECT_THROW((void)t.node_at({5}), std::out_of_range);
}

class TopologySweep
    : public ::testing::TestWithParam<std::shared_ptr<Topology>> {};

TEST_P(TopologySweep, HopMetricProperties) {
  const auto& topo = *GetParam();
  const NodeId n = std::min<NodeId>(topo.num_nodes(), 24);
  for (NodeId a = 0; a < n; ++a) {
    EXPECT_EQ(topo.hops(a, a), 0);
    for (NodeId b = 0; b < n; ++b) {
      EXPECT_EQ(topo.hops(a, b), topo.hops(b, a)) << a << "," << b;
      if (a != b) {
        EXPECT_GE(topo.hops(a, b), 1);
      }
      EXPECT_LE(topo.hops(a, b), topo.diameter());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologySweep,
    ::testing::Values(std::make_shared<TwoStageFatTree>(4, 6, 2),
                      std::make_shared<TwoStageFatTree>(1, 24, 1),
                      std::make_shared<Torus>(std::vector<NodeId>{24}),
                      std::make_shared<Torus>(std::vector<NodeId>{4, 6}),
                      std::make_shared<Torus>(std::vector<NodeId>{2, 3, 4})));

}  // namespace
}  // namespace ftbesst::net
