#include "net/comm.hpp"

#include <gtest/gtest.h>

namespace ftbesst::net {
namespace {

CommParams test_params() {
  CommParams p;
  p.sw_latency = 100e-9;
  p.injection_latency = 1e-6;
  p.bandwidth = 10e9;
  p.congestion_gamma = 0.05;
  return p;
}

TEST(CommModel, PtpTimeDecomposesLatencyAndBandwidth) {
  TwoStageFatTree ft(4, 8, 2);
  CommModel comm(ft, test_params());
  // Same leaf: 2 hops.
  const double t_small = comm.ptp_time(0, 1, 0);
  EXPECT_NEAR(t_small, 1e-6 + 2 * 100e-9, 1e-12);
  // 1 MB message adds serialization at 10 GB/s.
  const double t_big = comm.ptp_time(0, 1, 1000000);
  EXPECT_NEAR(t_big - t_small, 1e-4, 1e-9);
  // Cross-leaf pays 2 extra hops.
  EXPECT_NEAR(comm.ptp_time(0, 9, 0) - t_small, 2 * 100e-9, 1e-12);
}

TEST(CommModel, SelfMessageIsFree) {
  TwoStageFatTree ft(2, 4, 1);
  CommModel comm(ft, test_params());
  EXPECT_DOUBLE_EQ(comm.ptp_time(3, 3, 12345), 0.0);
}

TEST(CommModel, CollectivesScaleLogarithmically) {
  TwoStageFatTree ft(64, 32, 32);
  CommModel comm(ft, test_params());
  const double b16 = comm.barrier_time(16);
  const double b256 = comm.barrier_time(256);
  EXPECT_NEAR(b256 / b16, 2.0, 1e-9);  // log2 256 / log2 16
  EXPECT_DOUBLE_EQ(comm.barrier_time(1), 0.0);
}

TEST(CommModel, AllreduceLatencyAndBandwidthTerms) {
  TwoStageFatTree ft(64, 32, 32);
  CommModel comm(ft, test_params());
  const double small = comm.allreduce_time(64, 8);
  const double large = comm.allreduce_time(64, 100000000);
  EXPECT_GT(large, small);
  // Large-message term is ~ 2 * bytes / bw.
  EXPECT_NEAR(large - small, 2.0 * (100000000 - 8) / 10e9, 1e-6);
  EXPECT_DOUBLE_EQ(comm.allreduce_time(1, 100), 0.0);
}

TEST(CommModel, MonotoneInRanksAndBytes) {
  Torus torus({8, 8, 8});
  CommModel comm(torus, test_params());
  EXPECT_LE(comm.allreduce_time(8, 1024), comm.allreduce_time(64, 1024));
  EXPECT_LE(comm.allreduce_time(64, 1024), comm.allreduce_time(64, 4096));
  EXPECT_LE(comm.broadcast_time(8, 1024), comm.broadcast_time(512, 1024));
  EXPECT_LE(comm.neighbor_exchange_time(8, 6, 1024),
            comm.neighbor_exchange_time(512, 6, 1024));
}

TEST(CommModel, ContentionKicksInAboveBisection) {
  TwoStageFatTree ft(4, 16, 2);  // bisection = 4 links
  CommModel comm(ft, test_params());
  EXPECT_DOUBLE_EQ(comm.contention_factor(1.0), 1.0);
  EXPECT_DOUBLE_EQ(comm.contention_factor(4.0), 1.0);
  EXPECT_GT(comm.contention_factor(64.0), 1.0);
  EXPECT_GT(comm.contention_factor(128.0), comm.contention_factor(64.0));
}

TEST(CommModel, NeighborExchangeGrowsWithDegree) {
  Torus torus({4, 4, 4});
  CommModel comm(torus, test_params());
  EXPECT_LT(comm.neighbor_exchange_time(64, 3, 65536),
            comm.neighbor_exchange_time(64, 6, 65536));
  EXPECT_DOUBLE_EQ(comm.neighbor_exchange_time(1, 6, 65536), 0.0);
  EXPECT_DOUBLE_EQ(comm.neighbor_exchange_time(64, 0, 65536), 0.0);
}

TEST(CommModel, AverageHopsIsWithinBounds) {
  Torus small({4, 4});
  CommModel c1(small, test_params());
  EXPECT_GT(c1.average_hops(), 0.0);
  EXPECT_LE(c1.average_hops(), small.diameter());

  Torus big({32, 32});  // exercises the sampled path (1024 > 256 nodes)
  CommModel c2(big, test_params());
  EXPECT_GT(c2.average_hops(), 0.0);
  EXPECT_LE(c2.average_hops(), big.diameter());
}

TEST(CommModel, RejectsInvalidParams) {
  TwoStageFatTree ft(2, 2, 1);
  CommParams bad = test_params();
  bad.bandwidth = 0.0;
  EXPECT_THROW(CommModel(ft, bad), std::invalid_argument);
  bad = test_params();
  bad.sw_latency = -1.0;
  EXPECT_THROW(CommModel(ft, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::net
