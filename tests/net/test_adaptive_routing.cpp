// Minimal-adaptive torus routing vs dimension-order.

#include <gtest/gtest.h>

#include "net/des_torus.hpp"
#include "util/rng.hpp"

namespace ftbesst::net {
namespace {

CommParams unit_params() {
  CommParams p;
  p.injection_latency = 1e-6;
  p.sw_latency = 1e-7;
  p.bandwidth = 1e9;
  return p;
}

sim::SimTime run_hotspot(TorusRouting routing) {
  // Many flows from node 0's row/column converge so that, under
  // dimension-order routing, they all resolve dimension 0 first and share
  // the same ring links; adaptive routing spreads over both dimensions.
  sim::Simulation sim;
  Torus topo({4, 4});
  DesTorus net(sim, topo, unit_params(), routing);
  sim::SimTime last = 0;
  for (NodeId n = 0; n < 16; ++n)
    net.on_delivery(n, [&last](const FlowMsg&, sim::SimTime when) {
      last = std::max(last, when);
    });
  // All-to-one onto node 15 with big messages (bandwidth-dominated).
  for (NodeId src = 0; src < 15; ++src) net.send(src, 15, 100000, 0);
  sim.run();
  return last;
}

TEST(AdaptiveRouting, NoWorseThanDimensionOrderOnHotspot) {
  const sim::SimTime dor = run_hotspot(TorusRouting::kDimensionOrder);
  const sim::SimTime adaptive = run_hotspot(TorusRouting::kMinimalAdaptive);
  EXPECT_LE(adaptive, dor);
}

TEST(AdaptiveRouting, StillDeliversEverythingMinimally) {
  sim::Simulation sim;
  Torus topo({3, 4, 5});
  DesTorus net(sim, topo, unit_params(), TorusRouting::kMinimalAdaptive);
  util::Rng rng(7);
  std::uint64_t expected_hops = 0;
  int sends = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto src = static_cast<NodeId>(rng.uniform_int(60));
    const auto dst = static_cast<NodeId>(rng.uniform_int(60));
    if (src == dst) continue;
    // Spread in time so no queueing: adaptive must still take shortest
    // paths (hop counts match the topology metric).
    net.send(src, dst, 64, static_cast<sim::SimTime>(trial) * 1000000);
    expected_hops += static_cast<std::uint64_t>(topo.hops(src, dst));
    ++sends;
  }
  sim.run();
  EXPECT_EQ(net.delivered(), static_cast<std::uint64_t>(sends));
  EXPECT_EQ(net.total_hops(), expected_hops);
}

TEST(AdaptiveRouting, UncongestedBehaviourMatchesDimensionOrder) {
  // A single message sees no backlog anywhere, so both policies pick a
  // minimal route and deliver at the same time.
  auto single = [](TorusRouting routing) {
    sim::Simulation sim;
    Torus topo({6, 6});
    DesTorus net(sim, topo, unit_params(), routing);
    sim::SimTime when = 0;
    net.on_delivery(21, [&when](const FlowMsg&, sim::SimTime t) { when = t; });
    net.send(0, 21, 5000, 0);
    sim.run();
    return when;
  };
  EXPECT_EQ(single(TorusRouting::kDimensionOrder),
            single(TorusRouting::kMinimalAdaptive));
}

}  // namespace
}  // namespace ftbesst::net
