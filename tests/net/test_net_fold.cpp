// Fold metadata emitted by the DES network substrates: on symmetric
// machines the fat-tree must collapse to exactly {nic, leaf-switch,
// spine-switch} and a torus to a single router class; breaking physical
// symmetry must split classes through the link signature alone.

#include <gtest/gtest.h>

#include "net/des_network.hpp"
#include "net/des_torus.hpp"
#include "net/topology.hpp"
#include "sim/fold.hpp"
#include "sim/simulation.hpp"

namespace ftbesst::net {
namespace {

TEST(NetFold, SymmetricFatTreeYieldsThreeClasses) {
  sim::Simulation sim;
  const TwoStageFatTree topo(3, 4, 2);  // 12 nodes, 3 leaves, 2 spines
  const DesNetwork net(sim, topo, {});
  const auto specs = net.fold_specs();
  ASSERT_EQ(specs.size(), 12u + 3u + 2u);
  const sim::FoldPlan plan = sim::plan_folds(specs);
  ASSERT_EQ(plan.groups().size(), 3u);  // nic, leaf-switch, spine-switch
  EXPECT_EQ(plan.groups()[0].multiplicity(), 12u);
  EXPECT_EQ(plan.groups()[1].multiplicity(), 3u);
  EXPECT_EQ(plan.groups()[2].multiplicity(), 2u);
  EXPECT_EQ(plan.folded_away(), 14u);
}

TEST(NetFold, CommParamsSplitFatTreeClasses) {
  sim::Simulation a_sim, b_sim;
  const TwoStageFatTree topo(2, 2, 1);
  CommParams fast;
  CommParams slow;
  slow.bandwidth = fast.bandwidth / 2;
  const DesNetwork fast_net(a_sim, topo, fast);
  const DesNetwork slow_net(b_sim, topo, slow);
  // Same machine shape, different config digest: classes must not match.
  EXPECT_NE(fast_net.fold_specs()[0].signature.config_digest,
            slow_net.fold_specs()[0].signature.config_digest);
}

TEST(NetFold, SymmetricTorusYieldsOneRouterClass) {
  sim::Simulation sim;
  const Torus topo({4, 4, 2});
  const DesTorus torus(sim, topo, {});
  const auto specs = torus.fold_specs();
  ASSERT_EQ(specs.size(), 32u);
  const sim::FoldPlan plan = sim::plan_folds(specs);
  ASSERT_EQ(plan.groups().size(), 1u);
  EXPECT_EQ(plan.groups()[0].multiplicity(), 32u);
}

TEST(NetFold, DegenerateTorusDimensionSplitsNothing) {
  // dims {4, 1}: the singleton dimension wires no links, so the machine is
  // a 4-ring — still one class.
  sim::Simulation sim;
  const Torus topo({4, 1});
  const DesTorus torus(sim, topo, {});
  const sim::FoldPlan plan = sim::plan_folds(torus.fold_specs());
  EXPECT_EQ(plan.groups().size(), 1u);
}

TEST(NetFold, AsymmetricTorusSplitsByOrbit) {
  // A 3x2 torus: dimension 0 is a 3-ring (distinct +/- neighbours),
  // dimension 1 a 2-ring (doubled link). All routers remain equivalent by
  // symmetry — the orbit is the whole machine.
  sim::Simulation sim;
  const Torus topo({3, 2});
  const DesTorus torus(sim, topo, {});
  const sim::FoldPlan plan = sim::plan_folds(torus.fold_specs());
  EXPECT_EQ(plan.groups().size(), 1u);
}

}  // namespace
}  // namespace ftbesst::net
