#include "net/des_torus.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace ftbesst::net {
namespace {

CommParams unit_params() {
  CommParams p;
  p.injection_latency = 1e-6;  // 1000 ns
  p.sw_latency = 1e-7;         // 100 ns per hop
  p.bandwidth = 1e9;           // 1 byte/ns
  return p;
}

struct Harness {
  explicit Harness(std::vector<NodeId> dims)
      : topo(std::move(dims)), net(sim, topo, unit_params()) {}
  sim::Simulation sim;
  Torus topo;
  DesTorus net;
  std::map<NodeId, std::vector<sim::SimTime>> arrivals;

  void capture(NodeId node) {
    net.on_delivery(node, [this, node](const FlowMsg&, sim::SimTime when) {
      arrivals[node].push_back(when);
    });
  }
};

TEST(DesTorus, SingleHopDeliveryTiming) {
  Harness h({4});
  h.capture(1);
  h.net.send(0, 1, 1000, 0);
  h.sim.run();
  ASSERT_EQ(h.arrivals[1].size(), 1u);
  // injection 1000 + serialization 1000 + link 100.
  EXPECT_EQ(h.arrivals[1][0], sim::SimTime{2100});
  EXPECT_EQ(h.net.total_hops(), 1u);
}

TEST(DesTorus, ShortestRingDirectionChosen) {
  Harness h({8});
  h.capture(7);
  h.net.send(0, 7, 100, 0);  // minus direction: 1 hop, not 7
  h.sim.run();
  EXPECT_EQ(h.net.total_hops(), 1u);
  EXPECT_EQ(h.net.delivered(), 1u);
}

TEST(DesTorus, DimensionOrderHopsMatchTopologyDistance) {
  Harness h({3, 4, 5});
  util::Rng rng(5);
  std::uint64_t expected_hops = 0;
  int sends = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto src = static_cast<NodeId>(rng.uniform_int(60));
    const auto dst = static_cast<NodeId>(rng.uniform_int(60));
    if (src == dst) continue;
    h.capture(dst);
    h.net.send(src, dst, 64, static_cast<sim::SimTime>(trial) * 1000000);
    expected_hops += static_cast<std::uint64_t>(h.topo.hops(src, dst));
    ++sends;
  }
  h.sim.run();
  EXPECT_EQ(h.net.delivered(), static_cast<std::uint64_t>(sends));
  EXPECT_EQ(h.net.total_hops(), expected_hops);
}

TEST(DesTorus, LoopbackDeliversAtInjection) {
  Harness h({4, 4});
  h.capture(5);
  h.net.send(5, 5, 999, sim::SimTime{500});
  h.sim.run();
  ASSERT_EQ(h.arrivals[5].size(), 1u);
  EXPECT_EQ(h.arrivals[5][0], sim::SimTime{500 + 1000});  // injection only
  EXPECT_EQ(h.net.total_hops(), 0u);
}

TEST(DesTorus, SharedRingLinkSerializes) {
  // 0->2 and 1->2 in a ring both use link 1->2 for their final hop; the
  // two 10 KB messages must be ~one serialization apart at the sink.
  Harness h({8});
  h.capture(2);
  h.net.send(0, 2, 10000, 0, 1);
  h.net.send(1, 2, 10000, 0, 2);
  h.sim.run();
  ASSERT_EQ(h.arrivals[2].size(), 2u);
  const sim::SimTime gap =
      std::max(h.arrivals[2][0], h.arrivals[2][1]) -
      std::min(h.arrivals[2][0], h.arrivals[2][1]);
  EXPECT_GE(gap, sim::SimTime{10000});
}

TEST(DesTorus, OppositeRingDirectionsDoNotInterfere) {
  Harness h({8});
  h.capture(1);
  h.capture(7);
  h.net.send(0, 1, 10000, 0);  // plus direction
  h.net.send(0, 7, 10000, 0);  // minus direction
  h.sim.run();
  ASSERT_EQ(h.arrivals[1].size(), 1u);
  ASSERT_EQ(h.arrivals[7].size(), 1u);
  // Both leave node 0 on different ports; serialization happens in
  // parallel apart from injection sharing at the source NIC, which this
  // model charges per-message; arrivals must be equal.
  EXPECT_EQ(h.arrivals[1][0], h.arrivals[7][0]);
}

TEST(DesTorus, DegenerateDimensionIsSkipped) {
  Harness h({1, 4});  // first dimension has no links
  h.capture(2);
  h.net.send(0, 2, 100, 0);
  h.sim.run();
  EXPECT_EQ(h.net.delivered(), 1u);
  EXPECT_EQ(h.net.total_hops(), 2u);
}

TEST(DesTorus, RejectsBadNodes) {
  Harness h({4});
  EXPECT_THROW(h.net.send(-1, 0, 1, 0), std::out_of_range);
  EXPECT_THROW(h.net.send(0, 4, 1, 0), std::out_of_range);
  EXPECT_THROW(h.net.on_delivery(9, nullptr), std::out_of_range);
}

TEST(DesTorus, FiveDimVulcanShape) {
  // A small 5-D torus (Vulcan was 5-D): routing still resolves correctly.
  Harness h({2, 2, 2, 2, 2});
  h.capture(31);
  h.net.send(0, 31, 256, 0);  // differs in all five dimensions
  h.sim.run();
  EXPECT_EQ(h.net.delivered(), 1u);
  EXPECT_EQ(h.net.total_hops(), 5u);
}

}  // namespace
}  // namespace ftbesst::net
