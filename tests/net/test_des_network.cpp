#include "net/des_network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ftbesst::net {
namespace {

CommParams fast_params() {
  CommParams p;
  p.injection_latency = 1e-6;
  p.sw_latency = 1e-7;
  p.bandwidth = 1e9;  // 1 GB/s -> 1 byte/ns, easy arithmetic
  return p;
}

struct Harness {
  sim::Simulation sim;
  TwoStageFatTree topo{4, 4, 2};
  DesNetwork net{sim, topo, fast_params()};
  std::map<NodeId, std::vector<std::pair<FlowMsg, sim::SimTime>>> arrivals;

  void capture(NodeId node) {
    net.on_delivery(node, [this, node](const FlowMsg& msg,
                                       sim::SimTime when) {
      arrivals[node].push_back({msg, when});
    });
  }
};

TEST(DesNetwork, DeliversSameLeafMessage) {
  Harness h;
  h.capture(1);
  h.net.send(0, 1, 1000, sim::SimTime{0});
  h.sim.run();
  ASSERT_EQ(h.arrivals[1].size(), 1u);
  const auto& [msg, when] = h.arrivals[1][0];
  EXPECT_EQ(msg.src, 0);
  EXPECT_EQ(msg.bytes, 1000u);
  // Path: NIC serialize (1000 ns) + inj latency (1000 ns) + leaf serialize
  // (1000 ns) + leaf->NIC latency (1000 ns, NIC links use inj latency).
  EXPECT_EQ(when, sim::SimTime{4000});
}

TEST(DesNetwork, CrossLeafTakesTheSpine) {
  Harness h;
  h.capture(5);  // leaf 1
  h.net.send(0, 5, 1000, sim::SimTime{0});
  h.sim.run();
  ASSERT_EQ(h.arrivals[5].size(), 1u);
  const sim::SimTime when = h.arrivals[5][0].second;
  // 4 serializations (NIC, leaf, spine, leaf) + 2 NIC-link latencies +
  // 2 switch-hop latencies = 4000 + 2000 + 200.
  EXPECT_EQ(when, sim::SimTime{6200});
}

TEST(DesNetwork, LoopbackIsImmediate) {
  Harness h;
  h.capture(3);
  h.net.send(3, 3, 123456, sim::SimTime{42});
  h.sim.run();
  ASSERT_EQ(h.arrivals[3].size(), 1u);
  EXPECT_EQ(h.arrivals[3][0].second, sim::SimTime{42});
}

TEST(DesNetwork, OutputPortSerializesCompetingMessages) {
  // Two nodes on leaf 0 send to the same destination on leaf 1 at t=0: the
  // shared leaf->dst-NIC port must serialize them ~1 message apart.
  Harness h;
  h.capture(4);
  h.net.send(0, 4, 10000, sim::SimTime{0}, /*tag=*/1);
  h.net.send(1, 4, 10000, sim::SimTime{0}, /*tag=*/2);
  h.sim.run();
  ASSERT_EQ(h.arrivals[4].size(), 2u);
  const sim::SimTime first = h.arrivals[4][0].second;
  const sim::SimTime second = h.arrivals[4][1].second;
  EXPECT_GE(second - first, sim::SimTime{10000});  // one serialization
}

TEST(DesNetwork, DisjointPathsDoNotInterfere) {
  // 0->4 and 8->12 share no links; both arrive at the solo-flow latency.
  Harness h;
  h.capture(4);
  h.capture(12);
  h.net.send(0, 4, 1000, sim::SimTime{0});
  h.net.send(8, 12, 1000, sim::SimTime{0});
  h.sim.run();
  ASSERT_EQ(h.arrivals[4].size(), 1u);
  ASSERT_EQ(h.arrivals[12].size(), 1u);
  EXPECT_EQ(h.arrivals[4][0].second, h.arrivals[12][0].second);
}

TEST(DesNetwork, IncastQueuesLinearly) {
  // Many senders to one node: k-th arrival is ~k serializations out.
  Harness h;
  h.capture(0);
  const std::uint64_t bytes = 50000;
  for (NodeId src = 4; src < 12; ++src)
    h.net.send(src, 0, bytes, sim::SimTime{0});
  h.sim.run();
  ASSERT_EQ(h.arrivals[0].size(), 8u);
  std::vector<sim::SimTime> times;
  for (const auto& [msg, when] : h.arrivals[0]) times.push_back(when);
  std::sort(times.begin(), times.end());
  // The last must trail the first by at least 7 serializations on the
  // shared final port.
  EXPECT_GE(times.back() - times.front(), sim::SimTime{7 * bytes});
}

TEST(DesNetwork, EcmpSpreadsFlowsAcrossSpines) {
  // With many distinct (src,dst) cross-leaf pairs, total completion should
  // beat single-spine serialization. Indirect check: aggregate time for 8
  // disjoint cross-leaf flows is far less than 8x one-flow serialization
  // chain through a single spine port.
  Harness h;
  const std::uint64_t bytes = 100000;
  for (int i = 0; i < 4; ++i) h.capture(8 + i);
  for (int i = 0; i < 4; ++i)
    h.net.send(i, 8 + i, bytes, sim::SimTime{0});
  h.sim.run();
  sim::SimTime last = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(h.arrivals[8 + i].size(), 1u);
    last = std::max(last, h.arrivals[8 + i][0].second);
  }
  // All four share leaf0's uplinks; with 2 spines the worst uplink carries
  // at most ~3 flows. Full serialization of 4 would be >= 4*bytes at the
  // leaf uplink alone plus per-hop work; require better than that.
  EXPECT_LT(last, sim::SimTime{4 * bytes + 4 * bytes});
  EXPECT_EQ(h.net.delivered(), 4u);
}

TEST(DesNetwork, RejectsBadNodes) {
  Harness h;
  EXPECT_THROW(h.net.send(-1, 0, 10, 0), std::out_of_range);
  EXPECT_THROW(h.net.send(0, 99, 10, 0), std::out_of_range);
  EXPECT_THROW(h.net.on_delivery(99, nullptr), std::out_of_range);
}

TEST(DesNetwork, AgreesWithAnalyticModelForSmallMessages) {
  // For latency-dominated messages the DES path time approaches the
  // analytic alpha model (store-and-forward penalty vanishes).
  Harness h;
  CommModel analytic(h.topo, fast_params());
  h.capture(5);
  h.net.send(0, 5, 8, sim::SimTime{0});
  h.sim.run();
  const double des_seconds = sim::to_seconds(h.arrivals[5][0].second);
  const double model_seconds = analytic.ptp_time(0, 5, 8);
  EXPECT_NEAR(des_seconds, model_seconds, model_seconds);  // same order
  EXPECT_GT(des_seconds, 0.0);
}

}  // namespace
}  // namespace ftbesst::net
