// Observation must never perturb simulation: running the exact same seeded
// workload with obs enabled and disabled must produce bit-identical results
// — not merely close ones. Covers the Monte-Carlo ensemble path (DES/BSP +
// task pool) and the symbolic-regression fit (pool + memoization).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/arch.hpp"
#include "core/beo.hpp"
#include "core/montecarlo.hpp"
#include "model/symreg.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace ftbesst {
namespace {

class BitIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::enable(false);
    obs::reset();
    obs::trace_reset();
  }
  void TearDown() override {
    obs::enable(false);
    obs::reset();
    obs::trace_reset();
  }
};

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

core::ArchBEO make_arch() {
  auto topo = std::make_shared<net::TwoStageFatTree>(2, 4, 1);
  core::ArchBEO arch("testmachine", topo, net::CommParams{}, 2);
  ft::FtiConfig fti;
  fti.group_size = 2;
  fti.node_size = 2;
  arch.set_fti(fti);
  arch.set_fault_process(ft::FaultProcess(50.0, 1.0));
  auto base = std::make_shared<model::ConstantModel>(1.0);
  arch.bind_kernel("work", std::make_shared<model::NoisyModel>(base, 0.2));
  arch.bind_kernel("ckpt_l1", std::make_shared<model::ConstantModel>(0.5));
  arch.bind_restart(ft::Level::kL1,
                    std::make_shared<model::ConstantModel>(2.0));
  return arch;
}

core::AppBEO make_app(int timesteps, int period) {
  core::AppBEO app("toy", 4);
  for (int step = 1; step <= timesteps; ++step) {
    app.compute("work", {4.0});
    app.end_timestep();
    if (period > 0 && step % period == 0)
      app.checkpoint(ft::Level::kL1, "ckpt_l1", {4.0});
  }
  return app;
}

void expect_bit_identical(const core::EnsembleResult& a,
                          const core::EnsembleResult& b) {
  ASSERT_EQ(a.totals.size(), b.totals.size());
  for (std::size_t i = 0; i < a.totals.size(); ++i)
    EXPECT_TRUE(bits_equal(a.totals[i], b.totals[i])) << "trial " << i;
  ASSERT_EQ(a.mean_timestep_end.size(), b.mean_timestep_end.size());
  for (std::size_t i = 0; i < a.mean_timestep_end.size(); ++i)
    EXPECT_TRUE(bits_equal(a.mean_timestep_end[i], b.mean_timestep_end[i]))
        << "timestep " << i;
  EXPECT_TRUE(bits_equal(a.total.mean, b.total.mean));
  EXPECT_TRUE(bits_equal(a.total.stddev, b.total.stddev));
  EXPECT_TRUE(bits_equal(a.mean_faults, b.mean_faults));
  EXPECT_TRUE(bits_equal(a.mean_rollbacks, b.mean_rollbacks));
  EXPECT_EQ(a.incomplete_trials, b.incomplete_trials);
}

TEST_F(BitIdentityTest, EnsembleObsOnVsOffBitIdentical) {
  const core::ArchBEO arch = make_arch();
  const core::AppBEO app = make_app(30, 5);
  core::EngineOptions opt;
  opt.seed = 42;
  opt.inject_faults = true;
  opt.downtime_seconds = 1.0;

  obs::enable(false);
  const auto off = core::run_ensemble(app, arch, opt, 24, /*threads=*/0);
  obs::enable(true);
  const auto on = core::run_ensemble(app, arch, opt, 24, /*threads=*/0);

  expect_bit_identical(off, on);
  EXPECT_GT(off.mean_faults, 0.0);  // the scenario actually faulted
  // And the instrumented run did record something.
  const auto snap = obs::scrape();
  EXPECT_EQ(snap.counter("mc.ensembles"), 1u);
  EXPECT_EQ(snap.counter("mc.trials"), 24u);
}

model::Dataset symreg_dataset() {
  util::Rng rng(9);
  model::Dataset d({"a", "b"});
  for (double a : {1.0, 2.0, 3.0, 4.0})
    for (double b : {1.0, 2.0, 5.0, 10.0}) {
      std::vector<double> samples;
      const double y = 2.0 * a * a + 0.5 * b;
      for (int s = 0; s < 5; ++s)
        samples.push_back(rng.lognormal_median(y, 0.05));
      d.add_row({a, b}, std::move(samples));
    }
  return d;
}

TEST_F(BitIdentityTest, SymRegFitObsOnVsOffBitIdentical) {
  const model::Dataset data = symreg_dataset();
  util::Rng split_rng_a(3);
  util::Rng split_rng_b(3);
  const auto [train_a, test_a] = data.split(0.75, split_rng_a);
  const auto [train_b, test_b] = data.split(0.75, split_rng_b);

  model::SymRegConfig cfg;
  cfg.population = 96;
  cfg.generations = 25;
  cfg.seed = 17;
  const model::SymbolicRegressor reg(cfg);

  obs::enable(false);
  const auto off = reg.fit(train_a, test_a);
  obs::enable(true);
  const auto on = reg.fit(train_b, test_b);

  EXPECT_TRUE(bits_equal(off.train_mape, on.train_mape));
  EXPECT_TRUE(bits_equal(off.test_mape, on.test_mape));
  EXPECT_EQ(off.generations_run, on.generations_run);
  ASSERT_EQ(off.best_history.size(), on.best_history.size());
  for (std::size_t i = 0; i < off.best_history.size(); ++i)
    EXPECT_TRUE(bits_equal(off.best_history[i], on.best_history[i]))
        << "generation " << i;
  ASSERT_TRUE(off.model);
  ASSERT_TRUE(on.model);
  EXPECT_EQ(off.model->describe(), on.model->describe());
  const std::vector<double> probe{3.5, 7.0};
  EXPECT_TRUE(bits_equal(off.model->predict(probe), on.model->predict(probe)));
  // The instrumented fit recorded per-generation stats (one tick per
  // evolutionary iteration = one best_history entry).
  const auto snap = obs::scrape();
  EXPECT_EQ(snap.counter("symreg.generations"), on.best_history.size());
  EXPECT_GT(snap.counter("symreg.evals"), 0u);
}

}  // namespace
}  // namespace ftbesst
