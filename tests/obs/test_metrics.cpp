// Metrics registry contract: thread-local sharded counters/histograms sum
// to exact totals across a hammering TaskPool workload, handles are
// idempotent per name, the disabled path records nothing, and the JSON
// export is well-formed.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "util/task_pool.hpp"

namespace ftbesst::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    enable(true);
    reset();
  }
  void TearDown() override {
    reset();
    enable(false);
  }
};

TEST_F(MetricsTest, RegistrationIsIdempotentPerName) {
  const Counter a = counter("test.idem");
  const Counter b = counter("test.idem");
  a.add(3);
  b.add(4);
  const auto snap = scrape();
  EXPECT_EQ(snap.counter("test.idem"), 7u);
  // Exactly one entry carries the name.
  std::size_t seen = 0;
  for (const auto& [name, value] : snap.counters)
    if (name == "test.idem") ++seen;
  EXPECT_EQ(seen, 1u);
}

TEST_F(MetricsTest, DisabledHandlesRecordNothing) {
  const Counter c = counter("test.disabled");
  const Histogram h = histogram("test.disabled_hist", {1.0, 2.0});
  enable(false);
  c.add(100);
  h.observe(1.5);
  enable(true);
  const auto snap = scrape();
  EXPECT_EQ(snap.counter("test.disabled"), 0u);
  ASSERT_NE(snap.histogram("test.disabled_hist"), nullptr);
  EXPECT_EQ(snap.histogram("test.disabled_hist")->count, 0u);
}

TEST_F(MetricsTest, GaugeSetAndMaxSemantics) {
  const Gauge g = gauge("test.gauge");
  g.set(5.0);
  g.max(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(scrape().gauge("test.gauge"), 5.0);
  g.max(9.0);  // new record
  EXPECT_DOUBLE_EQ(scrape().gauge("test.gauge"), 9.0);
  g.set(1.0);  // set always overwrites
  EXPECT_DOUBLE_EQ(scrape().gauge("test.gauge"), 1.0);
}

TEST_F(MetricsTest, HistogramBucketBoundsAreInclusiveUpper) {
  const Histogram h = histogram("test.buckets", {1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1.0 -> bucket 0
  h.observe(1.0);   // == bound -> bucket 0 (inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow
  h.observe(std::nan(""));  // unrankable -> overflow
  const auto snap = scrape();
  const HistogramSnapshot* hs = snap.histogram("test.buckets");
  ASSERT_NE(hs, nullptr);
  ASSERT_EQ(hs->buckets.size(), 4u);
  EXPECT_EQ(hs->buckets[0], 2u);
  EXPECT_EQ(hs->buckets[1], 1u);
  EXPECT_EQ(hs->buckets[2], 1u);
  EXPECT_EQ(hs->buckets[3], 2u);
  EXPECT_EQ(hs->count, 6u);
}

TEST_F(MetricsTest, HistogramFirstRegistrationBoundsWin) {
  const Histogram first = histogram("test.first_wins", {1.0, 10.0});
  const Histogram second = histogram("test.first_wins", {99.0});
  first.observe(5.0);
  second.observe(5.0);  // same underlying histogram, same bounds
  const auto snap = scrape();
  const auto* hs = snap.histogram("test.first_wins");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(hs->count, 2u);
  ASSERT_EQ(hs->buckets.size(), 3u);
  EXPECT_EQ(hs->buckets[1], 2u);  // both 5.0s in (1, 10]
}

TEST_F(MetricsTest, SnapshotQuantileInterpolates) {
  const Histogram h = histogram("test.quantile", {10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.observe(15.0);   // bucket (10, 20]
  const auto snap = scrape();
  const auto* hs = snap.histogram("test.quantile");
  ASSERT_NE(hs, nullptr);
  // Median sits at the bucket boundary; q=1 at the top of the occupied range.
  EXPECT_NEAR(hs->quantile(0.5), 10.0, 1.0);
  EXPECT_NEAR(hs->quantile(1.0), 20.0, 1e-9);
  EXPECT_NEAR(hs->quantile(0.0), 0.0, 1e-9);
}

TEST_F(MetricsTest, ConcurrentCountersScrapeExactTotals) {
  // N tasks on the shared pool hammering one counter and one histogram:
  // after TaskGroup::wait the scrape must see exactly every increment —
  // sharding may never lose or double-count.
  const Counter hits = counter("test.hammer");
  const Histogram lat = histogram("test.hammer_hist", {0.5, 1.5, 2.5});
  constexpr std::uint64_t kTasks = 64;
  constexpr std::uint64_t kItersPerTask = 10000;
  util::TaskGroup group;
  for (std::uint64_t t = 0; t < kTasks; ++t) {
    group.run([&, t] {
      for (std::uint64_t i = 0; i < kItersPerTask; ++i) {
        hits.add();
        lat.observe(static_cast<double>((t + i) % 3));  // 0, 1, or 2
      }
    });
  }
  group.wait();
  const auto snap = scrape();
  EXPECT_EQ(snap.counter("test.hammer"), kTasks * kItersPerTask);
  const auto* hs = snap.histogram("test.hammer_hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, kTasks * kItersPerTask);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : hs->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hs->count);
  // Values cycle 0,1,2 uniformly over iterations, so the sum is exact too.
  double expected_sum = 0.0;
  for (std::uint64_t t = 0; t < kTasks; ++t)
    for (std::uint64_t i = 0; i < kItersPerTask; ++i)
      expected_sum += static_cast<double>((t + i) % 3);
  EXPECT_DOUBLE_EQ(hs->sum, expected_sum);
}

TEST_F(MetricsTest, ExitedThreadShardsFoldIntoRetired) {
  // Increments made by threads that have already exited must survive in
  // the retired shard.
  const Counter c = counter("test.retired");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) c.add();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(scrape().counter("test.retired"), 8000u);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsNames) {
  const Counter c = counter("test.reset");
  const Gauge g = gauge("test.reset_gauge");
  c.add(5);
  g.set(2.0);
  reset();
  const auto snap = scrape();
  EXPECT_TRUE(snap.has_counter("test.reset"));
  EXPECT_EQ(snap.counter("test.reset"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("test.reset_gauge"), 0.0);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(scrape().counter("test.reset"), 1u);
}

TEST_F(MetricsTest, JsonExportIsWellFormed) {
  counter("test.json \"quoted\\name\"").add(2);
  gauge("test.json_gauge").set(1.25);
  histogram("test.json_hist", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  scrape().write_json(os);
  const std::string text = os.str();
  EXPECT_TRUE(testobs::json_valid(text)) << text;
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"le\": null"), std::string::npos);  // overflow bucket
}

TEST_F(MetricsTest, CompiledFlagMatchesBuild) {
  // The suite builds with the layer compiled in; enabled() must then follow
  // the runtime switch exactly.
  EXPECT_TRUE(compiled());
  EXPECT_TRUE(enabled());
  enable(false);
  EXPECT_FALSE(enabled());
  enable(true);
  EXPECT_TRUE(enabled());
}

}  // namespace
}  // namespace ftbesst::obs
