// Span tracing contract: RAII spans land in per-thread rings with correct
// nesting depth, worker spans survive thread exit, bounded rings account
// for their drops, and both export formats are well-formed.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "obs/obs.hpp"

namespace ftbesst::obs {
namespace {

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    enable(true);
    trace_reset();
  }
  void TearDown() override {
    trace_reset();
    enable(false);
  }
};

const SpanRecord* find_span(const TraceSnapshot& snap, const std::string& n) {
  for (const auto& rec : snap.spans)
    if (rec.name && n == rec.name) return &rec;
  return nullptr;
}

TEST_F(TracingTest, SpansRecordNameDurationAndNesting) {
  {
    FTBESST_OBS_SPAN("test.outer");
    {
      FTBESST_OBS_SPAN("test.inner");
    }
  }
  const auto snap = collect_spans();
  const SpanRecord* outer = find_span(snap, "test.outer");
  const SpanRecord* inner = find_span(snap, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->tid, inner->tid);
  // The inner span is contained in the outer one on the same clock.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_EQ(snap.dropped, 0u);
}

TEST_F(TracingTest, DisabledSpansRecordNothing) {
  enable(false);
  {
    FTBESST_OBS_SPAN("test.invisible");
  }
  enable(true);
  EXPECT_EQ(find_span(collect_spans(), "test.invisible"), nullptr);
}

TEST_F(TracingTest, SpanEnabledAtEntryStillClosesWhenDisabledAtExit) {
  // The RAII guard captures its fate at construction; flipping the switch
  // mid-span must not leak depth or lose the record.
  {
    Span span("test.mid_flip");
    enable(false);
  }
  enable(true);
  const auto snap = collect_spans();
  const SpanRecord* rec = find_span(snap, "test.mid_flip");
  ASSERT_NE(rec, nullptr);
  {
    FTBESST_OBS_SPAN("test.after_flip");
  }
  const auto snap2 = collect_spans();  // keep alive: rec points into it
  const SpanRecord* after = find_span(snap2, "test.after_flip");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->depth, 0u);  // depth counter returned to zero
}

TEST_F(TracingTest, WorkerThreadSpansSurviveThreadExit) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      FTBESST_OBS_SPAN("test.worker");
    });
  for (auto& th : threads) th.join();
  const auto snap = collect_spans();
  std::size_t workers = 0;
  std::set<std::uint32_t> tids;
  for (const auto& rec : snap.spans)
    if (rec.name && std::string("test.worker") == rec.name) {
      ++workers;
      tids.insert(rec.tid);
    }
  EXPECT_EQ(workers, 4u);
  EXPECT_EQ(tids.size(), 4u);  // each exited thread kept its own tid
}

TEST_F(TracingTest, RingOverflowDropsOldestAndCountsDrops) {
  constexpr std::size_t kOverfill = 10000;  // > ring capacity (8192)
  for (std::size_t i = 0; i < kOverfill; ++i) {
    FTBESST_OBS_SPAN("test.flood");
  }
  const auto snap = collect_spans();
  std::size_t kept = 0;
  for (const auto& rec : snap.spans)
    if (rec.name && std::string("test.flood") == rec.name) ++kept;
  EXPECT_LT(kept, kOverfill);
  EXPECT_GT(kept, 0u);
  EXPECT_EQ(snap.dropped, kOverfill - kept);
}

TEST_F(TracingTest, ChromeTraceExportIsWellFormedJson) {
  {
    FTBESST_OBS_SPAN("test.chrome \"escaped\"");
    FTBESST_OBS_SPAN("test.chrome_inner");
  }
  std::ostringstream os;
  write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_TRUE(testobs::json_valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(text.find("test.chrome_inner"), std::string::npos);
}

TEST_F(TracingTest, FlameSummaryAggregatesByName) {
  for (int i = 0; i < 3; ++i) {
    FTBESST_OBS_SPAN("test.flame");
  }
  std::ostringstream os;
  write_flame_summary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("test.flame"), std::string::npos);
  // One aggregate line per name, not one per record.
  std::size_t occurrences = 0;
  for (std::size_t pos = text.find("test.flame"); pos != std::string::npos;
       pos = text.find("test.flame", pos + 1))
    ++occurrences;
  EXPECT_EQ(occurrences, 1u);
}

TEST_F(TracingTest, TraceResetDiscardsRetainedSpans) {
  {
    FTBESST_OBS_SPAN("test.cleared");
  }
  ASSERT_NE(find_span(collect_spans(), "test.cleared"), nullptr);
  trace_reset();
  const auto snap = collect_spans();
  EXPECT_EQ(find_span(snap, "test.cleared"), nullptr);
  EXPECT_EQ(snap.dropped, 0u);
}

}  // namespace
}  // namespace ftbesst::obs
