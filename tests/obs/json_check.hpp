#pragma once
// Minimal strict JSON validator for obs-export tests. Not a parser — it
// only answers "is this well-formed RFC 8259 JSON?", which is what the
// Chrome-trace / metrics-snapshot schema checks need without pulling a
// JSON library into the build.

#include <cctype>
#include <cstddef>
#include <string_view>

namespace ftbesst::testobs {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool consume(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        if (eof()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
                return false;
              ++pos_;
            }
            break;
          }
          default: return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    consume('-');
    if (eof()) return false;
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline bool json_valid(std::string_view text) {
  return JsonChecker(text).valid();
}

}  // namespace ftbesst::testobs
