// End-to-end observability: a real LULESH_FTI run through the DES engine
// plus a symbolic-regression fit must populate the DES, task-pool, and
// symreg metrics in one scrape; spans must cover the instrumented regions;
// and --obs-out's directory writer must emit the three artifacts with
// well-formed contents.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "core/arch.hpp"
#include "core/engine_des.hpp"
#include "model/symreg.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

#include "json_check.hpp"

namespace ftbesst {
namespace {

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::enable(true);
    obs::reset();
    obs::trace_reset();
  }
  void TearDown() override {
    obs::enable(false);
    obs::reset();
    obs::trace_reset();
  }
};

ft::FtiConfig fti_cfg() {
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  return fti;
}

/// 8-node fat-tree, 2 ranks per node -> 16-rank machine; LULESH on 8 ranks
/// (a perfect cube) with L1 checkpoints every 5 timesteps.
core::ArchBEO make_lulesh_arch() {
  auto topo = std::make_shared<net::TwoStageFatTree>(2, 4, 1);
  core::ArchBEO arch("testmachine", topo, net::CommParams{}, 2);
  arch.set_fti(fti_cfg());
  arch.bind_kernel(apps::kLuleshTimestep,
                   std::make_shared<model::ConstantModel>(0.02));
  arch.bind_kernel(apps::checkpoint_kernel(ft::Level::kL1),
                   std::make_shared<model::ConstantModel>(0.1));
  return arch;
}

core::AppBEO make_lulesh_app() {
  apps::LuleshConfig cfg;
  cfg.epr = 5;
  cfg.ranks = 8;
  cfg.timesteps = 20;
  cfg.plan = {{ft::Level::kL1, 5}};
  cfg.fti = fti_cfg();
  return apps::build_lulesh_fti(cfg);
}

model::SymRegResult run_small_symreg_fit(util::TaskPool* pool = nullptr) {
  util::Rng rng(21);
  model::Dataset d({"a", "b"});
  for (double a : {1.0, 2.0, 3.0})
    for (double b : {2.0, 4.0, 8.0}) {
      // Noisy targets so the fit cannot hit the early-stop MAPE target in
      // generation zero and actually exercises the evolutionary loop.
      std::vector<double> samples;
      for (int s = 0; s < 3; ++s)
        samples.push_back(rng.lognormal_median(a * b + 0.3 * a * a, 0.1));
      d.add_row({a, b}, std::move(samples));
    }
  util::Rng split_rng(5);
  const auto [train, test] = d.split(0.7, split_rng);
  model::SymRegConfig cfg;
  cfg.population = 64;
  cfg.generations = 8;
  cfg.seed = 13;
  cfg.pool = pool;
  return model::SymbolicRegressor(cfg).fit(train, test);
}

TEST_F(ObsPipelineTest, LuleshDesRunPopulatesDesAndSimMetrics) {
  const core::ArchBEO arch = make_lulesh_arch();
  const core::AppBEO app = make_lulesh_app();
  const core::RunResult result = core::run_des(app, arch);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.total_seconds, 0.0);

  const auto snap = obs::scrape();
  EXPECT_EQ(snap.counter("des.runs"), 1u);
  EXPECT_GT(snap.counter("des.events"), 0u);
  EXPECT_GT(snap.counter("sim.events"), 0u);
  // The DES heap held at least one pending event at its high-water mark.
  EXPECT_GE(snap.gauge("des.heap_high_water"), 1.0);
  EXPECT_GE(snap.gauge("sim.heap_high_water"), 1.0);
  // Per-component busy time was folded in under a digit-stripped name
  // (rank0..rank7 share one "rank" counter).
  bool saw_busy = false;
  for (const auto& [name, value] : snap.counters)
    if (name.rfind("sim.busy_ns.", 0) == 0 && value > 0) saw_busy = true;
  EXPECT_TRUE(saw_busy);

  // The run is bracketed by a core.run_des span.
  const auto trace = obs::collect_spans();
  bool saw_span = false;
  for (const auto& rec : trace.spans)
    if (rec.name && std::string("core.run_des") == rec.name) saw_span = true;
  EXPECT_TRUE(saw_span);
}

TEST_F(ObsPipelineTest, SymRegFitPopulatesSymregAndPoolMetrics) {
  // Explicit 4-worker pool: on a 1-core machine the shared pool has a
  // single worker and parallel_for would run fully inline (0 tasks).
  util::TaskPool pool(4);
  const auto res = run_small_symreg_fit(&pool);
  ASSERT_TRUE(res.model);

  const auto snap = obs::scrape();
  // One generation counter tick per evolutionary iteration (early stop may
  // leave it short of the configured 8; generations_run tracks only the
  // champion's generation, so best_history is the ground truth).
  EXPECT_EQ(snap.counter("symreg.generations"), res.best_history.size());
  EXPECT_GT(snap.counter("symreg.evals"), 0u);
  // Parallel fitness evaluation submitted helper tasks to the pool
  // (counted in run_task, so helper-executed tasks are covered too).
  EXPECT_GT(snap.counter("pool.tasks"), 0u);
  const auto* fitness = snap.histogram("symreg.best_fitness");
  ASSERT_NE(fitness, nullptr);
  EXPECT_EQ(fitness->count, res.best_history.size());

  const auto trace = obs::collect_spans();
  bool saw_span = false;
  for (const auto& rec : trace.spans)
    if (rec.name && std::string("model.symreg_fit") == rec.name)
      saw_span = true;
  EXPECT_TRUE(saw_span);
}

TEST_F(ObsPipelineTest, WriteOutputDirEmitsValidArtifacts) {
  // Full workload first, so the artifacts carry real content.
  const core::ArchBEO arch = make_lulesh_arch();
  (void)core::run_des(make_lulesh_app(), arch);
  (void)run_small_symreg_fit();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ftbesst_obs_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(obs::write_output_dir(dir.string()));

  auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in(p);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };

  const std::string metrics = slurp(dir / "metrics.json");
  ASSERT_FALSE(metrics.empty());
  EXPECT_TRUE(testobs::json_valid(metrics)) << metrics;
  EXPECT_NE(metrics.find("des.runs"), std::string::npos);
  EXPECT_NE(metrics.find("pool.tasks"), std::string::npos);
  EXPECT_NE(metrics.find("symreg.generations"), std::string::npos);

  const std::string trace = slurp(dir / "trace.json");
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(testobs::json_valid(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("core.run_des"), std::string::npos);

  const std::string summary = slurp(dir / "summary.txt");
  EXPECT_NE(summary.find("core.run_des"), std::string::npos);
  EXPECT_NE(summary.find("model.symreg_fit"), std::string::npos);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ftbesst
