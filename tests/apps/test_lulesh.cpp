#include "apps/lulesh.hpp"

#include <gtest/gtest.h>

#include "apps/kernels.hpp"

namespace ftbesst::apps {
namespace {

TEST(Cube, PerfectCubeDetection) {
  for (std::int64_t n : {1, 8, 27, 64, 216, 512, 1000, 1331})
    EXPECT_TRUE(is_perfect_cube(n)) << n;
  for (std::int64_t n : {0, -8, 2, 9, 100, 999})
    EXPECT_FALSE(is_perfect_cube(n)) << n;
  EXPECT_EQ(cube_side(1000), 10);
  EXPECT_EQ(cube_side(1), 1);
  EXPECT_THROW((void)cube_side(10), std::invalid_argument);
}

TEST(LuleshSizes, CheckpointAndHaloBytesScale) {
  // 45 fields x 8 bytes x epr^3.
  EXPECT_EQ(lulesh_checkpoint_bytes(10), 45u * 8u * 1000u);
  EXPECT_EQ(lulesh_checkpoint_bytes(25), 45u * 8u * 15625u);
  EXPECT_EQ(lulesh_halo_bytes(10), 3u * 8u * 100u);
  EXPECT_THROW((void)lulesh_checkpoint_bytes(0), std::invalid_argument);
  EXPECT_THROW((void)lulesh_halo_bytes(-1), std::invalid_argument);
}

TEST(LuleshConfig, ValidatesCaseStudyConstraints) {
  LuleshConfig cfg;
  cfg.fti.group_size = 4;
  cfg.fti.node_size = 2;
  cfg.plan = {{ft::Level::kL1, 40}};
  // Perfect cubes divisible by 8 pass.
  for (std::int64_t ranks : {8, 64, 216, 512, 1000}) {
    cfg.ranks = ranks;
    EXPECT_NO_THROW(cfg.validate()) << ranks;
  }
  // Perfect cubes NOT divisible by group*node fail when checkpointing...
  for (std::int64_t ranks : {27, 125, 343, 729}) {
    cfg.ranks = ranks;
    EXPECT_THROW(cfg.validate(), std::invalid_argument) << ranks;
  }
  // ...but pass without a checkpoint plan (plain LULESH).
  cfg.plan.clear();
  cfg.ranks = 27;
  EXPECT_NO_THROW(cfg.validate());
  // Non-cubes always fail.
  cfg.ranks = 100;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(LuleshBuilder, ProgramShapeMatchesPlan) {
  LuleshConfig cfg;
  cfg.epr = 15;
  cfg.ranks = 64;
  cfg.timesteps = 200;
  cfg.fti.group_size = 4;
  cfg.fti.node_size = 2;
  cfg.plan = {{ft::Level::kL1, 40}, {ft::Level::kL2, 40}};
  const core::AppBEO app = build_lulesh_fti(cfg);
  EXPECT_EQ(app.timesteps(), 200);
  EXPECT_EQ(app.ranks(), 64);
  EXPECT_EQ(app.checkpoint_bytes_per_rank(), lulesh_checkpoint_bytes(15));
  // 200 computes + 200 markers + 5 L1 + 5 L2.
  EXPECT_EQ(app.size(), 200u + 200u + 10u);
  int checkpoints = 0;
  for (const auto& instr : app.program())
    if (instr.kind == core::InstrKind::kCheckpoint) {
      ++checkpoints;
      ASSERT_EQ(instr.params.size(), 2u);
      EXPECT_DOUBLE_EQ(instr.params[0], 15.0);
      EXPECT_DOUBLE_EQ(instr.params[1], 64.0);
    }
  EXPECT_EQ(checkpoints, 10);
  // The first checkpoint pair appears right after the 40th marker.
  int markers = 0;
  for (std::size_t i = 0; i < app.size(); ++i) {
    if (app.program()[i].kind == core::InstrKind::kTimestepEnd) ++markers;
    if (markers == 40) {
      EXPECT_EQ(app.program()[i + 1].kind, core::InstrKind::kCheckpoint);
      EXPECT_EQ(app.program()[i + 1].level, ft::Level::kL1);
      EXPECT_EQ(app.program()[i + 2].level, ft::Level::kL2);
      break;
    }
  }
}

TEST(LuleshBuilder, NoFtHasNoCheckpoints) {
  LuleshConfig cfg;
  cfg.ranks = 27;  // allowed without FTI
  cfg.timesteps = 10;
  const core::AppBEO app = build_lulesh_fti(cfg);
  for (const auto& instr : app.program())
    EXPECT_NE(instr.kind, core::InstrKind::kCheckpoint);
}

TEST(LuleshBuilder, ExplicitCommVariantHasExchanges) {
  LuleshConfig cfg;
  cfg.ranks = 64;
  cfg.timesteps = 5;
  const core::AppBEO app = build_lulesh_explicit_comm(cfg);
  int exchanges = 0, reduces = 0;
  for (const auto& instr : app.program()) {
    exchanges += instr.kind == core::InstrKind::kNeighborExchange;
    reduces += instr.kind == core::InstrKind::kAllReduce;
  }
  EXPECT_EQ(exchanges, 5);
  EXPECT_EQ(reduces, 5);
}

}  // namespace
}  // namespace ftbesst::apps
