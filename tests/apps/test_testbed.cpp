#include "apps/testbed.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/cmtbone.hpp"
#include "apps/kernels.hpp"
#include "util/stats.hpp"

namespace ftbesst::apps {
namespace {

ft::FtiConfig case_fti() {
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  return fti;
}

TEST(QuartzTestbed, TruthOrderingMatchesPaper) {
  const QuartzTestbed tb({}, case_fti());
  // Checkpoint kernels cost more than a timestep and scale faster with
  // ranks (the Figs. 5-6 ordering).
  for (int epr : {5, 10, 15, 20, 25}) {
    for (std::int64_t ranks : {8, 64, 216, 512, 1000}) {
      const double ts = tb.true_timestep(epr, ranks);
      const double l1 = tb.true_checkpoint(ft::Level::kL1, epr, ranks);
      const double l2 = tb.true_checkpoint(ft::Level::kL2, epr, ranks);
      EXPECT_GT(l1, 0.0);
      EXPECT_GT(l2, l1) << epr << "," << ranks;
      EXPECT_GT(ts, 0.0);
    }
  }
  // Weak-scaling timestep grows slowly in ranks; checkpoints grow quickly.
  const double ts_ratio =
      tb.true_timestep(25, 1000) / tb.true_timestep(25, 8);
  const double l2_ratio = tb.true_checkpoint(ft::Level::kL2, 25, 1000) /
                          tb.true_checkpoint(ft::Level::kL2, 25, 8);
  EXPECT_LT(ts_ratio, 2.5);
  EXPECT_GT(l2_ratio, ts_ratio);
}

TEST(QuartzTestbed, TruthGrowsWithProblemSize) {
  const QuartzTestbed tb({}, case_fti());
  for (std::int64_t ranks : {8, 1000}) {
    EXPECT_LT(tb.true_timestep(5, ranks), tb.true_timestep(25, ranks));
    for (ft::Level level : {ft::Level::kL1, ft::Level::kL2})
      EXPECT_LT(tb.true_checkpoint(level, 5, ranks),
                tb.true_checkpoint(level, 25, ranks));
  }
}

TEST(QuartzTestbed, MeasurementsAreNoisyAroundTruth) {
  const QuartzTestbed tb({}, case_fti());
  util::Rng rng(5);
  const std::vector<double> point{15.0, 216.0};
  const auto samples =
      tb.measure_kernel(kLuleshTimestep, point, 400, rng);
  EXPECT_EQ(samples.size(), 400u);
  const double truth = tb.true_timestep(15, 216);
  const double med = util::quantile(samples, 0.5);
  // Median within the configuration-effect band (~3 sigma of 5%).
  EXPECT_NEAR(med / truth, 1.0, 0.2);
  // And genuinely noisy.
  EXPECT_GT(util::sample_stddev(samples), 0.0);
}

TEST(QuartzTestbed, ConfigEffectIsReproducible) {
  const QuartzTestbed tb({}, case_fti());
  util::Rng r1(9), r2(9);
  const std::vector<double> point{10.0, 64.0};
  const auto a = tb.measure_kernel("ckpt_l1", point, 5, r1);
  const auto b = tb.measure_kernel("ckpt_l1", point, 5, r2);
  EXPECT_EQ(a, b);  // same machine, same run seed -> identical measurements
}

TEST(QuartzTestbed, DifferentMachineSeedsDifferentConfigEffects) {
  const QuartzTestbed tb1({}, case_fti(), 111);
  const QuartzTestbed tb2({}, case_fti(), 222);
  util::Rng r1(9), r2(9);
  const std::vector<double> point{10.0, 64.0};
  EXPECT_NE(tb1.measure_kernel("ckpt_l1", point, 1, r1),
            tb2.measure_kernel("ckpt_l1", point, 1, r2));
}

TEST(QuartzTestbed, RejectsBadKernelAndParams) {
  const QuartzTestbed tb({}, case_fti());
  util::Rng rng(1);
  EXPECT_THROW(tb.measure_kernel("nope", std::vector<double>{1.0, 8.0}, 1, rng),
               std::invalid_argument);
  EXPECT_THROW(
      tb.measure_kernel(kLuleshTimestep, std::vector<double>{1.0}, 1, rng),
      std::invalid_argument);
  EXPECT_THROW(tb.measure_kernel(kLuleshTimestep,
                                 std::vector<double>{1.0, 8.0}, 0, rng),
               std::invalid_argument);
}

TEST(QuartzTestbed, MeasuredRunHasCheckpointJumps) {
  const QuartzTestbed tb({}, case_fti());
  util::Rng rng(11);
  const auto run = tb.run_application(
      15, 64, 200, {{ft::Level::kL1, 40}, {ft::Level::kL2, 40}}, rng);
  ASSERT_EQ(run.timestep_end_times.size(), 200u);
  EXPECT_TRUE(std::is_sorted(run.timestep_end_times.begin(),
                             run.timestep_end_times.end()));
  // Step 200 is itself a checkpoint step, so the total exceeds the last
  // timestep boundary by one more L1+L2 instance.
  EXPECT_GT(run.total_seconds, run.timestep_end_times.back());
  // The gap across a checkpoint boundary (marker 40 -> 41, i.e. gaps[39])
  // far exceeds the median per-timestep gap.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < 200; ++i)
    gaps.push_back(run.timestep_end_times[i] - run.timestep_end_times[i - 1]);
  const double median_gap = util::quantile(gaps, 0.5);
  EXPECT_GT(gaps[39], 3.0 * median_gap);  // gap includes L1+L2 checkpoint
}

TEST(QuartzTestbed, NoFtRunHasNoJumps) {
  const QuartzTestbed tb({}, case_fti());
  util::Rng rng(12);
  const auto run = tb.run_application(10, 64, 100, {}, rng);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < 100; ++i)
    gaps.push_back(run.timestep_end_times[i] - run.timestep_end_times[i - 1]);
  EXPECT_LT(util::quantile(gaps, 1.0), 3.0 * util::quantile(gaps, 0.5));
}

TEST(Campaign, ProducesFullGridDatasets) {
  const QuartzTestbed tb({}, case_fti());
  CampaignSpec spec;
  spec.samples_per_point = 3;
  const auto datasets =
      run_campaign(tb, spec, {kLuleshTimestep, "ckpt_l1", "ckpt_l2"});
  ASSERT_EQ(datasets.size(), 3u);
  for (const auto& [kernel, data] : datasets) {
    EXPECT_EQ(data.num_rows(), 25u) << kernel;  // 5 eprs x 5 rank counts
    EXPECT_TRUE(data.is_full_grid()) << kernel;
    for (const auto& row : data.rows())
      EXPECT_EQ(row.samples.size(), 3u);
  }
  EXPECT_THROW(run_campaign(tb, spec, {}), std::invalid_argument);
}

TEST(VulcanTestbed, CmtBoneTruthAndMeasurement) {
  const VulcanTestbed tb;
  EXPECT_LT(tb.true_timestep(5, 32, 8), tb.true_timestep(5, 512, 8));
  EXPECT_LT(tb.true_timestep(5, 32, 8), tb.true_timestep(9, 32, 8));
  // Weak scaling: cost grows slowly in ranks (collective term only).
  EXPECT_LT(tb.true_timestep(5, 32, 1 << 20) / tb.true_timestep(5, 32, 8),
            2.0);
  util::Rng rng(3);
  const std::vector<double> point{5.0, 64.0, 512.0};
  const auto samples = tb.measure_kernel(kCmtBoneTimestep, point, 50, rng);
  EXPECT_EQ(samples.size(), 50u);
  for (double s : samples) EXPECT_GT(s, 0.0);
  EXPECT_THROW(tb.measure_kernel("other", point, 1, rng),
               std::invalid_argument);
  EXPECT_THROW(
      tb.measure_kernel(kCmtBoneTimestep, std::vector<double>{1.0}, 1, rng),
      std::invalid_argument);
}

TEST(CmtBoneBuilder, ProgramShape) {
  CmtBoneConfig cfg;
  cfg.timesteps = 7;
  cfg.ranks = 32;
  const core::AppBEO app = build_cmtbone(cfg);
  EXPECT_EQ(app.timesteps(), 7);
  int computes = 0, reduces = 0;
  for (const auto& instr : app.program()) {
    computes += instr.kind == core::InstrKind::kCompute;
    reduces += instr.kind == core::InstrKind::kAllReduce;
  }
  EXPECT_EQ(computes, 7);
  // The calibrated timestep kernel absorbs the dt reduction by default.
  EXPECT_EQ(reduces, 0);
  cfg.explicit_reduction = true;
  const core::AppBEO app2 = build_cmtbone(cfg);
  int reduces2 = 0;
  for (const auto& instr : app2.program())
    reduces2 += instr.kind == core::InstrKind::kAllReduce;
  EXPECT_EQ(reduces2, 7);
  CmtBoneConfig bad;
  bad.element_size = 1;
  EXPECT_THROW(build_cmtbone(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::apps
