#include "apps/minihydro.hpp"

#include <gtest/gtest.h>

#include "apps/testbed_local.hpp"

namespace ftbesst::apps {
namespace {

TEST(MiniHydro, RejectsTinyGrids) {
  EXPECT_THROW(MiniHydro(3), std::invalid_argument);
  EXPECT_NO_THROW(MiniHydro(4));
}

TEST(MiniHydro, MassConservedToRoundOff) {
  MiniHydro solver(12);
  const double mass0 = solver.total_mass();
  for (int s = 0; s < 50; ++s) solver.step(1e-3);
  EXPECT_NEAR(solver.total_mass(), mass0, 1e-9 * mass0);
}

TEST(MiniHydro, BlastDrivesOutflow) {
  MiniHydro solver(12);
  EXPECT_DOUBLE_EQ(solver.max_velocity(), 0.0);
  for (int s = 0; s < 20; ++s) solver.step(1e-3);
  EXPECT_GT(solver.max_velocity(), 0.0);  // the spike pushes gas outward
}

TEST(MiniHydro, EnergyStaysBoundedForStableDt) {
  MiniHydro solver(10);
  const double e0 = solver.total_energy();
  for (int s = 0; s < 100; ++s) solver.step(1e-3);
  const double e1 = solver.total_energy();
  EXPECT_GT(e1, 0.0);
  EXPECT_LT(e1, 3.0 * e0);  // no blow-up
}

TEST(MiniHydro, UniformStateIsAFixedPoint) {
  // Build a solver and overwrite the spike by evolving a fresh instance...
  // simpler: a uniform field has zero pressure gradient everywhere except
  // we always seed a blast; so instead check cells far from the blast stay
  // (nearly) at ambient density for a short run (causality).
  MiniHydro solver(16);
  for (int s = 0; s < 5; ++s) solver.step(1e-3);
  const auto& rho = solver.density();
  EXPECT_NEAR(rho[0], 1.0, 1e-9);  // corner: far from the central spike
}

TEST(MiniHydro, DeterministicEvolution) {
  MiniHydro a(8), b(8);
  for (int s = 0; s < 10; ++s) {
    a.step(1e-3);
    b.step(1e-3);
  }
  EXPECT_EQ(a.density(), b.density());
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
}

TEST(MiniHydro, BadDtRejected) {
  MiniHydro solver(8);
  EXPECT_THROW(solver.step(0.0), std::invalid_argument);
  EXPECT_THROW(solver.step(-1.0), std::invalid_argument);
}

TEST(LocalTestbed, MeasuresPositiveTimesThatGrowWithN) {
  const LocalTestbed machine;
  const auto small =
      machine.measure_kernel(kMiniHydroStep, std::vector<double>{8.0}, 3);
  const auto large =
      machine.measure_kernel(kMiniHydroStep, std::vector<double>{32.0}, 3);
  ASSERT_EQ(small.size(), 3u);
  for (double s : small) EXPECT_GT(s, 0.0);
  // 64x the cells: comfortably slower even with timer noise.
  EXPECT_GT(*std::min_element(large.begin(), large.end()),
            *std::min_element(small.begin(), small.end()));
}

TEST(LocalTestbed, CampaignProducesUsableDataset) {
  const LocalTestbed machine;
  const model::Dataset data = machine.run_campaign({8, 12, 16}, 3);
  EXPECT_EQ(data.num_rows(), 3u);
  EXPECT_EQ(data.param_names(), (std::vector<std::string>{"n"}));
  for (const auto& row : data.rows()) {
    EXPECT_EQ(row.samples.size(), 3u);
    EXPECT_GT(row.mean_response(), 0.0);
  }
}

TEST(LocalTestbed, RejectsBadRequests) {
  const LocalTestbed machine;
  EXPECT_THROW(
      (void)machine.measure_kernel("other", std::vector<double>{8.0}, 1),
      std::invalid_argument);
  EXPECT_THROW((void)machine.measure_kernel(kMiniHydroStep,
                                            std::vector<double>{}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)machine.measure_kernel(kMiniHydroStep,
                                            std::vector<double>{8.0}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)machine.run_campaign({}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::apps
