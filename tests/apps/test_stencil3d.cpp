#include "apps/stencil3d.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "net/topology.hpp"

namespace ftbesst::apps {
namespace {

TEST(Stencil3d, ConfigValidation) {
  Stencil3dConfig cfg;
  cfg.ranks = 27;
  EXPECT_NO_THROW(cfg.validate());
  cfg.ranks = 20;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.ranks = 27;
  cfg.nx = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = Stencil3dConfig{};
  cfg.residual_period = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // With a checkpoint plan, FTI's rank constraint also applies.
  cfg = Stencil3dConfig{};
  cfg.ranks = 27;
  cfg.plan = {{ft::Level::kL1, 10}};
  cfg.fti.group_size = 4;
  cfg.fti.node_size = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.ranks = 64;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Stencil3d, ByteAccounting) {
  EXPECT_EQ(stencil3d_halo_bytes(32), 32u * 32u * 8u);
  EXPECT_EQ(stencil3d_checkpoint_bytes(32), 2u * 32u * 32u * 32u * 8u);
  EXPECT_THROW((void)stencil3d_halo_bytes(0), std::invalid_argument);
}

TEST(Stencil3d, ProgramShape) {
  Stencil3dConfig cfg;
  cfg.nx = 16;
  cfg.ranks = 64;
  cfg.sweeps = 20;
  cfg.residual_period = 5;
  cfg.plan = {{ft::Level::kL1, 10}};
  cfg.fti.group_size = 4;
  cfg.fti.node_size = 2;
  const core::AppBEO app = build_stencil3d(cfg);
  EXPECT_EQ(app.timesteps(), 20);
  int computes = 0, exchanges = 0, reduces = 0, checkpoints = 0;
  for (const auto& instr : app.program()) {
    computes += instr.kind == core::InstrKind::kCompute;
    exchanges += instr.kind == core::InstrKind::kNeighborExchange;
    reduces += instr.kind == core::InstrKind::kAllReduce;
    checkpoints += instr.kind == core::InstrKind::kCheckpoint;
  }
  EXPECT_EQ(computes, 20);
  EXPECT_EQ(exchanges, 20);
  EXPECT_EQ(reduces, 4);     // every 5 sweeps
  EXPECT_EQ(checkpoints, 2); // every 10 sweeps
}

TEST(Stencil3d, SingleRankHasNoExchanges) {
  Stencil3dConfig cfg;
  cfg.ranks = 1;
  cfg.sweeps = 3;
  const core::AppBEO app = build_stencil3d(cfg);
  for (const auto& instr : app.program()) {
    if (instr.kind == core::InstrKind::kNeighborExchange) {
      EXPECT_EQ(instr.degree, 0);
    }
  }
}

TEST(Stencil3d, TestbedServesSweepKernel) {
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  const QuartzTestbed tb({}, fti);
  EXPECT_GT(tb.true_stencil_sweep(32), tb.true_stencil_sweep(16));
  util::Rng rng(5);
  const std::vector<double> point{32.0, 64.0};
  const auto samples = tb.measure_kernel(kStencilSweep, point, 30, rng);
  EXPECT_EQ(samples.size(), 30u);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Stencil3d, SimulatesOnBothNetworkSpeeds) {
  // Architectural DSE sanity: the same stencil app runs faster on a
  // higher-bandwidth interconnect (comm is explicit, so the network model
  // matters — unlike the LULESH aggregate-kernel path).
  auto topo = std::make_shared<net::TwoStageFatTree>(8, 8, 4);
  net::CommParams slow;
  slow.bandwidth = 1e9;
  net::CommParams fast;
  fast.bandwidth = 50e9;
  core::ArchBEO arch_slow("slow", topo, slow, 8);
  core::ArchBEO arch_fast("fast", topo, fast, 8);
  for (auto* arch : {&arch_slow, &arch_fast})
    arch->bind_kernel(kStencilSweep,
                      std::make_shared<model::ConstantModel>(0.002));
  Stencil3dConfig cfg;
  cfg.nx = 64;
  cfg.ranks = 64;
  cfg.sweeps = 50;
  const core::AppBEO app = build_stencil3d(cfg);
  const double slow_t = core::run_bsp(app, arch_slow).total_seconds;
  const double fast_t = core::run_bsp(app, arch_fast).total_seconds;
  EXPECT_LT(fast_t, slow_t);
}

}  // namespace
}  // namespace ftbesst::apps
