#include <gtest/gtest.h>

#include <memory>

#include "apps/stencil3d.hpp"
#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "net/topology.hpp"

namespace ftbesst::apps {
namespace {

TEST(StrongScaling, DecomposesGlobalGrid) {
  const auto cfg = Stencil3dConfig::strong_scaling(96, 27);
  EXPECT_EQ(cfg.nx, 32);
  EXPECT_EQ(cfg.ranks, 27);
  const auto cfg2 = Stencil3dConfig::strong_scaling(96, 8);
  EXPECT_EQ(cfg2.nx, 48);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(StrongScaling, RejectsNonDivisibleOrDegenerate) {
  EXPECT_THROW((void)Stencil3dConfig::strong_scaling(100, 27),
               std::invalid_argument);
  EXPECT_THROW((void)Stencil3dConfig::strong_scaling(96, 20),
               std::invalid_argument);
  // side 64 -> blocks of 1 cell.
  EXPECT_THROW((void)Stencil3dConfig::strong_scaling(64, 64 * 64 * 64),
               std::invalid_argument);
}

TEST(StrongScaling, ExhibitsDiminishingReturns) {
  // Compute per rank ~ nx^3 falls as 1/ranks, but halo comm per rank falls
  // only as ranks^-2/3 — so parallel efficiency degrades with rank count.
  auto topo = std::make_shared<net::TwoStageFatTree>(40, 8, 8);
  net::CommParams slow_net;
  slow_net.bandwidth = 0.5e9;
  core::ArchBEO arch("m", topo, slow_net, 8);
  // Per-sweep compute cost proportional to block volume.
  class CellModel final : public model::PerfModel {
   public:
    double predict(std::span<const double> p) const override {
      return 2e-9 * p[0] * p[0] * p[0];
    }
    std::string describe() const override { return "cells"; }
  };
  arch.bind_kernel(kStencilSweep, std::make_shared<CellModel>());

  double prev_time = 0.0;
  double prev_eff = 2.0;
  for (std::int64_t ranks : {std::int64_t{8}, std::int64_t{64},
                             std::int64_t{512}}) {
    const auto cfg = Stencil3dConfig::strong_scaling(192, ranks, 20);
    const double t =
        core::run_bsp(apps::build_stencil3d(cfg), arch).total_seconds;
    if (prev_time > 0.0) {
      const double speedup = prev_time / t;
      const double efficiency = speedup / 8.0;  // 8x the ranks each step
      EXPECT_GT(speedup, 1.0) << ranks;        // still worth scaling...
      EXPECT_LT(efficiency, prev_eff);         // ...at falling efficiency
      prev_eff = efficiency;
    }
    prev_time = t;
  }
}

}  // namespace
}  // namespace ftbesst::apps
