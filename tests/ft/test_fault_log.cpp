#include "ft/fault_log.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ftbesst::ft {
namespace {

TEST(WeibullShapeFromCv, KnownAnchors) {
  // Exponential: cv = 1 <-> shape = 1.
  EXPECT_NEAR(weibull_shape_from_cv(1.0), 1.0, 0.01);
  // Regular arrivals (small cv) -> large shape; bursty (large cv) -> small.
  EXPECT_GT(weibull_shape_from_cv(0.3), 2.0);
  EXPECT_LT(weibull_shape_from_cv(2.0), 0.7);
  // Clamps at the search boundary.
  EXPECT_DOUBLE_EQ(weibull_shape_from_cv(100.0), 0.2);
  EXPECT_DOUBLE_EQ(weibull_shape_from_cv(0.0), 10.0);
}

class RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(RoundTrip, RecoversGeneratingParameters) {
  const double true_shape = GetParam();
  const double true_mtbf = 2000.0;
  const std::int64_t nodes = 20;
  FaultProcess truth(true_mtbf, 0.7, true_shape);
  util::Rng rng(42);
  // A long log: enough gaps for stable moments.
  const auto log = truth.sample(nodes, 400000.0, rng);
  ASSERT_GT(log.size(), 1000u);

  const FaultModelEstimate est = estimate_fault_model(log, nodes);
  EXPECT_NEAR(est.node_mtbf / true_mtbf, 1.0, 0.10) << "shape " << true_shape;
  EXPECT_NEAR(est.weibull_shape, true_shape, 0.15 * true_shape + 0.1);
  EXPECT_NEAR(est.node_loss_fraction, 0.7, 0.05);
  // The reconstructed process is usable.
  const FaultProcess back = est.to_process();
  EXPECT_NEAR(back.system_mtbf(nodes), est.system_mtbf, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RoundTrip,
                         ::testing::Values(0.7, 1.0, 1.6));

TEST(EstimateFaultModel, InputValidation) {
  std::vector<FaultEvent> tiny(2);
  tiny[0].time = 1.0;
  tiny[1].time = 2.0;
  EXPECT_THROW((void)estimate_fault_model(tiny, 4), std::invalid_argument);

  std::vector<FaultEvent> unordered(3);
  unordered[0].time = 5.0;
  unordered[1].time = 2.0;
  unordered[2].time = 9.0;
  EXPECT_THROW((void)estimate_fault_model(unordered, 4),
               std::invalid_argument);

  std::vector<FaultEvent> simultaneous(3);
  EXPECT_THROW((void)estimate_fault_model(simultaneous, 4),
               std::invalid_argument);
  std::vector<FaultEvent> ok(3);
  ok[0].time = 1.0;
  ok[1].time = 2.0;
  ok[2].time = 3.0;
  EXPECT_THROW((void)estimate_fault_model(ok, 0), std::invalid_argument);
  EXPECT_NO_THROW((void)estimate_fault_model(ok, 4));
}

TEST(EstimateFaultModel, CrashOnlyLogGivesZeroLossFraction) {
  std::vector<FaultEvent> log(5);
  for (int i = 0; i < 5; ++i) {
    log[static_cast<std::size_t>(i)].time = i * 10.0;
    log[static_cast<std::size_t>(i)].kind = FailureKind::kProcessCrash;
  }
  const auto est = estimate_fault_model(log, 8);
  EXPECT_DOUBLE_EQ(est.node_loss_fraction, 0.0);
  EXPECT_DOUBLE_EQ(est.system_mtbf, 10.0);
  EXPECT_DOUBLE_EQ(est.node_mtbf, 80.0);
}

}  // namespace
}  // namespace ftbesst::ft
