#include "ft/gf256.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ftbesst::ft {
namespace {

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(GF256::add(7, 7), 0);
  EXPECT_EQ(GF256::sub(0x53, 0xCA), GF256::add(0x53, 0xCA));
}

TEST(GF256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256, KnownProducts) {
  // In the 0x11d field: 0x80 * 2 overflows once and reduces by the
  // generator polynomial -> 0x100 ^ 0x11d = 0x1d.
  EXPECT_EQ(GF256::mul(0x80, 0x02), 0x1d);
  // Carry-less product without overflow: 3 * 7 = (x+1)(x^2+x+1) = x^3+1.
  EXPECT_EQ(GF256::mul(0x03, 0x07), 0x09);
  // exp/log consistency: 2^8 = (2^4)^2.
  EXPECT_EQ(GF256::exp(8), GF256::mul(GF256::exp(4), GF256::exp(4)));
}

TEST(GF256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_NE(inv, 0);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  util::Rng rng(17);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
  }
}

TEST(GF256, MultiplicationCommutesAndAssociates) {
  util::Rng rng(18);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(256));
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    EXPECT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
  }
}

TEST(GF256, DistributesOverAddition) {
  util::Rng rng(19);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(256));
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(GF256, PowMatchesRepeatedMultiplication) {
  for (int a = 1; a < 256; a += 7) {
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 20; ++n) {
      EXPECT_EQ(GF256::pow(static_cast<std::uint8_t>(a), n), acc);
      acc = GF256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
  EXPECT_EQ(GF256::pow(0, 0), 1);
  EXPECT_EQ(GF256::pow(0, 5), 0);
}

TEST(GF256, GeneratorHasFullOrder) {
  // 2 is primitive: powers 2^0..2^254 hit every nonzero element once.
  std::vector<bool> seen(256, false);
  for (unsigned n = 0; n < 255; ++n) {
    const auto v = GF256::exp(n);
    EXPECT_FALSE(seen[v]) << "repeat at " << n;
    seen[v] = true;
  }
  EXPECT_FALSE(seen[0]);
}

}  // namespace
}  // namespace ftbesst::ft
