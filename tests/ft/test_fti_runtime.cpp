#include "ft/fti_runtime.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace ftbesst::ft {
namespace {

FtiConfig cfg4x2() {
  FtiConfig c;
  c.group_size = 4;
  c.node_size = 2;
  return c;
}

FtiRuntime::Blob blob_for(std::int64_t rank, int version = 0) {
  FtiRuntime::Blob b;
  for (int i = 0; i < 16 + rank % 5; ++i)  // deliberately uneven sizes
    b.push_back(static_cast<std::uint8_t>((rank * 31 + version * 7 + i) & 0xff));
  return b;
}

FtiRuntime make_runtime(std::int64_t ranks, int version = 0) {
  FtiRuntime rt(cfg4x2(), ranks);
  for (std::int64_t r = 0; r < ranks; ++r) rt.protect(r, blob_for(r, version));
  return rt;
}

TEST(FtiRuntime, ValidatesConfigAndInput) {
  EXPECT_THROW(FtiRuntime(cfg4x2(), 27), std::invalid_argument);
  FtiRuntime rt(cfg4x2(), 16);
  EXPECT_THROW(rt.protect(99, {}), std::out_of_range);
  EXPECT_THROW((void)rt.data(-1), std::out_of_range);
  EXPECT_THROW(rt.fail_node(99), std::out_of_range);
  // Checkpoint before all ranks protected is an error.
  rt.protect(0, blob_for(0));
  EXPECT_THROW(rt.checkpoint(Level::kL1), std::logic_error);
}

TEST(FtiRuntime, ProcessCrashRecoversAtEveryLevel) {
  for (Level level :
       {Level::kL1, Level::kL2, Level::kL3, Level::kL4}) {
    FtiRuntime rt = make_runtime(16);
    rt.checkpoint(level);
    rt.crash_processes();
    EXPECT_TRUE(rt.needs_recovery());
    ASSERT_TRUE(rt.recover().has_value()) << to_string(level);
    for (std::int64_t r = 0; r < 16; ++r)
      EXPECT_EQ(rt.data(r), blob_for(r)) << to_string(level) << " rank " << r;
  }
}

TEST(FtiRuntime, L1DiesWithNodeLossButL4Survives) {
  FtiRuntime l1 = make_runtime(16);
  l1.checkpoint(Level::kL1);
  l1.fail_node(3);
  EXPECT_FALSE(l1.recover().has_value());

  FtiRuntime l4 = make_runtime(16);
  l4.checkpoint(Level::kL4);
  for (std::int64_t n = 0; n < 8; ++n) l4.fail_node(n);  // everything burns
  ASSERT_TRUE(l4.recover().has_value());
  for (std::int64_t r = 0; r < 16; ++r) EXPECT_EQ(l4.data(r), blob_for(r));
}

TEST(FtiRuntime, L2PartnerCopyCoversSingleLoss) {
  FtiRuntime rt = make_runtime(16);
  rt.checkpoint(Level::kL2);
  rt.fail_node(2);
  ASSERT_TRUE(rt.recover().has_value());
  for (std::int64_t r = 0; r < 16; ++r) EXPECT_EQ(rt.data(r), blob_for(r));
  // Partner pair loss (node and its ring successor) is fatal for L2.
  FtiRuntime rt2 = make_runtime(16);
  rt2.checkpoint(Level::kL2);
  rt2.fail_node(0);
  rt2.fail_node(1);  // holds node 0's only copy
  EXPECT_FALSE(rt2.recover().has_value());
  // Non-partner pair in the same group is fine.
  FtiRuntime rt3 = make_runtime(16);
  rt3.checkpoint(Level::kL2);
  rt3.fail_node(0);
  rt3.fail_node(2);
  EXPECT_TRUE(rt3.recover().has_value());
}

TEST(FtiRuntime, L3ReconstructsUpToHalfGroup) {
  FtiRuntime rt = make_runtime(16);  // 8 nodes, 2 groups of 4
  rt.checkpoint(Level::kL3);
  rt.fail_node(0);
  rt.fail_node(2);  // 2 of 4 in group 0: exactly the tolerance
  ASSERT_TRUE(rt.recover().has_value());
  for (std::int64_t r = 0; r < 16; ++r) EXPECT_EQ(rt.data(r), blob_for(r));

  FtiRuntime rt2 = make_runtime(16);
  rt2.checkpoint(Level::kL3);
  rt2.fail_node(0);
  rt2.fail_node(1);
  rt2.fail_node(2);  // 3 of 4: beyond tolerance
  EXPECT_FALSE(rt2.recover().has_value());
}

TEST(FtiRuntime, L3LossesSpreadAcrossGroupsAreIndependent) {
  FtiRuntime rt = make_runtime(32);  // 16 nodes, 4 groups
  rt.checkpoint(Level::kL3);
  // Two losses in every group: all still within tolerance.
  for (std::int64_t g = 0; g < 4; ++g) {
    rt.fail_node(g * 4);
    rt.fail_node(g * 4 + 3);
  }
  ASSERT_TRUE(rt.recover().has_value());
  for (std::int64_t r = 0; r < 32; ++r) EXPECT_EQ(rt.data(r), blob_for(r));
}

TEST(FtiRuntime, RecoversMostRecentUsableCheckpoint) {
  FtiRuntime rt = make_runtime(16, /*version=*/0);
  const int first = rt.checkpoint(Level::kL4);
  // Progress, checkpoint again at L1 only.
  for (std::int64_t r = 0; r < 16; ++r) rt.protect(r, blob_for(r, 1));
  const int second = rt.checkpoint(Level::kL1);
  EXPECT_GT(second, first);

  // Node loss: the newer L1 is unusable, recovery falls back to the L4.
  rt.fail_node(5);
  const auto used = rt.recover();
  ASSERT_TRUE(used.has_value());
  EXPECT_EQ(*used, first);
  for (std::int64_t r = 0; r < 16; ++r) EXPECT_EQ(rt.data(r), blob_for(r, 0));

  // Process crash instead: the newer L1 wins.
  for (std::int64_t r = 0; r < 16; ++r) rt.protect(r, blob_for(r, 1));
  const int third = rt.checkpoint(Level::kL1);
  rt.crash_processes();
  const auto used2 = rt.recover();
  ASSERT_TRUE(used2.has_value());
  EXPECT_EQ(*used2, third);
  for (std::int64_t r = 0; r < 16; ++r) EXPECT_EQ(rt.data(r), blob_for(r, 1));
}

TEST(FtiRuntime, CheckpointWhileFailedIsAnError) {
  FtiRuntime rt = make_runtime(16);
  rt.checkpoint(Level::kL4);
  rt.fail_node(0);
  EXPECT_THROW(rt.checkpoint(Level::kL1), std::logic_error);
  EXPECT_THROW((void)rt.data(0), std::logic_error);
  ASSERT_TRUE(rt.recover().has_value());
  EXPECT_NO_THROW(rt.checkpoint(Level::kL1));
}

TEST(FtiRuntime, BestRecoverableDoesNotMutate) {
  FtiRuntime rt = make_runtime(16);
  rt.checkpoint(Level::kL4);
  rt.fail_node(1);
  EXPECT_TRUE(rt.best_recoverable().has_value());
  EXPECT_TRUE(rt.needs_recovery());  // unchanged
}

/// Property sweep: for random node-loss sets, the executable runtime and
/// the analytic recoverable() predicate must agree at every level.
class RuntimeVsPredicate : public ::testing::TestWithParam<Level> {};

TEST_P(RuntimeVsPredicate, AgreeOnRandomFailureSets) {
  const Level level = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(level) * 97 + 5);
  const std::int64_t ranks = 32;  // 16 nodes, 4 groups
  const FtiConfig cfg = cfg4x2();
  for (int trial = 0; trial < 40; ++trial) {
    FtiRuntime rt(cfg, ranks);
    for (std::int64_t r = 0; r < ranks; ++r) rt.protect(r, blob_for(r));
    rt.checkpoint(level);

    std::set<std::int64_t> victims;
    const std::size_t count = 1 + rng.uniform_int(5);
    while (victims.size() < count)
      victims.insert(static_cast<std::int64_t>(rng.uniform_int(16)));
    for (std::int64_t v : victims) rt.fail_node(v);

    FailureSet failures;
    failures.nodes.assign(victims.begin(), victims.end());
    failures.kind = FailureKind::kNodeLoss;
    const bool predicted = recoverable(level, cfg, ranks, failures);
    const bool actual = rt.recover().has_value();
    EXPECT_EQ(predicted, actual)
        << to_string(level) << " trial " << trial << " victims "
        << victims.size();
    if (actual) {
      for (std::int64_t r = 0; r < ranks; ++r)
        EXPECT_EQ(rt.data(r), blob_for(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, RuntimeVsPredicate,
                         ::testing::Values(Level::kL1, Level::kL2, Level::kL3,
                                           Level::kL4));

}  // namespace
}  // namespace ftbesst::ft
