#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ft/checkpoint_cost.hpp"
#include "ft/faults.hpp"
#include "ft/young_daly.hpp"
#include "util/stats.hpp"

namespace ftbesst::ft {
namespace {

TEST(FaultProcess, SystemMtbfScalesInverselyWithNodes) {
  FaultProcess fp(1e6);
  EXPECT_DOUBLE_EQ(fp.system_mtbf(1), 1e6);
  EXPECT_DOUBLE_EQ(fp.system_mtbf(1000), 1e3);
  EXPECT_THROW((void)fp.system_mtbf(0), std::invalid_argument);
}

TEST(FaultProcess, RejectsBadParameters) {
  EXPECT_THROW(FaultProcess(0.0), std::invalid_argument);
  EXPECT_THROW(FaultProcess(-5.0), std::invalid_argument);
  EXPECT_THROW(FaultProcess(1.0, 1.5), std::invalid_argument);
}

TEST(FaultProcess, SampleCountMatchesPoissonExpectation) {
  FaultProcess fp(1000.0);  // node MTBF 1000 s
  util::Rng rng(7);
  // 100 nodes over 1000 s -> expect ~100 events.
  std::vector<double> counts;
  for (int trial = 0; trial < 200; ++trial) {
    const auto events = fp.sample(100, 1000.0, rng);
    counts.push_back(static_cast<double>(events.size()));
    // Ordered in time, nodes in range.
    for (std::size_t i = 1; i < events.size(); ++i)
      EXPECT_GE(events[i].time, events[i - 1].time);
    for (const auto& e : events) {
      EXPECT_GE(e.node, 0);
      EXPECT_LT(e.node, 100);
      EXPECT_LT(e.time, 1000.0);
    }
  }
  EXPECT_NEAR(util::mean(counts), 100.0, 3.0);
}

TEST(FaultProcess, LossFractionControlsKind) {
  util::Rng rng(8);
  FaultProcess crashes_only(100.0, 0.0);
  for (const auto& e : crashes_only.sample(50, 200.0, rng))
    EXPECT_EQ(e.kind, FailureKind::kProcessCrash);
  FaultProcess losses_only(100.0, 1.0);
  for (const auto& e : losses_only.sample(50, 200.0, rng))
    EXPECT_EQ(e.kind, FailureKind::kNodeLoss);
}

TEST(FaultProcess, NextAfterIsMemorylessDraw) {
  FaultProcess fp(100.0);
  util::Rng rng(9);
  std::vector<double> gaps;
  for (int i = 0; i < 20000; ++i)
    gaps.push_back(fp.next_after(500.0, 10, rng).time - 500.0);
  // Rate = 10/100 = 0.1 -> mean gap 10 s.
  EXPECT_NEAR(util::mean(gaps), 10.0, 0.3);
}

TEST(YoungDaly, YoungIntervalFormula) {
  EXPECT_DOUBLE_EQ(young_interval(50.0, 10000.0), std::sqrt(2 * 50.0 * 10000.0));
  EXPECT_THROW((void)young_interval(-1.0, 100.0), std::invalid_argument);
  EXPECT_THROW((void)young_interval(1.0, 0.0), std::invalid_argument);
}

TEST(YoungDaly, DalyRefinementCloseToYoungForSmallC) {
  const double c = 10.0, m = 1e5;
  const double young = young_interval(c, m);
  const double daly = daly_interval(c, m);
  EXPECT_NEAR(daly / young, 1.0, 0.05);
  // Degenerate regime falls back to MTBF.
  EXPECT_DOUBLE_EQ(daly_interval(300.0, 100.0), 100.0);
}

TEST(YoungDaly, ExpectedRuntimeMinimizedNearYoungInterval) {
  const double work = 36000.0, c = 30.0, r = 60.0, m = 3600.0;
  const double tau_star = young_interval(c, m);
  const double at_star = expected_runtime_cr(work, tau_star, c, r, m);
  // The optimum beats intervals 4x away on either side.
  EXPECT_LT(at_star, expected_runtime_cr(work, tau_star / 4.0, c, r, m));
  EXPECT_LT(at_star, expected_runtime_cr(work, tau_star * 4.0, c, r, m));
  EXPECT_GT(at_star, work);  // FT always costs something
}

TEST(YoungDaly, ThrashingRegimeIsInfinite) {
  // Interval/2 + R >= MTBF -> no forward progress.
  EXPECT_TRUE(std::isinf(expected_runtime_cr(100.0, 2000.0, 1.0, 10.0, 100.0)));
}

TEST(YoungDaly, NoFtRuntimeExplodesExponentially) {
  const double m = 1000.0;
  EXPECT_NEAR(expected_runtime_no_ft(1.0, m), 1.0, 0.01);  // work << MTBF
  const double t5 = expected_runtime_no_ft(5 * m, m);
  EXPECT_GT(t5, 100 * m);  // e^5 - 1 ~ 147
}

TEST(CheckpointCost, LevelOrderingAtCaseStudyScale) {
  FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  CheckpointCostModel m(StorageParams{}, fti);
  const std::uint64_t bytes = 100'000'000;  // 100 MB per rank
  const std::int64_t ranks = 512;
  const double l1 = m.cost(Level::kL1, bytes, ranks);
  const double l2 = m.cost(Level::kL2, bytes, ranks);
  const double l3 = m.cost(Level::kL3, bytes, ranks);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l1, l3);
  EXPECT_GT(l1, 0.0);
  // Restart costs are positive and at least the local read.
  for (Level level : {Level::kL1, Level::kL2, Level::kL3, Level::kL4})
    EXPECT_GT(m.restart_cost(level, bytes, ranks), 0.0);
}

TEST(CheckpointCost, L2GrowsWithScaleFasterThanL1) {
  FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  CheckpointCostModel m(StorageParams{}, fti);
  const std::uint64_t bytes = 50'000'000;
  const double l1_small = m.cost(Level::kL1, bytes, 8);
  const double l1_big = m.cost(Level::kL1, bytes, 1000);
  const double l2_small = m.cost(Level::kL2, bytes, 8);
  const double l2_big = m.cost(Level::kL2, bytes, 1000);
  EXPECT_GT(l2_big / l2_small, l1_big / l1_small);
}

TEST(CheckpointCost, L4ScalesLinearlyWithRanks) {
  FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  StorageParams storage;
  CheckpointCostModel m(storage, fti);
  const std::uint64_t bytes = 10'000'000;
  const double t64 = m.cost(Level::kL4, bytes, 64);
  const double t512 = m.cost(Level::kL4, bytes, 512);
  // PFS term dominates; 8x the ranks ~ 8x the flush volume.
  const double pfs64 = 64.0 * bytes / storage.pfs_bw;
  const double pfs512 = 512.0 * bytes / storage.pfs_bw;
  EXPECT_NEAR(t512 - t64, pfs512 - pfs64, 1e-3);
}

TEST(CheckpointCost, MoreDataCostsMore) {
  FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  CheckpointCostModel m(StorageParams{}, fti);
  for (Level level : {Level::kL1, Level::kL2, Level::kL3, Level::kL4})
    EXPECT_LT(m.cost(level, 1'000'000, 64), m.cost(level, 100'000'000, 64))
        << to_string(level);
}

TEST(CheckpointCost, InvalidRanksRejected) {
  FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  CheckpointCostModel m(StorageParams{}, fti);
  EXPECT_THROW((void)m.cost(Level::kL1, 1000, 27), std::invalid_argument);
  StorageParams bad;
  bad.pfs_bw = 0.0;
  EXPECT_THROW(CheckpointCostModel(bad, fti), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::ft
