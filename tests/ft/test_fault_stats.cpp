// Statistical contract of ft::FaultProcess sampling (src/ft/faults.cpp):
// the renewal process must deliver the advertised system MTBF for every
// Weibull shape (the scale is re-derived from the shape), next_after must
// advance strictly and stay inside the machine, and the loss-fraction knob
// must split FailureKind in the advertised proportion. Tolerances are set
// from the CLT at the drawn sample sizes (several thousand events), wide
// enough to hold for any seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ft/faults.hpp"
#include "support/test_seed.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ftbesst::ft {
namespace {

constexpr double kNodeMtbf = 1000.0;
constexpr std::int64_t kNodes = 10;
constexpr double kSystemMtbf = kNodeMtbf / kNodes;  // 100 s

std::vector<double> interarrival_gaps(const FaultProcess& fp,
                                      double horizon, util::Rng& rng) {
  std::vector<double> gaps;
  double prev = 0.0;
  for (const FaultEvent& ev : fp.sample(kNodes, horizon, rng)) {
    gaps.push_back(ev.time - prev);
    prev = ev.time;
  }
  return gaps;
}

TEST(FaultStats, ExponentialInterarrivalMeanMatchesSystemMtbf) {
  util::Rng rng(test::test_seed(101));
  FaultProcess fp(kNodeMtbf, 1.0, 1.0);
  const auto gaps = interarrival_gaps(fp, 400000.0, rng);  // ~4000 events
  ASSERT_GT(gaps.size(), 2000u);
  // stderr ~ 100/sqrt(4000) ~ 1.6 s; 5 sigma.
  EXPECT_NEAR(util::mean(gaps), kSystemMtbf, 8.0);
}

TEST(FaultStats, WeibullInterarrivalMeanIsPinnedForNonUnitShapes) {
  util::Rng rng(test::test_seed(102));
  for (const double shape : {0.7, 1.6, 2.5}) {
    FaultProcess fp(kNodeMtbf, 1.0, shape);
    const auto gaps = interarrival_gaps(fp, 400000.0, rng);
    ASSERT_GT(gaps.size(), 2000u) << "shape " << shape;
    // Bursty shapes (k<1) have cv > 1, so allow a wider band there.
    EXPECT_NEAR(util::mean(gaps), kSystemMtbf, shape < 1.0 ? 12.0 : 8.0)
        << "shape " << shape;
  }
}

TEST(FaultStats, NextAfterIsStrictlyMonotoneAndInMachine) {
  util::Rng rng(test::test_seed(103));
  for (const double shape : {1.0, 0.8, 2.0}) {
    FaultProcess fp(kNodeMtbf, 0.5, shape);
    double t = 0.0;
    for (int i = 0; i < 2000; ++i) {
      const FaultEvent ev = fp.next_after(t, kNodes, rng);
      ASSERT_GT(ev.time, t) << "shape " << shape << " step " << i;
      ASSERT_GE(ev.node, 0);
      ASSERT_LT(ev.node, kNodes);
      t = ev.time;
    }
  }
}

TEST(FaultStats, NextAfterExponentialMeanStepIsSystemMtbf) {
  // For shape 1 the renewal draw is the exact memoryless interarrival, so
  // the mean step of next_after equals the system MTBF.
  util::Rng rng(test::test_seed(104));
  FaultProcess fp(kNodeMtbf, 1.0, 1.0);
  std::vector<double> steps;
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const FaultEvent ev = fp.next_after(t, kNodes, rng);
    steps.push_back(ev.time - t);
    t = ev.time;
  }
  EXPECT_NEAR(util::mean(steps), kSystemMtbf, 8.0);
}

TEST(FaultStats, LossFractionSplitsFailureKindsProportionally) {
  util::Rng rng(test::test_seed(105));
  for (const double loss : {0.0, 0.3, 1.0}) {
    FaultProcess fp(kNodeMtbf, loss, 1.0);
    const auto events = fp.sample(kNodes, 400000.0, rng);
    ASSERT_GT(events.size(), 2000u) << "loss " << loss;
    const auto losses = static_cast<double>(std::count_if(
        events.begin(), events.end(), [](const FaultEvent& ev) {
          return ev.kind == FailureKind::kNodeLoss;
        }));
    const double fraction = losses / static_cast<double>(events.size());
    if (loss == 0.0) {
      EXPECT_EQ(fraction, 0.0);
    } else if (loss == 1.0) {
      EXPECT_EQ(fraction, 1.0);
    } else {
      // Binomial stderr ~ sqrt(0.3*0.7/4000) ~ 0.007; 5 sigma.
      EXPECT_NEAR(fraction, loss, 0.04);
    }
  }
}

TEST(FaultStats, SampleIsTimeOrderedWithinHorizon) {
  util::Rng rng(test::test_seed(106));
  FaultProcess fp(kNodeMtbf, 0.5, 0.8);
  const double horizon = 50000.0;
  const auto events = fp.sample(kNodes, horizon, rng);
  ASSERT_FALSE(events.empty());
  double prev = 0.0;
  for (const FaultEvent& ev : events) {
    EXPECT_GE(ev.time, prev);
    EXPECT_LT(ev.time, horizon);
    EXPECT_GE(ev.node, 0);
    EXPECT_LT(ev.node, kNodes);
    prev = ev.time;
  }
}

}  // namespace
}  // namespace ftbesst::ft
