#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ft/faults.hpp"
#include "support/test_seed.hpp"
#include "util/stats.hpp"

namespace ftbesst::ft {
namespace {

TEST(WeibullFaults, ShapeOneIsExponential) {
  FaultProcess exp_process(1000.0, 1.0, 1.0);
  util::Rng rng(test::test_seed(3));
  std::vector<double> gaps;
  double prev = 0.0;
  for (const auto& ev : exp_process.sample(10, 50000.0, rng)) {
    gaps.push_back(ev.time - prev);
    prev = ev.time;
  }
  // Mean gap = system MTBF = 100 s; exponential cv = 1.
  EXPECT_NEAR(util::mean(gaps), 100.0, 10.0);
  EXPECT_NEAR(util::sample_stddev(gaps) / util::mean(gaps), 1.0, 0.15);
}

TEST(WeibullFaults, MeanIsPinnedAcrossShapes) {
  util::Rng rng(test::test_seed(4));
  for (double shape : {0.7, 1.0, 1.5, 3.0}) {
    FaultProcess fp(1000.0, 1.0, shape);
    std::vector<double> gaps;
    double prev = 0.0;
    for (const auto& ev : fp.sample(10, 200000.0, rng)) {
      gaps.push_back(ev.time - prev);
      prev = ev.time;
    }
    EXPECT_NEAR(util::mean(gaps), 100.0, 8.0) << "shape " << shape;
  }
}

TEST(WeibullFaults, ShapeControlsBurstiness) {
  // cv of Weibull: sqrt(Gamma(1+2/k)/Gamma(1+1/k)^2 - 1): >1 for k<1
  // (bursty), <1 for k>1 (regular).
  util::Rng rng(test::test_seed(5));
  auto cv_for = [&rng](double shape) {
    FaultProcess fp(1000.0, 1.0, shape);
    std::vector<double> gaps;
    double prev = 0.0;
    for (const auto& ev : fp.sample(10, 400000.0, rng)) {
      gaps.push_back(ev.time - prev);
      prev = ev.time;
    }
    return util::sample_stddev(gaps) / util::mean(gaps);
  };
  EXPECT_GT(cv_for(0.6), 1.2);
  EXPECT_LT(cv_for(3.0), 0.6);
}

TEST(WeibullFaults, RejectsBadShape) {
  EXPECT_THROW(FaultProcess(1000.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(FaultProcess(1000.0, 1.0, -2.0), std::invalid_argument);
  FaultProcess ok(1000.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(ok.weibull_shape(), 0.5);
}

TEST(WeibullFaults, NextAfterAdvancesTime) {
  FaultProcess fp(100.0, 1.0, 0.8);
  util::Rng rng(test::test_seed(6));
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto ev = fp.next_after(t, 4, rng);
    EXPECT_GT(ev.time, t);
    t = ev.time;
  }
}

}  // namespace
}  // namespace ftbesst::ft
