// Randomized stress machine for the executable FTI runtime: arbitrary
// interleavings of protect / checkpoint / fail / crash / recover must
// preserve the core invariants — recovered data always equals some
// previously checkpointed snapshot, newest-usable-wins, and the runtime
// never recovers from a checkpoint destroyed by the failures.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "ft/fti_runtime.hpp"
#include "support/test_seed.hpp"
#include "util/rng.hpp"

namespace ftbesst::ft {
namespace {

constexpr std::int64_t kRanks = 16;  // 8 nodes, 2 groups of 4

FtiConfig cfg() {
  FtiConfig c;
  c.group_size = 4;
  c.node_size = 2;
  return c;
}

FtiRuntime::Blob versioned_blob(std::int64_t rank, int version) {
  FtiRuntime::Blob b(24);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>((rank * 131 + version * 17 + i) & 0xff);
  return b;
}

class StressMachine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressMachine, InvariantsHoldUnderRandomOperations) {
  // FTBESST_TEST_SEED overrides every instance's seed for reproduction.
  util::Rng rng(test::test_seed(GetParam()));
  FtiRuntime rt(cfg(), kRanks);
  int version = 0;
  auto protect_version = [&](int v) {
    for (std::int64_t r = 0; r < kRanks; ++r)
      rt.protect(r, versioned_blob(r, v));
  };
  protect_version(version);

  // Reference history: checkpoint id -> protected version.
  std::map<int, int> snapshot_version;
  int live_version = 0;

  for (int op = 0; op < 120; ++op) {
    const double roll = rng.uniform();
    if (rt.needs_recovery()) {
      const auto before = rt.best_recoverable();
      const auto used = rt.recover();
      EXPECT_EQ(before.has_value(), used.has_value());
      if (used) {
        // Recovered state must equal the snapshot that id recorded.
        const int v = snapshot_version.at(*used);
        for (std::int64_t r = 0; r < kRanks; ++r)
          EXPECT_EQ(rt.data(r), versioned_blob(r, v));
        live_version = v;
      } else {
        // Nothing usable: the "application" restarts from scratch.
        ++version;
        protect_version(version);
        live_version = version;
        snapshot_version.clear();  // files of the old epoch are irrelevant
      }
      continue;
    }
    if (roll < 0.35) {
      // Progress: new protected state.
      ++version;
      protect_version(version);
      live_version = version;
    } else if (roll < 0.65) {
      const Level level = static_cast<Level>(1 + rng.uniform_int(4));
      const int id = rt.checkpoint(level);
      snapshot_version[id] = live_version;
    } else if (roll < 0.9) {
      rt.fail_node(static_cast<std::int64_t>(rng.uniform_int(8)));
      if (rng.uniform() < 0.3)
        rt.fail_node(static_cast<std::int64_t>(rng.uniform_int(8)));
    } else {
      rt.crash_processes();
    }
  }
  // Terminal recovery if needed; afterwards all data is consistent.
  if (rt.needs_recovery()) {
    const auto used = rt.recover();
    if (used) {
      const int v = snapshot_version.at(*used);
      for (std::int64_t r = 0; r < kRanks; ++r)
        EXPECT_EQ(rt.data(r), versioned_blob(r, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressMachine,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace ftbesst::ft
