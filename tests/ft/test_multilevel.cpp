#include "ft/multilevel_opt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ft/young_daly.hpp"

namespace ftbesst::ft {
namespace {

MultilevelWorkload base_workload() {
  MultilevelWorkload w;
  w.work = 36000.0;
  w.system_mtbf = 600.0;
  w.soft_fraction = 0.8;
  w.downtime = 10.0;
  return w;
}

LevelSpec cheap_l1() { return {Level::kL1, 0.5, 0.5}; }
LevelSpec pricey_l4() { return {Level::kL4, 20.0, 30.0}; }

TEST(Multilevel, SingleLevelMatchesYoungDalyModel) {
  const MultilevelWorkload w = base_workload();
  const LevelSpec spec{Level::kL4, 20.0, 30.0};
  for (double tau : {60.0, 120.0, 240.0}) {
    const double ours = expected_runtime_single_level(w, spec, tau);
    const double reference = expected_runtime_cr(
        w.work, tau, spec.checkpoint_cost, spec.restart_cost + w.downtime,
        w.system_mtbf);
    EXPECT_NEAR(ours, reference, 1e-9 * reference) << tau;
  }
}

TEST(Multilevel, TwoLevelReducesToSingleWhenAllFailuresSoft) {
  MultilevelWorkload w = base_workload();
  w.soft_fraction = 1.0;
  const LevelSpec low = cheap_l1();
  const LevelSpec high = pricey_l4();
  // With only soft failures and a huge high-level period, the two-level
  // cost approaches the single-level (low) cost.
  const double two = expected_runtime_two_level(w, low, high, 30.0, w.work);
  const double one = expected_runtime_single_level(w, low, 30.0);
  EXPECT_NEAR(two / one, 1.0, 0.01);
}

TEST(Multilevel, NestedPeriodRoundsUp) {
  const MultilevelWorkload w = base_workload();
  // tau_high 100 with tau_low 30 behaves as tau_high 120.
  const double a =
      expected_runtime_two_level(w, cheap_l1(), pricey_l4(), 30.0, 100.0);
  const double b =
      expected_runtime_two_level(w, cheap_l1(), pricey_l4(), 30.0, 120.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Multilevel, ThrashingIsInfinite) {
  MultilevelWorkload w = base_workload();
  w.system_mtbf = 5.0;
  EXPECT_TRUE(std::isinf(
      expected_runtime_two_level(w, cheap_l1(), pricey_l4(), 100.0, 1000.0)));
}

TEST(Multilevel, OptimizerBeatsBothSingleLevelPlans) {
  const MultilevelWorkload w = base_workload();
  const LevelSpec low = cheap_l1();
  const LevelSpec high = pricey_l4();
  const TwoLevelPlan plan = optimize_two_level(w, low, high);
  ASSERT_TRUE(std::isfinite(plan.expected_runtime));
  EXPECT_GT(plan.tau_high, plan.tau_low);

  // Baseline 1: high level only, at its Young-optimal period.
  const double tau_h_young =
      young_interval(high.checkpoint_cost, w.system_mtbf);
  const double high_only =
      expected_runtime_single_level(w, high, tau_h_young);
  // (The low level alone cannot recover hard failures at all, so the fair
  // single-level comparator is the high level.)
  EXPECT_LE(plan.expected_runtime, high_only * 1.001);
}

TEST(Multilevel, MoreHardFailuresShortenHighPeriod) {
  MultilevelWorkload mostly_soft = base_workload();
  mostly_soft.soft_fraction = 0.95;
  MultilevelWorkload mostly_hard = base_workload();
  mostly_hard.soft_fraction = 0.3;
  const TwoLevelPlan soft_plan =
      optimize_two_level(mostly_soft, cheap_l1(), pricey_l4());
  const TwoLevelPlan hard_plan =
      optimize_two_level(mostly_hard, cheap_l1(), pricey_l4());
  EXPECT_LT(hard_plan.tau_high, soft_plan.tau_high);
}

TEST(Multilevel, BetterReliabilityLowersOverhead) {
  MultilevelWorkload flaky = base_workload();
  flaky.system_mtbf = 300.0;
  MultilevelWorkload solid = base_workload();
  solid.system_mtbf = 6000.0;
  const auto flaky_plan = optimize_two_level(flaky, cheap_l1(), pricey_l4());
  const auto solid_plan = optimize_two_level(solid, cheap_l1(), pricey_l4());
  EXPECT_LT(solid_plan.overhead_fraction, flaky_plan.overhead_fraction);
  // And longer periods all around.
  EXPECT_GT(solid_plan.tau_low, flaky_plan.tau_low);
}

TEST(Multilevel, InputValidation) {
  MultilevelWorkload w = base_workload();
  w.work = 0.0;
  EXPECT_THROW(
      (void)expected_runtime_two_level(w, cheap_l1(), pricey_l4(), 1, 2),
      std::invalid_argument);
  w = base_workload();
  w.soft_fraction = 1.5;
  EXPECT_THROW((void)optimize_two_level(w, cheap_l1(), pricey_l4()),
               std::invalid_argument);
  EXPECT_THROW((void)expected_runtime_single_level(base_workload(),
                                                   cheap_l1(), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::ft
