#include "ft/fti.hpp"

#include <gtest/gtest.h>

namespace ftbesst::ft {
namespace {

FtiConfig case_study_config() {
  FtiConfig c;
  c.group_size = 4;  // Table II
  c.node_size = 2;
  c.l2_partners = 1;
  return c;
}

TEST(FtiConfig, ValidatesRankMultiple) {
  const FtiConfig c = case_study_config();
  // Unit is 8; the case-study rank counts are exactly the perfect cubes
  // divisible by 8: 8, 64, 216, 512, 1000.
  for (std::int64_t ranks : {8, 64, 216, 512, 1000})
    EXPECT_NO_THROW(c.validate(ranks)) << ranks;
  for (std::int64_t ranks : {1, 27, 125, 343, 729})
    EXPECT_THROW(c.validate(ranks), std::invalid_argument) << ranks;
}

TEST(FtiConfig, NodeAndGroupCounts) {
  const FtiConfig c = case_study_config();
  EXPECT_EQ(c.nodes_for(1000), 500);
  EXPECT_EQ(c.groups_for(1000), 125);
  EXPECT_EQ(c.group_of_node(0), 0);
  EXPECT_EQ(c.group_of_node(3), 0);
  EXPECT_EQ(c.group_of_node(4), 1);
}

TEST(FtiConfig, RejectsBadShapes) {
  FtiConfig c = case_study_config();
  c.group_size = 1;
  EXPECT_THROW(c.validate(8), std::invalid_argument);
  c = case_study_config();
  c.node_size = 0;
  EXPECT_THROW(c.validate(8), std::invalid_argument);
  c = case_study_config();
  c.l2_partners = 4;  // == group_size
  EXPECT_THROW(c.validate(8), std::invalid_argument);
}

TEST(Recoverability, ProcessCrashAlwaysRecoverable) {
  const FtiConfig c = case_study_config();
  FailureSet f;
  f.nodes = {0, 1, 2, 3};
  f.kind = FailureKind::kProcessCrash;
  for (Level level : {Level::kL1, Level::kL2, Level::kL3, Level::kL4})
    EXPECT_TRUE(recoverable(level, c, 64, f)) << to_string(level);
}

TEST(Recoverability, L1LosesOnNodeLoss) {
  const FtiConfig c = case_study_config();
  FailureSet f;
  f.nodes = {5};
  f.kind = FailureKind::kNodeLoss;
  EXPECT_FALSE(recoverable(Level::kL1, c, 64, f));
  EXPECT_TRUE(recoverable(Level::kL1, c, 64, FailureSet{}));  // no failure
}

TEST(Recoverability, L2SurvivesSingleNodeLossPerGroup) {
  const FtiConfig c = case_study_config();
  FailureSet f;
  f.kind = FailureKind::kNodeLoss;
  f.nodes = {0};
  EXPECT_TRUE(recoverable(Level::kL2, c, 64, f));
  // Node 0's single partner is node 1: losing both kills the copy.
  f.nodes = {0, 1};
  EXPECT_FALSE(recoverable(Level::kL2, c, 64, f));
  // Non-adjacent pair in the group ring: 0's partner is 1 (alive copies of
  // 0 on 1), 2's partner is 3 -> recoverable.
  f.nodes = {0, 2};
  EXPECT_TRUE(recoverable(Level::kL2, c, 64, f));
  // Losses in different groups are independent.
  f.nodes = {0, 4};
  EXPECT_TRUE(recoverable(Level::kL2, c, 64, f));
}

TEST(Recoverability, L2WithTwoPartnersToleratesAdjacentPair) {
  FtiConfig c = case_study_config();
  c.l2_partners = 2;
  FailureSet f;
  f.kind = FailureKind::kNodeLoss;
  f.nodes = {0, 1};  // node 0's partners are 1 and 2; 2 survives
  EXPECT_TRUE(recoverable(Level::kL2, c, 64, f));
  f.nodes = {0, 1, 2};
  EXPECT_FALSE(recoverable(Level::kL2, c, 64, f));
}

TEST(Recoverability, L3ToleratesHalfGroup) {
  const FtiConfig c = case_study_config();  // group 4 -> tolerance 2
  FailureSet f;
  f.kind = FailureKind::kNodeLoss;
  f.nodes = {0, 1};
  EXPECT_TRUE(recoverable(Level::kL3, c, 64, f));
  f.nodes = {0, 1, 2};
  EXPECT_FALSE(recoverable(Level::kL3, c, 64, f));
  // 2 per group across 2 groups is fine.
  f.nodes = {0, 1, 4, 5};
  EXPECT_TRUE(recoverable(Level::kL3, c, 64, f));
}

TEST(Recoverability, L4AlwaysRecovers) {
  const FtiConfig c = case_study_config();
  FailureSet f;
  f.kind = FailureKind::kNodeLoss;
  f.nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_TRUE(recoverable(Level::kL4, c, 64, f));
}

TEST(Recoverability, RejectsOutOfRangeNode) {
  const FtiConfig c = case_study_config();
  FailureSet f;
  f.nodes = {999};
  EXPECT_THROW((void)recoverable(Level::kL4, c, 64, f), std::out_of_range);
}

TEST(Scheduler, DueLevelsMatchPeriods) {
  CheckpointScheduler sched({{Level::kL1, 40}, {Level::kL2, 40}});
  EXPECT_TRUE(sched.due_after(39).empty());
  const auto due = sched.due_after(40);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], Level::kL1);
  EXPECT_EQ(due[1], Level::kL2);
  EXPECT_EQ(sched.due_after(80).size(), 2u);
  EXPECT_TRUE(sched.due_after(0).empty());
}

TEST(Scheduler, CaseStudyInstanceCount) {
  // 200 timesteps, period 40 -> 5 checkpoint instances per level (the
  // black dots of Figs. 7-8).
  CheckpointScheduler l1({{Level::kL1, 40}});
  EXPECT_EQ(l1.instances(200), 5);
  CheckpointScheduler both({{Level::kL1, 40}, {Level::kL2, 40}});
  EXPECT_EQ(both.instances(200), 10);
}

TEST(Scheduler, MixedPeriods) {
  CheckpointScheduler sched({{Level::kL4, 100}, {Level::kL1, 10}});
  EXPECT_EQ(sched.due_after(10).size(), 1u);
  const auto due100 = sched.due_after(100);
  ASSERT_EQ(due100.size(), 2u);
  EXPECT_EQ(due100[0], Level::kL1);  // sorted ascending by level
  EXPECT_EQ(due100[1], Level::kL4);
  EXPECT_EQ(sched.max_level(), Level::kL4);
}

TEST(Scheduler, RejectsBadPeriodAndEmptyMaxLevel) {
  EXPECT_THROW(CheckpointScheduler({{Level::kL1, 0}}), std::invalid_argument);
  CheckpointScheduler empty({});
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW((void)empty.max_level(), std::logic_error);
  EXPECT_EQ(empty.instances(200), 0);
}

TEST(LevelNames, ToString) {
  EXPECT_EQ(to_string(Level::kL1), "L1");
  EXPECT_EQ(to_string(Level::kL4), "L4");
}

}  // namespace
}  // namespace ftbesst::ft
