#include "ft/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace ftbesst::ft {
namespace {

std::vector<std::vector<std::uint8_t>> random_shards(std::size_t k,
                                                     std::size_t len,
                                                     util::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> shards(
      k, std::vector<std::uint8_t>(len));
  for (auto& s : shards)
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return shards;
}

TEST(ReedSolomon, EncodeProducesParityShards) {
  util::Rng rng(1);
  ReedSolomon rs(4, 2);
  const auto data = random_shards(4, 64, rng);
  const auto parity = rs.encode(data);
  EXPECT_EQ(parity.size(), 2u);
  for (const auto& p : parity) EXPECT_EQ(p.size(), 64u);
}

TEST(ReedSolomon, RoundTripWithNoErasures) {
  util::Rng rng(2);
  ReedSolomon rs(3, 2);
  auto data = random_shards(3, 32, rng);
  auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  const auto original = shards;
  rs.reconstruct(shards, std::vector<bool>(5, true));
  EXPECT_EQ(shards, original);
}

TEST(ReedSolomon, RecoversAllErasurePatternsUpToParity) {
  util::Rng rng(3);
  const std::size_t k = 4, m = 2, total = k + m;
  ReedSolomon rs(k, m);
  const auto data = random_shards(k, 48, rng);
  const auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> full = data;
  full.insert(full.end(), parity.begin(), parity.end());

  // Every subset of <= m erased shards (all C(6,1)+C(6,2) = 21 patterns).
  for (std::size_t e1 = 0; e1 < total; ++e1) {
    for (std::size_t e2 = e1; e2 < total; ++e2) {
      auto shards = full;
      std::vector<bool> present(total, true);
      shards[e1].clear();
      present[e1] = false;
      shards[e2].clear();
      present[e2] = false;
      rs.reconstruct(shards, present);
      EXPECT_EQ(shards, full) << "erased " << e1 << "," << e2;
    }
  }
}

TEST(ReedSolomon, TooManyErasuresThrows) {
  util::Rng rng(4);
  ReedSolomon rs(4, 2);
  const auto data = random_shards(4, 16, rng);
  const auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  std::vector<bool> present(6, true);
  for (std::size_t i : {0u, 2u, 4u}) {
    shards[i].clear();
    present[i] = false;
  }
  EXPECT_THROW(rs.reconstruct(shards, present), std::runtime_error);
}

TEST(ReedSolomon, RejectsBadConstruction) {
  EXPECT_THROW(ReedSolomon(0, 1), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(1, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomon(128, 127));
}

TEST(ReedSolomon, RejectsMalformedShards) {
  ReedSolomon rs(2, 1);
  util::Rng rng(5);
  auto data = random_shards(3, 8, rng);
  EXPECT_THROW(rs.encode(data), std::invalid_argument);  // 3 != k
  data.pop_back();
  data[1].resize(4);
  EXPECT_THROW(rs.encode(data), std::invalid_argument);  // length mismatch
}

TEST(ReedSolomon, EncodeOpsCountsMulAdds) {
  ReedSolomon rs(4, 2);
  EXPECT_EQ(rs.encode_ops(1000), 4u * 2u * 1000u);
}

struct RsShape {
  std::size_t k, m;
};

class RsShapeSweep : public ::testing::TestWithParam<RsShape> {};

TEST_P(RsShapeSweep, RandomErasuresAtCapacityRecover) {
  const auto [k, m] = GetParam();
  util::Rng rng(100 + k * 10 + m);
  ReedSolomon rs(k, m);
  const auto data = random_shards(k, 20, rng);
  const auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> full = data;
  full.insert(full.end(), parity.begin(), parity.end());

  for (int trial = 0; trial < 25; ++trial) {
    auto shards = full;
    std::vector<bool> present(k + m, true);
    std::size_t erased = 0;
    while (erased < m) {
      const std::size_t victim = rng.uniform_int(k + m);
      if (!present[victim]) continue;
      present[victim] = false;
      shards[victim].clear();
      ++erased;
    }
    rs.reconstruct(shards, present);
    EXPECT_EQ(shards, full);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RsShapeSweep,
                         ::testing::Values(RsShape{1, 1}, RsShape{2, 1},
                                           RsShape{2, 2}, RsShape{4, 2},
                                           RsShape{8, 4}, RsShape{10, 5},
                                           RsShape{16, 3}));

}  // namespace
}  // namespace ftbesst::ft
