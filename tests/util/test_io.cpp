#include "util/io.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

namespace ftbesst::util {
namespace {

std::atomic<int> interruptions{0};

void count_signal(int) { interruptions.fetch_add(1); }

// Install a SIGUSR1 handler WITHOUT SA_RESTART, so a blocked read()/write()
// genuinely returns EINTR instead of the kernel restarting it.
struct InterruptingHandler {
  InterruptingHandler() {
    struct sigaction action {};
    action.sa_handler = count_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGUSR1, &action, &previous_);
  }
  ~InterruptingHandler() { sigaction(SIGUSR1, &previous_, nullptr); }
  struct sigaction previous_ {};
};

struct Pipe {
  Pipe() { EXPECT_EQ(pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (fds[0] >= 0) close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] >= 0) close(fds[1]);
    fds[1] = -1;
  }
  int fds[2] = {-1, -1};
};

std::string pattern_bytes(std::size_t n) {
  std::string data(n, '\0');
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<char>('a' + (i * 131) % 26);
  return data;
}

TEST(FullIo, RoundTripsMoreThanPipeCapacity) {
  // 4 MiB through a ~64 KiB pipe: both sides must loop over short
  // transfers, and every byte must arrive in order.
  const std::string sent = pattern_bytes(4u << 20);
  Pipe p;
  std::thread writer([&] { write_full(p.fds[1], sent.data(), sent.size()); });
  std::string received(sent.size(), '\0');
  const std::size_t n = read_full(p.fds[0], received.data(), received.size());
  writer.join();
  EXPECT_EQ(n, sent.size());
  EXPECT_EQ(received, sent);
}

TEST(FullIo, ReadFullReportsEofShortCount) {
  Pipe p;
  write_full(p.fds[1], "hello", 5);
  p.close_write();
  char buf[64];
  EXPECT_EQ(read_full(p.fds[0], buf, sizeof buf), 5u);
  EXPECT_EQ(std::string(buf, 5), "hello");
  EXPECT_EQ(read_full(p.fds[0], buf, sizeof buf), 0u);  // already at EOF
}

TEST(FullIo, ReadFullRetriesThroughEintr) {
  InterruptingHandler handler;
  interruptions.store(0);
  Pipe p;
  std::string received(64, '\0');
  std::atomic<bool> reader_blocked{false};
  std::size_t got = 0;
  std::thread reader([&] {
    reader_blocked.store(true);
    got = read_full(p.fds[0], received.data(), received.size());
  });
  while (!reader_blocked.load()) std::this_thread::yield();
  // Pepper the blocked reader with signals, then trickle the data in two
  // halves with more signals in between.
  for (int i = 0; i < 5; ++i) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  write_full(p.fds[1], pattern_bytes(32).data(), 32);
  for (int i = 0; i < 5; ++i) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  write_full(p.fds[1], pattern_bytes(32).data(), 32);
  reader.join();
  EXPECT_EQ(got, 64u);
  EXPECT_GT(interruptions.load(), 0);
}

TEST(FullIo, WriteFullRetriesThroughEintrOnFullPipe) {
  InterruptingHandler handler;
  interruptions.store(0);
  Pipe p;
  const std::string sent = pattern_bytes(2u << 20);  // >> pipe capacity
  std::atomic<bool> writer_started{false};
  std::thread writer([&] {
    writer_started.store(true);
    write_full(p.fds[1], sent.data(), sent.size());
  });
  while (!writer_started.load()) std::this_thread::yield();
  for (int i = 0; i < 10; ++i) {
    pthread_kill(writer.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string received(sent.size(), '\0');
  const std::size_t n = read_full(p.fds[0], received.data(), received.size());
  writer.join();
  EXPECT_EQ(n, sent.size());
  EXPECT_EQ(received, sent);
  EXPECT_GT(interruptions.load(), 0);
}

TEST(FullIo, HardErrorsThrowSystemError) {
  char byte = 'x';
  EXPECT_THROW((void)read_full(-1, &byte, 1), std::system_error);
  EXPECT_THROW(write_full(-1, &byte, 1), std::system_error);
}

TEST(FullIo, WriteToClosedReaderThrowsEpipe) {
  signal(SIGPIPE, SIG_IGN);
  Pipe p;
  p.close_read();
  char byte = 'x';
  try {
    write_full(p.fds[1], &byte, 1);
    FAIL() << "expected std::system_error";
  } catch (const std::system_error& e) {
    EXPECT_EQ(e.code().value(), EPIPE);
  }
}

TEST(FullIo, ZeroLengthTransfersAreNoOps) {
  Pipe p;
  EXPECT_NO_THROW(write_full(p.fds[1], nullptr, 0));
  EXPECT_EQ(read_full(p.fds[0], nullptr, 0), 0u);
}

}  // namespace
}  // namespace ftbesst::util
