#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace ftbesst::util {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, SampleStddevMatchesHandComputation) {
  const std::array<double, 4> xs{2.0, 4.0, 4.0, 6.0};
  // mean 4, squared devs {4,0,0,4}, var = 8/3
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const std::array<double, 1> xs{5.0};
  EXPECT_DOUBLE_EQ(sample_stddev(xs), 0.0);
}

TEST(Stats, QuantileEndpointsAndMedian) {
  const std::array<double, 5> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolatesBetweenPoints) {
  const std::array<double, 2> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, SummarizeAggregatesEverything) {
  const std::array<double, 5> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, MapeOfPerfectPredictionIsZero) {
  const std::array<double, 3> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mape_percent(a, a), 0.0);
}

TEST(Stats, MapeMatchesHandComputation) {
  const std::array<double, 2> actual{10.0, 20.0};
  const std::array<double, 2> pred{11.0, 18.0};
  // (0.1 + 0.1)/2 * 100 = 10%
  EXPECT_NEAR(mape_percent(actual, pred), 10.0, 1e-12);
}

TEST(Stats, MapeSkipsZeroActuals) {
  const std::array<double, 3> actual{0.0, 10.0, 10.0};
  const std::array<double, 3> pred{5.0, 11.0, 9.0};
  EXPECT_NEAR(mape_percent(actual, pred), 10.0, 1e-12);
}

TEST(Stats, MapeIsSymmetricInSignOfError) {
  const std::array<double, 1> actual{100.0};
  const std::array<double, 1> over{120.0};
  const std::array<double, 1> under{80.0};
  EXPECT_DOUBLE_EQ(mape_percent(actual, over), mape_percent(actual, under));
}

TEST(Stats, RmseMatchesHandComputation) {
  const std::array<double, 2> actual{0.0, 0.0};
  const std::array<double, 2> pred{3.0, 4.0};
  EXPECT_NEAR(rmse(actual, pred), std::sqrt(12.5), 1e-12);
}

TEST(Stats, RSquaredPerfectFitIsOne) {
  const std::array<double, 4> a{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r_squared(a, a), 1.0);
}

TEST(Stats, RSquaredMeanPredictorIsZero) {
  const std::array<double, 4> a{1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> p{2.5, 2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(r_squared(a, p), 0.0);
}

TEST(Stats, PearsonOfLinearRelationIsOne) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonOfAntiLinearIsMinusOne) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> ys{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(RunningStats, MatchesBatchStatistics) {
  Rng rng(99);
  std::vector<double> xs(10000);
  RunningStats rs;
  for (auto& x : xs) {
    x = rng.normal(3.0, 1.5);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), sample_stddev(xs), 1e-9);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(RunningStats, EmptyAndSingleton) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Quantile, NanElementsAreDroppedBeforeRanking) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // {nan, 3, nan, 1, 2} ranks over {1, 2, 3}.
  const std::vector<double> xs{nan, 3.0, nan, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
  EXPECT_FALSE(std::isnan(quantile(xs, 0.25)));
}

TEST(Quantile, AllNanAndEmptyReturnZero) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{nan, nan}, 0.5), 0.0);
}

TEST(Quantile, SingleElementIsEveryQuantile) {
  const std::vector<double> one{42.0};
  for (double q : {0.0, 0.1, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(quantile(one, q), 42.0);
  // A single survivor after NaN filtering behaves the same way.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{nan, 7.0, nan}, 0.5), 7.0);
}

TEST(Summary, MedianFollowsQuantileNanSemantics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> xs{nan, 5.0, 1.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 3.0);  // median of {1, 3, 5}
}

struct QuantileCase {
  double q;
  double expected;
};

class QuantileSweep : public ::testing::TestWithParam<QuantileCase> {};

TEST_P(QuantileSweep, TenPointGrid) {
  // xs = {0, 1, ..., 9}; quantile(q) = 9q by linear interpolation.
  std::vector<double> xs(10);
  for (int i = 0; i < 10; ++i) xs[i] = i;
  EXPECT_NEAR(quantile(xs, GetParam().q), GetParam().expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, QuantileSweep,
                         ::testing::Values(QuantileCase{0.0, 0.0},
                                           QuantileCase{0.1, 0.9},
                                           QuantileCase{0.25, 2.25},
                                           QuantileCase{0.5, 4.5},
                                           QuantileCase{0.75, 6.75},
                                           QuantileCase{0.9, 8.1},
                                           QuantileCase{1.0, 9.0}));

}  // namespace
}  // namespace ftbesst::util
