#include "util/args.hpp"

#include <gtest/gtest.h>

namespace ftbesst::util {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return ArgParser(static_cast<int>(full.size()), full.data());
}

TEST(ArgParser, FlagsWithSeparateValues) {
  const auto args = parse({"--epr", "15", "--ranks", "512"});
  EXPECT_TRUE(args.has("epr"));
  EXPECT_EQ(args.get_int("epr", 0), 15);
  EXPECT_EQ(args.get_int("ranks", 0), 512);
  EXPECT_FALSE(args.has("timesteps"));
  EXPECT_EQ(args.get_int("timesteps", 200), 200);
}

TEST(ArgParser, EqualsSyntax) {
  const auto args = parse({"--method=symreg", "--seed=9"});
  EXPECT_EQ(args.get_string("method", ""), "symreg");
  EXPECT_EQ(args.get_int("seed", 0), 9);
}

TEST(ArgParser, PositionalArguments) {
  const auto args = parse({"calibrate", "--out", "dir", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "calibrate");
  EXPECT_EQ(args.positional()[1], "extra");
  EXPECT_EQ(args.get_string("out", ""), "dir");
}

TEST(ArgParser, DanglingFlagThrows) {
  EXPECT_THROW(parse({"--oops"}), std::invalid_argument);
}

TEST(ArgParser, TypeErrorsThrow) {
  const auto args = parse({"--n", "abc", "--x", "1.5"});
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 1.5);
  EXPECT_THROW((void)args.get_double("n", 0.0), std::invalid_argument);
}

TEST(ArgParser, GetOptionalForm) {
  const auto args = parse({"--a", "1"});
  EXPECT_TRUE(args.get("a").has_value());
  EXPECT_FALSE(args.get("b").has_value());
}

TEST(ArgParser, SplitList) {
  EXPECT_EQ(ArgParser::split_list("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ArgParser::split_list("single"),
            (std::vector<std::string>{"single"}));
  EXPECT_EQ(ArgParser::split_list(""), (std::vector<std::string>{}));
  EXPECT_EQ(ArgParser::split_list("a,,b"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(ArgParser, MissingValueNamesTheFlag) {
  try {
    parse({"--trials"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--trials"), std::string::npos);
  }
}

TEST(ArgParser, ExpectKnownAcceptsValidFlags) {
  const auto args = parse({"--epr", "15", "--seed=9"});
  EXPECT_NO_THROW(args.expect_known({"epr", "seed", "trials"}));
}

TEST(ArgParser, ExpectKnownNamesUnknownFlagAndListsValidOnes) {
  const auto args = parse({"--eprs", "15"});
  try {
    args.expect_known({"epr", "seed", "trials"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--eprs"), std::string::npos) << message;
    EXPECT_NE(message.find("--epr"), std::string::npos) << message;
    EXPECT_NE(message.find("--seed"), std::string::npos) << message;
    EXPECT_NE(message.find("--trials"), std::string::npos) << message;
    // --eprs is one edit from --epr: the error suggests it.
    EXPECT_NE(message.find("did you mean --epr?"), std::string::npos)
        << message;
  }
}

TEST(ArgParser, ExpectKnownSkipsSuggestionWhenNothingIsClose) {
  const auto args = parse({"--completely-different", "1"});
  try {
    args.expect_known({"epr", "seed"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

}  // namespace
}  // namespace ftbesst::util
