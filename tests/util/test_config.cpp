#include "util/config.hpp"

#include <gtest/gtest.h>

namespace ftbesst::util {
namespace {

constexpr const char* kSample = R"(
# experiment description
[experiment]
app = lulesh        ; inline comment
epr = 15
ranks = 512
trials = 30
monte_carlo = true

[plan]
L1 = 40
L2 = 40

[faults]
mtbf_hours = 2.5
enabled = off
)";

TEST(Config, ParsesSectionsAndValues) {
  const Config cfg = Config::parse(kSample);
  EXPECT_TRUE(cfg.has_section("experiment"));
  EXPECT_TRUE(cfg.has_section("plan"));
  EXPECT_FALSE(cfg.has_section("nope"));
  EXPECT_EQ(cfg.sections(),
            (std::vector<std::string>{"experiment", "plan", "faults"}));
  EXPECT_EQ(cfg.get_string("experiment", "app", ""), "lulesh");
  EXPECT_EQ(cfg.get_int("experiment", "epr", 0), 15);
  EXPECT_EQ(cfg.get_int("experiment", "ranks", 0), 512);
  EXPECT_DOUBLE_EQ(cfg.get_double("faults", "mtbf_hours", 0.0), 2.5);
}

TEST(Config, KeysPreserveFileOrder) {
  const Config cfg = Config::parse(kSample);
  EXPECT_EQ(cfg.keys("plan"), (std::vector<std::string>{"L1", "L2"}));
  EXPECT_TRUE(cfg.keys("missing").empty());
}

TEST(Config, FallbacksWhenAbsent) {
  const Config cfg = Config::parse(kSample);
  EXPECT_EQ(cfg.get_int("experiment", "timesteps", 200), 200);
  EXPECT_EQ(cfg.get_string("nope", "x", "dflt"), "dflt");
  EXPECT_FALSE(cfg.get("plan", "L4").has_value());
}

TEST(Config, BooleanForms) {
  const Config cfg = Config::parse(kSample);
  EXPECT_TRUE(cfg.get_bool("experiment", "monte_carlo", false));
  EXPECT_FALSE(cfg.get_bool("faults", "enabled", true));
  EXPECT_TRUE(cfg.get_bool("faults", "missing", true));
}

TEST(Config, CommentsAndWhitespaceIgnored) {
  const Config cfg = Config::parse(
      "  [ s ]  \n  a=1 # x\n\n; whole-line comment\n  b =  2  \n");
  EXPECT_EQ(cfg.get_int("s", "a", 0), 1);
  EXPECT_EQ(cfg.get_int("s", "b", 0), 2);
}

TEST(Config, DuplicateKeysKeepLast) {
  const Config cfg = Config::parse("[s]\nx = 1\nx = 2\n");
  EXPECT_EQ(cfg.get_int("s", "x", 0), 2);
  EXPECT_EQ(cfg.keys("s").size(), 1u);
}

TEST(Config, MalformedInputThrows) {
  EXPECT_THROW((void)Config::parse("x = 1\n"), std::invalid_argument);
  EXPECT_THROW((void)Config::parse("[s\nx = 1\n"), std::invalid_argument);
  EXPECT_THROW((void)Config::parse("[]\n"), std::invalid_argument);
  EXPECT_THROW((void)Config::parse("[s]\njust a line\n"),
               std::invalid_argument);
  EXPECT_THROW((void)Config::parse("[s]\n= 1\n"), std::invalid_argument);
}

TEST(Config, TypeErrorsThrow) {
  const Config cfg = Config::parse("[s]\nn = abc\nb = maybe\n");
  EXPECT_THROW((void)cfg.get_int("s", "n", 0), std::invalid_argument);
  EXPECT_THROW((void)cfg.get_double("s", "n", 0.0), std::invalid_argument);
  EXPECT_THROW((void)cfg.get_bool("s", "b", false), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::util
