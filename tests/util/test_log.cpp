#include "util/log.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ftbesst::util {
namespace {

/// Captures stderr for the duration of a scope.
class CaptureStderr {
 public:
  CaptureStderr() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CaptureStderr() { std::cerr.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LogTest, MessagesBelowThresholdAreDropped) {
  set_log_level(LogLevel::kWarn);
  CaptureStderr capture;
  FTBESST_DEBUG << "quiet";
  FTBESST_INFO << "also quiet";
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, MessagesAtOrAboveThresholdAreEmitted) {
  set_log_level(LogLevel::kInfo);
  CaptureStderr capture;
  FTBESST_INFO << "hello " << 42;
  FTBESST_ERROR << "bad";
  const std::string out = capture.text();
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
}

TEST_F(LogTest, LinesCarryMonotonicTimestamps) {
  set_log_level(LogLevel::kInfo);
  CaptureStderr capture;
  FTBESST_INFO << "stamped";
  const std::string out = capture.text();
  // Shape: "[ftbesst:INFO +1.234567s] stamped"
  EXPECT_EQ(out.rfind("[ftbesst:INFO +", 0), 0u) << out;
  EXPECT_NE(out.find("s] stamped"), std::string::npos) << out;
}

TEST_F(LogTest, ConcurrentEmissionNeverShearsLines) {
  set_log_level(LogLevel::kInfo);
  CaptureStderr capture;
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([t] {
        for (int i = 0; i < kLines; ++i)
          FTBESST_INFO << "worker " << t << " line " << i << " end";
      });
    for (auto& th : threads) th.join();
  }
  // Every captured line must be whole: header prefix at the front, the
  // trailing token at the end, and exactly threads x lines of them.
  std::istringstream is(capture.text());
  std::string line;
  int count = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.rfind("[ftbesst:INFO +", 0), 0u) << "sheared: " << line;
    EXPECT_EQ(line.rfind(" end"), line.size() - 4) << "sheared: " << line;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  CaptureStderr capture;
  FTBESST_ERROR << "nope";
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace ftbesst::util
