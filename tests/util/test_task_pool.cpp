// The shared work-stealing task pool: completeness, nesting (helping
// waiters), dynamic claiming, exception propagation, and a multi-submitter
// stress test that is the designated ThreadSanitizer target.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/task_pool.hpp"

namespace ftbesst::util {
namespace {

TEST(TaskPool, RunsEveryTask) {
  std::atomic<int> count{0};
  TaskGroup group;
  for (int i = 0; i < 1000; ++i)
    group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  group.wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(TaskPool, WaitOnEmptyGroupReturnsImmediately) {
  TaskGroup group;
  group.wait();
  group.wait();  // idempotent
}

TEST(TaskPool, NestedGroupsCompose) {
  // Outer tasks create and wait on inner groups — the DSE shape. Waiters
  // help execute, so this must finish even on a single-core pool.
  std::atomic<int> count{0};
  TaskGroup outer;
  for (int i = 0; i < 8; ++i) {
    outer.run([&count] {
      TaskGroup inner;
      for (int j = 0; j < 32; ++j)
        inner.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(count.load(), 8 * 32);
}

TEST(TaskPool, ParallelForCoversEachIndexExactlyOnce) {
  constexpr std::size_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPool, ParallelForHandlesEdgeSizes) {
  int zero_calls = 0;
  parallel_for(0, [&zero_calls](std::size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);
  std::atomic<int> one_calls{0};
  parallel_for(1, [&one_calls](std::size_t) { ++one_calls; });
  EXPECT_EQ(one_calls.load(), 1);
}

TEST(TaskPool, WaitPropagatesFirstTaskException) {
  TaskGroup group;
  std::atomic<int> survivors{0};
  group.run([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 16; ++i)
    group.run([&survivors] { survivors.fetch_add(1); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The failure did not cancel the rest of the group.
  EXPECT_EQ(survivors.load(), 16);
  // The error is consumed: a later wait succeeds.
  group.run([&survivors] { survivors.fetch_add(1); });
  group.wait();
  EXPECT_EQ(survivors.load(), 17);
}

TEST(TaskPool, LocalPoolIsIndependentOfShared) {
  TaskPool pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 64);
}  // pool destructor joins its workers here

TEST(TaskPool, StressManyConcurrentSubmitters) {
  // Several external threads hammer the shared pool with nested groups at
  // once. Run under scripts/check.sh's TSan configuration, this is the
  // pool's data-race canary.
  constexpr int kSubmitters = 4;
  constexpr int kOuter = 16;
  constexpr int kInner = 64;
  std::atomic<long> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&total] {
      TaskGroup group;
      for (int i = 0; i < kOuter; ++i) {
        group.run([&total] {
          TaskGroup inner;
          for (int j = 0; j < kInner; ++j)
            inner.run([&total] {
              total.fetch_add(1, std::memory_order_relaxed);
            });
          inner.wait();
        });
      }
      group.wait();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), long{kSubmitters} * kOuter * kInner);
}

TEST(TaskPool, ParallelForDynamicClaimingBalancesUnevenWork) {
  // Indices carry wildly different costs; dynamic claiming must still
  // complete them all (the run_ensemble fault-trial imbalance in miniature).
  constexpr std::size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&hits](std::size_t i) {
    volatile double sink = 0.0;
    const int spin = (i % 10 == 0) ? 20000 : 10;
    for (int k = 0; k < spin; ++k) sink += static_cast<double>(k);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  int sum = 0;
  for (auto& h : hits) sum += h.load();
  EXPECT_EQ(sum, static_cast<int>(kN));
}

}  // namespace
}  // namespace ftbesst::util
