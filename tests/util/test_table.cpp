#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ftbesst::util {
namespace {

TEST(TextTable, PrintsTitleHeaderAndRows) {
  TextTable t("Demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"33", "44"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("33"), std::string::npos);
  EXPECT_NE(out.find("44"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutputIsCommaSeparated) {
  TextTable t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TextTable, FmtAndPctHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(16.684, 2), "16.68%");
}

TEST(TextTable, RaggedRowsDoNotCrash) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3", "4"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(SeriesCsv, WritesHeaderAndNumericRows) {
  SeriesCsv csv({"ranks", "time"});
  csv.add_row({8.0, 1.5});
  csv.add_row({64.0, 2.25});
  std::ostringstream os;
  csv.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("ranks,time"), std::string::npos);
  EXPECT_NE(out.find("64"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

}  // namespace
}  // namespace ftbesst::util
