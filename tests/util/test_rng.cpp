#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace ftbesst::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.split(0);
  Rng c2 = parent.split(1);
  Rng c1_again = parent.split(0);
  EXPECT_EQ(c1(), c1_again());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (c1() == c2());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.split(3);
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 600);
    EXPECT_LT(c, n / 10 + 600);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(mean(xs), 5.0, 0.05);
  EXPECT_NEAR(sample_stddev(xs), 2.0, 0.05);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng rng(15);
  std::vector<double> xs(50001);
  for (auto& x : xs) x = rng.lognormal_median(10.0, 0.5);
  EXPECT_NEAR(quantile(xs, 0.5), 10.0, 0.3);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(16);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.exponential(0.25);
  EXPECT_NEAR(mean(xs), 4.0, 0.1);
}

TEST(Rng, PoissonMeanAndVarianceMatch) {
  Rng rng(17);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = static_cast<double>(rng.poisson(6.5));
  EXPECT_NEAR(mean(xs), 6.5, 0.1);
  EXPECT_NEAR(sample_stddev(xs) * sample_stddev(xs), 6.5, 0.3);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(18);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(mean(xs), 200.0, 1.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-3.0), 0u);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, BitsLookBalanced) {
  Rng rng(GetParam());
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ones += __builtin_popcountll(rng());
  EXPECT_NEAR(static_cast<double>(ones) / (64.0 * n), 0.5, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
}  // namespace ftbesst::util
