// In-process router tests: consistent-hash routing, single-flight
// coalescing, degraded-shard shedding, and journal-driven warm handoff —
// all against externally managed in-process Workers, so the fast suite
// exercises the tier without spawning processes (the process-level
// soak/chaos harness lives in test_tier_slow.cpp).

#include "svc/router.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server_test_util.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/registry.hpp"
#include "svc/worker.hpp"

namespace ftbesst::svc {
namespace {

/// Router over N externally managed in-process workers. The router
/// health-checks and re-warms them but never spawns; tests kill/revive
/// workers by destroying/recreating the Worker objects.
struct TestTierInProcess {
  explicit TestTierInProcess(std::size_t n, RouterOptions opt = {}) {
    registry = make_test_registry();
    opt.unix_socket_path = test_socket_path("router");
    opt.health_interval_ms = 50.0;   // fast revive for tests
    opt.worker_timeout_s = 30.0;
    for (std::size_t i = 0; i < n; ++i) {
      WorkerSpec spec;
      spec.socket_path = worker_socket(i);
      opt.workers.push_back(spec);  // spawn_argv empty: externally managed
      start_worker(i);
    }
    router = std::make_unique<Router>(std::move(opt));
    router->start();
    EXPECT_TRUE(router->wait_healthy(30.0));
  }

  ~TestTierInProcess() {
    if (router) {
      router->shutdown();
      router->wait();
    }
    stop_all_workers();
  }

  [[nodiscard]] static std::string worker_socket(std::size_t i) {
    return test_socket_path(("rw" + std::to_string(i)).c_str());
  }

  void start_worker(std::size_t i) {
    WorkerOptions wopt;
    wopt.socket_path = worker_socket(i);
    wopt.name = "worker-" + std::to_string(i);
    auto worker = std::make_unique<Worker>(registry, wopt);
    worker->start();
    if (workers.size() <= i) workers.resize(i + 1);
    workers[i] = std::move(worker);
  }

  void stop_worker(std::size_t i) {
    if (workers.size() > i && workers[i]) {
      workers[i]->shutdown();
      workers[i]->wait();
      workers[i].reset();
    }
  }

  void stop_all_workers() {
    for (std::size_t i = 0; i < workers.size(); ++i) stop_worker(i);
  }

  [[nodiscard]] Client client(double timeout = 30.0) const {
    return Client::connect_unix(router_path(), timeout);
  }
  [[nodiscard]] std::string router_path() const {
    return test_socket_path("router");
  }

  /// Wait until the router's view of worker i reaches `healthy`.
  [[nodiscard]] bool await_health(std::size_t i, bool healthy,
                                  double timeout_s = 20.0) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (router->worker_healthy(i) != healthy) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
  }

  std::shared_ptr<const Registry> registry;
  std::vector<std::unique_ptr<Worker>> workers;
  std::unique_ptr<Router> router;
};

/// A simulate request whose canonical key lands on worker `target` of the
/// tier's ring (found by scanning seeds).
Json request_for_worker(const Router& router, std::size_t target,
                        int salt = 0) {
  for (int seed = salt * 1000; seed < salt * 1000 + 1000; ++seed) {
    Json request = simulate_request(seed, 3);
    if (router.worker_for_key(canonical_key(request)) == target)
      return request;
  }
  ADD_FAILURE() << "no seed in range maps to worker " << target;
  return simulate_request(0, 3);
}

TEST(Router, ProxiesToShardsWithByteIdenticalReplies) {
  TestTierInProcess tier(3);
  // Reference: the same registry served by a plain in-process server.
  TestServer reference({}, "ref");

  Client via_tier = tier.client();
  Client direct = reference.client();
  for (int seed = 0; seed < 8; ++seed) {
    const Json request = simulate_request(seed, 3);
    const ClientResponse tiered = via_tier.call(request);
    const ClientResponse single = direct.call(request);
    ASSERT_TRUE(tiered.ok) << tiered.raw;
    ASSERT_TRUE(single.ok) << single.raw;
    // The tier forwards reply bytes verbatim, so modulo the cached flag the
    // result bytes are identical to a single process's.
    EXPECT_EQ(tiered.result_bytes, single.result_bytes) << "seed " << seed;
  }
  const auto stats = tier.router->stats();
  EXPECT_GE(stats.routed, 8u);
  EXPECT_EQ(stats.shed_degraded, 0u);
}

TEST(Router, RepeatRequestsHitTheOwningShardsCache) {
  TestTierInProcess tier(3);
  Client client = tier.client();
  const Json request = simulate_request(77, 3);
  const ClientResponse cold = client.call(request);
  ASSERT_TRUE(cold.ok) << cold.raw;
  EXPECT_FALSE(cold.cached);
  const ClientResponse hot = client.call(request);
  ASSERT_TRUE(hot.ok) << hot.raw;
  EXPECT_TRUE(hot.cached);  // routing purity: same key -> same shard
  EXPECT_EQ(cold.result_bytes, hot.result_bytes);
}

TEST(Router, ConcurrentIdenticalColdRequestsCoalesce) {
  TestTierInProcess tier(2);
  const Json request = simulate_request(991, 4);
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> results(kClients);
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      Client client = tier.client();
      const ClientResponse reply = client.call(request);
      ASSERT_TRUE(reply.ok) << reply.raw;
      results[i] = reply.result_bytes;
    });
  for (auto& t : threads) t.join();
  for (int i = 1; i < kClients; ++i) EXPECT_EQ(results[i], results[0]);
  // Leader + followers + later cache hits never exceed one computation;
  // coalesced + cache-hit counts are environment-timing dependent, but the
  // tier must have answered all clients.
  EXPECT_GE(tier.router->stats().completed, static_cast<std::uint64_t>(
                                                kClients));
}

TEST(Router, DeadShardShedsCleanlyAndOthersKeepServing) {
  TestTierInProcess tier(3);
  const Json doomed = request_for_worker(*tier.router, 0);
  const Json healthy = request_for_worker(*tier.router, 1);

  tier.stop_worker(0);
  ASSERT_TRUE(tier.await_health(0, false)) << "router never noticed death";

  Client client = tier.client();
  const ClientResponse shed = client.call(doomed);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.code, "overload") << shed.raw;  // clean shed, not a hang

  const ClientResponse served = client.call(healthy);
  EXPECT_TRUE(served.ok) << served.raw;  // rest of the ring untouched
  EXPECT_GE(tier.router->stats().shed_degraded, 1u);
}

TEST(Router, RevivedShardIsReWarmedFromTheJournal) {
  TestTierInProcess tier(3);
  const Json request = request_for_worker(*tier.router, 2);

  {
    Client client = tier.client();
    const ClientResponse cold = client.call(request);
    ASSERT_TRUE(cold.ok) << cold.raw;
    ASSERT_FALSE(cold.cached);
  }
  ASSERT_GE(tier.router->journal().entries(), 1u);

  // Kill the shard, bring up a REPLACEMENT with an empty cache on the same
  // socket, and let the supervisor revive + re-warm it.
  tier.stop_worker(2);
  ASSERT_TRUE(tier.await_health(2, false));
  tier.start_worker(2);
  ASSERT_TRUE(tier.await_health(2, true)) << "supervisor never revived";

  Client client = tier.client();
  const ClientResponse hot = client.call(request);
  ASSERT_TRUE(hot.ok) << hot.raw;
  // Warm handoff: the fresh worker answers from cache without recomputing.
  EXPECT_TRUE(hot.cached) << hot.raw;
  EXPECT_GE(tier.router->stats().journal_replayed, 1u);
}

TEST(Router, StatsPingAndBadRequestsWorkAtTheTierFront) {
  TestTierInProcess tier(2);
  Client client = tier.client();

  const ClientResponse pong = client.call(Json::parse("{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.ok) << pong.raw;

  const ClientResponse stats = client.call(Json::parse("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.ok) << stats.raw;
  EXPECT_EQ(stats.result.string_or("role", ""), "router");
  EXPECT_EQ(stats.result.number_or("workers", 0), 2.0);

  const ClientResponse garbage = client.call_raw("not json at all");
  EXPECT_FALSE(garbage.ok);
  EXPECT_EQ(garbage.code, "bad_request");

  const ClientResponse unknown =
      client.call(Json::parse("{\"op\":\"frobnicate\"}"));
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.code, "bad_request");

  // `warm` stays tier-internal: clients cannot poison worker caches
  // through the front door.
  const ClientResponse warm = client.call(
      Json::parse("{\"op\":\"warm\",\"entries\":[]}"));
  EXPECT_FALSE(warm.ok);
  EXPECT_EQ(warm.code, "bad_request");
}

TEST(Router, ShutdownDrainsAndRejectsLateArrivals) {
  auto tier = std::make_unique<TestTierInProcess>(2);
  const std::string path = tier->router_path();
  Client client = tier->client();
  const ClientResponse ack = client.call(Json::parse("{\"op\":\"shutdown\"}"));
  ASSERT_TRUE(ack.ok) << ack.raw;
  tier->router->wait();
  // Socket gone after drain: connecting now must fail.
  EXPECT_THROW((void)Client::connect_unix(path, 1.0), std::system_error);
  tier.reset();
}

TEST(Router, SleepOpRoundRobinsAcrossHealthyWorkers) {
  TestTierInProcess tier(2);
  Client client = tier.client();
  for (int i = 0; i < 4; ++i) {
    const ClientResponse reply =
        client.call(Json::parse("{\"op\":\"sleep\",\"ms\":1}"));
    EXPECT_TRUE(reply.ok) << reply.raw;
  }
}

TEST(Router, RejectsCollidingWorkerAndRouterSockets) {
  RouterOptions opt;
  opt.unix_socket_path = "/tmp/ftbesst-collide.sock";
  WorkerSpec spec;
  spec.socket_path = opt.unix_socket_path;
  opt.workers.push_back(spec);
  EXPECT_THROW(Router{std::move(opt)}, std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::svc
