// Soak test for the prediction server (LABELS slow — excluded from the
// tier-1 `ctest -LE slow` pass, run by the check.sh `slow` pass): mixed
// hot/cold clients over many iterations must lose no responses, and every
// byte-identity guarantee must hold across the whole run.

#include <gtest/gtest.h>

#include <atomic>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "server_test_util.hpp"

namespace ftbesst::svc {
namespace {

TEST(ServerSoak, SoakMixedHotColdClientsLoseNothing) {
  TestServer ts({}, "soak");
  constexpr int kThreads = 8;
  constexpr int kIterations = 12;
  const Json shared_request = simulate_request(1000);

  std::atomic<int> responses{0};
  std::vector<std::string> shared_bytes(kThreads);
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      try {
        Client client = ts.client();
        for (int i = 0; i < kIterations; ++i) {
          // Hot: everyone hammers one shared request; its bytes must be
          // identical across every thread and iteration.
          const ClientResponse hot = client.call(shared_request);
          if (!hot.ok) {
            failures[t] = hot.raw;
            return;
          }
          if (shared_bytes[t].empty())
            shared_bytes[t] = hot.result_bytes;
          else if (shared_bytes[t] != hot.result_bytes) {
            failures[t] = "hot bytes changed between iterations";
            return;
          }
          responses.fetch_add(1);

          // Cold: a per-thread/iteration unique request, asked twice — the
          // second answer must be a cache hit with identical bytes.
          const Json unique = simulate_request(2000 + t * 100 + i, 3);
          const ClientResponse first = client.call(unique);
          const ClientResponse second = client.call(unique);
          if (!first.ok || !second.ok) {
            failures[t] = first.ok ? second.raw : first.raw;
            return;
          }
          if (second.result_bytes != first.result_bytes || !second.cached) {
            failures[t] = "cache hit bytes differ from cold computation";
            return;
          }
          responses.fetch_add(2);
        }
      } catch (const std::exception& e) {
        failures[t] = e.what();
      }
    });
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], "") << "thread " << t;
  EXPECT_EQ(responses.load(), kThreads * kIterations * 3);
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(shared_bytes[t], shared_bytes[0]) << "thread " << t;

  // Counters are only guaranteed exact once drained (a worker may still be
  // between writing its reply and bumping `completed`).
  ts.server->shutdown();
  ts.server->wait();
  const Server::Stats stats = ts.server->stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(responses.load()));
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_GE(stats.cache.hits + stats.coalesced,
            static_cast<std::uint64_t>(kThreads * kIterations));
}

}  // namespace
}  // namespace ftbesst::svc
