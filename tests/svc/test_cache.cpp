#include "svc/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ftbesst::svc {
namespace {

std::shared_ptr<const std::string> value_of(const std::string& text) {
  return std::make_shared<const std::string>(text);
}

TEST(ResultCache, MissThenHitReturnsTheSamePayloadObject) {
  ResultCache cache;
  EXPECT_EQ(cache.get("k"), nullptr);
  const auto v = value_of("payload");
  cache.put("k", v);
  const auto hit = cache.get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), v.get());  // same bytes, same object — zero copies
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCache, PutOverwritesExistingKey) {
  ResultCache cache;
  cache.put("k", value_of("old"));
  cache.put("k", value_of("new"));
  EXPECT_EQ(*cache.get("k"), "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedWhenOverBudget) {
  CacheConfig config;
  config.shards = 1;  // single shard so the LRU order is global
  config.max_bytes = 400;
  ResultCache cache(config);
  cache.put("a", value_of(std::string(100, 'a')));
  cache.put("b", value_of(std::string(100, 'b')));
  (void)cache.get("a");  // bump "a": now "b" is the LRU victim
  cache.put("c", value_of(std::string(150, 'c')));
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 400u);
}

TEST(ResultCache, OversizedValuesAreNotRetained) {
  CacheConfig config;
  config.shards = 1;
  config.max_bytes = 100;
  ResultCache cache(config);
  cache.put("big", value_of(std::string(500, 'x')));
  EXPECT_EQ(cache.get("big"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, TtlExpiryCountsAsMissAndEviction) {
  CacheConfig config;
  config.ttl_seconds = 0.05;
  ResultCache cache(config);
  cache.put("k", value_of("v"));
  EXPECT_NE(cache.get("k"), nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(cache.get("k"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ResultCache, ClearDropsEverything) {
  ResultCache cache;
  cache.put("a", value_of("1"));
  cache.put("b", value_of("2"));
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.get("a"), nullptr);
}

TEST(ResultCache, ShardsOperateIndependentlyUnderConcurrency) {
  CacheConfig config;
  config.shards = 8;
  config.max_bytes = 8u << 20;
  ResultCache cache(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key =
            "key-" + std::to_string(t) + "-" + std::to_string(i);
        cache.put(key, value_of(key + "-value"));
        const auto hit = cache.get(key);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(*hit, key + "-value");
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.stats().entries, 8u * 500u);
}

TEST(ResultCache, HashKeyIsFnv1a) {
  // Pinned reference values so shard selection never changes silently
  // across refactors (cached artifacts' placement is part of the contract).
  EXPECT_EQ(ResultCache::hash_key(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(ResultCache::hash_key("a"), 0xaf63dc4c8601ec8cull);
}

TEST(SingleFlight, LeaderComputesFollowersCoalesce) {
  SingleFlight flight;
  std::atomic<int> computations{0};
  std::atomic<int> leaders{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<SingleFlight::Result> results(8);
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      bool leader = false;
      results[t] = flight.run(
          "key",
          [&]() -> SingleFlight::Result {
            computations.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return value_of("expensive");
          },
          &leader);
      if (leader) leaders.fetch_add(1);
    });
  go.store(true);
  for (auto& thread : threads) thread.join();
  // Every concurrent duplicate must have shared ONE computation. (With an
  // unlucky schedule a thread can arrive after the flight finished and
  // start a second one, so allow a tiny bit of slack — but never 8.)
  EXPECT_LE(computations.load(), 2);
  EXPECT_EQ(computations.load(), leaders.load());
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, "expensive");
  }
}

TEST(SingleFlight, DistinctKeysDoNotCoalesce) {
  SingleFlight flight;
  std::atomic<int> computations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      (void)flight.run("key-" + std::to_string(t), [&] {
        computations.fetch_add(1);
        return value_of("v");
      });
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(computations.load(), 4);
}

TEST(SingleFlight, LeaderExceptionPropagatesToAllWaiters) {
  SingleFlight flight;
  std::atomic<int> throwers{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      try {
        (void)flight.run("key", [&]() -> SingleFlight::Result {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          throw std::runtime_error("boom");
        });
      } catch (const std::runtime_error&) {
        throwers.fetch_add(1);
      }
    });
  go.store(true);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(throwers.load(), 4);
  // The failed flight must not poison the key for later callers.
  EXPECT_EQ(*flight.run("key", [] { return value_of("recovered"); }),
            "recovered");
}

}  // namespace
}  // namespace ftbesst::svc
