#pragma once
// Shared fixtures for the prediction-server tests (tests/svc/test_server.cpp
// and the slow soak binary): the analytic test registry, per-process socket
// paths, an RAII server, and the canonical simulate request.

#include <unistd.h>

#include <memory>
#include <string>
#include <utility>

#include "apps/kernels.hpp"
#include "apps/stencil3d.hpp"
#include "core/arch.hpp"
#include "model/perf_model.hpp"
#include "net/topology.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"

namespace ftbesst::svc {

inline std::shared_ptr<const Registry> make_test_registry() {
  // Delegates to the shared analytic registry so the in-process tests, the
  // tier harness, and `ftbesst worker --analytic` all serve byte-identical
  // results from the same models.
  return std::make_shared<const Registry>(Registry::analytic());
}

inline std::string test_socket_path(const char* tag) {
  return "/tmp/ftbesst-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

/// RAII server over the analytic registry: unix socket + ephemeral TCP.
struct TestServer {
  explicit TestServer(ServerOptions options = {}, const char* tag = "srv") {
    options.unix_socket_path = test_socket_path(tag);
    if (options.tcp_port < 0) options.tcp_port = 0;  // ephemeral
    server = std::make_unique<Server>(make_test_registry(), options);
    server->start();
    path = options.unix_socket_path;
  }
  ~TestServer() {
    if (server) {
      server->shutdown();
      server->wait();
    }
  }
  [[nodiscard]] Client client(double timeout_seconds = 30.0) const {
    return Client::connect_unix(path, timeout_seconds);
  }

  std::unique_ptr<Server> server;
  std::string path;
};

inline Json simulate_request(int seed, int trials = 5) {
  return Json::parse(
      "{\"op\":\"simulate\",\"app\":\"lulesh\",\"epr\":10,\"ranks\":64,"
      "\"timesteps\":30,\"plan\":\"L1:10\",\"trials\":" +
      std::to_string(trials) + ",\"seed\":" + std::to_string(seed) + "}");
}

}  // namespace ftbesst::svc
