#include "svc/wire.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

namespace ftbesst::svc {
namespace {

struct Pipe {
  Pipe() { EXPECT_EQ(pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (fds[0] >= 0) close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] >= 0) close(fds[1]);
    fds[1] = -1;
  }
  int fds[2] = {-1, -1};
};

TEST(Wire, LengthHeaderIsBigEndian) {
  unsigned char header[4];
  encode_length(0x01020304u, header);
  EXPECT_EQ(header[0], 0x01);
  EXPECT_EQ(header[1], 0x02);
  EXPECT_EQ(header[2], 0x03);
  EXPECT_EQ(header[3], 0x04);
  EXPECT_EQ(decode_length(header), 0x01020304u);
}

TEST(Wire, FramesRoundTripThroughAPipe) {
  Pipe p;
  std::thread writer([&] {
    write_frame(p.fds[1], "{\"op\":\"ping\"}");
    write_frame(p.fds[1], "");  // empty payload is a legal frame
    write_frame(p.fds[1], std::string(100000, 'x'));
    p.close_write();
  });
  EXPECT_EQ(read_frame(p.fds[0]).value(), "{\"op\":\"ping\"}");
  EXPECT_EQ(read_frame(p.fds[0]).value(), "");
  EXPECT_EQ(read_frame(p.fds[0]).value(), std::string(100000, 'x'));
  EXPECT_FALSE(read_frame(p.fds[0]).has_value());  // clean EOF
  writer.join();
}

TEST(Wire, EofMidFrameIsAProtocolError) {
  Pipe p;
  unsigned char header[4];
  encode_length(100, header);
  ASSERT_EQ(write(p.fds[1], header, 4), 4);
  ASSERT_EQ(write(p.fds[1], "short", 5), 5);
  p.close_write();
  EXPECT_THROW((void)read_frame(p.fds[0]), std::runtime_error);

  Pipe p2;
  ASSERT_EQ(write(p2.fds[1], header, 2), 2);  // EOF inside the header
  p2.close_write();
  EXPECT_THROW((void)read_frame(p2.fds[0]), std::runtime_error);
}

TEST(Wire, OversizedFramesAreRejectedBeforeAllocation) {
  Pipe p;
  unsigned char header[4];
  encode_length(1000, header);
  ASSERT_EQ(write(p.fds[1], header, 4), 4);
  EXPECT_THROW((void)read_frame(p.fds[0], /*max_bytes=*/100),
               std::invalid_argument);
  EXPECT_THROW(write_frame(p.fds[1], std::string(200, 'x'), 100),
               std::length_error);
}

TEST(Wire, ExtractFrameHandlesArbitrarySplits) {
  // Build two frames back to back, then feed the byte stream one byte at a
  // time: the codec must produce exactly the two payloads, in order.
  std::string stream;
  for (const std::string payload : {"first", "second frame"}) {
    unsigned char header[4];
    encode_length(static_cast<std::uint32_t>(payload.size()), header);
    stream.append(reinterpret_cast<const char*>(header), 4);
    stream += payload;
  }
  std::string buffer, out;
  std::vector<std::string> frames;
  for (const char byte : stream) {
    buffer += byte;
    while (extract_frame(buffer, out)) frames.push_back(out);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "first");
  EXPECT_EQ(frames[1], "second frame");
  EXPECT_TRUE(buffer.empty());
}

TEST(Wire, ExtractFrameWaitsForCompleteHeader) {
  std::string buffer("\x00\x00", 2), out;
  EXPECT_FALSE(extract_frame(buffer, out));
  EXPECT_EQ(buffer.size(), 2u);  // partial header left in place
}

TEST(Wire, ExtractFrameRejectsOversizedAnnouncement) {
  unsigned char header[4];
  encode_length(1u << 30, header);
  std::string buffer(reinterpret_cast<const char*>(header), 4), out;
  EXPECT_THROW((void)extract_frame(buffer, out), std::invalid_argument);
}

TEST(Wire, WriteToClosedPeerThrowsSystemError) {
  signal(SIGPIPE, SIG_IGN);
  Pipe p;
  p.close_read();
  EXPECT_THROW(write_frame(p.fds[1], "payload"), std::system_error);
}

}  // namespace
}  // namespace ftbesst::svc
