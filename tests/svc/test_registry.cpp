#include "svc/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/stencil3d.hpp"
#include "core/arch.hpp"
#include "ft/checkpoint_cost.hpp"
#include "model/expr_simd.hpp"
#include "model/perf_model.hpp"
#include "model/symreg.hpp"
#include "net/topology.hpp"
#include "svc/json.hpp"

namespace ftbesst::svc {
namespace {

/// Registry over hand-built analytic models: instant to construct, fully
/// deterministic, enough structure for every op to exercise the engines.
Registry make_test_registry() {
  auto topo = std::make_shared<net::TwoStageFatTree>(4, 4, 2);
  auto arch =
      std::make_shared<core::ArchBEO>("test", topo, net::CommParams{}, 4);
  arch->bind_kernel(apps::kLuleshTimestep,
                    std::make_shared<model::ConstantModel>(0.01));
  arch->bind_kernel(apps::kStencilSweep,
                    std::make_shared<model::ConstantModel>(0.005));
  for (int level = 1; level <= 4; ++level)
    arch->bind_kernel(
        apps::checkpoint_kernel(static_cast<ft::Level>(level)),
        std::make_shared<model::ConstantModel>(0.002 * level));
  return Registry{std::move(arch)};
}

TEST(CanonicalKey, IgnoresSpellingAndVolatileFields) {
  const Json a = Json::parse(
      "{\"op\":\"simulate\",\"trials\":20,\"seed\":7,\"deadline_ms\":100}");
  const Json b = Json::parse(
      "{\"seed\":7.0,\"id\":\"req-123\",\"trials\":2e1,\"op\":\"simulate\"}");
  EXPECT_EQ(canonical_key(a), canonical_key(b));
  const Json c = Json::parse("{\"op\":\"simulate\",\"trials\":21,\"seed\":7}");
  EXPECT_NE(canonical_key(a), canonical_key(c));
  // Results are bit-identical at any thread count, so `threads` is
  // volatile too.
  const Json d = Json::parse(
      "{\"op\":\"simulate\",\"trials\":20,\"seed\":7,\"threads\":1}");
  EXPECT_EQ(canonical_key(a), canonical_key(d));
  EXPECT_THROW((void)canonical_key(Json::parse("[1]")), std::invalid_argument);
}

TEST(Registry, PredictEvaluatesBoundModels) {
  const Registry registry = make_test_registry();
  const Json result = handle_request(
      registry, Json::parse("{\"op\":\"predict\",\"kernel\":\"" +
                            std::string(apps::kLuleshTimestep) +
                            "\",\"params\":[15,64]}"));
  EXPECT_DOUBLE_EQ(result.find("value")->as_number(), 0.01);
  EXPECT_FALSE(result.find("model")->as_string().empty());
}

TEST(Registry, PredictRejectsUnknownKernelsAndMissingFields) {
  const Registry registry = make_test_registry();
  EXPECT_THROW(
      (void)handle_request(registry, Json::parse("{\"op\":\"predict\"}")),
      std::invalid_argument);
  EXPECT_THROW((void)handle_request(
                   registry, Json::parse("{\"op\":\"predict\",\"kernel\":"
                                         "\"nope\",\"params\":[1]}")),
               std::invalid_argument);
}

TEST(Registry, PredictBatchPointsMatchPerPointPredict) {
  // The "points" batch form routes through PerfModel::predict_batch (the
  // SIMD-backed eval_dataset for expression models) and must agree
  // bit-for-bit with one predict call per point.
  auto topo = std::make_shared<net::TwoStageFatTree>(4, 4, 2);
  auto arch =
      std::make_shared<core::ArchBEO>("test", topo, net::CommParams{}, 4);
  const model::Expr expr = model::Expr::binary(
      model::Op::kAdd,
      model::Expr::binary(model::Op::kMul, model::Expr::variable(0),
                          model::Expr::variable(1)),
      model::Expr::unary(model::Op::kSqrt, model::Expr::variable(0)));
  arch->bind_kernel(
      "expr.kernel",
      std::make_shared<model::ExprModel>(expr.clone(), 1.5, 0.25,
                                         std::vector<std::string>{"a", "b"}));
  const Registry registry{std::move(arch)};
  const Json batch = handle_request(
      registry,
      Json::parse("{\"op\":\"predict\",\"kernel\":\"expr.kernel\","
                  "\"points\":[[15,64],[0,0],[3.5,1e-10],[56,1048576]]}"));
  const auto& values = batch.find("values")->as_array();
  ASSERT_EQ(values.size(), 4u);
  const char* points[] = {"[15,64]", "[0,0]", "[3.5,1e-10]", "[56,1048576]"};
  for (std::size_t i = 0; i < 4; ++i) {
    const Json single = handle_request(
        registry,
        Json::parse("{\"op\":\"predict\",\"kernel\":\"expr.kernel\","
                    "\"params\":" + std::string(points[i]) + "}"));
    EXPECT_EQ(values[i].as_number(), single.find("value")->as_number())
        << "point " << points[i];
  }
  EXPECT_EQ(batch.find("backend")->as_string(),
            model::to_string(model::active_backend()));
}

TEST(Registry, PredictBatchRejectsMalformedPoints) {
  const Registry registry = make_test_registry();
  const std::string kernel(apps::kLuleshTimestep);
  // params and points together, empty points, ragged arity, empty point.
  for (const char* bad :
       {"\"params\":[1,2],\"points\":[[1,2]]", "\"points\":[]",
        "\"points\":[[1,2],[1]]", "\"points\":[[]]"}) {
    EXPECT_THROW(
        (void)handle_request(
            registry, Json::parse("{\"op\":\"predict\",\"kernel\":\"" + kernel +
                                  "\"," + bad + "}")),
        std::invalid_argument)
        << bad;
  }
}

TEST(Registry, SimulateIsDeterministicForAFixedSeed) {
  const Registry registry = make_test_registry();
  const Json request = Json::parse(
      "{\"op\":\"simulate\",\"app\":\"lulesh\",\"epr\":10,\"ranks\":64,"
      "\"timesteps\":50,\"plan\":\"L1:10,L4:25\",\"trials\":10,\"seed\":5}");
  const Json a = handle_request(registry, request);
  const Json b = handle_request(registry, request);
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a.find("trials")->as_number(), 10);
  EXPECT_GT(a.find("mean")->as_number(), 0.0);
}

TEST(Registry, SimulateWithFaultsUsesAPrivateArchCopy) {
  const Registry registry = make_test_registry();
  const Json request = Json::parse(
      "{\"op\":\"simulate\",\"app\":\"lulesh\",\"epr\":10,\"ranks\":64,"
      "\"timesteps\":200,\"plan\":\"L1:20\",\"trials\":20,\"seed\":5,"
      "\"mtbf_hours\":0.05,\"downtime\":1}");
  const Json faulty = handle_request(registry, request);
  EXPECT_GT(faulty.find("mean_faults")->as_number(), 0.0);
  // The registry's shared arch must be untouched: the same no-fault
  // request gives identical results before and after the faulty one.
  const Json clean_request = Json::parse(
      "{\"op\":\"simulate\",\"app\":\"lulesh\",\"epr\":10,\"ranks\":64,"
      "\"timesteps\":50,\"plan\":\"\",\"trials\":5,\"seed\":5}");
  const std::string before = handle_request(registry, clean_request).dump();
  (void)handle_request(registry, request);
  EXPECT_EQ(handle_request(registry, clean_request).dump(), before);
}

TEST(Registry, SimulateSupportsStencil) {
  const Registry registry = make_test_registry();
  const Json result = handle_request(
      registry,
      Json::parse("{\"op\":\"simulate\",\"app\":\"stencil3d\",\"nx\":16,"
                  "\"ranks\":8,\"timesteps\":20,\"trials\":5}"));
  EXPECT_GT(result.find("mean")->as_number(), 0.0);
}

TEST(Registry, SimulateRejectsBadInputs) {
  const Registry registry = make_test_registry();
  for (const char* bad : {
           "{\"op\":\"simulate\",\"app\":\"fortnite\"}",
           "{\"op\":\"simulate\",\"trials\":0}",
           "{\"op\":\"simulate\",\"trials\":1000000}",
           "{\"op\":\"simulate\",\"timesteps\":0}",
           "{\"op\":\"simulate\",\"plan\":\"L7:10\"}",
           "{\"op\":\"simulate\",\"plan\":\"L1:10,L1:20\"}",
           "{\"op\":\"simulate\",\"ranks\":63}",     // not a cube
           "{\"op\":\"simulate\",\"ranks\":64.5}",   // not an integer
           "{\"op\":\"simulate\",\"mtbf_hours\":-1}",
           "{\"op\":\"bogus\"}",
       }) {
    EXPECT_THROW((void)handle_request(registry, Json::parse(bad)),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Registry, InjectCampaignIsDeterministicForAFixedSeed) {
  const Registry registry = make_test_registry();
  const Json request = Json::parse(
      "{\"op\":\"inject\",\"app\":\"lulesh\",\"epr\":10,\"ranks\":64,"
      "\"timesteps\":50,\"plan\":\"L1:10\",\"trials\":6,\"seed\":5,"
      "\"mtbf_hours\":0.02,\"downtime\":1}");
  const Json a = handle_request(registry, request);
  const Json b = handle_request(registry, request);
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a.find("trials")->as_number(), 6);
  EXPECT_GT(a.find("mean")->as_number(), 0.0);
  EXPECT_GT(a.find("mean_faults")->as_number(), 0.0);
  EXPECT_EQ(a.find("mean_recoveries_by_level")->as_array().size(), 4u);
  // Campaign records every fault the trials saw.
  EXPECT_GT(a.find("fault_records")->as_number(), 0.0);
}

TEST(Registry, InjectRejectsFaultFreeRequests) {
  const Registry registry = make_test_registry();
  // Without mtbf_hours there is no fault process to inject from.
  EXPECT_THROW(
      (void)handle_request(
          registry, Json::parse("{\"op\":\"inject\",\"app\":\"lulesh\","
                                "\"epr\":10,\"ranks\":64,\"trials\":2}")),
      std::invalid_argument);
}

TEST(Registry, DseSweepsScenariosTimesPoints) {
  const Registry registry = make_test_registry();
  const Json result = handle_request(
      registry,
      Json::parse(
          "{\"op\":\"dse\",\"app\":\"lulesh\",\"scenarios\":"
          "[{\"name\":\"No FT\",\"plan\":\"\"},{\"name\":\"L1\",\"plan\":"
          "\"L1:10\"}],\"eprs\":[5,10],\"ranks\":[8,64],\"timesteps\":20,"
          "\"trials\":4,\"seed\":11}"));
  EXPECT_EQ(result.find("points")->as_array().size(), 2u * 4u);
  EXPECT_EQ(result.find("scenarios")->as_number(), 2);
  for (const Json& cell : result.find("points")->as_array()) {
    EXPECT_FALSE(cell.find("scenario")->as_string().empty());
    EXPECT_EQ(cell.find("params")->as_array().size(), 2u);
    EXPECT_GT(cell.find("ensemble")->find("mean")->as_number(), 0.0);
  }
}

TEST(Registry, DseAcceptsExplicitPointsAndRejectsBadOnes) {
  const Registry registry = make_test_registry();
  const Json result = handle_request(
      registry,
      Json::parse("{\"op\":\"dse\",\"scenarios\":[{\"name\":\"s\",\"plan\":"
                  "\"\"}],\"points\":[[5,8],[10,64]],\"timesteps\":10,"
                  "\"trials\":2}"));
  EXPECT_EQ(result.find("points")->as_array().size(), 2u);

  for (const char* bad : {
           "{\"op\":\"dse\",\"scenarios\":[]}",
           "{\"op\":\"dse\",\"scenarios\":[{\"plan\":\"\"}],\"points\":"
           "[[5,8]]}",
           "{\"op\":\"dse\",\"scenarios\":[{\"name\":\"s\"}],\"points\":[]}",
           "{\"op\":\"dse\",\"scenarios\":[{\"name\":\"s\"}],\"points\":"
           "[[5]]}",
           "{\"op\":\"dse\",\"scenarios\":[{\"name\":\"s\"}],\"points\":"
           "[[5,63]]}",
       }) {
    EXPECT_THROW((void)handle_request(registry, Json::parse(bad)),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Registry, RestartCostTracksEachCheckpointsSizeAndRanks) {
  const ft::CheckpointCostModel cost({}, ft::FtiConfig{});
  const RestartCostModel model("lulesh", ft::Level::kL1, cost);
  // The engine hands the model the recovering checkpoint's own
  // {size, ranks} params, so a sweep over mixed sizes gets a per-point
  // restart cost — bigger problems restore more bytes — and the values
  // match the cost model the CLI paths bind per configuration.
  const double small = model.predict(std::vector<double>{5.0, 8.0});
  const double big = model.predict(std::vector<double>{15.0, 8.0});
  EXPECT_LT(small, big);
  EXPECT_DOUBLE_EQ(big, cost.restart_cost(ft::Level::kL1,
                                          apps::lulesh_checkpoint_bytes(15),
                                          8));
  EXPECT_THROW((void)model.predict(std::vector<double>{5.0}),
               std::invalid_argument);
}

TEST(Registry, DseWithFaultsHandlesMixedSizePoints) {
  // A faulty sweep over points with different sizes/ranks must run each
  // point against its own restart costs (a single constant bound from the
  // first point would misprice every other point) and stay deterministic.
  const Registry registry = make_test_registry();
  const Json request = Json::parse(
      "{\"op\":\"dse\",\"scenarios\":[{\"name\":\"L1\",\"plan\":\"L1:10\"}],"
      "\"points\":[[5,8],[15,64]],\"timesteps\":60,\"trials\":8,\"seed\":3,"
      "\"mtbf_hours\":0.05,\"downtime\":1}");
  const Json result = handle_request(registry, request);
  EXPECT_EQ(result.find("points")->as_array().size(), 2u);
  for (const Json& cell : result.find("points")->as_array())
    EXPECT_GT(cell.find("ensemble")->find("mean")->as_number(), 0.0);
  EXPECT_EQ(handle_request(registry, request).dump(), result.dump());
}

TEST(Registry, DseIsDeterministicForAFixedSeed) {
  const Registry registry = make_test_registry();
  const Json request = Json::parse(
      "{\"op\":\"dse\",\"scenarios\":[{\"name\":\"a\",\"plan\":\"L1:10\"},"
      "{\"name\":\"b\",\"plan\":\"L4:20\"}],\"eprs\":[5,10,15],\"ranks\":"
      "[8,64],\"timesteps\":20,\"trials\":6,\"seed\":99,\"mtbf_hours\":0.1}");
  EXPECT_EQ(handle_request(registry, request).dump(),
            handle_request(registry, request).dump());
}

TEST(Registry, DseTopKRanksByObjectiveThreadIdentically) {
  const Registry registry = make_test_registry();
  const std::string body =
      "\"app\":\"lulesh\",\"scenarios\":[{\"name\":\"No FT\",\"plan\":\"\"},"
      "{\"name\":\"L1\",\"plan\":\"L1:10\"}],\"eprs\":[5,10,15],\"ranks\":"
      "[8,64],\"timesteps\":20,\"trials\":4,\"seed\":11";

  // Full sweep, then the filtered request: top_k must ship exactly the
  // k cheapest cells of the full sweep, in rank order.
  const Json full = handle_request(
      registry, Json::parse("{\"op\":\"dse\"," + body + "}"));
  std::vector<std::pair<double, std::size_t>> ranked;
  const auto& cells = full.find("points")->as_array();
  for (std::size_t i = 0; i < cells.size(); ++i)
    ranked.emplace_back(cells[i].find("ensemble")->find("mean")->as_number(),
                        i);
  std::sort(ranked.begin(), ranked.end());

  const Json top = handle_request(
      registry,
      Json::parse("{\"op\":\"dse\"," + body +
                  ",\"top_k\":3,\"objective\":\"mean\"}"));
  const auto& best = top.find("points")->as_array();
  ASSERT_EQ(best.size(), 3u);
  EXPECT_EQ(top.find("top_k")->as_number(), 3);
  EXPECT_EQ(top.find("objective")->as_string(), "mean");
  for (std::size_t i = 0; i < best.size(); ++i)
    EXPECT_EQ(best[i].dump(), cells[ranked[i].second].dump());

  // Byte-identical serial vs pooled — the ranking's grid-order tie-break
  // makes the filter independent of evaluation order.
  const Json serial = handle_request(
      registry, Json::parse("{\"op\":\"dse\"," + body +
                            ",\"top_k\":3,\"threads\":1}"));
  const Json pooled = handle_request(
      registry, Json::parse("{\"op\":\"dse\"," + body +
                            ",\"top_k\":3,\"threads\":0}"));
  EXPECT_EQ(serial.dump(), pooled.dump());
  EXPECT_EQ(serial.dump(), top.dump());

  EXPECT_THROW(
      (void)handle_request(
          registry, Json::parse("{\"op\":\"dse\"," + body +
                                ",\"top_k\":3,\"objective\":\"best\"}")),
      std::invalid_argument);
}

TEST(Registry, SearchWarmStartsFromCachedDseCells) {
  const Registry registry = make_test_registry();
  std::map<std::string, std::shared_ptr<const std::string>> store;
  CacheHooks hooks;
  hooks.get = [&store](const std::string& key)
      -> std::shared_ptr<const std::string> {
    const auto it = store.find(key);
    return it == store.end() ? nullptr : it->second;
  };
  hooks.put = [&store](const std::string& key,
                       std::shared_ptr<const std::string> value) {
    store[key] = std::move(value);
  };

  const std::string body =
      "\"app\":\"lulesh\",\"scenarios\":[{\"name\":\"No FT\",\"plan\":\"\"},"
      "{\"name\":\"L1\",\"plan\":\"L1:10\"}],\"eprs\":[5,10,15],\"ranks\":"
      "[8,64],\"timesteps\":20,\"trials\":4,\"seed\":11";
  const Json request = Json::parse("{\"op\":\"search\"," + body +
                                   ",\"method\":\"gp\",\"budget_fraction\":"
                                   "1.0}");

  // Cold run at full budget: prices every cell, fills the cache with one
  // single-cell dse entry per cell, and its best is the true grid minimum.
  const Json cold = handle_request(registry, request, hooks);
  const std::size_t cell_count =
      static_cast<std::size_t>(cold.find("cells")->as_number());
  ASSERT_EQ(cell_count, 12u);
  EXPECT_EQ(cold.find("evaluations")->as_number(), 12);
  EXPECT_EQ(cold.find("warm_hits")->as_number(), 0);
  EXPECT_EQ(store.size(), cell_count);

  const Json full = handle_request(
      registry, Json::parse("{\"op\":\"dse\"," + body + "}"));
  double grid_min = std::numeric_limits<double>::infinity();
  for (const Json& cell : full.find("points")->as_array())
    grid_min = std::min(grid_min,
                        cell.find("ensemble")->find("mean")->as_number());
  EXPECT_EQ(cold.find("best")->find("objective")->as_number(), grid_min);

  // Warm rerun: every cell hits the cache, nothing is re-simulated, and
  // the answer is byte-identical.
  const Json warm = handle_request(registry, request, hooks);
  EXPECT_EQ(warm.find("warm_hits")->as_number(),
            static_cast<double>(cell_count));
  EXPECT_EQ(warm.find("evaluations")->as_number(), 0);
  EXPECT_EQ(warm.find("best")->dump(), cold.find("best")->dump());

  // The cached cells are plain single-cell dse responses: a dse client
  // asking for one cell hits the same entry.
  const Json one_cell = Json::parse(
      "{\"op\":\"dse\",\"app\":\"lulesh\",\"timesteps\":20,\"trials\":4,"
      "\"mtbf_hours\":0,\"downtime\":10,\"seed\":" +
      std::to_string(11 + 0x9e37 * 0) +
      ",\"scenarios\":[{\"name\":\"No FT\",\"plan\":\"\"}],\"points\":"
      "[[5,8]]}");
  EXPECT_NE(store.find(canonical_key(one_cell)), store.end());
}

TEST(Registry, OpenRejectsMissingModelsDir) {
  RegistryOptions options;
  options.models_dir = "/nonexistent/path";
  EXPECT_THROW((void)Registry::open(options), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::svc
