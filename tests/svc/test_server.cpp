#include "svc/server.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "model/expr_simd.hpp"
#include "server_test_util.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"

namespace ftbesst::svc {
namespace {

TEST(Server, AnswersOverUnixAndTcp) {
  TestServer ts({}, "both");
  Client ux = ts.client();
  const ClientResponse pong = ux.call(Json::parse("{\"op\":\"ping\"}"));
  ASSERT_TRUE(pong.ok) << pong.raw;
  EXPECT_TRUE(pong.result.find("pong")->as_bool());

  ASSERT_GT(ts.server->tcp_port(), 0);
  Client tcp = Client::connect_tcp(ts.server->tcp_port(), 30.0);
  const ClientResponse reply = tcp.call(simulate_request(1));
  ASSERT_TRUE(reply.ok) << reply.raw;
  EXPECT_FALSE(reply.cached);
}

TEST(Server, CacheHitsAreByteIdentical) {
  TestServer ts({}, "bytes");
  Client client = ts.client();
  const ClientResponse cold = client.call(simulate_request(7));
  ASSERT_TRUE(cold.ok) << cold.raw;
  EXPECT_FALSE(cold.cached);
  // Same request, different spelling/volatile fields: served from cache,
  // result bytes identical to the cold computation's.
  const ClientResponse hot = client.call(Json::parse(
      "{\"seed\":7,\"trials\":5,\"plan\":\"L1:10\",\"timesteps\":30,"
      "\"ranks\":64,\"epr\":10,\"app\":\"lulesh\",\"op\":\"simulate\","
      "\"id\":\"whatever\",\"deadline_ms\":60000}"));
  ASSERT_TRUE(hot.ok) << hot.raw;
  EXPECT_TRUE(hot.cached);
  EXPECT_EQ(hot.result_bytes, cold.result_bytes);
  EXPECT_GE(ts.server->stats().cache.hits, 1u);
}

TEST(Server, ConcurrentIdenticalColdRequestsCoalesceOrHit) {
  TestServer ts({}, "flight");
  constexpr int kThreads = 8;
  // Heavy enough that the followers arrive while the leader still computes.
  const Json request = simulate_request(31337, /*trials=*/20000);
  std::atomic<bool> go{false};
  std::vector<std::string> bytes(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      Client client = ts.client(120.0);
      while (!go.load()) std::this_thread::yield();
      const ClientResponse reply = client.call(request);
      ASSERT_TRUE(reply.ok) << reply.raw;
      bytes[t] = reply.result_bytes;
    });
  go.store(true);
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(bytes[t], bytes[0]);
  // The expensive ensemble ran far fewer than kThreads times: every
  // duplicate either coalesced onto the in-flight computation or hit the
  // cache afterwards.
  const Server::Stats stats = ts.server->stats();
  EXPECT_GE(stats.coalesced + stats.cache.hits,
            static_cast<std::uint64_t>(kThreads - 2));
}

TEST(Server, QueueFullGetsExplicitOverloadRejection) {
  ServerOptions options;
  options.queue_capacity = 2;
  TestServer ts(options, "overload");

  // Two sleeps occupy the entire admission budget...
  std::vector<std::thread> sleepers;
  for (int t = 0; t < 2; ++t)
    sleepers.emplace_back([&] {
      Client client = ts.client();
      const ClientResponse reply =
          client.call(Json::parse("{\"op\":\"sleep\",\"ms\":600}"));
      EXPECT_TRUE(reply.ok) << reply.raw;
    });
  // ... give them time to be admitted, then a third request must be shed
  // immediately — an explicit rejection, not a stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Client client = ts.client();
  const auto t0 = std::chrono::steady_clock::now();
  const ClientResponse rejected = client.call(Json::parse("{\"op\":\"ping\"}"));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, "overload") << rejected.raw;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            300);  // rejected while the sleeps still run
  for (auto& thread : sleepers) thread.join();

  // Capacity freed: the same connection works again.
  const ClientResponse accepted = client.call(Json::parse("{\"op\":\"ping\"}"));
  EXPECT_TRUE(accepted.ok) << accepted.raw;
  EXPECT_GE(ts.server->stats().rejected_overload, 1u);
}

TEST(Server, ExpiredDeadlineIsRejectedWithoutComputing) {
  TestServer ts({}, "deadline");
  Client client = ts.client();
  // A deadline of 100ns has always already expired by the time a worker
  // picks the request up; the reply must be the deadline error, and the
  // simulate must never run (nothing enters the cache).
  Json request = simulate_request(5);
  request.as_object()["deadline_ms"] = Json(0.0001);
  const ClientResponse reply = client.call(request);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "deadline") << reply.raw;
  EXPECT_EQ(ts.server->stats().cache.entries, 0u);
  EXPECT_GE(ts.server->stats().rejected_deadline, 1u);
}

TEST(Server, MalformedRequestsGetBadRequestEnvelopes) {
  TestServer ts({}, "bad");
  Client client = ts.client();

  ClientResponse reply = client.call_raw("this is not json");
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "bad_request");

  reply = client.call_raw("[1,2,3]");  // valid JSON, not an object
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "bad_request");

  reply = client.call(Json::parse("{\"op\":\"frobnicate\"}"));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "bad_request");
  EXPECT_NE(reply.error.find("frobnicate"), std::string::npos);
  EXPECT_NE(reply.error.find("simulate"), std::string::npos);  // lists ops

  reply = client.call(Json::parse("{\"op\":\"simulate\",\"plan\":\"L9:4\"}"));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "bad_request");

  // The connection survived all of it.
  EXPECT_TRUE(client.call(Json::parse("{\"op\":\"ping\"}")).ok);
  EXPECT_GE(ts.server->stats().bad_requests, 4u);
}

TEST(Server, StatsOpReportsCounters) {
  TestServer ts({}, "stats");
  Client client = ts.client();
  ASSERT_TRUE(client.call(simulate_request(9)).ok);
  ASSERT_TRUE(client.call(simulate_request(9)).cached);
  const ClientResponse reply = client.call(Json::parse("{\"op\":\"stats\"}"));
  ASSERT_TRUE(reply.ok) << reply.raw;
  EXPECT_GE(reply.result.find("completed")->as_number(), 2.0);
  EXPECT_EQ(reply.result.find("cache")->find("hits")->as_number(), 1.0);
  EXPECT_EQ(reply.result.find("queue_capacity")->as_number(), 64.0);
  // Backend dispatch info for attributing batch-predict throughput.
  EXPECT_EQ(reply.result.find("eval_backend")->as_string(),
            model::to_string(model::active_backend()));
  ASSERT_NE(reply.result.find("avx2_supported"), nullptr);
}

TEST(Server, ShutdownOpDrainsInFlightWorkThenStops) {
  auto ts = std::make_unique<TestServer>(ServerOptions{}, "shutdown-op");
  // An in-flight sleep must still be answered after shutdown is requested.
  std::thread sleeper([&] {
    Client client = ts->client();
    const ClientResponse reply =
        client.call(Json::parse("{\"op\":\"sleep\",\"ms\":400}"));
    EXPECT_TRUE(reply.ok) << reply.raw;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client client = ts->client();
  const ClientResponse ack = client.call(Json::parse("{\"op\":\"shutdown\"}"));
  ASSERT_TRUE(ack.ok) << ack.raw;
  EXPECT_TRUE(ack.result.find("draining")->as_bool());

  ts->server->wait();  // returns once drained; the sleeper got its reply
  sleeper.join();
  EXPECT_THROW((void)Client::connect_unix(ts->path, 1.0), std::system_error);
  ts.reset();
}

TEST(Server, RequestsDuringDrainAreRejectedAsShuttingDown) {
  ServerOptions options;
  TestServer ts(options, "draining");
  Client busy = ts.client();
  Client probe = ts.client();  // connect BEFORE the listeners close

  std::thread sleeper([&] {
    (void)busy.call(Json::parse("{\"op\":\"sleep\",\"ms\":600}"));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ts.server->shutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const ClientResponse reply = probe.call(Json::parse("{\"op\":\"ping\"}"));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "shutting_down") << reply.raw;
  sleeper.join();
  EXPECT_GE(ts.server->stats().rejected_shutdown, 1u);
}

TEST(Server, SigtermDrainsAndStopsCleanly) {
  auto ts = std::make_unique<TestServer>(ServerOptions{}, "sigterm");
  Server::install_signal_handlers(ts->server.get());
  {
    Client client = ts->client();
    ASSERT_TRUE(client.call(Json::parse("{\"op\":\"ping\"}")).ok);
  }
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  ts->server->wait();  // the handler triggered a graceful drain
  Server::install_signal_handlers(nullptr);
  ts.reset();  // double-shutdown in the destructor must be harmless
}

TEST(Server, FailedStartLeavesTheServerInertInsteadOfHanging) {
  // A start() that throws must not leave started_ set with no loop thread
  // running — the destructor (and wait()) would then block forever on
  // stop_cv_, turning a startup error into a process hang.
  ServerOptions options;
  options.unix_socket_path = std::string(200, 'x');  // exceeds sun_path
  Server server(make_test_registry(), options);
  EXPECT_THROW(server.start(), std::invalid_argument);
  // Scope exit: the destructor must return immediately.
}

TEST(Server, StartFailureOnBusyTcpPortThrowsCleanly) {
  TestServer ts({}, "busytcp");
  ASSERT_GT(ts.server->tcp_port(), 0);
  ServerOptions options;
  options.tcp_port = ts.server->tcp_port();
  Server second(make_test_registry(), options);
  EXPECT_THROW(second.start(), std::system_error);
  // The first server is unaffected.
  EXPECT_TRUE(ts.client().call(Json::parse("{\"op\":\"ping\"}")).ok);
}

TEST(Server, RefusesToStealALiveServersSocketPath) {
  TestServer ts({}, "steal");
  ServerOptions options;
  options.unix_socket_path = ts.path;
  {
    Server thief(make_test_registry(), options);
    EXPECT_THROW(thief.start(), std::system_error);
  }
  // The live server's socket file was not unlinked: clients still connect.
  EXPECT_TRUE(ts.client().call(Json::parse("{\"op\":\"ping\"}")).ok);
}

TEST(Server, ReplacesAStaleSocketFileFromACrash) {
  const std::string path = test_socket_path("stale");
  {
    std::ofstream stale(path);  // leftover path, nothing answering on it
    stale << "stale";
  }
  ServerOptions options;
  options.unix_socket_path = path;
  Server server(make_test_registry(), options);
  server.start();
  Client client = Client::connect_unix(path, 30.0);
  EXPECT_TRUE(client.call(Json::parse("{\"op\":\"ping\"}")).ok);
  server.shutdown();
  server.wait();
}

TEST(Server, OversizedFramesAreRejected) {
  ServerOptions options;
  options.max_frame_bytes = 256;
  TestServer ts(options, "oversize");
  Client client = ts.client();
  const ClientResponse reply =
      client.call_raw(std::string(1000, 'x'), /*max_frame_bytes=*/4096);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, "bad_request");
}

TEST(Server, SlowlorisPartialFrameIsTimedOutNotHeldForever) {
  // Regression for the single-reader wart: a client that writes a frame
  // header and then stalls used to hold its connection (and its admission
  // slot candidacy) indefinitely. With a read deadline the server answers
  // read_timeout and closes.
  ServerOptions options;
  options.read_deadline_ms = 200.0;
  TestServer ts(options, "slowloris");

  Client slow = ts.client();
  unsigned char header[4];
  encode_length(64, header);  // promises 64 bytes that never arrive
  ASSERT_EQ(::send(slow.fd(), header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  const auto started = std::chrono::steady_clock::now();
  const auto reply = read_frame(slow.fd(), kMaxFrameBytes);
  const auto waited = std::chrono::steady_clock::now() - started;
  ASSERT_TRUE(reply.has_value()) << "closed without the courtesy reply";
  const Json envelope = Json::parse(*reply);
  EXPECT_EQ(envelope.string_or("code", ""), "read_timeout") << *reply;
  EXPECT_LT(waited, std::chrono::seconds(10));
  // The connection is closed after the reply: the next read sees EOF.
  EXPECT_FALSE(read_frame(slow.fd(), kMaxFrameBytes).has_value());

  // A well-behaved client on the same server is unaffected.
  Client ok = ts.client();
  const ClientResponse pong = ok.call(Json::parse("{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.ok) << pong.raw;

  const auto stats = ts.server->stats();
  EXPECT_GE(stats.read_timeouts, 1u);
}

TEST(Server, PartialFramesAreNotTimedOutWhenDeadlineDisabled) {
  TestServer ts({}, "noslowdeadline");  // read_deadline_ms = 0 (off)
  Client slow = ts.client(2.0);
  unsigned char header[4];
  encode_length(64, header);
  ASSERT_EQ(::send(slow.fd(), header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Completing the frame late still works: no deadline means no sweep.
  const std::string body =
      "{\"id\":\"" + std::string(43, 'x') + "\",\"op\":\"ping\"}";
  ASSERT_EQ(body.size(), 64u);
  ASSERT_EQ(::send(slow.fd(), body.data(), body.size(), 0),
            static_cast<ssize_t>(body.size()));
  const auto reply = read_frame(slow.fd(), kMaxFrameBytes);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(Json::parse(*reply).bool_or("ok", false)) << *reply;
}

}  // namespace
}  // namespace ftbesst::svc
