// Soak and chaos harness for the scaled serving tier (LABELS slow — run by
// the check.sh `tier` and `slow` passes, excluded from `ctest -LE slow`).
//
//   * Soak: 8 concurrent clients drive 10k mixed requests (~300 unique)
//     through a 4-worker tier; every ok response must be byte-identical to
//     the single-process server's answer for the same request.
//   * Chaos: kill -9 a worker mid-soak. Clients must only ever observe
//     clean outcomes (ok or {"code":"overload"} — never a malformed frame
//     or a dropped connection), the router must respawn the worker, and
//     the respawned shard must answer its keys from cache (warm handoff),
//     not recompute them.
//
// Seeds flow through FTBESST_TEST_SEED (tests/support/test_seed.hpp).

#include <gtest/gtest.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server_test_util.hpp"
#include "support/test_seed.hpp"
#include "svc/registry.hpp"
#include "tier_test_util.hpp"

namespace ftbesst::svc {
namespace {

bool await(const std::function<bool()>& done, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

/// The soak request mix: cacheable predict/simulate requests whose answers
/// are deterministic functions of the request (constant models), so the
/// single-process reference and every tier worker agree byte-for-byte.
std::vector<Json> unique_requests(std::size_t count) {
  std::vector<Json> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 3 == 0) {
      JsonObject req;
      req.emplace("op", Json(std::string("predict")));
      req.emplace("kernel", Json(std::string("lulesh_timestep")));
      JsonArray params;
      params.push_back(Json(static_cast<std::int64_t>(4 + i % 32)));
      params.push_back(Json(static_cast<std::int64_t>(8 << (i % 4))));
      req.emplace("params", Json(std::move(params)));
      requests.push_back(Json(std::move(req)));
    } else {
      requests.push_back(
          simulate_request(static_cast<int>(9000 + i), 2 + i % 3));
    }
  }
  return requests;
}

/// Expected result bytes per canonical key, computed by a plain in-process
/// Server over the same analytic registry.
std::map<std::string, std::string> reference_answers(
    const std::vector<Json>& requests) {
  TestServer reference({}, "tier-ref");
  Client direct = reference.client();
  std::map<std::string, std::string> expected;
  for (const Json& request : requests) {
    const ClientResponse reply = direct.call(request);
    EXPECT_TRUE(reply.ok) << reply.raw;
    expected[canonical_key(request)] = reply.result_bytes;
  }
  return expected;
}

TEST(TierSoak, EightClientsTenThousandRequestsByteIdentical) {
  const std::uint64_t seed = test::test_seed(50821);
  const auto requests = unique_requests(300);
  const auto expected = reference_answers(requests);

  TestTier tier(4, "soak");
  ASSERT_TRUE(tier.router->wait_healthy(120.0)) << "tier never came up";

  constexpr int kThreads = 8;
  constexpr int kPerThread = 1250;  // 10k total
  std::atomic<int> responses{0};
  std::atomic<int> divergent{0};
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      try {
        std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t));
        Client client = tier.client();
        for (int i = 0; i < kPerThread; ++i) {
          const Json& request = requests[rng() % requests.size()];
          const ClientResponse reply = client.call(request);
          if (!reply.ok) {
            failures[t] = reply.raw;
            return;
          }
          if (reply.result_bytes !=
              expected.at(canonical_key(request)))
            divergent.fetch_add(1);
          responses.fetch_add(1);
        }
      } catch (const std::exception& e) {
        failures[t] = e.what();
      }
    });
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(failures[t], "") << "thread " << t;
  EXPECT_EQ(responses.load(), kThreads * kPerThread);
  EXPECT_EQ(divergent.load(), 0) << "tier responses diverged from the "
                                    "single-process server";

  const Router::Stats stats = tier.router->stats();
  EXPECT_EQ(stats.shed_degraded, 0u) << "healthy tier shed requests";
  EXPECT_EQ(stats.bad_requests, 0u);
  EXPECT_GE(stats.routed, static_cast<std::uint64_t>(requests.size()));
}

TEST(TierChaos, KillNineMidSoakRespawnsReWarmsAndStaysClean) {
  const std::uint64_t seed = test::test_seed(61211);
  const auto requests = unique_requests(200);
  const auto expected = reference_answers(requests);

  TestTier tier(4, "chaos");
  ASSERT_TRUE(tier.router->wait_healthy(120.0)) << "tier never came up";

  // Warm every shard (and the router journal) with one full pass.
  {
    Client client = tier.client();
    for (const Json& request : requests) {
      const ClientResponse reply = client.call(request);
      ASSERT_TRUE(reply.ok) << reply.raw;
    }
  }

  // The victim: whichever worker owns the most keys (maximum blast radius).
  std::vector<std::size_t> owned(tier.router->worker_count(), 0);
  for (const Json& request : requests)
    ++owned[tier.router->worker_for_key(canonical_key(request))];
  const std::size_t victim = static_cast<std::size_t>(
      std::max_element(owned.begin(), owned.end()) - owned.begin());
  ASSERT_GT(owned[victim], 0u);
  const pid_t victim_pid = tier.router->worker_pid(victim);
  ASSERT_GT(victim_pid, 0);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::atomic<int> ok_responses{0};
  std::atomic<int> clean_sheds{0};
  std::atomic<int> divergent{0};
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      try {
        std::mt19937_64 rng(seed ^ (0x9e3779b97f4a7c15ull *
                                    static_cast<std::uint64_t>(t + 1)));
        Client client = tier.client();
        for (int i = 0; i < kPerThread; ++i) {
          const Json& request = requests[rng() % requests.size()];
          const ClientResponse reply = client.call(request);
          if (reply.ok) {
            if (reply.result_bytes != expected.at(canonical_key(request)))
              divergent.fetch_add(1);
            ok_responses.fetch_add(1);
          } else if (reply.code == "overload") {
            clean_sheds.fetch_add(1);  // degraded shard, clean shed
          } else {
            failures[t] = reply.raw;  // anything else is a protocol break
            return;
          }
        }
      } catch (const std::exception& e) {
        // A transport error would mean the router emitted a malformed or
        // truncated frame — exactly what this harness exists to catch.
        failures[t] = e.what();
      }
    });

  // Mid-soak: hard-kill the victim worker process.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::kill(victim_pid, SIGKILL), 0);

  // The router must notice, then respawn a fresh process.
  EXPECT_TRUE(await([&] { return !tier.router->worker_healthy(victim); },
                    30.0))
      << "router never noticed the kill";
  EXPECT_TRUE(await([&] { return tier.router->worker_healthy(victim); },
                    120.0))
      << "router never respawned the worker";
  EXPECT_NE(tier.router->worker_pid(victim), victim_pid);

  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(failures[t], "") << "thread " << t;
  EXPECT_EQ(divergent.load(), 0);
  EXPECT_GT(ok_responses.load(), 0);

  const Router::Stats stats = tier.router->stats();
  EXPECT_GE(stats.respawns, 1u);
  EXPECT_EQ(stats.bad_requests, 0u);

  // Warm handoff floor: the respawned shard answers its keys from cache.
  // Every victim key was journaled during the warm pass, so the respawn
  // replay should cover nearly all of them; 70% is the regression floor.
  std::size_t victim_keys = 0, victim_hits = 0;
  Client client = tier.client();
  for (const Json& request : requests) {
    const std::string key = canonical_key(request);
    if (tier.router->worker_for_key(key) != victim) continue;
    ++victim_keys;
    const ClientResponse reply = client.call(request);
    ASSERT_TRUE(reply.ok) << reply.raw;
    if (reply.cached) ++victim_hits;
    EXPECT_EQ(reply.result_bytes, expected.at(key));
  }
  ASSERT_GT(victim_keys, 0u);
  const double hit_rate =
      static_cast<double>(victim_hits) / static_cast<double>(victim_keys);
  EXPECT_GE(hit_rate, 0.7)
      << "respawned shard came back cold: " << victim_hits << "/"
      << victim_keys << " cached";
  // Some hits come from post-respawn soak traffic rather than the replay,
  // so only the replay's existence is asserted exactly.
  EXPECT_GE(stats.journal_replayed, 1u);
}

}  // namespace
}  // namespace ftbesst::svc
