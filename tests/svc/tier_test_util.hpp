#pragma once
// Process-level tier fixture for the soak/chaos harness (and reused by
// bench_ext_tier): a Router that spawns REAL `ftbesst worker` processes —
// the compiled CLI, via FTBESST_CLI_PATH — each serving the analytic
// registry on its own shard socket. kill -9 on a worker pid is therefore a
// genuine process death, exercising the same reap/respawn/re-warm path
// production takes.

#include <memory>
#include <string>
#include <vector>

#include "server_test_util.hpp"
#include "svc/client.hpp"
#include "svc/router.hpp"

#ifndef FTBESST_CLI_PATH
#error "tier_test_util.hpp needs FTBESST_CLI_PATH (the ftbesst binary)"
#endif

namespace ftbesst::svc {

struct TestTier {
  explicit TestTier(std::size_t n, const char* tag = "tier",
                    RouterOptions opt = {}) {
    path = test_socket_path(tag);
    opt.unix_socket_path = path;
    if (opt.health_interval_ms == 200.0) opt.health_interval_ms = 100.0;
    for (std::size_t i = 0; i < n; ++i) {
      WorkerSpec spec;
      spec.socket_path = path + ".w" + std::to_string(i);
      spec.spawn_argv = {FTBESST_CLI_PATH,
                         "worker",
                         "--socket",
                         spec.socket_path,
                         "--name",
                         "worker-" + std::to_string(i),
                         "--analytic",
                         "1"};
      // Workers on the CI box share one core; two pool threads per worker
      // keeps a blocking request from idling the whole shard without
      // oversubscribing.
      spec.spawn_env = {"FTBESST_THREADS=2"};
      opt.workers.push_back(std::move(spec));
    }
    router = std::make_unique<Router>(std::move(opt));
    router->start();
  }

  ~TestTier() {
    if (router) {
      router->shutdown();
      router->wait();
    }
  }

  [[nodiscard]] Client client(double timeout = 60.0) const {
    return Client::connect_unix(path, timeout);
  }

  std::string path;
  std::unique_ptr<Router> router;
};

}  // namespace ftbesst::svc
