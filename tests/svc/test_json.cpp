#include "svc/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace ftbesst::svc {
namespace {

TEST(Json, ParsesAllValueKinds) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("[1,2,3]").as_array().size(), 3u);
  EXPECT_EQ(Json::parse("{\"a\":1,\"b\":[true]}").as_object().size(), 2u);
}

TEST(Json, DumpIsCanonicalSortedAndMinimal) {
  // Key order, whitespace, and number spelling in the input must not
  // affect the dump — that equivalence IS the cache key contract.
  const Json a = Json::parse("{\"b\": 10, \"a\": [1.50, 2]}");
  const Json b = Json::parse("{ \"a\" : [ 1.5 , 2.0 ] , \"b\" : 1e1 }");
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a.dump(), "{\"a\":[1.5,2],\"b\":10}");
  EXPECT_EQ(a, b);
}

TEST(Json, DumpParseIsIdempotent) {
  const char* samples[] = {
      "{\"a\":0.1,\"b\":[null,true,\"x\\ny\"],\"c\":{\"d\":-0}}",
      "[1e300,2.2250738585072014e-308,0.30000000000000004]",
      "\"\\u00e9\\t\\\"quoted\\\"\"",
  };
  for (const char* text : samples) {
    const std::string once = Json::parse(text).dump();
    EXPECT_EQ(Json::parse(once).dump(), once) << text;
  }
}

TEST(Json, NumbersRoundTripBitExactly) {
  for (double v : {0.1, 1.0 / 3.0, 6.02214076e23, -4.9e-324, 1e308,
                   123456789.123456789}) {
    const Json j(v);
    const double back = Json::parse(j.dump()).as_number();
    EXPECT_EQ(back, v);  // exact, not near: shortest-round-trip to_chars
  }
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW((void)Json(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW((void)Json(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)Json::parse("NaN"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("Infinity"), std::invalid_argument);
}

TEST(Json, StringEscapes) {
  const Json j = Json::parse("\"a\\\\b\\\"c\\u0041\\n\"");
  EXPECT_EQ(j.as_string(), "a\\b\"cA\n");
  // Control characters must be escaped on output.
  EXPECT_EQ(Json(std::string("x\ny\x01")).dump(), "\"x\\ny\\u0001\"");
  // ... and rejected raw on input.
  EXPECT_THROW((void)Json::parse("\"a\nb\""), std::invalid_argument);
}

TEST(Json, UnicodeEscapesBmp) {
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");  // €
  // Surrogates are out of scope and must be a clean error.
  EXPECT_THROW((void)Json::parse("\"\\ud83d\\ude00\""), std::invalid_argument);
}

TEST(Json, MalformedInputsThrowWithByteOffsets) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.2.3",
        "\"unterminated", "[1] trailing", "{\"a\":1,}", "nul"}) {
    EXPECT_THROW((void)Json::parse(bad), std::invalid_argument) << bad;
  }
  try {
    (void)Json::parse("[1, 2, x]");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(Json, NestingDepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep), std::invalid_argument);
  EXPECT_NO_THROW((void)Json::parse(deep, 200));
}

TEST(Json, CheckedAccessorsThrowOnTypeMismatch) {
  const Json j = Json::parse("{\"n\":1,\"s\":\"x\"}");
  EXPECT_THROW((void)j.as_array(), std::invalid_argument);
  EXPECT_THROW((void)j.find("n")->as_string(), std::invalid_argument);
  EXPECT_THROW((void)j.find("s")->as_number(), std::invalid_argument);
}

TEST(Json, TypedGettersWithFallbacks) {
  const Json j = Json::parse(
      "{\"d\":2.5,\"i\":7,\"s\":\"text\",\"b\":true,\"z\":null}");
  EXPECT_DOUBLE_EQ(j.number_or("d", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(j.number_or("missing", 9.5), 9.5);
  EXPECT_EQ(j.int_or("i", 0), 7);
  EXPECT_EQ(j.string_or("s", ""), "text");
  EXPECT_TRUE(j.bool_or("b", false));
  // null counts as absent for the fallback getters.
  EXPECT_EQ(j.int_or("z", 3), 3);
  // Type mismatches and non-integral ints still throw.
  EXPECT_THROW((void)j.int_or("s", 0), std::invalid_argument);
  EXPECT_THROW((void)j.int_or("d", 0), std::invalid_argument);
  EXPECT_THROW((void)j.string_or("i", ""), std::invalid_argument);
}

TEST(Json, IntOrRejectsOutOfRangeDoublesBeforeCasting) {
  // Values past int64 range must be rejected by a range check, never fed
  // to the double->int64 cast (which would be undefined behavior).
  const Json j = Json::parse(
      "{\"huge\":1e300,\"neg\":-1e300,\"edge\":9223372036854775808,"
      "\"big_ok\":9007199254740992}");
  EXPECT_THROW((void)j.int_or("huge", 0), std::invalid_argument);
  EXPECT_THROW((void)j.int_or("neg", 0), std::invalid_argument);
  EXPECT_THROW((void)j.int_or("edge", 0), std::invalid_argument);  // == 2^63
  EXPECT_EQ(j.int_or("big_ok", 0), 9007199254740992LL);  // 2^53 fits fine
}

TEST(Json, FindOnNonObjectsReturnsNull) {
  EXPECT_EQ(Json(5).find("a"), nullptr);
  EXPECT_EQ(Json::parse("[1]").find("a"), nullptr);
  EXPECT_NE(Json::parse("{\"a\":1}").find("a"), nullptr);
  EXPECT_EQ(Json::parse("{\"a\":1}").find("b"), nullptr);
}

}  // namespace
}  // namespace ftbesst::svc
