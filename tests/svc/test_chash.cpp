// Property tests for the consistent-hash ring (svc/chash.hpp): routing
// purity, spread, and the bounded-remap guarantee that makes worker
// add/remove (and respawn) cheap for the shard caches.

#include "svc/chash.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <vector>

#include "support/test_seed.hpp"
#include "svc/json.hpp"
#include "svc/registry.hpp"

namespace ftbesst::svc {
namespace {

std::vector<std::string> random_keys(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::set<std::string> unique;
  while (unique.size() < count) {
    // Shaped like real canonical keys: a canonical dump of a small request
    // object, so the test exercises the same byte patterns production
    // hashes.
    JsonObject req;
    req.emplace("op", Json(std::string("simulate")));
    req.emplace("app", Json(std::string(rng() % 2 ? "lulesh" : "stencil3d")));
    req.emplace("epr", Json(static_cast<std::int64_t>(rng() % 64 + 1)));
    req.emplace("ranks", Json(static_cast<std::int64_t>(1ull << (rng() % 7))));
    req.emplace("seed", Json(static_cast<std::int64_t>(rng() % 100000)));
    unique.insert(Json(std::move(req)).dump());
  }
  return {unique.begin(), unique.end()};
}

TEST(RingHash, DistinctInputsAvalanche) {
  // Near-identical inputs must not produce near-identical hashes.
  const std::uint64_t a = ring_hash("worker-0#1");
  const std::uint64_t b = ring_hash("worker-0#2");
  const std::uint64_t c = ring_hash("worker-1#1");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // High bits participate (plain FNV-1a fails this for short ASCII).
  EXPECT_NE(a >> 48, b >> 48);
}

TEST(HashRing, RejectsDegenerateShapes) {
  EXPECT_THROW(HashRing(0, 128), std::invalid_argument);
  EXPECT_THROW(HashRing(4, 0), std::invalid_argument);
}

TEST(HashRing, LookupIsPureFunctionOfKey) {
  const std::uint64_t seed = test::test_seed(11821);
  const HashRing ring_a(4, 128);
  const HashRing ring_b(4, 128);  // independently built, identical ring
  for (const std::string& key : random_keys(500, seed)) {
    const std::size_t owner = ring_a.lookup(key);
    EXPECT_LT(owner, 4u);
    EXPECT_EQ(owner, ring_a.lookup(key)) << key;   // stable across calls
    EXPECT_EQ(owner, ring_b.lookup(key)) << key;   // stable across instances
  }
}

TEST(HashRing, SpreadsKeysAcrossAllWorkers) {
  const std::uint64_t seed = test::test_seed(22931);
  const std::size_t kWorkers = 4, kKeys = 2000;
  const HashRing ring(kWorkers, 128);
  std::vector<std::size_t> owned(kWorkers, 0);
  for (const std::string& key : random_keys(kKeys, seed))
    ++owned[ring.lookup(key)];
  // With 128 vnodes/worker the load imbalance is modest: every worker owns
  // a real share (no empty shard, nobody over ~2x fair share).
  const double fair = static_cast<double>(kKeys) / kWorkers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    EXPECT_GT(owned[w], fair * 0.4) << "worker " << w << " starved";
    EXPECT_LT(owned[w], fair * 2.0) << "worker " << w << " overloaded";
  }
}

TEST(HashRing, AddingOneWorkerRemapsBoundedFraction) {
  const std::uint64_t seed = test::test_seed(31013);
  const std::size_t kKeys = 2000;
  const auto keys = random_keys(kKeys, seed);
  const HashRing before(4, 128);
  const HashRing after(5, 128);
  std::size_t moved = 0;
  for (const std::string& key : keys) {
    const std::size_t old_owner = before.lookup(key);
    const std::size_t new_owner = after.lookup(key);
    if (old_owner != new_owner) {
      // Consistent hashing's defining property: a key only ever moves TO
      // the new worker — surviving workers never shuffle keys among
      // themselves.
      EXPECT_EQ(new_owner, 4u)
          << "key moved between surviving workers: " << old_owner << " -> "
          << new_owner;
      ++moved;
    }
  }
  // Expected movement is K/N_new; allow 50% slack over the expectation.
  EXPECT_LE(moved, static_cast<std::size_t>(1.5 * kKeys / 5.0));
  EXPECT_GT(moved, 0u);  // the new worker must take real load
}

TEST(HashRing, RemovingOneWorkerRemapsOnlyItsKeys) {
  const std::uint64_t seed = test::test_seed(40427);
  const std::size_t kKeys = 2000;
  const auto keys = random_keys(kKeys, seed);
  const HashRing before(5, 128);
  const HashRing after(4, 128);  // worker 4 removed
  std::size_t moved = 0;
  for (const std::string& key : keys) {
    const std::size_t old_owner = before.lookup(key);
    const std::size_t new_owner = after.lookup(key);
    if (old_owner != new_owner) {
      EXPECT_EQ(old_owner, 4u)
          << "key not owned by the removed worker moved: " << old_owner
          << " -> " << new_owner;
      ++moved;
    }
  }
  EXPECT_LE(moved, static_cast<std::size_t>(1.5 * kKeys / 5.0));
}

TEST(HashRing, RoutesCanonicalKeySpellingInvariantly) {
  // Two spellings of the same request (key order, number format,
  // volatile fields) canonicalize to one key and therefore one worker —
  // the property that makes worker caches true shards.
  const HashRing ring(4, 128);
  const Json a = Json::parse(
      "{\"op\":\"simulate\",\"app\":\"lulesh\",\"epr\":10,\"ranks\":64,"
      "\"timesteps\":30,\"trials\":5,\"seed\":7}");
  const Json b = Json::parse(
      "{\"seed\":7,\"trials\":5,\"timesteps\":3e1,\"ranks\":64,"
      "\"epr\":10.0,\"app\":\"lulesh\",\"op\":\"simulate\","
      "\"deadline_ms\":500,\"id\":\"req-9\"}");
  ASSERT_EQ(canonical_key(a), canonical_key(b));
  EXPECT_EQ(ring.lookup(canonical_key(a)), ring.lookup(canonical_key(b)));
}

}  // namespace
}  // namespace ftbesst::svc
