#include "search/space.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ftbesst::search {
namespace {

SearchSpace small_space() {
  SearchSpace s;
  s.scenarios = {{"No FT", {}}, {"L1", {{ft::Level::kL1, 4}}}};
  s.points = {{1.0, 8.0}, {2.0, 8.0}, {1.0, 16.0}};
  return s;
}

TEST(SearchSpace, FlatIndexIsScenarioMajor) {
  const SearchSpace s = small_space();
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.scenario_of(0), 0u);
  EXPECT_EQ(s.point_of(0), 0u);
  EXPECT_EQ(s.scenario_of(2), 0u);
  EXPECT_EQ(s.point_of(2), 2u);
  EXPECT_EQ(s.scenario_of(3), 1u);
  EXPECT_EQ(s.point_of(3), 0u);
  EXPECT_EQ(s.scenario_of(5), 1u);
  EXPECT_EQ(s.point_of(5), 2u);
}

TEST(SearchSpace, ValidateAcceptsAWellFormedSpace) {
  EXPECT_NO_THROW(small_space().validate());
}

TEST(SearchSpace, ValidateRejectsMalformedSpaces) {
  SearchSpace s = small_space();
  s.scenarios.clear();
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = small_space();
  s.points.clear();
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = small_space();
  s.points.push_back({1.0});  // ragged
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = small_space();
  s.scenarios.push_back({"No FT", {}});  // duplicate name
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = small_space();
  s.scenarios[1].plan = {{ft::Level::kL1, 4}, {ft::Level::kL1, 8}};
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(EncodeCells, OneHotScenarioColumnsDistanceOne) {
  const SearchSpace s = small_space();
  const model::Matrix x = encode_cells(s);
  ASSERT_EQ(x.rows(), 6u);
  ASSERT_EQ(x.cols(), 2u + 2u);
  // Same point, different scenario: distance exactly 1 in feature space.
  double d2 = 0.0;
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const double diff = x.at(0, c) - x.at(3, c);
    d2 += diff * diff;
  }
  EXPECT_NEAR(std::sqrt(d2), 1.0, 1e-12);
  EXPECT_NEAR(x.at(0, 0), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(x.at(0, 1), 0.0, 1e-12);
}

TEST(EncodeCells, NumericAxesRankNormalizedToUnitInterval) {
  const SearchSpace s = small_space();
  const model::Matrix x = encode_cells(s);
  // Axis 0 values {1, 2} -> ranks {0, 1}; axis 1 values {8, 16} -> {0, 1}.
  EXPECT_NEAR(x.at(0, 2), 0.0, 1e-12);  // point {1, 8}
  EXPECT_NEAR(x.at(1, 2), 1.0, 1e-12);  // point {2, 8}
  EXPECT_NEAR(x.at(0, 3), 0.0, 1e-12);
  EXPECT_NEAR(x.at(2, 3), 1.0, 1e-12);  // point {1, 16}
}

TEST(EncodeCells, ConstantAxisEncodesToZero) {
  SearchSpace s;
  s.scenarios = {{"only", {}}};
  s.points = {{3.0, 1.0}, {3.0, 2.0}};
  const model::Matrix x = encode_cells(s);
  EXPECT_NEAR(x.at(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(x.at(1, 1), 0.0, 1e-12);
  EXPECT_NEAR(x.at(1, 2), 1.0, 1e-12);
}

}  // namespace
}  // namespace ftbesst::search
