#include "search/search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ftbesst::search {
namespace {

SearchSpace two_scenario_space() {
  SearchSpace s;
  s.scenarios = {{"plain", {}}, {"l1", {{ft::Level::kL1, 4}}}};
  for (double a = 1.0; a <= 6.0; a += 1.0)
    for (double b = 10.0; b <= 40.0; b += 10.0) s.points.push_back({a, b});
  return s;  // 2 x 24 = 48 cells
}

/// Smooth deterministic objective with a unique minimum at flat 9
/// (scenario "plain", point {3, 20}); the "l1" scenario costs +0.5.
double objective(const SearchSpace& s, std::size_t flat) {
  const std::vector<double>& p = s.points[s.point_of(flat)];
  return 1.0 + 0.1 * std::abs(p[0] - 3.0) + 0.01 * std::abs(p[1] - 20.0) +
         (s.scenario_of(flat) == 1 ? 0.5 : 0.0);
}

Evaluator make_evaluator(const SearchSpace& s) {
  return [&s](const std::vector<core::DseCell>& cells) {
    std::vector<double> out(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      out[i] = objective(s, cells[i].flat);
    return out;
  };
}

TEST(Search, GpFindsTheMinimumWithinAModestBudget) {
  const SearchSpace space = two_scenario_space();
  SearchOptions opt;
  opt.method = Method::kGp;
  opt.seed = 3;
  opt.trials = 8;
  opt.budget_fraction = 0.5;
  const SearchResult r = run_search(space, opt, make_evaluator(space));
  EXPECT_EQ(r.method_used, Method::kGp);
  EXPECT_EQ(r.best.flat, 9u);
  EXPECT_DOUBLE_EQ(r.best.objective, objective(space, 9));
  EXPECT_EQ(r.best.scenario, "plain");
}

TEST(Search, BudgetAccountingIsExact) {
  const SearchSpace space = two_scenario_space();
  SearchOptions opt;
  opt.method = Method::kGp;
  opt.trials = 4;
  opt.budget_fraction = 0.25;
  const SearchResult r = run_search(space, opt, make_evaluator(space));
  EXPECT_DOUBLE_EQ(r.budget_units, 0.25 * 48.0 * 4.0);
  EXPECT_LE(r.trial_units, r.budget_units);
  EXPECT_EQ(r.evaluations, r.history.size());
  EXPECT_LE(r.evaluations,
            static_cast<std::size_t>(r.budget_units / 4.0));
  double charged = 0.0;
  for (const EvaluatedCell& c : r.history) {
    EXPECT_FALSE(c.warm);
    EXPECT_EQ(c.trials, 4u);
    charged += static_cast<double>(c.trials);
  }
  EXPECT_DOUBLE_EQ(charged, r.trial_units);
}

TEST(Search, BitIdenticalAcrossRerunsAndThreadSettings) {
  const SearchSpace space = two_scenario_space();
  SearchOptions opt;
  opt.method = Method::kGp;
  opt.mode = Mode::kPareto;
  opt.seed = 11;
  opt.trials = 8;
  opt.budget_fraction = 0.3;
  opt.threads = 1;
  const SearchResult a = run_search(space, opt, make_evaluator(space));
  const SearchResult b = run_search(space, opt, make_evaluator(space));
  EXPECT_EQ(a.to_text(), b.to_text());
  opt.threads = 0;
  const SearchResult c = run_search(space, opt, make_evaluator(space));
  EXPECT_EQ(a.to_text(), c.to_text());
}

TEST(Search, WarmObservationsAreFreeAndUsed) {
  const SearchSpace space = two_scenario_space();
  SearchOptions opt;
  opt.method = Method::kGp;
  opt.trials = 8;
  opt.budget_units = 8.0;  // affords exactly one cold evaluation
  std::vector<WarmObservation> warm;
  for (std::size_t f = 0; f < space.size(); ++f)
    warm.push_back({f, objective(space, f)});
  const SearchResult r =
      run_search(space, opt, make_evaluator(space), warm);
  EXPECT_EQ(r.warm_hits, space.size());
  EXPECT_EQ(r.evaluations, 0u);  // everything already known
  EXPECT_DOUBLE_EQ(r.trial_units, 0.0);
  EXPECT_EQ(r.best.flat, 9u);
  EXPECT_TRUE(r.best.warm);
}

TEST(Search, BanditModeFindsTheMinimumAndReportsItself) {
  const SearchSpace space = two_scenario_space();
  SearchOptions opt;
  opt.method = Method::kBandit;
  opt.trials = 8;
  opt.budget_fraction = 1.0;
  const SearchResult r = run_search(space, opt, make_evaluator(space));
  EXPECT_EQ(r.method_used, Method::kBandit);
  EXPECT_EQ(r.best.flat, 9u);
  EXPECT_DOUBLE_EQ(r.best.objective, objective(space, 9));
}

TEST(Search, AutoPrefersGpOnSmallSpacesAndBanditOnHuge) {
  const SearchSpace small = two_scenario_space();
  SearchOptions opt;
  opt.trials = 4;
  opt.budget_fraction = 0.2;
  EXPECT_EQ(run_search(small, opt, make_evaluator(small)).method_used,
            Method::kGp);

  SearchSpace huge;
  huge.scenarios = {{"only", {}}};
  for (double v = 0.0; v < 3000.0; v += 1.0) huge.points.push_back({v});
  EXPECT_EQ(run_search(huge, opt, make_evaluator(huge)).method_used,
            Method::kBandit);
}

TEST(Search, ParetoModeRecoversBothFrontSegments) {
  const SearchSpace space = two_scenario_space();
  SearchOptions opt;
  opt.method = Method::kGp;
  opt.mode = Mode::kPareto;
  opt.trials = 8;
  opt.budget_fraction = 1.0;  // evaluate everything: the front is exact
  opt.fti = ft::FtiConfig{2, 2, 1};
  const SearchResult r = run_search(space, opt, make_evaluator(space));
  ASSERT_EQ(r.pareto.size(), 2u);
  EXPECT_EQ(r.pareto[0].flat, 9u);        // best "plain" cell, recov 0
  EXPECT_EQ(r.pareto[1].flat, 24u + 9u);  // best "l1" cell, recov > 0
  EXPECT_GT(r.pareto[1].recoverability, r.pareto[0].recoverability);
  EXPECT_GT(r.pareto[1].objective, r.pareto[0].objective);
}

TEST(Search, ToTextIsACanonicalRendering) {
  const SearchSpace space = two_scenario_space();
  SearchOptions opt;
  opt.trials = 4;
  opt.budget_fraction = 0.2;
  const SearchResult r = run_search(space, opt, make_evaluator(space));
  const std::string text = r.to_text();
  EXPECT_NE(text.find("ftbesst-search v1"), std::string::npos);
  EXPECT_NE(text.find("\nbest "), std::string::npos);
  EXPECT_NE(text.find("\nhistory "), std::string::npos);
}

TEST(Search, RejectsUnusableConfigurations) {
  const SearchSpace space = two_scenario_space();
  SearchOptions opt;
  opt.method = Method::kBandit;
  opt.mode = Mode::kPareto;
  EXPECT_THROW((void)run_search(space, opt, make_evaluator(space)),
               std::invalid_argument);

  SearchOptions tiny;
  tiny.trials = 8;
  tiny.budget_units = 1.0;  // less than one evaluation, no warm starts
  EXPECT_THROW((void)run_search(space, tiny, make_evaluator(space)),
               std::invalid_argument);

  SearchSpace empty;
  SearchOptions ok;
  EXPECT_THROW((void)run_search(empty, ok, make_evaluator(space)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::search
