#include "search/bandit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ftbesst::search {
namespace {

/// Fidelity-independent objective: arm values are a fixed permutation, so
/// every rung ranks arms exactly and the true best must survive.
double arm_value(std::size_t flat) {
  return 1.0 + static_cast<double>((flat * 37 + 11) % 64) * 0.01;
}

BanditEvaluator exact_evaluator() {
  return [](const std::vector<core::DseCell>& cells) {
    std::vector<double> out(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      out[i] = arm_value(cells[i].flat);
    return out;
  };
}

TEST(Bandit, KeepsTheTrueBestArm) {
  const std::size_t cells = 64;
  std::size_t argmin = 0;
  for (std::size_t f = 1; f < cells; ++f)
    if (arm_value(f) < arm_value(argmin)) argmin = f;

  core::DseBudget budget(1e9);
  const BanditResult r = run_successive_halving(
      cells, 16, budget, {}, util::Rng(7), exact_evaluator());
  EXPECT_EQ(r.best, argmin);
  EXPECT_DOUBLE_EQ(r.best_value, arm_value(argmin));
  EXPECT_EQ(r.starting_arms, cells);
  EXPECT_FALSE(r.finalists.empty());
  // The final rung prices its survivors at full trials.
  std::size_t max_trials = 0;
  for (const BanditOutcome& o : r.history)
    max_trials = std::max(max_trials, o.trials);
  EXPECT_EQ(max_trials, 16u);
}

TEST(Bandit, ChargesEveryEvaluationToTheBudget) {
  core::DseBudget budget(1e9);
  const BanditResult r = run_successive_halving(
      32, 8, budget, {}, util::Rng(1), exact_evaluator());
  double expected_units = 0.0;
  for (const BanditOutcome& o : r.history)
    expected_units += static_cast<double>(o.trials);
  EXPECT_DOUBLE_EQ(r.trial_units, expected_units);
  EXPECT_DOUBLE_EQ(budget.used(), expected_units);
}

TEST(Bandit, SubsamplesArmsDeterministicallyUnderATightBudget) {
  auto run = [] {
    core::DseBudget budget(40.0);  // cannot afford all 64 arms
    return run_successive_halving(64, 8, budget, {}, util::Rng(5),
                                  exact_evaluator());
  };
  const BanditResult a = run();
  const BanditResult b = run();
  EXPECT_LT(a.starting_arms, 64u);
  EXPECT_GT(a.starting_arms, 0u);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].flat, b.history[i].flat);
    EXPECT_EQ(a.history[i].trials, b.history[i].trials);
    EXPECT_DOUBLE_EQ(a.history[i].value, b.history[i].value);
  }
  EXPECT_EQ(a.best, b.best);
}

TEST(Bandit, ThrowsWhenOneArmIsUnaffordable) {
  core::DseBudget budget(0.5);
  EXPECT_THROW((void)run_successive_halving(8, 8, budget, {}, util::Rng(1),
                                            exact_evaluator()),
               std::invalid_argument);
}

TEST(Bandit, WinnersObjectiveComesFromTheFullFidelityRung) {
  // Value improves with fidelity (prefix semantics: more trials refine the
  // estimate); best_value must be the full-trials number, not a cheap rung.
  const BanditEvaluator eval = [](const std::vector<core::DseCell>& cells) {
    std::vector<double> out(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      out[i] = arm_value(cells[i].flat) +
               1.0 / static_cast<double>(cells[i].trials);
    return out;
  };
  core::DseBudget budget(1e9);
  const BanditResult r =
      run_successive_halving(16, 8, budget, {}, util::Rng(3), eval);
  EXPECT_DOUBLE_EQ(r.best_value, arm_value(r.best) + 1.0 / 8.0);
}

}  // namespace
}  // namespace ftbesst::search
