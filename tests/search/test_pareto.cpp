#include "search/pareto.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftbesst::search {
namespace {

ParetoPoint pp(std::size_t flat, double obj, double recov) {
  return ParetoPoint{flat, obj, recov};
}

TEST(Pareto, DominatesRequiresStrictImprovementSomewhere) {
  EXPECT_TRUE(dominates(pp(0, 1.0, 0.5), pp(1, 2.0, 0.5)));
  EXPECT_TRUE(dominates(pp(0, 1.0, 0.6), pp(1, 1.0, 0.5)));
  EXPECT_FALSE(dominates(pp(0, 1.0, 0.5), pp(1, 1.0, 0.5)));  // equal
  EXPECT_FALSE(dominates(pp(0, 1.0, 0.4), pp(1, 2.0, 0.5)));  // trade-off
  EXPECT_FALSE(dominates(pp(0, 2.0, 0.5), pp(1, 1.0, 0.5)));
}

TEST(Pareto, FrontKeepsOnlyNonDominatedSortedByObjective) {
  const std::vector<ParetoPoint> front = pareto_front({
      pp(0, 3.0, 0.2),  // dominated by flat 3
      pp(1, 1.0, 0.0),
      pp(2, 5.0, 1.0),
      pp(3, 2.0, 0.5),
      pp(4, 6.0, 0.9),  // dominated by flat 2
  });
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].flat, 1u);
  EXPECT_EQ(front[1].flat, 3u);
  EXPECT_EQ(front[2].flat, 2u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].objective, front[i - 1].objective);
    EXPECT_GT(front[i].recoverability, front[i - 1].recoverability);
  }
}

TEST(Pareto, FrontKeepsLowestFlatOnDuplicateValues) {
  const std::vector<ParetoPoint> front =
      pareto_front({pp(7, 1.0, 0.5), pp(2, 1.0, 0.5), pp(9, 1.0, 0.5)});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].flat, 2u);
}

TEST(Pareto, FrontDominatesOrEqualsCoverage) {
  const std::vector<ParetoPoint> reference{pp(0, 2.0, 0.3), pp(1, 4.0, 0.8)};
  // Identical front covers.
  EXPECT_TRUE(front_dominates_or_equals(reference, reference));
  // Strictly better candidate covers.
  EXPECT_TRUE(front_dominates_or_equals(
      {pp(5, 1.5, 0.3), pp(6, 4.0, 0.9)}, reference));
  // One cheap point cannot cover the high-recoverability segment.
  EXPECT_FALSE(front_dominates_or_equals({pp(5, 1.0, 0.3)}, reference));
  // A slower point fails even at equal recoverability.
  EXPECT_FALSE(front_dominates_or_equals(
      {pp(5, 2.5, 0.3), pp(6, 4.0, 0.8)}, reference));
  // Empty reference is trivially covered; empty candidate covers nothing.
  EXPECT_TRUE(front_dominates_or_equals({pp(5, 1.0, 0.1)}, {}));
  EXPECT_FALSE(front_dominates_or_equals({}, reference));
}

TEST(Recoverability, LadderStrictlyOrdersTheLevels) {
  const ft::FtiConfig fti{};
  auto score = [&](ft::Level level) {
    return recoverability_score({{level, 4}}, fti);
  };
  EXPECT_DOUBLE_EQ(recoverability_score({}, fti), 0.0);
  EXPECT_GT(score(ft::Level::kL1), 0.0);
  EXPECT_LT(score(ft::Level::kL1), score(ft::Level::kL2));
  EXPECT_LT(score(ft::Level::kL2), score(ft::Level::kL3));
  EXPECT_LT(score(ft::Level::kL3), score(ft::Level::kL4));
  EXPECT_DOUBLE_EQ(score(ft::Level::kL4), 1.0);
}

TEST(Recoverability, MultiLevelPlanScoresAtLeastItsStrongestLevel) {
  const ft::FtiConfig fti{};
  const double l1 = recoverability_score({{ft::Level::kL1, 2}}, fti);
  const double both = recoverability_score(
      {{ft::Level::kL1, 2}, {ft::Level::kL4, 8}}, fti);
  EXPECT_GE(both, recoverability_score({{ft::Level::kL4, 8}}, fti));
  EXPECT_GE(both, l1);
}

TEST(Recoverability, IndependentOfRankCountByConstruction) {
  // The ladder only probes group 0, so any valid rank count sees the same
  // score; spot-check by varying fti layout instead (which may change it).
  const ft::FtiConfig small{2, 2, 1};
  const double a = recoverability_score({{ft::Level::kL1, 2}}, small);
  const double b = recoverability_score({{ft::Level::kL1, 2}}, small);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace ftbesst::search
