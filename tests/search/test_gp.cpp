#include "search/gp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ftbesst::search {
namespace {

model::Matrix grid_1d(const std::vector<double>& xs) {
  model::Matrix m(xs.size(), 1);
  for (std::size_t i = 0; i < xs.size(); ++i) m.at(i, 0) = xs[i];
  return m;
}

TEST(Gp, PosteriorInterpolatesTheObservations) {
  const std::vector<double> xs{0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::sin(6.0 * x));
  GpSurrogate gp;
  gp.fit(grid_1d(xs), ys);
  ASSERT_TRUE(gp.fitted());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    const auto post = gp.predict(std::vector<double>{x});
    EXPECT_NEAR(post.mean, ys[i], 1e-2) << "at x=" << x;
  }
}

TEST(Gp, VarianceVanishesAtObservedPointsAndGrowsAway) {
  const std::vector<double> xs{0.0, 0.5, 1.0};
  const std::vector<double> ys{1.0, 2.0, 0.5};
  GpSurrogate gp;
  gp.fit(grid_1d(xs), ys);
  const double at_obs =
      gp.predict(std::vector<double>{0.5}).variance;
  const double far =
      gp.predict(std::vector<double>{5.0}).variance;
  EXPECT_LT(at_obs, 1e-3);
  EXPECT_GT(far, 100.0 * at_obs);  // approaches the prior far away
  EXPECT_GT(far, 0.1);
  EXPECT_GE(at_obs, 0.0);
}

TEST(Gp, PsdGuardSurvivesNearDuplicateRows) {
  // 40 rows within 1e-13 of each other make the kernel matrix numerically
  // rank-1; the jitter escalation must still produce a usable factor.
  std::vector<double> xs, ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(0.5 + 1e-13 * i);
    ys.push_back(1.0 + 1e-3 * i);
  }
  GpSurrogate gp;
  ASSERT_NO_THROW(gp.fit(grid_1d(xs), ys));
  EXPECT_GT(gp.jitter_used(), 0.0);
  const auto post = gp.predict(std::vector<double>{0.5});
  EXPECT_TRUE(std::isfinite(post.mean));
  EXPECT_TRUE(std::isfinite(post.variance));
  EXPECT_GE(post.variance, 0.0);
}

TEST(Gp, ExpectedImprovementPrefersTheLikelyMinimum) {
  // V-shaped data: EI below the current best must be largest near the
  // unexplored minimum region, and ~zero far up the slope.
  const std::vector<double> xs{0.0, 0.2, 0.8, 1.0};
  const std::vector<double> ys{1.0, 0.4, 0.4, 1.0};
  GpSurrogate gp;
  gp.fit(grid_1d(xs), ys);
  const double best = 0.4;
  const double near_min =
      gp.expected_improvement(std::vector<double>{0.5}, best);
  const double explored =
      gp.expected_improvement(std::vector<double>{0.0}, best);
  EXPECT_GT(near_min, explored);
  EXPECT_GE(explored, 0.0);
}

TEST(Gp, KernelSelfValueIsSignalVariance) {
  GpOptions opt;
  opt.signal_variance = 2.5;
  for (GpOptions::Kernel k :
       {GpOptions::Kernel::kMatern52, GpOptions::Kernel::kRbf}) {
    opt.kernel = k;
    GpSurrogate gp(opt);
    const std::vector<double> a{0.3, 0.7};
    EXPECT_NEAR(gp.kernel(a, a), 2.5, 1e-12);
    const std::vector<double> b{0.9, 0.1};
    EXPECT_LT(gp.kernel(a, b), 2.5);
    EXPECT_GT(gp.kernel(a, b), 0.0);
  }
}

TEST(Gp, ConstantTargetsFitWithoutDegenerateScale) {
  const std::vector<double> xs{0.0, 0.5, 1.0};
  const std::vector<double> ys{3.0, 3.0, 3.0};
  GpSurrogate gp;
  ASSERT_NO_THROW(gp.fit(grid_1d(xs), ys));
  const auto post = gp.predict(std::vector<double>{0.25});
  EXPECT_NEAR(post.mean, 3.0, 1e-6);
}

}  // namespace
}  // namespace ftbesst::search
