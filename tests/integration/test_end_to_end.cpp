// Integration tests: the full calibrate -> model -> bind -> simulate ->
// validate pipeline on miniature versions of the paper's case study, plus
// cross-engine and cross-layer consistency checks that no unit test covers.

#include <gtest/gtest.h>

#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "core/engine_des.hpp"
#include "core/montecarlo.hpp"
#include "core/workflow.hpp"
#include "model/serialize.hpp"
#include "net/topology.hpp"
#include "util/stats.hpp"

namespace ftbesst {
namespace {

ft::FtiConfig fti_cfg() {
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  return fti;
}

struct Pipeline {
  apps::QuartzTestbed testbed{apps::QuartzTruthParams{}, fti_cfg(), 404};
  std::map<std::string, model::Dataset> calibration;
  core::ModelSuite suite;
  std::shared_ptr<net::TwoStageFatTree> topo;
  std::unique_ptr<core::ArchBEO> arch;

  explicit Pipeline(model::ModelMethod method = model::ModelMethod::kAuto) {
    apps::CampaignSpec spec;
    spec.samples_per_point = 8;
    spec.seed = 11;
    calibration = apps::run_campaign(
        testbed, spec,
        {apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
         apps::checkpoint_kernel(ft::Level::kL2)});
    model::FitOptions fit;
    fit.method = method;
    fit.symreg.generations = 60;
    suite = core::develop_models(calibration, fit);
    topo = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
    arch = std::make_unique<core::ArchBEO>("quartz", topo, net::CommParams{},
                                           36);
    arch->set_fti(fti_cfg());
    suite.bind_into(*arch);
  }
};

TEST(EndToEnd, KernelModelsMeetPaperAccuracyBand) {
  const Pipeline p;
  // Paper Table III: < 17% for every kernel; give our synthetic machine the
  // same headroom the paper claims ("less than 17%"), with margin for seed
  // variation.
  for (const auto& report : p.suite.reports)
    EXPECT_LT(report.fit.full_mape, 25.0) << report.kernel;
  // The timestep kernel is the easy one and must be well under 10%.
  for (const auto& report : p.suite.reports) {
    if (report.kernel == apps::kLuleshTimestep) {
      EXPECT_LT(report.fit.full_mape, 10.0);
    }
  }
}

TEST(EndToEnd, FittedModelsPreserveKernelOrdering) {
  const Pipeline p;
  const auto& ts = *p.suite.kernels.at(apps::kLuleshTimestep).model;
  const auto& l1 =
      *p.suite.kernels.at(apps::checkpoint_kernel(ft::Level::kL1)).model;
  const auto& l2 =
      *p.suite.kernels.at(apps::checkpoint_kernel(ft::Level::kL2)).model;
  for (double epr : {10.0, 20.0}) {
    for (double ranks : {64.0, 512.0, 1000.0}) {
      const std::vector<double> pt{epr, ranks};
      EXPECT_LT(ts.predict(pt), l1.predict(pt)) << epr << "," << ranks;
      EXPECT_LT(l1.predict(pt), l2.predict(pt)) << epr << "," << ranks;
    }
  }
}

TEST(EndToEnd, FullSystemSimulationTracksMeasurement) {
  Pipeline p;
  util::Rng rng(77);
  std::vector<double> measured, simulated;
  const std::vector<ft::PlanEntry> plan{{ft::Level::kL1, 40},
                                        {ft::Level::kL2, 40}};
  for (int epr : {10, 20}) {
    for (std::int64_t ranks : {std::int64_t{64}, std::int64_t{512}}) {
      measured.push_back(
          p.testbed.run_application(epr, ranks, 100, plan, rng)
              .total_seconds);
      apps::LuleshConfig cfg;
      cfg.epr = epr;
      cfg.ranks = ranks;
      cfg.timesteps = 100;
      cfg.plan = plan;
      cfg.fti = fti_cfg();
      const auto ens = core::run_ensemble(apps::build_lulesh_fti(cfg),
                                          *p.arch, core::EngineOptions{}, 8);
      simulated.push_back(ens.total.mean);
    }
  }
  // Paper Table IV: ~15-20% full-system MAPE; hold ourselves under 25%.
  EXPECT_LT(util::mape_percent(measured, simulated), 25.0);
}

TEST(EndToEnd, DesEngineMatchesCoarseEngineOnCaseStudyApp) {
  Pipeline p;
  // Strip noise: rebind deterministic models so both engines are exact.
  for (const auto& [kernel, fitted] : p.suite.kernels)
    p.arch->bind_kernel(kernel, fitted.model);
  apps::LuleshConfig cfg;
  cfg.epr = 10;
  cfg.ranks = 64;
  cfg.timesteps = 40;
  cfg.plan = {{ft::Level::kL1, 10}};
  cfg.fti = fti_cfg();
  const core::AppBEO app = apps::build_lulesh_fti(cfg);
  const auto bsp = core::run_bsp(app, *p.arch);
  const auto des = core::run_des(app, *p.arch);
  EXPECT_NEAR(des.total_seconds, bsp.total_seconds,
              1e-7 * bsp.total_seconds);
  EXPECT_EQ(des.checkpoint_timesteps, bsp.checkpoint_timesteps);
}

TEST(EndToEnd, EnsembleIsThreadCountInvariant) {
  Pipeline p;
  apps::LuleshConfig cfg;
  cfg.epr = 10;
  cfg.ranks = 64;
  cfg.timesteps = 50;
  cfg.fti = fti_cfg();
  const core::AppBEO app = apps::build_lulesh_fti(cfg);
  core::EngineOptions opt;
  opt.seed = 99;
  const auto one = core::run_ensemble(app, *p.arch, opt, 16, 1);
  const auto four = core::run_ensemble(app, *p.arch, opt, 16, 4);
  ASSERT_EQ(one.totals.size(), four.totals.size());
  for (std::size_t i = 0; i < one.totals.size(); ++i)
    EXPECT_DOUBLE_EQ(one.totals[i], four.totals[i]);
}

TEST(EndToEnd, ModelsSurviveSerializationRoundTrip) {
  Pipeline p;
  apps::LuleshConfig cfg;
  cfg.epr = 15;
  cfg.ranks = 216;
  cfg.timesteps = 20;
  cfg.fti = fti_cfg();
  const core::AppBEO app = apps::build_lulesh_fti(cfg);
  const double before = core::run_bsp(app, *p.arch).total_seconds;

  // Serialize every binding, rebuild a fresh ArchBEO from text.
  core::ArchBEO reloaded("quartz2", p.topo, net::CommParams{}, 36);
  reloaded.set_fti(fti_cfg());
  for (const auto& [kernel, fitted] : p.suite.kernels)
    reloaded.bind_kernel(kernel, model::model_from_string(
                                     model::model_to_string(
                                         *fitted.noisy_model)));
  const double after = core::run_bsp(app, reloaded).total_seconds;
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(EndToEnd, CalibrationDatasetRoundTripsThroughCsv) {
  Pipeline p;
  for (const auto& [kernel, data] : p.calibration) {
    std::ostringstream os;
    model::save_dataset(os, data);
    std::istringstream is(os.str());
    const model::Dataset back = model::load_dataset(is);
    ASSERT_EQ(back.num_rows(), data.num_rows()) << kernel;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      EXPECT_EQ(back.row(i).params, data.row(i).params);
      EXPECT_EQ(back.row(i).samples, data.row(i).samples);
    }
  }
}

TEST(EndToEnd, FaultInjectionShowsCheckpointValueAtLowMtbf) {
  // With frequent node losses, an L2 plan must beat No-FT on expected
  // runtime; with ultra-reliable nodes, No-FT must win (overhead only).
  Pipeline p;
  ft::CheckpointCostModel cost({}, fti_cfg());
  p.arch->bind_restart(ft::Level::kL2,
                       std::make_shared<model::ConstantModel>(
                           cost.restart_cost(ft::Level::kL2,
                                             apps::lulesh_checkpoint_bytes(10),
                                             64)));
  auto run_scenario = [&](bool with_ft, double node_mtbf) {
    apps::LuleshConfig cfg;
    cfg.epr = 10;
    cfg.ranks = 64;
    cfg.timesteps = 2000;
    cfg.fti = fti_cfg();
    if (with_ft) cfg.plan = {{ft::Level::kL2, 50}};
    p.arch->set_fault_process(ft::FaultProcess(node_mtbf, 1.0));
    core::EngineOptions opt;
    opt.inject_faults = true;
    opt.downtime_seconds = 2.0;
    opt.max_sim_seconds = 3600.0;
    opt.seed = 13;
    return core::run_ensemble(apps::build_lulesh_fti(cfg), *p.arch, opt, 10)
        .total.mean;
  };
  const double flaky_no_ft = run_scenario(false, 300.0);
  const double flaky_l2 = run_scenario(true, 300.0);
  EXPECT_LT(flaky_l2, flaky_no_ft);
  const double solid_no_ft = run_scenario(false, 1e9);
  const double solid_l2 = run_scenario(true, 1e9);
  EXPECT_LT(solid_no_ft, solid_l2);
}

}  // namespace
}  // namespace ftbesst
