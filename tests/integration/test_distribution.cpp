// Monte-Carlo distribution fidelity: the paper's Fig. 1 pop-out shows each
// simulated point as a *distribution* that should resemble the measured
// run-to-run spread. These tests check that property end-to-end: the
// calibrated NoisyModel ensemble reproduces the location and scale of the
// testbed's measured distribution at matched parameters.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/montecarlo.hpp"
#include "core/workflow.hpp"
#include "net/topology.hpp"
#include "util/stats.hpp"

namespace ftbesst {
namespace {

TEST(DistributionFidelity, EnsembleSpreadMatchesMeasuredSpread) {
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  apps::QuartzTestbed testbed({}, fti, 808);
  apps::CampaignSpec spec;
  spec.samples_per_point = 12;
  spec.seed = 21;
  const auto calibration =
      apps::run_campaign(testbed, spec, {apps::kLuleshTimestep});
  const core::ModelSuite suite = core::develop_models(calibration, {});

  auto topo = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
  core::ArchBEO arch("q", topo, net::CommParams{}, 36);
  arch.set_fti(fti);
  suite.bind_into(arch);

  // Measured distribution: many real 50-step runs at (15, 216).
  util::Rng rng(5);
  std::vector<double> measured;
  for (int run = 0; run < 60; ++run)
    measured.push_back(
        testbed.run_application(15, 216, 50, {}, rng).total_seconds);

  // Simulated distribution: Monte-Carlo ensemble of the same app.
  apps::LuleshConfig cfg;
  cfg.epr = 15;
  cfg.ranks = 216;
  cfg.timesteps = 50;
  cfg.fti = fti;
  const auto ens = core::run_ensemble(apps::build_lulesh_fti(cfg), arch,
                                      core::EngineOptions{}, 60);

  const auto m = util::summarize(measured);
  // Location within ~15% (model bias + config effect).
  EXPECT_NEAR(ens.total.mean / m.mean, 1.0, 0.15);
  // Scale: the ensemble must be genuinely dispersed, within ~3x of the
  // measured coefficient of variation on either side.
  const double cv_measured = m.stddev / m.mean;
  const double cv_simulated = ens.total.stddev / ens.total.mean;
  EXPECT_GT(cv_simulated, cv_measured / 3.0);
  EXPECT_LT(cv_simulated, cv_measured * 3.0);
}

TEST(DistributionFidelity, QuantileBandsOverlap) {
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  apps::QuartzTestbed testbed({}, fti, 909);
  apps::CampaignSpec spec;
  spec.samples_per_point = 12;
  spec.seed = 33;
  const auto calibration =
      apps::run_campaign(testbed, spec, {apps::kLuleshTimestep});
  const core::ModelSuite suite = core::develop_models(calibration, {});
  auto topo = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
  core::ArchBEO arch("q", topo, net::CommParams{}, 36);
  arch.set_fti(fti);
  suite.bind_into(arch);

  util::Rng rng(6);
  std::vector<double> measured;
  for (int run = 0; run < 40; ++run)
    measured.push_back(
        testbed.run_application(10, 64, 50, {}, rng).total_seconds);
  apps::LuleshConfig cfg;
  cfg.epr = 10;
  cfg.ranks = 64;
  cfg.timesteps = 50;
  cfg.fti = fti;
  const auto ens = core::run_ensemble(apps::build_lulesh_fti(cfg), arch,
                                      core::EngineOptions{}, 40);
  // The simulated [p10, p90] band must intersect the measured one.
  const double sim_lo = util::quantile(ens.totals, 0.1);
  const double sim_hi = util::quantile(ens.totals, 0.9);
  const double mea_lo = util::quantile(measured, 0.1);
  const double mea_hi = util::quantile(measured, 0.9);
  EXPECT_LT(std::max(sim_lo, mea_lo), std::min(sim_hi, mea_hi) * 1.25)
      << "bands [" << sim_lo << "," << sim_hi << "] vs [" << mea_lo << ","
      << mea_hi << "]";
}

}  // namespace
}  // namespace ftbesst
