// The compiled batch evaluator's contract: bit-for-bit agreement with the
// tree-walk oracle Expr::eval over arbitrary expressions and datasets
// (including the protected-operator edge cases), real work reduction from
// CSE + constant folding, and thread-count-invariant SymReg fits.

#include "model/expr_program.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "model/expr_simd.hpp"
#include "model/feature_model.hpp"
#include "model/symreg.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

namespace ftbesst::model {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Random dataset whose parameter values stress the protected operators:
/// zeros, denormal-scale magnitudes around the 1e-9 division guard,
/// negatives, and values big enough to overflow products.
Dataset random_dataset(util::Rng& rng, std::size_t num_params,
                       std::size_t rows) {
  std::vector<std::string> names;
  for (std::size_t d = 0; d < num_params; ++d)
    names.push_back("x" + std::to_string(d));
  Dataset data(std::move(names));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> params(num_params);
    for (auto& p : params) {
      const double roll = rng.uniform();
      if (roll < 0.1) {
        p = 0.0;
      } else if (roll < 0.2) {
        p = rng.uniform(-2e-9, 2e-9);  // straddles the division guard
      } else if (roll < 0.3) {
        p = std::pow(10.0, rng.uniform(100.0, 200.0));  // overflow fodder
      } else {
        p = rng.uniform(-1e4, 1e4);
      }
    }
    data.add_row(std::move(params), {rng.uniform(0.1, 10.0)});
  }
  return data;
}

void expect_bitwise_match(const Expr& expr, const Dataset& data,
                          const std::string& context) {
  const ExprProgram prog = ExprProgram::compile(expr);
  std::vector<double> batch;
  EvalScratch scratch;
  prog.eval_dataset(data, batch, scratch);
  ASSERT_EQ(batch.size(), data.num_rows()) << context;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    const double reference = expr.eval(data.row(r).params);
    EXPECT_TRUE(bits_equal(reference, batch[r]))
        << context << " row " << r << ": tree-walk " << reference
        << " vs compiled " << batch[r] << " for " << expr.to_sexpr();
    const double single = prog.eval(data.row(r).params);
    EXPECT_TRUE(bits_equal(reference, single))
        << context << " row " << r << " (single-point path)";
  }
}

TEST(ExprProgram, PropertyRandomExpressionsMatchTreeWalkBitForBit) {
  util::Rng rng(20240805);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t num_params = 1 + rng.uniform_int(4);
    const int depth = 1 + static_cast<int>(rng.uniform_int(7));
    const Dataset data = random_dataset(rng, num_params, 16);
    const Expr expr = Expr::random(rng, num_params, depth);
    expect_bitwise_match(expr, data, "trial " + std::to_string(trial));
  }
}

TEST(ExprProgram, DivisionGuardMatchesAtTheThreshold) {
  // x0 / x1 with denominators exactly at, just under, and just over 1e-9.
  const Expr expr = Expr::binary(Op::kDiv, Expr::variable(0),
                                 Expr::variable(1));
  Dataset data({"a", "b"});
  for (double den : {0.0, 1e-9, std::nextafter(1e-9, 0.0), -1e-9, 9.9e-10,
                     -9.9e-10, 2e-9, 1.0})
    data.add_row({3.5, den}, {1.0});
  expect_bitwise_match(expr, data, "division guard");
}

TEST(ExprProgram, NonFiniteRootClampsToZeroLikeTreeWalk) {
  // x0 * x0 overflows to +inf for |x0| ~ 1e200; (x0*x0) - (x0*x0) is then
  // inf - inf = NaN (and exercises CSE on the shared subterm). Both must
  // clamp to 0 exactly as Expr::eval does.
  const Expr sq = Expr::binary(Op::kMul, Expr::variable(0), Expr::variable(0));
  const Expr nan_expr =
      Expr::binary(Op::kSub, sq.clone(), sq.clone());
  Dataset data({"a"});
  data.add_row({1e200}, {1.0});
  data.add_row({-1e200}, {1.0});
  data.add_row({2.0}, {1.0});
  expect_bitwise_match(sq, data, "inf clamp");
  expect_bitwise_match(nan_expr, data, "nan clamp");
  const ExprProgram prog = ExprProgram::compile(nan_expr);
  std::vector<double> out;
  EvalScratch scratch;
  prog.eval_dataset(data, out, scratch);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], 0.0);  // 4 - 4, legitimately zero
}

TEST(ExprProgram, ProtectedUnariesMatchOnNegatives) {
  const Expr log_expr = Expr::unary(Op::kLog, Expr::variable(0));
  const Expr sqrt_expr = Expr::unary(Op::kSqrt, Expr::variable(0));
  Dataset data({"a"});
  for (double v : {-100.0, -1.0, -1e-12, 0.0, 1e-12, 1.0, 100.0})
    data.add_row({v}, {1.0});
  expect_bitwise_match(log_expr, data, "protected log");
  expect_bitwise_match(sqrt_expr, data, "protected sqrt");
}

TEST(ExprProgram, OutOfRangeVariableReadsZero) {
  const Expr expr = Expr::binary(Op::kAdd, Expr::variable(7),
                                 Expr::variable(0));
  Dataset data({"a"});  // only one parameter; var 7 must read 0.0
  data.add_row({42.0}, {1.0});
  expect_bitwise_match(expr, data, "out-of-range var");
}

TEST(ExprProgram, ScalarScratchZerosAreAlignedAndPadded) {
  // The scalar strip path serves out-of-range variables from
  // EvalScratch::zeros, which must honour the same alignment/padding
  // invariant as dataset columns (the vector backends assert on it and
  // the strip loops are written against it).
  BackendOverrideGuard guard(EvalBackend::kScalar);
  const Expr expr = Expr::binary(Op::kAdd, Expr::variable(7),
                                 Expr::variable(0));
  Dataset data({"a"});
  for (int i = 0; i < 11; ++i) data.add_row({double(i)}, {1.0});
  const ExprProgram prog = ExprProgram::compile(expr);
  std::vector<double> out;
  EvalScratch scratch;
  prog.eval_dataset(data, out, scratch);
  ASSERT_GE(scratch.zeros.size(), data.num_rows());
  EXPECT_TRUE(is_simd_aligned(scratch.zeros.data()));
  for (std::size_t i = 0; i < padded_rows(scratch.zeros.size()); ++i)
    EXPECT_EQ(scratch.zeros.data()[i], 0.0);
  for (std::size_t r = 0; r < data.num_rows(); ++r)
    EXPECT_TRUE(bits_equal(out[r], double(r)));
}

TEST(ExprProgram, BareLeafRootsMaterialize) {
  // A tree that is just a variable (or just a constant) has no arithmetic
  // instruction to embed the leaf into, so the root itself must lower to a
  // kVar/kConst copy.
  Dataset data({"a", "b"});
  data.add_row({3.0, 4.0}, {1.0});
  data.add_row({-7.5, 0.0}, {1.0});
  expect_bitwise_match(Expr::variable(1), data, "bare variable root");
  expect_bitwise_match(Expr::variable(9), data, "bare out-of-range root");
  expect_bitwise_match(Expr::constant(2.5), data, "bare constant root");
}

TEST(ExprProgram, CommonSubexpressionsComputedOnce) {
  // (x0 + x1) * (x0 + x1): 7 tree nodes, but only 2 instructions — the
  // variables are direct column operands (no instruction at all), the sum
  // is computed once (CSE) and the product reuses its register twice.
  const Expr sum = Expr::binary(Op::kAdd, Expr::variable(0), Expr::variable(1));
  const Expr expr = Expr::binary(Op::kMul, sum.clone(), sum.clone());
  const ExprProgram prog = ExprProgram::compile(expr);
  EXPECT_EQ(prog.tree_nodes(), 7u);
  EXPECT_EQ(prog.num_instructions(), 2u);
}

TEST(ExprProgram, ConstantSubtreesFoldAtCompileTime) {
  // (2 * 3) + x0 folds the product and embeds both the folded literal and
  // the variable as direct operands of a single add; sqrt(log(5)) folds
  // entirely.
  const Expr expr = Expr::binary(
      Op::kAdd, Expr::binary(Op::kMul, Expr::constant(2.0), Expr::constant(3.0)),
      Expr::variable(0));
  const ExprProgram prog = ExprProgram::compile(expr);
  EXPECT_EQ(prog.num_instructions(), 1u);  // add(lit 6, col 0)

  const Expr all_const =
      Expr::unary(Op::kSqrt, Expr::unary(Op::kLog, Expr::constant(5.0)));
  const ExprProgram folded = ExprProgram::compile(all_const);
  EXPECT_EQ(folded.num_instructions(), 1u);
  EXPECT_TRUE(bits_equal(folded.eval({}),
                         std::sqrt(std::log(std::abs(5.0) + 1.0))));
}

TEST(ExprProgram, FoldingRespectsProtectedDivision) {
  // (1 / 0) folds to the numerator per the protection rule, same as eval.
  const Expr expr =
      Expr::binary(Op::kDiv, Expr::constant(1.5), Expr::constant(0.0));
  const ExprProgram prog = ExprProgram::compile(expr);
  EXPECT_EQ(prog.num_instructions(), 1u);
  EXPECT_TRUE(bits_equal(prog.eval({}), expr.eval({})));
  EXPECT_DOUBLE_EQ(prog.eval({}), 1.5);
}

TEST(ExprProgram, EmptyExpressionEvaluatesToZeros) {
  const ExprProgram prog = ExprProgram::compile(Expr{});
  EXPECT_TRUE(prog.empty());
  Dataset data({"a"});
  data.add_row({1.0}, {1.0});
  data.add_row({2.0}, {1.0});
  std::vector<double> out(5, 99.0);
  EvalScratch scratch;
  prog.eval_dataset(data, out, scratch);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(prog.eval({}), 0.0);
}

TEST(Dataset, ColumnsMirrorRowsAndResponsesAreCached) {
  util::Rng rng(3);
  const Dataset data = random_dataset(rng, 3, 20);
  for (std::size_t d = 0; d < data.num_params(); ++d) {
    ASSERT_EQ(data.column(d).size(), data.num_rows());
    for (std::size_t r = 0; r < data.num_rows(); ++r)
      EXPECT_TRUE(bits_equal(data.column(d)[r], data.row(r).params[d]));
  }
  ASSERT_EQ(data.responses().size(), data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r)
    EXPECT_TRUE(bits_equal(data.responses()[r], data.row(r).mean_response()));
}

TEST(PredictBatch, ExprModelMatchesPerRowPredict) {
  util::Rng rng(17);
  const Dataset data = random_dataset(rng, 2, 32);
  const Expr expr = Expr::binary(
      Op::kAdd, Expr::binary(Op::kMul, Expr::variable(0), Expr::variable(1)),
      Expr::unary(Op::kLog, Expr::variable(0)));
  const ExprModel model(expr.clone(), 2.5, -0.75, {"a", "b"});
  std::vector<double> batch;
  model.predict_batch(data, batch);
  ASSERT_EQ(batch.size(), data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r)
    EXPECT_TRUE(bits_equal(batch[r], model.predict(data.row(r).params)));
}

TEST(PredictBatch, FeatureModelMatchesPerRowPredict) {
  util::Rng rng(19);
  Dataset data({"a", "b"});
  for (int i = 0; i < 12; ++i)
    data.add_row({rng.uniform(1.0, 50.0), rng.uniform(1.0, 50.0)},
                 {rng.uniform(0.5, 5.0)});
  const FeatureModel model = FeatureModel::fit(
      data, FeatureLibrary::polynomial(2), 1e-9);
  std::vector<double> batch;
  model.predict_batch(data, batch);
  ASSERT_EQ(batch.size(), data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r)
    EXPECT_TRUE(bits_equal(batch[r], model.predict(data.row(r).params)));
}

TEST(SymRegParallel, ChampionIsThreadCountInvariant) {
  util::Rng rng(5);
  Dataset data({"a", "b"});
  for (double a : {1.0, 2.0, 3.0, 4.0, 5.0})
    for (double b : {2.0, 4.0, 8.0, 16.0})
      data.add_row({a, b}, {3.0 * a * b + 0.5 * b,
                            3.0 * a * b + 0.5 * b + rng.uniform(0.0, 0.01)});
  util::Rng r1(10), r2(10);
  const auto [tr1, te1] = data.split(0.75, r1);
  const auto [tr2, te2] = data.split(0.75, r2);

  util::TaskPool serial_pool(1);
  util::TaskPool wide_pool(4);
  SymRegConfig cfg;
  cfg.population = 96;
  cfg.generations = 25;
  cfg.seed = 42;
  cfg.pool = &serial_pool;
  const auto serial = SymbolicRegressor(cfg).fit(tr1, te1);
  cfg.pool = &wide_pool;
  const auto wide = SymbolicRegressor(cfg).fit(tr2, te2);

  ASSERT_TRUE(serial.model);
  ASSERT_TRUE(wide.model);
  EXPECT_EQ(serial.model->describe(), wide.model->describe());
  EXPECT_TRUE(bits_equal(serial.train_mape, wide.train_mape));
  EXPECT_TRUE(bits_equal(serial.test_mape, wide.test_mape));
  EXPECT_EQ(serial.generations_run, wide.generations_run);
  EXPECT_EQ(serial.best_history, wide.best_history);
}

TEST(SymRegParallel, SharedPoolDefaultAlsoMatchesSerial) {
  Dataset data({"n"});
  for (double n : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})
    data.add_row({n}, {n * n + 1.0});
  SymRegConfig cfg;
  cfg.population = 64;
  cfg.generations = 12;
  cfg.seed = 7;
  util::TaskPool one(1);
  cfg.pool = &one;
  const auto a = SymbolicRegressor(cfg).fit(data, Dataset({"n"}));
  cfg.pool = nullptr;  // shared pool, whatever its width
  const auto b = SymbolicRegressor(cfg).fit(data, Dataset({"n"}));
  EXPECT_EQ(a.model->describe(), b.model->describe());
  EXPECT_TRUE(bits_equal(a.train_mape, b.train_mape));
}

}  // namespace
}  // namespace ftbesst::model
