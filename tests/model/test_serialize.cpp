#include "model/serialize.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "model/feature_model.hpp"
#include "model/fitting.hpp"
#include "model/powerlaw.hpp"
#include "model/symreg.hpp"
#include "util/rng.hpp"

namespace ftbesst::model {
namespace {

TEST(ExprSexpr, RoundTripsHandBuiltTree) {
  const auto e = Expr::binary(
      Op::kAdd,
      Expr::binary(Op::kMul, Expr::variable(0), Expr::constant(2.5)),
      Expr::unary(Op::kLog, Expr::variable(1)));
  const Expr back = Expr::from_sexpr(e.to_sexpr());
  EXPECT_EQ(back.to_sexpr(), e.to_sexpr());
  const std::vector<double> vars{3.0, 7.0};
  EXPECT_DOUBLE_EQ(back.eval(vars), e.eval(vars));
}

TEST(ExprSexpr, RoundTripsRandomTreesBitExactly) {
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto e = Expr::random(rng, 3, 6);
    const Expr back = Expr::from_sexpr(e.to_sexpr());
    for (int probe = 0; probe < 10; ++probe) {
      const std::vector<double> vars{rng.uniform(0.1, 100.0),
                                     rng.uniform(0.1, 100.0),
                                     rng.uniform(0.1, 100.0)};
      EXPECT_DOUBLE_EQ(back.eval(vars), e.eval(vars));
    }
  }
}

TEST(ExprSexpr, KnownTextualForms) {
  EXPECT_EQ(Expr::constant(2.0).to_sexpr(), "(const 2)");
  EXPECT_EQ(Expr::variable(1).to_sexpr(), "(var 1)");
  EXPECT_EQ(Expr::binary(Op::kMul, Expr::variable(0), Expr::variable(1))
                .to_sexpr(),
            "(mul (var 0) (var 1))");
  EXPECT_EQ(Expr().to_sexpr(), "(const 0)");
}

TEST(ExprSexpr, ParseErrors) {
  EXPECT_THROW((void)Expr::from_sexpr(""), std::invalid_argument);
  EXPECT_THROW((void)Expr::from_sexpr("(bogus 1)"), std::invalid_argument);
  EXPECT_THROW((void)Expr::from_sexpr("(add (var 0))"),
               std::invalid_argument);
  EXPECT_THROW((void)Expr::from_sexpr("(const 1) extra"),
               std::invalid_argument);
  EXPECT_NO_THROW((void)Expr::from_sexpr("  (var 2)  "));
}

TEST(ModelSerialize, ConstantRoundTrip) {
  const ConstantModel m(0.125);
  const auto loaded = model_from_string(model_to_string(m));
  EXPECT_DOUBLE_EQ(loaded->predict(std::vector<double>{}), 0.125);
}

TEST(ModelSerialize, ExprModelRoundTrip) {
  const ExprModel m(
      Expr::binary(Op::kMul, Expr::variable(0), Expr::variable(1)), 2.0, 0.5,
      {"epr", "ranks"});
  const auto loaded = model_from_string(model_to_string(m));
  const std::vector<double> p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(loaded->predict(p), m.predict(p));
  EXPECT_NE(loaded->describe().find("epr"), std::string::npos);
}

TEST(ModelSerialize, FeatureModelRoundTrip) {
  Dataset d({"a", "b"});
  for (double a : {1.0, 2.0, 3.0, 4.0})
    for (double b : {1.0, 3.0, 5.0}) d.add_row({a, b}, {2 * a * a + b});
  const auto fitted =
      FeatureModel::fit(d, FeatureLibrary::polynomial(2), 1e-9);
  const auto loaded = model_from_string(model_to_string(fitted));
  for (const Row& row : d.rows())
    EXPECT_NEAR(loaded->predict(row.params), fitted.predict(row.params),
                1e-12);
}

TEST(ModelSerialize, NoisyWrapperRoundTrip) {
  auto base = std::make_shared<ConstantModel>(10.0);
  const NoisyModel m(base, 0.25);
  const auto loaded = model_from_string(model_to_string(m));
  const auto* noisy = dynamic_cast<const NoisyModel*>(loaded.get());
  ASSERT_NE(noisy, nullptr);
  EXPECT_DOUBLE_EQ(noisy->log_sigma(), 0.25);
  EXPECT_DOUBLE_EQ(noisy->predict(std::vector<double>{}), 10.0);
}

TEST(ModelSerialize, NoisyOverFeatureModelRoundTrip) {
  Dataset d({"a"});
  for (double a : {1.0, 2.0, 3.0, 4.0, 5.0}) d.add_row({a}, {3.0 * a});
  auto feat = std::make_shared<FeatureModel>(
      FeatureModel::fit(d, FeatureLibrary::polynomial(1)));
  const NoisyModel m(feat, 0.1);
  const auto loaded = model_from_string(model_to_string(m));
  EXPECT_NEAR(loaded->predict(std::vector<double>{2.0}), 6.0, 1e-6);
}

TEST(ModelSerialize, FittedKernelModelsRoundTripThroughText) {
  // End-to-end: fit on synthetic data, serialize the noisy model, reload,
  // identical predictions.
  util::Rng rng(21);
  Dataset d({"x", "y"});
  for (double x : {5.0, 10.0, 15.0, 20.0, 25.0})
    for (double y : {8.0, 64.0, 216.0, 512.0, 1000.0}) {
      std::vector<double> samples;
      for (int s = 0; s < 5; ++s)
        samples.push_back(rng.lognormal_median(1e-4 * x * x + 1e-5 * y, 0.05));
      d.add_row({x, y}, std::move(samples));
    }
  FitOptions opt;
  opt.symreg.generations = 30;
  opt.symreg.population = 96;
  const auto fitted = fit_kernel_model(d, opt);
  const auto loaded = model_from_string(model_to_string(*fitted.noisy_model));
  for (const Row& row : d.rows())
    EXPECT_DOUBLE_EQ(loaded->predict(row.params),
                     fitted.noisy_model->predict(row.params));
}

TEST(ModelSerialize, PropertyEveryKindRoundTripsBitExactly) {
  // Random instances of every serializable model kind must survive
  // save -> load -> save with bit-identical predictions and identical text
  // (the format prints 17 significant digits, enough to reconstruct any
  // binary64 exactly).
  util::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::shared_ptr<PerfModel>> models;
    models.push_back(std::make_shared<ConstantModel>(
        rng.lognormal_median(1.0, 2.0)));
    models.push_back(std::make_shared<PowerLawModel>(
        rng.lognormal_median(1e-3, 1.5),
        std::vector<double>{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)}));
    models.push_back(std::make_shared<ExprModel>(
        Expr::random(rng, 2, 5), rng.uniform(0.5, 2.0),
        rng.uniform(-0.1, 0.1), std::vector<std::string>{"a", "b"}));
    // Noisy wrappers of this trial's bases. Indices, not a range-for: the
    // push_back reallocates and would invalidate the iterator mid-loop.
    for (std::size_t b = 0; b < models.size() && models.size() <= 6; ++b)
      models.push_back(
          std::make_shared<NoisyModel>(models[b], rng.uniform(0.01, 0.5)));
    for (const auto& m : models) {
      const std::string text = model_to_string(*m);
      const auto loaded = model_from_string(text);
      EXPECT_EQ(model_to_string(*loaded), text);
      for (int probe = 0; probe < 5; ++probe) {
        const std::vector<double> p{rng.uniform(0.1, 50.0),
                                    rng.uniform(0.1, 50.0)};
        EXPECT_DOUBLE_EQ(loaded->predict(p), m->predict(p));
      }
    }
  }
}

TEST(ModelSerialize, RejectsNonFiniteOnSave) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)model_to_string(ConstantModel(nan)),
               std::invalid_argument);
  EXPECT_THROW((void)model_to_string(ConstantModel(inf)),
               std::invalid_argument);
  EXPECT_THROW((void)model_to_string(PowerLawModel(1.0, {nan})),
               std::invalid_argument);
  EXPECT_THROW((void)model_to_string(PowerLawModel(inf, {1.0})),
               std::invalid_argument);
  EXPECT_THROW((void)model_to_string(
                   NoisyModel(std::make_shared<ConstantModel>(1.0), nan)),
               std::invalid_argument);
}

TEST(ModelSerialize, RejectsNonFiniteOnLoad) {
  // istream >> double happily parses "nan" and "inf"; the loader must not.
  EXPECT_THROW((void)model_from_string("ftbesst-model v1\nconstant nan\n"),
               std::invalid_argument);
  EXPECT_THROW((void)model_from_string("ftbesst-model v1\nconstant inf\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)model_from_string("ftbesst-model v1\npowerlaw 1.0 1 inf\n"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)model_from_string("ftbesst-model v1\nnoisy nan\nconstant 1\n"),
      std::invalid_argument);
}

TEST(DatasetSerialize, RejectsNonFiniteCells) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Dataset d({"x"});
  d.add_row({1.0}, {nan});
  std::ostringstream os;
  EXPECT_THROW(save_dataset(os, d), std::invalid_argument);

  std::istringstream nan_cell("x,sample\n1,nan\n");
  EXPECT_THROW((void)load_dataset(nan_cell), std::invalid_argument);
  std::istringstream inf_cell("x,sample\ninf,2\n");
  EXPECT_THROW((void)load_dataset(inf_cell), std::invalid_argument);
  std::istringstream trailing_junk("x,sample\n1.5abc,2\n");
  EXPECT_THROW((void)load_dataset(trailing_junk), std::invalid_argument);
  std::istringstream not_a_number("x,sample\nhello,2\n");
  EXPECT_THROW((void)load_dataset(not_a_number), std::invalid_argument);
}

TEST(ModelSerialize, RejectsGarbage) {
  EXPECT_THROW((void)model_from_string("hello"), std::invalid_argument);
  EXPECT_THROW((void)model_from_string("ftbesst-model v1\nwat 1\n"),
               std::invalid_argument);
  FeatureLibrary handmade;
  handmade.add("1", [](std::span<const double>) { return 1.0; });
  const FeatureModel m(std::move(handmade), {1.0});
  EXPECT_THROW((void)model_to_string(m), std::invalid_argument);
}

TEST(DatasetSerialize, RoundTripPreservesRowsAndSamples) {
  Dataset d({"epr", "ranks"});
  d.add_row({5.0, 8.0}, {1.0, 1.1, 0.9});
  d.add_row({5.0, 64.0}, {2.0, 2.2});
  d.add_row({10.0, 8.0}, {3.5});
  std::ostringstream os;
  save_dataset(os, d);
  std::istringstream is(os.str());
  const Dataset back = load_dataset(is);
  ASSERT_EQ(back.num_rows(), 3u);
  EXPECT_EQ(back.param_names(), d.param_names());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.row(i).params, d.row(i).params);
    EXPECT_EQ(back.row(i).samples, d.row(i).samples);
  }
}

TEST(DatasetSerialize, RejectsMalformedStreams) {
  std::istringstream empty("");
  EXPECT_THROW((void)load_dataset(empty), std::invalid_argument);
  std::istringstream badheader("a,b\n1,2\n");
  EXPECT_THROW((void)load_dataset(badheader), std::invalid_argument);
  std::istringstream badrow("a,sample\n1,2,3\n");
  EXPECT_THROW((void)load_dataset(badrow), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::model
