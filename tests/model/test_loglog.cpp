#include <gtest/gtest.h>

#include <cmath>

#include "model/table_model.hpp"

namespace ftbesst::model {
namespace {

/// y = 3 * a^2 * b^0.5 on a geometric grid — a pure power law, which
/// log-log interpolation must reproduce exactly everywhere.
Dataset power_law_grid() {
  Dataset d({"a", "b"});
  for (double a : {1.0, 2.0, 4.0, 8.0})
    for (double b : {1.0, 4.0, 16.0})
      d.add_row({a, b}, {3.0 * a * a * std::sqrt(b)});
  return d;
}

TEST(LogLogTable, ExactOnGridPoints) {
  const Dataset grid = power_law_grid();
  const TableModel m(grid, Interpolation::kLogLog);
  for (const Row& r : grid.rows())
    EXPECT_NEAR(m.predict(r.params), r.mean_response(),
                1e-9 * r.mean_response());
}

TEST(LogLogTable, ExactForPowerLawsOffGrid) {
  const TableModel m(power_law_grid(), Interpolation::kLogLog);
  for (double a : {1.5, 3.0, 6.0})
    for (double b : {2.0, 8.0}) {
      const double expected = 3.0 * a * a * std::sqrt(b);
      EXPECT_NEAR(m.predict(std::vector<double>{a, b}), expected,
                  1e-9 * expected)
          << a << "," << b;
    }
}

TEST(LogLogTable, ExtrapolatesAlongThePowerLaw) {
  const TableModel m(power_law_grid(), Interpolation::kLogLog);
  // Beyond the grid: a=16, b=64.
  const double expected = 3.0 * 256.0 * 8.0;
  EXPECT_NEAR(m.predict(std::vector<double>{16.0, 64.0}), expected,
              1e-6 * expected);
  // Linear interpolation would *overestimate* a convex power law interior
  // point; log-log must not.
  const TableModel lin(power_law_grid(), Interpolation::kMultilinear);
  const double interior = 3.0 * 3.0 * 3.0 * std::sqrt(2.0);
  EXPECT_GT(lin.predict(std::vector<double>{3.0, 2.0}), interior);
}

TEST(LogLogTable, RejectsNonPositiveData) {
  Dataset zero_param({"a"});
  zero_param.add_row({0.0}, {1.0});
  zero_param.add_row({1.0}, {2.0});
  EXPECT_THROW(TableModel(zero_param, Interpolation::kLogLog),
               std::invalid_argument);
  Dataset zero_resp({"a"});
  zero_resp.add_row({1.0}, {0.0});
  zero_resp.add_row({2.0}, {2.0});
  EXPECT_THROW(TableModel(zero_resp, Interpolation::kLogLog),
               std::invalid_argument);
}

TEST(LogLogTable, RejectsNonPositiveQueries) {
  const TableModel m(power_law_grid(), Interpolation::kLogLog);
  EXPECT_THROW((void)m.predict(std::vector<double>{-1.0, 4.0}),
               std::invalid_argument);
  EXPECT_THROW((void)m.predict(std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
}

TEST(LogLogTable, DescribeNamesMethod) {
  const TableModel m(power_law_grid(), Interpolation::kLogLog);
  EXPECT_NE(m.describe().find("loglog"), std::string::npos);
}

TEST(LogLogTable, SampleStaysPositiveAndNearPrediction) {
  Dataset d({"a"});
  d.add_row({1.0}, {2.0, 2.2, 1.8});
  d.add_row({10.0}, {20.0, 22.0, 18.0});
  const TableModel m(d, Interpolation::kLogLog);
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double s = m.sample(std::vector<double>{3.0}, rng);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 20.0);
  }
}

}  // namespace
}  // namespace ftbesst::model
