#include "model/powerlaw.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/fitting.hpp"
#include "model/serialize.hpp"
#include "util/rng.hpp"

namespace ftbesst::model {
namespace {

Dataset monomial_data(double c, double a1, double a2, double noise,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d({"x", "y"});
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0})
    for (double y : {10.0, 100.0, 1000.0}) {
      const double v = c * std::pow(x, a1) * std::pow(y, a2);
      std::vector<double> samples;
      for (int s = 0; s < 4; ++s)
        samples.push_back(noise > 0 ? rng.lognormal_median(v, noise) : v);
      d.add_row({x, y}, std::move(samples));
    }
  return d;
}

TEST(PowerLaw, RecoversExactMonomial) {
  const auto m = PowerLawModel::fit(monomial_data(3e-4, 2.5, 0.5, 0.0, 1));
  EXPECT_NEAR(m.coefficient(), 3e-4, 1e-8);
  ASSERT_EQ(m.exponents().size(), 2u);
  EXPECT_NEAR(m.exponents()[0], 2.5, 1e-9);
  EXPECT_NEAR(m.exponents()[1], 0.5, 1e-9);
}

TEST(PowerLaw, ExtrapolatesAlongTheLaw) {
  const auto m = PowerLawModel::fit(monomial_data(1e-3, 3.0, 1.0, 0.0, 2));
  // Far beyond the grid: x=128, y=1e5.
  const double expected = 1e-3 * std::pow(128.0, 3.0) * 1e5;
  EXPECT_NEAR(m.predict(std::vector<double>{128.0, 1e5}), expected,
              1e-6 * expected);
}

TEST(PowerLaw, ToleratesMultiplicativeNoise) {
  const auto data = monomial_data(1e-3, 3.0, 0.8, 0.1, 3);
  const auto m = PowerLawModel::fit(data);
  EXPECT_NEAR(m.exponents()[0], 3.0, 0.15);
  EXPECT_NEAR(m.exponents()[1], 0.8, 0.15);
  EXPECT_LT(validate_mape(m, data), 15.0);
}

TEST(PowerLaw, InputValidation) {
  Dataset bad({"x"});
  bad.add_row({0.0}, {1.0});
  bad.add_row({1.0}, {2.0});
  bad.add_row({2.0}, {3.0});
  EXPECT_THROW((void)PowerLawModel::fit(bad), std::invalid_argument);

  Dataset negresp({"x"});
  negresp.add_row({1.0}, {-1.0});
  negresp.add_row({2.0}, {2.0});
  negresp.add_row({4.0}, {4.0});
  EXPECT_THROW((void)PowerLawModel::fit(negresp), std::invalid_argument);

  Dataset constant_dim({"x", "y"});
  for (double x : {1.0, 2.0, 4.0}) constant_dim.add_row({x, 5.0}, {x});
  EXPECT_THROW((void)PowerLawModel::fit(constant_dim), std::invalid_argument);

  EXPECT_THROW(PowerLawModel(-1.0, {1.0}), std::invalid_argument);
  const PowerLawModel m(2.0, {1.0});
  EXPECT_THROW((void)m.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)m.predict(std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(PowerLaw, SerializationRoundTrip) {
  const PowerLawModel m(2.5e-4, {3.0, 0.9});
  const auto loaded = model_from_string(model_to_string(m));
  const std::vector<double> p{16.0, 200.0};
  EXPECT_DOUBLE_EQ(loaded->predict(p), m.predict(p));
  // Also under a noisy wrapper.
  const NoisyModel noisy(std::make_shared<PowerLawModel>(m), 0.07);
  const auto loaded2 = model_from_string(model_to_string(noisy));
  EXPECT_DOUBLE_EQ(loaded2->predict(p), m.predict(p));
}

TEST(PowerLaw, FitKernelModelPath) {
  FitOptions opt;
  opt.method = ModelMethod::kPowerLaw;
  const auto fitted = fit_kernel_model(monomial_data(1e-4, 3, 1, 0.05, 4),
                                       opt);
  EXPECT_EQ(fitted.report.chosen, ModelMethod::kPowerLaw);
  EXPECT_LT(fitted.report.full_mape, 10.0);
  EXPECT_NE(fitted.report.formula.find("powerlaw"), std::string::npos);
}

TEST(PowerLaw, AutoSelectsPowerLawOnPureMonomialData) {
  FitOptions opt;
  opt.method = ModelMethod::kAuto;
  opt.symreg.population = 64;
  opt.symreg.generations = 10;  // keep the GP weak so the comparison is fair
  const auto fitted = fit_kernel_model(monomial_data(1e-4, 3, 1, 0.02, 5),
                                       opt);
  // Power law is exact here (up to noise); auto must land at low error via
  // one of the generalizing fits, and power law should usually win.
  EXPECT_LT(fitted.report.full_mape, 5.0);
}

}  // namespace
}  // namespace ftbesst::model
