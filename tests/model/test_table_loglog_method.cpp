#include <gtest/gtest.h>

#include <cmath>

#include "model/crossval.hpp"
#include "model/fitting.hpp"

namespace ftbesst::model {
namespace {

Dataset power_grid() {
  Dataset d({"a", "b"});
  for (double a : {1.0, 2.0, 4.0, 8.0})
    for (double b : {1.0, 4.0, 16.0})
      d.add_row({a, b}, {0.5 * a * a * std::sqrt(b)});
  return d;
}

TEST(TableLogLogMethod, FitKernelModelPath) {
  FitOptions opt;
  opt.method = ModelMethod::kTableLogLog;
  const auto fitted = fit_kernel_model(power_grid(), opt);
  EXPECT_EQ(fitted.report.chosen, ModelMethod::kTableLogLog);
  EXPECT_NEAR(fitted.report.full_mape, 0.0, 1e-9);  // exact on grid points
  // Off-grid power-law point is exact too.
  EXPECT_NEAR(fitted.model->predict(std::vector<double>{3.0, 8.0}),
              0.5 * 9.0 * std::sqrt(8.0), 1e-9);
  EXPECT_EQ(to_string(fitted.report.chosen), "table-loglog");
}

TEST(TableLogLogMethod, RejectedByCrossValidation) {
  FitOptions opt;
  opt.method = ModelMethod::kTableLogLog;
  // cross_validate refuses lookup structures.
  EXPECT_THROW((void)cross_validate(power_grid(), opt, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::model
