#include "model/symreg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/fitting.hpp"
#include "util/rng.hpp"

namespace ftbesst::model {
namespace {

Dataset from_function(double (*f)(double, double),
                      const std::vector<double>& as,
                      const std::vector<double>& bs, double noise_sigma,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d({"a", "b"});
  for (double a : as)
    for (double b : bs) {
      std::vector<double> samples;
      const double y = f(a, b);
      for (int s = 0; s < 5; ++s)
        samples.push_back(noise_sigma > 0 ? rng.lognormal_median(y, noise_sigma)
                                          : y);
      d.add_row({a, b}, std::move(samples));
    }
  return d;
}

SymRegConfig quick_config() {
  SymRegConfig cfg;
  cfg.population = 128;
  cfg.generations = 40;
  cfg.seed = 11;
  return cfg;
}

TEST(SymReg, RecoversLinearScaledMonomial) {
  // y = 3 * a * b: in the seeded population and exactly solvable via the
  // linear-scaling trick in a single generation.
  const auto data = from_function(
      [](double a, double b) { return 3.0 * a * b; }, {1, 2, 3, 4},
      {1, 2, 5, 10}, 0.0, 1);
  util::Rng rng(2);
  const auto [train, test] = data.split(0.75, rng);
  SymbolicRegressor reg(quick_config());
  const auto res = reg.fit(train, test);
  ASSERT_TRUE(res.model);
  EXPECT_LT(res.train_mape, 1.0);
  EXPECT_LT(res.test_mape, 1.0);
  EXPECT_NEAR(res.model->predict(std::vector<double>{6.0, 7.0}), 126.0, 2.0);
}

TEST(SymReg, FitsQuadraticSurface) {
  const auto data = from_function(
      [](double a, double b) { return 2.0 * a * a + 0.1 * b; },
      {1, 2, 3, 4, 5}, {10, 20, 30}, 0.0, 3);
  util::Rng rng(4);
  const auto [train, test] = data.split(0.8, rng);
  SymbolicRegressor reg(quick_config());
  const auto res = reg.fit(train, test);
  EXPECT_LT(res.test_mape, 10.0);
}

TEST(SymReg, HandlesNoisyTargets) {
  const auto data = from_function(
      [](double a, double b) { return a * a * a + 5.0 * b; },
      {5, 10, 15, 20, 25}, {8, 64, 216, 512, 1000}, 0.1, 5);
  util::Rng rng(6);
  const auto [train, test] = data.split(0.8, rng);
  SymbolicRegressor reg(quick_config());
  const auto res = reg.fit(train, test);
  // With 10% multiplicative noise a good model lands well under 25% MAPE.
  EXPECT_LT(res.test_mape, 25.0);
}

TEST(SymReg, BestHistoryIsMonotoneNonIncreasing) {
  const auto data = from_function(
      [](double a, double b) { return a + b; }, {1, 2, 3}, {4, 5, 6}, 0.0, 7);
  util::Rng rng(8);
  const auto [train, test] = data.split(0.7, rng);
  SymRegConfig cfg = quick_config();
  cfg.target_train_mape = 0.0;  // never stop early
  cfg.generations = 15;
  SymbolicRegressor reg(cfg);
  const auto res = reg.fit(train, test);
  for (std::size_t i = 1; i < res.best_history.size(); ++i)
    EXPECT_LE(res.best_history[i], res.best_history[i - 1] + 1e-9)
        << "elitism must keep the champion";
}

TEST(SymReg, DeterministicForSeed) {
  const auto data = from_function(
      [](double a, double b) { return a * b + b; }, {1, 2, 3, 4}, {2, 4, 8},
      0.05, 9);
  util::Rng r1(10), r2(10);
  const auto [tr1, te1] = data.split(0.75, r1);
  const auto [tr2, te2] = data.split(0.75, r2);
  SymbolicRegressor reg(quick_config());
  const auto a = reg.fit(tr1, te1);
  const auto b = reg.fit(tr2, te2);
  EXPECT_DOUBLE_EQ(a.train_mape, b.train_mape);
  EXPECT_DOUBLE_EQ(a.test_mape, b.test_mape);
  EXPECT_EQ(a.model->describe(), b.model->describe());
}

TEST(SymReg, EmptyTrainThrows) {
  Dataset empty({"a"});
  SymbolicRegressor reg(quick_config());
  EXPECT_THROW(reg.fit(empty, empty), std::invalid_argument);
}

TEST(SymReg, BadConfigRejected) {
  SymRegConfig cfg;
  cfg.population = 2;
  EXPECT_THROW(SymbolicRegressor{cfg}, std::invalid_argument);
  cfg = SymRegConfig{};
  cfg.tournament = 0;
  EXPECT_THROW(SymbolicRegressor{cfg}, std::invalid_argument);
}

TEST(SymReg, ExprModelClampsNegative) {
  const ExprModel m(Expr::constant(1.0), 1.0, -5.0, {"a"});
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{0.0}), 0.0);
}

TEST(Fitting, AutoPicksAWorkingModel) {
  const auto data = from_function(
      [](double a, double b) { return 1e-3 * a * a + 1e-4 * b; },
      {5, 10, 15, 20, 25}, {8, 64, 216, 512, 1000}, 0.05, 13);
  FitOptions opt;
  opt.method = ModelMethod::kAuto;
  opt.symreg = quick_config();
  const auto fitted = fit_kernel_model(data, opt);
  EXPECT_LT(fitted.report.full_mape, 20.0);
  EXPECT_GT(fitted.report.residual_sigma, 0.0);
  ASSERT_TRUE(fitted.model);
  ASSERT_TRUE(fitted.noisy_model);
  // Noisy model median tracks the deterministic prediction.
  util::Rng rng(14);
  const std::vector<double> pt{10.0, 64.0};
  std::vector<double> draws(501);
  for (auto& x : draws) x = fitted.noisy_model->sample(pt, rng);
  std::sort(draws.begin(), draws.end());
  EXPECT_NEAR(draws[250], fitted.model->predict(pt),
              0.2 * fitted.model->predict(pt));
}

TEST(Fitting, TableMethodsExactOnGridData) {
  Dataset d({"a"});
  for (double a : {1.0, 2.0, 3.0, 4.0}) d.add_row({a}, {a * 2.0});
  for (auto method :
       {ModelMethod::kTableNearest, ModelMethod::kTableMultilinear}) {
    FitOptions opt;
    opt.method = method;
    const auto fitted = fit_kernel_model(d, opt);
    EXPECT_NEAR(fitted.report.full_mape, 0.0, 1e-9) << to_string(method);
  }
}

}  // namespace
}  // namespace ftbesst::model
