#include "model/crossval.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ftbesst::model {
namespace {

Dataset quadratic_data(double noise_sigma, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d({"a", "b"});
  for (double a : {1.0, 2.0, 3.0, 4.0, 5.0})
    for (double b : {10.0, 20.0, 40.0, 80.0}) {
      const double y = 0.01 * a * a + 1e-4 * b;
      std::vector<double> samples;
      for (int s = 0; s < 4; ++s)
        samples.push_back(noise_sigma > 0
                              ? rng.lognormal_median(y, noise_sigma)
                              : y);
      d.add_row({a, b}, std::move(samples));
    }
  return d;
}

FitOptions quick_options(ModelMethod method) {
  FitOptions opt;
  opt.method = method;
  opt.symreg.population = 96;
  opt.symreg.generations = 25;
  opt.seed = 3;
  return opt;
}

TEST(CrossVal, CleanDataGivesLowHeldOutError) {
  const Dataset d = quadratic_data(0.0, 1);
  const auto report =
      cross_validate(d, quick_options(ModelMethod::kFeatureRegression), 5);
  EXPECT_EQ(report.folds, 5u);
  EXPECT_EQ(report.fold_mape.count, 5u);
  EXPECT_LT(report.fold_mape.mean, 5.0);
}

TEST(CrossVal, NoisyDataStillBounded) {
  const Dataset d = quadratic_data(0.1, 2);
  const auto report =
      cross_validate(d, quick_options(ModelMethod::kFeatureRegression), 4);
  // 22 features on 15 training rows with 10% noise: generalization error is
  // real but must stay sane.
  EXPECT_LT(report.fold_mape.mean, 60.0);
  EXPECT_GT(report.fold_mape.mean, 0.0);
}

TEST(CrossVal, DeterministicForSeed) {
  const Dataset d = quadratic_data(0.05, 3);
  const auto a =
      cross_validate(d, quick_options(ModelMethod::kFeatureRegression), 5);
  const auto b =
      cross_validate(d, quick_options(ModelMethod::kFeatureRegression), 5);
  EXPECT_DOUBLE_EQ(a.fold_mape.mean, b.fold_mape.mean);
}

TEST(CrossVal, InputValidation) {
  const Dataset d = quadratic_data(0.0, 4);
  EXPECT_THROW(
      (void)cross_validate(d, quick_options(ModelMethod::kFeatureRegression),
                           1),
      std::invalid_argument);
  EXPECT_THROW(
      (void)cross_validate(d,
                           quick_options(ModelMethod::kTableMultilinear), 5),
      std::invalid_argument);
  Dataset tiny({"a"});
  tiny.add_row({1.0}, {1.0});
  tiny.add_row({2.0}, {2.0});
  EXPECT_THROW(
      (void)cross_validate(tiny,
                           quick_options(ModelMethod::kFeatureRegression), 5),
      std::invalid_argument);
}

TEST(CrossVal, MethodSelectionPrefersBetterGeneralizer) {
  const Dataset d = quadratic_data(0.05, 5);
  const ModelMethod best = select_method_by_crossval(
      d, {ModelMethod::kFeatureRegression, ModelMethod::kSymbolicRegression},
      quick_options(ModelMethod::kAuto), 4);
  // Either may win depending on noise; the call must return one of them.
  EXPECT_TRUE(best == ModelMethod::kFeatureRegression ||
              best == ModelMethod::kSymbolicRegression);
  EXPECT_THROW((void)select_method_by_crossval(
                   d, {}, quick_options(ModelMethod::kAuto), 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::model
