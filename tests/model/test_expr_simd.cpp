// Property tests for the SIMD batch backends (model/expr_simd.*): every
// opcode x operand-source combination x Post fusion, through every
// available backend, on adversarial inputs (denormals, +/-inf, NaN
// payloads, denominators straddling the 1e-9 guard) and edge row counts —
// always asserting BIT identity with the per-row tree-walk Expr::eval,
// which is the contract ExprProgram::eval_dataset promises regardless of
// the dispatched backend. Also pins the storage invariants the backends
// rely on: AlignedBuffer pad zeroing and Dataset column alignment.

#include "model/expr_simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "model/dataset.hpp"
#include "model/expr.hpp"
#include "model/expr_program.hpp"
#include "util/rng.hpp"

namespace ftbesst::model {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Backends that promise bit identity with Expr::eval on this host.
std::vector<EvalBackend> identical_backends() {
  std::vector<EvalBackend> b = {EvalBackend::kScalar, EvalBackend::kUnrolled};
  if (avx2_supported()) b.push_back(EvalBackend::kAvx2);
  return b;
}

/// Adversarial parameter values: protected-operator edge cases first, then
/// ordinary magnitudes. NaNs carry distinct payloads so bit comparison
/// catches any backend that canonicalizes or reorders NaN propagation.
std::vector<double> adversarial_values() {
  return {
      0.0,
      -0.0,
      5e-324,                                        // smallest denormal
      -4.9e-324,
      2.2250738585072014e-308,                       // DBL_MIN
      1e-9,                                          // exactly at the guard
      std::nextafter(1e-9, 0.0),                     // just under
      std::nextafter(1e-9, 1.0),                     // just over
      -1e-9,
      9.9e-10,
      -9.9e-10,
      2e-9,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::bit_cast<double>(std::uint64_t{0x7ff8dead00000000ULL}),  // payload
      std::bit_cast<double>(std::uint64_t{0xfff8000000c0ffeeULL}),  // payload
      1e200,                                         // overflow fodder
      -1e200,
      1e-4,
      -3.75,
      42.0,
  };
}

/// num_params-column dataset cycling through the adversarial values with
/// per-column offsets, so every column hits every edge value at some row.
Dataset adversarial_dataset(std::size_t num_params, std::size_t rows) {
  const std::vector<double> vals = adversarial_values();
  std::vector<std::string> names;
  for (std::size_t d = 0; d < num_params; ++d)
    names.push_back("x" + std::to_string(d));
  Dataset data(std::move(names));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> params(num_params);
    for (std::size_t d = 0; d < num_params; ++d)
      params[d] = vals[(r + d * 7) % vals.size()];
    data.add_row(std::move(params), {1.0});
  }
  return data;
}

/// Evaluate `expr` over `data` under `backend` and assert bitwise equality
/// with the per-row tree-walk oracle.
void expect_backend_matches_oracle(const Expr& expr, const Dataset& data,
                                   EvalBackend backend,
                                   const std::string& context) {
  BackendOverrideGuard guard(backend);
  const ExprProgram prog = ExprProgram::compile(expr);
  std::vector<double> out;
  EvalScratch scratch;
  prog.eval_dataset(data, out, scratch);
  ASSERT_EQ(out.size(), data.num_rows()) << context;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    const double oracle = expr.eval(data.row(r).params);
    ASSERT_TRUE(bits_equal(oracle, out[r]))
        << context << " backend=" << to_string(backend) << " row " << r
        << ": oracle " << oracle << " vs " << out[r] << " for "
        << expr.to_sexpr();
  }
}

void expect_all_backends_match(const Expr& expr, const Dataset& data,
                               const std::string& context) {
  for (const EvalBackend b : identical_backends())
    expect_backend_matches_oracle(expr, data, b, context);
}

TEST(EvalBackendApi, NamesRoundTripAndSynonymsParse) {
  for (const EvalBackend b :
       {EvalBackend::kScalar, EvalBackend::kUnrolled, EvalBackend::kAvx2,
        EvalBackend::kAvx2Fast}) {
    const auto parsed = parse_backend(to_string(b));
    ASSERT_TRUE(parsed.has_value()) << to_string(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_EQ(parse_backend("off"), EvalBackend::kScalar);
  EXPECT_EQ(parse_backend("fast"), EvalBackend::kAvx2Fast);
  EXPECT_FALSE(parse_backend("auto").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("sse9").has_value());
}

TEST(EvalBackendApi, OverrideGuardSetsAndRestores) {
  const auto before = backend_override();
  {
    BackendOverrideGuard outer(EvalBackend::kUnrolled);
    EXPECT_EQ(backend_override(), EvalBackend::kUnrolled);
    EXPECT_EQ(active_backend(), EvalBackend::kUnrolled);
    {
      BackendOverrideGuard inner(EvalBackend::kScalar);
      EXPECT_EQ(active_backend(), EvalBackend::kScalar);
    }
    EXPECT_EQ(backend_override(), EvalBackend::kUnrolled);
  }
  EXPECT_EQ(backend_override(), before);
}

TEST(EvalBackendApi, ActiveBackendIsAlwaysRunnable) {
  // Requesting AVX2 on a host/build without it must degrade to unrolled,
  // never hand out an un-runnable backend.
  BackendOverrideGuard guard(EvalBackend::kAvx2);
  const EvalBackend got = active_backend();
  if (avx2_supported())
    EXPECT_EQ(got, EvalBackend::kAvx2);
  else
    EXPECT_EQ(got, EvalBackend::kUnrolled);
}

TEST(ExprSimd, OpcodeBySourceBySpostMatrixIsBitIdentical) {
  // Operand kinds as the compiler lowers them: kCol (a bare variable),
  // kLit (a constant), kReg (a non-foldable subexpression's register).
  const Dataset data = adversarial_dataset(3, 45);
  const auto operand = [](int kind, std::size_t var) -> Expr {
    switch (kind) {
      case 0: return Expr::variable(var);                    // Src::kCol
      case 1: return Expr::constant(1.5 + double(var));      // Src::kLit
      default:                                               // Src::kReg
        return Expr::binary(Op::kMul, Expr::variable(var),
                            Expr::constant(0.625));
    }
  };
  const char* kind_name[] = {"col", "lit", "reg"};
  for (const Op op : {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv}) {
    for (int ka = 0; ka < 3; ++ka) {
      for (int kb = 0; kb < 3; ++kb) {
        if (ka == 1 && kb == 1) continue;  // lit-lit folds to a constant
        const Expr base = Expr::binary(op, operand(ka, 0), operand(kb, 1));
        const std::string ctx = std::string("op=") +
                                std::to_string(static_cast<int>(op)) + " a=" +
                                kind_name[ka] + " b=" + kind_name[kb];
        expect_all_backends_match(base, data, ctx + " post=none");
        expect_all_backends_match(Expr::unary(Op::kLog, base.clone()), data,
                                  ctx + " post=log");
        expect_all_backends_match(Expr::unary(Op::kSqrt, base.clone()), data,
                                  ctx + " post=sqrt");
      }
    }
  }
  // Unary opcodes over column and register operands, plus stacked unaries
  // (whichever fusion the compiler picks must stay bit-identical).
  for (const Op op : {Op::kLog, Op::kSqrt}) {
    for (int ka : {0, 2}) {
      const Expr base = Expr::unary(op, operand(ka, 2));
      expect_all_backends_match(base, data, std::string("unary a=") +
                                                kind_name[ka]);
      expect_all_backends_match(Expr::unary(Op::kSqrt, base.clone()), data,
                                "stacked unary sqrt");
      expect_all_backends_match(Expr::unary(Op::kLog, base.clone()), data,
                                "stacked unary log");
    }
  }
}

TEST(ExprSimd, DivisionGuardStraddleAllBackends) {
  const Expr expr =
      Expr::binary(Op::kDiv, Expr::variable(0), Expr::variable(1));
  Dataset data({"num", "den"});
  for (double den :
       {0.0, -0.0, 1e-9, -1e-9, std::nextafter(1e-9, 0.0),
        std::nextafter(1e-9, 1.0), 9.9e-10, -9.9e-10, 2e-9, 1.0,
        std::numeric_limits<double>::quiet_NaN(),  // NaN den is NOT guarded
        std::numeric_limits<double>::infinity()})
    data.add_row({3.5, den}, {1.0});
  data.add_row({std::numeric_limits<double>::quiet_NaN(), 0.0}, {1.0});
  expect_all_backends_match(expr, data, "division guard straddle");
}

TEST(ExprSimd, OutOfRangeVariableReadsZeroAllBackends) {
  // var 9 exceeds the dataset's columns: the blocked backends read the
  // shared zero block, the scalar path its scratch zeros — both 0.0.
  const Expr expr = Expr::binary(
      Op::kDiv, Expr::binary(Op::kAdd, Expr::variable(9), Expr::variable(0)),
      Expr::variable(9));
  const Dataset data = adversarial_dataset(1, 21);
  expect_all_backends_match(expr, data, "out-of-range variable");
}

TEST(ExprSimd, EdgeRowCountsAllBackends) {
  // Row counts around the pack width (8), the block size (64), and a
  // multi-block tail; 0 rows must produce an empty output.
  util::Rng rng(987);
  for (const std::size_t rows : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                 std::size_t{4}, std::size_t{5}, std::size_t{8},
                                 std::size_t{63}, std::size_t{64},
                                 std::size_t{65}, std::size_t{1000}}) {
    const Dataset data = adversarial_dataset(2, rows);
    for (int trial = 0; trial < 3; ++trial) {
      const Expr expr = Expr::random(rng, 2, 4);
      if (expr.empty()) continue;
      expect_all_backends_match(
          expr, data,
          "rows=" + std::to_string(rows) + " trial " + std::to_string(trial));
    }
  }
}

TEST(ExprSimd, RandomExpressionsPropertySweep) {
  util::Rng rng(20260808);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t num_params = 1 + rng.uniform_int(4);
    const Dataset data =
        adversarial_dataset(num_params, 11 + rng.uniform_int(70));
    const Expr expr =
        Expr::random(rng, num_params, 2 + static_cast<int>(rng.uniform_int(5)));
    if (expr.empty()) continue;
    expect_all_backends_match(expr, data, "sweep trial " + std::to_string(trial));
  }
}

TEST(ExprSimd, ScratchReusesAcrossShapesAndBackends) {
  // One EvalScratch reused across programs of different register counts,
  // datasets of different widths/rows, and alternating backends: stale
  // strip contents or a missed re-zero would break bit identity.
  util::Rng rng(555);
  EvalScratch scratch;
  std::vector<double> out;
  const auto backends = identical_backends();
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t num_params = 1 + rng.uniform_int(3);
    const Dataset data = adversarial_dataset(num_params, 1 + rng.uniform_int(90));
    const Expr expr =
        Expr::random(rng, num_params, 1 + static_cast<int>(rng.uniform_int(6)));
    if (expr.empty()) continue;
    const ExprProgram prog = ExprProgram::compile(expr);
    const EvalBackend backend = backends[trial % backends.size()];
    BackendOverrideGuard guard(backend);
    prog.eval_dataset(data, out, scratch);
    ASSERT_EQ(out.size(), data.num_rows());
    for (std::size_t r = 0; r < data.num_rows(); ++r)
      ASSERT_TRUE(bits_equal(expr.eval(data.row(r).params), out[r]))
          << "trial " << trial << " backend " << to_string(backend) << " row "
          << r;
  }
}

TEST(AlignedBuffer, PadStaysZeroThroughGrowShrinkPush) {
  const auto pad_is_zero = [](const AlignedBuffer& b) {
    for (std::size_t i = b.size(); i < padded_rows(b.size()); ++i)
      if (!bits_equal(b.data()[i], 0.0)) return false;
    return true;
  };
  AlignedBuffer b;
  b.resize(5);
  ASSERT_TRUE(is_simd_aligned(b.data()));
  EXPECT_EQ(b.size(), 5u);
  EXPECT_TRUE(pad_is_zero(b));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = -1.0;
  b.push_back(7.0);  // claims a pad slot; slots beyond stay zero
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b[5], 7.0);
  EXPECT_TRUE(pad_is_zero(b));
  b.resize(100);  // growth past capacity: new slots and pad zero
  ASSERT_TRUE(is_simd_aligned(b.data()));
  EXPECT_TRUE(pad_is_zero(b));
  EXPECT_EQ(b[5], 7.0);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 3.25;
  b.resize(97);  // shrink within a pack: old values must be re-zeroed
  EXPECT_TRUE(pad_is_zero(b));
  b.resize(9);  // deep shrink across pack boundaries
  EXPECT_TRUE(pad_is_zero(b));
  EXPECT_EQ(b[8], 3.25);
  AlignedBuffer copy(b);
  ASSERT_TRUE(is_simd_aligned(copy.data()));
  EXPECT_EQ(copy.size(), b.size());
  EXPECT_TRUE(pad_is_zero(copy));
  EXPECT_EQ(copy[8], 3.25);
  b.clear();
  EXPECT_TRUE(b.empty());
  b.assign_zero(17);
  EXPECT_TRUE(pad_is_zero(b));
  for (std::size_t i = 0; i < 17u; ++i) EXPECT_EQ(b[i], 0.0);
}

TEST(DatasetAligned, ColumnsAreAlignedPaddedAndMirrorRows) {
  const Dataset data = adversarial_dataset(3, 13);
  for (std::size_t d = 0; d < data.num_params(); ++d) {
    const double* col = data.aligned_column(d);
    ASSERT_TRUE(is_simd_aligned(col));
    for (std::size_t r = 0; r < data.num_rows(); ++r)
      EXPECT_TRUE(bits_equal(col[r], data.row(r).params[d]));
    for (std::size_t r = data.num_rows(); r < padded_rows(data.num_rows()); ++r)
      EXPECT_TRUE(bits_equal(col[r], 0.0)) << "pad lane " << r;
  }
}

std::int64_t ulp_distance(double a, double b) {
  if (bits_equal(a, b)) return 0;
  const auto ia = std::bit_cast<std::int64_t>(a);
  const auto ib = std::bit_cast<std::int64_t>(b);
  if ((ia < 0) != (ib < 0)) return std::numeric_limits<std::int64_t>::max();
  return ia > ib ? ia - ib : ib - ia;
}

TEST(ExprSimd, Avx2FastStaysWithinUlpBoundAndExactOffLogPath) {
  if (!avx2_supported()) GTEST_SKIP() << "no AVX2 on this host/build";
  // The fast backend replaces only log1p|x|; everything else must remain
  // bit-identical...
  const Dataset data = adversarial_dataset(2, 29);
  const Expr logfree = Expr::binary(
      Op::kMul, Expr::unary(Op::kSqrt, Expr::variable(0)),
      Expr::binary(Op::kDiv, Expr::variable(1), Expr::variable(0)));
  expect_backend_matches_oracle(logfree, data, EvalBackend::kAvx2Fast,
                                "avx2fast log-free");
  // ...and the vector log must stay within the documented ULP bound of the
  // scalar result (glibc libmvec promises 4-ulp-accurate vector math).
  const Expr logx = Expr::unary(Op::kLog, Expr::variable(0));
  const ExprProgram prog = ExprProgram::compile(logx);
  Dataset pos({"x"});
  for (double v : {1e-12, 1e-6, 0.5, 1.0, 3.7, 1e3, 1e12, 1e100})
    pos.add_row({v}, {1.0});
  std::vector<double> fast;
  EvalScratch scratch;
  {
    BackendOverrideGuard guard(EvalBackend::kAvx2Fast);
    prog.eval_dataset(pos, fast, scratch);
  }
  for (std::size_t r = 0; r < pos.num_rows(); ++r) {
    const double exact = logx.eval(pos.row(r).params);
    EXPECT_LE(ulp_distance(exact, fast[r]), 4)
        << "x=" << pos.row(r).params[0] << " exact=" << exact << " fast="
        << fast[r];
  }
}

}  // namespace
}  // namespace ftbesst::model
