#include "model/table_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ftbesst::model {
namespace {

/// y = 2a + b sampled exactly on a 3x3 grid.
Dataset linear_grid() {
  Dataset d({"a", "b"});
  for (double a : {1.0, 2.0, 3.0})
    for (double b : {10.0, 20.0, 30.0}) d.add_row({a, b}, {2 * a + b});
  return d;
}

TEST(TableModel, ExactAtGridPoints) {
  const Dataset d = linear_grid();
  for (auto method : {Interpolation::kNearest, Interpolation::kMultilinear}) {
    TableModel m(d, method);
    for (const Row& r : d.rows())
      EXPECT_DOUBLE_EQ(m.predict(r.params), r.mean_response());
  }
}

TEST(TableModel, MultilinearExactForLinearFunction) {
  TableModel m(linear_grid(), Interpolation::kMultilinear);
  EXPECT_NEAR(m.predict(std::vector<double>{1.5, 15.0}), 18.0, 1e-12);
  EXPECT_NEAR(m.predict(std::vector<double>{2.5, 25.0}), 30.0, 1e-12);
}

TEST(TableModel, MultilinearExtrapolatesLinearly) {
  TableModel m(linear_grid(), Interpolation::kMultilinear);
  // Beyond the grid on both sides: a=4, b=40 -> 2*4+40 = 48.
  EXPECT_NEAR(m.predict(std::vector<double>{4.0, 40.0}), 48.0, 1e-12);
  EXPECT_NEAR(m.predict(std::vector<double>{0.0, 5.0}), 5.0, 1e-12);
}

TEST(TableModel, NearestSnapsToClosestPoint) {
  TableModel m(linear_grid(), Interpolation::kNearest);
  // (1.1, 11) is nearest to (1, 10) -> 12.
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{1.1, 11.0}), 12.0);
  // (2.9, 29) is nearest to (3, 30) -> 36.
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{2.9, 29.0}), 36.0);
}

TEST(TableModel, MultilinearRequiresFullGrid) {
  Dataset sparse({"a", "b"});
  sparse.add_row({1.0, 10.0}, {1.0});
  sparse.add_row({2.0, 20.0}, {2.0});
  EXPECT_THROW(TableModel(sparse, Interpolation::kMultilinear),
               std::invalid_argument);
  EXPECT_NO_THROW(TableModel(sparse, Interpolation::kNearest));
}

TEST(TableModel, EmptyDatasetRejected) {
  Dataset d({"a"});
  EXPECT_THROW(TableModel(d, Interpolation::kNearest), std::invalid_argument);
}

TEST(TableModel, SampleDrawsFromCalibrationSamples) {
  Dataset d({"a"});
  d.add_row({1.0}, {10.0, 12.0, 14.0});
  TableModel m(d, Interpolation::kNearest);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double s = m.sample(std::vector<double>{1.0}, rng);
    EXPECT_TRUE(s == 10.0 || s == 12.0 || s == 14.0) << s;
  }
}

TEST(TableModel, SampleRescalesOffGrid) {
  Dataset d({"a"});
  d.add_row({1.0}, {10.0});
  d.add_row({2.0}, {20.0});
  TableModel m(d, Interpolation::kMultilinear);
  util::Rng rng(6);
  // At a=1.5 prediction is 15; the only sample at nearest point (either 10
  // or 20) is rescaled by 15/mean -> exactly 15.
  EXPECT_NEAR(m.sample(std::vector<double>{1.5}, rng), 15.0, 1e-12);
}

TEST(TableModel, ParamCountMismatchThrows) {
  TableModel m(linear_grid(), Interpolation::kNearest);
  EXPECT_THROW((void)m.predict(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(TableModel, SingleAxisGridDegenerates) {
  Dataset d({"a", "b"});
  // b axis has a single value; interpolation along it must not divide by 0.
  for (double a : {1.0, 2.0}) d.add_row({a, 5.0}, {a * 10});
  TableModel m(d, Interpolation::kMultilinear);
  EXPECT_NEAR(m.predict(std::vector<double>{1.5, 5.0}), 15.0, 1e-12);
}

struct InterpCase {
  double a, b, expected;
};

class MultilinearSweep : public ::testing::TestWithParam<InterpCase> {};

TEST_P(MultilinearSweep, MatchesClosedForm) {
  TableModel m(linear_grid(), Interpolation::kMultilinear);
  const auto& c = GetParam();
  EXPECT_NEAR(m.predict(std::vector<double>{c.a, c.b}), c.expected, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Points, MultilinearSweep,
    ::testing::Values(InterpCase{1.0, 10.0, 12.0}, InterpCase{1.25, 10.0, 12.5},
                      InterpCase{3.0, 25.0, 31.0}, InterpCase{2.2, 17.5, 21.9},
                      InterpCase{3.5, 35.0, 42.0},
                      InterpCase{0.5, 10.0, 11.0}));

}  // namespace
}  // namespace ftbesst::model
