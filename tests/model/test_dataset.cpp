#include "model/dataset.hpp"

#include <gtest/gtest.h>

namespace ftbesst::model {
namespace {

Dataset grid_2x3() {
  Dataset d({"a", "b"});
  for (double a : {1.0, 2.0})
    for (double b : {10.0, 20.0, 30.0})
      d.add_row({a, b}, {a + b, a + b + 1.0});
  return d;
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = grid_2x3();
  EXPECT_EQ(d.num_rows(), 6u);
  EXPECT_EQ(d.num_params(), 2u);
  EXPECT_EQ(d.param_index("a"), 0u);
  EXPECT_EQ(d.param_index("b"), 1u);
  EXPECT_THROW((void)d.param_index("zzz"), std::out_of_range);
  EXPECT_DOUBLE_EQ(d.row(0).mean_response(), 11.5);
}

TEST(Dataset, RejectsMalformedRows) {
  Dataset d({"a"});
  EXPECT_THROW(d.add_row({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(d.add_row({1.0}, {}), std::invalid_argument);
  EXPECT_THROW(Dataset({}), std::invalid_argument);
}

TEST(Dataset, ResponsesInRowOrder) {
  const Dataset d = grid_2x3();
  const auto ys = d.responses();
  ASSERT_EQ(ys.size(), 6u);
  EXPECT_DOUBLE_EQ(ys[0], 11.5);
  EXPECT_DOUBLE_EQ(ys[5], 32.5);
}

TEST(Dataset, UniqueValuesSortedAndDeduped) {
  const Dataset d = grid_2x3();
  EXPECT_EQ(d.unique_values(0), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(d.unique_values(1), (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_THROW((void)d.unique_values(5), std::out_of_range);
}

TEST(Dataset, FullGridDetection) {
  EXPECT_TRUE(grid_2x3().is_full_grid());
  Dataset sparse({"a", "b"});
  sparse.add_row({1.0, 10.0}, {1.0});
  sparse.add_row({2.0, 20.0}, {2.0});
  EXPECT_FALSE(sparse.is_full_grid());
  Dataset dup({"a"});
  dup.add_row({1.0}, {1.0});
  dup.add_row({1.0}, {2.0});
  EXPECT_FALSE(dup.is_full_grid());
}

TEST(Dataset, SplitPartitionsAllRows) {
  const Dataset d = grid_2x3();
  util::Rng rng(3);
  const auto [train, test] = d.split(0.67, rng);
  EXPECT_EQ(train.num_rows() + test.num_rows(), d.num_rows());
  EXPECT_GE(train.num_rows(), 1u);
  EXPECT_GE(test.num_rows(), 1u);
}

TEST(Dataset, SplitIsDeterministicForSeed) {
  const Dataset d = grid_2x3();
  util::Rng r1(9), r2(9);
  const auto [tr1, te1] = d.split(0.5, r1);
  const auto [tr2, te2] = d.split(0.5, r2);
  ASSERT_EQ(tr1.num_rows(), tr2.num_rows());
  for (std::size_t i = 0; i < tr1.num_rows(); ++i)
    EXPECT_EQ(tr1.row(i).params, tr2.row(i).params);
}

TEST(Dataset, SplitExtremesStillLeaveBothSidesPopulated) {
  const Dataset d = grid_2x3();
  util::Rng rng(5);
  const auto [tr_lo, te_lo] = d.split(0.0, rng);
  EXPECT_GE(tr_lo.num_rows(), 1u);
  const auto [tr_hi, te_hi] = d.split(1.0, rng);
  EXPECT_GE(te_hi.num_rows(), 1u);
}

}  // namespace
}  // namespace ftbesst::model
