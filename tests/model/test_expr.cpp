#include "model/expr.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace ftbesst::model {
namespace {

TEST(Expr, ConstantAndVariableEval) {
  const auto c = Expr::constant(2.5);
  EXPECT_DOUBLE_EQ(c.eval(std::array<double, 0>{}), 2.5);
  const auto v = Expr::variable(1);
  EXPECT_DOUBLE_EQ(v.eval(std::array{3.0, 7.0}), 7.0);
}

TEST(Expr, VariableBeyondInputIsZero) {
  const auto v = Expr::variable(5);
  EXPECT_DOUBLE_EQ(v.eval(std::array{1.0}), 0.0);
}

TEST(Expr, ArithmeticOps) {
  const std::array vars{6.0, 3.0};
  auto mk = [](Op op) {
    return Expr::binary(op, Expr::variable(0), Expr::variable(1));
  };
  EXPECT_DOUBLE_EQ(mk(Op::kAdd).eval(vars), 9.0);
  EXPECT_DOUBLE_EQ(mk(Op::kSub).eval(vars), 3.0);
  EXPECT_DOUBLE_EQ(mk(Op::kMul).eval(vars), 18.0);
  EXPECT_DOUBLE_EQ(mk(Op::kDiv).eval(vars), 2.0);
}

TEST(Expr, ProtectedDivisionReturnsNumerator) {
  const auto div = Expr::binary(Op::kDiv, Expr::constant(7.0),
                                Expr::constant(0.0));
  EXPECT_DOUBLE_EQ(div.eval(std::array<double, 0>{}), 7.0);
}

TEST(Expr, ProtectedLogAndSqrt) {
  const auto lg = Expr::unary(Op::kLog, Expr::constant(-9.0));
  EXPECT_NEAR(lg.eval(std::array<double, 0>{}), std::log(10.0), 1e-12);
  const auto sq = Expr::unary(Op::kSqrt, Expr::constant(-16.0));
  EXPECT_DOUBLE_EQ(sq.eval(std::array<double, 0>{}), 4.0);
}

TEST(Expr, EmptyExprEvalsToZero) {
  const Expr e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.eval(std::array{1.0}), 0.0);
  EXPECT_EQ(e.size(), 0u);
}

TEST(Expr, SizeAndDepth) {
  const auto e = Expr::binary(
      Op::kAdd, Expr::variable(0),
      Expr::binary(Op::kMul, Expr::constant(2.0), Expr::variable(0)));
  EXPECT_EQ(e.size(), 5u);
  EXPECT_EQ(e.depth(), 3);
}

TEST(Expr, CloneIsDeepAndIndependent) {
  auto orig = Expr::binary(Op::kAdd, Expr::constant(1.0), Expr::variable(0));
  const Expr copy = orig.clone();
  EXPECT_EQ(copy.size(), orig.size());
  EXPECT_DOUBLE_EQ(copy.eval(std::array{5.0}), orig.eval(std::array{5.0}));
}

TEST(Expr, StrUsesNames) {
  const auto e = Expr::binary(Op::kMul, Expr::variable(0), Expr::variable(1));
  const std::array<std::string, 2> names{"epr", "ranks"};
  EXPECT_EQ(e.str(names), "(epr * ranks)");
  EXPECT_EQ(e.str(), "(x0 * x1)");
}

TEST(Expr, RandomRespectsDepthLimit) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto e = Expr::random(rng, 2, 4);
    EXPECT_LE(e.depth(), 4);
    EXPECT_GE(e.size(), 1u);
    // Always evaluable and finite.
    const double v = e.eval(std::array{3.0, 5.0});
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Expr, CrossoverStaysWithinNodeBudget) {
  util::Rng rng(4);
  const auto a = Expr::random(rng, 2, 5);
  const auto b = Expr::random(rng, 2, 5);
  for (int i = 0; i < 100; ++i) {
    const auto child = Expr::crossover(a, b, rng, 20);
    EXPECT_LE(child.size(), 20u);
    EXPECT_TRUE(std::isfinite(child.eval(std::array{1.0, 2.0})));
  }
}

TEST(Expr, MutateProducesValidTrees) {
  util::Rng rng(5);
  auto e = Expr::random(rng, 2, 4);
  for (int i = 0; i < 200; ++i) {
    e = Expr::mutate(e, rng, 2, 4, 30);
    EXPECT_LE(e.size(), 30u);
    EXPECT_TRUE(std::isfinite(e.eval(std::array{2.0, 8.0})));
  }
}

TEST(Expr, MutateEmptyRegrows) {
  util::Rng rng(6);
  const Expr empty;
  const auto e = Expr::mutate(empty, rng, 2, 3, 10);
  EXPECT_GE(e.size(), 1u);
}

}  // namespace
}  // namespace ftbesst::model
