#include "model/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace ftbesst::model {
namespace {

TEST(Linalg, SolvesIdentity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  const auto x = solve_linear_system(a, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Linalg, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  => x = 1, y = 3
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve_linear_system(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linalg, SingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Linalg, ShapeMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(Linalg, RandomSystemsRoundTrip) {
  util::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(8);
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-5.0, 5.0);
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
      a.at(i, i) += 3.0;  // diagonally dominant => well-conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    const auto x = solve_linear_system(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Linalg, LeastSquaresRecoversExactLinearModel) {
  // y = 2 + 3*t over t = 0..9, no noise.
  Matrix x(10, 2);
  std::vector<double> y(10);
  for (int i = 0; i < 10; ++i) {
    x.at(i, 0) = 1.0;
    x.at(i, 1) = i;
    y[i] = 2.0 + 3.0 * i;
  }
  const auto w = ridge_least_squares(x, y, 0.0);
  EXPECT_NEAR(w[0], 2.0, 1e-9);
  EXPECT_NEAR(w[1], 3.0, 1e-9);
}

TEST(Linalg, RidgeShrinksWeights) {
  Matrix x(4, 1);
  std::vector<double> y(4);
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = i + 1.0;
    y[i] = 10.0 * (i + 1.0);
  }
  const auto w0 = ridge_least_squares(x, y, 0.0);
  const auto w1 = ridge_least_squares(x, y, 100.0);
  EXPECT_NEAR(w0[0], 10.0, 1e-9);
  EXPECT_LT(w1[0], w0[0]);
  EXPECT_GT(w1[0], 0.0);
}

TEST(Linalg, RidgeRegularizesRankDeficiency) {
  // Duplicate columns: unregularized normal equations are singular, ridge
  // must still produce a solution.
  Matrix x(3, 2);
  std::vector<double> y{2.0, 4.0, 6.0};
  for (int i = 0; i < 3; ++i) {
    x.at(i, 0) = i + 1.0;
    x.at(i, 1) = i + 1.0;
  }
  EXPECT_THROW(ridge_least_squares(x, y, 0.0), std::runtime_error);
  const auto w = ridge_least_squares(x, y, 1e-6);
  EXPECT_NEAR(w[0] + w[1], 2.0, 1e-3);
}

}  // namespace
}  // namespace ftbesst::model
