#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "model/expr.hpp"
#include "util/rng.hpp"

namespace ftbesst::model {
namespace {

Expr parse(const std::string& s) { return Expr::from_sexpr(s); }

TEST(Simplify, ConstantFolding) {
  EXPECT_EQ(parse("(add (const 2) (const 3))").simplified().to_sexpr(),
            "(const 5)");
  EXPECT_EQ(parse("(mul (const 2) (const 3))").simplified().to_sexpr(),
            "(const 6)");
  EXPECT_EQ(parse("(sub (const 2) (const 3))").simplified().to_sexpr(),
            "(const -1)");
  EXPECT_EQ(parse("(div (const 6) (const 3))").simplified().to_sexpr(),
            "(const 2)");
}

TEST(Simplify, ProtectedSemanticsPreservedInFolding) {
  // div by literal ~0 returns the numerator, exactly like eval().
  EXPECT_EQ(parse("(div (const 7) (const 0))").simplified().to_sexpr(),
            "(const 7)");
  // log folds through the protected log1p|x| form.
  const Expr lg = parse("(log (const -9))").simplified();
  EXPECT_NEAR(lg.eval(std::array<double, 0>{}), std::log(10.0), 1e-12);
  const Expr sq = parse("(sqrt (const -16))").simplified();
  EXPECT_DOUBLE_EQ(sq.eval(std::array<double, 0>{}), 4.0);
}

TEST(Simplify, IdentityElimination) {
  EXPECT_EQ(parse("(add (var 0) (const 0))").simplified().to_sexpr(),
            "(var 0)");
  EXPECT_EQ(parse("(add (const 0) (var 0))").simplified().to_sexpr(),
            "(var 0)");
  EXPECT_EQ(parse("(mul (var 0) (const 1))").simplified().to_sexpr(),
            "(var 0)");
  EXPECT_EQ(parse("(mul (var 0) (const 0))").simplified().to_sexpr(),
            "(const 0)");
  EXPECT_EQ(parse("(sub (var 0) (const 0))").simplified().to_sexpr(),
            "(var 0)");
  EXPECT_EQ(parse("(div (var 0) (const 1))").simplified().to_sexpr(),
            "(var 0)");
  EXPECT_EQ(parse("(div (const 0) (var 1))").simplified().to_sexpr(),
            "(const 0)");
}

TEST(Simplify, SelfSubtractionIsZero) {
  EXPECT_EQ(parse("(sub (mul (var 0) (var 1)) (mul (var 0) (var 1)))")
                .simplified()
                .to_sexpr(),
            "(const 0)");
  // Different subtrees must NOT fold.
  EXPECT_NE(parse("(sub (var 0) (var 1))").simplified().to_sexpr(),
            "(const 0)");
}

TEST(Simplify, CascadesThroughNestedStructure) {
  // ((x * 1) + (2 + 3)) - 0  ->  x + 5
  const Expr e =
      parse("(sub (add (mul (var 0) (const 1)) (add (const 2) (const 3))) "
            "(const 0))")
          .simplified();
  EXPECT_EQ(e.to_sexpr(), "(add (var 0) (const 5))");
}

TEST(Simplify, IsIdempotent) {
  util::Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const Expr e = Expr::random(rng, 2, 6);
    const Expr once = e.simplified();
    const Expr twice = once.simplified();
    EXPECT_EQ(once.to_sexpr(), twice.to_sexpr());
  }
}

TEST(Simplify, PreservesSemanticsOnRandomTrees) {
  util::Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const Expr e = Expr::random(rng, 3, 6);
    const Expr s = e.simplified();
    EXPECT_LE(s.size(), e.size());
    for (int probe = 0; probe < 8; ++probe) {
      const std::vector<double> vars{rng.uniform(-50.0, 50.0),
                                     rng.uniform(0.0, 1000.0),
                                     rng.uniform(-1.0, 1.0)};
      EXPECT_DOUBLE_EQ(s.eval(vars), e.eval(vars))
          << "expr " << e.to_sexpr() << " vs " << s.to_sexpr();
    }
  }
}

TEST(Simplify, EmptyExprStaysEmptyish) {
  const Expr e;
  const Expr s = e.simplified();
  EXPECT_DOUBLE_EQ(s.eval(std::array{1.0}), 0.0);
}

}  // namespace
}  // namespace ftbesst::model
