#include "model/feature_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/fitting.hpp"
#include "util/rng.hpp"

namespace ftbesst::model {
namespace {

TEST(FeatureLibrary, PolynomialLibraryShape) {
  const auto lib1 = FeatureLibrary::polynomial(1);
  EXPECT_EQ(lib1.size(), 1u + 7u);  // const + 7 per-var terms
  const auto lib2 = FeatureLibrary::polynomial(2);
  EXPECT_EQ(lib2.size(), 1u + 14u + 7u);  // + 7 pairwise terms
}

TEST(FeatureLibrary, EvaluateMatchesDefinitions) {
  const auto lib = FeatureLibrary::polynomial(1);
  const std::vector<double> p{3.0};
  const auto phi = lib.evaluate(p);
  EXPECT_DOUBLE_EQ(phi[0], 1.0);        // constant
  EXPECT_DOUBLE_EQ(phi[1], 3.0);        // x
  EXPECT_DOUBLE_EQ(phi[2], 9.0);        // x^2
  EXPECT_DOUBLE_EQ(phi[3], 27.0);       // x^3
  EXPECT_NEAR(phi[4], std::log(4.0), 1e-12);  // log(x+1)
}

TEST(FeatureModel, RecoversExactPolynomial) {
  // y = 5 + 2*a^2 + 0.5*a*b over a small grid, noise-free.
  Dataset d({"a", "b"});
  for (double a : {1.0, 2.0, 3.0, 4.0})
    for (double b : {1.0, 3.0, 5.0})
      d.add_row({a, b}, {5.0 + 2.0 * a * a + 0.5 * a * b});
  const auto m = FeatureModel::fit(d, FeatureLibrary::polynomial(2), 1e-10);
  for (const Row& r : d.rows())
    EXPECT_NEAR(m.predict(r.params), r.mean_response(),
                1e-6 * r.mean_response());
  // And generalizes beyond the grid.
  EXPECT_NEAR(m.predict(std::vector<double>{5.0, 2.0}), 5.0 + 50.0 + 5.0,
              0.5);
}

TEST(FeatureModel, PredictionsClampedNonNegative) {
  FeatureLibrary lib;
  lib.add("1", [](std::span<const double>) { return 1.0; });
  const FeatureModel m(std::move(lib), {-5.0});
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{1.0}), 0.0);
}

TEST(FeatureModel, RelativeWeightingHelpsSmallRows) {
  // Responses spanning 4 decades; relative fit keeps % error tight on the
  // small rows where absolute fit sacrifices them.
  Dataset d({"a"});
  for (double a : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})
    d.add_row({a}, {1e-4 * a * a * a});
  const auto rel =
      FeatureModel::fit(d, FeatureLibrary::polynomial(1), 1e-12, true);
  const double small_pred = rel.predict(std::vector<double>{1.0});
  EXPECT_NEAR(small_pred, 1e-4, 2e-5);
}

TEST(FeatureModel, WeightCountMismatchThrows) {
  EXPECT_THROW(FeatureModel(FeatureLibrary::polynomial(1), {1.0}),
               std::invalid_argument);
}

TEST(FeatureModel, DescribeListsNonzeroTerms) {
  FeatureLibrary lib;
  lib.add("1", [](std::span<const double>) { return 1.0; });
  lib.add("x0", [](std::span<const double> p) { return p[0]; });
  const FeatureModel m(std::move(lib), {0.0, 2.0});
  const auto desc = m.describe();
  EXPECT_NE(desc.find("x0"), std::string::npos);
  EXPECT_EQ(desc.find("+ 0*1"), std::string::npos);
}

TEST(Fitting, ValidateMapeZeroForPerfectModel) {
  Dataset d({"a"});
  for (double a : {1.0, 2.0, 3.0}) d.add_row({a}, {a * 7.0});
  FeatureLibrary lib;
  lib.add("x0", [](std::span<const double> p) { return p[0]; });
  const FeatureModel m(std::move(lib), {7.0});
  EXPECT_NEAR(validate_mape(m, d), 0.0, 1e-9);
}

TEST(Fitting, ResidualSigmaMatchesInjectedNoise) {
  util::Rng rng(33);
  Dataset d({"a"});
  const double sigma = 0.2;
  for (double a : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    std::vector<double> samples;
    for (int s = 0; s < 400; ++s)
      samples.push_back(rng.lognormal_median(a * 10.0, sigma));
    d.add_row({a}, std::move(samples));
  }
  FeatureLibrary lib;
  lib.add("x0", [](std::span<const double> p) { return p[0]; });
  const FeatureModel m(std::move(lib), {10.0});
  EXPECT_NEAR(residual_log_sigma(m, d), sigma, 0.02);
}

}  // namespace
}  // namespace ftbesst::model
