#include "analytic/speedup.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ftbesst::analytic {
namespace {

TEST(Amdahl, KnownValuesAndAsymptote) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 16), 16.0);
  EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 16), 1.0);
  EXPECT_NEAR(amdahl_speedup(0.1, 1e12), 10.0, 1e-6);  // 1/alpha ceiling
  EXPECT_NEAR(amdahl_speedup(0.05, 20), 1.0 / (0.05 + 0.95 / 20), 1e-12);
  EXPECT_THROW((void)amdahl_speedup(-0.1, 4), std::invalid_argument);
  EXPECT_THROW((void)amdahl_speedup(0.5, 0.5), std::invalid_argument);
}

TEST(Gustafson, ScaledSpeedupIsLinearInN) {
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.0, 64), 64.0);
  EXPECT_DOUBLE_EQ(gustafson_speedup(1.0, 64), 1.0);
  const double s128 = gustafson_speedup(0.1, 128);
  const double s64 = gustafson_speedup(0.1, 64);
  EXPECT_NEAR(s128 - s64, 0.9 * 64, 1e-9);
}

TEST(CrSpeedup, ReducesTowardAmdahlWhenFaultsNegligible) {
  FaultModel fm;
  fm.node_mtbf = 1e12;  // essentially fault-free
  fm.checkpoint_cost = 1e-6;
  fm.restart_cost = 0.0;
  const double s = cr_speedup(1e5, 0.05, 64, fm);
  EXPECT_NEAR(s, amdahl_speedup(0.05, 64), 0.05 * amdahl_speedup(0.05, 64));
}

TEST(CrSpeedup, FaultsCreateAnInteriorOptimum) {
  // The headline result of Zheng/Cavelan: speedup is not monotone in n.
  FaultModel fm;
  fm.node_mtbf = 5e4;  // poor per-node reliability
  fm.checkpoint_cost = 30;
  fm.restart_cost = 60;
  const double work = 1e6;
  const double alpha = 1e-5;  // almost perfectly parallel
  const double opt = optimal_nodes_cr(work, alpha, fm, 1 << 22);
  EXPECT_GT(opt, 1.0);
  EXPECT_LT(opt, static_cast<double>(1 << 22));
  // Speedup degrades well past the optimum.
  const double at_opt = cr_speedup(work, alpha, opt, fm);
  const double far = cr_speedup(work, alpha, opt * 256, fm);
  EXPECT_GT(at_opt, far);
}

TEST(CrSpeedup, ThrashingRegimeGivesZero) {
  FaultModel fm;
  fm.node_mtbf = 10.0;  // absurdly unreliable
  fm.checkpoint_cost = 30;
  fm.restart_cost = 60;
  EXPECT_DOUBLE_EQ(cr_speedup(1e6, 0.0, 1 << 20, fm), 0.0);
}

TEST(Replication, ExtendsScalingPastCrPeak) {
  // Hussain et al.: replication halves throughput but its pair-failure
  // rate is ~ lambda^2, so at large machine sizes replication wins. Compare
  // at EQUAL PHYSICAL NODES: plain C/R on N nodes vs replication on N/2
  // logical pairs (N physical).
  FaultModel fm;
  fm.node_mtbf = 1e5;
  fm.checkpoint_cost = 5;
  fm.restart_cost = 10;
  const double work = 1e6;
  const double alpha = 1e-6;
  const double physical = 1 << 13;
  const double cr = cr_speedup(work, alpha, physical, fm);
  const double rep = replication_speedup(work, alpha, physical / 2, fm);
  EXPECT_GT(rep, cr);
  EXPECT_GT(rep, 0.0);
  // At tiny scale, paying double hardware for half throughput is a loss.
  EXPECT_LT(replication_speedup(work, alpha, 2, fm),
            cr_speedup(work, alpha, 4, fm));
}

TEST(Replication, RejectsBadWindow) {
  FaultModel fm;
  EXPECT_THROW((void)replication_speedup(1e5, 0.1, 4, fm, 0.0),
               std::invalid_argument);
}

TEST(OptimalNodes, MonotoneInReliability) {
  FaultModel flaky;
  flaky.node_mtbf = 1e4;
  FaultModel solid;
  solid.node_mtbf = 1e7;
  const double n_flaky = optimal_nodes_cr(1e6, 1e-5, flaky, 1 << 22);
  const double n_solid = optimal_nodes_cr(1e6, 1e-5, solid, 1 << 22);
  EXPECT_LE(n_flaky, n_solid);
}

TEST(CrExpectedTime, InvalidArgsThrow) {
  FaultModel fm;
  EXPECT_THROW((void)cr_expected_time(0.0, 0.1, 4, fm), std::invalid_argument);
  EXPECT_THROW((void)optimal_nodes_cr(1e5, 0.1, fm, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ftbesst::analytic
