#include <gtest/gtest.h>

#include <cmath>

#include "analytic/speedup.hpp"

namespace ftbesst::analytic {
namespace {

TEST(Spares, ExhaustionProbabilityMonotoneInSpares) {
  const double n = 1000, mtbf = 1e5, mttr = 3600;
  double prev = 1.0;
  for (double s = 0; s <= 20; ++s) {
    const double p = spare_exhaustion_probability(n, s, mtbf, mttr);
    EXPECT_LE(p, prev + 1e-12) << s;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(Spares, ZeroSparesMatchesPoissonTail) {
  // mean = n*mttr/mtbf = 1; P[X > 0] = 1 - e^-1.
  const double p = spare_exhaustion_probability(100, 0, 3600 * 100, 3600);
  EXPECT_NEAR(p, 1.0 - std::exp(-1.0), 1e-12);
}

TEST(Spares, MoreNodesNeedMoreSpares) {
  const double mtbf = 1e5, mttr = 3600, target = 1e-3;
  const double small = spares_for_availability(100, mtbf, mttr, target);
  const double big = spares_for_availability(10000, mtbf, mttr, target);
  EXPECT_GT(big, small);
  // The answer actually meets the target.
  EXPECT_LE(spare_exhaustion_probability(10000, big, mtbf, mttr), target);
}

TEST(Spares, FasterRepairNeedsFewerSpares) {
  const double n = 5000, mtbf = 1e5, target = 1e-3;
  const double slow = spares_for_availability(n, mtbf, 7200, target);
  const double fast = spares_for_availability(n, mtbf, 600, target);
  EXPECT_LT(fast, slow);
}

TEST(Spares, InputValidation) {
  EXPECT_THROW((void)spare_exhaustion_probability(0, 1, 1e5, 3600),
               std::invalid_argument);
  EXPECT_THROW((void)spare_exhaustion_probability(10, -1, 1e5, 3600),
               std::invalid_argument);
  EXPECT_THROW((void)spare_exhaustion_probability(10, 1, 0, 3600),
               std::invalid_argument);
  EXPECT_THROW((void)spares_for_availability(10, 1e5, 3600, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)spares_for_availability(10, 1e5, 3600, 1.0),
               std::invalid_argument);
}

TEST(Spares, UnreachableTargetReturnsCap) {
  // Absurd failure volume: mean far above the cap.
  const double s = spares_for_availability(1e6, 10.0, 1e5, 1e-9, 32);
  EXPECT_DOUBLE_EQ(s, 32.0);
}

}  // namespace
}  // namespace ftbesst::analytic
