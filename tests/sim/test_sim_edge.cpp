// Edge-case coverage for the PDES kernel beyond the core behaviour tests:
// explicit user partitions, stop requests under parallel execution,
// priority interaction with links, and payload ergonomics.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/simulation.hpp"

namespace ftbesst::sim {
namespace {

class Counter final : public Component {
 public:
  Counter(std::string name, int ticks, SimTime interval)
      : Component(std::move(name)), ticks_(ticks), interval_(interval) {}
  void init() override { schedule_self(interval_); }
  void handle_event(PortId, std::unique_ptr<Payload>) override {
    ++count;
    if (count >= stop_at && stop_at > 0) simulation().request_stop();
    if (count < ticks_) schedule_self(interval_);
  }
  int count = 0;
  int stop_at = 0;

 private:
  int ticks_;
  SimTime interval_;
};

TEST(SimEdge, UserPartitionsAreRespected) {
  Simulation sim;
  auto* a = sim.add_component<Counter>("a", 100, SimTime{3});
  auto* b = sim.add_component<Counter>("b", 100, SimTime{5});
  a->set_partition(0);
  b->set_partition(1);
  sim.connect(a->id(), 1, b->id(), 1, SimTime{50});
  const SimStats stats = sim.run_parallel(2);
  EXPECT_EQ(a->count, 100);
  EXPECT_EQ(b->count, 100);
  EXPECT_GT(stats.windows, 0u);
  // User assignment untouched by auto-partitioning.
  EXPECT_EQ(a->partition(), 0u);
  EXPECT_EQ(b->partition(), 1u);
}

TEST(SimEdge, StopRequestHaltsParallelRun) {
  Simulation sim;
  auto* a = sim.add_component<Counter>("a", 1000000, SimTime{1});
  auto* b = sim.add_component<Counter>("b", 1000000, SimTime{1});
  a->stop_at = 500;
  sim.connect(a->id(), 1, b->id(), 1, SimTime{100});
  sim.run_parallel(2);
  EXPECT_LT(a->count, 1000000);
  EXPECT_GE(a->count, 500);
}

TEST(SimEdge, PriorityBreaksSimultaneousLinkDeliveries) {
  class Sink final : public Component {
   public:
    Sink() : Component("sink") {}
    void handle_event(PortId, std::unique_ptr<Payload> p) override {
      if (auto* v = unbox<int>(p.get())) order.push_back(*v);
    }
    std::vector<int> order;
  };
  Simulation sim;
  auto* sink = sim.add_component<Sink>();
  // Two events, same timestamp, opposite priority to insertion order.
  sim.schedule(kNoComponent, sink->id(), 0, SimTime{10}, box<int>(2), 5);
  sim.schedule(kNoComponent, sink->id(), 0, SimTime{10}, box<int>(1), -5);
  sim.run();
  EXPECT_EQ(sink->order, (std::vector<int>{1, 2}));
}

TEST(SimEdge, MoveOnlyPayloadsWork) {
  class Taker final : public Component {
   public:
    Taker() : Component("taker") {}
    void handle_event(PortId, std::unique_ptr<Payload> p) override {
      if (auto* v = unbox<std::unique_ptr<int>>(p.get()))
        value = **v;
    }
    int value = 0;
  };
  Simulation sim;
  auto* taker = sim.add_component<Taker>();
  sim.schedule(kNoComponent, taker->id(), 0, SimTime{1},
               box(std::make_unique<int>(77)));
  sim.run();
  EXPECT_EQ(taker->value, 77);
}

TEST(SimEdge, AddComponentWhileRunningThrows) {
  class Adder final : public Component {
   public:
    Adder() : Component("adder") {}
    void init() override { schedule_self(1); }
    void handle_event(PortId, std::unique_ptr<Payload>) override {
      simulation().add_component<Adder>();
    }
  };
  Simulation sim;
  sim.add_component<Adder>();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(SimEdge, ScheduleToUnknownComponentThrows) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(kNoComponent, 5, 0, SimTime{1}, nullptr),
               std::out_of_range);
}

TEST(SimEdge, ParallelRunWithNoEventsTerminates) {
  Simulation sim;
  auto* a = sim.add_component<Counter>("a", 0, SimTime{1});
  auto* b = sim.add_component<Counter>("b", 0, SimTime{1});
  sim.connect(a->id(), 1, b->id(), 1, SimTime{10});
  // init schedules one event each; ticks_=0 means handle once and stop.
  const SimStats stats = sim.run_parallel(2);
  EXPECT_EQ(stats.events_processed, 2u);
}

}  // namespace
}  // namespace ftbesst::sim
