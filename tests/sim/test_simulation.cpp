#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace ftbesst::sim {
namespace {

/// Records (time, port, value) triples for assertions.
class Recorder final : public Component {
 public:
  explicit Recorder(std::string name) : Component(std::move(name)) {}

  void handle_event(PortId port, std::unique_ptr<Payload> payload) override {
    int value = -1;
    if (payload)
      if (auto* v = unbox<int>(payload.get())) value = *v;
    log.push_back({now(), port, value});
  }

  struct Entry {
    SimTime time;
    PortId port;
    int value;
  };
  std::vector<Entry> log;
};

/// Sends `count` pings on port 0, spaced `interval` apart.
class Pinger final : public Component {
 public:
  Pinger(std::string name, int count, SimTime interval)
      : Component(std::move(name)), count_(count), interval_(interval) {}

  void init() override { schedule_self(interval_); }

  void handle_event(PortId, std::unique_ptr<Payload>) override {
    send(0, box<int>(sent_));
    if (++sent_ < count_) schedule_self(interval_);
  }

 private:
  int count_;
  SimTime interval_;
  int sent_ = 0;
};

TEST(Simulation, DeliversLinkedEventWithLatency) {
  Simulation sim;
  auto* pinger = sim.add_component<Pinger>("ping", 1, SimTime{10});
  auto* recorder = sim.add_component<Recorder>("rec");
  sim.connect(pinger->id(), 0, recorder->id(), 0, SimTime{5});
  const SimStats stats = sim.run();
  ASSERT_EQ(recorder->log.size(), 1u);
  EXPECT_EQ(recorder->log[0].time, 15u);  // 10 (self) + 5 (link)
  EXPECT_EQ(recorder->log[0].value, 0);
  EXPECT_EQ(stats.events_processed, 2u);  // self-wake + delivery
}

TEST(Simulation, MultiplePingsArriveInOrder) {
  Simulation sim;
  auto* pinger = sim.add_component<Pinger>("ping", 5, SimTime{10});
  auto* recorder = sim.add_component<Recorder>("rec");
  sim.connect(pinger->id(), 0, recorder->id(), 0, SimTime{3});
  sim.run();
  ASSERT_EQ(recorder->log.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(recorder->log[i].value, i);
    EXPECT_EQ(recorder->log[i].time, SimTime{10} * (i + 1) + 3);
  }
}

TEST(Simulation, RunUntilHorizonLeavesLaterEventsQueued) {
  Simulation sim;
  auto* pinger = sim.add_component<Pinger>("ping", 10, SimTime{10});
  auto* recorder = sim.add_component<Recorder>("rec");
  sim.connect(pinger->id(), 0, recorder->id(), 0, SimTime{0});
  sim.run(SimTime{35});
  EXPECT_EQ(recorder->log.size(), 3u);  // t=10,20,30
  // Resuming processes the rest.
  sim.run();
  EXPECT_EQ(recorder->log.size(), 10u);
}

TEST(Simulation, SamePortBidirectionalLink) {
  // Two recorders wired together; inject one event each way.
  Simulation sim;
  auto* a = sim.add_component<Recorder>("a");
  auto* b = sim.add_component<Recorder>("b");
  sim.connect(a->id(), 0, b->id(), 0, SimTime{7});
  sim.schedule(kNoComponent, a->id(), 0, SimTime{1}, box<int>(100));
  sim.schedule(kNoComponent, b->id(), 0, SimTime{2}, box<int>(200));
  sim.run();
  ASSERT_EQ(a->log.size(), 1u);
  ASSERT_EQ(b->log.size(), 1u);
  EXPECT_EQ(a->log[0].value, 100);
  EXPECT_EQ(b->log[0].value, 200);
}

TEST(Simulation, TieBreakByPriorityThenSource) {
  Simulation sim;
  auto* rec = sim.add_component<Recorder>("rec");
  // Same timestamp, different priorities: lower priority value first.
  sim.schedule(kNoComponent, rec->id(), 1, SimTime{5}, box<int>(2), /*prio=*/1);
  sim.schedule(kNoComponent, rec->id(), 2, SimTime{5}, box<int>(1), /*prio=*/0);
  sim.run();
  ASSERT_EQ(rec->log.size(), 2u);
  EXPECT_EQ(rec->log[0].value, 1);
  EXPECT_EQ(rec->log[1].value, 2);
}

TEST(Simulation, FifoAmongEqualKeys) {
  Simulation sim;
  auto* rec = sim.add_component<Recorder>("rec");
  for (int i = 0; i < 10; ++i)
    sim.schedule(kNoComponent, rec->id(), 0, SimTime{5}, box<int>(i));
  sim.run();
  ASSERT_EQ(rec->log.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rec->log[i].value, i);
}

TEST(Simulation, SendOnUnconnectedPortThrows) {
  class BadSender final : public Component {
   public:
    BadSender() : Component("bad") {}
    void init() override { schedule_self(1); }
    void handle_event(PortId, std::unique_ptr<Payload>) override {
      send(3, nullptr);
    }
  };
  Simulation sim;
  sim.add_component<BadSender>();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, DoubleConnectSamePortThrows) {
  Simulation sim;
  auto* a = sim.add_component<Recorder>("a");
  auto* b = sim.add_component<Recorder>("b");
  auto* c = sim.add_component<Recorder>("c");
  sim.connect(a->id(), 0, b->id(), 0, 1);
  EXPECT_THROW(sim.connect(a->id(), 0, c->id(), 0, 1), std::logic_error);
}

TEST(Simulation, ConnectUnknownComponentThrows) {
  Simulation sim;
  auto* a = sim.add_component<Recorder>("a");
  EXPECT_THROW(sim.connect(a->id(), 0, 42, 0, 1), std::out_of_range);
}

TEST(Simulation, StopRequestHaltsEarly) {
  class Stopper final : public Component {
   public:
    Stopper() : Component("stopper") {}
    void init() override { schedule_self(1); }
    void handle_event(PortId, std::unique_ptr<Payload>) override {
      if (++count == 3) simulation().request_stop();
      schedule_self(1);
    }
    int count = 0;
  };
  Simulation sim;
  auto* s = sim.add_component<Stopper>();
  sim.run(SimTime{1000});
  EXPECT_EQ(s->count, 3);
}

TEST(Simulation, InitAndFinishHooksRunOnce) {
  class Hooked final : public Component {
   public:
    Hooked() : Component("hooked") {}
    void init() override { ++inits; }
    void finish() override { ++finishes; }
    void handle_event(PortId, std::unique_ptr<Payload>) override {}
    int inits = 0;
    int finishes = 0;
  };
  Simulation sim;
  auto* h = sim.add_component<Hooked>();
  sim.run();
  EXPECT_EQ(h->inits, 1);
  EXPECT_EQ(h->finishes, 1);
}

TEST(Simulation, UnboxTypeMismatchReturnsNull) {
  auto p = box<int>(1);
  EXPECT_EQ(unbox<double>(p.get()), nullptr);
  EXPECT_NE(unbox<int>(p.get()), nullptr);
}

TEST(SimTimeConversions, RoundTripAndClamping) {
  EXPECT_EQ(from_seconds(1.0), kNsPerSec);
  EXPECT_EQ(from_seconds(0.0), 0u);
  EXPECT_EQ(from_seconds(-1.0), 0u);
  EXPECT_DOUBLE_EQ(to_seconds(kNsPerSec), 1.0);
  EXPECT_EQ(from_seconds(1.5e-9), 2u);  // rounds half-up
  EXPECT_EQ(from_seconds(1e18), kNever);  // clamps
}

class ChainLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainLengthSweep, EventCountMatchesChainLength) {
  // A chain of N forwarders; one event traverses the whole chain.
  class Forwarder final : public Component {
   public:
    explicit Forwarder(bool last) : Component("fwd"), last_(last) {}
    void handle_event(PortId, std::unique_ptr<Payload> p) override {
      if (!last_) send(1, std::move(p));
    }

   private:
    bool last_;
  };
  const int n = GetParam();
  Simulation sim;
  std::vector<Forwarder*> comps;
  for (int i = 0; i < n; ++i)
    comps.push_back(sim.add_component<Forwarder>(i == n - 1));
  for (int i = 0; i + 1 < n; ++i)
    sim.connect(comps[i]->id(), 1, comps[i + 1]->id(), 0, SimTime{2});
  sim.schedule(kNoComponent, comps[0]->id(), 0, SimTime{0}, nullptr);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.events_processed, static_cast<std::uint64_t>(n));
  EXPECT_EQ(stats.end_time, SimTime{2} * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(Chains, ChainLengthSweep,
                         ::testing::Values(2, 3, 10, 100));

}  // namespace
}  // namespace ftbesst::sim
