// The thread-local payload freelist: reuse, sizing, cross-thread handoff.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <thread>
#include <vector>

#include "sim/detail/payload_pool.hpp"
#include "sim/event.hpp"

namespace ftbesst::sim {
namespace {

using detail::payload_pool_stats;
using detail::payload_pool_trim;

TEST(PayloadPool, FreedBlocksAreReused) {
  payload_pool_trim();
  const auto before = payload_pool_stats();
  { auto p = box<int>(1); }  // allocate + free: seeds the freelist
  { auto p = box<int>(2); }  // must be served from the freelist
  const auto after = payload_pool_stats();
  EXPECT_EQ(after.allocations - before.allocations, 2u);
  EXPECT_EQ(after.deallocations - before.deallocations, 2u);
  EXPECT_GE(after.freelist_hits - before.freelist_hits, 1u);
}

TEST(PayloadPool, DistinctSizesGetDistinctBuckets) {
  payload_pool_trim();
  auto small = box<int>(1);
  auto large = box<std::array<char, 200>>({});
  const void* small_addr = small.get();
  small.reset();
  large.reset();
  // Freeing the 200-byte payload must not satisfy the next small alloc
  // from the wrong bucket; the small slot is reused for a small payload.
  auto small2 = box<int>(2);
  EXPECT_EQ(static_cast<const void*>(small2.get()), small_addr);
}

TEST(PayloadPool, OversizedPayloadsBypassThePool) {
  payload_pool_trim();
  const auto before = payload_pool_stats();
  { auto big = box<std::array<char, 4096>>({}); }
  { auto big = box<std::array<char, 4096>>({}); }
  const auto after = payload_pool_stats();
  EXPECT_EQ(after.allocations - before.allocations, 2u);
  EXPECT_EQ(after.freelist_hits - before.freelist_hits, 0u);
}

TEST(PayloadPool, CrossThreadFreeIsSafe) {
  // Allocate on this thread, destroy on another (the cross-partition event
  // path): the block simply joins the destroying thread's freelist.
  std::vector<std::unique_ptr<Payload>> batch;
  for (int i = 0; i < 256; ++i) batch.push_back(box<int>(i));
  std::thread consumer([&batch] {
    batch.clear();
    // And allocate fresh ones over there.
    for (int i = 0; i < 256; ++i) {
      auto p = box<int>(i);
      ASSERT_NE(unbox<int>(p.get()), nullptr);
    }
  });
  consumer.join();
  auto p = box<int>(7);
  EXPECT_EQ(*unbox<int>(p.get()), 7);
}

TEST(PayloadPool, TrimReleasesCachedBlocks) {
  { auto p = box<int>(1); }
  payload_pool_trim();  // must not crash or leak (ASan/valgrind verified)
  auto p = box<int>(2);
  EXPECT_EQ(*unbox<int>(p.get()), 2);
}

}  // namespace
}  // namespace ftbesst::sim
