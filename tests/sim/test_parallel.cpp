#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace ftbesst::sim {
namespace {

/// Ring node: forwards a token around a ring `laps` times, recording the
/// arrival times. Used to compare serial vs parallel execution exactly.
class RingNode final : public Component {
 public:
  RingNode(std::string name, int laps, bool origin)
      : Component(std::move(name)), laps_(laps), origin_(origin) {}

  void init() override {
    if (origin_) schedule_self(1);
  }

  void handle_event(PortId port, std::unique_ptr<Payload>) override {
    arrivals.push_back(now());
    if (port == 0 && origin_ && ++lap_ > laps_) return;  // token retired
    send(1, nullptr);
  }

  std::vector<SimTime> arrivals;

 private:
  int laps_;
  bool origin_;
  int lap_ = 0;
};

struct RingResult {
  std::vector<std::vector<SimTime>> arrivals;
  SimStats stats;
};

RingResult run_ring(int nodes, int laps, unsigned threads) {
  Simulation sim;
  std::vector<RingNode*> ring;
  for (int i = 0; i < nodes; ++i)
    ring.push_back(
        sim.add_component<RingNode>("n" + std::to_string(i), laps, i == 0));
  for (int i = 0; i < nodes; ++i)
    sim.connect(ring[i]->id(), 1, ring[(i + 1) % nodes]->id(), 0, SimTime{5});
  RingResult r;
  r.stats = threads <= 1 ? sim.run() : sim.run_parallel(threads);
  for (auto* node : ring) r.arrivals.push_back(node->arrivals);
  return r;
}

TEST(ParallelSim, MatchesSerialOnRing) {
  const RingResult serial = run_ring(8, 10, 1);
  for (unsigned threads : {2u, 3u, 4u}) {
    const RingResult parallel = run_ring(8, 10, threads);
    EXPECT_EQ(parallel.arrivals, serial.arrivals) << threads << " threads";
    EXPECT_EQ(parallel.stats.events_processed, serial.stats.events_processed);
    EXPECT_EQ(parallel.stats.end_time, serial.stats.end_time);
  }
}

TEST(ParallelSim, SingleThreadDelegatesToSerial) {
  const RingResult r = run_ring(4, 3, 1);
  EXPECT_GT(r.stats.events_processed, 0u);
  EXPECT_EQ(r.stats.windows, 0u);
}

TEST(ParallelSim, UsesMultipleWindows) {
  Simulation sim;
  std::vector<RingNode*> ring;
  for (int i = 0; i < 4; ++i)
    ring.push_back(
        sim.add_component<RingNode>("n" + std::to_string(i), 20, i == 0));
  for (int i = 0; i < 4; ++i)
    sim.connect(ring[i]->id(), 1, ring[(i + 1) % 4]->id(), 0, SimTime{5});
  const SimStats stats = sim.run_parallel(2);
  EXPECT_GT(stats.windows, 1u);
}

/// Independent self-ticking counters — embarrassingly parallel; checks that
/// partitions do not interfere.
class Ticker final : public Component {
 public:
  Ticker(std::string name, int ticks, SimTime interval)
      : Component(std::move(name)), ticks_(ticks), interval_(interval) {}
  void init() override { schedule_self(interval_); }
  void handle_event(PortId, std::unique_ptr<Payload>) override {
    last_time = now();
    if (++count < ticks_) schedule_self(interval_);
  }
  int count = 0;
  SimTime last_time = 0;

 private:
  int ticks_;
  SimTime interval_;
};

TEST(ParallelSim, IndependentComponentsAllComplete) {
  Simulation sim;
  std::vector<Ticker*> tickers;
  for (int i = 0; i < 16; ++i)
    tickers.push_back(sim.add_component<Ticker>(
        "t" + std::to_string(i), 50 + i, static_cast<SimTime>(3 + i)));
  const SimStats stats = sim.run_parallel(4);
  std::uint64_t expected = 0;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(tickers[i]->count, 50 + i);
    EXPECT_EQ(tickers[i]->last_time,
              static_cast<SimTime>(3 + i) * static_cast<SimTime>(50 + i));
    expected += static_cast<std::uint64_t>(50 + i);
  }
  EXPECT_EQ(stats.events_processed, expected);
}

TEST(ParallelSim, ZeroLatencyLinksGroupedIntoOnePartition) {
  // a--b with zero latency must share a partition; a--c with latency 5 can
  // cross. After auto-partitioning, run must succeed and match serial.
  auto build = [](Simulation& sim, Ticker*& a_out) {
    auto* a = sim.add_component<Ticker>("a", 10, SimTime{5});
    auto* b = sim.add_component<Ticker>("b", 10, SimTime{7});
    auto* c = sim.add_component<Ticker>("c", 10, SimTime{9});
    sim.connect(a->id(), 1, b->id(), 1, SimTime{0});
    sim.connect(a->id(), 2, c->id(), 1, SimTime{5});
    a_out = a;
    (void)b;
    (void)c;
  };
  Simulation serial_sim;
  Ticker* sa = nullptr;
  build(serial_sim, sa);
  serial_sim.run();

  Simulation par_sim;
  Ticker* pa = nullptr;
  build(par_sim, pa);
  par_sim.run_parallel(3);

  EXPECT_EQ(sa->last_time, pa->last_time);
  // Zero-latency neighbors must have been merged.
  EXPECT_EQ(par_sim.component(0).partition(), par_sim.component(1).partition());
}

TEST(ParallelSim, HorizonRespectedAndResumable) {
  Simulation sim;
  auto* t = sim.add_component<Ticker>("t", 100, SimTime{10});
  auto* u = sim.add_component<Ticker>("u", 100, SimTime{10});
  sim.connect(t->id(), 1, u->id(), 1, SimTime{50});
  sim.run_parallel(2, SimTime{255});
  EXPECT_EQ(t->count, 25);
  sim.run_parallel(2);
  EXPECT_EQ(t->count, 100);
}

class RingSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RingSweep, ParallelEqualsSerial) {
  const auto [nodes, laps] = GetParam();
  const RingResult serial = run_ring(nodes, laps, 1);
  const RingResult parallel = run_ring(nodes, laps, 4);
  EXPECT_EQ(parallel.arrivals, serial.arrivals);
}

INSTANTIATE_TEST_SUITE_P(Rings, RingSweep,
                         ::testing::Combine(::testing::Values(2, 5, 16),
                                            ::testing::Values(1, 7, 25)));

}  // namespace
}  // namespace ftbesst::sim
