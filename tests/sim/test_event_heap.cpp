// EventHeap: the intrusive-pop 4-ary heap behind both engines' queues.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event.hpp"
#include "sim/event_heap.hpp"
#include "util/rng.hpp"

namespace ftbesst::sim {
namespace {

Event make_event(SimTime time, std::int32_t priority = 0, ComponentId src = 0,
                 std::uint64_t seq = 0) {
  Event ev;
  ev.time = time;
  ev.priority = priority;
  ev.src = src;
  ev.src_seq = seq;
  return ev;
}

TEST(EventHeap, PopsInTotalOrder) {
  util::Rng rng(7);
  std::vector<Event> reference;
  EventHeap heap;
  for (int i = 0; i < 2000; ++i) {
    const auto time = static_cast<SimTime>(rng.uniform_int(500));
    const auto priority = static_cast<std::int32_t>(rng.uniform_int(3));
    const auto src = static_cast<ComponentId>(rng.uniform_int(16));
    const std::uint64_t seq = rng.uniform_int(64);
    reference.push_back(make_event(time, priority, src, seq));
    heap.push(make_event(time, priority, src, seq));
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Event& a, const Event& b) { return a.before(b); });
  ASSERT_EQ(heap.size(), reference.size());
  for (const Event& want : reference) {
    const Event got = heap.pop();
    EXPECT_EQ(got.time, want.time);
    EXPECT_EQ(got.priority, want.priority);
    EXPECT_EQ(got.src, want.src);
    EXPECT_EQ(got.src_seq, want.src_seq);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, MovesPayloadsThroughIntact) {
  EventHeap heap;
  for (int i = 9; i >= 0; --i) {
    Event ev = make_event(static_cast<SimTime>(i));
    ev.payload = box<int>(i);
    heap.push(std::move(ev));
  }
  for (int i = 0; i < 10; ++i) {
    Event ev = heap.pop();
    ASSERT_NE(ev.payload, nullptr);
    const int* value = unbox<int>(ev.payload.get());
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, i);
  }
}

TEST(EventHeap, TieBreaksMatchEventBefore) {
  EventHeap heap;
  heap.push(make_event(5, /*priority=*/1, /*src=*/0, /*seq=*/0));
  heap.push(make_event(5, /*priority=*/0, /*src=*/1, /*seq=*/0));
  heap.push(make_event(5, /*priority=*/0, /*src=*/0, /*seq=*/1));
  heap.push(make_event(5, /*priority=*/0, /*src=*/0, /*seq=*/0));
  EXPECT_EQ(heap.pop().src_seq, 0u);      // (5,0,0,0)
  EXPECT_EQ(heap.pop().src_seq, 1u);      // (5,0,0,1)
  EXPECT_EQ(heap.pop().src, 1u);          // (5,0,1,0)
  EXPECT_EQ(heap.pop().priority, 1);      // (5,1,0,0)
}

TEST(EventHeap, ClearAndReuse) {
  EventHeap heap;
  heap.push(make_event(1));
  heap.push(make_event(2));
  heap.clear();
  EXPECT_TRUE(heap.empty());
  heap.push(make_event(3));
  EXPECT_EQ(heap.pop().time, SimTime{3});
}

}  // namespace
}  // namespace ftbesst::sim
