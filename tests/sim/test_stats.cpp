// SST-style named statistics (Component::bump / Simulation counters).

#include <gtest/gtest.h>

#include <memory>

#include "net/des_network.hpp"
#include "net/des_torus.hpp"
#include "sim/simulation.hpp"

namespace ftbesst::sim {
namespace {

class CountingTicker final : public Component {
 public:
  CountingTicker(int ticks, SimTime interval)
      : Component("ct"), ticks_(ticks), interval_(interval) {}
  void init() override { schedule_self(interval_); }
  void handle_event(PortId, std::unique_ptr<Payload>) override {
    bump("ticks");
    bump("virtual_ns", interval_);
    if (++count_ < ticks_) schedule_self(interval_);
  }

 private:
  int ticks_;
  SimTime interval_;
  int count_ = 0;
};

TEST(SimStats, ComponentCountersAccumulate) {
  Simulation sim;
  auto* a = sim.add_component<CountingTicker>(10, SimTime{5});
  auto* b = sim.add_component<CountingTicker>(3, SimTime{7});
  sim.run();
  EXPECT_EQ(a->counters().at("ticks"), 10u);
  EXPECT_EQ(a->counters().at("virtual_ns"), 50u);
  EXPECT_EQ(b->counters().at("ticks"), 3u);
}

TEST(SimStats, AggregateSumsAcrossComponents) {
  Simulation sim;
  sim.add_component<CountingTicker>(10, SimTime{5});
  sim.add_component<CountingTicker>(3, SimTime{7});
  sim.run();
  const auto totals = sim.aggregate_counters();
  EXPECT_EQ(counter_value(totals, "ticks"), 13u);
  EXPECT_EQ(counter_value(totals, "virtual_ns"), 71u);
  EXPECT_EQ(sim.lifetime_events(), 13u);
}

TEST(SimStats, EmptySimulationAggregatesNothing) {
  Simulation sim;
  sim.run();
  EXPECT_TRUE(sim.aggregate_counters().empty());
}

TEST(SimStats, FatTreeNetworkExposesTrafficCounters) {
  Simulation sim;
  net::TwoStageFatTree topo(2, 4, 1);
  net::DesNetwork network(sim, topo, net::CommParams{});
  network.send(0, 5, 1000, 0);  // cross-leaf: leaf -> spine -> leaf
  network.send(1, 1, 500, 0);   // loopback: delivered, never injected
  sim.run();
  const auto totals = sim.aggregate_counters();
  EXPECT_EQ(counter_value(totals, "nic_msgs_injected"), 1u);
  EXPECT_EQ(counter_value(totals, "nic_msgs_delivered"), 2u);
  EXPECT_EQ(counter_value(totals, "nic_bytes_delivered"), 1500u);
  // Three switch traversals for the cross-leaf message.
  EXPECT_EQ(counter_value(totals, "switch_msgs_forwarded"), 3u);
  EXPECT_EQ(counter_value(totals, "switch_bytes_forwarded"), 3000u);
}

TEST(SimStats, TorusRoutersExposeTrafficCounters) {
  Simulation sim;
  net::Torus topo({4});
  net::DesTorus network(sim, topo, net::CommParams{});
  network.send(0, 2, 100, 0);  // 2 hops either way
  sim.run();
  const auto totals = sim.aggregate_counters();
  EXPECT_EQ(counter_value(totals, "router_msgs_delivered"), 1u);
  EXPECT_EQ(counter_value(totals, "router_msgs_forwarded"), 2u);
  EXPECT_EQ(counter_value(totals, "router_bytes_forwarded"), 200u);
}

}  // namespace
}  // namespace ftbesst::sim
