// The incremental-round engine's conservative bound: earliest-output-time
// (EOT) propagation over the partition graph. The trap these tests guard
// is transitive feedback — a partition facing a currently-empty peer must
// NOT drain past the time at which that peer could be woken by a third
// party (or by the partition itself) and send something back. A naive
// bound of min(peer_next + lookahead) admits exactly that causality
// violation; the CMB-style EOT fixed point does not.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace ftbesst::sim {
namespace {

/// Echoes every arrival straight back out of `out_port`. Starts empty:
/// its partition has no events until someone wakes it.
class Echo final : public Component {
 public:
  explicit Echo(std::string name, PortId out_port = 0)
      : Component(std::move(name)), out_port_(out_port) {}
  void handle_event(PortId, std::unique_ptr<Payload>) override {
    arrivals.push_back(now());
    send(out_port_, nullptr);
  }
  std::vector<SimTime> arrivals;

 private:
  PortId out_port_;
};

/// Dense local work plus a periodic probe to the echo peer; records the
/// times of the echoed replies.
class Prober final : public Component {
 public:
  Prober(std::string name, int ticks)
      : Component(std::move(name)), ticks_(ticks) {}
  void init() override { schedule_self(1); }
  void handle_event(PortId port, std::unique_ptr<Payload>) override {
    if (port != 0) {  // echo reply (self-wakes arrive on port 0)
      replies.push_back(now());
      return;
    }
    if (++count_ % 50 == 0) send(1, nullptr);  // probe the echo
    if (count_ < ticks_) schedule_self(1);
  }
  std::vector<SimTime> replies;

 private:
  int ticks_;
  int count_ = 0;
};

struct FeedbackResult {
  std::vector<SimTime> replies;
  std::vector<SimTime> arrivals;
  SimStats stats;
};

FeedbackResult run_feedback(unsigned threads, int ticks, SimTime latency) {
  Simulation sim;
  auto* prober = sim.add_component<Prober>("prober", ticks);
  auto* echo = sim.add_component<Echo>("echo");
  prober->set_partition(0);
  echo->set_partition(1);
  sim.connect(prober->id(), 1, echo->id(), 0, latency);
  FeedbackResult r;
  r.stats = threads <= 1 ? sim.run() : sim.run_parallel(threads);
  r.replies = prober->replies;
  r.arrivals = echo->arrivals;
  return r;
}

TEST(ParallelFeedback, EmptyPeerFeedbackMatchesSerial) {
  // The prober's partition holds ~1000 events at tick granularity; the
  // echo partition is empty between probes. A bound derived from the
  // echo's (empty) queue would let the prober drain to completion and
  // then receive echoes in its past. EOT propagation keeps every reply
  // causally ordered, so parallel must equal serial exactly.
  const FeedbackResult serial = run_feedback(1, 1000, SimTime{7});
  ASSERT_FALSE(serial.replies.empty());
  for (unsigned threads : {2u, 4u}) {
    const FeedbackResult parallel = run_feedback(threads, 1000, SimTime{7});
    EXPECT_EQ(parallel.replies, serial.replies) << threads << " threads";
    EXPECT_EQ(parallel.arrivals, serial.arrivals) << threads << " threads";
    EXPECT_EQ(parallel.stats.events_processed, serial.stats.events_processed);
    EXPECT_EQ(parallel.stats.end_time, serial.stats.end_time);
  }
}

TEST(ParallelFeedback, ThreePartyRelayMatchesSerial) {
  // a probes b, b echoes to c, c echoes back to a: the bound on a's
  // partition depends on c, whose wake time depends on b — only a
  // transitive (fixed-point) EOT sees it.
  auto build_and_run = [](unsigned threads) {
    Simulation sim;
    auto* a = sim.add_component<Prober>("a", 600);
    auto* b = sim.add_component<Echo>("b", 1);  // receive 0, forward 1
    auto* c = sim.add_component<Echo>("c", 1);
    a->set_partition(0);
    b->set_partition(1);
    c->set_partition(2);
    sim.connect(a->id(), 1, b->id(), 0, SimTime{5});
    sim.connect(b->id(), 1, c->id(), 0, SimTime{9});
    sim.connect(c->id(), 1, a->id(), 2, SimTime{4});  // reply lands on a:2
    FeedbackResult r;
    r.stats = threads <= 1 ? sim.run() : sim.run_parallel(threads);
    r.replies = a->replies;
    r.arrivals = c->arrivals;
    return r;
  };
  const FeedbackResult serial = build_and_run(1);
  ASSERT_FALSE(serial.replies.empty());
  for (unsigned threads : {2u, 3u, 4u}) {
    const FeedbackResult parallel = build_and_run(threads);
    EXPECT_EQ(parallel.replies, serial.replies) << threads << " threads";
    EXPECT_EQ(parallel.arrivals, serial.arrivals) << threads << " threads";
    EXPECT_EQ(parallel.stats.end_time, serial.stats.end_time);
  }
}

TEST(ParallelFeedback, SelectiveWakeSkipsIdlePartitions) {
  // One busy partition, three far-future partitions: rounds should not be
  // inflated by partitions with nothing to do inside the bound.
  Simulation sim;
  auto* busy = sim.add_component<Prober>("busy", 400);
  busy->set_partition(0);
  auto* e0 = sim.add_component<Echo>("e0");
  e0->set_partition(1);
  sim.connect(busy->id(), 1, e0->id(), 0, SimTime{11});
  for (int i = 0; i < 3; ++i) {
    auto* idle = sim.add_component<Prober>("idle" + std::to_string(i), 1);
    idle->set_partition(static_cast<std::uint32_t>(2 + i));
  }
  const SimStats stats = sim.run_parallel(4);
  EXPECT_GT(stats.windows, 0u);
  EXPECT_GT(stats.events_processed, 400u);
}

}  // namespace
}  // namespace ftbesst::sim
