// Symmetry-fold planning: equivalence classes across every signature axis
// (type, behaviour digest, config digest, foldable flag), link-signature
// isomorphism via colour refinement, clone-on-divergence, and the
// multiplicity-scaled counter aggregation contract.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/fold.hpp"
#include "sim/simulation.hpp"

namespace ftbesst::sim {
namespace {

FoldSpec rank_spec(std::uint64_t behavior = 1, std::uint64_t config = 2,
                   const std::string& type = "rank") {
  FoldSpec s;
  s.signature.type = type;
  s.signature.behavior_digest = behavior;
  s.signature.config_digest = config;
  return s;
}

TEST(FoldPlan, IdenticalSpecsCollapseToOneGroup) {
  const FoldPlan plan = plan_folds(std::vector<FoldSpec>(6, rank_spec()));
  ASSERT_EQ(plan.groups().size(), 1u);
  EXPECT_EQ(plan.groups()[0].representative, 0u);
  EXPECT_EQ(plan.groups()[0].multiplicity(), 6u);
  EXPECT_EQ(plan.folded_away(), 5u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(plan.group_of(i), 0u);
    EXPECT_EQ(plan.representative_of(i), 0u);
    EXPECT_EQ(plan.is_representative(i), i == 0);
    EXPECT_EQ(plan.multiplicity_of(i), 6u);
  }
}

TEST(FoldPlan, EverySignatureAxisSeparatesClasses) {
  // 0,1 identical; 2 differs in type; 3 in behaviour (the AppBEO plan);
  // 4 in config (the FTI layout); 5 is marked divergent.
  std::vector<FoldSpec> specs(6, rank_spec());
  specs[2].signature.type = "nic";
  specs[3].signature.behavior_digest = 99;
  specs[4].signature.config_digest = 99;
  specs[5].signature.foldable = false;
  const FoldPlan plan = plan_folds(specs);
  ASSERT_EQ(plan.groups().size(), 5u);
  EXPECT_EQ(plan.group_of(0), plan.group_of(1));
  EXPECT_NE(plan.group_of(2), plan.group_of(0));
  EXPECT_NE(plan.group_of(3), plan.group_of(0));
  EXPECT_NE(plan.group_of(4), plan.group_of(0));
  EXPECT_NE(plan.group_of(5), plan.group_of(0));
  EXPECT_EQ(plan.multiplicity_of(0), 2u);
  EXPECT_EQ(plan.multiplicity_of(5), 1u);
}

TEST(FoldPlan, NonFoldableSpecsNeverMergeWithEachOther) {
  std::vector<FoldSpec> specs(4, rank_spec());
  for (FoldSpec& s : specs) s.signature.foldable = false;
  const FoldPlan plan = plan_folds(specs);
  EXPECT_EQ(plan.groups().size(), 4u);  // identical but pinned: singletons
  // Poisoning preserves the input order exactly (group i = spec i), which
  // is what keeps an unfolded engine build bit-identical to pre-fold code.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(plan.group_of(i), i);
}

TEST(FoldPlan, LinkSignatureSeparatesClasses) {
  // Two symmetric pairs wired with different latencies: {0,1} at 5 ticks,
  // {2,3} at 7 ticks. Same signatures everywhere — only the link metadata
  // distinguishes them.
  std::vector<FoldSpec> specs(4, rank_spec());
  auto wire = [&](std::size_t a, std::size_t b, SimTime latency) {
    specs[a].links.push_back(FoldEndpoint{0, 1, latency, b});
    specs[b].links.push_back(FoldEndpoint{1, 0, latency, a});
  };
  wire(0, 1, 5);
  wire(2, 3, 7);
  const FoldPlan plan = plan_folds(specs);
  ASSERT_EQ(plan.groups().size(), 4u);  // port asymmetry splits each pair
  // Re-wire symmetrically (same port both sides): pairs fold, latency
  // still separates the two pairs.
  for (FoldSpec& s : specs) s.links.clear();
  auto wire_sym = [&](std::size_t a, std::size_t b, SimTime latency) {
    specs[a].links.push_back(FoldEndpoint{0, 0, latency, b});
    specs[b].links.push_back(FoldEndpoint{0, 0, latency, a});
  };
  wire_sym(0, 1, 5);
  wire_sym(2, 3, 7);
  const FoldPlan sym = plan_folds(specs);
  ASSERT_EQ(sym.groups().size(), 2u);
  EXPECT_EQ(sym.group_of(0), sym.group_of(1));
  EXPECT_EQ(sym.group_of(2), sym.group_of(3));
  EXPECT_NE(sym.group_of(0), sym.group_of(2));
}

TEST(FoldPlan, ColourRefinementPropagatesAsymmetryTransitively) {
  // A 4-chain 0-1-2-3 with uniform links: ends {0,3} and middles {1,2}
  // differ by degree; no spec is individually marked. 1-WL must find the
  // two orbits.
  std::vector<FoldSpec> specs(4, rank_spec());
  auto wire = [&](std::size_t a, std::size_t b) {
    specs[a].links.push_back(FoldEndpoint{0, 0, 3, b});
    specs[b].links.push_back(FoldEndpoint{0, 0, 3, a});
  };
  wire(0, 1);
  wire(1, 2);
  wire(2, 3);
  const FoldPlan plan = plan_folds(specs);
  ASSERT_EQ(plan.groups().size(), 2u);
  EXPECT_EQ(plan.group_of(0), plan.group_of(3));
  EXPECT_EQ(plan.group_of(1), plan.group_of(2));
  EXPECT_NE(plan.group_of(0), plan.group_of(1));
}

TEST(FoldPlan, PeerIndexOutOfRangeThrows) {
  std::vector<FoldSpec> specs(2, rank_spec());
  specs[0].links.push_back(FoldEndpoint{0, 0, 1, 7});
  EXPECT_THROW((void)plan_folds(specs), std::invalid_argument);
}

TEST(FoldPlan, BreakOutClonesOnDivergence) {
  FoldPlan plan = plan_folds(std::vector<FoldSpec>(5, rank_spec()));
  ASSERT_EQ(plan.groups().size(), 1u);
  plan.break_out(2);  // a fault singles out member 2
  ASSERT_EQ(plan.groups().size(), 2u);
  EXPECT_EQ(plan.multiplicity_of(2), 1u);
  EXPECT_TRUE(plan.is_representative(2));
  EXPECT_EQ(plan.multiplicity_of(0), 4u);
  EXPECT_EQ(plan.folded_away(), 3u);

  plan.break_out(0);  // representative leaves: next-lowest takes over
  ASSERT_EQ(plan.groups().size(), 3u);
  EXPECT_EQ(plan.representative_of(1), 1u);
  EXPECT_EQ(plan.multiplicity_of(1), 3u);  // {1, 3, 4} remain folded
  plan.break_out(2);  // already a singleton: no-op
  EXPECT_EQ(plan.groups().size(), 3u);
}

TEST(FoldDigest, DistinguishesBitPatterns) {
  EXPECT_NE(fold_digest_f64(kFoldDigestSeed, 0.0),
            fold_digest_f64(kFoldDigestSeed, -0.0));
  EXPECT_NE(fold_digest_string(kFoldDigestSeed, "ab"),
            fold_digest_string(kFoldDigestSeed, "ba"));
  EXPECT_EQ(fold_digest_u64(kFoldDigestSeed, 42),
            fold_digest_u64(kFoldDigestSeed, 42));
}

/// Counter-scaling contract: aggregate_counters multiplies each
/// representative's counters by its multiplicity.
class Counting final : public Component {
 public:
  explicit Counting(std::string name) : Component(std::move(name)) {}
  void init() override { schedule_self(1); }
  void handle_event(PortId, std::unique_ptr<Payload>) override {
    bump("ticks");
    bump("bytes", 100);
  }
};

TEST(FoldCounters, AggregationScalesByMultiplicity) {
  Simulation sim;
  auto* rep = sim.add_component<Counting>("rep");
  auto* lone = sim.add_component<Counting>("lone");
  rep->set_multiplicity(12);  // stands for 12 physical components
  sim.run();
  const CounterTotals counters = sim.aggregate_counters();
  EXPECT_EQ(counter_value(counters, "ticks"), 13u);    // 12 + 1
  EXPECT_EQ(counter_value(counters, "bytes"), 1300u);  // 12*100 + 100
  EXPECT_EQ(lone->multiplicity(), 1u);
}

}  // namespace
}  // namespace ftbesst::sim
