// The umbrella header must compile standalone and expose every layer.

#include "ftbesst.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryLayerIsReachable) {
  ftbesst::util::Rng rng(1);
  EXPECT_GE(rng.uniform(), 0.0);
  ftbesst::sim::Simulation sim;
  EXPECT_EQ(sim.component_count(), 0u);
  ftbesst::net::TwoStageFatTree topo(2, 2, 1);
  EXPECT_EQ(topo.num_nodes(), 4);
  ftbesst::model::Dataset data({"x"});
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(ftbesst::ft::GF256::mul(1, 7), 7);
  EXPECT_DOUBLE_EQ(ftbesst::analytic::amdahl_speedup(0.0, 4), 4.0);
  ftbesst::core::AppBEO app("x", 1);
  EXPECT_EQ(app.size(), 0u);
  EXPECT_TRUE(ftbesst::apps::is_perfect_cube(27));
}

}  // namespace
