#!/usr/bin/env bash
# Build and test the two configurations that gate every change:
#   - an optimized Release tree (what the benches measure), and
#   - a ThreadSanitizer tree (the task pool and the parallel DES engine are
#     concurrency-heavy; TSan keeps them honest), and
#   - an UndefinedBehaviorSanitizer tree (the compiled expression evaluator
#     leans on tight pointer/index arithmetic and bit-level float handling;
#     UBSan guards the batch kernels).
#
#   - an observability pass on the Release tree: the full test suite with
#     the obs runtime flag forced on (FTBESST_OBS=1), plus a <2% overhead
#     gate comparing the pool sweep bench with obs on vs off — the
#     instrumentation must stay near-free.
#
#   - a prediction-service pass: the svc test binary (server, cache,
#     single-flight) under ThreadSanitizer, plus the bench_ext_svc load
#     generator on the Release tree, which gates cache hits being >= 100x
#     faster than cold computations.
#
# Usage: scripts/check.sh [--release-only|--tsan-only|--ubsan-only|--obs-only|--svc-only]
#
# FTBESST_THREADS caps the shared task pool's workers if the machine is
# shared; ctest parallelism follows nproc.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_release=1
run_tsan=1
run_ubsan=1
run_obs=1
run_svc=1
case "${1:-}" in
  --release-only) run_tsan=0; run_ubsan=0; run_obs=0; run_svc=0 ;;
  --tsan-only) run_release=0; run_ubsan=0; run_obs=0; run_svc=0 ;;
  --ubsan-only) run_release=0; run_tsan=0; run_obs=0; run_svc=0 ;;
  --obs-only) run_release=0; run_tsan=0; run_ubsan=0; run_svc=0 ;;
  --svc-only) run_release=0; run_tsan=0; run_ubsan=0; run_obs=0 ;;
  "") ;;
  *)
    echo "usage: $0 [--release-only|--tsan-only|--ubsan-only|--obs-only|--svc-only]" >&2
    exit 2
    ;;
esac

if [ "$run_release" = 1 ]; then
  echo "== Release build + ctest =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs"
  ctest --test-dir build-release --output-on-failure -j "$jobs"
fi

if [ "$run_obs" = 1 ]; then
  echo "== Observability pass (Release, obs runtime-enabled) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs"
  # Whole suite with obs forced on: observation must never change results.
  FTBESST_OBS=1 ctest --test-dir build-release --output-on-failure -j "$jobs"

  # Overhead gate: the pool sweep bench (simulation-task duty cycle — the
  # instrumentation's real workload) must cost < 2% with obs enabled.
  # Scale the sweep up (FTBESST_BENCH_TRIALS) so one run is tens of ms,
  # interleave off/on runs, and compare best-of-5: scheduler noise on a
  # loaded host shows up as slow outliers, which min-of-N sheds.
  extract_dse_seconds() {
    sed -n 's/.*"dse_pool_seconds": \([0-9.eE+-]*\).*/\1/p'
  }
  run_sweep() {  # $1 = value of FTBESST_OBS for the run
    FTBESST_OBS="$1" FTBESST_BENCH_TRIALS=256 \
      ./build-release/bench/bench_ext_pool | extract_dse_seconds
  }
  min_val() { awk -v a="$1" -v b="$2" 'BEGIN{print (a<b || b=="")?a:b}'; }
  off=""
  on=""
  for _ in 1 2 3 4 5; do
    off=$(min_val "$(run_sweep 0)" "$off")
    on=$(min_val "$(run_sweep 1)" "$on")
  done
  echo "obs overhead gate: dse_pool_seconds off=$off on=$on"
  if ! awk -v on="$on" -v off="$off" 'BEGIN{exit !(on <= off * 1.02)}'; then
    echo "!! obs overhead gate FAILED: enabled run is more than 2% slower" >&2
    exit 1
  fi
  echo "obs overhead gate passed (<2%)"
fi

if [ "$run_tsan" = 1 ]; then
  # Probe whether the toolchain can actually link TSan (some minimal
  # containers lack libtsan); skip with a loud note instead of failing.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    echo "== ThreadSanitizer build + ctest =="
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan --output-on-failure -j "$jobs"
  else
    echo "!! ThreadSanitizer unavailable on this toolchain; skipped" >&2
  fi
fi

if [ "$run_ubsan" = 1 ]; then
  # Same probe pattern as TSan: skip loudly if the toolchain lacks libubsan.
  if echo 'int main(){return 0;}' | c++ -fsanitize=undefined -x c++ - -o /tmp/ftbesst_ubsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_ubsan_probe
    echo "== UndefinedBehaviorSanitizer build + ctest =="
    cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=undefined
    cmake --build build-ubsan -j "$jobs"
    UBSAN_OPTIONS=halt_on_error=1 \
      ctest --test-dir build-ubsan --output-on-failure -j "$jobs"
  else
    echo "!! UndefinedBehaviorSanitizer unavailable on this toolchain; skipped" >&2
  fi
fi

if [ "$run_svc" = 1 ]; then
  echo "== Prediction service pass =="
  # The server's event loop, per-connection write locks, single-flight
  # coalescing, and drain path are the raciest code in the tree: run the
  # whole svc test binary under TSan (same probe-and-skip as the TSan pass).
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target test_svc
    ./build-tsan/tests/test_svc
  else
    echo "!! ThreadSanitizer unavailable; svc tests run unsanitized" >&2
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$jobs" --target test_svc
    ./build-release/tests/test_svc
  fi

  # Load-generator gate: bench_ext_svc exits non-zero unless every response
  # was well-formed, hot bytes matched cold bytes, and a cache hit was at
  # least 100x faster than the cold computation.
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target bench_ext_svc
  ./build-release/bench/bench_ext_svc
  echo "svc pass: TSan tests + 100x cache-hit gate passed"
fi

echo "check.sh: all requested configurations passed"
