#!/usr/bin/env bash
# Build and test the two configurations that gate every change:
#   - an optimized Release tree (what the benches measure), and
#   - a ThreadSanitizer tree (the task pool and the parallel DES engine are
#     concurrency-heavy; TSan keeps them honest), and
#   - an UndefinedBehaviorSanitizer tree (the compiled expression evaluator
#     leans on tight pointer/index arithmetic and bit-level float handling;
#     UBSan guards the batch kernels).
#
#   - an observability pass on the Release tree: the full test suite with
#     the obs runtime flag forced on (FTBESST_OBS=1), plus a <2% overhead
#     gate comparing the pool sweep bench with obs on vs off — the
#     instrumentation must stay near-free.
#
#   - a prediction-service pass: the svc test binary (server, cache,
#     single-flight) under ThreadSanitizer, plus the bench_ext_svc load
#     generator on the Release tree, which gates cache hits being >= 100x
#     faster than cold computations.
#
#   - a scaled-tier pass: the router/consistent-hash tests plus the
#     process-level tier soak and chaos harnesses (test_tier_slow) under
#     ThreadSanitizer — the spawned workers are the TSan-built CLI, so
#     both sides of the wire run sanitized — plus the bench_ext_tier load
#     generator on the Release tree, which gates a 4-worker tier at
#     >= 2.5x the single-worker req/s at saturation, byte-identical
#     responses versus a single-process server, and a rolling restart
#     under load with zero non-shed failures, bounded p99, and a
#     measurable warm-cache handoff.
#
#   - a verification pass: the cross-engine differential checker over 200
#     generated scenarios, golden-corpus replay, and the in-process fuzz
#     campaigns — the fuzz entries additionally under ASan+UBSan.
#
#   - a SIMD pass: the model test suite on the Release tree under each
#     ExprProgram backend (FTBESST_SIMD=off, =unrolled, and =avx2 when the
#     host has it — the bit-identity property tests must hold on whichever
#     backend actually dispatches), plus the bench_ext_simd divergence and
#     speedup gates.
#
#   - a DES-scaling pass: the sim and verify test binaries (incremental-
#     round parallel engine, symmetry folding, fold-vs-unfold bit
#     identity) under ThreadSanitizer — folding is on by default, so the
#     folded paths run sanitized — plus the bench_ext_des gates on the
#     Release tree: folded/unfolded predictions bitwise identical across
#     the golden corpus, thread bit-identity on the executed torus, and
#     the 393k-rank Vulcan scenario at >= 20x fold speedup and < 10 s
#     folded wall.
#
#   - a fault-injection pass: the src/inject test suite (ledger,
#     schedule, recovery matrix, DES injection, campaign) under
#     ThreadSanitizer — campaigns fan trials out over the shared task
#     pool, so the thread-bit-identity claims run sanitized — plus the
#     bench_ext_inject gates on the Release tree: a 1000-rank faulty
#     LULESH+FTI campaign, bit-identical at 1 thread vs the pool, every
#     trial completing, under 10 s of wall.
#
#   - a guided-search pass: the src/search test suite (space encoding, GP
#     surrogate, successive-halving bandit, Pareto bookkeeping, search
#     engine) under ThreadSanitizer — pooled cell evaluation claims bit
#     identity at any thread count — plus the bench_ext_search gates on
#     the Release tree: on every search_*.scenario golden-corpus machine
#     the guided search must find the exhaustive optimum bit-exactly and
#     a dominating-or-equal Pareto front within 10% of the sweep's
#     evaluations, thread-bit-identically.
#
#   - a slow pass: the stress/soak tests labelled `slow` in ctest, which
#     every other pass excludes with `ctest -LE slow`. Includes the
#     truly-unfolded 393k-rank Vulcan corpus replay (test_verify_slow).
#
#   - an optional coverage pass (FTBESST_COVERAGE=1 in the environment or
#     --coverage-only): instrumented build + line-coverage report for
#     src/ft and src/svc via gcovr or llvm-cov, whichever is installed.
#
# Usage: scripts/check.sh [--release-only|--tsan-only|--ubsan-only|--obs-only|--svc-only|--tier-only|--verify-only|--simd-only|--des-only|--inject-only|--search-only|--slow-only|--coverage-only]
#
# FTBESST_THREADS caps the shared task pool's workers if the machine is
# shared; ctest parallelism follows nproc.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_release=1
run_tsan=1
run_ubsan=1
run_obs=1
run_svc=1
run_tier=1
run_verify=1
run_simd=1
run_des=1
run_inject=1
run_search=1
run_slow=1
run_coverage=${FTBESST_COVERAGE:-0}
only() {  # keep exactly one pass
  run_release=0; run_tsan=0; run_ubsan=0; run_obs=0; run_svc=0
  run_tier=0; run_verify=0; run_simd=0; run_des=0; run_inject=0
  run_search=0; run_slow=0; run_coverage=0
}
case "${1:-}" in
  --release-only) only; run_release=1 ;;
  --tsan-only) only; run_tsan=1 ;;
  --ubsan-only) only; run_ubsan=1 ;;
  --obs-only) only; run_obs=1 ;;
  --svc-only) only; run_svc=1 ;;
  --tier-only) only; run_tier=1 ;;
  --verify-only) only; run_verify=1 ;;
  --simd-only) only; run_simd=1 ;;
  --des-only) only; run_des=1 ;;
  --inject-only) only; run_inject=1 ;;
  --search-only) only; run_search=1 ;;
  --slow-only) only; run_slow=1 ;;
  --coverage-only) only; run_coverage=1 ;;
  "") ;;
  *)
    echo "usage: $0 [--release-only|--tsan-only|--ubsan-only|--obs-only|--svc-only|--tier-only|--verify-only|--simd-only|--des-only|--inject-only|--search-only|--slow-only|--coverage-only]" >&2
    exit 2
    ;;
esac

if [ "$run_release" = 1 ]; then
  echo "== Release build + ctest =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs"
  ctest --test-dir build-release --output-on-failure -LE slow -j "$jobs"
fi

if [ "$run_obs" = 1 ]; then
  echo "== Observability pass (Release, obs runtime-enabled) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs"
  # Whole suite with obs forced on: observation must never change results.
  FTBESST_OBS=1 ctest --test-dir build-release --output-on-failure -LE slow -j "$jobs"

  # Overhead gate: the pool sweep bench (simulation-task duty cycle — the
  # instrumentation's real workload) must cost < 2% with obs enabled.
  # Scale the sweep up (FTBESST_BENCH_TRIALS) so one run is tens of ms,
  # interleave off/on runs, and compare best-of-5: scheduler noise on a
  # loaded host shows up as slow outliers, which min-of-N sheds.
  extract_dse_seconds() {
    sed -n 's/.*"dse_pool_seconds": \([0-9.eE+-]*\).*/\1/p'
  }
  run_sweep() {  # $1 = value of FTBESST_OBS for the run
    FTBESST_OBS="$1" FTBESST_BENCH_TRIALS=256 \
      ./build-release/bench/bench_ext_pool | extract_dse_seconds
  }
  min_val() { awk -v a="$1" -v b="$2" 'BEGIN{print (a<b || b=="")?a:b}'; }
  off=""
  on=""
  for _ in 1 2 3 4 5; do
    off=$(min_val "$(run_sweep 0)" "$off")
    on=$(min_val "$(run_sweep 1)" "$on")
  done
  echo "obs overhead gate: dse_pool_seconds off=$off on=$on"
  if ! awk -v on="$on" -v off="$off" 'BEGIN{exit !(on <= off * 1.02)}'; then
    echo "!! obs overhead gate FAILED: enabled run is more than 2% slower" >&2
    exit 1
  fi
  echo "obs overhead gate passed (<2%)"
fi

if [ "$run_tsan" = 1 ]; then
  # Probe whether the toolchain can actually link TSan (some minimal
  # containers lack libtsan); skip with a loud note instead of failing.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    echo "== ThreadSanitizer build + ctest =="
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan --output-on-failure -LE slow -j "$jobs"
  else
    echo "!! ThreadSanitizer unavailable on this toolchain; skipped" >&2
  fi
fi

if [ "$run_ubsan" = 1 ]; then
  # Same probe pattern as TSan: skip loudly if the toolchain lacks libubsan.
  if echo 'int main(){return 0;}' | c++ -fsanitize=undefined -x c++ - -o /tmp/ftbesst_ubsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_ubsan_probe
    echo "== UndefinedBehaviorSanitizer build + ctest =="
    cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=undefined
    cmake --build build-ubsan -j "$jobs"
    UBSAN_OPTIONS=halt_on_error=1 \
      ctest --test-dir build-ubsan --output-on-failure -LE slow -j "$jobs"
  else
    echo "!! UndefinedBehaviorSanitizer unavailable on this toolchain; skipped" >&2
  fi
fi

if [ "$run_svc" = 1 ]; then
  echo "== Prediction service pass =="
  # The server's event loop, per-connection write locks, single-flight
  # coalescing, and drain path are the raciest code in the tree: run the
  # whole svc test binary under TSan (same probe-and-skip as the TSan pass).
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target test_svc
    ./build-tsan/tests/test_svc
  else
    echo "!! ThreadSanitizer unavailable; svc tests run unsanitized" >&2
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$jobs" --target test_svc
    ./build-release/tests/test_svc
  fi

  # Load-generator gate: bench_ext_svc exits non-zero unless every response
  # was well-formed, hot bytes matched cold bytes, and a cache hit was at
  # least 100x faster than the cold computation.
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target bench_ext_svc
  ./build-release/bench/bench_ext_svc
  echo "svc pass: TSan tests + 100x cache-hit gate passed"
fi

if [ "$run_tier" = 1 ]; then
  echo "== Scaled-tier pass (router tests + soak/chaos under TSan, bench gates) =="
  # The router's reader/proxy/supervisor threads and the warm-handoff path
  # are the tier's raciest code. Run the router/consistent-hash tests and
  # the process-level soak + chaos harnesses under TSan; test_tier_slow
  # spawns the TSan-built `ftbesst worker` binary (exec-only spawn, no
  # fork-without-exec), so the worker side of every frame is sanitized
  # too. Same probe-and-skip as the other sanitizer passes.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target test_svc test_tier_slow
    ./build-tsan/tests/test_svc \
      --gtest_filter='Router.*:RingHash.*:HashRing.*:Server.Slowloris*:Server.PartialFrames*'
    ./build-tsan/tests/test_tier_slow
  else
    echo "!! ThreadSanitizer unavailable; tier tests run unsanitized" >&2
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$jobs" --target test_svc test_tier_slow
    ./build-release/tests/test_svc \
      --gtest_filter='Router.*:RingHash.*:HashRing.*:Server.Slowloris*:Server.PartialFrames*'
    ./build-release/tests/test_tier_slow
  fi

  # Load-generator gate: bench_ext_tier exits non-zero unless the 4-worker
  # tier sustains >= 2.5x the single-worker req/s at saturation, every
  # response is byte-identical to the single-process server's, and a
  # rolling restart under load completes with zero non-shed failures,
  # bounded p99, and a measurable journal-driven cache re-warm.
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target bench_ext_tier
  ./build-release/bench/bench_ext_tier > build-release/bench_ext_tier.json
  echo "tier pass: TSan router/soak/chaos suites + scaling/identity/restart gates passed"
fi

if [ "$run_verify" = 1 ]; then
  echo "== Verification pass (differential + corpus + fuzz) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target ftbesst test_verify
  # The three ISSUE-5 gates, straight from the CLI: 200 differential
  # scenarios (any failure is shrunk and dumped for triage), byte-exact
  # corpus replay at threads 1 and 4, and the budgeted fuzz campaigns.
  ./build-release/tools/ftbesst verify --differential 200 --seed 1 \
    --dump build-release/diff-failures
  ./build-release/tools/ftbesst verify --corpus tests/corpus
  ./build-release/tools/ftbesst verify --fuzz 2000 --seed 1
  # The harness's own test binary (checker-checks: injected mispricing
  # must be caught, shrinking is deterministic, obs stays bit-identical).
  ./build-release/tests/test_verify

  # Fuzz entries again under ASan+UBSan: hostile-input handling must be
  # clean under instrumentation, not just not-crash in Release. Same
  # probe-and-skip as the sanitizer passes.
  if echo 'int main(){return 0;}' | c++ -fsanitize=address,undefined -x c++ - -o /tmp/ftbesst_asan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_asan_probe
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=address,undefined
    cmake --build build-asan -j "$jobs" --target ftbesst
    UBSAN_OPTIONS=halt_on_error=1 \
      ./build-asan/tools/ftbesst verify --fuzz 2000 --seed 1
  else
    echo "!! ASan+UBSan unavailable on this toolchain; fuzz ran unsanitized" >&2
  fi
  echo "verify pass: differential + corpus + fuzz gates passed"
fi

if [ "$run_simd" = 1 ]; then
  echo "== SIMD pass (model suite per backend + bench gates) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target test_model bench_ext_simd
  # The model suite under each forced backend: the same bit-identity
  # property tests must pass whichever interpreter actually dispatches.
  # (The per-backend property tests inside the suite force their own
  # overrides; this additionally pins the *default* dispatch per run.)
  for backend in off unrolled avx2; do
    if [ "$backend" = avx2 ] && \
       ! grep -q '^flags.*\bavx2\b' /proc/cpuinfo 2>/dev/null; then
      echo "!! host has no AVX2; FTBESST_SIMD=avx2 suite skipped" >&2
      continue
    fi
    echo "-- model suite with FTBESST_SIMD=$backend"
    FTBESST_SIMD="$backend" ctest --test-dir build-release \
      --output-on-failure -LE slow -j "$jobs" -R '^(ExprSimd|ExprProgram|EvalBackendApi|AlignedBuffer|DatasetAligned|PredictBatch|SymRegParallel|Dataset)'
  done
  # bench_ext_simd exits non-zero on any bitwise divergence from Expr::eval
  # or if the DSE-sweep speedup gates (unrolled >= 1.8x, avx2 >= 4x at one
  # thread) fail.
  ./build-release/bench/bench_ext_simd > build-release/bench_ext_simd.json
  echo "simd pass: per-backend suites + divergence/speedup gates passed"
fi

if [ "$run_des" = 1 ]; then
  echo "== DES-scaling pass (folding + parallel engine under TSan, bench gates) =="
  # The incremental-round coordinator/worker protocol and the folded
  # engine paths are the sim kernel's raciest code; folding defaults on,
  # so the sim and verify suites exercise it under TSan directly (the
  # verify suite adds the fold-vs-unfold differential leg and the folded
  # corpus replay). Same probe-and-skip as the other sanitizer passes.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target test_sim test_verify
    ./build-tsan/tests/test_sim
    ./build-tsan/tests/test_verify
  else
    echo "!! ThreadSanitizer unavailable; sim/verify fold tests run unsanitized" >&2
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$jobs" --target test_sim test_verify
    ./build-release/tests/test_sim
    ./build-release/tests/test_verify
  fi

  # bench_ext_des exits non-zero if folded predictions diverge bitwise
  # from unfolded ones anywhere in the golden corpus, if the executed
  # torus is not bit-identical across thread counts, or if the 393k-rank
  # Vulcan scenario misses the >= 20x fold speedup / < 10 s wall gates.
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target bench_ext_des
  ./build-release/bench/bench_ext_des > build-release/bench_ext_des.json
  echo "des pass: TSan fold/parallel suites + fold-identity/speedup gates passed"
fi

if [ "$run_inject" = 1 ]; then
  echo "== Fault-injection pass (inject suite under TSan, campaign bench gates) =="
  # Campaigns fan independent trials out over the shared task pool and
  # claim bit-identity at any thread count; run the whole inject suite
  # (ledger, schedule, recovery matrix, DES injection, campaign) under
  # TSan so those claims are checked on sanitized threads. Same
  # probe-and-skip as the other sanitizer passes.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target test_inject
    ./build-tsan/tests/test_inject
  else
    echo "!! ThreadSanitizer unavailable; inject tests run unsanitized" >&2
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$jobs" --target test_inject
    ./build-release/tests/test_inject
  fi

  # bench_ext_inject exits non-zero if the 1000-rank faulty LULESH
  # campaign diverges bitwise between 1 thread and the pool, any trial
  # hits the simulation horizon, or the pooled campaign misses the < 10 s
  # wall gate.
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target bench_ext_inject
  ./build-release/bench/bench_ext_inject > build-release/bench_ext_inject.json
  echo "inject pass: TSan inject suite + campaign bit-identity/wall gates passed"
fi

if [ "$run_search" = 1 ]; then
  echo "== Guided-search pass (search suite under TSan, search-vs-exhaustive gates) =="
  # The search engine claims bit identity between serial and pooled cell
  # evaluation; run its whole suite (space, GP, bandit, Pareto, engine)
  # under TSan so the pooled paths are sanitized. Same probe-and-skip as
  # the other sanitizer passes.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target test_search
    ./build-tsan/tests/test_search
  else
    echo "!! ThreadSanitizer unavailable; search tests run unsanitized" >&2
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$jobs" --target test_search
    ./build-release/tests/test_search
  fi

  # bench_ext_search exits non-zero if, on any search_*.scenario corpus
  # machine, the guided search misses the exhaustive optimum bitwise,
  # fails to cover the exhaustive Pareto front, overspends the 10%
  # evaluation budget, diverges between thread counts, or (deterministic
  # machines) the successive-halving bandit drops the true best cell.
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target bench_ext_search
  ./build-release/bench/bench_ext_search > build-release/bench_ext_search.json
  echo "search pass: TSan search suite + search-vs-exhaustive gates passed"
fi

if [ "$run_slow" = 1 ]; then
  echo "== Slow pass (ctest -L slow: stress + soak) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs"
  ctest --test-dir build-release --output-on-failure -L slow -j "$jobs"
fi

if [ "$run_coverage" = 1 ]; then
  echo "== Coverage pass (src/ft + src/svc) =="
  cmake -B build-coverage -S . -DCMAKE_BUILD_TYPE=Debug -DFTBESST_COVERAGE=ON
  cmake --build build-coverage -j "$jobs" --target test_ft test_svc test_verify
  if [ -n "${CLANG_COVERAGE:-}" ] || c++ --version 2>/dev/null | grep -qi clang; then
    # Clang: source-based coverage via llvm-profdata/llvm-cov.
    if command -v llvm-profdata >/dev/null && command -v llvm-cov >/dev/null; then
      LLVM_PROFILE_FILE=build-coverage/ft.profraw ./build-coverage/tests/test_ft
      LLVM_PROFILE_FILE=build-coverage/svc.profraw ./build-coverage/tests/test_svc
      LLVM_PROFILE_FILE=build-coverage/verify.profraw ./build-coverage/tests/test_verify
      llvm-profdata merge -sparse build-coverage/*.profraw \
        -o build-coverage/merged.profdata
      llvm-cov report ./build-coverage/tests/test_ft \
        -instr-profile=build-coverage/merged.profdata \
        -object ./build-coverage/tests/test_svc \
        -object ./build-coverage/tests/test_verify \
        "$(pwd)/src/ft" "$(pwd)/src/svc"
    else
      echo "!! llvm-profdata/llvm-cov not installed; coverage skipped" >&2
    fi
  else
    # GCC: gcov counters, reported with gcovr when available.
    ./build-coverage/tests/test_ft
    ./build-coverage/tests/test_svc
    ./build-coverage/tests/test_verify
    if command -v gcovr >/dev/null; then
      gcovr --root . --filter 'src/ft/' --filter 'src/svc/' build-coverage
    else
      echo "!! gcovr not installed; raw .gcda counters left in build-coverage" >&2
    fi
  fi
fi

echo "check.sh: all requested configurations passed"
