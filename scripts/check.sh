#!/usr/bin/env bash
# Build and test the two configurations that gate every change:
#   - an optimized Release tree (what the benches measure), and
#   - a ThreadSanitizer tree (the task pool and the parallel DES engine are
#     concurrency-heavy; TSan keeps them honest).
#
# Usage: scripts/check.sh [--release-only|--tsan-only]
#
# FTBESST_THREADS caps the shared task pool's workers if the machine is
# shared; ctest parallelism follows nproc.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_release=1
run_tsan=1
case "${1:-}" in
  --release-only) run_tsan=0 ;;
  --tsan-only) run_release=0 ;;
  "") ;;
  *)
    echo "usage: $0 [--release-only|--tsan-only]" >&2
    exit 2
    ;;
esac

if [ "$run_release" = 1 ]; then
  echo "== Release build + ctest =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs"
  ctest --test-dir build-release --output-on-failure -j "$jobs"
fi

if [ "$run_tsan" = 1 ]; then
  # Probe whether the toolchain can actually link TSan (some minimal
  # containers lack libtsan); skip with a loud note instead of failing.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    echo "== ThreadSanitizer build + ctest =="
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan --output-on-failure -j "$jobs"
  else
    echo "!! ThreadSanitizer unavailable on this toolchain; skipped" >&2
  fi
fi

echo "check.sh: all requested configurations passed"
