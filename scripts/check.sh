#!/usr/bin/env bash
# Build and test the two configurations that gate every change:
#   - an optimized Release tree (what the benches measure), and
#   - a ThreadSanitizer tree (the task pool and the parallel DES engine are
#     concurrency-heavy; TSan keeps them honest), and
#   - an UndefinedBehaviorSanitizer tree (the compiled expression evaluator
#     leans on tight pointer/index arithmetic and bit-level float handling;
#     UBSan guards the batch kernels).
#
# Usage: scripts/check.sh [--release-only|--tsan-only|--ubsan-only]
#
# FTBESST_THREADS caps the shared task pool's workers if the machine is
# shared; ctest parallelism follows nproc.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_release=1
run_tsan=1
run_ubsan=1
case "${1:-}" in
  --release-only) run_tsan=0; run_ubsan=0 ;;
  --tsan-only) run_release=0; run_ubsan=0 ;;
  --ubsan-only) run_release=0; run_tsan=0 ;;
  "") ;;
  *)
    echo "usage: $0 [--release-only|--tsan-only|--ubsan-only]" >&2
    exit 2
    ;;
esac

if [ "$run_release" = 1 ]; then
  echo "== Release build + ctest =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs"
  ctest --test-dir build-release --output-on-failure -j "$jobs"
fi

if [ "$run_tsan" = 1 ]; then
  # Probe whether the toolchain can actually link TSan (some minimal
  # containers lack libtsan); skip with a loud note instead of failing.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/ftbesst_tsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_tsan_probe
    echo "== ThreadSanitizer build + ctest =="
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=thread
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan --output-on-failure -j "$jobs"
  else
    echo "!! ThreadSanitizer unavailable on this toolchain; skipped" >&2
  fi
fi

if [ "$run_ubsan" = 1 ]; then
  # Same probe pattern as TSan: skip loudly if the toolchain lacks libubsan.
  if echo 'int main(){return 0;}' | c++ -fsanitize=undefined -x c++ - -o /tmp/ftbesst_ubsan_probe 2>/dev/null; then
    rm -f /tmp/ftbesst_ubsan_probe
    echo "== UndefinedBehaviorSanitizer build + ctest =="
    cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFTBESST_SANITIZE=undefined
    cmake --build build-ubsan -j "$jobs"
    UBSAN_OPTIONS=halt_on_error=1 \
      ctest --test-dir build-ubsan --output-on-failure -j "$jobs"
  else
    echo "!! UndefinedBehaviorSanitizer unavailable on this toolchain; skipped" >&2
  fi
fi

echo "check.sh: all requested configurations passed"
