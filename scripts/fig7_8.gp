# Figs. 7-8 reproduction: cumulative full-application runtime, three FT
# scenarios, measured vs simulated.
set terminal pngcairo size 1200,500
set output "bench_data/fig7_8.png"
set datafile separator ","
set multiplot layout 1,2
set xlabel "timestep"
set ylabel "cumulative runtime (s)"
do for [f in "7 8"] {
  set title sprintf("Fig. %s (%s ranks)", f, f eq "7" ? "64" : "1000")
  plot sprintf("bench_data/fig%s_traces.csv", f) \
         using 1:2 skip 1 with lines lc rgb "#1f77b4" title "measured NoFT", \
       "" using 1:3 skip 1 with lines dt 2 lc rgb "#1f77b4" title "sim NoFT", \
       "" using 1:4 skip 1 with lines lc rgb "#d62728" title "measured L1", \
       "" using 1:5 skip 1 with lines dt 2 lc rgb "#d62728" title "sim L1", \
       "" using 1:6 skip 1 with lines lc rgb "#2ca02c" title "measured L1&L2", \
       "" using 1:7 skip 1 with lines dt 2 lc rgb "#2ca02c" title "sim L1&L2"
}
unset multiplot
