# Figs. 5-6 reproduction: kernel scaling, measured vs model, per kernel.
set terminal pngcairo size 1200,500
set output "bench_data/fig5_6.png"
set datafile separator ","
set multiplot layout 1,3
set logscale y
set xlabel "epr"
set ylabel "time (s)"
do for [k in "lulesh_timestep ckpt_l1 ckpt_l2"] {
  set title k
  plot sprintf("bench_data/fig5_6_%s.csv", k) \
         using 1:($5 eq "validation" ? $3 : 1/0) skip 1 \
         with points pt 7 lc rgb "#ff7f0e" title "measured", \
       "" using 1:4 skip 1 with points pt 1 lc rgb "#1f77b4" title "model"
}
unset multiplot
