# Fig. 1 reproduction: measured vs simulated per-timestep runtime vs ranks,
# validated region + prediction region with Monte-Carlo band.
set terminal pngcairo size 900,600
set output "bench_data/fig1.png"
set datafile separator ","
set logscale x 2
set xlabel "MPI ranks"
set ylabel "time per timestep (s)"
set title "CMT-bone on Vulcan-like torus: validated vs predicted"
set key left top
plot "bench_data/fig1_scatter.csv" using 1:4:5 skip 1 with filledcurves \
         fc rgb "#cce5ff" title "sim p10-p90", \
     "" using 1:3 skip 1 with linespoints lc rgb "#1f77b4" \
         title "simulated mean", \
     "" using 1:($2 eq "-" ? 1/0 : $2) skip 1 with points pt 7 \
         lc rgb "#ff7f0e" title "benchmarked"
