// Example: fault-injection study (the paper's future-work Cases 2 & 4,
// implemented here). Given a machine reliability estimate, which checkpoint
// plan minimizes expected time-to-solution? Sweeps plans against fault
// injection and reports expected runtime, rollbacks, and unrecoverable
// restarts — the kind of question FT-aware MODSIM exists to answer before
// a machine is built.

#include <iostream>
#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/montecarlo.hpp"
#include "core/workflow.hpp"
#include "ft/checkpoint_cost.hpp"
#include "ft/young_daly.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  apps::QuartzTestbed machine({}, fti);
  apps::CampaignSpec campaign;
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL2),
      apps::checkpoint_kernel(ft::Level::kL4)};
  const auto calibration = apps::run_campaign(machine, campaign, kernels);
  const core::ModelSuite models = core::develop_models(calibration, {});

  constexpr int kEpr = 15;
  constexpr std::int64_t kRanksUsed = 64;
  constexpr int kSteps = 2000;
  constexpr double kNodeMtbfHours = 0.25;  // a flaky machine

  auto topology = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
  core::ArchBEO quartz("quartz", topology, net::CommParams{}, 36);
  quartz.set_fti(fti);
  models.bind_into(quartz);
  quartz.set_fault_process(ft::FaultProcess(kNodeMtbfHours * 3600.0, 1.0));
  ft::CheckpointCostModel cost_model({}, fti);
  for (ft::Level level :
       {ft::Level::kL1, ft::Level::kL2, ft::Level::kL4})
    quartz.bind_restart(
        level, std::make_shared<model::ConstantModel>(cost_model.restart_cost(
                   level, apps::lulesh_checkpoint_bytes(kEpr), kRanksUsed)));

  const std::vector<core::Scenario> plans{
      {"No FT", {}},
      {"L1 / 40", {{ft::Level::kL1, 40}}},
      {"L2 / 40", {{ft::Level::kL2, 40}}},
      {"L2 / 160", {{ft::Level::kL2, 160}}},
      {"L1 / 40 + L4 / 400",
       {{ft::Level::kL1, 40}, {ft::Level::kL4, 400}}},
      {"L4 / 200", {{ft::Level::kL4, 200}}},
  };

  std::cout << "Fault-injection plan comparison: LULESH_FTI, epr " << kEpr
            << ", " << kRanksUsed << " ranks, " << kSteps
            << " timesteps, node MTBF " << kNodeMtbfHours << " h ("
            << kNodeMtbfHours * 3600.0 / (kRanksUsed / fti.node_size)
            << " s system MTBF), node losses destroy local checkpoints\n\n";

  util::TextTable t("Expected cost of each checkpoint plan (20 trials)");
  t.set_header({"plan", "mean runtime (s)", "p90 (s)", "faults", "rollbacks",
                "full restarts"});
  for (const auto& plan : plans) {
    apps::LuleshConfig cfg;
    cfg.epr = kEpr;
    cfg.ranks = kRanksUsed;
    cfg.timesteps = kSteps;
    cfg.plan = plan.plan;
    cfg.fti = fti;
    const core::AppBEO app = apps::build_lulesh_fti(cfg);
    core::EngineOptions opt;
    opt.inject_faults = true;
    opt.downtime_seconds = 2.0;
    opt.max_sim_seconds = 4 * 3600.0;
    opt.seed = 97;
    const auto ens = core::run_ensemble(app, quartz, opt, 20);
    t.add_row({plan.name, util::TextTable::fmt(ens.total.mean, 1),
               util::TextTable::fmt(util::quantile(ens.totals, 0.9), 1),
               util::TextTable::fmt(ens.mean_faults, 1),
               util::TextTable::fmt(ens.mean_rollbacks, 1),
               util::TextTable::fmt(ens.mean_full_restarts, 1)});
  }
  t.print(std::cout);

  const std::vector<double> point{static_cast<double>(kEpr),
                                  static_cast<double>(kRanksUsed)};
  const double ts =
      models.kernels.at(apps::kLuleshTimestep).model->predict(point);
  const double c2 = models.kernels.at(apps::checkpoint_kernel(ft::Level::kL2))
                        .model->predict(point);
  const double mtbf_sys =
      kNodeMtbfHours * 3600.0 / (kRanksUsed / fti.node_size);
  std::cout << "\nYoung-optimal L2 period at this reliability: "
            << ft::young_interval(c2, mtbf_sys) / ts
            << " timesteps — compare the L2/40 vs L2/160 rows.\n"
            << "Takeaways: L1-only still restarts from scratch on node loss "
               "(its files die with the node); L2 converts those into cheap "
               "rollbacks; L4 is the most robust but its PFS flush costs "
               "the most per instance.\n";
  return 0;
}
