// Quickstart: the whole FT-BESST workflow in ~80 lines.
//
//  1. Benchmark an application kernel and a checkpoint kernel on a machine
//     (here: the bundled synthetic Quartz-like testbed).
//  2. Develop performance models from the calibration data (Model
//     Development phase).
//  3. Bind the models into an architecture BEO and simulate the full
//     application with and without fault tolerance (Co-Design phase).
//
// Build & run:  ./examples/quickstart

#include <iostream>
#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/montecarlo.hpp"
#include "core/workflow.hpp"
#include "net/topology.hpp"

using namespace ftbesst;

int main() {
  // --- 1. Calibration campaign on the "machine" -------------------------
  ft::FtiConfig fti;
  fti.group_size = 4;  // FTI groups of 4 nodes
  fti.node_size = 2;   // 2 ranks per node
  apps::QuartzTestbed machine({}, fti);

  apps::CampaignSpec campaign;              // epr {5..25} x ranks {8..1000}
  campaign.samples_per_point = 10;          // repeated samples capture noise
  const auto calibration = apps::run_campaign(
      machine, campaign,
      {apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1)});

  // --- 2. Model Development ---------------------------------------------
  model::FitOptions fit;                    // kAuto: symreg vs features
  const core::ModelSuite models = core::develop_models(calibration, fit);
  for (const auto& report : models.reports)
    std::cout << report.kernel << ": MAPE "
              << report.fit.full_mape << "% via "
              << model::to_string(report.fit.chosen) << "\n";

  // --- 3. Co-Design: simulate LULESH_FTI on a Quartz-like machine --------
  auto topology = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
  core::ArchBEO quartz("quartz", topology, net::CommParams{}, 36);
  quartz.set_fti(fti);
  models.bind_into(quartz);

  for (bool with_ft : {false, true}) {
    apps::LuleshConfig cfg;
    cfg.epr = 15;
    cfg.ranks = 512;
    cfg.timesteps = 200;
    cfg.fti = fti;
    if (with_ft) cfg.plan = {{ft::Level::kL1, 40}};
    const core::AppBEO app = apps::build_lulesh_fti(cfg);

    const auto ensemble =
        core::run_ensemble(app, quartz, core::EngineOptions{}, 20);
    std::cout << (with_ft ? "L1 checkpointing every 40 steps" : "no FT")
              << ": " << ensemble.total.mean << " s (stddev "
              << ensemble.total.stddev << ")\n";
  }
  std::cout << "Done. See examples/lulesh_fti_dse for the full case study."
            << std::endl;
  return 0;
}
