// Example: executable end-to-end resilience — no models, the real thing.
//
// A MiniHydro simulation (actual floating-point state) runs "distributed"
// over 16 ranks; its protected arrays live in the in-memory FTI runtime.
// We checkpoint at two levels, kill nodes mid-run (destroying their
// checkpoint material), recover, and verify bit-exact continuation against
// an uninterrupted golden run. This is the behaviour that everything else
// in the library *models* — demonstrated here at data fidelity.

#include <cstring>
#include <iostream>

#include "apps/minihydro.hpp"
#include "ft/fti_runtime.hpp"

using namespace ftbesst;

namespace {

/// Serialize a rank's slab of the density field (the "protected state" of
/// this demo; a real code would protect every array).
ft::FtiRuntime::Blob slab_of(const apps::MiniHydro& solver, int rank,
                             int ranks) {
  const auto& rho = solver.density();
  const std::size_t chunk = rho.size() / static_cast<std::size_t>(ranks);
  ft::FtiRuntime::Blob blob(chunk * sizeof(double));
  std::memcpy(blob.data(), rho.data() + chunk * static_cast<std::size_t>(rank),
              blob.size());
  return blob;
}

}  // namespace

int main() {
  constexpr int kRanks = 16;  // 8 nodes, 2 FTI groups of 4
  constexpr int kSteps = 30;
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;

  // Golden run: no failures.
  apps::MiniHydro golden(16);
  for (int s = 0; s < kSteps; ++s) golden.step(1e-3);

  // Protected run: checkpoint every 10 steps (L3 Reed-Solomon), lose two
  // nodes of one group at step 17, recover, continue.
  apps::MiniHydro solver(16);
  ft::FtiRuntime runtime(fti, kRanks);
  int completed = 0;
  auto protect_all = [&]() {
    for (int r = 0; r < kRanks; ++r)
      runtime.protect(r, slab_of(solver, r, kRanks));
  };
  protect_all();

  int step = 0;
  bool injected = false;
  while (step < kSteps) {
    if (step == 17 && !injected) {
      injected = true;
      std::cout << "step 17: killing nodes 1 and 3 (group 0 loses 2 of 4 — "
                   "exactly the L3 Reed-Solomon tolerance)\n";
      runtime.fail_node(1);
      runtime.fail_node(3);
      const auto used = runtime.recover();
      if (!used) {
        std::cerr << "unrecoverable — demo failed\n";
        return 1;
      }
      std::cout << "recovered from checkpoint id " << *used
                << "; replaying lost timesteps\n";
      // Rebuild solver state from the recovered protected data: the demo
      // protects rho only, so rewind to the checkpointed step and replay.
      solver = apps::MiniHydro(16);
      for (int s = 0; s < completed; ++s) solver.step(1e-3);
      step = completed;
      continue;
    }
    solver.step(1e-3);
    ++step;
    if (step % 10 == 0) {
      protect_all();
      runtime.checkpoint(ft::Level::kL3);
      completed = step;
      std::cout << "step " << step << ": L3 checkpoint taken\n";
    }
  }

  const bool identical = solver.density() == golden.density();
  std::cout << "final state vs uninterrupted golden run: "
            << (identical ? "BIT-EXACT" : "DIVERGED") << "\n"
            << "total mass " << solver.total_mass() << " (golden "
            << golden.total_mass() << ")\n";
  return identical ? 0 : 1;
}
