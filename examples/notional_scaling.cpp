// Example: notional-system prediction — the BE-SST capability highlighted
// by Fig. 1 ("validated up to our allocation ... predicted up to 1 million
// cores") and the prediction regions of Figs. 5-6. Models are calibrated on
// the reachable design space, then used to explore machines that do not
// exist: more ranks than the allocation, bigger problems than node memory
// allows, and an architectural variant with a faster interconnect.

#include <iostream>
#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/montecarlo.hpp"
#include "core/workflow.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  apps::QuartzTestbed machine({}, fti);
  apps::CampaignSpec campaign;  // validated region only (Table II)
  const auto calibration = apps::run_campaign(
      machine, campaign,
      {apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
       apps::checkpoint_kernel(ft::Level::kL2)});
  const core::ModelSuite models = core::develop_models(calibration, {});

  // A notional Quartz successor: twice the leaves => room for 13824 ranks
  // at node_size 2, and a faster fabric.
  auto topology = std::make_shared<net::TwoStageFatTree>(220, 32, 48);
  net::CommParams comm;
  comm.bandwidth = 25e9;  // 200 Gb/s-class fabric
  core::ArchBEO notional("quartz-next", topology, comm, 36);
  notional.set_fti(fti);
  models.bind_into(notional);

  std::cout << "Notional-system prediction (models calibrated on epr<=25, "
               "ranks<=1000 only)\n\n";

  util::TextTable t("Predicted LULESH_FTI runtime, 200 timesteps, L1+L2 "
                    "checkpointing every 40");
  t.set_header({"epr", "ranks", "predicted_s", "p10_s", "p90_s", "note"});
  struct Point {
    int epr;
    std::int64_t ranks;
    const char* note;
  };
  for (const Point& pt : std::initializer_list<Point>{
           {15, 512, "inside validated region"},
           {15, 1728, "12^3 ranks: beyond the 1000-rank allocation"},
           {15, 4096, "16^3 ranks"},
           {15, 13824, "24^3 ranks: beyond Quartz itself"},
           {30, 512, "epr 30: needs more node memory than Quartz has"},
           {40, 1728, "bigger problem AND bigger machine"}}) {
    apps::LuleshConfig cfg;
    cfg.epr = pt.epr;
    cfg.ranks = pt.ranks;
    cfg.timesteps = 200;
    cfg.plan = {{ft::Level::kL1, 40}, {ft::Level::kL2, 40}};
    cfg.fti = fti;
    const core::AppBEO app = apps::build_lulesh_fti(cfg);
    const auto ens =
        core::run_ensemble(app, notional, core::EngineOptions{}, 20);
    t.add_row({std::to_string(pt.epr), std::to_string(pt.ranks),
               util::TextTable::fmt(ens.total.mean, 2),
               util::TextTable::fmt(util::quantile(ens.totals, 0.1), 2),
               util::TextTable::fmt(util::quantile(ens.totals, 0.9), 2),
               pt.note});
  }
  t.print(std::cout);
  std::cout << "\nEvery row below the first is unreachable on the real "
               "machine; this is the design-space region BE-SST exists to "
               "prune before committing to detailed simulation.\n";
  return 0;
}
