// Example: architectural DSE of the interconnect — the "plug-and-play
// subsystems" use of BE-SST. The same Stencil3D application (explicit
// halo-exchange communication) is evaluated across fabric configurations,
// twice each: with the closed-form collective model (the coarse sweep tool)
// and with the executed DES fat-tree (switch components, per-port
// serialization) to check the closed form in the configuration we'd pick.

#include <iostream>
#include <memory>

#include "apps/stencil3d.hpp"
#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "core/engine_des.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  apps::Stencil3dConfig cfg;
  cfg.nx = 96;
  cfg.ranks = 64;
  cfg.sweeps = 100;
  const core::AppBEO app = apps::build_stencil3d(cfg);

  struct Fabric {
    const char* name;
    double bandwidth;
    double sw_latency;
    net::NodeId spines;
  };
  const std::vector<Fabric> fabrics{
      {"EDR-class (12.5 GB/s, 4 spines)", 12.5e9, 120e-9, 4},
      {"HDR-class (25 GB/s, 4 spines)", 25e9, 110e-9, 4},
      {"HDR-class, doubled spine (8)", 25e9, 110e-9, 8},
      {"NDR-class (50 GB/s, 8 spines)", 50e9, 100e-9, 8},
  };

  std::cout << "Interconnect DSE for Stencil3D (nx=96, 64 ranks, 100 "
               "sweeps; compute fixed at 2 ms/sweep)\n\n";
  util::TextTable t("Predicted runtime per fabric");
  t.set_header({"fabric", "analytic engine (s)", "DES network (s)",
                "comm share (DES)"});
  for (const Fabric& fabric : fabrics) {
    auto topo = std::make_shared<net::TwoStageFatTree>(8, 8, fabric.spines);
    net::CommParams params;
    params.bandwidth = fabric.bandwidth;
    params.sw_latency = fabric.sw_latency;
    core::ArchBEO arch(fabric.name, topo, params, 8);
    ft::FtiConfig fti;
    fti.group_size = 4;
    fti.node_size = 2;
    arch.set_fti(fti);
    arch.bind_kernel(apps::kStencilSweep,
                     std::make_shared<model::ConstantModel>(0.002));

    const double analytic = core::run_bsp(app, arch).total_seconds;
    core::EngineOptions networked;
    networked.use_des_network = true;
    const double des = core::run_des(app, arch, networked).total_seconds;
    const double compute = 100 * 0.002;
    t.add_row({fabric.name, util::TextTable::fmt(analytic, 3),
               util::TextTable::fmt(des, 3),
               util::TextTable::pct(100.0 * (des - compute) / des, 0)});
  }
  t.print(std::cout);
  std::cout << "\nThe coarse engine ranks the fabrics instantly; the DES "
               "network confirms the ranking (and exposes contention the "
               "closed form averages away) before any detailed simulation "
               "is commissioned.\n";
  return 0;
}
