// Example: the two execution engines. The coarse (bulk-synchronous) engine
// is BE-SST's fast path for Monte-Carlo DSE sweeps; the discrete-event
// engine runs the identical AppBEO as a component simulation on the PDES
// kernel (the SST role). In deterministic mode they agree exactly; the DES
// path additionally exposes per-rank structure, and the PDES kernel itself
// supports conservative parallel execution (demonstrated at the end).

#include <iostream>
#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "core/engine_des.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

using namespace ftbesst;

namespace {
/// Minimal self-ticking component for the parallel PDES demo.
class Ticker final : public sim::Component {
 public:
  Ticker(std::string name, int ticks, sim::SimTime interval)
      : Component(std::move(name)), ticks_(ticks), interval_(interval) {}
  void init() override { schedule_self(interval_); }
  void handle_event(sim::PortId, std::unique_ptr<sim::Payload>) override {
    if (++count < ticks_) schedule_self(interval_);
  }
  int count = 0;

 private:
  int ticks_;
  sim::SimTime interval_;
};
}  // namespace

int main() {
  // A small machine and a LULESH program with explicit communication, so
  // the network model matters.
  auto topology = std::make_shared<net::TwoStageFatTree>(8, 8, 4);
  core::ArchBEO arch("minicluster", topology, net::CommParams{}, 8);
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  arch.set_fti(fti);
  arch.bind_kernel(apps::kLuleshTimestep,
                   std::make_shared<model::ConstantModel>(0.018));
  arch.bind_kernel(apps::checkpoint_kernel(ft::Level::kL1),
                   std::make_shared<model::ConstantModel>(0.11));

  apps::LuleshConfig cfg;
  cfg.epr = 10;
  cfg.ranks = 64;
  cfg.timesteps = 50;
  cfg.plan = {{ft::Level::kL1, 10}};
  cfg.fti = fti;
  const core::AppBEO app = apps::build_lulesh_explicit_comm(cfg);

  const core::RunResult coarse = core::run_bsp(app, arch);
  const core::RunResult des = core::run_des(app, arch);

  util::TextTable t("Coarse engine vs discrete-event engine (deterministic)");
  t.set_header({"engine", "total_s", "timesteps", "ckpt instances",
                "instr executed"});
  auto row = [&](const char* name, const core::RunResult& r) {
    t.add_row({name, util::TextTable::fmt(r.total_seconds, 6),
               std::to_string(r.timestep_end_times.size()),
               std::to_string(r.checkpoint_timesteps.size()),
               std::to_string(r.instructions_executed)});
  };
  row("coarse (BSP)", coarse);
  row("discrete-event", des);
  t.print(std::cout);
  std::cout << "agreement: |delta| = "
            << std::abs(coarse.total_seconds - des.total_seconds)
            << " s (instruction counts differ by design: the DES engine "
               "counts per-rank executions)\n\n";

  // Parallel PDES demonstration: same component graph, 1 vs 4 threads,
  // identical results.
  auto build = [](sim::Simulation& sim) {
    std::vector<Ticker*> tickers;
    for (int i = 0; i < 32; ++i)
      tickers.push_back(sim.add_component<Ticker>(
          "t" + std::to_string(i), 2000,
          static_cast<sim::SimTime>(3 + i % 5)));
    for (int i = 0; i + 1 < 32; i += 2)
      sim.connect(tickers[i]->id(), 0, tickers[i + 1]->id(), 0,
                  sim::SimTime{500});
    return tickers;
  };
  sim::Simulation serial_sim, parallel_sim;
  auto serial_tickers = build(serial_sim);
  auto parallel_tickers = build(parallel_sim);
  const auto serial_stats = serial_sim.run();
  const auto parallel_stats = parallel_sim.run_parallel(4);
  bool identical = true;
  for (std::size_t i = 0; i < serial_tickers.size(); ++i)
    identical &= serial_tickers[i]->count == parallel_tickers[i]->count;
  std::cout << "PDES kernel: " << serial_stats.events_processed
            << " events serial, " << parallel_stats.events_processed
            << " events on 4 threads across " << parallel_stats.windows
            << " conservative windows; results "
            << (identical ? "identical" : "DIVERGED") << "\n";
  return 0;
}
