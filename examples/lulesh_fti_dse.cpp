// Example: fault-tolerance design-space exploration for LULESH_FTI —
// the paper's case study driven through the public API. Sweeps the three
// FT scenarios over the Table II parameter grid and prints, per point, the
// predicted runtime and FT overhead, then recommends the cheapest scenario
// meeting a resilience requirement ("survive any single node loss").

#include <iostream>
#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/pruning.hpp"
#include "core/workflow.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  // Calibrate + model (Model Development phase).
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  apps::QuartzTestbed machine({}, fti);
  apps::CampaignSpec campaign;
  const auto calibration = apps::run_campaign(
      machine, campaign,
      {apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
       apps::checkpoint_kernel(ft::Level::kL2)});
  const core::ModelSuite models = core::develop_models(calibration, {});

  auto topology = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
  core::ArchBEO quartz("quartz", topology, net::CommParams{}, 36);
  quartz.set_fti(fti);
  models.bind_into(quartz);

  // Co-Design phase: scenarios x parameter grid through run_dse().
  const std::vector<core::Scenario> scenarios{
      {"No FT", {}},
      {"L1", {{ft::Level::kL1, 40}}},
      {"L1 & L2", {{ft::Level::kL1, 40}, {ft::Level::kL2, 40}}},
  };
  std::vector<std::vector<double>> points;
  for (int epr : {10, 15, 20, 25})
    for (std::int64_t ranks : {std::int64_t{64}, std::int64_t{512},
                               std::int64_t{1000}})
      points.push_back({static_cast<double>(epr),
                        static_cast<double>(ranks)});

  auto make_app = [&](const core::Scenario& scenario,
                      const std::vector<double>& p) {
    apps::LuleshConfig cfg;
    cfg.epr = static_cast<int>(p[0]);
    cfg.ranks = static_cast<std::int64_t>(p[1]);
    cfg.timesteps = 200;
    cfg.plan = scenario.plan;
    cfg.fti = fti;
    return apps::build_lulesh_fti(cfg);
  };
  const auto dse = core::run_dse(scenarios, points, make_app, quartz,
                                 core::EngineOptions{}, 10);

  util::TextTable t("LULESH_FTI DSE: predicted runtime (s) per scenario");
  t.set_header({"epr", "ranks", "No FT", "L1", "L1 & L2",
                "L1 overhead", "L1&L2 overhead"});
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double no_ft = dse[i].ensemble.total.mean;
    const double l1 = dse[n + i].ensemble.total.mean;
    const double l1l2 = dse[2 * n + i].ensemble.total.mean;
    t.add_row({util::TextTable::fmt(points[i][0], 0),
               util::TextTable::fmt(points[i][1], 0),
               util::TextTable::fmt(no_ft, 2), util::TextTable::fmt(l1, 2),
               util::TextTable::fmt(l1l2, 2),
               util::TextTable::pct(100.0 * (l1 / no_ft - 1.0), 0),
               util::TextTable::pct(100.0 * (l1l2 / no_ft - 1.0), 0)});
  }
  t.print(std::cout);

  // Resilience-constrained recommendation: the cheapest plan whose highest
  // level survives a single node loss (L1 does not; L2 does).
  std::cout << "\nRequirement: survive any single node loss.\n";
  ft::FailureSet one_node;
  one_node.nodes = {0};
  one_node.kind = ft::FailureKind::kNodeLoss;
  for (const auto& scenario : scenarios) {
    if (scenario.plan.empty()) continue;
    const ft::CheckpointScheduler sched(scenario.plan);
    const bool ok =
        ft::recoverable(sched.max_level(), fti, 512, one_node);
    std::cout << "  " << scenario.name << ": "
              << (ok ? "meets requirement" : "insufficient (local-only)")
              << "\n";
  }
  std::cout << "=> 'L1 & L2' is the cheapest compliant plan; its predicted "
               "cost premium over L1 alone is the table's last column.\n";

  // Design-space reduction: keep the cheapest compliant quarter, flag the
  // untrustworthy predictions for fine-grained study, prune the rest —
  // the paper's "exploration & reduction" step made explicit.
  std::vector<core::DsePoint> compliant(dse.begin() + 2 * n, dse.end());
  core::PruneOptions prune;
  prune.keep_fraction = 0.25;
  prune.uncertainty_threshold = 0.10;
  const auto decisions = core::prune_design_space(compliant, prune);
  int kept = 0, detail = 0, pruned = 0;
  for (const auto& d : decisions) {
    kept += d.verdict == core::Verdict::kKeep;
    detail += d.verdict == core::Verdict::kDetailStudy;
    pruned += d.verdict == core::Verdict::kPrune;
  }
  std::cout << "\nDesign-space reduction over the compliant (L1 & L2) "
               "configurations: " << kept << " kept, " << detail
            << " flagged for fine-grained study, " << pruned
            << " pruned of " << decisions.size() << ".\n";
  return 0;
}
