// Example: the Model Development phase against a REAL machine — this one.
//
// MiniHydro is an actual executable hydrodynamics kernel; LocalTestbed
// times it with std::chrono. We calibrate performance models on small
// grids, predict the cost of larger grids the calibration never saw, then
// actually run those larger grids and score the prediction — the complete
// instrument -> benchmark -> model -> predict -> validate loop of the
// paper's Fig. 2, with genuine wall-clock noise instead of a synthetic
// testbed.

#include <iostream>

#include "apps/testbed_local.hpp"
#include "model/fitting.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const apps::LocalTestbed machine;

  // --- calibrate on small grids (fast to run) ---
  const std::vector<int> calibration_sizes{12, 16, 20, 24, 28, 32, 36, 40};
  constexpr int kSamples = 8;
  std::cout << "Benchmarking minihydro_step on this machine (grids 12..40, "
            << kSamples << " samples each)...\n";
  const model::Dataset data =
      machine.run_campaign(calibration_sizes, kSamples);

  model::FitOptions fit;
  fit.seed = 99;
  // Symbolic regression extrapolates power-law compute kernels far more
  // reliably than an unconstrained feature basis (see bench_ext_modelcmp).
  fit.method = model::ModelMethod::kSymbolicRegression;
  const auto fitted = model::fit_kernel_model(data, fit);
  std::cout << "model:  " << fitted.report.formula << "\n"
            << "method: " << model::to_string(fitted.report.chosen)
            << ", calibration MAPE "
            << util::TextTable::pct(fitted.report.full_mape) << ", residual "
            << "sigma " << fitted.report.residual_sigma << "\n\n";

  // --- predict grids beyond the calibrated range, then check for real ---
  util::TextTable t("Prediction vs actual measurement (extrapolation)");
  t.set_header({"n", "cells", "predicted_s", "measured_s", "error"});
  std::vector<double> actual, predicted;
  for (int n : {48, 56, 64}) {
    const std::vector<double> point{static_cast<double>(n)};
    const double pred = fitted.model->predict(point);
    const auto samples =
        machine.measure_kernel(apps::kMiniHydroStep, point, 5);
    const double meas = util::mean(samples);
    actual.push_back(meas);
    predicted.push_back(pred);
    t.add_row({std::to_string(n), std::to_string(n * n * n),
               util::TextTable::fmt(pred, 6), util::TextTable::fmt(meas, 6),
               util::TextTable::pct(100.0 * (pred - meas) / meas, 1)});
  }
  t.print(std::cout);
  std::cout << "extrapolation MAPE: "
            << util::TextTable::pct(util::mape_percent(actual, predicted))
            << " — the models were fitted on grids <= 40 only.\n";
  return 0;
}
