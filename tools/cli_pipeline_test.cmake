# CLI pipeline smoke test: calibrate -> fit -> predict -> simulate must all
# succeed and chain through the on-disk text formats.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_step(${FTBESST} calibrate --out . --samples 5)
run_step(${FTBESST} fit --data lulesh_timestep.csv --out lulesh_timestep.model)
run_step(${FTBESST} fit --data ckpt_l1.csv --out ckpt_l1.model)
run_step(${FTBESST} predict --model lulesh_timestep.model --params 15,512)
run_step(${FTBESST} crossval --data ckpt_l1.csv --folds 4)
run_step(${FTBESST} simulate --models . --epr 15 --ranks 512 --plan L1:40
         --trials 5)

# --obs-out must produce the three observability artifacts, and the trace
# must be Chrome-trace JSON (Perfetto-loadable) with at least one event.
run_step(${FTBESST} simulate --models . --epr 15 --ranks 512 --plan L1:40
         --trials 5 --obs-out obs)
foreach(artifact metrics.json trace.json summary.txt)
  if(NOT EXISTS ${WORK_DIR}/obs/${artifact})
    message(FATAL_ERROR "--obs-out did not write obs/${artifact}")
  endif()
endforeach()
file(READ ${WORK_DIR}/obs/trace.json trace_json)
if(NOT trace_json MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "obs/trace.json is not a Chrome trace: ${trace_json}")
endif()
if(NOT trace_json MATCHES "\"ph\": \"X\"")
  message(FATAL_ERROR "obs/trace.json contains no complete events")
endif()
file(READ ${WORK_DIR}/obs/metrics.json metrics_json)
foreach(counter "pool.tasks" "bsp.runs" "mc.trials")
  if(NOT metrics_json MATCHES "\"${counter}\"")
    message(FATAL_ERROR "obs/metrics.json is missing ${counter}")
  endif()
endforeach()

file(WRITE ${WORK_DIR}/faults.csv
     "100,3,loss\n250,1,crash\n380,7,loss\n505,2,loss\n660,4,loss\n")
run_step(${FTBESST} faultlog --log faults.csv --nodes 16)

# Prediction-service smoke: serve the fitted models over a unix socket in
# the background, answer a predict and a cold + cached simulate, drain via
# the shutdown op (exit 0), then again via SIGTERM (exit 0).
file(WRITE ${WORK_DIR}/svc_smoke.sh [=[#!/bin/sh
set -e
FTBESST="$1"
SOCK="$2"

wait_ready() {
  i=0
  until "$FTBESST" client --socket "$SOCK" --request '{"op":"ping"}' \
      >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -ge 150 ]; then
      echo "server never became ready" >&2
      kill "$3" 2>/dev/null || true
      exit 1
    fi
    sleep 0.1
  done
}

"$FTBESST" serve --models . --socket "$SOCK" 2>serve1.log &
pid=$!
wait_ready "$FTBESST" "$SOCK" "$pid"

"$FTBESST" client --socket "$SOCK" \
  --request '{"op":"predict","kernel":"lulesh_timestep","params":[15,512]}' \
  | grep -q '"ok":true'

REQ='{"op":"simulate","epr":15,"ranks":512,"plan":"L1:40","timesteps":100,"trials":5}'
cold=$("$FTBESST" client --socket "$SOCK" --request "$REQ")
echo "$cold" | grep -q '"cached":false'
hot=$("$FTBESST" client --socket "$SOCK" --request "$REQ")
echo "$hot" | grep -q '"cached":true'

"$FTBESST" client --socket "$SOCK" --request '{"op":"shutdown"}' \
  | grep -q '"draining":true'
wait "$pid"   # graceful drain: the daemon itself must exit 0

# Round two: the same drain path must trigger from SIGTERM.
"$FTBESST" serve --models . --socket "$SOCK" 2>serve2.log &
pid=$!
wait_ready "$FTBESST" "$SOCK" "$pid"
kill -TERM "$pid"
wait "$pid"
echo "svc smoke passed"
]=])
run_step(sh svc_smoke.sh ${FTBESST} svc.sock)
