# CLI pipeline smoke test: calibrate -> fit -> predict -> simulate must all
# succeed and chain through the on-disk text formats.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_step(${FTBESST} calibrate --out . --samples 5)
run_step(${FTBESST} fit --data lulesh_timestep.csv --out lulesh_timestep.model)
run_step(${FTBESST} fit --data ckpt_l1.csv --out ckpt_l1.model)
run_step(${FTBESST} predict --model lulesh_timestep.model --params 15,512)
run_step(${FTBESST} crossval --data ckpt_l1.csv --folds 4)
run_step(${FTBESST} simulate --models . --epr 15 --ranks 512 --plan L1:40
         --trials 5)

file(WRITE ${WORK_DIR}/faults.csv
     "100,3,loss\n250,1,crash\n380,7,loss\n505,2,loss\n660,4,loss\n")
run_step(${FTBESST} faultlog --log faults.csv --nodes 16)
