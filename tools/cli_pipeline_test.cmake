# CLI pipeline smoke test: calibrate -> fit -> predict -> simulate must all
# succeed and chain through the on-disk text formats.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_step(${FTBESST} calibrate --out . --samples 5)
run_step(${FTBESST} fit --data lulesh_timestep.csv --out lulesh_timestep.model)
run_step(${FTBESST} fit --data ckpt_l1.csv --out ckpt_l1.model)
run_step(${FTBESST} predict --model lulesh_timestep.model --params 15,512)
run_step(${FTBESST} crossval --data ckpt_l1.csv --folds 4)
run_step(${FTBESST} simulate --models . --epr 15 --ranks 512 --plan L1:40
         --trials 5)

# --obs-out must produce the three observability artifacts, and the trace
# must be Chrome-trace JSON (Perfetto-loadable) with at least one event.
run_step(${FTBESST} simulate --models . --epr 15 --ranks 512 --plan L1:40
         --trials 5 --obs-out obs)
foreach(artifact metrics.json trace.json summary.txt)
  if(NOT EXISTS ${WORK_DIR}/obs/${artifact})
    message(FATAL_ERROR "--obs-out did not write obs/${artifact}")
  endif()
endforeach()
file(READ ${WORK_DIR}/obs/trace.json trace_json)
if(NOT trace_json MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "obs/trace.json is not a Chrome trace: ${trace_json}")
endif()
if(NOT trace_json MATCHES "\"ph\": \"X\"")
  message(FATAL_ERROR "obs/trace.json contains no complete events")
endif()
file(READ ${WORK_DIR}/obs/metrics.json metrics_json)
foreach(counter "pool.tasks" "bsp.runs" "mc.trials")
  if(NOT metrics_json MATCHES "\"${counter}\"")
    message(FATAL_ERROR "obs/metrics.json is missing ${counter}")
  endif()
endforeach()

file(WRITE ${WORK_DIR}/faults.csv
     "100,3,loss\n250,1,crash\n380,7,loss\n505,2,loss\n660,4,loss\n")
run_step(${FTBESST} faultlog --log faults.csv --nodes 16)
