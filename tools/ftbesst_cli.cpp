// ftbesst — command-line driver for the FT-BESST workflow.
//
//   ftbesst calibrate --out DIR [--samples N] [--seed S]
//       Run the Table II benchmarking campaign on the bundled Quartz-like
//       testbed and write one calibration CSV per kernel.
//
//   ftbesst fit --data FILE.csv --out FILE.model
//       [--method auto|symreg|features|table] [--seed S]
//       Fit a performance model to a calibration CSV (Model Development)
//       and save it; prints the validation report.
//
//   ftbesst predict --model FILE.model --params a,b[,c...]
//       Evaluate a saved model at a parameter point.
//
//   ftbesst simulate --models DIR --epr E --ranks R
//       [--timesteps T] [--plan L1:40,L2:40] [--trials N] [--seed S]
//       [--mtbf-hours H [--downtime S]]
//       Full-system LULESH_FTI simulation (Co-Design) using saved models;
//       optional fault injection.
//
//   ftbesst faultlog --log FILE.csv --nodes N
//       Estimate a fault model (MTBF, Weibull shape, node-loss fraction)
//       from an observed failure log (CSV: time_seconds,node,kind with
//       kind in {loss,crash}) and recommend a plan at that rate.
//
//   ftbesst inject --scenario FILE.scenario [--trials N] [--threads T]
//       [--engine des|bsp] [--seed S] [--faultlog FILE] [--faultlog-csv F]
//       [--replay FILE [--trial K]]
//       In-simulation fault-injection campaign (paper Cases 1/2) on a
//       .scenario machine/application description: N trials varying only
//       the fault schedule, makespan distribution + per-level recovery
//       statistics. --faultlog dumps the campaign's fault records in the
//       replayable `ftbesst-faultlog v1` text format (--faultlog-csv as
//       CSV); --replay re-runs one recorded trial's schedule exactly
//       (--trial selects it, default 0).
//
//   ftbesst plan --node-mtbf-hours H --nodes N [--work-hours W]
//       [--soft-fraction P] [--low-cost C1] [--high-cost C4] ...
//       Recommend a two-level checkpoint plan (closed-form optimizer).
//
//   ftbesst crossval --data FILE.csv [--folds 5] [--seed S]
//       K-fold cross-validation of the regression methods on a calibration
//       CSV; prints per-method held-out MAPE distributions.
//
//   ftbesst run-experiment --config FILE.ini
//       Self-contained experiment from an INI description: calibrate on the
//       bundled testbed, fit models, simulate, report (see
//       examples/experiment.ini for the schema).
//
//   ftbesst serve --socket PATH [--tcp-port P] [--models DIR]
//       [--queue-capacity N] [--cache-mb M] [--cache-ttl S] [--deadline-ms D]
//       [--workers N [--readers R] [--proxy-threads T] [--vnodes V]]
//       Long-running prediction daemon: loads (or calibrates) the models
//       once, then serves predict/simulate/dse requests over a
//       length-prefixed JSON protocol with a sharded result cache and
//       explicit overload rejection. SIGTERM/SIGINT drain gracefully.
//       With --workers N the daemon becomes the horizontally scaled tier:
//       a consistent-hash router fronting N worker processes (`ftbesst
//       worker`), each owning one shard of the cache on its own unix
//       socket. The models are calibrated/loaded ONCE and persisted next to
//       the socket so every worker warm-starts from disk instead of
//       re-fitting. Dead workers are respawned and re-warmed from the
//       router's response journal.
//
//   ftbesst serve --rolling-restart 1 (--socket PATH | --tcp-port P)
//       Control verb: ask a *running* tier to restart its workers one at a
//       time with warm-cache handoff; prints the router's reply.
//
//   ftbesst worker --socket PATH (--models DIR | --analytic 1) [--name N]
//       [--queue-capacity N] [--cache-mb M] [--read-deadline-ms D]
//       One tier worker shard (normally spawned by `serve --workers`, but
//       runnable standalone). --analytic serves the cheap deterministic
//       test registry — what the tier tests and bench_ext_tier use.
//
//   ftbesst client (--socket PATH | --tcp-port P) [--request JSON]
//       [--timeout S]
//       Send one request (from --request or stdin) to a running daemon and
//       print the reply JSON; exits 0 on ok, 1 on an error reply.
//
//   ftbesst search [--models DIR] [--app lulesh|stencil3d]
//       [--scenarios "name=plan;name=plan"] [--eprs A,B|--nxs A,B]
//       [--ranks A,B] [--timesteps T] [--trials N] [--seed S]
//       [--mtbf-hours H] [--downtime D] [--budget U | --budget-frac F]
//       [--method auto|gp|bandit] [--mode single|pareto] [--batch B]
//       [--init I] [--top-k K]
//       Budget-aware guided search (src/search) over the same
//       {scenario x point} grid `dse` sweeps exhaustively: GP surrogate +
//       expected improvement (or successive halving) under a trial-unit
//       budget, default 10% of the exhaustive cost. Prints the search-op
//       response JSON (best cell, Pareto front in pareto mode, evaluation
//       history).
//
//   ftbesst verify [--differential N [--dump DIR]] [--fuzz ITERS]
//       [--corpus DIR [--update 1] [--threads-check 0|1]]
//       [--search-corpus DIR [--budget-frac F]]
//       [--fold-corpus DIR [--max-unfolded-ranks R]] [--seed S]
//       Verification harness (docs/TESTING.md): cross-engine differential
//       checking over N generated scenarios (failures are shrunk and, with
//       --dump, written as .scenario reproducers), in-process structure-
//       aware fuzzing of the json/wire/plan/model parsers, and byte-exact
//       golden-corpus replay (--update 1 re-records the .expected files).
//       --fold-corpus prices each corpus entry through run_des with
//       symmetry folding on and off and requires byte-identical
//       predictions (entries above --max-unfolded-ranks run folded only).
//       --search-corpus replays the search_*.scenario golden machines
//       through the search_vs_exhaustive leg (guided search must hit the
//       exhaustive optimum and cover its Pareto front within the budget,
//       bit-identically across thread counts).
//       Exits 1 on any disagreement, fuzz bug, or corpus mismatch.
//
// All file formats are the plain-text ones from model/serialize.hpp.

#include <unistd.h>

#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/montecarlo.hpp"
#include "core/workflow.hpp"
#include "ft/checkpoint_cost.hpp"
#include "ft/fault_log.hpp"
#include "ft/multilevel_opt.hpp"
#include "ft/young_daly.hpp"
#include "model/crossval.hpp"
#include "model/fitting.hpp"
#include "model/serialize.hpp"
#include "apps/stencil3d.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "inject/campaign.hpp"
#include "svc/client.hpp"
#include "svc/registry.hpp"
#include "svc/router.hpp"
#include "svc/server.hpp"
#include "svc/worker.hpp"
#include "util/args.hpp"
#include "util/config.hpp"
#include "verify/corpus.hpp"
#include "verify/differential.hpp"
#include "verify/fuzz.hpp"
#include "verify/scenario.hpp"
#include "verify/search_check.hpp"

using namespace ftbesst;

namespace {

int usage() {
  std::cerr << "usage: ftbesst "
               "<calibrate|fit|predict|simulate|inject|search|serve|worker|"
               "client|verify> [flags]\n"
               "every command also accepts --obs-out DIR (write metrics.json,\n"
               "trace.json, summary.txt from the observability layer)\n"
               "see the header of tools/ftbesst_cli.cpp or README.md\n";
  return 2;
}

int cmd_calibrate(const util::ArgParser& args) {
  args.expect_known({"out", "group-size", "node-size", "machine-seed",
                     "samples", "seed", "obs-out"});
  const std::string out_dir = args.get_string("out", ".");
  ft::FtiConfig fti;
  fti.group_size = static_cast<int>(args.get_int("group-size", 4));
  fti.node_size = static_cast<int>(args.get_int("node-size", 2));
  apps::QuartzTestbed testbed({}, fti,
                              static_cast<std::uint64_t>(
                                  args.get_int("machine-seed", 0x9a27)));
  apps::CampaignSpec spec;
  spec.samples_per_point = static_cast<int>(args.get_int("samples", 10));
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, "ckpt_l1", "ckpt_l2", "ckpt_l3", "ckpt_l4"};
  const auto datasets = apps::run_campaign(testbed, spec, kernels);
  for (const auto& [kernel, data] : datasets) {
    const std::string path = out_dir + "/" + kernel + ".csv";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    model::save_dataset(os, data);
    std::cout << "wrote " << path << " (" << data.num_rows() << " points x "
              << spec.samples_per_point << " samples)\n";
  }
  return 0;
}

int cmd_fit(const util::ArgParser& args) {
  args.expect_known({"data", "out", "method", "seed", "obs-out"});
  const auto data_path = args.get("data");
  const auto out_path = args.get("out");
  if (!data_path || !out_path) return usage();
  std::ifstream is(*data_path);
  if (!is) {
    std::cerr << "cannot read " << *data_path << "\n";
    return 1;
  }
  const model::Dataset data = model::load_dataset(is);

  model::FitOptions opt;
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string method = args.get_string("method", "auto");
  if (method == "auto") opt.method = model::ModelMethod::kAuto;
  else if (method == "symreg") opt.method = model::ModelMethod::kSymbolicRegression;
  else if (method == "features") opt.method = model::ModelMethod::kFeatureRegression;
  else if (method == "table") opt.method = model::ModelMethod::kTableMultilinear;
  else {
    std::cerr << "unknown --method " << method << "\n";
    return 2;
  }
  const auto fitted = model::fit_kernel_model(data, opt);
  std::cout << "method:         " << model::to_string(fitted.report.chosen)
            << "\nformula:        " << fitted.report.formula
            << "\ntrain MAPE:     " << fitted.report.train_mape << "%"
            << "\ntest MAPE:      " << fitted.report.test_mape << "%"
            << "\nfull MAPE:      " << fitted.report.full_mape << "%"
            << "\nresidual sigma: " << fitted.report.residual_sigma << "\n";
  if (fitted.report.chosen == model::ModelMethod::kTableMultilinear ||
      fitted.report.chosen == model::ModelMethod::kTableNearest) {
    std::cerr << "note: table models are rebuilt from the CSV, not saved\n";
    return 0;
  }
  std::ofstream os(*out_path);
  if (!os) {
    std::cerr << "cannot write " << *out_path << "\n";
    return 1;
  }
  model::save_model(os, *fitted.noisy_model);
  std::cout << "wrote " << *out_path << "\n";
  return 0;
}

int cmd_predict(const util::ArgParser& args) {
  args.expect_known({"model", "params", "obs-out"});
  const auto model_path = args.get("model");
  const auto params_text = args.get("params");
  if (!model_path || !params_text) return usage();
  std::ifstream is(*model_path);
  if (!is) {
    std::cerr << "cannot read " << *model_path << "\n";
    return 1;
  }
  const auto model = model::load_model(is);
  std::vector<double> point;
  for (const std::string& v : util::ArgParser::split_list(*params_text))
    point.push_back(std::stod(v));
  std::cout << model->predict(point) << "\n";
  return 0;
}

int cmd_simulate(const util::ArgParser& args) {
  args.expect_known({"models", "epr", "ranks", "timesteps", "trials",
                     "group-size", "node-size", "plan", "seed", "mtbf-hours",
                     "downtime", "obs-out"});
  const auto models_dir = args.get("models");
  if (!models_dir) return usage();
  const int epr = static_cast<int>(args.get_int("epr", 15));
  const std::int64_t ranks = args.get_int("ranks", 64);
  const int timesteps = static_cast<int>(args.get_int("timesteps", 200));
  const std::size_t trials =
      static_cast<std::size_t>(args.get_int("trials", 20));

  apps::LuleshConfig cfg;
  cfg.epr = epr;
  cfg.ranks = ranks;
  cfg.timesteps = timesteps;
  cfg.fti.group_size = static_cast<int>(args.get_int("group-size", 4));
  cfg.fti.node_size = static_cast<int>(args.get_int("node-size", 2));
  if (const auto plan = args.get("plan")) cfg.plan = core::parse_plan(*plan);

  auto topo = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
  core::ArchBEO arch("quartz", topo, net::CommParams{}, 36);
  arch.set_fti(cfg.fti);

  auto load = [&](const std::string& kernel) {
    const std::string path = *models_dir + "/" + kernel + ".model";
    std::ifstream is(path);
    if (!is)
      throw std::invalid_argument("missing model file " + path +
                                  " (run `ftbesst fit` first)");
    arch.bind_kernel(kernel, model::load_model(is));
  };
  load(apps::kLuleshTimestep);
  for (const auto& entry : cfg.plan)
    load(apps::checkpoint_kernel(entry.level));

  core::EngineOptions opt;
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (args.has("mtbf-hours")) {
    opt.inject_faults = true;
    opt.downtime_seconds = args.get_double("downtime", 10.0);
    arch.set_fault_process(
        ft::FaultProcess(args.get_double("mtbf-hours", 24.0) * 3600.0, 1.0));
    ft::CheckpointCostModel cost({}, cfg.fti);
    for (const auto& entry : cfg.plan)
      arch.bind_restart(entry.level,
                        std::make_shared<model::ConstantModel>(
                            cost.restart_cost(entry.level,
                                              apps::lulesh_checkpoint_bytes(epr),
                                              ranks)));
  }

  const core::AppBEO app = apps::build_lulesh_fti(cfg);
  const auto ens = core::run_ensemble(app, arch, opt, trials);
  std::cout << "runtime mean:   " << ens.total.mean << " s\n"
            << "runtime stddev: " << ens.total.stddev << " s\n"
            << "runtime min:    " << ens.total.min << " s\n"
            << "runtime max:    " << ens.total.max << " s\n";
  if (opt.inject_faults)
    std::cout << "mean faults:    " << ens.mean_faults << "\n"
              << "mean rollbacks: " << ens.mean_rollbacks << "\n"
              << "full restarts:  " << ens.mean_full_restarts << "\n";
  return 0;
}

int cmd_faultlog(const util::ArgParser& args) {
  args.expect_known({"log", "nodes", "obs-out"});
  const auto log_path = args.get("log");
  if (!log_path) return usage();
  std::ifstream is(*log_path);
  if (!is) {
    std::cerr << "cannot read " << *log_path << "\n";
    return 1;
  }
  std::vector<ft::FaultEvent> events;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string time_s, node_s, kind_s;
    if (!std::getline(ls, time_s, ',') || !std::getline(ls, node_s, ',') ||
        !std::getline(ls, kind_s))
      throw std::invalid_argument("bad fault-log line: " + line);
    ft::FaultEvent ev;
    ev.time = std::stod(time_s);
    ev.node = std::stoll(node_s);
    ev.kind = kind_s == "crash" ? ft::FailureKind::kProcessCrash
                                : ft::FailureKind::kNodeLoss;
    events.push_back(ev);
  }
  const auto nodes = args.get_int("nodes", 1);
  const ft::FaultModelEstimate est = ft::estimate_fault_model(events, nodes);
  std::cout << "events:             " << est.events << "\n"
            << "system MTBF:        " << est.system_mtbf << " s\n"
            << "node MTBF:          " << est.node_mtbf << " s ("
            << est.node_mtbf / 3600.0 << " h)\n"
            << "Weibull shape:      " << est.weibull_shape
            << (est.weibull_shape < 0.95   ? " (bursty)"
                : est.weibull_shape > 1.05 ? " (regular)"
                                           : " (~exponential)")
            << "\n"
            << "node-loss fraction: " << est.node_loss_fraction << "\n";
  return 0;
}

int cmd_inject(const util::ArgParser& args) {
  args.expect_known({"scenario", "trials", "threads", "engine", "seed",
                     "faultlog", "faultlog-csv", "replay", "trial",
                     "obs-out"});
  const auto scenario_path = args.get("scenario");
  if (!scenario_path) return usage();
  std::ifstream is(*scenario_path);
  if (!is) {
    std::cerr << "cannot read " << *scenario_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const verify::Scenario scenario = verify::Scenario::from_text(buffer.str());
  verify::BuiltScenario built = verify::build(scenario);
  built.options.inject_faults = true;
  if (args.has("seed"))
    built.options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  inject::CampaignOptions opt;
  opt.trials = static_cast<std::size_t>(args.get_int("trials", 32));
  opt.threads = static_cast<unsigned>(args.get_int("threads", 0));
  const std::string engine = args.get_string("engine", "des");
  if (engine == "des") opt.use_des = true;
  else if (engine == "bsp") opt.use_des = false;
  else {
    std::cerr << "unknown --engine " << engine << " (expected des|bsp)\n";
    return 2;
  }

  if (const auto replay_path = args.get("replay")) {
    // Replay one recorded trial's fault schedule verbatim: deterministic,
    // so a single trial reproduces the recorded run exactly.
    std::ifstream rs(*replay_path);
    if (!rs) {
      std::cerr << "cannot read " << *replay_path << "\n";
      return 1;
    }
    std::ostringstream rb;
    rb << rs.rdbuf();
    const ft::FaultLog log = ft::FaultLog::from_text(rb.str());
    const auto trial = args.get_int("trial", 0);
    built.options.fault_trace = log.to_trace(trial);
    opt.trials = 1;
    std::cout << "replaying trial " << trial << " ("
              << built.options.fault_trace.size() << " fault(s)) from "
              << *replay_path << "\n";
  }
  opt.engine = built.options;

  const inject::CampaignResult res =
      inject::run_campaign(built.app, built.arch, opt);
  std::cout << "trials:          " << res.totals.size() << "\n"
            << "makespan mean:   " << res.total.mean << " s\n"
            << "makespan stddev: " << res.total.stddev << " s\n"
            << "makespan p10:    " << res.p10 << " s\n"
            << "makespan p50:    " << res.p50 << " s\n"
            << "makespan p90:    " << res.p90 << " s\n"
            << "mean faults:     " << res.mean_faults << "\n"
            << "mean rollbacks:  " << res.mean_rollbacks << "\n"
            << "full restarts:   " << res.mean_full_restarts << "\n"
            << "mean lost work:  " << res.mean_lost_work << " s\n";
  for (int level = 1; level <= 4; ++level)
    if (res.mean_recoveries_by_level[level - 1] > 0.0)
      std::cout << "  L" << level << " recoveries:  "
                << res.mean_recoveries_by_level[level - 1] << "\n";
  if (res.incomplete_trials > 0)
    std::cout << "incomplete:      " << res.incomplete_trials
              << " trial(s) hit the horizon\n";

  if (const auto out_path = args.get("faultlog")) {
    std::ofstream os(*out_path, std::ios::binary);
    if (!os) {
      std::cerr << "cannot write " << *out_path << "\n";
      return 1;
    }
    os << res.fault_log.to_text();
    std::cout << "wrote " << *out_path << " (" << res.fault_log.size()
              << " fault record(s), replayable with --replay)\n";
  }
  if (const auto csv_path = args.get("faultlog-csv")) {
    std::ofstream os(*csv_path, std::ios::binary);
    if (!os) {
      std::cerr << "cannot write " << *csv_path << "\n";
      return 1;
    }
    res.fault_log.write_csv(os);
    std::cout << "wrote " << *csv_path << "\n";
  }
  return 0;
}

int cmd_plan(const util::ArgParser& args) {
  args.expect_known({"work-hours", "node-mtbf-hours", "nodes", "soft-fraction",
                     "downtime", "low-cost", "low-restart", "high-cost",
                     "high-restart", "obs-out"});
  // Recommend a two-level checkpoint plan for a machine description.
  ft::MultilevelWorkload w;
  w.work = args.get_double("work-hours", 10.0) * 3600.0;
  const double node_mtbf = args.get_double("node-mtbf-hours", 24.0) * 3600.0;
  const auto nodes = args.get_int("nodes", 256);
  w.system_mtbf = node_mtbf / static_cast<double>(nodes);
  w.soft_fraction = args.get_double("soft-fraction", 0.8);
  w.downtime = args.get_double("downtime", 60.0);

  ft::LevelSpec low{ft::Level::kL1, args.get_double("low-cost", 1.0),
                    args.get_double("low-restart", 1.0)};
  ft::LevelSpec high{ft::Level::kL4, args.get_double("high-cost", 30.0),
                     args.get_double("high-restart", 60.0)};
  const ft::TwoLevelPlan plan = ft::optimize_two_level(w, low, high);
  if (!std::isfinite(plan.expected_runtime)) {
    std::cerr << "no viable plan: the machine thrashes at this fault rate\n";
    return 1;
  }
  std::cout << "system MTBF:        " << w.system_mtbf << " s\n"
            << "optimal L1 period:  " << plan.tau_low << " s of work\n"
            << "optimal L4 period:  " << plan.tau_high << " s of work\n"
            << "expected runtime:   " << plan.expected_runtime << " s ("
            << 100.0 * plan.overhead_fraction << "% overhead)\n"
            << "Young (L4-only):    "
            << ft::young_interval(high.checkpoint_cost, w.system_mtbf)
            << " s\n";
  return 0;
}

int cmd_crossval(const util::ArgParser& args) {
  args.expect_known({"data", "folds", "seed", "obs-out"});
  const auto data_path = args.get("data");
  if (!data_path) return usage();
  std::ifstream is(*data_path);
  if (!is) {
    std::cerr << "cannot read " << *data_path << "\n";
    return 1;
  }
  const model::Dataset data = model::load_dataset(is);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 5));
  for (model::ModelMethod method :
       {model::ModelMethod::kFeatureRegression,
        model::ModelMethod::kSymbolicRegression}) {
    model::FitOptions opt;
    opt.method = method;
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const auto report = model::cross_validate(data, opt, folds);
    std::cout << model::to_string(method) << ": held-out MAPE mean "
              << report.fold_mape.mean << "% (min " << report.fold_mape.min
              << "%, max " << report.fold_mape.max << "%, " << folds
              << " folds)\n";
  }
  return 0;
}

int cmd_run_experiment(const util::ArgParser& args) {
  args.expect_known({"config", "obs-out"});
  const auto config_path = args.get("config");
  if (!config_path) return usage();
  std::ifstream is(*config_path);
  if (!is) {
    std::cerr << "cannot read " << *config_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const util::Config cfg = util::Config::parse(buffer.str());

  // --- observability (optional [obs] section) ---
  const std::string obs_out = cfg.get_string("obs", "out", "");
  if (cfg.get_bool("obs", "enabled", false) || !obs_out.empty())
    obs::enable(true);

  // --- machine & FTI ---
  ft::FtiConfig fti;
  fti.group_size = static_cast<int>(cfg.get_int("machine", "group_size", 4));
  fti.node_size = static_cast<int>(cfg.get_int("machine", "node_size", 2));
  apps::QuartzTestbed testbed(
      {}, fti,
      static_cast<std::uint64_t>(cfg.get_int("machine", "machine_seed",
                                             0x9a27)));
  auto topo = std::make_shared<net::TwoStageFatTree>(
      cfg.get_int("machine", "leaves", 94),
      cfg.get_int("machine", "nodes_per_leaf", 32),
      cfg.get_int("machine", "spines", 24));
  net::CommParams comm;
  comm.bandwidth = cfg.get_double("machine", "bandwidth", 12.5e9);
  core::ArchBEO arch("machine", topo, comm,
                     static_cast<int>(
                         cfg.get_int("machine", "ranks_per_node", 36)));
  arch.set_fti(fti);

  // --- checkpoint plan ---
  std::vector<ft::PlanEntry> plan;
  for (const std::string& key : cfg.keys("plan")) {
    if (key.size() < 2 || (key[0] != 'L' && key[0] != 'l'))
      throw std::invalid_argument("[plan] keys must be L1..L4, got " + key);
    const int level = std::stoi(key.substr(1));
    plan.push_back({static_cast<ft::Level>(level),
                    static_cast<int>(cfg.get_int("plan", key, 40))});
  }

  // --- application ---
  const std::string app_name = cfg.get_string("experiment", "app", "lulesh");
  const auto ranks = cfg.get_int("experiment", "ranks", 64);
  const int timesteps =
      static_cast<int>(cfg.get_int("experiment", "timesteps", 200));
  std::vector<std::string> kernels;
  std::optional<core::AppBEO> app;
  if (app_name == "lulesh") {
    apps::LuleshConfig lc;
    lc.epr = static_cast<int>(cfg.get_int("experiment", "epr", 15));
    lc.ranks = ranks;
    lc.timesteps = timesteps;
    lc.plan = plan;
    lc.fti = fti;
    app.emplace(apps::build_lulesh_fti(lc));
    kernels.push_back(apps::kLuleshTimestep);
  } else if (app_name == "stencil3d") {
    apps::Stencil3dConfig sc;
    sc.nx = static_cast<int>(cfg.get_int("experiment", "nx", 32));
    sc.ranks = ranks;
    sc.sweeps = timesteps;
    sc.plan = plan;
    sc.fti = fti;
    app.emplace(apps::build_stencil3d(sc));
    kernels.push_back(apps::kStencilSweep);
  } else {
    throw std::invalid_argument("[experiment] app must be lulesh|stencil3d");
  }
  for (const auto& entry : plan)
    kernels.push_back(apps::checkpoint_kernel(entry.level));

  // --- calibrate + model ---
  apps::CampaignSpec spec;
  spec.samples_per_point =
      static_cast<int>(cfg.get_int("machine", "samples", 10));
  spec.seed = static_cast<std::uint64_t>(
      cfg.get_int("experiment", "seed", 2021));
  const auto calibration = apps::run_campaign(testbed, spec, kernels);
  model::FitOptions fit;
  fit.seed = spec.seed;
  const core::ModelSuite suite = core::develop_models(calibration, fit);
  suite.bind_into(arch);
  std::cout << "models:\n";
  for (const auto& report : suite.reports)
    std::cout << "  " << report.kernel << ": MAPE "
              << report.fit.full_mape << "% ("
              << model::to_string(report.fit.chosen) << ")\n";

  // --- faults ---
  core::EngineOptions opt;
  opt.seed = spec.seed ^ 0x5151;
  if (cfg.get_bool("faults", "enabled", false)) {
    opt.inject_faults = true;
    opt.downtime_seconds = cfg.get_double("faults", "downtime", 10.0);
    arch.set_fault_process(ft::FaultProcess(
        cfg.get_double("faults", "node_mtbf_hours", 24.0) * 3600.0,
        cfg.get_double("faults", "node_loss_fraction", 1.0)));
    ft::CheckpointCostModel cost({}, fti);
    for (const auto& entry : plan)
      arch.bind_restart(
          entry.level,
          std::make_shared<model::ConstantModel>(cost.restart_cost(
              entry.level, app->checkpoint_bytes_per_rank(), ranks)));
  }

  // --- simulate ---
  const auto trials =
      static_cast<std::size_t>(cfg.get_int("experiment", "trials", 20));
  const auto ens = core::run_ensemble(*app, arch, opt, trials);
  std::cout << "runtime mean:   " << ens.total.mean << " s\n"
            << "runtime stddev: " << ens.total.stddev << " s\n"
            << "runtime p10/p90: " << util::quantile(ens.totals, 0.1) << " / "
            << util::quantile(ens.totals, 0.9) << " s\n";
  if (opt.inject_faults)
    std::cout << "mean faults:    " << ens.mean_faults << "\n"
              << "mean rollbacks: " << ens.mean_rollbacks << "\n"
              << "full restarts:  " << ens.mean_full_restarts << "\n";
  if (!obs_out.empty()) {
    if (obs::write_output_dir(obs_out))
      std::cerr << "obs: wrote metrics.json, trace.json, summary.txt to "
                << obs_out << "\n";
    else
      std::cerr << "obs: failed to write " << obs_out << "\n";
  }
  return 0;
}

// argv[0] for respawnable worker processes: the running binary itself, so a
// tier started from a build tree respawns the exact same build.
std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "ftbesst";  // PATH-resolved fallback
  buf[n] = '\0';
  return std::string(buf);
}

std::shared_ptr<const svc::Registry> build_registry(
    const util::ArgParser& args) {
  if (args.get_int("analytic", 0) != 0)
    return std::make_shared<const svc::Registry>(svc::Registry::analytic());
  svc::RegistryOptions reg_opt;
  reg_opt.models_dir = args.get_string("models", "");
  reg_opt.samples = static_cast<int>(args.get_int("samples", 5));
  reg_opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));
  reg_opt.fti.group_size = static_cast<int>(args.get_int("group-size", 4));
  reg_opt.fti.node_size = static_cast<int>(args.get_int("node-size", 2));
  std::cerr << (reg_opt.models_dir.empty()
                    ? "calibrating models on the bundled testbed...\n"
                    : "loading models from " + reg_opt.models_dir + "\n");
  auto registry =
      std::make_shared<const svc::Registry>(svc::Registry::open(reg_opt));
  for (const auto& report : registry->reports())
    std::cerr << "  " << report.kernel << ": MAPE " << report.fit.full_mape
              << "% (" << model::to_string(report.fit.chosen) << ")\n";
  return registry;
}

int cmd_worker(const util::ArgParser& args) {
  args.expect_known({"socket", "name", "models", "analytic", "samples",
                     "seed", "group-size", "node-size", "queue-capacity",
                     "cache-mb", "cache-ttl", "cache-shards", "deadline-ms",
                     "read-deadline-ms", "obs-out"});
  svc::WorkerOptions opt;
  opt.socket_path = args.get_string("socket", "");
  if (opt.socket_path.empty()) {
    std::cerr << "worker needs --socket PATH\n";
    return 2;
  }
  opt.name = args.get_string("name", "worker");
  opt.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 64));
  opt.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  opt.read_deadline_ms = args.get_double("read-deadline-ms", 30000.0);
  opt.cache.max_bytes =
      static_cast<std::size_t>(args.get_int("cache-mb", 64)) << 20;
  opt.cache.ttl_seconds = args.get_double("cache-ttl", 0.0);
  opt.cache.shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 8));

  svc::Worker worker(build_registry(args), opt);
  worker.start();
  svc::Server::install_signal_handlers(&worker.server());
  std::cerr << "worker " << opt.name << " serving unix:" << opt.socket_path
            << "\n";
  worker.wait();
  svc::Server::install_signal_handlers(nullptr);
  return 0;
}

int cmd_serve_tier(const util::ArgParser& args, std::size_t workers) {
  const std::string socket = args.get_string("socket", "");
  if (socket.empty()) {
    std::cerr << "serve --workers needs --socket PATH (worker shard sockets "
                 "derive from it)\n";
    return 2;
  }
  const bool analytic = args.get_int("analytic", 0) != 0;

  // Calibrate-once warm start: whatever registry this process built gets
  // persisted next to the socket, and every worker (re)spawn loads it from
  // disk instead of re-fitting. Analytic registries are free to rebuild, so
  // they skip the disk round trip.
  std::string worker_models = args.get_string("models", "");
  if (!analytic && worker_models.empty()) {
    auto registry = build_registry(args);
    worker_models = socket + ".models";
    const std::size_t written = registry->save_models(worker_models);
    std::cerr << "persisted " << written << " models to " << worker_models
              << " for worker warm start\n";
  }

  svc::RouterOptions opt;
  opt.unix_socket_path = socket;
  opt.tcp_port = static_cast<int>(args.get_int("tcp-port", -1));
  opt.readers = static_cast<std::size_t>(args.get_int("readers", 2));
  opt.proxy_threads =
      static_cast<std::size_t>(args.get_int("proxy-threads", 16));
  opt.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 256));
  opt.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  opt.read_deadline_ms = args.get_double("read-deadline-ms", 30000.0);
  opt.vnodes = static_cast<std::size_t>(args.get_int("vnodes", 128));

  const std::string exe = self_exe_path();
  for (std::size_t i = 0; i < workers; ++i) {
    svc::WorkerSpec spec;
    spec.socket_path = socket + ".w" + std::to_string(i);
    spec.spawn_argv = {exe,
                       "worker",
                       "--socket",
                       spec.socket_path,
                       "--name",
                       "worker-" + std::to_string(i),
                       "--queue-capacity",
                       std::to_string(args.get_int("queue-capacity", 64)),
                       "--cache-mb",
                       std::to_string(args.get_int("cache-mb", 64))};
    if (analytic) {
      spec.spawn_argv.insert(spec.spawn_argv.end(), {"--analytic", "1"});
    } else {
      spec.spawn_argv.insert(spec.spawn_argv.end(),
                             {"--models", worker_models});
    }
    opt.workers.push_back(std::move(spec));
  }

  svc::Router router(std::move(opt));
  router.start();
  svc::Router::install_signal_handlers(&router);
  std::cerr << "tier router on unix:" << socket;
  if (router.tcp_port() >= 0)
    std::cerr << " and 127.0.0.1:" << router.tcp_port();
  std::cerr << " fronting " << workers << " workers\n";
  if (router.wait_healthy(120.0))
    std::cerr << "ready (all workers healthy)\n";
  else
    std::cerr << "warning: some workers still unhealthy after 120 s\n";
  router.wait();
  svc::Router::install_signal_handlers(nullptr);
  const auto stats = router.stats();
  std::cerr << "drained: " << stats.completed << " completed, " << stats.routed
            << " routed, " << stats.coalesced << " coalesced, "
            << stats.respawns << " respawns, " << stats.journal_replayed
            << " journal entries replayed\n";
  return 0;
}

int cmd_serve(const util::ArgParser& args) {
  args.expect_known({"socket", "tcp-port", "models", "analytic", "samples",
                     "seed", "group-size", "node-size", "queue-capacity",
                     "cache-mb", "cache-ttl", "cache-shards", "deadline-ms",
                     "read-deadline-ms", "workers", "readers",
                     "proxy-threads", "vnodes", "rolling-restart", "timeout",
                     "obs-out"});

  if (args.get_int("rolling-restart", 0) != 0) {
    // Control verb against a *running* tier, not a new daemon.
    const std::string socket = args.get_string("socket", "");
    const auto tcp_port = args.get_int("tcp-port", -1);
    if (socket.empty() && tcp_port < 0) {
      std::cerr << "serve --rolling-restart needs --socket or --tcp-port of "
                   "the running tier\n";
      return 2;
    }
    const double timeout = args.get_double("timeout", 600.0);
    svc::Client client =
        socket.empty()
            ? svc::Client::connect_tcp(static_cast<int>(tcp_port), timeout)
            : svc::Client::connect_unix(socket, timeout);
    const svc::ClientResponse response =
        client.call(svc::Json::parse("{\"op\":\"rolling_restart\"}"));
    std::cout << response.raw << "\n";
    return response.ok ? 0 : 1;
  }

  if (const auto workers = args.get_int("workers", 0); workers > 0)
    return cmd_serve_tier(args, static_cast<std::size_t>(workers));

  svc::ServerOptions srv_opt;
  srv_opt.unix_socket_path = args.get_string("socket", "");
  srv_opt.tcp_port = static_cast<int>(args.get_int("tcp-port", -1));
  srv_opt.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 64));
  srv_opt.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  srv_opt.read_deadline_ms = args.get_double("read-deadline-ms", 0.0);
  srv_opt.cache.max_bytes =
      static_cast<std::size_t>(args.get_int("cache-mb", 64)) << 20;
  srv_opt.cache.ttl_seconds = args.get_double("cache-ttl", 0.0);
  srv_opt.cache.shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 8));

  svc::Server server(build_registry(args), srv_opt);
  server.start();
  svc::Server::install_signal_handlers(&server);
  if (!srv_opt.unix_socket_path.empty())
    std::cerr << "listening on unix:" << srv_opt.unix_socket_path << "\n";
  if (server.tcp_port() >= 0)
    std::cerr << "listening on 127.0.0.1:" << server.tcp_port() << "\n";
  std::cerr << "ready\n";
  server.wait();
  svc::Server::install_signal_handlers(nullptr);
  const auto stats = server.stats();
  std::cerr << "drained: " << stats.completed << " completed, "
            << stats.cache.hits << " cache hits, " << stats.rejected_overload
            << " overload rejections\n";
  return 0;
}

int cmd_client(const util::ArgParser& args) {
  args.expect_known({"socket", "tcp-port", "request", "timeout", "obs-out"});
  const std::string socket_path = args.get_string("socket", "");
  const auto tcp_port = args.get_int("tcp-port", -1);
  if (socket_path.empty() && tcp_port < 0) {
    std::cerr << "client needs --socket PATH or --tcp-port P\n";
    return 2;
  }
  std::string request_text = args.get_string("request", "");
  if (request_text.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    request_text = buffer.str();
  }
  // Validate locally so a typo fails with a parse offset instead of a
  // round-trip.
  const svc::Json request = svc::Json::parse(request_text);

  const double timeout = args.get_double("timeout", 60.0);
  svc::Client client =
      socket_path.empty()
          ? svc::Client::connect_tcp(static_cast<int>(tcp_port), timeout)
          : svc::Client::connect_unix(socket_path, timeout);
  const svc::ClientResponse response = client.call(request);
  std::cout << response.raw << "\n";
  return response.ok ? 0 : 1;
}

int cmd_search(const util::ArgParser& args) {
  args.expect_known({"models", "app", "scenarios", "eprs", "nxs", "ranks",
                     "timesteps", "trials", "seed", "mtbf-hours", "downtime",
                     "budget", "budget-frac", "method", "mode", "batch",
                     "init", "top-k", "samples", "obs-out"});
  svc::RegistryOptions reg_opt;
  reg_opt.models_dir = args.get_string("models", "");
  reg_opt.samples = static_cast<int>(args.get_int("samples", 5));
  std::cerr << (reg_opt.models_dir.empty()
                    ? "calibrating models on the bundled testbed...\n"
                    : "loading models from " + reg_opt.models_dir + "\n");
  const svc::Registry registry = svc::Registry::open(reg_opt);

  auto number = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  auto quoted = [](const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  };
  auto number_list = [&](const std::string& text) {
    std::string out = "[";
    bool first = true;
    for (const std::string& v : util::ArgParser::split_list(text)) {
      if (!first) out += ',';
      first = false;
      out += number(std::strtod(v.c_str(), nullptr));
    }
    return out + "]";
  };

  std::string req = "{\"op\":\"search\"";
  const std::string app = args.get_string("app", "lulesh");
  req += ",\"app\":" + quoted(app);
  req += ",\"timesteps\":" +
         std::to_string(args.get_int("timesteps", 100));
  req += ",\"trials\":" + std::to_string(args.get_int("trials", 8));
  req += ",\"seed\":" + std::to_string(args.get_int("seed", 42));
  req += ",\"mtbf_hours\":" + number(args.get_double("mtbf-hours", 0.0));
  req += ",\"downtime\":" + number(args.get_double("downtime", 10.0));

  // "name=plan;name=plan" (';' because plans contain commas).
  const std::string scen_text =
      args.get_string("scenarios", "noft=;daly=L1:40");
  req += ",\"scenarios\":[";
  bool first = true;
  std::size_t start = 0;
  while (start <= scen_text.size()) {
    std::size_t end = scen_text.find(';', start);
    if (end == std::string::npos) end = scen_text.size();
    const std::string item = scen_text.substr(start, end - start);
    start = end + 1;
    if (item.empty() && start > scen_text.size()) break;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("bad --scenarios entry '" + item +
                                  "' (expected name=plan)");
    if (!first) req += ',';
    first = false;
    req += "{\"name\":" + quoted(item.substr(0, eq)) +
           ",\"plan\":" + quoted(item.substr(eq + 1)) + "}";
  }
  req += "]";

  const char* size_flag = app == "lulesh" ? "eprs" : "nxs";
  req += ",\"" + std::string(size_flag) + "\":" +
         number_list(args.get_string(size_flag,
                                     app == "lulesh" ? "8,12,16" : "32,48"));
  req += ",\"ranks\":" + number_list(args.get_string("ranks", "8,64"));

  if (args.has("budget"))
    req += ",\"budget\":" + number(args.get_double("budget", 0.0));
  req += ",\"budget_fraction\":" +
         number(args.get_double("budget-frac", 0.10));
  req += ",\"method\":" + quoted(args.get_string("method", "auto"));
  req += ",\"mode\":" + quoted(args.get_string("mode", "single"));
  req += ",\"batch\":" + std::to_string(args.get_int("batch", 4));
  req += ",\"init\":" + std::to_string(args.get_int("init", 0));
  req += ",\"top_k\":" + std::to_string(args.get_int("top-k", 0));
  req += "}";

  const svc::Json result =
      svc::handle_request(registry, svc::Json::parse(req));
  std::cout << result.dump() << "\n";
  return 0;
}

int cmd_verify(const util::ArgParser& args) {
  args.expect_known({"differential", "seed", "dump", "fuzz", "corpus",
                     "update", "threads-check", "fold-corpus",
                     "max-unfolded-ranks", "search-corpus", "budget-frac",
                     "obs-out"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  bool ran_anything = false;
  int rc = 0;

  if (args.has("differential")) {
    ran_anything = true;
    const int n = static_cast<int>(args.get_int("differential", 200));
    const verify::DiffReport report =
        verify::run_differential(n, seed, {}, args.get_string("dump", ""));
    std::cout << report.summary();
    if (!report.ok()) rc = 1;
  }

  if (args.has("fuzz")) {
    ran_anything = true;
    const auto iters = static_cast<std::uint64_t>(args.get_int("fuzz", 2000));
    for (const verify::FuzzResult& r : verify::fuzz_all(seed, iters)) {
      std::cout << r.summary() << "\n";
      if (!r.ok()) rc = 1;
    }
  }

  if (const auto corpus_dir = args.get("corpus")) {
    ran_anything = true;
    if (args.get_int("update", 0) != 0) {
      const int n = verify::record_corpus(*corpus_dir);
      std::cout << "recorded " << n << " corpus entr"
                << (n == 1 ? "y" : "ies") << " in " << *corpus_dir << "\n";
    } else {
      const verify::CorpusReport report = verify::replay_corpus(
          *corpus_dir, args.get_int("threads-check", 1) != 0);
      std::cout << report.summary();
      if (!report.ok()) rc = 1;
    }
  }

  if (const auto fold_dir = args.get("fold-corpus")) {
    ran_anything = true;
    const verify::CorpusReport report = verify::replay_corpus_folded(
        *fold_dir, args.get_int("max-unfolded-ranks", 1 << 16));
    std::cout << "fold-" << report.summary();
    if (!report.ok()) rc = 1;
  }

  if (const auto search_dir = args.get("search-corpus")) {
    ran_anything = true;
    const verify::DiffReport report = verify::run_search_corpus(
        *search_dir, args.get_double("budget-frac", 0.10));
    std::cout << "search-" << report.summary();
    if (!report.ok()) rc = 1;
  }

  if (!ran_anything) {
    std::cerr << "verify needs at least one of --differential N, --fuzz "
                 "ITERS, --corpus DIR, --fold-corpus DIR, "
                 "--search-corpus DIR\n";
    return 2;
  }
  return rc;
}

int dispatch(const std::string& command, const util::ArgParser& args) {
  if (command == "calibrate") return cmd_calibrate(args);
  if (command == "fit") return cmd_fit(args);
  if (command == "predict") return cmd_predict(args);
  if (command == "simulate") return cmd_simulate(args);
  if (command == "crossval") return cmd_crossval(args);
  if (command == "plan") return cmd_plan(args);
  if (command == "faultlog") return cmd_faultlog(args);
  if (command == "inject") return cmd_inject(args);
  if (command == "run-experiment") return cmd_run_experiment(args);
  if (command == "search") return cmd_search(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "worker") return cmd_worker(args);
  if (command == "client") return cmd_client(args);
  if (command == "verify") return cmd_verify(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const util::ArgParser args(argc - 1, argv + 1);
    // --obs-out enables the observability layer for the whole command and
    // dumps its artifacts at the end.  stdout carries the command's parsed
    // output, so the note goes to stderr.
    const auto obs_out = args.get("obs-out");
    if (obs_out) obs::enable(true);
    const int rc = dispatch(command, args);
    if (obs_out) {
      if (obs::write_output_dir(*obs_out))
        std::cerr << "obs: wrote metrics.json, trace.json, summary.txt to "
                  << *obs_out << "\n";
      else
        std::cerr << "obs: failed to write " << *obs_out << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
