// libFuzzer harness over the wire frame codec fuzz entry (incremental vs
// whole-buffer framing equivalence; see src/verify/fuzz.hpp).

#include <cstddef>
#include <cstdint>

#include "verify/fuzz.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)ftbesst::verify::fuzz_wire_one(data, size);
  return 0;
}
