// libFuzzer harness over the checkpoint-plan grammar fuzz entry
// (parse -> validate -> canonical spelling round-trip; see
// src/verify/fuzz.hpp).

#include <cstddef>
#include <cstdint>

#include "verify/fuzz.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)ftbesst::verify::fuzz_plan_one(data, size);
  return 0;
}
