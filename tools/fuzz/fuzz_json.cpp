// libFuzzer harness over the svc::Json fuzz entry (see src/verify/fuzz.hpp
// for the invariant contract). Build with -DFTBESST_FUZZ=ON under Clang:
//   ./build/tools/fuzz/fuzz_json -max_len=4096 corpus_dir/

#include <cstddef>
#include <cstdint>

#include "verify/fuzz.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)ftbesst::verify::fuzz_json_one(data, size);
  return 0;
}
