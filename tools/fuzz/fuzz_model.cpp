// libFuzzer harness over the model-serialize loader fuzz entry
// (load -> to_string -> load fixpoint; see src/verify/fuzz.hpp).

#include <cstddef>
#include <cstdint>

#include "verify/fuzz.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)ftbesst::verify::fuzz_model_one(data, size);
  return 0;
}
