// Reproduces the Fig. 1 style DSE validation from the original BE-SST study
// the paper builds on: CMT-bone on a Vulcan-like (5-D torus) machine.
// Benchmarked + simulated runtimes across rank counts in the validated
// region (up to 128Ki ranks of our allocation), simulation-only predictions
// beyond it (up to 1Mi ranks — past the machine's physical size), with
// Monte-Carlo spread per point (the pop-out distribution of Fig. 1).

#include <fstream>
#include <iostream>
#include <memory>

#include "apps/cmtbone.hpp"
#include "apps/kernels.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/montecarlo.hpp"
#include "core/workflow.hpp"
#include "model/fitting.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main(int argc, char** argv) {
  const std::string csv_dir = argc > 1 ? argv[1] : "";
  const apps::VulcanTestbed testbed;
  constexpr int kElementSize = 5;
  constexpr int kElementsPerRank = 128;
  constexpr int kTimesteps = 100;

  // ---- Calibration campaign over the validated region ----
  const std::vector<std::int64_t> validated{
      64,   256,   1024,   4096,   16384,
      65536, 131072};  // <= "our allocation of 128,000 cores"
  const std::vector<std::int64_t> predicted{262144, 524288, 1048576};

  model::Dataset calib({"element_size", "elements_per_rank", "ranks"});
  util::Rng rng(2018);
  for (std::int64_t ranks : validated) {
    const std::vector<double> point{static_cast<double>(kElementSize),
                                    static_cast<double>(kElementsPerRank),
                                    static_cast<double>(ranks)};
    calib.add_row(point,
                  testbed.measure_kernel(apps::kCmtBoneTimestep, point, 10,
                                         rng));
  }

  model::FitOptions fit;
  fit.method = model::ModelMethod::kAuto;
  fit.seed = 2018;
  std::map<std::string, model::Dataset> datasets;
  datasets.emplace(apps::kCmtBoneTimestep, std::move(calib));
  const core::ModelSuite suite = core::develop_models(datasets, fit);
  const auto& report = suite.reports.front().fit;

  // ---- Vulcan-like architecture: 5-D torus, 16 ranks/node ----
  auto torus = std::make_shared<net::Torus>(
      std::vector<net::NodeId>{8, 8, 8, 16, 8});  // 65536 nodes
  net::CommParams comm;
  comm.bandwidth = 2.0e9;  // BG/Q-era per-link
  core::ArchBEO arch("vulcan", torus, comm, 16);
  suite.bind_into(arch);

  std::cout << "Reproduction of Fig. 1 (BE-SST DSE validation: CMT-bone on "
               "Vulcan-like torus)\n"
            << "timestep model: " << report.formula << "\n"
            << "kernel validation MAPE: "
            << util::TextTable::pct(report.full_mape) << "\n\n";

  util::TextTable t("Fig. 1 scatter: per-timestep runtime vs ranks "
                    "(element_size=5, 128 elements/rank)");
  t.set_header({"ranks", "benchmarked_s", "sim_mean_s", "sim_p10_s",
                "sim_p90_s", "region"});
  util::Rng bench_rng(99);
  auto add_point = [&](std::int64_t ranks, bool measured) {
    apps::CmtBoneConfig cfg;
    cfg.element_size = kElementSize;
    cfg.elements_per_rank = kElementsPerRank;
    cfg.ranks = ranks;
    cfg.timesteps = kTimesteps;
    const core::AppBEO app = apps::build_cmtbone(cfg);
    core::EngineOptions opt;
    opt.seed = 7 + static_cast<std::uint64_t>(ranks);
    const auto ens = core::run_ensemble(app, arch, opt, 30);
    const double per_ts = static_cast<double>(kTimesteps);
    std::string benchmarked = "-";
    if (measured) {
      const std::vector<double> point{
          static_cast<double>(kElementSize),
          static_cast<double>(kElementsPerRank),
          static_cast<double>(ranks)};
      const auto samples = testbed.measure_kernel(apps::kCmtBoneTimestep,
                                                  point, 10, bench_rng);
      benchmarked = util::TextTable::fmt(util::mean(samples), 6);
    }
    t.add_row({util::TextTable::fmt(static_cast<double>(ranks), 0),
               benchmarked,
               util::TextTable::fmt(ens.total.mean / per_ts, 6),
               util::TextTable::fmt(util::quantile(ens.totals, 0.1) / per_ts, 6),
               util::TextTable::fmt(util::quantile(ens.totals, 0.9) / per_ts, 6),
               measured ? "validated" : "predicted"});
  };
  for (std::int64_t ranks : validated) add_point(ranks, true);
  for (std::int64_t ranks : predicted) add_point(ranks, false);
  t.print(std::cout);
  if (!csv_dir.empty()) {
    std::ofstream os(csv_dir + "/fig1_scatter.csv");
    t.write_csv(os);
  }
  std::cout << "\n(Vulcan physically topped out at 1,048,576 ranks here; "
               "prediction region extends past the 131,072-rank "
               "allocation, as in Fig. 1.)\n";

  // ---- Full-application totals (measured vs simulated) across the
  // validated region — the Fig. 1 claim in aggregate form.
  util::TextTable tv("Full CMT-bone runs: measured vs simulated total (s)");
  tv.set_header({"ranks", "measured", "simulated", "error"});
  util::Rng run_rng(314);
  std::vector<double> measured_totals, simulated_totals;
  for (std::int64_t ranks : validated) {
    const auto measured = testbed.run_application(
        kElementSize, kElementsPerRank, ranks, kTimesteps, run_rng);
    apps::CmtBoneConfig cfg;
    cfg.element_size = kElementSize;
    cfg.elements_per_rank = kElementsPerRank;
    cfg.ranks = ranks;
    cfg.timesteps = kTimesteps;
    core::EngineOptions opt;
    opt.seed = 11 + static_cast<std::uint64_t>(ranks);
    const auto ens =
        core::run_ensemble(apps::build_cmtbone(cfg), arch, opt, 20);
    measured_totals.push_back(measured.total_seconds);
    simulated_totals.push_back(ens.total.mean);
    tv.add_row({util::TextTable::fmt(static_cast<double>(ranks), 0),
                util::TextTable::fmt(measured.total_seconds, 4),
                util::TextTable::fmt(ens.total.mean, 4),
                util::TextTable::pct(100.0 * (ens.total.mean -
                                              measured.total_seconds) /
                                         measured.total_seconds,
                                     1)});
  }
  tv.print(std::cout);
  std::cout << "full-application MAPE across the validated region: "
            << util::TextTable::pct(
                   util::mape_percent(measured_totals, simulated_totals))
            << "\n";
  return 0;
}
