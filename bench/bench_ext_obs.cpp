// Extension bench: the cost of the observability layer itself, as
// machine-readable JSON.
//
// Measurements (per-op nanoseconds, median of repeated batches):
//   - counter.add() and histogram.observe() with obs enabled;
//   - the same calls with obs disabled (one relaxed load + branch);
//   - a no-obs baseline loop of identical shape (the loop without any
//     handle call) so both costs can be read as deltas over raw work;
//   - span enter/exit round trip, enabled and disabled.
//
// The disabled costs are the headline: instrumentation stays compiled into
// every hot path, so "near-free when off" is the contract scripts/check.sh
// gates (<2% on the pool sweep bench).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "obs/obs.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::size_t kOpsPerBatch = 1 << 20;
constexpr int kBatches = 9;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Median ns/op over kBatches runs of fn(kOpsPerBatch).
template <typename Fn>
double median_ns_per_op(Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    const auto start = Clock::now();
    fn(kOpsPerBatch);
    samples.push_back(seconds_since(start) * 1e9 /
                      static_cast<double>(kOpsPerBatch));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

volatile std::uint64_t g_sink = 0;

void baseline_loop(std::size_t ops) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < ops; ++i) acc += i & 7;
  g_sink = acc;
}

void counter_loop(std::size_t ops) {
  static const obs::Counter c = obs::counter("bench.counter");
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    acc += i & 7;
    c.add();
  }
  g_sink = acc;
}

void histogram_loop(std::size_t ops) {
  static const obs::Histogram h =
      obs::histogram("bench.hist", {1.0, 2.0, 4.0, 8.0});
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    acc += i & 7;
    h.observe(static_cast<double>(i & 7));
  }
  g_sink = acc;
}

void span_loop(std::size_t ops) {
  // Spans are scoped regions, not per-element increments; measure the full
  // enter/exit round trip.  Far fewer iterations keeps the ring-buffer
  // overwrite cost in the measurement without flooding memory.
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    FTBESST_OBS_SPAN("bench.span");
    acc += i & 7;
  }
  g_sink = acc;
}

struct Costs {
  double counter_ns = 0;
  double histogram_ns = 0;
  double span_ns = 0;
};

Costs measure() {
  Costs c;
  c.counter_ns = median_ns_per_op(counter_loop);
  c.histogram_ns = median_ns_per_op(histogram_loop);
  c.span_ns = median_ns_per_op(span_loop);
  return c;
}

}  // namespace

int main() {
  const double baseline_ns = median_ns_per_op(baseline_loop);

  obs::enable(false);
  const Costs off = measure();

  obs::enable(true);
  obs::reset();
  obs::trace_reset();
  const Costs on = measure();

  // Sanity: the enabled run must have recorded exactly what the loops did.
  const auto snap = obs::scrape();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kOpsPerBatch) * kBatches;
  const bool totals_exact =
      snap.counter("bench.counter") == expected &&
      snap.histogram("bench.hist") != nullptr &&
      snap.histogram("bench.hist")->count == expected;

  std::cout << "{\n";
  std::cout << "  \"bench\": \"obs\",\n";
  std::cout << "  \"obs_compiled\": " << (obs::compiled() ? "true" : "false")
            << ",\n";
  std::cout << "  \"ops_per_batch\": " << kOpsPerBatch << ",\n";
  std::cout << "  \"batches\": " << kBatches << ",\n";
  std::cout << "  \"baseline_loop_ns_per_op\": " << baseline_ns << ",\n";
  std::cout << "  \"disabled\": {\n";
  std::cout << "    \"counter_add_ns\": " << off.counter_ns << ",\n";
  std::cout << "    \"histogram_observe_ns\": " << off.histogram_ns << ",\n";
  std::cout << "    \"span_roundtrip_ns\": " << off.span_ns << "\n";
  std::cout << "  },\n";
  std::cout << "  \"enabled\": {\n";
  std::cout << "    \"counter_add_ns\": " << on.counter_ns << ",\n";
  std::cout << "    \"histogram_observe_ns\": " << on.histogram_ns << ",\n";
  std::cout << "    \"span_roundtrip_ns\": " << on.span_ns << "\n";
  std::cout << "  },\n";
  std::cout << "  \"disabled_counter_overhead_ns\": "
            << off.counter_ns - baseline_ns << ",\n";
  std::cout << "  \"enabled_totals_exact\": "
            << (totals_exact ? "true" : "false") << "\n";
  std::cout << "}\n";
  return totals_exact ? 0 : 1;
}
