// Ablation bench: analytic communication model vs executed discrete-event
// network. The same traffic patterns are priced by CommModel's closed forms
// and executed through the fat-tree switch components (per-port
// store-and-forward serialization). Agreement in the uncongested regime
// plus graceful divergence under contention is what justifies using the
// cheap analytic model inside coarse-grained sweeps, and the DES network
// for the contended corners the paper flags for finer study.

#include <iostream>

#include "net/comm.hpp"
#include "net/des_network.hpp"
#include "util/table.hpp"

using namespace ftbesst;

namespace {

/// Execute a traffic pattern and return the makespan (seconds).
double run_pattern(
    const net::TwoStageFatTree& topo, const net::CommParams& params,
    const std::vector<std::tuple<net::NodeId, net::NodeId, std::uint64_t>>&
        flows) {
  sim::Simulation sim;
  net::DesNetwork network(sim, topo, params);
  sim::SimTime last = 0;
  for (net::NodeId n = 0; n < topo.num_nodes(); ++n)
    network.on_delivery(
        n, [&last](const net::FlowMsg&, sim::SimTime when) {
          last = std::max(last, when);
        });
  for (const auto& [src, dst, bytes] : flows)
    network.send(src, dst, bytes, 0);
  sim.run();
  return sim::to_seconds(last);
}

}  // namespace

int main() {
  net::TwoStageFatTree topo(8, 16, 8);  // 128 nodes
  net::CommParams params;
  params.bandwidth = 10e9;
  params.injection_latency = 1e-6;
  params.sw_latency = 150e-9;
  net::CommModel analytic(topo, params);

  std::cout << "Analytic comm model vs executed DES fat-tree (128 nodes, "
            << "10 GB/s links)\n\n";

  util::TextTable t("Traffic patterns: analytic estimate vs DES makespan");
  t.set_header({"pattern", "bytes/flow", "analytic (us)", "DES (us)",
                "DES/analytic"});

  for (std::uint64_t bytes : {std::uint64_t{1000}, std::uint64_t{100000},
                              std::uint64_t{1000000}}) {
    // Single cross-leaf flow: uncongested.
    {
      const double a = analytic.ptp_time(0, 127, bytes);
      const double d = run_pattern(topo, params, {{0, 127, bytes}});
      t.add_row({"single cross-leaf flow", std::to_string(bytes),
                 util::TextTable::fmt(a * 1e6, 2),
                 util::TextTable::fmt(d * 1e6, 2),
                 util::TextTable::fmt(d / a, 2)});
    }
    // Incast: 15 senders to one node — the analytic ptp time has no queue.
    {
      std::vector<std::tuple<net::NodeId, net::NodeId, std::uint64_t>> flows;
      for (net::NodeId src = 16; src < 31; ++src)
        flows.push_back({src, 0, bytes});
      const double a = analytic.ptp_time(16, 0, bytes);  // one flow's view
      const double d = run_pattern(topo, params, flows);
      t.add_row({"15-to-1 incast (vs 1-flow analytic)", std::to_string(bytes),
                 util::TextTable::fmt(a * 1e6, 2),
                 util::TextTable::fmt(d * 1e6, 2),
                 util::TextTable::fmt(d / a, 2)});
    }
    // Pairwise disjoint exchange across leaves.
    {
      std::vector<std::tuple<net::NodeId, net::NodeId, std::uint64_t>> flows;
      for (net::NodeId i = 0; i < 16; ++i)
        flows.push_back({i, 112 + (i % 16), bytes});
      const double a = analytic.ptp_time(0, 112, bytes);
      const double d = run_pattern(topo, params, flows);
      t.add_row({"16 disjoint-dst cross-leaf flows", std::to_string(bytes),
                 util::TextTable::fmt(a * 1e6, 2),
                 util::TextTable::fmt(d * 1e6, 2),
                 util::TextTable::fmt(d / a, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nReading: near-1x ratios for solo/disjoint flows validate "
               "the closed forms (store-and-forward adds a bounded factor "
               "for bandwidth-dominated messages); the incast rows show the "
               "queueing the analytic point-to-point form cannot see — the "
               "regime where DSE should switch to the executed network.\n";
  return 0;
}
