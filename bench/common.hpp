#pragma once
// Shared case-study fixture for the paper-reproduction benches: the
// Quartz-like testbed, the Table II calibration campaign, FT-aware model
// development, and the Quartz ArchBEO with the fitted models bound in.
//
// Every bench binary prints its table/figure data to stdout; everything
// here is deterministic for a fixed seed so reruns reproduce the report.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "apps/testbed.hpp"
#include "core/arch.hpp"
#include "core/workflow.hpp"
#include "model/fitting.hpp"
#include "net/topology.hpp"

namespace ftbesst::bench {

/// Table II of the paper.
inline const std::vector<int> kEprs{5, 10, 15, 20, 25};
inline const std::vector<std::int64_t> kRanks{8, 64, 216, 512, 1000};
inline constexpr int kGroupSize = 4;
inline constexpr int kNodeSize = 2;
inline constexpr int kTimesteps = 200;
inline constexpr int kCheckpointPeriod = 40;

inline ft::FtiConfig case_study_fti() {
  ft::FtiConfig fti;
  fti.group_size = kGroupSize;
  fti.node_size = kNodeSize;
  return fti;
}

struct CaseStudy {
  apps::QuartzTestbed testbed;
  std::map<std::string, model::Dataset> calibration;
  core::ModelSuite suite;
  std::shared_ptr<net::TwoStageFatTree> topology;
  std::unique_ptr<core::ArchBEO> arch;

  CaseStudy(std::vector<std::string> kernels, model::ModelMethod method,
            std::uint64_t seed = 2021)
      : testbed({}, case_study_fti()) {
    apps::CampaignSpec spec;
    spec.eprs = kEprs;
    spec.ranks = kRanks;
    spec.samples_per_point = 10;
    spec.seed = seed;
    calibration = apps::run_campaign(testbed, spec, kernels);

    model::FitOptions fit;
    fit.method = method;
    fit.seed = seed;
    suite = core::develop_models(calibration, fit);

    // Quartz-like architecture: two-stage fat-tree, 36-core nodes.
    topology = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
    net::CommParams comm;
    comm.bandwidth = 12.5e9;  // 100 Gb/s Omni-Path
    arch = std::make_unique<core::ArchBEO>("quartz", topology, comm, 36);
    arch->set_fti(case_study_fti());
    suite.bind_into(*arch);
  }
};

/// The case study's three fault-tolerance scenarios (Figs. 7-9).
inline std::vector<core::Scenario> case_study_scenarios() {
  return {
      {"No FT", {}},
      {"L1", {{ft::Level::kL1, kCheckpointPeriod}}},
      {"L1 & L2",
       {{ft::Level::kL1, kCheckpointPeriod},
        {ft::Level::kL2, kCheckpointPeriod}}},
  };
}

/// Build the case-study LULESH_FTI AppBEO for a scenario and (epr, ranks).
inline core::AppBEO case_study_app(const core::Scenario& scenario, int epr,
                                   std::int64_t ranks,
                                   int timesteps = kTimesteps) {
  apps::LuleshConfig cfg;
  cfg.epr = epr;
  cfg.ranks = ranks;
  cfg.timesteps = timesteps;
  cfg.plan = scenario.plan;
  cfg.fti = case_study_fti();
  return apps::build_lulesh_fti(cfg);
}

}  // namespace ftbesst::bench
