// google-benchmark microbenches for the performance-critical substrates:
// PDES event dispatch (serial and parallel), Reed-Solomon coding, GF(256)
// arithmetic, model evaluation paths, and the coarse BE engine itself.

#include <benchmark/benchmark.h>

#include <memory>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "core/arch.hpp"
#include "core/engine_bsp.hpp"
#include "ft/fti_runtime.hpp"
#include "ft/gf256.hpp"
#include "ft/multilevel_opt.hpp"
#include "ft/reed_solomon.hpp"
#include "model/expr.hpp"
#include "model/table_model.hpp"
#include "net/des_network.hpp"
#include "net/des_torus.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftbesst;

/// Self-rescheduling ticker used to stress the event queue.
class Ticker final : public sim::Component {
 public:
  Ticker(int remaining, sim::SimTime interval)
      : Component("ticker"), remaining_(remaining), interval_(interval) {}
  void init() override { schedule_self(interval_); }
  void handle_event(sim::PortId, std::unique_ptr<sim::Payload>) override {
    if (--remaining_ > 0) schedule_self(interval_);
  }

 private:
  int remaining_;
  sim::SimTime interval_;
};

void BM_PdesSerialDispatch(benchmark::State& state) {
  const auto events_per_ticker = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 64; ++i)
      sim.add_component<Ticker>(events_per_ticker,
                                static_cast<sim::SimTime>(3 + i % 7));
    const auto stats = sim.run();
    benchmark::DoNotOptimize(stats.events_processed);
  }
  state.SetItemsProcessed(state.iterations() * 64 * events_per_ticker);
}
BENCHMARK(BM_PdesSerialDispatch)->Arg(100)->Arg(1000);

void BM_PdesParallelDispatch(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    std::vector<sim::ComponentId> ids;
    for (int i = 0; i < 64; ++i)
      ids.push_back(
          sim.add_component<Ticker>(500, static_cast<sim::SimTime>(3 + i % 7))
              ->id());
    // Link pairs with generous latency so the lookahead window is wide.
    for (std::size_t i = 0; i + 1 < ids.size(); i += 2)
      sim.connect(ids[i], 0, ids[i + 1], 0, sim::SimTime{1000});
    const auto stats = sim.run_parallel(threads);
    benchmark::DoNotOptimize(stats.events_processed);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 500);
}
BENCHMARK(BM_PdesParallelDispatch)->Arg(1)->Arg(2)->Arg(4);

void BM_Gf256Mul(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<std::uint8_t> xs(4096);
  for (auto& x : xs) x = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (auto _ : state) {
    std::uint8_t acc = 1;
    for (std::uint8_t x : xs) acc = ft::GF256::mul(acc, x | 1);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * xs.size());
}
BENCHMARK(BM_Gf256Mul);

void BM_ReedSolomonEncode(benchmark::State& state) {
  const auto shard_bytes = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  ft::ReedSolomon rs(4, 2);
  std::vector<std::vector<std::uint8_t>> data(
      4, std::vector<std::uint8_t>(shard_bytes));
  for (auto& shard : data)
    for (auto& b : shard) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (auto _ : state) {
    auto parity = rs.encode(data);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(state.iterations() * 4 * shard_bytes);
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(4096)->Arg(65536);

void BM_ReedSolomonReconstruct(benchmark::State& state) {
  const std::size_t shard_bytes = 65536;
  util::Rng rng(3);
  ft::ReedSolomon rs(4, 2);
  std::vector<std::vector<std::uint8_t>> data(
      4, std::vector<std::uint8_t>(shard_bytes));
  for (auto& shard : data)
    for (auto& b : shard) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> full = data;
  full.insert(full.end(), parity.begin(), parity.end());
  for (auto _ : state) {
    auto shards = full;
    std::vector<bool> present(6, true);
    shards[0].clear();
    present[0] = false;
    shards[4].clear();
    present[4] = false;
    rs.reconstruct(shards, present);
    benchmark::DoNotOptimize(shards);
  }
  state.SetBytesProcessed(state.iterations() * 6 * shard_bytes);
}
BENCHMARK(BM_ReedSolomonReconstruct);

void BM_ExprEval(benchmark::State& state) {
  util::Rng rng(4);
  const auto expr = model::Expr::random(rng, 2, 6);
  const std::vector<double> vars{15.0, 512.0};
  for (auto _ : state) benchmark::DoNotOptimize(expr.eval(vars));
}
BENCHMARK(BM_ExprEval);

void BM_TableModelLookup(benchmark::State& state) {
  model::Dataset d({"a", "b"});
  for (double a : {5.0, 10.0, 15.0, 20.0, 25.0})
    for (double b : {8.0, 64.0, 216.0, 512.0, 1000.0})
      d.add_row({a, b}, {a * b});
  const model::TableModel m(d, model::Interpolation::kMultilinear);
  const std::vector<double> q{12.5, 300.0};
  for (auto _ : state) benchmark::DoNotOptimize(m.predict(q));
}
BENCHMARK(BM_TableModelLookup);

void BM_BspEngineLuleshRun(benchmark::State& state) {
  const auto ranks = static_cast<std::int64_t>(state.range(0));
  auto topo = std::make_shared<net::TwoStageFatTree>(94, 32, 24);
  core::ArchBEO arch("m", topo, net::CommParams{}, 36);
  arch.bind_kernel(apps::kLuleshTimestep,
                   std::make_shared<model::ConstantModel>(0.02));
  arch.bind_kernel("ckpt_l1", std::make_shared<model::ConstantModel>(0.5));
  apps::LuleshConfig cfg;
  cfg.epr = 15;
  cfg.ranks = ranks;
  cfg.timesteps = 200;
  cfg.plan = {{ft::Level::kL1, 40}};
  cfg.fti.group_size = 4;
  cfg.fti.node_size = 2;
  const core::AppBEO app = apps::build_lulesh_fti(cfg);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::EngineOptions opt;
    opt.monte_carlo = true;
    opt.seed = ++seed;
    benchmark::DoNotOptimize(core::run_bsp(app, arch, opt));
  }
  state.SetItemsProcessed(state.iterations() * app.size());
}
BENCHMARK(BM_BspEngineLuleshRun)->Arg(64)->Arg(1000);

void BM_DesNetworkAllToOne(benchmark::State& state) {
  const auto senders = static_cast<net::NodeId>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    net::TwoStageFatTree topo(8, 16, 8);
    net::DesNetwork network(sim, topo, net::CommParams{});
    for (net::NodeId s = 1; s <= senders; ++s)
      network.send(s, 0, 65536, 0);
    sim.run();
    benchmark::DoNotOptimize(network.delivered());
  }
  state.SetItemsProcessed(state.iterations() * senders);
}
BENCHMARK(BM_DesNetworkAllToOne)->Arg(16)->Arg(64);

void BM_DesTorusRandomTraffic(benchmark::State& state) {
  util::Rng rng(9);
  for (auto _ : state) {
    sim::Simulation sim;
    net::Torus topo({8, 8});
    net::DesTorus network(sim, topo, net::CommParams{});
    for (int i = 0; i < 128; ++i)
      network.send(static_cast<net::NodeId>(rng.uniform_int(64)),
                   static_cast<net::NodeId>(rng.uniform_int(64)), 4096,
                   static_cast<sim::SimTime>(i));
    sim.run();
    benchmark::DoNotOptimize(network.delivered());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_DesTorusRandomTraffic);

void BM_FtiRuntimeCheckpoint(benchmark::State& state) {
  const auto level = static_cast<ft::Level>(state.range(0));
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  ft::FtiRuntime rt(fti, 32);
  util::Rng rng(3);
  for (std::int64_t r = 0; r < 32; ++r) {
    ft::FtiRuntime::Blob blob(16384);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    rt.protect(r, std::move(blob));
  }
  for (auto _ : state) benchmark::DoNotOptimize(rt.checkpoint(level));
  state.SetBytesProcessed(state.iterations() * 32 * 16384);
}
BENCHMARK(BM_FtiRuntimeCheckpoint)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_MultilevelOptimize(benchmark::State& state) {
  ft::MultilevelWorkload w;
  w.work = 36000;
  w.system_mtbf = 600;
  w.soft_fraction = 0.7;
  const ft::LevelSpec low{ft::Level::kL1, 0.5, 0.5};
  const ft::LevelSpec high{ft::Level::kL4, 20.0, 30.0};
  for (auto _ : state)
    benchmark::DoNotOptimize(ft::optimize_two_level(w, low, high));
}
BENCHMARK(BM_MultilevelOptimize);

}  // namespace

BENCHMARK_MAIN();
