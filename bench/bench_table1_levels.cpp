// Reproduces Table I (FTI checkpointing level semantics) as *executable*
// claims: for each level, the storage path, the modeled cost composition,
// and a recoverability truth table over representative failure patterns —
// including a live Reed-Solomon encode/erase/decode demonstration for L3.

#include <iostream>

#include "common.hpp"
#include "ft/checkpoint_cost.hpp"
#include "ft/reed_solomon.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const ft::FtiConfig fti = bench::case_study_fti();
  constexpr std::int64_t kRanks = 64;  // 32 nodes, 8 groups of 4

  std::cout << "Reproduction of Table I (FTI checkpoint levels), executable "
               "form\n\n";

  util::TextTable t1("Table I: Checkpointing Levels of the FTI");
  t1.set_header({"Level", "Checkpoint Method"});
  t1.add_row({"Level 1", "Checkpoint file saved on local node"});
  t1.add_row({"Level 2",
              "Saved on local node AND sent to neighbor node in group"});
  t1.add_row({"Level 3", "Files encoded via Reed-Solomon (RS) erasure code"});
  t1.add_row({"Level 4", "All files flushed to parallel file system"});
  t1.print(std::cout);
  std::cout << '\n';

  // ---- Modeled cost per level (the overhead column Table I implies) ----
  ft::CheckpointCostModel cost({}, fti);
  util::TextTable tc("Modeled cost per instance (100 MB/rank state)");
  tc.set_header({"level", "cost @64 ranks", "cost @1000 ranks",
                 "restart @1000 ranks"});
  for (ft::Level level : {ft::Level::kL1, ft::Level::kL2, ft::Level::kL3,
                          ft::Level::kL4}) {
    tc.add_row({ft::to_string(level),
                util::TextTable::fmt(cost.cost(level, 100'000'000, 64), 4),
                util::TextTable::fmt(cost.cost(level, 100'000'000, 1000), 4),
                util::TextTable::fmt(
                    cost.restart_cost(level, 100'000'000, 1000), 4)});
  }
  tc.print(std::cout);
  std::cout << '\n';

  // ---- Recoverability truth table ----
  struct Pattern {
    const char* name;
    ft::FailureSet failures;
  };
  const std::vector<Pattern> patterns{
      {"process crash (files intact)",
       {{0, 1, 2, 3}, ft::FailureKind::kProcessCrash}},
      {"1 node lost", {{5}, ft::FailureKind::kNodeLoss}},
      {"2 non-partner nodes in one group", {{0, 2}, ft::FailureKind::kNodeLoss}},
      {"2 partner nodes in one group", {{0, 1}, ft::FailureKind::kNodeLoss}},
      {"3 nodes in one group", {{0, 1, 2}, ft::FailureKind::kNodeLoss}},
      {"whole group lost", {{0, 1, 2, 3}, ft::FailureKind::kNodeLoss}},
      {"1 node in each of 2 groups", {{0, 4}, ft::FailureKind::kNodeLoss}},
  };
  util::TextTable tr("Recoverability (group_size=4, node_size=2, 64 ranks)");
  tr.set_header({"failure pattern", "L1", "L2", "L3", "L4"});
  for (const auto& pattern : patterns) {
    std::vector<std::string> row{pattern.name};
    for (ft::Level level : {ft::Level::kL1, ft::Level::kL2, ft::Level::kL3,
                            ft::Level::kL4})
      row.push_back(ft::recoverable(level, fti, kRanks, pattern.failures)
                        ? "recover"
                        : "LOST");
    tr.add_row(std::move(row));
  }
  tr.print(std::cout);

  // ---- Live L3 Reed-Solomon demonstration ----
  std::cout << "\nL3 Reed-Solomon demo: group of 4 checkpoint shards + 2 "
               "parity, erase 2, reconstruct:\n";
  util::Rng rng(1);
  ft::ReedSolomon rs(4, 2);
  std::vector<std::vector<std::uint8_t>> shards(4,
                                                std::vector<std::uint8_t>(32));
  for (auto& s : shards)
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  auto parity = rs.encode(shards);
  auto all = shards;
  all.insert(all.end(), parity.begin(), parity.end());
  const auto original = all;
  std::vector<bool> present(6, true);
  all[1].clear();
  present[1] = false;
  all[4].clear();
  present[4] = false;
  rs.reconstruct(all, present);
  std::cout << "  erased shards {1, 4}; reconstruction "
            << (all == original ? "EXACT" : "FAILED") << "; encode ops for a "
            << "5.6 MB shard: " << rs.encode_ops(5'600'000) << " GF mul-adds\n";
  return 0;
}
