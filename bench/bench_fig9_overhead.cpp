// Reproduces Fig. 9: predicted fault-tolerance overhead grids for the full
// design space — scenario x problem size x rank count — each cell the
// simulated total runtime as a percentage of the measured No-FT baseline at
// 64 ranks for the same problem size (which is why the simulated No-FT row
// hovers near, not exactly at, 100%).

#include <iostream>
#include <map>

#include "common.hpp"
#include "core/montecarlo.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL2)};
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);
  const auto scenarios = bench::case_study_scenarios();
  const std::vector<int> eprs{10, 15, 20, 25};  // Fig. 9 columns

  std::cout << "Reproduction of Fig. 9 (overhead prediction for full system "
               "simulation)\n"
            << "Each cell: simulated runtime as % of the measured No-FT "
               "64-rank run at the same epr.\n\n";

  // Measured per-epr baselines (one run each, like the paper's).
  std::map<int, double> baseline;
  util::Rng rng(4242);
  for (int epr : eprs)
    baseline[epr] =
        cs.testbed.run_application(epr, 64, bench::kTimesteps, {}, rng)
            .total_seconds;

  std::uint64_t stream = 0;
  for (std::int64_t ranks : {std::int64_t{64}, std::int64_t{1000}}) {
    util::TextTable t(std::to_string(ranks) + " Ranks");
    std::vector<std::string> header{"scenario"};
    for (int epr : eprs) header.push_back("epr " + std::to_string(epr));
    t.set_header(std::move(header));
    for (const auto& scenario : scenarios) {
      std::vector<std::string> row{scenario.name};
      for (int epr : eprs) {
        const core::AppBEO app = bench::case_study_app(scenario, epr, ranks);
        core::EngineOptions opt;
        opt.seed = 31 + ++stream;
        const auto ens = core::run_ensemble(app, *cs.arch, opt, 10);
        row.push_back(util::TextTable::fmt(
                          100.0 * ens.total.mean / baseline[epr], 0) +
                      "%");
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Paper's Fig. 9 for reference:\n"
            << "  64 ranks   No FT 100-109%, L1 109-140%, L1&L2 183-294%\n"
            << "  1000 ranks No FT 119-170%, L1 215-428%, L1&L2 550-1374%\n";
  return 0;
}
