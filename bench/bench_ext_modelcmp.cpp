// Ablation bench: BE-SST's two modeling methods (lookup-table interpolation
// and symbolic regression) plus feature regression, compared on the same
// calibration data — both in-grid accuracy and extrapolation to the
// prediction region (the notional-system use case of Figs. 5-6). Tables are
// exact on the grid but cannot predict beyond it as reliably; regression
// generalizes. This is the trade-off that motivates the paper's choice of
// symbolic regression for the case study.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL2)};

  // Calibration data from the standard campaign...
  ft::FtiConfig fti = bench::case_study_fti();
  apps::QuartzTestbed testbed({}, fti);
  apps::CampaignSpec spec;
  spec.seed = 2021;
  const auto calibration = apps::run_campaign(testbed, spec, kernels);

  // ...and a held-out extrapolation grid the models never see: the
  // prediction region of Figs. 5-6 (epr 30, ranks 1728). Ground truth comes
  // from the testbed's hidden functions (the real machine would need more
  // memory / a bigger allocation).
  std::cout << "Model-method ablation: interpolation vs symbolic regression "
               "vs feature regression\n\n";

  for (const std::string& kernel : kernels) {
    util::TextTable t(kernel);
    t.set_header({"method", "grid MAPE",
                  "extrapolation MAPE (epr 30 / ranks 1728)", "notes"});
    for (model::ModelMethod method :
         {model::ModelMethod::kTableNearest,
          model::ModelMethod::kTableMultilinear,
          model::ModelMethod::kTableLogLog,
          model::ModelMethod::kFeatureRegression,
          model::ModelMethod::kPowerLaw,
          model::ModelMethod::kSymbolicRegression}) {
      model::FitOptions opt;
      opt.method = method;
      opt.seed = 2021 ^ std::hash<std::string>{}(kernel);
      const auto fitted = model::fit_kernel_model(calibration.at(kernel), opt);

      // Extrapolation check against hidden truth.
      std::vector<double> truth, pred;
      auto eval_point = [&](int epr, std::int64_t ranks) {
        const std::vector<double> p{static_cast<double>(epr),
                                    static_cast<double>(ranks)};
        double actual;
        if (kernel == apps::kLuleshTimestep)
          actual = testbed.true_timestep(epr, ranks);
        else if (kernel == apps::checkpoint_kernel(ft::Level::kL1))
          actual = testbed.true_checkpoint(ft::Level::kL1, epr, ranks);
        else
          actual = testbed.true_checkpoint(ft::Level::kL2, epr, ranks);
        truth.push_back(actual);
        pred.push_back(fitted.model->predict(p));
      };
      // Extrapolation grid: epr 30 (bigger-memory notional node) and 1728
      // ranks (12^3 — the next perfect cube satisfying FTI's multiple-of-8
      // constraint beyond the 1000-rank allocation).
      for (std::int64_t ranks : bench::kRanks) eval_point(30, ranks);
      for (int epr : bench::kEprs) eval_point(epr, 1728);

      t.add_row({model::to_string(method),
                 util::TextTable::pct(fitted.report.full_mape),
                 util::TextTable::pct(util::mape_percent(truth, pred)),
                 method == model::ModelMethod::kTableNearest
                     ? "clamps at grid edge"
                     : ""});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Tables are exact on calibrated points (grid MAPE ~0) but "
               "degrade beyond the grid; regression trades a little in-grid "
               "accuracy for usable notional-system prediction.\n";
  return 0;
}
