// Extension bench: guided search vs the exhaustive DSE sweep, as
// machine-readable JSON.
//
// Replays every `search_*.scenario` golden-corpus machine through
// verify::derive_search_grid and prices its co-design grid twice: the
// exhaustive core::run_dse sweep, and the GP-guided Pareto search at 10%
// of the sweep's trial budget (threads 1 and pool). Per machine it
// reports the grid size, evaluations charged, the evaluation fraction,
// wall-clocks for both paths, and the gate verdicts:
//   - thread_bit_identical: SearchResult::to_text() at threads=1 equals
//     the pooled run byte-for-byte
//   - within_budget: charged evaluations <= ceil(0.10 x cells) and
//     charged trial units never exceed the granted budget
//   - optimum_found: the search's best objective is bit-equal to the
//     exhaustive grid minimum (identical per-cell seeds make this an
//     exact comparison)
//   - pareto_dominates: the searched front dominates-or-equals the
//     exhaustive {overhead x recoverability} front
//   - bandit_keeps_best (deterministic machines only): successive halving
//     at full budget also lands on the exhaustive optimum bit-exactly
//
// Exit 1 (GATE line on stderr) when any machine fails any gate.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/workflow.hpp"
#include "search/pareto.hpp"
#include "search/search.hpp"
#include "verify/scenario.hpp"
#include "verify/search_check.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

struct MachineRun {
  std::string name;
  std::size_t cells = 0;
  std::size_t evaluations = 0;
  double eval_fraction = 0.0;
  double exhaustive_wall = 0.0;
  double search_wall = 0.0;
  std::size_t front_size = 0;
  bool deterministic = false;
  bool thread_bit_identical = false;
  bool within_budget = false;
  bool optimum_found = false;
  bool pareto_dominates = false;
  bool bandit_keeps_best = true;  ///< vacuous for stochastic machines

  [[nodiscard]] bool pass() const {
    return thread_bit_identical && within_budget && optimum_found &&
           pareto_dominates && bandit_keeps_best;
  }
};

MachineRun run_machine(const std::string& name, const verify::Scenario& s,
                       double budget_fraction) {
  MachineRun run;
  run.name = name;
  run.deterministic =
      !s.monte_carlo && !s.inject_faults && s.noise_sigma == 0.0;

  const verify::SearchGrid g = verify::derive_search_grid(s);
  run.cells = g.space.size();

  auto start = Clock::now();
  const std::vector<core::DsePoint> exhaustive = core::run_dse(
      g.space.scenarios, g.space.points, g.make_app, g.arch, g.options,
      static_cast<std::size_t>(s.trials));
  run.exhaustive_wall = seconds_since(start);

  double best_mean = std::numeric_limits<double>::infinity();
  std::vector<search::ParetoPoint> all;
  all.reserve(run.cells);
  for (std::size_t flat = 0; flat < run.cells; ++flat) {
    const double mean = exhaustive[flat].ensemble.total.mean;
    best_mean = std::min(best_mean, mean);
    all.push_back(search::ParetoPoint{
        flat, mean,
        search::recoverability_score(
            g.space.scenarios[g.space.scenario_of(flat)].plan, s.fti)});
  }
  const std::vector<search::ParetoPoint> exhaustive_front =
      search::pareto_front(all);

  search::SearchOptions opt;
  opt.method = search::Method::kGp;
  opt.mode = search::Mode::kPareto;
  opt.seed = s.seed;
  opt.trials = static_cast<std::size_t>(s.trials);
  opt.budget_fraction = budget_fraction;
  opt.fti = s.fti;
  opt.batch = 1;  // sequential acquisition, as the verify leg runs it
  opt.threads = 1;
  start = Clock::now();
  const search::SearchResult serial =
      search::run_search_dse(g.space, opt, g.make_app, g.arch, g.options);
  run.search_wall = seconds_since(start);
  opt.threads = 0;
  const search::SearchResult pooled =
      search::run_search_dse(g.space, opt, g.make_app, g.arch, g.options);

  run.evaluations = serial.evaluations;
  run.eval_fraction =
      static_cast<double>(serial.evaluations) / static_cast<double>(run.cells);
  run.front_size = serial.pareto.size();
  run.thread_bit_identical = serial.to_text() == pooled.to_text();
  const double max_evals = std::ceil(
      budget_fraction * static_cast<double>(run.cells));
  run.within_budget =
      static_cast<double>(serial.evaluations) <= max_evals &&
      serial.trial_units <= serial.budget_units;
  run.optimum_found = bits_equal(serial.best.objective, best_mean);

  std::vector<search::ParetoPoint> searched;
  searched.reserve(serial.pareto.size());
  for (const search::EvaluatedCell& c : serial.pareto)
    searched.push_back(
        search::ParetoPoint{c.flat, c.objective, c.recoverability});
  run.pareto_dominates =
      search::front_dominates_or_equals(searched, exhaustive_front);

  if (run.deterministic) {
    search::SearchOptions bopt;
    bopt.method = search::Method::kBandit;
    bopt.mode = search::Mode::kSingle;
    bopt.seed = s.seed;
    bopt.trials = static_cast<std::size_t>(s.trials);
    bopt.budget_fraction = 1.0;
    bopt.fti = s.fti;
    bopt.threads = 1;
    const search::SearchResult bandit =
        search::run_search_dse(g.space, bopt, g.make_app, g.arch, g.options);
    run.bandit_keeps_best = bits_equal(bandit.best.objective, best_mean);
  }
  return run;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main() {
  const double budget_fraction = 0.10;
  const std::filesystem::path dir = FTBESST_CORPUS_DIR;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("search_", 0) == 0 &&
        entry.path().extension() == ".scenario")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "GATE: no search_*.scenario machines in " << dir << "\n";
    return 1;
  }

  std::vector<MachineRun> runs;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    runs.push_back(run_machine(path.stem().string(),
                               verify::Scenario::from_text(text.str()),
                               budget_fraction));
  }

  bool all_pass = true;
  std::cout.precision(6);
  std::cout << "{\n  \"budget_fraction\": " << budget_fraction
            << ",\n  \"machines\": {\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const MachineRun& r = runs[i];
    all_pass &= r.pass();
    std::cout << "    \"" << r.name << "\": {\n"
              << "      \"cells\": " << r.cells
              << ", \"evaluations\": " << r.evaluations
              << ", \"eval_fraction\": " << r.eval_fraction
              << ", \"front_size\": " << r.front_size << ",\n"
              << "      \"exhaustive_wall_sec\": " << r.exhaustive_wall
              << ", \"search_wall_sec\": " << r.search_wall << ",\n"
              << "      \"deterministic\": " << json_bool(r.deterministic)
              << ",\n      \"gates\": {"
              << "\"thread_bit_identical\": "
              << json_bool(r.thread_bit_identical)
              << ", \"within_budget\": " << json_bool(r.within_budget)
              << ", \"optimum_found\": " << json_bool(r.optimum_found)
              << ", \"pareto_dominates\": " << json_bool(r.pareto_dominates)
              << ", \"bandit_keeps_best\": " << json_bool(r.bandit_keeps_best)
              << ", \"pass\": " << json_bool(r.pass()) << "}\n    }"
              << (i + 1 == runs.size() ? "\n" : ",\n");
  }
  std::cout << "  },\n  \"gates\": {\"eval_fraction_max\": "
            << budget_fraction << ", \"pass\": " << json_bool(all_pass)
            << "}\n}\n";

  if (!all_pass) {
    for (const MachineRun& r : runs)
      if (!r.pass())
        std::cerr << "GATE: " << r.name << " fails (thread_bit_identical="
                  << json_bool(r.thread_bit_identical)
                  << " within_budget=" << json_bool(r.within_budget)
                  << " optimum_found=" << json_bool(r.optimum_found)
                  << " pareto_dominates=" << json_bool(r.pareto_dominates)
                  << " bandit_keeps_best=" << json_bool(r.bandit_keeps_best)
                  << ")\n";
    return 1;
  }
  return 0;
}
