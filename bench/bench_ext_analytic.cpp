// Related-work comparison bench (Section II of the paper): the abstract
// reliability-aware scaling laws — Amdahl/Gustafson baselines, C/R-aware
// speedup (Cavelan/Zheng), and replication-enhanced speedup (Hussain) —
// reproducing their headline finding that faults turn monotone speedup
// curves into curves with an interior optimum node count, which
// checkpoint-restart mitigates and replication pushes further out.

#include <iostream>

#include "analytic/speedup.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const double work = 1e6;     // seconds of single-node work
  const double alpha = 1e-5;   // serial fraction
  analytic::FaultModel fm;
  fm.node_mtbf = 5.0e4;        // pessimistic per-node reliability
  fm.checkpoint_cost = 30.0;
  fm.restart_cost = 60.0;

  std::cout << "Reliability-aware scaling laws (related-work baselines)\n"
            << "work 1e6 s, serial fraction 1e-5, node MTBF 5e4 s, C=30 s, "
               "R=60 s; replication pairs use half the nodes\n\n";

  util::TextTable t("Speedup vs nodes");
  t.set_header({"nodes", "Amdahl (fault-free)", "Gustafson", "C/R-aware",
                "replication (n/2 pairs)"});
  for (double n = 64; n <= (1 << 21); n *= 4) {
    t.add_row({util::TextTable::fmt(n, 0),
               util::TextTable::fmt(analytic::amdahl_speedup(alpha, n), 1),
               util::TextTable::fmt(analytic::gustafson_speedup(alpha, n), 1),
               util::TextTable::fmt(analytic::cr_speedup(work, alpha, n, fm),
                                    1),
               util::TextTable::fmt(
                   analytic::replication_speedup(work, alpha, n / 2, fm), 1)});
  }
  t.print(std::cout);

  const double n_opt = analytic::optimal_nodes_cr(work, alpha, fm, 1 << 22);
  std::cout << "\nC/R-aware optimal node count: " << n_opt
            << " (speedup " << analytic::cr_speedup(work, alpha, n_opt, fm)
            << ") — beyond it, added fault exposure outweighs added "
               "parallelism, the non-monotonicity Zheng/Cavelan report.\n"
            << "BE-SST's contribution relative to these laws: the same "
               "question answered with machine-calibrated kernel models "
               "(bench_fig7_8, bench_fig9) instead of abstract constants.\n";
  return 0;
}
