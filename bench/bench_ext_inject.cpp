// Extension bench: in-simulation fault-injection throughput
// (src/inject) as machine-readable JSON.
//
// Workload: a 1000-rank LULESH_FTI run on a Quartz-like fat-tree with an
// L1+L2 FTI plan, a node-level fail-stop process (Weibull-capable, here
// exponential) AND a silent-corruption process with detection latency —
// the open paper Cases 1/2 configuration. Two sections:
//   - "single_run": one injected run_des: wall-clock, PDES events,
//     events/sec, faults/rollbacks, makespan.
//   - "campaign": the N-trial Monte-Carlo campaign (inject::run_campaign)
//     at 1 thread and on the shared pool: wall-clock, trials/sec, makespan
//     distribution (mean/p10/p50/p90), mean faults and per-level
//     recoveries.
//
// Exit 1 (DIVERGENCE/GATE line on stderr) if:
//   - the single injected run does not complete or injects no faults,
//   - the 1-thread and pooled campaigns disagree bitwise on any trial
//     makespan or on the fault log,
//   - any campaign trial hits the simulation horizon, or
//   - the pooled campaign takes 10 s or longer of wall-clock.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "apps/kernels.hpp"
#include "apps/lulesh.hpp"
#include "core/arch.hpp"
#include "core/engine_des.hpp"
#include "inject/campaign.hpp"
#include "inject/sdc.hpp"
#include "net/topology.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::int64_t kRanks = 1000;  // 10^3: perfect cube for LULESH
constexpr int kTimesteps = 100;
constexpr std::size_t kTrials = 16;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

core::ArchBEO make_arch() {
  // 16 x 16 node fat-tree, 4 ranks/node physically; FTI groups of 4 nodes
  // with 2 ranks each -> 500 fault-domain nodes for the 1000-rank app.
  auto topo = std::make_shared<net::TwoStageFatTree>(16, 16, 8);
  core::ArchBEO arch("quartz_1k", topo, net::CommParams{}, 4);
  arch.set_fti(ft::FtiConfig{4, 2, 1});
  arch.bind_kernel(apps::kLuleshTimestep,
                   std::make_shared<model::ConstantModel>(0.5));
  for (int level = 1; level <= 4; ++level) {
    const auto l = static_cast<ft::Level>(level);
    arch.bind_kernel(apps::checkpoint_kernel(l),
                     std::make_shared<model::ConstantModel>(0.05 * level));
    arch.bind_restart(l, std::make_shared<model::ConstantModel>(0.1 * level));
  }
  // ~4 fail-stop faults and ~1 corruption per trial over the ~55 s run.
  arch.set_fault_process(ft::FaultProcess(6000.0, 0.3));
  arch.set_sdc_process(inject::SdcProcess(25000.0, 0.5));
  return arch;
}

core::AppBEO make_app() {
  apps::LuleshConfig config;
  config.epr = 15;
  config.ranks = kRanks;
  config.timesteps = kTimesteps;
  config.fti = ft::FtiConfig{4, 2, 1};
  config.plan = {{ft::Level::kL1, 10, false}, {ft::Level::kL2, 20, false}};
  return apps::build_lulesh_fti(config);
}

core::EngineOptions make_options() {
  core::EngineOptions opt;
  opt.seed = 424242;
  opt.inject_faults = true;
  opt.downtime_seconds = 2.0;
  // Clean makespan is ~55 s; a 50x horizon keeps the pre-materialized
  // per-node fault schedules small while leaving generous thrash headroom.
  opt.max_sim_seconds = 50.0 * (kTimesteps * 0.5 + 20.0);
  return opt;
}

struct CampaignLeg {
  double wall_sec = 0;
  inject::CampaignResult result;
};

CampaignLeg run_leg(const core::AppBEO& app, const core::ArchBEO& arch,
                    unsigned threads) {
  inject::CampaignOptions opt;
  opt.trials = kTrials;
  opt.threads = threads;
  opt.engine = make_options();
  CampaignLeg leg;
  const auto start = Clock::now();
  leg.result = inject::run_campaign(app, arch, opt);
  leg.wall_sec = seconds_since(start);
  return leg;
}

bool campaigns_identical(const inject::CampaignResult& a,
                         const inject::CampaignResult& b) {
  if (a.totals.size() != b.totals.size()) return false;
  for (std::size_t i = 0; i < a.totals.size(); ++i)
    if (!bits_equal(a.totals[i], b.totals[i])) return false;
  return bits_equal(a.mean_faults, b.mean_faults) &&
         bits_equal(a.mean_lost_work, b.mean_lost_work) &&
         a.incomplete_trials == b.incomplete_trials &&
         a.fault_log.to_text() == b.fault_log.to_text();
}

void print_campaign_leg(const char* key, const CampaignLeg& leg, bool last) {
  const inject::CampaignResult& r = leg.result;
  std::cout << "    \"" << key << "\": {\"wall_sec\": " << leg.wall_sec
            << ", \"trials_per_sec\": "
            << (leg.wall_sec > 0
                    ? static_cast<double>(r.totals.size()) / leg.wall_sec
                    : 0.0)
            << ", \"mean\": " << r.total.mean << ", \"p10\": " << r.p10
            << ", \"p50\": " << r.p50 << ", \"p90\": " << r.p90
            << ", \"mean_faults\": " << r.mean_faults
            << ", \"mean_lost_work\": " << r.mean_lost_work
            << ", \"recoveries_by_level\": [" << r.mean_recoveries_by_level[0]
            << ", " << r.mean_recoveries_by_level[1] << ", "
            << r.mean_recoveries_by_level[2] << ", "
            << r.mean_recoveries_by_level[3]
            << "], \"incomplete_trials\": " << r.incomplete_trials << "}"
            << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  const core::AppBEO app = make_app();
  const core::ArchBEO arch = make_arch();

  // Single injected DES run: raw event throughput under faults.
  const auto single_start = Clock::now();
  const core::RunResult single = core::run_des(app, arch, make_options());
  const double single_wall = seconds_since(single_start);

  const CampaignLeg serial = run_leg(app, arch, 1);
  const CampaignLeg pooled = run_leg(app, arch, 0);

  const bool single_ok = single.completed && single.faults > 0;
  const bool identical = campaigns_identical(serial.result, pooled.result);
  const bool all_complete = pooled.result.incomplete_trials == 0;
  const bool wall_ok = pooled.wall_sec < 10.0;
  const bool gates_pass = single_ok && identical && all_complete && wall_ok;

  std::cout.precision(6);
  std::cout << "{\n  \"workload\": {\"app\": \"lulesh_fti\", \"ranks\": "
            << kRanks << ", \"timesteps\": " << kTimesteps
            << ", \"plan\": \"L1:10,L2:20\", \"trials\": " << kTrials
            << "},\n"
            << "  \"single_run\": {\"wall_sec\": " << single_wall
            << ", \"events\": " << single.sim_events
            << ", \"events_per_sec\": "
            << (single_wall > 0
                    ? static_cast<double>(single.sim_events) / single_wall
                    : 0.0)
            << ", \"total_seconds\": " << single.total_seconds
            << ", \"faults\": " << single.faults
            << ", \"rollbacks\": " << single.rollbacks
            << ", \"full_restarts\": " << single.full_restarts << "},\n"
            << "  \"campaign\": {\n";
  print_campaign_leg("threads_1", serial, false);
  print_campaign_leg("pooled", pooled, true);
  std::cout << "  },\n"
            << "  \"threads_bitwise_identical\": "
            << (identical ? "true" : "false") << ",\n"
            << "  \"gates\": {\"pooled_wall_max_sec\": 10.0, \"pass\": "
            << (gates_pass ? "true" : "false") << "}\n"
            << "}\n";

  if (!single_ok)
    std::cerr << "GATE: single injected run incomplete or fault-free\n";
  else if (!identical)
    std::cerr << "DIVERGENCE: campaign depends on the thread count\n";
  else if (!all_complete)
    std::cerr << "GATE: " << pooled.result.incomplete_trials
              << " trial(s) hit the simulation horizon\n";
  else if (!wall_ok)
    std::cerr << "GATE: pooled campaign wall " << pooled.wall_sec
              << " s >= 10 s\n";
  return gates_pass ? 0 : 1;
}
