// Extension bench: the resilience/overhead trade-off frontier.
//
// Fig. 9 prices fault tolerance; Table I says what each level can survive.
// This bench puts both on one table per candidate plan: fault-free overhead
// (simulated), survivability of random concurrent node-loss bursts
// (evaluated against the recoverability semantics, cross-checked by the
// executable FTI runtime), and expected runtime under injected faults —
// the complete cost/benefit picture a designer actually trades on.

#include <iostream>

#include "common.hpp"
#include "core/montecarlo.hpp"
#include "ft/checkpoint_cost.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ftbesst;

namespace {

/// Fraction of `trials` random bursts of `losses` distinct node losses the
/// plan's best level survives.
double survival_rate(ft::Level level, const ft::FtiConfig& fti,
                     std::int64_t ranks, int losses, util::Rng& rng) {
  const std::int64_t nodes = fti.nodes_for(ranks);
  int survived = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    ft::FailureSet burst;
    burst.kind = ft::FailureKind::kNodeLoss;
    while (static_cast<int>(burst.nodes.size()) < losses) {
      const auto victim = static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(nodes)));
      if (std::find(burst.nodes.begin(), burst.nodes.end(), victim) ==
          burst.nodes.end())
        burst.nodes.push_back(victim);
    }
    survived += ft::recoverable(level, fti, ranks, burst);
  }
  return 100.0 * survived / kTrials;
}

}  // namespace

int main() {
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL2),
      apps::checkpoint_kernel(ft::Level::kL3),
      apps::checkpoint_kernel(ft::Level::kL4)};
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);
  constexpr int kEpr = 15;
  constexpr std::int64_t kRanksUsed = 512;  // 256 nodes, 64 groups
  constexpr int kSteps = 2000;
  constexpr double kNodeMtbf = 3600.0;  // system MTBF ~14 s at 256 nodes

  const ft::FtiConfig fti = bench::case_study_fti();
  ft::CheckpointCostModel cost({}, fti);
  for (ft::Level level : {ft::Level::kL1, ft::Level::kL2, ft::Level::kL3,
                          ft::Level::kL4})
    cs.arch->bind_restart(
        level, std::make_shared<model::ConstantModel>(cost.restart_cost(
                   level, apps::lulesh_checkpoint_bytes(kEpr), kRanksUsed)));

  struct Plan {
    std::string name;
    std::vector<ft::PlanEntry> entries;
  };
  const std::vector<Plan> plans{
      {"No FT", {}},
      {"L1 / 40", {{ft::Level::kL1, 40}}},
      {"L2 / 40", {{ft::Level::kL2, 40}}},
      {"L3 / 80", {{ft::Level::kL3, 80}}},
      {"L4 / 200", {{ft::Level::kL4, 200}}},
      {"L1/40 + L4/400",
       {{ft::Level::kL1, 40}, {ft::Level::kL4, 400}}},
  };

  // Fault-free baseline for overhead.
  const double baseline =
      core::run_ensemble(
          bench::case_study_app(core::Scenario{"No FT", {}}, kEpr, kRanksUsed,
                                kSteps),
          *cs.arch, core::EngineOptions{}, 10)
          .total.mean;

  std::cout << "Resilience vs overhead frontier (LULESH_FTI, epr " << kEpr
            << ", " << kRanksUsed << " ranks, " << kSteps
            << " timesteps; bursts = simultaneous node losses)\n\n";

  util::TextTable t("Candidate checkpoint plans");
  t.set_header({"plan", "fault-free overhead", "1-loss", "2-loss burst",
                "4-loss burst", "E[T] @1h node MTBF (s)"});
  util::Rng rng(31);
  for (const Plan& plan : plans) {
    core::Scenario scenario{plan.name, plan.entries};
    const double clean =
        core::run_ensemble(
            bench::case_study_app(scenario, kEpr, kRanksUsed, kSteps),
            *cs.arch, core::EngineOptions{}, 10)
            .total.mean;

    std::string s1 = "-", s2 = "-", s4 = "-";
    if (!plan.entries.empty()) {
      const ft::CheckpointScheduler sched(plan.entries);
      const ft::Level best = sched.max_level();
      s1 = util::TextTable::pct(survival_rate(best, fti, kRanksUsed, 1, rng),
                                0);
      s2 = util::TextTable::pct(survival_rate(best, fti, kRanksUsed, 2, rng),
                                0);
      s4 = util::TextTable::pct(survival_rate(best, fti, kRanksUsed, 4, rng),
                                0);
    } else {
      s1 = s2 = s4 = "0%";
    }

    core::EngineOptions faulty;
    faulty.inject_faults = true;
    faulty.downtime_seconds = 10.0;
    faulty.max_sim_seconds = 8 * 3600.0;
    faulty.seed = 7;
    cs.arch->set_fault_process(ft::FaultProcess(kNodeMtbf, 1.0));
    const auto under_faults =
        core::run_ensemble(
            bench::case_study_app(scenario, kEpr, kRanksUsed, kSteps),
            *cs.arch, faulty, 10);
    cs.arch->set_fault_process(std::nullopt);

    t.add_row({plan.name,
               util::TextTable::pct(100.0 * (clean / baseline - 1.0), 1),
               s1, s2, s4,
               under_faults.incomplete_trials > 0
                   ? ">28800"
                   : util::TextTable::fmt(under_faults.total.mean, 0)});
  }
  t.print(std::cout);
  std::cout << "\nReading: moving down the table buys survivability "
               "(1-loss -> burst tolerance) at rising fault-free overhead; "
               "the expected-runtime column shows which purchase actually "
               "pays at this machine's fault rate — the FT-aware DSE "
               "decision in one view.\n";
  return 0;
}
