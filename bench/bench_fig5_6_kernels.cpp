// Reproduces Figs. 5-6 and Table III of the paper: kernel-level model
// validation for the LULESH timestep and FTI level-1/level-2 checkpointing,
// plus the prediction region beyond the benchmarked design space
// (epr > 25 simulating a bigger-memory notional node, and 1331 ranks beyond
// the 1000-rank allocation).

#include <fstream>
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main(int argc, char** argv) {
  const std::string csv_dir = argc > 1 ? argv[1] : "";
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL2)};
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);

  std::cout << "Reproduction of Figs. 5-6 + Table III (kernel model "
               "validation)\n"
            << "Validation region: epr {5..25} x ranks {8..1000}; "
               "prediction region: epr 30, ranks 1331.\n\n";

  // ---- Fig. 5/6 data: measured mean vs model prediction per kernel ----
  for (const std::string& kernel : kernels) {
    const auto& fitted = cs.suite.kernels.at(kernel);
    util::TextTable t("Fig. 5-6 series: " + kernel);
    t.set_header({"epr", "ranks", "measured_mean_s", "model_s", "region"});
    const auto& data = cs.calibration.at(kernel);
    for (const auto& row : data.rows()) {
      t.add_row({util::TextTable::fmt(row.params[0], 0),
                 util::TextTable::fmt(row.params[1], 0),
                 util::TextTable::fmt(row.mean_response(), 6),
                 util::TextTable::fmt(fitted.model->predict(row.params), 6),
                 "validation"});
    }
    // Prediction region (model only — the machine could not run these).
    for (std::int64_t ranks : bench::kRanks)
      t.add_row({"30", util::TextTable::fmt(double(ranks), 0), "-",
                 util::TextTable::fmt(
                     fitted.model->predict(std::vector<double>{
                         30.0, static_cast<double>(ranks)}),
                     6),
                 "prediction"});
    for (int epr : bench::kEprs)
      t.add_row({util::TextTable::fmt(double(epr), 0), "1331", "-",
                 util::TextTable::fmt(
                     fitted.model->predict(std::vector<double>{
                         static_cast<double>(epr), 1331.0}),
                     6),
                 "prediction"});
    t.print(std::cout);
    std::cout << "model: " << fitted.report.formula << "\n\n";
    if (!csv_dir.empty()) {
      std::ofstream os(csv_dir + "/fig5_6_" + kernel + ".csv");
      t.write_csv(os);
    }
  }

  // ---- Sanity of the Fig. 5-6 ordering claims ----
  {
    const auto& ts = *cs.suite.kernels.at(apps::kLuleshTimestep).model;
    const auto& l1 =
        *cs.suite.kernels.at(apps::checkpoint_kernel(ft::Level::kL1)).model;
    const auto& l2 =
        *cs.suite.kernels.at(apps::checkpoint_kernel(ft::Level::kL2)).model;
    util::TextTable t("Kernel ordering at epr=15 (timestep << L1 <= L2)");
    t.set_header({"ranks", "timestep_s", "ckpt_L1_s", "ckpt_L2_s"});
    for (std::int64_t ranks : bench::kRanks) {
      const std::vector<double> p{15.0, static_cast<double>(ranks)};
      t.add_row({util::TextTable::fmt(double(ranks), 0),
                 util::TextTable::fmt(ts.predict(p), 6),
                 util::TextTable::fmt(l1.predict(p), 6),
                 util::TextTable::fmt(l2.predict(p), 6)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // ---- Table III ----
  util::TextTable t3("Table III: Model Validation via Mean Average Percent "
                     "Error (paper: 6.64% / 16.68% / 14.50%)");
  t3.set_header({"Kernel", "MAPE", "method", "train MAPE", "test MAPE"});
  const std::map<std::string, std::string> pretty{
      {apps::kLuleshTimestep, "LULESH Timestep"},
      {apps::checkpoint_kernel(ft::Level::kL1), "Level 1 Checkpointing"},
      {apps::checkpoint_kernel(ft::Level::kL2), "Level 2 Checkpointing"}};
  for (const auto& report : cs.suite.reports) {
    t3.add_row({pretty.at(report.kernel),
                util::TextTable::pct(report.fit.full_mape),
                model::to_string(report.fit.chosen),
                util::TextTable::pct(report.fit.train_mape),
                util::TextTable::pct(report.fit.test_mape)});
  }
  t3.print(std::cout);
  return 0;
}
