// Extension bench: the compiled batch evaluator and parallel fitness path
// for symbolic-regression calibration, as machine-readable JSON.
//
// Measures population fitness evaluation (eval every individual on every
// row + linear scaling) over LULESH-timestep-like and FTI-checkpoint-like
// calibration datasets three ways:
//   - tree-walk: the seed path (recursive Expr::eval per row, fresh
//     output vector per individual, the seed's own scaling loop);
//   - compiled: ExprProgram batch eval, column-wise over the dataset's
//     SoA view, buffers reused, ResponseView scaling;
//   - compiled+parallel: same, fanned out over the shared task pool.
// Divergence gates (exit 1 on any failure): per-row compiled output must
// be bit-identical to Expr::eval for every individual, serial and parallel
// compiled fitness must be bit-identical to each other, and a full
// SymbolicRegressor::fit with a 1-thread and an N-thread pool must produce
// the same champion — the determinism contract of the calibration
// pipeline.

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "model/dataset.hpp"
#include "model/expr.hpp"
#include "model/expr_program.hpp"
#include "model/symreg.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Run `body` until it has consumed ~0.4s, return seconds per call.
template <typename F>
double time_per_call(F&& body) {
  body();  // warm-up (first call also populates caches/buffers)
  std::size_t reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) body();
    const double elapsed = seconds_since(start);
    if (elapsed > 0.4) return elapsed / static_cast<double>(reps);
    reps = elapsed > 1e-9
               ? std::max<std::size_t>(reps + 1,
                                       static_cast<std::size_t>(
                                           0.6 * static_cast<double>(reps) /
                                           elapsed))
               : reps * 16;
  }
}

/// LULESH-timestep-shaped calibration surface: work scales with elements
/// per rank, surface exchange with the 2/3 power, plus a log-shaped
/// collective term (paper fig. 5/6 kernels).
model::Dataset lulesh_dataset() {
  util::Rng rng(101);
  model::Dataset d({"elems", "ranks"});
  for (double e = 8; e <= 56; e += 0.5)
    for (double r = 8; r <= 1024; r *= 2) {
      const double elems = e * e * e;
      const double y = 2.4e-8 * elems + 1.1e-6 * std::cbrt(elems * elems) +
                       3.0e-6 * std::log2(r);
      std::vector<double> samples;
      for (int s = 0; s < 3; ++s)
        samples.push_back(rng.lognormal_median(y, 0.05));
      d.add_row({elems, r}, std::move(samples));
    }
  return d;
}

/// FTI multilevel-checkpoint-shaped surface: L1..L4 cost vs checkpoint
/// bytes and group size (local copy, partner send, RS encode, PFS write).
model::Dataset fti_dataset() {
  util::Rng rng(202);
  model::Dataset d({"mbytes", "group", "level"});
  for (double mb = 16; mb <= 2048 + 1; mb *= std::pow(2.0, 0.25))
    for (double g = 2; g <= 32; g *= 2)
      for (double level = 1; level <= 4; ++level) {
        const double bw = level == 1 ? 2000.0 : level == 2 ? 900.0
                          : level == 3             ? 350.0
                                                   : 120.0;
        const double y = mb / bw + (level >= 3 ? 1e-4 * mb * (g - 1) / g : 0.0) +
                         2e-3 * level;
        std::vector<double> samples;
        for (int s = 0; s < 3; ++s)
          samples.push_back(rng.lognormal_median(y, 0.08));
        d.add_row({mb, g, level}, std::move(samples));
      }
  return d;
}

/// A GP-like population: the same canonical seeds SymReg starts from plus
/// random trees, i.e. the mix of shapes the fitness loop actually sees.
std::vector<model::Expr> make_population(std::size_t count,
                                         std::size_t num_vars,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<model::Expr> pop;
  pop.reserve(count);
  while (pop.size() < count)
    pop.push_back(model::Expr::random(rng, num_vars, 6));
  return pop;
}

/// The seed's per-candidate linear scale + MAPE, verbatim (single
/// interleaved reduction, per-row |y| divide). The tree-walk baseline pays
/// this because the seed's fitness loop did; the compiled paths use the
/// reworked ResponseView form below, matching symreg.cpp.
double seed_linear_scale_mape(const std::vector<double>& f,
                              const std::vector<double>& y) {
  const std::size_t n = f.size();
  if (n == 0) return 0.0;
  double sf = 0.0, sy = 0.0, sff = 0.0, sfy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sf += f[i];
    sy += y[i];
    sff += f[i] * f[i];
    sfy += f[i] * y[i];
  }
  const double den = static_cast<double>(n) * sff - sf * sf;
  double scale = 0.0, offset = 0.0;
  if (std::abs(den) > 1e-30) {
    scale = (static_cast<double>(n) * sfy - sf * sy) / den;
    offset = (sy - scale * sf) / static_cast<double>(n);
  } else {
    offset = sy / static_cast<double>(n);
  }
  double acc = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (y[i] == 0.0) continue;
    const double pred = std::max(0.0, scale * f[i] + offset);
    acc += std::abs(pred - y[i]) / std::abs(y[i]);
    ++used;
  }
  return used ? 100.0 * acc / static_cast<double>(used) : 0.0;
}

/// Responses preprocessed once per dataset, mirroring the calibration
/// pipeline in symreg.cpp: the MAPE denominator is a cached 1/|y| multiply
/// and the nonzero count and Σy are known up front.
struct ResponseView {
  const std::vector<double>* y = nullptr;
  std::vector<double> inv_abs;  // 0.0 where y == 0
  std::size_t used = 0;
  double sum = 0.0;
};

ResponseView make_response_view(const model::Dataset& data) {
  ResponseView v;
  v.y = &data.responses();
  v.inv_abs.resize(v.y->size());
  for (std::size_t i = 0; i < v.y->size(); ++i) {
    v.inv_abs[i] = (*v.y)[i] == 0.0 ? 0.0 : 1.0 / std::abs((*v.y)[i]);
    if ((*v.y)[i] != 0.0) ++v.used;
    v.sum += (*v.y)[i];
  }
  return v;
}

/// Two-lane deterministic reductions, same shape as symreg.cpp's
/// linear_scale_fit.
double linear_scale_mape(const std::vector<double>& f,
                         const ResponseView& ry) {
  const std::vector<double>& y = *ry.y;
  const std::size_t n = f.size();
  if (n == 0) return 0.0;
  double sf[2] = {0.0, 0.0};
  double sff[2] = {0.0, 0.0}, sfy[2] = {0.0, 0.0};
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    sf[0] += f[i];
    sf[1] += f[i + 1];
    sff[0] += f[i] * f[i];
    sff[1] += f[i + 1] * f[i + 1];
    sfy[0] += f[i] * y[i];
    sfy[1] += f[i + 1] * y[i + 1];
  }
  for (; i < n; ++i) {
    sf[0] += f[i];
    sff[0] += f[i] * f[i];
    sfy[0] += f[i] * y[i];
  }
  const double tf = sf[0] + sf[1];
  const double ty = ry.sum;
  const double tff = sff[0] + sff[1];
  const double tfy = sfy[0] + sfy[1];
  const double den = static_cast<double>(n) * tff - tf * tf;
  double scale = 0.0, offset = 0.0;
  if (std::abs(den) > 1e-30) {
    scale = (static_cast<double>(n) * tfy - tf * ty) / den;
    offset = (ty - scale * tf) / static_cast<double>(n);
  } else {
    offset = ty / static_cast<double>(n);
  }
  double acc[2] = {0.0, 0.0};
  i = 0;
  for (; i + 2 <= n; i += 2) {
    acc[0] +=
        std::abs(std::max(0.0, scale * f[i] + offset) - y[i]) * ry.inv_abs[i];
    acc[1] += std::abs(std::max(0.0, scale * f[i + 1] + offset) - y[i + 1]) *
              ry.inv_abs[i + 1];
  }
  for (; i < n; ++i)
    acc[0] +=
        std::abs(std::max(0.0, scale * f[i] + offset) - y[i]) * ry.inv_abs[i];
  return ry.used ? 100.0 * (acc[0] + acc[1]) / static_cast<double>(ry.used)
                 : 0.0;
}

/// Seed path: recursive tree walk per row, fresh vector per individual,
/// seed-style scaling.
std::vector<double> fitness_tree_walk(const std::vector<model::Expr>& pop,
                                      const model::Dataset& data) {
  std::vector<double> fitness(pop.size());
  for (std::size_t p = 0; p < pop.size(); ++p) {
    std::vector<double> f;
    f.reserve(data.num_rows());
    for (const model::Row& r : data.rows())
      f.push_back(pop[p].eval(r.params));
    fitness[p] = seed_linear_scale_mape(f, data.responses());
  }
  return fitness;
}

/// The bit-identity contract is on the *evaluator*: for every individual,
/// ExprProgram::eval_dataset must reproduce per-row Expr::eval exactly.
/// (The two pipelines' scaling reductions associate differently by design,
/// so the fitness scalars themselves are compared serial-vs-parallel,
/// where the contract does require bitwise equality.)
bool evaluators_bit_identical(const std::vector<model::Expr>& pop,
                              const model::Dataset& data) {
  std::vector<double> walk, batch;
  model::EvalScratch scratch;
  model::ExprProgram prog;
  for (const model::Expr& e : pop) {
    walk.clear();
    for (const model::Row& r : data.rows()) walk.push_back(e.eval(r.params));
    model::ExprProgram::compile_into(e, prog);
    prog.eval_dataset(data, batch, scratch);
    if (walk.size() != batch.size() ||
        std::memcmp(walk.data(), batch.data(), walk.size() * sizeof(double)) !=
            0)
      return false;
  }
  return true;
}

/// Compiled path, serial: one program per individual, buffers reused.
std::vector<double> fitness_compiled(const std::vector<model::Expr>& pop,
                                     const model::Dataset& data,
                                     const ResponseView& ry) {
  std::vector<double> fitness(pop.size());
  std::vector<double> f;
  model::EvalScratch scratch;
  model::ExprProgram prog;
  for (std::size_t p = 0; p < pop.size(); ++p) {
    model::ExprProgram::compile_into(pop[p], prog);
    prog.eval_dataset(data, f, scratch);
    fitness[p] = linear_scale_mape(f, ry);
  }
  return fitness;
}

/// Compiled path fanned out over the shared pool, per-individual slots.
std::vector<double> fitness_compiled_parallel(
    const std::vector<model::Expr>& pop, const model::Dataset& data,
    const ResponseView& ry) {
  std::vector<double> fitness(pop.size());
  util::parallel_for(pop.size(), [&](std::size_t p) {
    thread_local std::vector<double> f;
    thread_local model::EvalScratch scratch;
    thread_local model::ExprProgram prog;
    model::ExprProgram::compile_into(pop[p], prog);
    prog.eval_dataset(data, f, scratch);
    fitness[p] = linear_scale_mape(f, ry);
  });
  return fitness;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct DatasetBench {
  double tree_walk_s = 0;
  double compiled_s = 0;
  double parallel_s = 0;
  bool identical = false;
};

DatasetBench bench_dataset(const model::Dataset& data,
                           const std::vector<model::Expr>& pop) {
  DatasetBench r;
  const ResponseView ry = make_response_view(data);
  const auto compiled = fitness_compiled(pop, data, ry);
  const auto parallel = fitness_compiled_parallel(pop, data, ry);
  r.identical =
      evaluators_bit_identical(pop, data) && bitwise_equal(compiled, parallel);
  r.tree_walk_s = time_per_call([&] { fitness_tree_walk(pop, data); });
  r.compiled_s = time_per_call([&] { fitness_compiled(pop, data, ry); });
  r.parallel_s =
      time_per_call([&] { fitness_compiled_parallel(pop, data, ry); });
  return r;
}

/// Full fit with a 1-worker and an N-worker pool: champion must match.
bool fit_thread_invariant(const model::Dataset& data) {
  util::Rng r1(5), r2(5);
  const auto [tr1, te1] = data.split(0.8, r1);
  const auto [tr2, te2] = data.split(0.8, r2);
  model::SymRegConfig cfg;
  cfg.population = 128;
  cfg.generations = 10;
  cfg.seed = 33;
  util::TaskPool one(1);
  cfg.pool = &one;
  const auto serial = model::SymbolicRegressor(cfg).fit(tr1, te1);
  cfg.pool = nullptr;  // shared pool at its natural width
  const auto pooled = model::SymbolicRegressor(cfg).fit(tr2, te2);
  return serial.model && pooled.model &&
         serial.model->describe() == pooled.model->describe() &&
         std::memcmp(&serial.train_mape, &pooled.train_mape, sizeof(double)) ==
             0 &&
         std::memcmp(&serial.test_mape, &pooled.test_mape, sizeof(double)) == 0;
}

void print_dataset(const char* name, const DatasetBench& b, bool last) {
  std::cout << "  \"" << name << "\": {\n"
            << "    \"tree_walk_seconds_per_pass\": " << b.tree_walk_s << ",\n"
            << "    \"compiled_seconds_per_pass\": " << b.compiled_s << ",\n"
            << "    \"compiled_parallel_seconds_per_pass\": " << b.parallel_s
            << ",\n"
            << "    \"compiled_speedup\": " << b.tree_walk_s / b.compiled_s
            << ",\n"
            << "    \"compiled_parallel_speedup\": "
            << b.tree_walk_s / b.parallel_s << ",\n"
            << "    \"fitness_bit_identical\": "
            << (b.identical ? "true" : "false") << "\n"
            << "  }" << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  const model::Dataset lulesh = lulesh_dataset();
  const model::Dataset fti = fti_dataset();
  const auto pop_lulesh = make_population(256, lulesh.num_params(), 7);
  const auto pop_fti = make_population(256, fti.num_params(), 8);

  const DatasetBench bl = bench_dataset(lulesh, pop_lulesh);
  const DatasetBench bf = bench_dataset(fti, pop_fti);
  const bool invariant = fit_thread_invariant(lulesh);

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"workers\": " << util::TaskPool::shared().worker_count()
            << ",\n"
            << "  \"population\": 256,\n"
            << "  \"lulesh_rows\": " << lulesh.num_rows() << ",\n"
            << "  \"fti_rows\": " << fti.num_rows() << ",\n";
  print_dataset("lulesh_timestep", bl, false);
  print_dataset("fti_checkpoint", bf, false);
  std::cout << "  \"fit_champion_thread_invariant\": "
            << (invariant ? "true" : "false") << ",\n"
            << "  \"obs_enabled\": " << (obs::enabled() ? "true" : "false");
  if (obs::enabled()) {
    // Calibration-progress snapshot (the fits above ran with obs on).
    const obs::MetricsSnapshot snap = obs::scrape();
    std::cout << ",\n  \"obs\": {\n"
              << "    \"symreg_generations\": "
              << snap.counter("symreg.generations") << ",\n"
              << "    \"symreg_evals\": " << snap.counter("symreg.evals")
              << ",\n"
              << "    \"symreg_memo_hits\": "
              << snap.counter("symreg.memo_hits") << ",\n"
              << "    \"pool_tasks\": " << snap.counter("pool.tasks") << "\n"
              << "  }";
  }
  std::cout << "\n}\n";

  const bool ok = bl.identical && bf.identical && invariant;
  if (!ok) std::cerr << "DIVERGENCE: compiled path disagrees with oracle\n";
  return ok ? 0 : 1;
}
