// Extension bench: synchronous vs asynchronous (staged) checkpointing —
// FTI's dedicated-process flush mode. Async hides most of the flush behind
// computation (cheaper fault-free runs) but widens the unprotected window
// (a fault during the background flush falls back to the previous
// checkpoint). This bench quantifies both sides across checkpoint periods,
// fault-free and under injected faults.

#include <iostream>

#include "common.hpp"
#include "core/montecarlo.hpp"
#include "ft/checkpoint_cost.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL4)};
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);
  constexpr int kEpr = 15;
  constexpr std::int64_t kRanksUsed = 64;
  constexpr int kSteps = 2000;
  constexpr double kNodeMtbf = 1200.0;  // 37.5 s system MTBF at 32 nodes

  ft::CheckpointCostModel cost({}, bench::case_study_fti());
  cs.arch->bind_restart(
      ft::Level::kL4,
      std::make_shared<model::ConstantModel>(cost.restart_cost(
          ft::Level::kL4, apps::lulesh_checkpoint_bytes(kEpr), kRanksUsed)));

  const std::vector<double> point{static_cast<double>(kEpr),
                                  static_cast<double>(kRanksUsed)};
  std::cout << "Synchronous vs asynchronous L4 checkpointing (LULESH_FTI, "
            << "epr " << kEpr << ", " << kRanksUsed << " ranks, " << kSteps
            << " timesteps)\n"
            << "L4 instance cost "
            << cs.suite.kernels.at(apps::checkpoint_kernel(ft::Level::kL4))
                   .model->predict(point)
            << " s; async stages 15% on the critical path\n\n";

  util::TextTable t("Fault-free overhead and faulty expected runtime");
  t.set_header({"period", "sync clean (s)", "async clean (s)",
                "sync @faults (s)", "async @faults (s)"});
  for (int period : {25, 50, 100, 200}) {
    auto scenario = [&](bool async) {
      core::Scenario s{"L4", {{ft::Level::kL4, period}}};
      s.plan[0].async = async;
      return s;
    };
    auto clean = [&](bool async) {
      return core::run_ensemble(
                 bench::case_study_app(scenario(async), kEpr, kRanksUsed,
                                       kSteps),
                 *cs.arch, core::EngineOptions{}, 10)
          .total.mean;
    };
    auto faulty = [&](bool async) {
      core::EngineOptions opt;
      opt.inject_faults = true;
      opt.downtime_seconds = 2.0;
      opt.max_sim_seconds = 4 * 3600.0;
      opt.seed = 5 + static_cast<std::uint64_t>(period);
      cs.arch->set_fault_process(ft::FaultProcess(kNodeMtbf, 1.0));
      const double v =
          core::run_ensemble(
              bench::case_study_app(scenario(async), kEpr, kRanksUsed,
                                    kSteps),
              *cs.arch, opt, 15)
              .total.mean;
      cs.arch->set_fault_process(std::nullopt);
      return v;
    };
    t.add_row({std::to_string(period), util::TextTable::fmt(clean(false), 1),
               util::TextTable::fmt(clean(true), 1),
               util::TextTable::fmt(faulty(false), 1),
               util::TextTable::fmt(faulty(true), 1)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: async wins fault-free at every period "
               "(the flush hides under compute, bounded below by the stage "
               "cost and the flush-drain throughput at short periods). "
               "Under faults the advantage persists here because the "
               "~1 s in-flight-flush exposure window is small against the "
               "~37 s system MTBF; as MTBF approaches the flush time the "
               "wider unprotected window erodes the async gain — the "
               "trade-off knob this bench exists to measure.\n";
  return 0;
}
