// Extension bench: prediction-service load generator, as machine-readable
// JSON.
//
// Spins up an in-process Server over a cheap analytic registry (the models
// are constant-time; the ensemble work is real), then measures:
//   - cold latency: distinct simulate requests, each computed from scratch;
//   - hot latency: the same request repeatedly, answered from the sharded
//     result cache (byte-identical to the cold payload by construction);
//   - sustained throughput: client threads issuing a hot/cold mix as fast
//     as the socket allows, plus the server-side cache hit rate.
//
// The headline gate (scripts/check.sh): a cache hit must be at least 100x
// faster than the cold computation it replaces — the entire point of
// keeping a long-running daemon instead of re-invoking the CLI.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "apps/kernels.hpp"
#include "apps/stencil3d.hpp"
#include "core/arch.hpp"
#include "model/perf_model.hpp"
#include "net/topology.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kColdSamples = 8;
constexpr int kHotSamples = 200;
constexpr int kLoadThreads = 4;
constexpr double kLoadSeconds = 2.0;
constexpr double kRequiredSpeedup = 100.0;

std::shared_ptr<const svc::Registry> make_registry() {
  auto topo = std::make_shared<net::TwoStageFatTree>(8, 8, 4);
  auto arch =
      std::make_shared<core::ArchBEO>("bench", topo, net::CommParams{}, 8);
  arch->bind_kernel(apps::kLuleshTimestep,
                    std::make_shared<model::ConstantModel>(0.01));
  arch->bind_kernel(apps::kStencilSweep,
                    std::make_shared<model::ConstantModel>(0.005));
  for (int level = 1; level <= 4; ++level)
    arch->bind_kernel(
        apps::checkpoint_kernel(static_cast<ft::Level>(level)),
        std::make_shared<model::ConstantModel>(0.002 * level));
  return std::make_shared<const svc::Registry>(
      svc::Registry{std::move(arch)});
}

/// A deliberately heavy request: a faulty ensemble big enough that the cold
/// path costs real milliseconds, so the hot/cold ratio measures the cache,
/// not socket noise.
svc::Json heavy_request(int seed) {
  return svc::Json::parse(
      "{\"op\":\"simulate\",\"app\":\"lulesh\",\"epr\":10,\"ranks\":64,"
      "\"timesteps\":400,\"plan\":\"L1:20,L4:100\",\"trials\":2000,"
      "\"mtbf_hours\":0.5,\"downtime\":60,\"seed\":" +
      std::to_string(seed) + "}");
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  const std::string socket_path =
      "/tmp/ftbesst-bench-svc-" + std::to_string(::getpid()) + ".sock";
  svc::ServerOptions options;
  options.unix_socket_path = socket_path;
  options.queue_capacity = 256;
  svc::Server server(make_registry(), options);
  server.start();

  bool all_ok = true;
  bool bytes_identical = true;

  // --- cold: distinct requests, computed from scratch ---
  std::vector<double> cold_s;
  {
    svc::Client client = svc::Client::connect_unix(socket_path, 120.0);
    for (int i = 0; i < kColdSamples; ++i) {
      const auto start = Clock::now();
      const svc::ClientResponse reply = client.call(heavy_request(1000 + i));
      cold_s.push_back(seconds_since(start));
      all_ok = all_ok && reply.ok && !reply.cached;
    }
  }

  // --- hot: one request repeatedly, answered from the cache ---
  std::vector<double> hot_s;
  std::string cold_bytes;
  {
    svc::Client client = svc::Client::connect_unix(socket_path, 120.0);
    const svc::Json request = heavy_request(1000);  // already cached above
    for (int i = 0; i < kHotSamples; ++i) {
      const auto start = Clock::now();
      const svc::ClientResponse reply = client.call(request);
      hot_s.push_back(seconds_since(start));
      all_ok = all_ok && reply.ok && reply.cached;
      if (cold_bytes.empty())
        cold_bytes = reply.result_bytes;
      else
        bytes_identical = bytes_identical && reply.result_bytes == cold_bytes;
    }
  }

  // --- sustained mixed load: mostly hot, occasional cold ---
  std::atomic<std::uint64_t> load_requests{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kLoadThreads; ++t)
    threads.emplace_back([&, t] {
      svc::Client client = svc::Client::connect_unix(socket_path, 120.0);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // 1 in 16 requests is a fresh key; the rest hit the cache.
        const int seed =
            (i % 16 == 0) ? 5000 + t * 10000 + i : 1000 + (i % kColdSamples);
        const svc::ClientResponse reply = client.call(heavy_request(seed));
        if (reply.ok) load_requests.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  const auto load_start = Clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(kLoadSeconds * 1000)));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  const double load_elapsed = seconds_since(load_start);

  const svc::Server::Stats stats = server.stats();
  server.shutdown();
  server.wait();

  const double cold_ms = median(cold_s) * 1e3;
  const double hot_ms = median(hot_s) * 1e3;
  const double speedup = cold_ms / hot_ms;
  const double req_per_s =
      static_cast<double>(load_requests.load()) / load_elapsed;
  const double hit_rate =
      stats.cache.hits + stats.cache.misses == 0
          ? 0.0
          : static_cast<double>(stats.cache.hits) /
                static_cast<double>(stats.cache.hits + stats.cache.misses);
  const bool pass =
      all_ok && bytes_identical && speedup >= kRequiredSpeedup;

  std::cout << "{\n";
  std::cout << "  \"bench\": \"svc\",\n";
  std::cout << "  \"cold_samples\": " << kColdSamples << ",\n";
  std::cout << "  \"hot_samples\": " << kHotSamples << ",\n";
  std::cout << "  \"cold_latency_ms\": " << cold_ms << ",\n";
  std::cout << "  \"hot_latency_ms\": " << hot_ms << ",\n";
  std::cout << "  \"hot_speedup\": " << speedup << ",\n";
  std::cout << "  \"required_speedup\": " << kRequiredSpeedup << ",\n";
  std::cout << "  \"load_threads\": " << kLoadThreads << ",\n";
  std::cout << "  \"load_seconds\": " << load_elapsed << ",\n";
  std::cout << "  \"req_per_s\": " << req_per_s << ",\n";
  std::cout << "  \"cache_hit_rate\": " << hit_rate << ",\n";
  std::cout << "  \"coalesced\": " << stats.coalesced << ",\n";
  std::cout << "  \"completed\": " << stats.completed << ",\n";
  std::cout << "  \"all_responses_ok\": " << (all_ok ? "true" : "false")
            << ",\n";
  std::cout << "  \"hot_bytes_identical\": "
            << (bytes_identical ? "true" : "false") << ",\n";
  std::cout << "  \"pass\": " << (pass ? "true" : "false") << "\n";
  std::cout << "}\n";
  return pass ? 0 : 1;
}
