// Extension bench: the shared task pool and the DES hot-path allocation
// cuts, as machine-readable JSON for the perf trajectory.
//
// Four measurements:
//   - pool task throughput (per-task submit/complete round trips);
//   - dynamically-claimed parallel_for throughput (the trial-claiming path);
//   - payload freelist allocation rate and hit ratio (vs the heap it cut);
//   - event-heap push/pop rate;
// plus the headline number: a miniature DSE sweep (scenarios x points x
// Monte-Carlo trials) run fully serial vs on the shared pool, with the
// means cross-checked bit-identical — the determinism contract — and the
// wall-clock speedup reported.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "core/arch.hpp"
#include "core/beo.hpp"
#include "core/workflow.hpp"
#include "obs/obs.hpp"
#include "sim/detail/payload_pool.hpp"
#include "sim/event_heap.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double bench_pool_tasks(std::size_t tasks) {
  std::atomic<std::uint64_t> sink{0};
  const auto start = Clock::now();
  util::TaskGroup group;
  for (std::size_t i = 0; i < tasks; ++i)
    group.run([&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
  group.wait();
  const double elapsed = seconds_since(start);
  if (sink.load() != tasks) std::abort();
  return static_cast<double>(tasks) / elapsed;
}

double bench_parallel_for(std::size_t n) {
  std::atomic<std::uint64_t> sink{0};
  const auto start = Clock::now();
  util::parallel_for(n, [&sink](std::size_t i) {
    sink.fetch_add(i & 1, std::memory_order_relaxed);
  });
  return static_cast<double>(n) / seconds_since(start);
}

struct PayloadResult {
  double allocs_per_sec = 0;
  double hit_ratio = 0;
};

PayloadResult bench_payload_pool(std::size_t allocs) {
  sim::detail::payload_pool_trim();
  const auto before = sim::detail::payload_pool_stats();
  const auto start = Clock::now();
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < allocs; ++i) {
    auto p = sim::box<std::uint64_t>(i);
    checksum += *sim::unbox<std::uint64_t>(p.get());
  }
  const double elapsed = seconds_since(start);
  if (checksum != allocs * (allocs - 1) / 2) std::abort();
  const auto after = sim::detail::payload_pool_stats();
  PayloadResult r;
  r.allocs_per_sec = static_cast<double>(allocs) / elapsed;
  r.hit_ratio = static_cast<double>(after.freelist_hits - before.freelist_hits) /
                static_cast<double>(after.allocations - before.allocations);
  return r;
}

double bench_event_heap(std::size_t events) {
  util::Rng rng(11);
  sim::EventHeap heap;
  heap.reserve(1024);
  const auto start = Clock::now();
  std::uint64_t processed = 0;
  // Steady-state queue of ~1k events: push one, pop one.
  for (std::size_t i = 0; i < 1024; ++i) {
    sim::Event ev;
    ev.time = static_cast<sim::SimTime>(rng.uniform_int(1u << 20));
    heap.push(std::move(ev));
  }
  for (std::size_t i = 0; i < events; ++i) {
    sim::Event ev = heap.pop();
    ev.time += static_cast<sim::SimTime>(rng.uniform_int(1u << 12));
    ev.src_seq = i;
    heap.push(std::move(ev));
    ++processed;
  }
  const double elapsed = seconds_since(start);
  if (processed != events) std::abort();
  return static_cast<double>(events) / elapsed;
}

struct SweepResult {
  double serial_seconds = 0;
  double pool_seconds = 0;
  bool bit_identical = false;
};

SweepResult bench_dse_sweep() {
  auto topo = std::make_shared<net::TwoStageFatTree>(2, 4, 1);
  core::ArchBEO arch("benchmachine", topo, net::CommParams{}, 2);
  ft::FtiConfig fti;
  fti.group_size = 2;
  fti.node_size = 2;
  arch.set_fti(fti);
  auto base = std::make_shared<model::ConstantModel>(1e-3);
  arch.bind_kernel("work", std::make_shared<model::NoisyModel>(base, 0.1));
  arch.bind_kernel("ckpt_l1", std::make_shared<model::ConstantModel>(5e-3));

  const std::vector<core::Scenario> scenarios{
      {"No FT", {}},
      {"L1", {{ft::Level::kL1, 10}}},
  };
  const std::vector<std::vector<double>> points{{200}, {400}, {600}, {800}};
  auto make_app = [](const core::Scenario& scenario,
                     const std::vector<double>& params) {
    core::AppBEO app("sweep", 4);
    const int steps = static_cast<int>(params[0]);
    for (int step = 1; step <= steps; ++step) {
      app.compute("work", {4.0});
      app.end_timestep();
      if (!scenario.plan.empty() && step % 10 == 0)
        app.checkpoint(ft::Level::kL1, "ckpt_l1", {4.0});
    }
    return app;
  };
  core::EngineOptions opt;
  opt.seed = 99;
  // FTBESST_BENCH_TRIALS scales the sweep for gating contexts where the
  // default mini run is too short to time reliably (scripts/check.sh's obs
  // overhead gate uses a bigger sample).
  std::size_t trials = 32;
  if (const char* e = std::getenv("FTBESST_BENCH_TRIALS"); e && *e) {
    const long v = std::strtol(e, nullptr, 10);
    if (v > 0) trials = static_cast<std::size_t>(v);
  }
  const std::size_t kTrials = trials;

  SweepResult r;
  auto start = Clock::now();
  const auto serial =
      core::run_dse(scenarios, points, make_app, arch, opt, kTrials, 1);
  r.serial_seconds = seconds_since(start);
  start = Clock::now();
  const auto pooled =
      core::run_dse(scenarios, points, make_app, arch, opt, kTrials, 0);
  r.pool_seconds = seconds_since(start);

  r.bit_identical = serial.size() == pooled.size();
  for (std::size_t i = 0; r.bit_identical && i < serial.size(); ++i)
    r.bit_identical =
        std::memcmp(&serial[i].ensemble.total.mean,
                    &pooled[i].ensemble.total.mean, sizeof(double)) == 0 &&
        serial[i].ensemble.totals == pooled[i].ensemble.totals;
  return r;
}

}  // namespace

int main() {
  // Observe the bench itself when obs is on (FTBESST_OBS=1 in the
  // environment): the scrape below then reports what the pool did across
  // every measurement in this process.
  obs::reset();
  const auto wall_start = Clock::now();
  const double pool_tps = bench_pool_tasks(50000);
  const double pfor_ips = bench_parallel_for(2000000);
  const PayloadResult payload = bench_payload_pool(2000000);
  const double heap_eps = bench_event_heap(2000000);
  const SweepResult sweep = bench_dse_sweep();

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"workers\": " << util::TaskPool::shared().worker_count()
            << ",\n"
            << "  \"pool_tasks_per_sec\": " << pool_tps << ",\n"
            << "  \"parallel_for_items_per_sec\": " << pfor_ips << ",\n"
            << "  \"payload_allocs_per_sec\": " << payload.allocs_per_sec
            << ",\n"
            << "  \"payload_freelist_hit_ratio\": " << payload.hit_ratio
            << ",\n"
            << "  \"event_heap_ops_per_sec\": " << heap_eps << ",\n"
            << "  \"dse_serial_seconds\": " << sweep.serial_seconds << ",\n"
            << "  \"dse_pool_seconds\": " << sweep.pool_seconds << ",\n"
            << "  \"dse_speedup\": "
            << sweep.serial_seconds / sweep.pool_seconds << ",\n"
            << "  \"dse_bit_identical\": "
            << (sweep.bit_identical ? "true" : "false") << ",\n"
            << "  \"obs_enabled\": " << (obs::enabled() ? "true" : "false");
  if (obs::enabled()) {
    const double wall = seconds_since(wall_start);
    const obs::MetricsSnapshot snap = obs::scrape();
    const double busy_s =
        static_cast<double>(snap.counter("pool.busy_ns")) * 1e-9;
    const double utilization =
        wall > 0.0
            ? busy_s / (wall * static_cast<double>(
                                   util::TaskPool::shared().worker_count()))
            : 0.0;
    std::cout << ",\n  \"obs\": {\n"
              << "    \"pool_tasks\": " << snap.counter("pool.tasks") << ",\n"
              << "    \"pool_steals\": " << snap.counter("pool.steals")
              << ",\n"
              << "    \"pool_wakeups\": " << snap.counter("pool.wakeups")
              << ",\n"
              << "    \"pool_busy_seconds\": " << busy_s << ",\n"
              << "    \"pool_queue_high_water\": "
              << snap.gauge("pool.queue_high_water") << ",\n"
              << "    \"worker_utilization\": " << utilization << "\n"
              << "  }";
  }
  std::cout << "\n}\n";
  return sweep.bit_identical ? 0 : 1;
}
