// Extension bench: checkpoint-period DSE vs the Young/Daly analytic optimum.
// Sweeps the LULESH_FTI checkpoint period under fault injection and locates
// the empirical minimum of expected runtime; compares it against Young's
// sqrt(2*C*M) and Daly's refinement, and against the first-order expected-
// runtime formula. This is the kind of FT-parameter DSE the paper's
// workflow is built to enable.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/montecarlo.hpp"
#include "ft/young_daly.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL4)};
  // L4 so that every fault is recoverable and the period is the only knob.
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);
  constexpr int kEpr = 15;
  constexpr std::int64_t kRanksUsed = 64;
  constexpr int kSteps = 4000;
  constexpr double kNodeMtbfSeconds = 1800.0;
  constexpr std::size_t kTrials = 20;

  const std::int64_t nodes = kRanksUsed / bench::kNodeSize;
  const double system_mtbf = kNodeMtbfSeconds / static_cast<double>(nodes);

  const std::vector<double> ts_params{static_cast<double>(kEpr),
                                      static_cast<double>(kRanksUsed)};
  const double ts_cost =
      cs.suite.kernels.at(apps::kLuleshTimestep).model->predict(ts_params);
  const double ckpt_cost =
      cs.suite.kernels.at(apps::checkpoint_kernel(ft::Level::kL4))
          .model->predict(ts_params);
  ft::CheckpointCostModel cost_model({}, bench::case_study_fti());
  const double restart = cost_model.restart_cost(
      ft::Level::kL4, apps::lulesh_checkpoint_bytes(kEpr), kRanksUsed);
  cs.arch->bind_restart(ft::Level::kL4,
                        std::make_shared<model::ConstantModel>(restart));
  cs.arch->set_fault_process(ft::FaultProcess(kNodeMtbfSeconds, 1.0));

  const double young = ft::young_interval(ckpt_cost, system_mtbf);
  const double daly = ft::daly_interval(ckpt_cost, system_mtbf);
  std::cout << "Checkpoint-period DSE vs Young/Daly (LULESH_FTI + L4, epr "
            << kEpr << ", " << kRanksUsed << " ranks, " << kSteps
            << " timesteps)\n"
            << "timestep " << ts_cost << " s, checkpoint " << ckpt_cost
            << " s, restart " << restart << " s, system MTBF " << system_mtbf
            << " s\n"
            << "Young interval: " << young << " s ("
            << young / ts_cost << " timesteps);  Daly interval: " << daly
            << " s (" << daly / ts_cost << " timesteps)\n\n";

  util::TextTable t("Simulated expected runtime vs checkpoint period");
  t.set_header({"period (timesteps)", "period (s work)", "sim mean (s)",
                "analytic E[T] (s)", "mean rollbacks"});
  double best_period = 0.0;
  double best_runtime = std::numeric_limits<double>::infinity();
  for (int period : {10, 25, 50, 100, 200, 400, 800, 2000}) {
    core::Scenario scenario{"L4", {{ft::Level::kL4, period}}};
    const core::AppBEO app =
        bench::case_study_app(scenario, kEpr, kRanksUsed, kSteps);
    core::EngineOptions opt;
    opt.inject_faults = true;
    opt.downtime_seconds = 2.0;
    opt.seed = 17 + static_cast<std::uint64_t>(period);
    const auto ens = core::run_ensemble(app, *cs.arch, opt, kTrials);
    const double interval_work = period * ts_cost;
    const double analytic = ft::expected_runtime_cr(
        kSteps * ts_cost, interval_work, ckpt_cost, restart + 2.0,
        system_mtbf);
    if (ens.total.mean < best_runtime) {
      best_runtime = ens.total.mean;
      best_period = period;
    }
    t.add_row({std::to_string(period),
               util::TextTable::fmt(interval_work, 2),
               util::TextTable::fmt(ens.total.mean, 1),
               std::isfinite(analytic) ? util::TextTable::fmt(analytic, 1)
                                       : "inf",
               util::TextTable::fmt(ens.mean_rollbacks, 1)});
  }
  t.print(std::cout);
  std::cout << "\nEmpirical best period: " << best_period << " timesteps ("
            << best_period * ts_cost << " s of work) vs Young "
            << young / ts_cost << " / Daly " << daly / ts_cost
            << " timesteps — same order, as expected from first-order "
               "optimality.\n";
  return 0;
}
