// Extension bench: scaled-serving-tier load generator, as machine-readable
// JSON. Three phases, each a check.sh gate:
//
//   1. Saturation scaling — a fixed-service-time workload (the sleep op,
//      20 ms) driven by 16 concurrent connections against a router
//      fronting 1 worker, then N workers. Every worker is pinned to
//      FTBESST_THREADS=2 (the CI box has one core, so the win must come
//      from tier concurrency, not CPU parallelism). Gate: N workers
//      sustain >= 2.5x the single-worker req/s at saturation.
//   2. Byte identity — real predict/simulate requests through the tier
//      must be byte-identical to a single in-process server over the same
//      analytic registry. Gate: zero divergent responses.
//   3. Rolling restart under load — 8 client threads keep driving a warm
//      tier while every worker is restarted one at a time. Gate: zero
//      failed non-shed requests (clean ok/overload only), bounded p99
//      during the restart, and a measurable warm-cache handoff (the
//      restarted shards answer journal-replayed keys from cache).
//
// Workers are real `ftbesst worker` processes (FTBESST_CLI_PATH), the same
// path production `serve --workers N` takes.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/registry.hpp"
#include "svc/router.hpp"
#include "svc/server.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kTierWorkers = 4;
constexpr int kLoadConnections = 16;
constexpr double kSleepMs = 20.0;
constexpr double kSaturationSeconds = 2.0;
constexpr double kRequiredScaling = 2.5;
constexpr int kUniqueRequests = 96;
constexpr int kRestartThreads = 8;
constexpr double kMaxRestartP99Ms = 1000.0;
constexpr double kMinRewarmFraction = 0.5;

std::string socket_base(const char* tag) {
  return "/tmp/ftbesst-bench-tier-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

/// A router fronting `n` spawned `ftbesst worker --analytic` processes,
/// each pinned to two pool threads.
std::unique_ptr<svc::Router> make_tier(int n, const char* tag) {
  svc::RouterOptions opt;
  opt.unix_socket_path = socket_base(tag);
  opt.health_interval_ms = 100.0;
  opt.worker_grace_s = 10.0;
  for (int i = 0; i < n; ++i) {
    svc::WorkerSpec spec;
    spec.socket_path = opt.unix_socket_path + ".w" + std::to_string(i);
    spec.spawn_argv = {FTBESST_CLI_PATH,
                       "worker",
                       "--socket",
                       spec.socket_path,
                       "--name",
                       "worker-" + std::to_string(i),
                       "--analytic",
                       "1"};
    spec.spawn_env = {"FTBESST_THREADS=2"};
    opt.workers.push_back(std::move(spec));
  }
  auto router = std::make_unique<svc::Router>(std::move(opt));
  router->start();
  if (!router->wait_healthy(120.0)) {
    std::cerr << "tier '" << tag << "' never became healthy\n";
    std::exit(1);
  }
  return router;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1));
  return samples[index];
}

struct LoadResult {
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
};

/// Drive the sleep op at saturation through `path` for `seconds`.
LoadResult saturate_sleep(const std::string& path, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0}, errors{0};
  std::vector<std::vector<double>> latencies(kLoadConnections);
  std::vector<std::thread> threads;
  threads.reserve(kLoadConnections);
  const svc::Json request = svc::Json::parse(
      "{\"op\":\"sleep\",\"ms\":" + std::to_string(kSleepMs) + "}");
  for (int t = 0; t < kLoadConnections; ++t)
    threads.emplace_back([&, t] {
      try {
        svc::Client client = svc::Client::connect_unix(path, 120.0);
        while (!stop.load(std::memory_order_relaxed)) {
          const auto start = Clock::now();
          const svc::ClientResponse reply = client.call(request);
          if (reply.ok) {
            latencies[t].push_back(seconds_since(start) * 1e3);
            completed.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const std::exception&) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  const auto start = Clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  const double elapsed = seconds_since(start);

  LoadResult result;
  std::vector<double> all;
  for (const auto& lane : latencies)
    all.insert(all.end(), lane.begin(), lane.end());
  result.completed = completed.load();
  result.errors = errors.load();
  result.req_per_s = static_cast<double>(result.completed) / elapsed;
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  return result;
}

/// The byte-identity/rolling-restart request mix (cacheable, cheap,
/// deterministic under the analytic registry).
std::vector<svc::Json> unique_requests() {
  std::vector<svc::Json> requests;
  requests.reserve(kUniqueRequests);
  for (int i = 0; i < kUniqueRequests; ++i) {
    if (i % 3 == 0) {
      requests.push_back(svc::Json::parse(
          "{\"op\":\"predict\",\"kernel\":\"lulesh_timestep\",\"params\":[" +
          std::to_string(4 + i % 32) + "," + std::to_string(8 << (i % 4)) +
          "]}"));
    } else {
      requests.push_back(svc::Json::parse(
          "{\"op\":\"simulate\",\"app\":\"lulesh\",\"epr\":10,\"ranks\":64,"
          "\"timesteps\":30,\"plan\":\"L1:10\",\"trials\":" +
          std::to_string(2 + i % 3) + ",\"seed\":" + std::to_string(7000 + i) +
          "}"));
    }
  }
  return requests;
}

}  // namespace

int main() {
  bool pass = true;
  std::cout << "{\n  \"bench\": \"tier\",\n";

  // ------------------------------------------------------------------
  // Phase 1: saturation scaling, 1 worker vs kTierWorkers.
  LoadResult single, scaled;
  {
    auto tier = make_tier(1, "one");
    single = saturate_sleep(socket_base("one"), kSaturationSeconds);
    tier->shutdown();
    tier->wait();
  }
  {
    auto tier = make_tier(kTierWorkers, "many");
    scaled = saturate_sleep(socket_base("many"), kSaturationSeconds);
    tier->shutdown();
    tier->wait();
  }
  const double scaling =
      single.req_per_s > 0.0 ? scaled.req_per_s / single.req_per_s : 0.0;
  const bool scaling_ok = scaling >= kRequiredScaling &&
                          single.errors == 0 && scaled.errors == 0;
  pass = pass && scaling_ok;
  std::cout << "  \"saturation\": {\n"
            << "    \"connections\": " << kLoadConnections << ",\n"
            << "    \"sleep_ms\": " << kSleepMs << ",\n"
            << "    \"one_worker_req_per_s\": " << single.req_per_s << ",\n"
            << "    \"one_worker_p50_ms\": " << single.p50_ms << ",\n"
            << "    \"one_worker_p99_ms\": " << single.p99_ms << ",\n"
            << "    \"tier_workers\": " << kTierWorkers << ",\n"
            << "    \"tier_req_per_s\": " << scaled.req_per_s << ",\n"
            << "    \"tier_p50_ms\": " << scaled.p50_ms << ",\n"
            << "    \"tier_p99_ms\": " << scaled.p99_ms << ",\n"
            << "    \"scaling\": " << scaling << ",\n"
            << "    \"required_scaling\": " << kRequiredScaling << ",\n"
            << "    \"pass\": " << (scaling_ok ? "true" : "false") << "\n"
            << "  },\n";

  // ------------------------------------------------------------------
  // Phase 2 + 3 share one tier.
  const auto requests = unique_requests();

  // Reference answers from a plain in-process server.
  std::vector<std::string> expected(requests.size());
  {
    svc::ServerOptions options;
    options.unix_socket_path = socket_base("ref");
    svc::Server reference(
        std::make_shared<const svc::Registry>(svc::Registry::analytic()),
        options);
    reference.start();
    svc::Client direct =
        svc::Client::connect_unix(options.unix_socket_path, 120.0);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const svc::ClientResponse reply = direct.call(requests[i]);
      if (!reply.ok) {
        std::cerr << "reference server failed: " << reply.raw << "\n";
        return 1;
      }
      expected[i] = reply.result_bytes;
    }
    reference.shutdown();
    reference.wait();
  }

  auto tier = make_tier(kTierWorkers, "main");
  const std::string tier_path = socket_base("main");

  std::uint64_t divergent = 0;
  {
    svc::Client client = svc::Client::connect_unix(tier_path, 120.0);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const svc::ClientResponse reply = client.call(requests[i]);
      if (!reply.ok || reply.result_bytes != expected[i]) ++divergent;
    }
  }
  const bool identity_ok = divergent == 0;
  pass = pass && identity_ok;
  std::cout << "  \"byte_identity\": {\n"
            << "    \"requests\": " << requests.size() << ",\n"
            << "    \"divergent\": " << divergent << ",\n"
            << "    \"pass\": " << (identity_ok ? "true" : "false") << "\n"
            << "  },\n";

  // ------------------------------------------------------------------
  // Phase 3: rolling restart under live load.
  std::atomic<bool> stop{false};
  std::atomic<bool> restarting{false};
  std::atomic<std::uint64_t> ok_count{0}, shed_count{0}, failed_non_shed{0};
  std::vector<std::vector<double>> restart_latencies(kRestartThreads);
  std::vector<std::thread> threads;
  threads.reserve(kRestartThreads);
  for (int t = 0; t < kRestartThreads; ++t)
    threads.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          svc::Client client = svc::Client::connect_unix(tier_path, 120.0);
          while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t index = i++ % requests.size();
            const auto start = Clock::now();
            const svc::ClientResponse reply = client.call(requests[index]);
            const double ms = seconds_since(start) * 1e3;
            if (reply.ok) {
              if (reply.result_bytes != expected[index])
                failed_non_shed.fetch_add(1);
              else
                ok_count.fetch_add(1);
              if (restarting.load(std::memory_order_relaxed))
                restart_latencies[t].push_back(ms);
            } else if (reply.code == "overload") {
              shed_count.fetch_add(1);  // clean shed while a shard restarts
            } else {
              failed_non_shed.fetch_add(1);
            }
          }
        } catch (const std::exception&) {
          // A dropped client connection is a protocol failure: the router
          // must stay up and framed throughout the restart.
          failed_non_shed.fetch_add(1);
        }
      }
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto restart_start = Clock::now();
  restarting.store(true);
  const std::uint64_t restarted = tier->rolling_restart();
  restarting.store(false);
  const double restart_seconds = seconds_since(restart_start);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& thread : threads) thread.join();

  // Warm handoff: how many keys the restarted shards answer from cache.
  std::uint64_t rewarmed = 0;
  {
    svc::Client client = svc::Client::connect_unix(tier_path, 120.0);
    for (const svc::Json& request : requests) {
      const svc::ClientResponse reply = client.call(request);
      if (reply.ok && reply.cached) ++rewarmed;
    }
  }
  const double rewarm_fraction =
      static_cast<double>(rewarmed) / static_cast<double>(requests.size());

  std::vector<double> during;
  for (const auto& lane : restart_latencies)
    during.insert(during.end(), lane.begin(), lane.end());
  const double restart_p50 = percentile(during, 0.50);
  const double restart_p99 = percentile(during, 0.99);
  const double restart_req_per_s =
      restart_seconds > 0.0
          ? static_cast<double>(during.size()) / restart_seconds
          : 0.0;

  const svc::Router::Stats stats = tier->stats();
  tier->shutdown();
  tier->wait();

  const bool restart_ok =
      restarted == static_cast<std::uint64_t>(kTierWorkers) &&
      failed_non_shed.load() == 0 && restart_p99 <= kMaxRestartP99Ms &&
      rewarm_fraction >= kMinRewarmFraction && stats.journal_replayed > 0;
  pass = pass && restart_ok;
  std::cout << "  \"rolling_restart\": {\n"
            << "    \"workers_restarted\": " << restarted << ",\n"
            << "    \"restart_seconds\": " << restart_seconds << ",\n"
            << "    \"req_per_s_during_restart\": " << restart_req_per_s
            << ",\n"
            << "    \"p50_ms_during_restart\": " << restart_p50 << ",\n"
            << "    \"p99_ms_during_restart\": " << restart_p99 << ",\n"
            << "    \"max_p99_ms\": " << kMaxRestartP99Ms << ",\n"
            << "    \"ok\": " << ok_count.load() << ",\n"
            << "    \"shed_overload\": " << shed_count.load() << ",\n"
            << "    \"failed_non_shed\": " << failed_non_shed.load() << ",\n"
            << "    \"journal_replayed\": " << stats.journal_replayed << ",\n"
            << "    \"rewarm_fraction\": " << rewarm_fraction << ",\n"
            << "    \"min_rewarm_fraction\": " << kMinRewarmFraction << ",\n"
            << "    \"pass\": " << (restart_ok ? "true" : "false") << "\n"
            << "  },\n";

  std::cout << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  return pass ? 0 : 1;
}
