// Extension bench: DES-core scaling — symmetry folding and the
// incremental-round parallel engine — as machine-readable JSON.
//
// Two sections:
//   - "engine_fold": run_des with symmetry folding on vs off, on the
//     largest corpus machine (48 symmetric ranks) and the Fig.-1-class
//     Vulcan notional machine (393,216 ranks = 96 leaves x 256 nodes x 16
//     ranks/node). Reports wall-clock, PDES events, events/sec, and the
//     fold speedup. Folding collapses every symmetric rank onto one
//     representative (sim/fold.hpp), so the folded run prices the 400k-rank
//     machine with a constant-size event population while the predictions
//     stay bitwise identical.
//   - "parallel_core": raw event throughput of the incremental-round
//     engine (sim/simulation.*) on a symmetric 8x8x8 torus under uniform
//     random traffic, at 1/2/4 threads: wall-clock, events/sec, the number
//     of synchronization rounds, and thread bit-identity (end time, event
//     count, deliveries, and hop totals must not depend on the thread
//     count).
//
// Exit 1 (DIVERGENCE/GATE line on stderr) if:
//   - folded and unfolded predictions differ bitwise on either scenario,
//   - the Vulcan folded run is slower than 10 s or the fold speedup is
//     below 20x (the 48-rank machine is reported ungated: both of its runs
//     finish in microseconds, where timing noise dominates), or
//   - any parallel_core run disagrees with the 1-thread reference.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine_des.hpp"
#include "net/des_torus.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "verify/scenario.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!bits_equal(a[i], b[i])) return false;
  return true;
}

/// The big_machine.scenario corpus entry, stripped to its deterministic
/// core (run_des prices single deterministic executions).
verify::Scenario corpus_48() {
  verify::Scenario s;
  s.seed = 31;
  s.leaves = 3;
  s.nodes_per_leaf = 8;
  s.spines = 2;
  s.ranks_per_node = 4;
  s.ranks = 48;
  s.timesteps = 10;
  s.kernel_cost = 0.5;
  s.exchange_degree = 4;
  s.exchange_bytes = 1u << 20;
  s.plan = {{ft::Level::kL2, 5, false}};
  return s;
}

/// The vulcan_393k.scenario corpus entry: 96 x 256 x 16 = 393,216 ranks.
verify::Scenario vulcan_393k() {
  verify::Scenario s;
  s.seed = 47;
  s.leaves = 96;
  s.nodes_per_leaf = 256;
  s.spines = 16;
  s.ranks_per_node = 16;
  s.ranks = 393216;
  s.timesteps = 12;
  s.kernel_cost = 30.0;
  s.exchange_degree = 6;
  s.exchange_bytes = 2u << 20;
  s.allreduce_bytes = 8192;
  s.fti.group_size = 16;
  s.fti.node_size = 4;
  s.ckpt_bytes_per_rank = 128u << 20;
  s.plan = {{ft::Level::kL1, 2, false}, {ft::Level::kL4, 6, false}};
  return s;
}

struct FoldLeg {
  double wall_sec = 0;
  std::uint64_t events = 0;
  core::RunResult result;
};

FoldLeg run_leg(const verify::Scenario& s, bool fold) {
  verify::BuiltScenario built = verify::build(s);
  built.options.fold_symmetry = fold;
  FoldLeg leg;
  const auto start = Clock::now();
  leg.result = core::run_des(built.app, built.arch, built.options);
  leg.wall_sec = seconds_since(start);
  leg.events = leg.result.sim_events;
  return leg;
}

bool predictions_identical(const core::RunResult& a,
                           const core::RunResult& b) {
  return bits_equal(a.total_seconds, b.total_seconds) &&
         bits_equal(a.timestep_end_times, b.timestep_end_times) &&
         a.checkpoint_timesteps == b.checkpoint_timesteps &&
         a.instructions_executed == b.instructions_executed &&
         a.faults == b.faults && a.rollbacks == b.rollbacks &&
         a.full_restarts == b.full_restarts && a.completed == b.completed;
}

void print_fold_leg(const char* key, const FoldLeg& leg, bool last) {
  std::cout << "      \"" << key << "\": {\"wall_sec\": " << leg.wall_sec
            << ", \"events\": " << leg.events << ", \"events_per_sec\": "
            << (leg.wall_sec > 0
                    ? static_cast<double>(leg.events) / leg.wall_sec
                    : 0.0)
            << ", \"total_seconds\": " << leg.result.total_seconds << "}"
            << (last ? "\n" : ",\n");
}

// --- parallel_core: symmetric torus under uniform random traffic ---

struct CoreRun {
  double wall_sec = 0;
  sim::SimStats stats;
  std::uint64_t delivered = 0;
  std::uint64_t hops = 0;
};

CoreRun run_torus(unsigned threads, int messages) {
  net::Torus topo({8, 8, 8});
  sim::Simulation sim;
  net::DesTorus torus(sim, topo, {});
  util::Rng rng(7);
  for (int m = 0; m < messages; ++m) {
    const auto src = static_cast<net::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(topo.num_nodes())));
    auto dst = static_cast<net::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(topo.num_nodes())));
    if (dst == src) dst = (dst + 1) % topo.num_nodes();
    torus.send(src, dst, 4096 + 64 * (m % 61),
               sim::from_seconds(1e-6 * static_cast<double>(m % 997)));
  }
  CoreRun run;
  const auto start = Clock::now();
  run.stats = threads <= 1 ? sim.run() : sim.run_parallel(threads);
  run.wall_sec = seconds_since(start);
  run.delivered = torus.delivered();
  run.hops = torus.total_hops();
  return run;
}

}  // namespace

int main() {
  // Fold section: the two golden-corpus machines.
  struct Entry {
    const char* name;
    verify::Scenario scenario;
    bool gated;  ///< speedup + wall gates apply (Vulcan only; the 48-rank
                 ///< machine finishes in microseconds either way)
    FoldLeg folded, unfolded;
  };
  std::vector<Entry> entries = {
      {"corpus_48", corpus_48(), false, {}, {}},
      {"vulcan_393k", vulcan_393k(), true, {}, {}}};
  bool identical = true;
  double gated_speedup = 1e300, gated_folded_wall = 0;
  for (Entry& e : entries) {
    e.folded = run_leg(e.scenario, true);
    e.unfolded = run_leg(e.scenario, false);
    identical &= predictions_identical(e.folded.result, e.unfolded.result);
    if (e.gated) {
      gated_folded_wall = e.folded.wall_sec;
      if (e.folded.wall_sec > 0)
        gated_speedup = e.unfolded.wall_sec / e.folded.wall_sec;
    }
  }

  // Parallel-core section: thread sweep against the 1-thread reference.
  const int messages = 60000;
  std::vector<unsigned> thread_counts = {1, 2, 4};
  std::vector<CoreRun> runs;
  runs.reserve(thread_counts.size());
  for (const unsigned t : thread_counts) runs.push_back(run_torus(t, messages));
  bool thread_identical = true;
  for (const CoreRun& r : runs)
    thread_identical &= r.stats.events_processed ==
                            runs[0].stats.events_processed &&
                        r.stats.end_time == runs[0].stats.end_time &&
                        r.delivered == runs[0].delivered &&
                        r.hops == runs[0].hops;

  const bool gates_pass = identical && thread_identical &&
                          gated_speedup >= 20.0 && gated_folded_wall < 10.0;

  std::cout.precision(6);
  std::cout << "{\n  \"engine_fold\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::cout << "    \"" << e.name << "\": {\n"
              << "      \"ranks\": " << e.scenario.ranks << ",\n";
    print_fold_leg("folded", e.folded, false);
    print_fold_leg("unfolded", e.unfolded, false);
    std::cout << "      \"fold_speedup\": "
              << (e.folded.wall_sec > 0
                      ? e.unfolded.wall_sec / e.folded.wall_sec
                      : 0.0)
              << ",\n      \"gated\": " << (e.gated ? "true" : "false")
              << "\n    }" << (i + 1 == entries.size() ? "\n" : ",\n");
  }
  std::cout << "  },\n  \"parallel_core\": {\n"
            << "    \"topology\": \"torus 8x8x8\", \"messages\": " << messages
            << ",\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CoreRun& r = runs[i];
    std::cout << "    \"threads_" << thread_counts[i]
              << "\": {\"wall_sec\": " << r.wall_sec
              << ", \"events\": " << r.stats.events_processed
              << ", \"events_per_sec\": "
              << (r.wall_sec > 0
                      ? static_cast<double>(r.stats.events_processed) /
                            r.wall_sec
                      : 0.0)
              << ", \"rounds\": " << r.stats.windows << "}"
              << (i + 1 == runs.size() ? "\n" : ",\n");
  }
  std::cout << "  },\n"
            << "  \"predictions_bitwise_identical\": "
            << (identical ? "true" : "false") << ",\n"
            << "  \"threads_bitwise_identical\": "
            << (thread_identical ? "true" : "false") << ",\n"
            << "  \"gates\": {\"scope\": \"vulcan_393k\", "
               "\"fold_speedup_min\": 20.0, \"folded_wall_max_sec\": 10.0, "
               "\"pass\": "
            << (gates_pass ? "true" : "false") << "}\n"
            << "}\n";

  if (!identical)
    std::cerr << "DIVERGENCE: folded and unfolded predictions differ\n";
  else if (!thread_identical)
    std::cerr << "DIVERGENCE: parallel core depends on the thread count\n";
  else if (!gates_pass)
    std::cerr << "GATE: vulcan fold speedup " << gated_speedup
              << " < 20 or folded wall " << gated_folded_wall << " >= 10 s\n";
  return gates_pass ? 0 : 1;
}
