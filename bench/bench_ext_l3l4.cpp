// Forward-looking bench: the paper restricts its case study to FTI levels
// 1-2 ("the levels with the least amount of communication ... we intend to
// model and validate Quartz communication in the future, at which point we
// can more fully explore the higher levels"). Our substrate includes a
// fat-tree communication model and an L3/L4 cost composition (with a real
// Reed-Solomon coder behind L3's operation counts), so this bench produces
// those higher-level curves: per-instance cost and full-system overhead for
// all four levels.

#include <iostream>

#include "common.hpp"
#include "core/montecarlo.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL2),
      apps::checkpoint_kernel(ft::Level::kL3),
      apps::checkpoint_kernel(ft::Level::kL4)};
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);

  std::cout << "Forward exploration of FTI levels 3-4 (paper future work)\n\n";

  // ---- Per-instance modeled cost for every level ----
  util::TextTable tc("Fitted per-instance checkpoint cost (s), epr 15");
  tc.set_header({"ranks", "L1", "L2", "L3", "L4", "timestep"});
  for (std::int64_t ranks : bench::kRanks) {
    const std::vector<double> p{15.0, static_cast<double>(ranks)};
    std::vector<std::string> row{
        util::TextTable::fmt(static_cast<double>(ranks), 0)};
    for (ft::Level level : {ft::Level::kL1, ft::Level::kL2, ft::Level::kL3,
                            ft::Level::kL4})
      row.push_back(util::TextTable::fmt(
          cs.suite.kernels.at(apps::checkpoint_kernel(level))
              .model->predict(p),
          4));
    row.push_back(util::TextTable::fmt(
        cs.suite.kernels.at(apps::kLuleshTimestep).model->predict(p), 4));
    tc.add_row(std::move(row));
  }
  tc.print(std::cout);
  std::cout << '\n';

  // ---- Model validation for the new kernels (Table III extension) ----
  util::TextTable tv("Model validation MAPE for L3/L4 kernels");
  tv.set_header({"kernel", "MAPE", "method"});
  for (const auto& report : cs.suite.reports)
    tv.add_row({report.kernel, util::TextTable::pct(report.fit.full_mape),
                model::to_string(report.fit.chosen)});
  tv.print(std::cout);
  std::cout << '\n';

  // ---- Full-system overhead per level (Fig. 9 extension) ----
  const std::vector<core::Scenario> scenarios{
      {"No FT", {}},
      {"L1", {{ft::Level::kL1, bench::kCheckpointPeriod}}},
      {"L2", {{ft::Level::kL2, bench::kCheckpointPeriod}}},
      {"L3", {{ft::Level::kL3, bench::kCheckpointPeriod}}},
      {"L4", {{ft::Level::kL4, bench::kCheckpointPeriod}}},
  };
  util::TextTable to("Full-system runtime overhead vs No FT (epr 15, 200 "
                     "timesteps, period 40)");
  to.set_header({"scenario", "64 ranks", "1000 ranks"});
  std::map<std::string, std::map<std::int64_t, double>> totals;
  for (const auto& scenario : scenarios)
    for (std::int64_t ranks : {std::int64_t{64}, std::int64_t{1000}}) {
      const core::AppBEO app = bench::case_study_app(scenario, 15, ranks);
      core::EngineOptions opt;
      opt.seed = 3 + static_cast<std::uint64_t>(ranks);
      totals[scenario.name][ranks] =
          core::run_ensemble(app, *cs.arch, opt, 10).total.mean;
    }
  for (const auto& scenario : scenarios) {
    std::vector<std::string> row{scenario.name};
    for (std::int64_t ranks : {std::int64_t{64}, std::int64_t{1000}})
      row.push_back(util::TextTable::fmt(100.0 * totals[scenario.name][ranks] /
                                             totals["No FT"][ranks],
                                         0) +
                    "%");
    to.add_row(std::move(row));
  }
  to.print(std::cout);
  std::cout << "\nExpected shape: cost and resilience both rise with level; "
               "L4's PFS flush grows fastest with machine size (the reason "
               "multi-level schemes checkpoint L4 rarely and L1 often).\n";
  return 0;
}
