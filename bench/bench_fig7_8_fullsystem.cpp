// Reproduces Figs. 7-8 and Table IV: full LULESH_FTI application runtime
// over 200 timesteps under three fault-tolerance scenarios (No FT, L1,
// L1 & L2; checkpoint period 40), simulated with the FT-aware BE-SST models
// and validated against measured runs at 64 and 1000 ranks.

#include <fstream>
#include <iostream>

#include "common.hpp"
#include "core/engine_des.hpp"
#include "core/montecarlo.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main(int argc, char** argv) {
  const std::string csv_dir = argc > 1 ? argv[1] : "";
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL2)};
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);
  const auto scenarios = bench::case_study_scenarios();
  constexpr int kEpr = 15;  // case-study problem size for the trace plots
  constexpr std::size_t kTrials = 30;

  std::cout << "Reproduction of Figs. 7-8 + Table IV (full system, 200 "
               "timesteps, checkpoint period 40, epr "
            << kEpr << ")\n\n";

  util::Rng measure_rng(777);
  std::vector<double> measured_totals, simulated_totals;
  std::vector<std::string> scenario_of_total;

  for (std::int64_t ranks : {std::int64_t{64}, std::int64_t{1000}}) {
    util::TextTable trace("Fig. " + std::string(ranks == 64 ? "7" : "8") +
                          ": cumulative runtime (s), " +
                          std::to_string(ranks) + " ranks");
    trace.set_header({"timestep", "measured NoFT", "sim NoFT", "measured L1",
                      "sim L1", "measured L1&L2", "sim L1&L2"});
    std::vector<std::vector<double>> measured_cols, sim_cols;
    for (const auto& scenario : scenarios) {
      // Measured: one actual run on the (synthetic) machine.
      const auto measured = cs.testbed.run_application(
          kEpr, ranks, bench::kTimesteps, scenario.plan, measure_rng);
      // Simulated: Monte-Carlo ensemble mean trace.
      const core::AppBEO app = bench::case_study_app(scenario, kEpr, ranks);
      core::EngineOptions opt;
      opt.seed = 42 + static_cast<std::uint64_t>(ranks);
      const auto ens = core::run_ensemble(app, *cs.arch, opt, kTrials);
      measured_cols.push_back(measured.timestep_end_times);
      sim_cols.push_back(ens.mean_timestep_end);
      measured_totals.push_back(measured.total_seconds);
      simulated_totals.push_back(ens.total.mean);
      scenario_of_total.push_back(scenario.name + " @" +
                                  std::to_string(ranks));
    }
    for (int step = 9; step < bench::kTimesteps; step += 10) {
      std::vector<std::string> row{std::to_string(step + 1)};
      for (std::size_t s = 0; s < scenarios.size(); ++s) {
        row.push_back(util::TextTable::fmt(measured_cols[s][step], 3));
        row.push_back(util::TextTable::fmt(sim_cols[s][step], 3));
      }
      trace.add_row(std::move(row));
    }
    trace.print(std::cout);
    std::cout << "(checkpoint instances after timesteps 40, 80, 120, 160, "
                 "200 — the jumps between rows)\n\n";
    if (!csv_dir.empty()) {
      std::ofstream os(csv_dir + "/fig" +
                       std::string(ranks == 64 ? "7" : "8") + "_traces.csv");
      trace.write_csv(os);
    }
  }

  // ---- Table IV: full-system MAPE over every (epr, ranks) combination ----
  // The paper validates per-scenario across the whole Table II space; we do
  // the same with one measured run and the ensemble-mean simulation per
  // combination.
  util::TextTable t4(
      "Table IV: Validation for Full System Simulation "
      "(paper: 20.13% / 17.64% / 14.54%)");
  t4.set_header({"Fault-Tolerance Level", "MAPE"});
  for (const auto& scenario : scenarios) {
    std::vector<double> measured, simulated;
    util::Rng rng(99);
    std::uint64_t stream = 0;
    for (int epr : bench::kEprs) {
      for (std::int64_t ranks : bench::kRanks) {
        const auto m = cs.testbed.run_application(
            epr, ranks, bench::kTimesteps, scenario.plan, rng);
        const core::AppBEO app = bench::case_study_app(scenario, epr, ranks);
        core::EngineOptions opt;
        opt.seed = 1000 + ++stream;
        const auto ens = core::run_ensemble(app, *cs.arch, opt, 10);
        measured.push_back(m.total_seconds);
        simulated.push_back(ens.total.mean);
      }
    }
    t4.add_row({"LULESH + " + scenario.name,
                util::TextTable::pct(util::mape_percent(measured, simulated))});
  }
  t4.print(std::cout);

  // ---- Engine cross-check: the same AppBEOs executed as a discrete-event
  // component simulation (the SST path) must agree with the coarse engine
  // exactly in deterministic mode.
  {
    util::TextTable tx("Coarse vs discrete-event engine (deterministic "
                       "models, total seconds)");
    tx.set_header({"config", "coarse", "discrete-event", "|delta|"});
    core::ArchBEO det("quartz-det", cs.topology, net::CommParams{}, 36);
    det.set_fti(bench::case_study_fti());
    for (const auto& [kernel, fitted] : cs.suite.kernels)
      det.bind_kernel(kernel, fitted.model);  // noise-free bindings
    for (std::int64_t ranks : {std::int64_t{64}, std::int64_t{1000}}) {
      for (const auto& scenario : scenarios) {
        const core::AppBEO app = bench::case_study_app(scenario, kEpr, ranks);
        const double bsp = core::run_bsp(app, det).total_seconds;
        const double des = core::run_des(app, det).total_seconds;
        tx.add_row({scenario.name + " @" + std::to_string(ranks),
                    util::TextTable::fmt(bsp, 4), util::TextTable::fmt(des, 4),
                    util::TextTable::fmt(std::abs(bsp - des), 9)});
      }
    }
    tx.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "\nPer-configuration totals (measured vs simulated):\n";
  util::TextTable tt("Totals behind the Fig. 7-8 traces");
  tt.set_header({"config", "measured_s", "simulated_s", "error"});
  for (std::size_t i = 0; i < measured_totals.size(); ++i) {
    const double err = 100.0 *
                       (simulated_totals[i] - measured_totals[i]) /
                       measured_totals[i];
    tt.add_row({scenario_of_total[i],
                util::TextTable::fmt(measured_totals[i], 2),
                util::TextTable::fmt(simulated_totals[i], 2),
                util::TextTable::pct(err)});
  }
  tt.print(std::cout);
  return 0;
}
