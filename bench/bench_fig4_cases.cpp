// Reproduces the Fig. 4 fault-assumption taxonomy as an experiment. The
// paper simulates Case 1 (no faults, no FT) and Case 3 (FT overhead, no
// faults) and defers Cases 2 and 4 (fault injection) to future work; our
// engine implements them, so all four quadrants are exercised here: total
// runtime vs per-node MTBF for each case, showing the crossover where
// checkpointing pays for itself.

#include <iostream>

#include "common.hpp"
#include "core/montecarlo.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL2)};
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);
  constexpr int kEpr = 15;
  constexpr std::int64_t kRanksUsed = 64;
  constexpr int kSteps = 2000;
  constexpr std::size_t kTrials = 20;

  // Use the L4 analytic restart path for recoveries (rollback I/O).
  ft::CheckpointCostModel cost_model({}, bench::case_study_fti());
  for (ft::Level level : {ft::Level::kL1, ft::Level::kL2}) {
    const double restart = cost_model.restart_cost(
        level, apps::lulesh_checkpoint_bytes(kEpr), kRanksUsed);
    cs.arch->bind_restart(level,
                          std::make_shared<model::ConstantModel>(restart));
  }

  const core::Scenario no_ft{"No FT", {}};
  const core::Scenario l1l2{"L1 & L2",
                            {{ft::Level::kL1, bench::kCheckpointPeriod},
                             {ft::Level::kL2, bench::kCheckpointPeriod}}};

  std::cout << "Fig. 4 fault-assumption cases, all four quadrants "
               "(LULESH_FTI, epr " << kEpr << ", " << kRanksUsed
            << " ranks, " << kSteps << " timesteps)\n"
            << "Case 1: no faults, no FT | Case 2: faults, no FT\n"
            << "Case 3: no faults, FT    | Case 4: faults + FT (L1&L2, "
               "period 40)\n\n";

  // Cases 1 and 3: fault-free.
  const auto case1 = core::run_ensemble(
      bench::case_study_app(no_ft, kEpr, kRanksUsed, kSteps), *cs.arch,
      core::EngineOptions{}, kTrials);
  const auto case3 = core::run_ensemble(
      bench::case_study_app(l1l2, kEpr, kRanksUsed, kSteps), *cs.arch,
      core::EngineOptions{}, kTrials);

  util::TextTable t("Runtime vs per-node MTBF (mean of " +
                    std::to_string(kTrials) + " Monte-Carlo trials, s)");
  t.set_header({"node MTBF (h)", "Case 1", "Case 2", "Case 3", "Case 4",
                "C2 restarts", "C4 rollbacks"});
  // The run lasts tens of seconds, so the interesting fault regime is
  // minutes-scale node MTBF (system MTBF = node MTBF / 32 nodes).
  for (double mtbf_hours : {0.05, 0.1, 0.25, 0.5, 1.0, 4.0, 24.0}) {
    core::EngineOptions opt;
    opt.inject_faults = true;
    opt.downtime_seconds = 2.0;
    opt.max_sim_seconds = 4.0 * 3600.0;  // cap thrashing runs at 4 sim-hours
    opt.seed = 5 + static_cast<std::uint64_t>(mtbf_hours * 100);
    cs.arch->set_fault_process(ft::FaultProcess(mtbf_hours * 3600.0, 1.0));

    const auto case2 = core::run_ensemble(
        bench::case_study_app(no_ft, kEpr, kRanksUsed, kSteps), *cs.arch, opt,
        kTrials);
    const auto case4 = core::run_ensemble(
        bench::case_study_app(l1l2, kEpr, kRanksUsed, kSteps), *cs.arch, opt,
        kTrials);
    t.add_row({util::TextTable::fmt(mtbf_hours, 2),
               util::TextTable::fmt(case1.total.mean, 2),
               util::TextTable::fmt(case2.total.mean, 2),
               util::TextTable::fmt(case3.total.mean, 2),
               util::TextTable::fmt(case4.total.mean, 2),
               util::TextTable::fmt(case2.mean_full_restarts, 2),
               util::TextTable::fmt(case4.mean_rollbacks, 2)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: Case 4 beats Case 2 at low MTBF (faults "
               "frequent, checkpoints pay off); Case 3 approaches Case 1 plus "
               "fixed overhead; at very high MTBF Case 2 -> Case 1 and "
               "Case 4 -> Case 3.\n\n";

  // Failure-distribution ablation: HPC failure logs are burstier than
  // exponential (Weibull shape < 1). At equal MTBF, bursty failures hurt
  // the unprotected run more (long quiet stretches cannot be banked, but
  // bursts repeatedly kill the same attempt).
  util::TextTable tw(
      "Weibull-shape ablation at 0.25 h node MTBF (Case 2 / Case 4, s)");
  tw.set_header({"shape", "Case 2 (no FT)", "Case 4 (L1&L2/40)"});
  for (double shape : {0.6, 0.8, 1.0, 1.5}) {
    core::EngineOptions opt;
    opt.inject_faults = true;
    opt.downtime_seconds = 2.0;
    opt.max_sim_seconds = 4.0 * 3600.0;
    opt.seed = 777;
    cs.arch->set_fault_process(
        ft::FaultProcess(0.25 * 3600.0, 1.0, shape));
    const auto case2 = core::run_ensemble(
        bench::case_study_app(no_ft, kEpr, kRanksUsed, kSteps), *cs.arch,
        opt, kTrials);
    const auto case4 = core::run_ensemble(
        bench::case_study_app(l1l2, kEpr, kRanksUsed, kSteps), *cs.arch, opt,
        kTrials);
    tw.add_row({util::TextTable::fmt(shape, 1),
                util::TextTable::fmt(case2.total.mean, 2),
                util::TextTable::fmt(case4.total.mean, 2)});
  }
  tw.print(std::cout);
  return 0;
}
