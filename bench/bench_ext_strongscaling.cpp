// Extension bench: strong-scaling DSE — "how many ranks should this fixed
// problem use?" — with and without fault tolerance, against the Amdahl
// baseline. Fixed 384^3 Stencil3D problem; more ranks buy compute but pay
// surface communication and (with C/R under faults) more fault exposure.
// This is the concrete-model version of the related-work speedup laws
// (bench_ext_analytic): same question, machine-calibrated answer.

#include <iostream>
#include <memory>

#include "analytic/speedup.hpp"
#include "apps/kernels.hpp"
#include "apps/stencil3d.hpp"
#include "core/arch.hpp"
#include "core/montecarlo.hpp"
#include "ft/checkpoint_cost.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

using namespace ftbesst;

namespace {
/// Per-sweep compute: 2 ns per cell of the rank-local block.
class CellModel final : public model::PerfModel {
 public:
  double predict(std::span<const double> p) const override {
    return 2e-9 * p[0] * p[0] * p[0];
  }
  std::string describe() const override { return "2ns * nx^3"; }
};
}  // namespace

int main() {
  constexpr int kGlobal = 384;
  constexpr int kSweeps = 200;
  auto topo = std::make_shared<net::TwoStageFatTree>(128, 8, 16);
  net::CommParams comm;
  comm.bandwidth = 4e9;
  core::ArchBEO arch("cluster", topo, comm, 8);
  ft::FtiConfig fti;
  fti.group_size = 4;
  fti.node_size = 2;
  arch.set_fti(fti);
  arch.bind_kernel(apps::kStencilSweep, std::make_shared<CellModel>());
  // L2 checkpoints sized by block state; restart analog.
  ft::CheckpointCostModel cost({}, fti);
  arch.bind_kernel(
      apps::checkpoint_kernel(ft::Level::kL2),
      std::make_shared<model::ConstantModel>(0.0));  // rebound per point

  std::cout << "Strong-scaling DSE: fixed " << kGlobal << "^3 stencil, "
            << kSweeps << " sweeps\n\n";

  util::TextTable t("Runtime and efficiency vs rank count");
  t.set_header({"ranks", "block nx", "fault-free (s)", "speedup",
                "parallel eff", "faulty w/ L2-C/R (s)"});
  double base_time = 0.0;
  for (std::int64_t ranks : {std::int64_t{8}, std::int64_t{64},
                             std::int64_t{512}, std::int64_t{4096}}) {
    auto cfg = apps::Stencil3dConfig::strong_scaling(kGlobal, ranks, kSweeps);
    cfg.fti = fti;
    const core::AppBEO clean_app = apps::build_stencil3d(cfg);
    const double clean = core::run_bsp(clean_app, arch).total_seconds;
    if (base_time == 0.0) base_time = clean * static_cast<double>(ranks) / 8.0;
    // base_time ~ single-"unit" time extrapolated from the 8-rank run.
    const double speedup = base_time / clean;

    // Faulty variant: L2 checkpoints every 20 sweeps, node losses at 2 h
    // node MTBF — more ranks, more exposure.
    cfg.plan = {{ft::Level::kL2, 20}};
    arch.bind_kernel(apps::checkpoint_kernel(ft::Level::kL2),
                     std::make_shared<model::ConstantModel>(cost.cost(
                         ft::Level::kL2,
                         apps::stencil3d_checkpoint_bytes(cfg.nx), ranks)));
    arch.bind_restart(ft::Level::kL2,
                      std::make_shared<model::ConstantModel>(
                          cost.restart_cost(
                              ft::Level::kL2,
                              apps::stencil3d_checkpoint_bytes(cfg.nx),
                              ranks)));
    arch.set_fault_process(ft::FaultProcess(2.0 * 3600.0, 1.0));
    core::EngineOptions opt;
    opt.inject_faults = true;
    opt.downtime_seconds = 10.0;
    opt.max_sim_seconds = 8 * 3600.0;
    opt.seed = 3 + static_cast<std::uint64_t>(ranks);
    const double faulty =
        core::run_ensemble(apps::build_stencil3d(cfg), arch, opt, 10)
            .total.mean;
    arch.set_fault_process(std::nullopt);

    t.add_row({util::TextTable::fmt(static_cast<double>(ranks), 0),
               std::to_string(cfg.nx), util::TextTable::fmt(clean, 2),
               util::TextTable::fmt(speedup, 1),
               util::TextTable::pct(
                   100.0 * speedup / (static_cast<double>(ranks) / 8.0), 0),
               util::TextTable::fmt(faulty, 2)});
  }
  t.print(std::cout);
  std::cout << "\nAmdahl reference (communication as the serial fraction) "
               "would predict monotone speedup; the concrete model shows "
               "both the efficiency decay (surface/volume) and — under "
               "faults — where added exposure starts eating the gain, per "
               "Zheng/Cavelan's reliability-aware speedup argument.\n";
  return 0;
}
