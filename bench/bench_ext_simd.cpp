// Extension bench: the SIMD-batched ExprProgram backends, as
// machine-readable JSON.
//
// Measures raw evaluator throughput (rows/sec of ExprProgram::eval_dataset
// over pre-compiled programs) for every EvalBackend at 1/4/8 worker
// threads, on the LULESH-timestep and FTI-checkpoint surfaces at two
// sampling densities:
//   - calibration density (the ~600-800-row measurement grids of
//     bench_ext_symreg), with two population shapes: "champion"
//     (arithmetic/sqrt/div trees, the shape of calibrated performance
//     models) and "gp_mix" (Expr::random trees, the raw SymReg fitness
//     mix);
//   - DSE density ("dse_" datasets): the same surfaces sampled at
//     ~131k-point prediction-sweep resolution — the {FT config x arch}
//     batch-pricing workload of the Fig.-1-class predictions the paper
//     headlines. The speedup gates apply HERE: at this scale the scalar
//     strip interpreter's per-instruction working set (registers x rows)
//     spills out of cache while the blocked backends stay L1-resident,
//     which is the effect this PR exists to exploit.
// Small calibration surfaces are reported ungated: their strips are
// cache-resident, so the auto-vectorized scalar interpreter is already
// within ~2x of the AVX2 backend there. log-heavy gp_mix individuals
// additionally bound the vector speedup by Amdahl (bit-identical backends
// evaluate log with scalar libm per lane).
//
// Exit 1 (DIVERGENCE/GATE line on stderr) if:
//   - any default-mode backend (scalar, unrolled, avx2) output differs
//     bitwise from per-row Expr::eval on any individual, dataset, or
//     thread count, or
//   - AVX2 (when the host supports it) is below 4x the scalar bytecode
//     interpreter, or the unrolled fallback is below 1.8x, on either
//     DSE-density champion workload at 1 thread.

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "model/dataset.hpp"
#include "model/expr.hpp"
#include "model/expr_program.hpp"
#include "model/expr_simd.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

using namespace ftbesst;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Run `body` until it has consumed ~0.3s, return seconds per call.
template <typename F>
double time_per_call(F&& body) {
  body();  // warm-up (first call also populates caches/buffers)
  std::size_t reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) body();
    const double elapsed = seconds_since(start);
    if (elapsed > 0.3) return elapsed / static_cast<double>(reps);
    reps = elapsed > 1e-9
               ? std::max<std::size_t>(reps + 1,
                                       static_cast<std::size_t>(
                                           0.45 * static_cast<double>(reps) /
                                           elapsed))
               : reps * 16;
  }
}

/// LULESH-timestep-shaped calibration surface (same grid as
/// bench_ext_symreg).
model::Dataset lulesh_dataset() {
  util::Rng rng(101);
  model::Dataset d({"elems", "ranks"});
  for (double e = 8; e <= 56; e += 0.5)
    for (double r = 8; r <= 1024; r *= 2) {
      const double elems = e * e * e;
      const double y = 2.4e-8 * elems + 1.1e-6 * std::cbrt(elems * elems) +
                       3.0e-6 * std::log2(r);
      std::vector<double> samples;
      for (int s = 0; s < 3; ++s)
        samples.push_back(rng.lognormal_median(y, 0.05));
      d.add_row({elems, r}, std::move(samples));
    }
  return d;
}

/// FTI multilevel-checkpoint-shaped surface (same grid as
/// bench_ext_symreg).
model::Dataset fti_dataset() {
  util::Rng rng(202);
  model::Dataset d({"mbytes", "group", "level"});
  for (double mb = 16; mb <= 2048 + 1; mb *= std::pow(2.0, 0.25))
    for (double g = 2; g <= 32; g *= 2)
      for (double level = 1; level <= 4; ++level) {
        const double bw = level == 1 ? 2000.0 : level == 2 ? 900.0
                          : level == 3             ? 350.0
                                                   : 120.0;
        const double y = mb / bw + (level >= 3 ? 1e-4 * mb * (g - 1) / g : 0.0) +
                         2e-3 * level;
        std::vector<double> samples;
        for (int s = 0; s < 3; ++s)
          samples.push_back(rng.lognormal_median(y, 0.08));
        d.add_row({mb, g, level}, std::move(samples));
      }
  return d;
}

/// DSE-density LULESH surface: the same (elems, ranks) space as the
/// calibration grid, sampled at prediction-sweep resolution (512 element
/// sizes x 256 rank counts up to ~1M ranks — the notional-machine range).
model::Dataset lulesh_dse_dataset() {
  model::Dataset d({"elems", "ranks"});
  for (int i = 0; i < 512; ++i)
    for (int j = 0; j < 256; ++j) {
      const double e = 8.0 + 48.0 * static_cast<double>(i) / 511.0;
      const double r = 8.0 * std::pow(2.0, 17.0 * static_cast<double>(j) / 255.0);
      d.add_row({e * e * e, r}, {0.0});
    }
  return d;
}

/// DSE-density FTI surface: checkpoint bytes x group size x level at sweep
/// resolution (256 x 128 x 4).
model::Dataset fti_dse_dataset() {
  model::Dataset d({"mbytes", "group", "level"});
  for (int i = 0; i < 256; ++i)
    for (int j = 0; j < 128; ++j)
      for (double level = 1; level <= 4; ++level) {
        const double mb = 16.0 * std::pow(2.0, 7.0 * static_cast<double>(i) / 255.0);
        const double g = 2.0 + 30.0 * static_cast<double>(j) / 127.0;
        d.add_row({mb, g, level}, {0.0});
      }
  return d;
}

/// Champion-shaped tree: the op mix of calibrated power-law performance
/// models — add/mul-dominant arithmetic with sparse protected div/sqrt
/// terms (cf. the fitted forms behind the LULESH/FTI surfaces) — grown to
/// a fixed depth so programs carry enough arithmetic per row for the
/// evaluator, not the dispatch, to dominate. No log: the bit-identical
/// backends evaluate log with scalar libm per lane, so its cost is
/// lane-width-independent by design; log-bearing individuals are measured
/// by the gp_mix population instead. Protected div/sqrt vectorize to
/// vdivpd/vsqrtpd, which on most cores have only ~2x the scalar divider
/// throughput — their density directly bounds the attainable speedup, so
/// the champion mix keeps them at realistic (sparse) rates.
model::Expr champion_tree(util::Rng& rng, std::size_t num_vars, int depth) {
  if (depth <= 0 || (depth < 3 && rng.uniform() < 0.3)) {
    return rng.uniform() < 0.5
               ? model::Expr::variable(rng.uniform_int(num_vars))
               : model::Expr::constant(rng.uniform(0.1, 4.0));
  }
  const double pick = rng.uniform();
  if (pick < 0.06)
    return model::Expr::unary(model::Op::kSqrt,
                              champion_tree(rng, num_vars, depth - 1));
  const model::Op op = pick < 0.42   ? model::Op::kAdd
                       : pick < 0.54 ? model::Op::kSub
                       : pick < 0.95 ? model::Op::kMul
                                     : model::Op::kDiv;
  return model::Expr::binary(op, champion_tree(rng, num_vars, depth - 1),
                             champion_tree(rng, num_vars, depth - 1));
}

std::vector<model::Expr> make_population(std::size_t count,
                                         std::size_t num_vars,
                                         std::uint64_t seed, bool champion) {
  util::Rng rng(seed);
  std::vector<model::Expr> pop;
  pop.reserve(count);
  while (pop.size() < count) {
    model::Expr e = champion ? champion_tree(rng, num_vars, 7)
                             : model::Expr::random(rng, num_vars, 6);
    if (e.empty()) continue;
    pop.push_back(std::move(e));
  }
  return pop;
}

std::vector<model::ExprProgram> compile_population(
    const std::vector<model::Expr>& pop) {
  std::vector<model::ExprProgram> progs;
  progs.reserve(pop.size());
  for (const model::Expr& e : pop) progs.push_back(model::ExprProgram::compile(e));
  return progs;
}

/// Per-row Expr::eval oracle outputs, one vector per individual.
std::vector<std::vector<double>> oracle_outputs(
    const std::vector<model::Expr>& pop, const model::Dataset& data) {
  std::vector<std::vector<double>> outs(pop.size());
  for (std::size_t p = 0; p < pop.size(); ++p) {
    outs[p].reserve(data.num_rows());
    for (const model::Row& r : data.rows())
      outs[p].push_back(pop[p].eval(r.params));
  }
  return outs;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Serial + parallel batch outputs under the active backend must both be
/// bit-identical to the oracle (parallel also exercises per-thread
/// scratch).
bool backend_bit_identical(const std::vector<model::ExprProgram>& progs,
                           const model::Dataset& data,
                           const std::vector<std::vector<double>>& oracle,
                           util::TaskPool& pool) {
  std::vector<double> f;
  model::EvalScratch scratch;
  for (std::size_t p = 0; p < progs.size(); ++p) {
    progs[p].eval_dataset(data, f, scratch);
    if (!bitwise_equal(f, oracle[p])) return false;
  }
  std::vector<std::vector<double>> par(progs.size());
  util::parallel_for(
      progs.size(),
      [&](std::size_t p) {
        thread_local model::EvalScratch ts;
        progs[p].eval_dataset(data, par[p], ts);
      },
      pool);
  for (std::size_t p = 0; p < progs.size(); ++p)
    if (!bitwise_equal(par[p], oracle[p])) return false;
  return true;
}

double rows_per_sec_serial(const std::vector<model::ExprProgram>& progs,
                           const model::Dataset& data) {
  std::vector<double> f;
  model::EvalScratch scratch;
  const double s = time_per_call([&] {
    for (const model::ExprProgram& prog : progs)
      prog.eval_dataset(data, f, scratch);
  });
  return static_cast<double>(progs.size() * data.num_rows()) / s;
}

double rows_per_sec_parallel(const std::vector<model::ExprProgram>& progs,
                             const model::Dataset& data, util::TaskPool& pool) {
  const double s = time_per_call([&] {
    util::parallel_for(
        progs.size(),
        [&](std::size_t p) {
          thread_local std::vector<double> f;
          thread_local model::EvalScratch scratch;
          progs[p].eval_dataset(data, f, scratch);
        },
        pool);
  });
  return static_cast<double>(progs.size() * data.num_rows()) / s;
}

struct BackendResult {
  model::EvalBackend backend;
  double rows_per_sec_t1 = 0;
  double rows_per_sec_t4 = 0;
  double rows_per_sec_t8 = 0;
  bool bit_identical = true;  // vs Expr::eval; not required for avx2fast
};

struct PopulationBench {
  std::vector<BackendResult> backends;
  std::size_t programs = 0;
};

PopulationBench bench_population(const std::vector<model::Expr>& pop,
                                 const model::Dataset& data,
                                 util::TaskPool& pool4,
                                 util::TaskPool& pool8) {
  PopulationBench out;
  out.programs = pop.size();
  const auto progs = compile_population(pop);
  const auto oracle = oracle_outputs(pop, data);
  std::vector<model::EvalBackend> backends = {model::EvalBackend::kScalar,
                                              model::EvalBackend::kUnrolled};
  if (model::avx2_supported()) {
    backends.push_back(model::EvalBackend::kAvx2);
    backends.push_back(model::EvalBackend::kAvx2Fast);
  }
  for (const model::EvalBackend b : backends) {
    model::BackendOverrideGuard guard(b);
    BackendResult r;
    r.backend = b;
    if (b != model::EvalBackend::kAvx2Fast)
      r.bit_identical = backend_bit_identical(progs, data, oracle, pool4);
    r.rows_per_sec_t1 = rows_per_sec_serial(progs, data);
    r.rows_per_sec_t4 = rows_per_sec_parallel(progs, data, pool4);
    r.rows_per_sec_t8 = rows_per_sec_parallel(progs, data, pool8);
    out.backends.push_back(r);
  }
  return out;
}

double backend_rate_t1(const PopulationBench& b, model::EvalBackend which) {
  for (const BackendResult& r : b.backends)
    if (r.backend == which) return r.rows_per_sec_t1;
  return 0.0;
}

void print_population(const char* name, const PopulationBench& b, bool last) {
  std::cout << "    \"" << name << "\": {\n"
            << "      \"programs\": " << b.programs << ",\n";
  for (std::size_t i = 0; i < b.backends.size(); ++i) {
    const BackendResult& r = b.backends[i];
    std::cout << "      \"" << model::to_string(r.backend) << "\": {"
              << "\"rows_per_sec_t1\": " << r.rows_per_sec_t1
              << ", \"rows_per_sec_t4\": " << r.rows_per_sec_t4
              << ", \"rows_per_sec_t8\": " << r.rows_per_sec_t8
              << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
              << "}" << (i + 1 == b.backends.size() ? "\n" : ",\n");
  }
  std::cout << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  const model::Dataset lulesh = lulesh_dataset();
  const model::Dataset fti = fti_dataset();
  const model::Dataset lulesh_dse = lulesh_dse_dataset();
  const model::Dataset fti_dse = fti_dse_dataset();
  util::TaskPool pool4(4);
  util::TaskPool pool8(8);

  struct Entry {
    const char* dataset;
    const model::Dataset* data;
    bool gated;        ///< champion speedups feed the exit-code gates
    std::size_t pop;   ///< programs per population
    bool with_gp;      ///< also bench the Expr::random gp_mix population
    PopulationBench champion;
    PopulationBench gp;
  };
  std::vector<Entry> entries = {
      {"lulesh_timestep", &lulesh, false, 256, true, {}, {}},
      {"fti_checkpoint", &fti, false, 256, true, {}, {}},
      {"dse_lulesh_sweep", &lulesh_dse, true, 64, false, {}, {}},
      {"dse_fti_sweep", &fti_dse, true, 64, false, {}, {}}};
  for (Entry& e : entries) {
    e.champion = bench_population(
        make_population(e.pop, e.data->num_params(), 17, true), *e.data, pool4,
        pool8);
    if (e.with_gp)
      e.gp = bench_population(
          make_population(e.pop, e.data->num_params(), 18, false), *e.data,
          pool4, pool8);
  }

  bool identical = true;
  double min_avx2_speedup = 1e300, min_unrolled_speedup = 1e300;
  for (const Entry& e : entries) {
    for (const PopulationBench* pb : {&e.champion, &e.gp})
      for (const BackendResult& r : pb->backends) identical &= r.bit_identical;
    if (!e.gated) continue;
    const double scalar = backend_rate_t1(e.champion, model::EvalBackend::kScalar);
    if (scalar > 0) {
      min_unrolled_speedup = std::min(
          min_unrolled_speedup,
          backend_rate_t1(e.champion, model::EvalBackend::kUnrolled) / scalar);
      if (model::avx2_supported())
        min_avx2_speedup = std::min(
            min_avx2_speedup,
            backend_rate_t1(e.champion, model::EvalBackend::kAvx2) / scalar);
    }
  }
  const bool gates_pass =
      identical && min_unrolled_speedup >= 1.8 &&
      (!model::avx2_supported() || min_avx2_speedup >= 4.0);

  std::cout.precision(6);
  std::cout << "{\n"
            << "  \"avx2_supported\": "
            << (model::avx2_supported() ? "true" : "false") << ",\n"
            << "  \"default_backend\": \""
            << model::to_string(model::active_backend()) << "\",\n"
            << "  \"rows\": {\"lulesh_timestep\": " << lulesh.num_rows()
            << ", \"fti_checkpoint\": " << fti.num_rows()
            << ", \"dse_lulesh_sweep\": " << lulesh_dse.num_rows()
            << ", \"dse_fti_sweep\": " << fti_dse.num_rows() << "},\n"
            << "  \"datasets\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::cout << "  \"" << entries[i].dataset << "\": {\n";
    print_population("champion", entries[i].champion, !entries[i].with_gp);
    if (entries[i].with_gp) print_population("gp_mix", entries[i].gp, true);
    std::cout << "  }" << (i + 1 == entries.size() ? "\n" : ",\n");
  }
  std::cout << "  },\n"
            << "  \"bit_identical\": " << (identical ? "true" : "false")
            << ",\n"
            << "  \"min_dse_unrolled_speedup_t1\": " << min_unrolled_speedup
            << ",\n"
            << "  \"min_dse_avx2_speedup_t1\": "
            << (model::avx2_supported() ? min_avx2_speedup : 0.0) << ",\n"
            << "  \"gates\": {\"scope\": \"dse champion populations, 1 "
               "thread\", \"unrolled_min\": 1.8, \"avx2_min\": 4.0, "
               "\"pass\": "
            << (gates_pass ? "true" : "false") << "}\n"
            << "}\n";

  if (!identical)
    std::cerr << "DIVERGENCE: a default-mode backend disagrees with "
                 "Expr::eval\n";
  else if (!gates_pass)
    std::cerr << "GATE: speedup below threshold (unrolled "
              << min_unrolled_speedup << " < 1.8 or avx2 " << min_avx2_speedup
              << " < 4.0)\n";
  return gates_pass ? 0 : 1;
}
