// Extension bench: multilevel checkpoint-plan optimization (the paper's
// future-work "optimize for different fault rates and scenarios").
// For a sweep of failure mixes (soft process crashes vs hard node losses),
// the closed-form optimizer picks (tau_L1, tau_L4) pairs; each optimized
// plan is then validated by fault-injected BE-SST simulation against
// single-level alternatives.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/montecarlo.hpp"
#include "ft/multilevel_opt.hpp"
#include "util/table.hpp"

using namespace ftbesst;

int main() {
  const std::vector<std::string> kernels{
      apps::kLuleshTimestep, apps::checkpoint_kernel(ft::Level::kL1),
      apps::checkpoint_kernel(ft::Level::kL4)};
  bench::CaseStudy cs(kernels, model::ModelMethod::kAuto);
  constexpr int kEpr = 15;
  constexpr std::int64_t kRanksUsed = 64;
  constexpr int kSteps = 4000;
  constexpr double kNodeMtbf = 900.0;  // s; 32 nodes -> ~28 s system MTBF
  constexpr double kDowntime = 2.0;

  const std::vector<double> point{static_cast<double>(kEpr),
                                  static_cast<double>(kRanksUsed)};
  const double ts = cs.suite.kernels.at(apps::kLuleshTimestep)
                        .model->predict(point);
  ft::CheckpointCostModel cost({}, bench::case_study_fti());
  const auto bytes = apps::lulesh_checkpoint_bytes(kEpr);

  ft::LevelSpec l1{ft::Level::kL1,
                   cs.suite.kernels.at(apps::checkpoint_kernel(ft::Level::kL1))
                       .model->predict(point),
                   cost.restart_cost(ft::Level::kL1, bytes, kRanksUsed)};
  ft::LevelSpec l4{ft::Level::kL4,
                   cs.suite.kernels.at(apps::checkpoint_kernel(ft::Level::kL4))
                       .model->predict(point),
                   cost.restart_cost(ft::Level::kL4, bytes, kRanksUsed)};

  for (ft::Level level : {ft::Level::kL1, ft::Level::kL4})
    cs.arch->bind_restart(level, std::make_shared<model::ConstantModel>(
                                     cost.restart_cost(level, bytes,
                                                       kRanksUsed)));

  std::cout << "Multilevel checkpoint-plan optimization vs fault-injected "
               "simulation\n"
            << "LULESH_FTI epr " << kEpr << ", " << kRanksUsed << " ranks, "
            << kSteps << " timesteps (" << kSteps * ts
            << " s work), node MTBF " << kNodeMtbf
            << " s; L1 cost " << l1.checkpoint_cost << " s, L4 cost "
            << l4.checkpoint_cost << " s\n\n";

  util::TextTable t("Optimized plans and simulated outcomes per failure mix");
  t.set_header({"soft frac", "opt tau_L1 (steps)", "opt tau_L4 (steps)",
                "analytic E[T] (s)", "sim two-level (s)", "sim L4-only (s)"});
  for (double soft : {0.95, 0.8, 0.5, 0.2}) {
    ft::MultilevelWorkload w;
    w.work = kSteps * ts;
    w.system_mtbf = kNodeMtbf / (kRanksUsed / bench::kNodeSize);
    w.soft_fraction = soft;
    w.downtime = kDowntime;
    const ft::TwoLevelPlan plan = ft::optimize_two_level(w, l1, l4);
    const int steps_l1 =
        std::max(1, static_cast<int>(std::round(plan.tau_low / ts)));
    int steps_l4 =
        std::max(steps_l1, static_cast<int>(std::round(plan.tau_high / ts)));
    steps_l4 = (steps_l4 / steps_l1) * steps_l1;  // nested

    auto simulate = [&](const std::vector<ft::PlanEntry>& entries) {
      core::Scenario scenario{"plan", entries};
      const core::AppBEO app =
          bench::case_study_app(scenario, kEpr, kRanksUsed, kSteps);
      core::EngineOptions opt;
      opt.inject_faults = true;
      opt.downtime_seconds = kDowntime;
      opt.max_sim_seconds = 4 * 3600.0;
      opt.seed = 50 + static_cast<std::uint64_t>(100 * soft);
      // Soft fraction -> FaultProcess node-loss fraction complement.
      cs.arch->set_fault_process(ft::FaultProcess(kNodeMtbf, 1.0 - soft));
      return core::run_ensemble(app, *cs.arch, opt, 15).total.mean;
    };
    const double two_level = simulate(
        {{ft::Level::kL1, steps_l1}, {ft::Level::kL4, steps_l4}});
    const double l4_only = simulate({{ft::Level::kL4, steps_l1}});

    t.add_row({util::TextTable::fmt(soft, 2), std::to_string(steps_l1),
               std::to_string(steps_l4),
               util::TextTable::fmt(plan.expected_runtime, 1),
               util::TextTable::fmt(two_level, 1),
               util::TextTable::fmt(l4_only, 1)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: as hard failures grow (soft frac down), "
               "the optimal L4 period shrinks toward the L1 period; the "
               "optimized two-level plan tracks the analytic prediction and "
               "beats (or matches) frequent-L4-only plans when most "
               "failures are soft.\n";
  return 0;
}
