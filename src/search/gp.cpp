#include "search/gp.hpp"

#include <cmath>
#include <stdexcept>

namespace ftbesst::search {

namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Standard normal CDF via erfc (stable in both tails).
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_pdf(double z) {
  static const double kInvSqrt2Pi = 1.0 / std::sqrt(8.0 * std::atan(1.0));
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

}  // namespace

double GpSurrogate::kernel(std::span<const double> a,
                           std::span<const double> b) const {
  const double r = std::sqrt(squared_distance(a, b)) / options_.length_scale;
  switch (options_.kernel) {
    case GpOptions::Kernel::kRbf:
      return options_.signal_variance * std::exp(-0.5 * r * r);
    case GpOptions::Kernel::kMatern52: {
      const double s = std::sqrt(5.0) * r;
      return options_.signal_variance * (1.0 + s + s * s / 3.0) *
             std::exp(-s);
    }
  }
  return 0.0;
}

void GpSurrogate::fit(const model::Matrix& x, std::span<const double> y) {
  const std::size_t n = x.rows();
  if (n == 0 || y.size() != n)
    throw std::invalid_argument("GpSurrogate::fit: shape mismatch");

  // Standardize targets so the unit-signal-variance prior fits any scale.
  double mean = 0.0;
  for (const double v : y) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double v : y) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  y_mean_ = mean;
  y_std_ = var > 0.0 ? std::sqrt(var) : 1.0;

  train_ = x;
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = (y[i] - y_mean_) / y_std_;

  model::Matrix k(n, n);
  std::vector<double> row_i(x.cols()), row_j(x.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) row_i[c] = x.at(i, c);
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t c = 0; c < x.cols(); ++c) row_j[c] = x.at(j, c);
      const double v = kernel(row_i, row_j);
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
  }

  // PSD guard: escalate diagonal jitter until the Cholesky succeeds.
  for (double jitter = options_.noise_variance;;
       jitter = jitter > 0.0 ? jitter * 10.0 : 1e-10) {
    model::Matrix kj = k;
    for (std::size_t i = 0; i < n; ++i) kj.at(i, i) += jitter;
    try {
      chol_ = model::cholesky_factor(kj);
      jitter_used_ = jitter;
      break;
    } catch (const std::runtime_error&) {
      if (jitter >= options_.max_jitter)
        throw std::runtime_error(
            "GpSurrogate::fit: kernel matrix not PSD even at max jitter");
    }
  }
  alpha_ = model::cholesky_solve(chol_, ys);
}

GpSurrogate::Posterior GpSurrogate::predict(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("GpSurrogate::predict before fit");
  const std::size_t n = train_.rows();
  std::vector<double> ks(n), row(train_.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < train_.cols(); ++c) row[c] = train_.at(i, c);
    ks[i] = kernel(x, row);
  }
  double mean_s = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_s += ks[i] * alpha_[i];
  // Posterior variance: k(x,x) - v^T v with v = L^-1 k*.
  std::vector<double> v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = ks[i];
    for (std::size_t k = 0; k < i; ++k) acc -= chol_.at(i, k) * v[k];
    v[i] = acc / chol_.at(i, i);
  }
  double var_s = options_.signal_variance;
  for (std::size_t i = 0; i < n; ++i) var_s -= v[i] * v[i];
  if (var_s < 0.0) var_s = 0.0;

  Posterior p;
  p.mean = y_mean_ + y_std_ * mean_s;
  p.variance = var_s * y_std_ * y_std_;
  return p;
}

double GpSurrogate::expected_improvement(std::span<const double> x,
                                         double best_y) const {
  const Posterior p = predict(x);
  const double sigma = std::sqrt(p.variance);
  const double margin = best_y - p.mean - options_.xi * y_std_;
  if (sigma <= 0.0) return margin > 0.0 ? margin : 0.0;
  const double z = margin / sigma;
  return margin * normal_cdf(z) + sigma * normal_pdf(z);
}

}  // namespace ftbesst::search
