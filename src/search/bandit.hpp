#pragma once
// Successive-halving bandit over grid cells.
//
// Treats every grid cell as an arm and prices rungs of survivors at
// geometrically increasing Monte-Carlo trial counts. core::run_ensemble
// derives per-trial seeds by trial index, so a t-trial evaluation of a
// cell is a bit-exact prefix of the full-trials one — cheap rungs are
// genuine partial evaluations of the same experiment, not a different
// estimator. The final rung prices its survivors at full trials, so the
// winner's objective is bit-identical to the exhaustive sweep's entry for
// that cell. Much cheaper than the GP (no O(n^3) fits) but
// single-objective only; the search engine uses it for very large spaces.

#include <cstddef>
#include <functional>
#include <vector>

#include "core/workflow.hpp"
#include "util/rng.hpp"

namespace ftbesst::search {

struct BanditOptions {
  /// Keep the top 1/eta arms per rung (and grow trials by eta per rung).
  double eta = 4.0;
  /// Trials of the cheapest rung.
  std::size_t min_rung_trials = 1;
};

/// Evaluate the given cells (flat index + trials each) and return one
/// objective value per cell, in order. Must be deterministic.
using BanditEvaluator =
    std::function<std::vector<double>(const std::vector<core::DseCell>&)>;

struct BanditOutcome {
  std::size_t flat = 0;
  std::size_t trials = 0;  ///< fidelity this value was priced at
  double value = 0.0;
};

struct BanditResult {
  /// Every (cell, fidelity) evaluation, rung by rung, in evaluation order.
  std::vector<BanditOutcome> history;
  std::size_t best = 0;         ///< flat index of the winning arm
  double best_value = 0.0;      ///< its full-trials objective
  /// Arms that reached the final rung (priced at full trials).
  std::vector<std::size_t> finalists;
  double trial_units = 0.0;     ///< charged against the budget
  std::size_t starting_arms = 0;  ///< after any budget-forced subsample
};

/// Run successive halving over arms {0, ..., num_cells-1}. The rung
/// schedule ends at `full_trials`; if pricing every arm at the cheapest
/// rung does not fit `budget`, the starting arms are subsampled
/// deterministically from `rng` (the only stochastic step — everything
/// else breaks ties by flat index). Charges each evaluation's trial count
/// to `budget`.
[[nodiscard]] BanditResult run_successive_halving(
    std::size_t num_cells, std::size_t full_trials, core::DseBudget& budget,
    const BanditOptions& options, util::Rng rng,
    const BanditEvaluator& evaluate);

}  // namespace ftbesst::search
