#pragma once
// The guided-search domain: the {Scenario x parameter-point} grid that
// core::run_dse prices exhaustively. Cells are addressed by their
// scenario-major flat index — the exhaustive sweep's submission order —
// so a cell evaluated by the search (via core::run_dse_cells) is
// bit-identical to the matching entry of the full grid, and search
// results can be verified against the exhaustive sweep down to the last
// bit.

#include <cstddef>
#include <vector>

#include "core/workflow.hpp"
#include "model/linalg.hpp"

namespace ftbesst::search {

/// The finite design space a search explores.
struct SearchSpace {
  std::vector<core::Scenario> scenarios;
  std::vector<std::vector<double>> points;

  [[nodiscard]] std::size_t size() const noexcept {
    return scenarios.size() * points.size();
  }
  [[nodiscard]] std::size_t scenario_of(std::size_t flat) const noexcept {
    return flat / points.size();
  }
  [[nodiscard]] std::size_t point_of(std::size_t flat) const noexcept {
    return flat % points.size();
  }

  /// Throws std::invalid_argument on empty axes, ragged parameter points,
  /// invalid plans, or duplicate scenario names.
  void validate() const;
};

/// Feature encoding of every grid cell for the GP surrogate, row i = flat
/// index i. The first scenarios.size() columns one-hot-encode the scenario,
/// scaled by 1/sqrt(2) so switching scenario moves a cell by exactly 1 in
/// feature space; the remaining columns rank-normalize each numeric sweep
/// axis to [0, 1] over its sorted distinct values (robust to log-spaced
/// sweeps, where raw normalization would crush the small end of the axis).
[[nodiscard]] model::Matrix encode_cells(const SearchSpace& space);

}  // namespace ftbesst::search
