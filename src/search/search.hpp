#pragma once
// Budget-aware guided search over the DSE grid — the alternative to
// core::run_dse's exhaustive sweep.
//
// Two engines behind one entry point:
//   kGp      GP surrogate + expected-improvement acquisition, evaluated in
//            batches with kernel-based local penalization. Handles both
//            the single-objective mode and the Pareto mode (EI is taken
//            against the incumbent of the candidate's recoverability
//            class, so every front segment keeps improving).
//   kBandit  successive halving over cells priced at reduced Monte-Carlo
//            fidelities (bandit.hpp). Single-objective only; picked by
//            kAuto for spaces too large for O(n^3) GP fits.
//
// Determinism contract: a search is a pure function of {space, options,
// warm observations} — bit-identical across re-runs and across thread
// counts. All surrogate math is serial; candidate batches are evaluated
// through core::run_dse_cells, whose per-cell seeds depend only on the
// flat grid index; and every tie in selection or ranking breaks by flat
// index. SearchResult::to_text() is a canonical byte-comparable rendering
// used by the verify leg and bench gates to enforce exactly that.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "search/bandit.hpp"
#include "search/gp.hpp"
#include "search/pareto.hpp"
#include "search/space.hpp"

namespace ftbesst::search {

enum class Method { kAuto, kGp, kBandit };
enum class Mode { kSingle, kPareto };

[[nodiscard]] std::string to_string(Method method);
[[nodiscard]] std::string to_string(Mode mode);

struct SearchOptions {
  Method method = Method::kAuto;
  Mode mode = Mode::kSingle;
  std::uint64_t seed = 1;
  /// Full-fidelity Monte-Carlo trials per cell (the exhaustive sweep's
  /// trial count; one cell x one trial = one budget unit).
  std::size_t trials = 8;
  /// Budget as a fraction of the exhaustive cells x trials cost. Ignored
  /// when budget_units > 0.
  double budget_fraction = 0.10;
  double budget_units = 0.0;
  /// Initial space-filling design size (GP); 0 = a third of the affordable
  /// evaluations.
  std::size_t init = 0;
  /// Cells evaluated per GP acquisition round.
  std::size_t batch = 4;
  /// 0 = shared TaskPool, 1 = serial (bit-identical either way).
  unsigned threads = 0;
  /// Group layout for recoverability scoring.
  ft::FtiConfig fti{};
  GpOptions gp{};
  BanditOptions bandit{};
};

/// One priced cell of the search, in evaluation order.
struct EvaluatedCell {
  std::size_t flat = 0;
  std::string scenario;
  std::vector<double> params;
  double objective = 0.0;       ///< expected makespan (s) at `trials`
  double recoverability = 0.0;  ///< plan score, [0, 1]
  std::size_t trials = 0;       ///< fidelity this value was priced at
  bool warm = false;            ///< seeded from a cache hit, not charged
};

struct SearchResult {
  std::vector<EvaluatedCell> history;
  EvaluatedCell best;                ///< minimum objective (ties: lowest flat)
  std::vector<EvaluatedCell> pareto; ///< non-dominated set (kPareto mode)
  std::size_t evaluations = 0;       ///< charged evaluator cells (any fidelity)
  std::size_t warm_hits = 0;
  double budget_units = 0.0;
  double trial_units = 0.0;          ///< charged against the budget
  Method method_used = Method::kGp;

  /// Canonical text rendering: byte-identical iff two searches agree
  /// bit-for-bit (doubles use shortest round-trip formatting).
  [[nodiscard]] std::string to_text() const;
};

/// Price the given cells (flat index + fidelity) and return one objective
/// value per cell, in order. Must be a bit-deterministic pure function of
/// its argument (core::run_dse_cells qualifies).
using Evaluator =
    std::function<std::vector<double>(const std::vector<core::DseCell>&)>;

/// A known full-fidelity objective (e.g. a prior dse result from the
/// service cache) used to warm-start the surrogate without spending
/// budget. Fed to the GP engine only; the bandit ignores warm starts.
struct WarmObservation {
  std::size_t flat = 0;
  double objective = 0.0;
};

/// Run a guided search over `space` with `evaluate` pricing candidate
/// batches. Throws std::invalid_argument on an unusable configuration
/// (empty space, bandit + Pareto, budget too small for a single
/// evaluation with no warm starts).
[[nodiscard]] SearchResult run_search(
    const SearchSpace& space, const SearchOptions& options,
    const Evaluator& evaluate,
    const std::vector<WarmObservation>& warm = {});

/// Convenience wrapper: price cells with core::run_dse_cells over
/// make_app/arch/engine, exactly like the exhaustive core::run_dse sweep
/// would (engine.seed is the sweep seed; objective is the ensemble's mean
/// total runtime).
[[nodiscard]] SearchResult run_search_dse(
    const SearchSpace& space, const SearchOptions& options,
    const std::function<core::AppBEO(const core::Scenario&,
                                     const std::vector<double>&)>& make_app,
    const core::ArchBEO& arch, const core::EngineOptions& engine);

}  // namespace ftbesst::search
