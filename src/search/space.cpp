#include "search/space.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

namespace ftbesst::search {

void SearchSpace::validate() const {
  if (scenarios.empty())
    throw std::invalid_argument("search space has no scenarios");
  if (points.empty())
    throw std::invalid_argument("search space has no parameter points");
  const std::size_t dims = points.front().size();
  for (const auto& p : points)
    if (p.size() != dims)
      throw std::invalid_argument("ragged parameter points in search space");
  std::set<std::string> names;
  for (const core::Scenario& s : scenarios) {
    core::validate_plan(s.plan);
    if (!names.insert(s.name).second)
      throw std::invalid_argument("duplicate scenario name '" + s.name +
                                  "' in search space");
  }
}

model::Matrix encode_cells(const SearchSpace& space) {
  const std::size_t num_scenarios = space.scenarios.size();
  const std::size_t num_points = space.points.size();
  const std::size_t axes = space.points.front().size();
  model::Matrix x(num_scenarios * num_points, num_scenarios + axes);

  // Rank-normalize each numeric axis over its sorted distinct values.
  std::vector<std::vector<double>> axis_values(axes);
  for (std::size_t a = 0; a < axes; ++a) {
    std::vector<double>& vals = axis_values[a];
    for (const auto& p : space.points) vals.push_back(p[a]);
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  }
  const double one_hot = 1.0 / std::sqrt(2.0);
  for (std::size_t flat = 0; flat < x.rows(); ++flat) {
    x.at(flat, space.scenario_of(flat)) = one_hot;
    const std::vector<double>& p = space.points[space.point_of(flat)];
    for (std::size_t a = 0; a < axes; ++a) {
      const std::vector<double>& vals = axis_values[a];
      if (vals.size() < 2) continue;  // constant axis encodes as 0
      const auto it = std::lower_bound(vals.begin(), vals.end(), p[a]);
      const double rank = static_cast<double>(it - vals.begin());
      x.at(flat, num_scenarios + a) =
          rank / static_cast<double>(vals.size() - 1);
    }
  }
  return x;
}

}  // namespace ftbesst::search
