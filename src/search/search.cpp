#include "search/search.hpp"

#include <algorithm>
#include <charconv>
#include <limits>
#include <map>
#include <stdexcept>

namespace ftbesst::search {

namespace {

/// Acquisition stand-in for a cell whose recoverability class has no
/// observation yet (Pareto mode): huge but finite, so the local
/// penalization factor still multiplies through cleanly.
constexpr double kUnseenClassScore = 1e300;

/// Shortest round-trip double formatting — byte equality of the rendered
/// text is exactly bit equality of the doubles.
void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_params(std::string& out, const std::vector<double>& params) {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) out += ',';
    append_double(out, params[i]);
  }
}

void append_cell_line(std::string& out, const char* tag,
                      const EvaluatedCell& cell) {
  out += tag;
  out += ' ';
  out += std::to_string(cell.flat);
  out += ' ';
  append_double(out, cell.objective);
  out += ' ';
  append_double(out, cell.recoverability);
  out += ' ';
  append_params(out, cell.params);
  out += ' ';
  out += cell.scenario;  // may contain spaces; keep it last on the line
  out += '\n';
}

struct GpState {
  const SearchSpace& space;
  const SearchOptions& options;
  const Evaluator& evaluate;
  const std::vector<double>& recov;  ///< per-scenario recoverability
  core::DseBudget& budget;
  model::Matrix x;                   ///< encoded cells, row = flat
  SearchResult result;
  std::vector<std::ptrdiff_t> seen;  ///< flat -> history index, -1 unseen

  GpState(const SearchSpace& space_in, const SearchOptions& options_in,
          const Evaluator& evaluate_in, const std::vector<double>& recov_in,
          core::DseBudget& budget_in)
      : space(space_in),
        options(options_in),
        evaluate(evaluate_in),
        recov(recov_in),
        budget(budget_in),
        x(encode_cells(space_in)),
        seen(space_in.size(), -1) {}

  void add_history(std::size_t flat, double objective, std::size_t trials,
                   bool warm) {
    EvaluatedCell cell;
    cell.flat = flat;
    cell.scenario = space.scenarios[space.scenario_of(flat)].name;
    cell.params = space.points[space.point_of(flat)];
    cell.objective = objective;
    cell.recoverability = recov[space.scenario_of(flat)];
    cell.trials = trials;
    cell.warm = warm;
    seen[flat] = static_cast<std::ptrdiff_t>(result.history.size());
    result.history.push_back(std::move(cell));
  }

  [[nodiscard]] std::size_t affordable() const {
    return static_cast<std::size_t>(budget.remaining() /
                                    static_cast<double>(options.trials));
  }

  void evaluate_flats(const std::vector<std::size_t>& flats) {
    std::vector<core::DseCell> cells(flats.size());
    for (std::size_t i = 0; i < flats.size(); ++i)
      cells[i] = core::DseCell{flats[i], options.trials};
    const std::vector<double> values = evaluate(cells);
    if (values.size() != flats.size())
      throw std::logic_error("search evaluator returned wrong count");
    const double units = static_cast<double>(flats.size()) *
                         static_cast<double>(options.trials);
    budget.charge(units);
    result.trial_units += units;
    result.evaluations += flats.size();
    for (std::size_t i = 0; i < flats.size(); ++i)
      add_history(flats[i], values[i], options.trials, false);
  }

  void row(std::size_t flat, std::vector<double>& buf) const {
    buf.resize(x.cols());
    for (std::size_t c = 0; c < x.cols(); ++c) buf[c] = x.at(flat, c);
  }
};

void shuffle_in_place(std::vector<std::size_t>& v, util::Rng rng) {
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    const std::size_t j = i + rng.uniform_int(v.size() - i);
    std::swap(v[i], v[j]);
  }
}

/// Stratified space-filling init: per-scenario shuffles interleaved
/// round-robin, so every scenario (hence every recoverability class) gets
/// observed as early as the budget allows.
std::vector<std::size_t> init_design(GpState& st, util::Rng& rng,
                                     std::size_t count) {
  std::vector<std::vector<std::size_t>> per(st.space.scenarios.size());
  for (std::size_t flat = 0; flat < st.space.size(); ++flat)
    if (st.seen[flat] < 0) per[st.space.scenario_of(flat)].push_back(flat);
  for (std::size_t s = 0; s < per.size(); ++s)
    shuffle_in_place(per[s], rng.split(1 + s));
  std::vector<std::size_t> picks;
  for (std::size_t idx = 0; picks.size() < count; ++idx) {
    bool any = false;
    for (std::size_t s = 0; s < per.size() && picks.size() < count; ++s) {
      if (idx < per[s].size()) {
        picks.push_back(per[s][idx]);
        any = true;
      }
    }
    if (!any) break;
  }
  return picks;
}

SearchResult run_gp(const SearchSpace& space, const SearchOptions& options,
                    const Evaluator& evaluate,
                    const std::vector<WarmObservation>& warm,
                    core::DseBudget& budget,
                    const std::vector<double>& recov) {
  GpState st(space, options, evaluate, recov, budget);
  st.result.method_used = Method::kGp;
  util::Rng rng(options.seed);

  // Warm starts: known full-fidelity objectives, sorted by flat index for
  // a deterministic history, not charged against the budget.
  std::vector<WarmObservation> ws = warm;
  std::sort(ws.begin(), ws.end(),
            [](const WarmObservation& a, const WarmObservation& b) {
              return a.flat < b.flat;
            });
  for (const WarmObservation& w : ws) {
    if (w.flat >= space.size() || st.seen[w.flat] >= 0) continue;
    st.add_history(w.flat, w.objective, options.trials, true);
    ++st.result.warm_hits;
  }

  if (st.affordable() == 0 && st.result.history.empty())
    throw std::invalid_argument(
        "search budget cannot afford a single evaluation");

  // Initial design.
  {
    const std::size_t e = st.affordable();
    std::size_t count = options.init != 0 ? options.init
                                          : std::max<std::size_t>(e / 3, 1);
    count = std::min(count, e);
    const std::vector<std::size_t> picks = init_design(st, rng, count);
    if (!picks.empty()) st.evaluate_flats(picks);
  }

  // Acquisition rounds.
  std::vector<double> buf, sel_row;
  for (std::size_t round = 0; st.affordable() > 0; ++round) {
    std::vector<std::size_t> cand;
    for (std::size_t flat = 0; flat < space.size(); ++flat)
      if (st.seen[flat] < 0) cand.push_back(flat);
    if (cand.empty()) break;

    GpSurrogate gp(options.gp);
    bool gp_ok = true;
    try {
      model::Matrix xt(st.result.history.size(), st.x.cols());
      std::vector<double> y(st.result.history.size());
      for (std::size_t i = 0; i < st.result.history.size(); ++i) {
        const EvaluatedCell& h = st.result.history[i];
        for (std::size_t c = 0; c < st.x.cols(); ++c)
          xt.at(i, c) = st.x.at(h.flat, c);
        y[i] = h.objective;
      }
      gp.fit(xt, y);
    } catch (const std::exception&) {
      gp_ok = false;  // PSD guard gave up; fall back to random picks
    }

    const std::size_t batch =
        std::min({options.batch, st.affordable(), cand.size()});
    std::vector<std::size_t> picks;
    if (!gp_ok) {
      std::vector<std::size_t> shuffled = cand;
      shuffle_in_place(shuffled, rng.split(1000 + round));
      picks.assign(shuffled.begin(), shuffled.begin() + batch);
    } else {
      // Incumbents: global minimum, and per-recoverability-class minima
      // for the Pareto acquisition.
      double best_single = std::numeric_limits<double>::infinity();
      std::map<double, double> class_best;
      for (const EvaluatedCell& h : st.result.history) {
        best_single = std::min(best_single, h.objective);
        const auto [it, inserted] =
            class_best.try_emplace(h.recoverability, h.objective);
        if (!inserted && h.objective < it->second) it->second = h.objective;
      }

      // Score candidates: expected improvement against the relevant
      // incumbent, posterior variance as tie-breaker, flat index last.
      // Pareto mode normalizes EI by the class incumbent: absolute EI
      // hands the whole budget to whichever class has the worst incumbent
      // (it has the most room to improve in seconds), starving the cheap
      // classes whose minima the front needs resolved bit-exactly.
      struct Score {
        double primary;
        double secondary;
      };
      std::vector<Score> scores(cand.size());
      for (std::size_t i = 0; i < cand.size(); ++i) {
        st.row(cand[i], buf);
        const GpSurrogate::Posterior post = gp.predict(buf);
        double incumbent = best_single;
        if (options.mode == Mode::kPareto) {
          const auto it =
              class_best.find(recov[space.scenario_of(cand[i])]);
          if (it == class_best.end()) {
            scores[i] = {kUnseenClassScore, post.variance};
            continue;
          }
          incumbent = it->second;
        }
        double ei = gp.expected_improvement(buf, incumbent);
        if (options.mode == Mode::kPareto)
          ei /= std::max(std::abs(incumbent), 1e-12);
        scores[i] = {ei, post.variance};
      }

      // Greedy batch with kernel-based local penalization: each selected
      // cell suppresses the acquisition of its kernel neighbourhood so a
      // batch spreads out instead of piling onto one optimum.
      std::vector<char> taken(cand.size(), 0);
      for (std::size_t k = 0; k < batch; ++k) {
        std::size_t pick = cand.size();
        for (std::size_t i = 0; i < cand.size(); ++i) {
          if (taken[i]) continue;
          if (pick == cand.size() ||
              scores[i].primary > scores[pick].primary ||
              (scores[i].primary == scores[pick].primary &&
               (scores[i].secondary > scores[pick].secondary ||
                (scores[i].secondary == scores[pick].secondary &&
                 cand[i] < cand[pick]))))
            pick = i;
        }
        taken[pick] = 1;
        picks.push_back(cand[pick]);
        if (k + 1 == batch) break;
        st.row(cand[pick], sel_row);
        for (std::size_t j = 0; j < cand.size(); ++j) {
          if (taken[j]) continue;
          st.row(cand[j], buf);
          double penalty =
              1.0 - gp.kernel(sel_row, buf) / options.gp.signal_variance;
          penalty = std::clamp(penalty, 0.0, 1.0);
          scores[j].primary *= penalty;
          scores[j].secondary *= penalty;
        }
      }
    }
    st.evaluate_flats(picks);
  }
  return std::move(st.result);
}

SearchResult run_bandit(const SearchSpace& space, const SearchOptions& options,
                        const Evaluator& evaluate, core::DseBudget& budget,
                        const std::vector<double>& recov) {
  util::Rng rng(options.seed);
  const BanditResult br = run_successive_halving(
      space.size(), options.trials, budget, options.bandit, rng.split(2),
      evaluate);
  SearchResult r;
  r.method_used = Method::kBandit;
  for (const BanditOutcome& o : br.history) {
    EvaluatedCell cell;
    cell.flat = o.flat;
    cell.scenario = space.scenarios[space.scenario_of(o.flat)].name;
    cell.params = space.points[space.point_of(o.flat)];
    cell.objective = o.value;
    cell.recoverability = recov[space.scenario_of(o.flat)];
    cell.trials = o.trials;
    r.history.push_back(std::move(cell));
  }
  r.evaluations = br.history.size();
  r.trial_units = br.trial_units;
  r.best.flat = br.best;
  r.best.scenario = space.scenarios[space.scenario_of(br.best)].name;
  r.best.params = space.points[space.point_of(br.best)];
  r.best.objective = br.best_value;
  r.best.recoverability = recov[space.scenario_of(br.best)];
  r.best.trials = options.trials;
  return r;
}

}  // namespace

std::string to_string(Method method) {
  switch (method) {
    case Method::kAuto: return "auto";
    case Method::kGp: return "gp";
    case Method::kBandit: return "bandit";
  }
  return "?";
}

std::string to_string(Mode mode) {
  return mode == Mode::kSingle ? "single" : "pareto";
}

SearchResult run_search(const SearchSpace& space, const SearchOptions& options,
                        const Evaluator& evaluate,
                        const std::vector<WarmObservation>& warm) {
  space.validate();
  if (!evaluate) throw std::invalid_argument("search evaluator is required");
  if (options.trials == 0)
    throw std::invalid_argument("search trials must be >= 1");
  if (options.batch == 0)
    throw std::invalid_argument("search batch must be >= 1");
  if (options.budget_units <= 0.0 && options.budget_fraction <= 0.0)
    throw std::invalid_argument("search budget must be positive");

  Method method = options.method;
  if (method == Method::kAuto) {
    // The GP pays O(n^3) per fit; past a couple thousand cells the
    // halving bandit's linear rungs win. Pareto mode needs the surrogate.
    method = (options.mode == Mode::kPareto || space.size() <= 2048)
                 ? Method::kGp
                 : Method::kBandit;
  }
  if (method == Method::kBandit && options.mode == Mode::kPareto)
    throw std::invalid_argument(
        "bandit engine is single-objective; use the GP for Pareto mode");

  core::DseBudget budget =
      options.budget_units > 0.0
          ? core::DseBudget(options.budget_units)
          : core::DseBudget::fraction_of(space.size(), options.trials,
                                         options.budget_fraction);

  std::vector<double> recov(space.scenarios.size());
  for (std::size_t s = 0; s < space.scenarios.size(); ++s)
    recov[s] = recoverability_score(space.scenarios[s].plan, options.fti);

  SearchResult result =
      method == Method::kGp
          ? run_gp(space, options, evaluate, warm, budget, recov)
          : run_bandit(space, options, evaluate, budget, recov);
  result.budget_units = budget.total();

  // Incumbent and, in Pareto mode, the non-dominated set over everything
  // priced at full fidelity.
  const EvaluatedCell* best = nullptr;
  for (const EvaluatedCell& h : result.history) {
    if (h.trials != options.trials) continue;
    if (!best || h.objective < best->objective ||
        (h.objective == best->objective && h.flat < best->flat))
      best = &h;
  }
  if (best) result.best = *best;
  if (options.mode == Mode::kPareto) {
    std::vector<ParetoPoint> pts;
    for (const EvaluatedCell& h : result.history)
      if (h.trials == options.trials)
        pts.push_back(ParetoPoint{h.flat, h.objective, h.recoverability});
    const std::vector<ParetoPoint> front = pareto_front(std::move(pts));
    result.pareto.clear();
    for (const ParetoPoint& p : front) {
      for (const EvaluatedCell& h : result.history) {
        if (h.flat == p.flat && h.trials == options.trials) {
          result.pareto.push_back(h);
          break;
        }
      }
    }
  }
  return result;
}

SearchResult run_search_dse(
    const SearchSpace& space, const SearchOptions& options,
    const std::function<core::AppBEO(const core::Scenario&,
                                     const std::vector<double>&)>& make_app,
    const core::ArchBEO& arch, const core::EngineOptions& engine) {
  return run_search(
      space, options, [&](const std::vector<core::DseCell>& cells) {
        const std::vector<core::DsePoint> points = core::run_dse_cells(
            space.scenarios, space.points, cells, make_app, arch, engine,
            options.trials, options.threads);
        std::vector<double> out(points.size());
        for (std::size_t i = 0; i < points.size(); ++i)
          out[i] = points[i].ensemble.total.mean;
        return out;
      });
}

std::string SearchResult::to_text() const {
  std::string out = "ftbesst-search v1\n";
  out += "method " + to_string(method_used) + '\n';
  out += "evaluations " + std::to_string(evaluations) + '\n';
  out += "warm_hits " + std::to_string(warm_hits) + '\n';
  out += "budget_units ";
  append_double(out, budget_units);
  out += '\n';
  out += "trial_units ";
  append_double(out, trial_units);
  out += '\n';
  append_cell_line(out, "best", best);
  out += "pareto " + std::to_string(pareto.size()) + '\n';
  for (const EvaluatedCell& p : pareto) append_cell_line(out, "front", p);
  out += "history " + std::to_string(history.size()) + '\n';
  for (const EvaluatedCell& h : history) {
    out += "eval ";
    out += std::to_string(h.flat);
    out += ' ';
    out += std::to_string(h.trials);
    out += h.warm ? " warm " : " cold ";
    append_double(out, h.objective);
    out += '\n';
  }
  return out;
}

}  // namespace ftbesst::search
