#include "search/bandit.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ftbesst::search {

namespace {

/// Rung trial counts, ascending and ending exactly at full_trials.
std::vector<std::size_t> rung_schedule(std::size_t full_trials,
                                       const BanditOptions& options) {
  std::vector<std::size_t> rungs{full_trials};
  double t = static_cast<double>(full_trials);
  while (true) {
    t /= options.eta;
    const auto down = static_cast<std::size_t>(t);
    if (down <= options.min_rung_trials) {
      if (rungs.back() != options.min_rung_trials &&
          options.min_rung_trials < full_trials)
        rungs.push_back(options.min_rung_trials);
      break;
    }
    rungs.push_back(down);
  }
  std::reverse(rungs.begin(), rungs.end());
  return rungs;
}

/// Trial units of running `arms` starting arms down the schedule.
double schedule_cost(std::size_t arms, const std::vector<std::size_t>& rungs,
                     double eta) {
  double cost = 0.0;
  double n = static_cast<double>(arms);
  for (std::size_t r = 0; r < rungs.size(); ++r) {
    cost += std::ceil(n) * static_cast<double>(rungs[r]);
    if (r + 1 < rungs.size()) n = std::max(1.0, std::ceil(n / eta));
  }
  return cost;
}

}  // namespace

BanditResult run_successive_halving(std::size_t num_cells,
                                    std::size_t full_trials,
                                    core::DseBudget& budget,
                                    const BanditOptions& options,
                                    util::Rng rng,
                                    const BanditEvaluator& evaluate) {
  if (num_cells == 0)
    throw std::invalid_argument("run_successive_halving: no cells");
  if (full_trials == 0)
    throw std::invalid_argument("run_successive_halving: zero trials");
  if (options.eta <= 1.0)
    throw std::invalid_argument("run_successive_halving: eta must be > 1");

  const std::vector<std::size_t> rungs = rung_schedule(full_trials, options);

  // Largest starting-arm count whose schedule fits the remaining budget.
  std::size_t arms_count = num_cells;
  while (arms_count > 1 &&
         schedule_cost(arms_count, rungs, options.eta) > budget.remaining())
    --arms_count;
  if (schedule_cost(arms_count, rungs, options.eta) > budget.remaining())
    throw std::invalid_argument(
        "run_successive_halving: budget cannot afford a single arm");

  // Budget-forced subsample: deterministic partial Fisher-Yates.
  std::vector<std::size_t> arms(num_cells);
  std::iota(arms.begin(), arms.end(), std::size_t{0});
  if (arms_count < num_cells) {
    for (std::size_t i = 0; i < arms_count; ++i) {
      const std::size_t j = i + rng.uniform_int(arms.size() - i);
      std::swap(arms[i], arms[j]);
    }
    arms.resize(arms_count);
    std::sort(arms.begin(), arms.end());
  }

  BanditResult result;
  result.starting_arms = arms.size();
  std::vector<double> values;
  for (std::size_t r = 0; r < rungs.size(); ++r) {
    const std::size_t t = rungs[r];
    std::vector<core::DseCell> cells(arms.size());
    for (std::size_t i = 0; i < arms.size(); ++i)
      cells[i] = core::DseCell{arms[i], t};
    values = evaluate(cells);
    if (values.size() != arms.size())
      throw std::logic_error("bandit evaluator returned wrong count");
    const double units =
        static_cast<double>(arms.size()) * static_cast<double>(t);
    budget.charge(units);
    result.trial_units += units;
    for (std::size_t i = 0; i < arms.size(); ++i)
      result.history.push_back(BanditOutcome{arms[i], t, values[i]});
    if (r + 1 == rungs.size()) break;
    // Promote the top 1/eta arms (ties broken by flat index).
    const auto keep = static_cast<std::size_t>(std::max(
        1.0, std::ceil(static_cast<double>(arms.size()) / options.eta)));
    std::vector<std::size_t> order(arms.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (values[a] != values[b]) return values[a] < values[b];
      return arms[a] < arms[b];
    });
    std::vector<std::size_t> next;
    next.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) next.push_back(arms[order[i]]);
    std::sort(next.begin(), next.end());
    arms = std::move(next);
  }

  result.finalists = arms;
  std::size_t best_i = 0;
  for (std::size_t i = 1; i < arms.size(); ++i)
    if (values[i] < values[best_i] ||
        (values[i] == values[best_i] && arms[i] < arms[best_i]))
      best_i = i;
  result.best = arms[best_i];
  result.best_value = values[best_i];
  return result;
}

}  // namespace ftbesst::search
