#pragma once
// Gaussian-process surrogate for the guided DSE loop.
//
// A GP regression over the encoded grid cells (search/space.hpp): fit
// standardizes the targets, builds the kernel matrix, and factors
// K + noise*I with model::cholesky_factor, escalating diagonal jitter on
// failure (the PSD guard — near-duplicate rows make K numerically
// indefinite). predict returns the posterior mean/variance; the
// expected-improvement acquisition scores how much a candidate is likely
// to beat the incumbent minimum. Everything here is plain serial double
// arithmetic — deterministic by construction, so the surrounding search
// stays bit-identical at any thread count.

#include <cstddef>
#include <span>
#include <vector>

#include "model/linalg.hpp"

namespace ftbesst::search {

struct GpOptions {
  enum class Kernel { kMatern52, kRbf };
  Kernel kernel = Kernel::kMatern52;
  /// Shared length scale over the encoded features (one-hot scenario
  /// columns + rank-normalized axes, so coordinates live in [0, 1]).
  /// Distinct scenarios sit at distance 1, so 0.7 leaves them correlated
  /// at ~0.3 — enough for "this corner of the sweep is cheap" to transfer
  /// across scenarios instead of each one being learned from scratch,
  /// which is what lets a 10%-budget search cover every recoverability
  /// class of the Pareto front.
  double length_scale = 0.7;
  double signal_variance = 1.0;
  /// Observation noise added to the kernel diagonal (standardized units).
  double noise_variance = 1e-6;
  /// PSD guard: jitter is escalated x10 from noise_variance up to this cap
  /// before giving up on the Cholesky.
  double max_jitter = 1e-2;
  /// Exploration margin of expected improvement (standardized units).
  double xi = 0.01;
};

class GpSurrogate {
 public:
  explicit GpSurrogate(GpOptions options = {}) : options_(options) {}

  /// Fit on n rows of `x` with targets `y` (n >= 1). Targets are
  /// standardized internally; a constant target column gets unit scale.
  void fit(const model::Matrix& x, std::span<const double> y);

  [[nodiscard]] bool fitted() const noexcept { return !alpha_.empty(); }
  /// Diagonal jitter the PSD guard settled on during the last fit.
  [[nodiscard]] double jitter_used() const noexcept { return jitter_used_; }

  struct Posterior {
    double mean = 0.0;
    double variance = 0.0;  ///< clamped to >= 0, original units
  };
  [[nodiscard]] Posterior predict(std::span<const double> x) const;

  /// Expected improvement of candidate `x` below incumbent `best_y`
  /// (minimization, original units). Zero posterior variance degrades to
  /// max(best_y - mean, 0).
  [[nodiscard]] double expected_improvement(std::span<const double> x,
                                            double best_y) const;

  /// Kernel value k(a, b); k(a, a) == signal_variance.
  [[nodiscard]] double kernel(std::span<const double> a,
                              std::span<const double> b) const;

 private:
  GpOptions options_;
  model::Matrix train_{0, 0};  ///< training rows
  model::Matrix chol_{0, 0};   ///< L with K + jitter*I = L L^T
  std::vector<double> alpha_;  ///< (K + jitter*I)^-1 y_standardized
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double jitter_used_ = 0.0;
};

}  // namespace ftbesst::search
