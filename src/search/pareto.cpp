#include "search/pareto.hpp"

#include <algorithm>
#include <cmath>

namespace ftbesst::search {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.objective > b.objective || a.recoverability < b.recoverability)
    return false;
  return a.objective < b.objective || a.recoverability > b.recoverability;
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.objective != b.objective) return a.objective < b.objective;
              if (a.recoverability != b.recoverability)
                return a.recoverability > b.recoverability;
              return a.flat < b.flat;
            });
  std::vector<ParetoPoint> front;
  double best_recoverability = -1.0;
  for (const ParetoPoint& p : points) {
    // Sorted by ascending objective, so p is non-dominated iff it improves
    // recoverability over everything cheaper. Equal objective-space points
    // after the first (lowest flat) are duplicates, not front members.
    if (p.recoverability > best_recoverability) {
      front.push_back(p);
      best_recoverability = p.recoverability;
    }
  }
  return front;
}

bool front_dominates_or_equals(const std::vector<ParetoPoint>& candidate,
                               const std::vector<ParetoPoint>& reference) {
  for (const ParetoPoint& r : reference) {
    const bool covered =
        std::any_of(candidate.begin(), candidate.end(),
                    [&r](const ParetoPoint& c) {
                      return c.objective <= r.objective &&
                             c.recoverability >= r.recoverability;
                    });
    if (!covered) return false;
  }
  return true;
}

double recoverability_score(const std::vector<ft::PlanEntry>& plan,
                            const ft::FtiConfig& fti) {
  if (plan.empty()) return 0.0;
  // One full FTI group is enough: the ladder only fails nodes of group 0,
  // and ft::recoverable's semantics are per-group, so any valid rank count
  // yields the same verdicts.
  const std::int64_t ranks =
      static_cast<std::int64_t>(fti.group_size) * fti.node_size;
  const auto survives = [&](const ft::FailureSet& failures) {
    return std::any_of(plan.begin(), plan.end(),
                       [&](const ft::PlanEntry& e) {
                         return ft::recoverable(e.level, fti, ranks, failures);
                       });
  };

  const int g = fti.group_size;
  double total = 0.0;
  double survived = 0.0;
  // Class 0: a process crash on node 0 — weight 2^g.
  double weight = std::ldexp(1.0, g);
  ft::FailureSet crash;
  crash.kind = ft::FailureKind::kProcessCrash;
  crash.nodes = {0};
  total += weight;
  if (survives(crash)) survived += weight;
  // Classes 1..g: k concurrent node losses on nodes 0..k-1 — weight 2^(g-k).
  for (int k = 1; k <= g; ++k) {
    weight = std::ldexp(1.0, g - k);
    ft::FailureSet loss;
    loss.kind = ft::FailureKind::kNodeLoss;
    for (int node = 0; node < k; ++node) loss.nodes.push_back(node);
    total += weight;
    if (survives(loss)) survived += weight;
  }
  return survived / total;
}

}  // namespace ftbesst::search
