#pragma once
// Pareto-frontier bookkeeping for the {runtime overhead x recoverability}
// objective pair, plus the recoverability score itself.
//
// The score collapses ft::recoverable's Table-I semantics into one number
// per checkpoint plan: a fixed ladder of failure classes of increasing
// severity (process crash, then k concurrent node losses for k = 1 ..
// group_size, all within one FTI group), each weighted geometrically, with
// a class counting when *any* level of the plan recovers it. The ladder
// only touches nodes of group 0, so the score is a pure function of
// {plan, FtiConfig} — independent of the rank count (for any valid rank
// count), which keeps the number of distinct recoverability classes in a
// search equal to the number of distinct plans.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ft/fti.hpp"

namespace ftbesst::search {

/// One candidate in objective space. Lower objective is better (expected
/// makespan, seconds); higher recoverability is better ([0, 1]).
struct ParetoPoint {
  std::size_t flat = 0;  ///< grid cell this point came from
  double objective = 0.0;
  double recoverability = 0.0;
};

/// a dominates b: no worse on both axes, strictly better on at least one.
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Non-dominated subset, sorted by ascending objective (ties by flat
/// index); duplicate objective-space points keep the lowest flat index.
[[nodiscard]] std::vector<ParetoPoint> pareto_front(
    std::vector<ParetoPoint> points);

/// Every reference point is covered by some candidate point at least as
/// good on both axes — the "dominates-or-equals" acceptance check of the
/// search_vs_exhaustive leg.
[[nodiscard]] bool front_dominates_or_equals(
    const std::vector<ParetoPoint>& candidate,
    const std::vector<ParetoPoint>& reference);

/// Recoverability in [0, 1] of a checkpoint plan under `fti`: 0 for No FT,
/// 1 for a plan whose worst-survivable failure covers the whole ladder
/// (an L4 plan). Strictly ordered along the single-level ladder
/// L1 < L2 < L3 < L4 for the default group sizes.
[[nodiscard]] double recoverability_score(
    const std::vector<ft::PlanEntry>& plan, const ft::FtiConfig& fti);

}  // namespace ftbesst::search
