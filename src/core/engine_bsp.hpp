#pragma once
// The coarse-grained BE evaluation engine (bulk-synchronous fast path).
//
// "The simulator 'executes' the abstract instructions in the AppBEO. Each
// instruction ... causes the simulator to poll the ArchBEO to determine the
// runtime for that event and advance the simulator clock."
//
// Applications modeled here (iterative solvers with coordinated
// checkpointing, Fig. 3) are bulk-synchronous, so the engine advances a
// single coordinated clock per abstract instruction; per-instruction
// durations come from the bound models (deterministic predict() or
// Monte-Carlo sample()). A discrete-event twin (engine_des) executes the
// same programs per-rank on the PDES kernel and is cross-validated against
// this engine in the test suite.
//
// Fault injection (Cases 2 and 4 of the paper's Fig. 4) replays the
// program against a sampled fault timeline with FTI-level-aware rollback.

#include <array>
#include <cstdint>
#include <vector>

#include "core/arch.hpp"
#include "core/beo.hpp"
#include "ft/fault_log.hpp"
#include "ft/faults.hpp"

namespace ftbesst::core {

struct EngineOptions {
  std::uint64_t seed = 1;
  /// Draw stochastic durations (Monte-Carlo mode) instead of expectations.
  bool monte_carlo = false;
  /// Inject faults from the ArchBEO's fault process (Cases 2/4). Without a
  /// fault process on the architecture this is an error. Both engines
  /// honour this: the coarse engine samples a system-level renewal process
  /// on the fly; the DES engine (src/inject) pre-materializes per-node
  /// schedules and replays recovery inside the event kernel. The DES path
  /// additionally injects the ArchBEO's SDC process when one is set, and
  /// rejects use_des_network (in-flight flow deliveries cannot be rolled
  /// back).
  bool inject_faults = false;
  /// Replay a RECORDED failure trace instead of sampling the fault process
  /// (times are absolute simulation seconds; must be time-ordered). Used to
  /// re-run an observed incident log (ftbesst faultlog / ft::fault_log)
  /// against candidate checkpoint plans. When non-empty this takes
  /// precedence over the fault process; inject_faults must still be set.
  std::vector<ft::FaultEvent> fault_trace;
  /// Downtime before recovery can begin after a failure (node reboot /
  /// replacement), seconds.
  double downtime_seconds = 60.0;
  /// Safety horizon: a run that exceeds this wall-clock is marked
  /// incomplete (the no-FT + high-fault-rate regime can thrash forever).
  double max_sim_seconds = 1e8;
  /// Fraction of an asynchronous checkpoint's cost paid on the critical
  /// path (the local staging copy); the remainder flushes in the
  /// background (FTI's dedicated-process mode). Coarse engine only.
  double async_stage_fraction = 0.15;
  /// DES engine only: execute neighbor-exchange instructions through the
  /// discrete-event fat-tree network (net::DesNetwork) instead of the
  /// analytic collective model — per-port serialization and real contention.
  /// Requires the ArchBEO topology to be a TwoStageFatTree; ignored by the
  /// coarse engine.
  bool use_des_network = false;
  /// DES engine only: collapse symmetric ranks — same AppBEO plan, same
  /// architecture config, isomorphic link signature (sim/fold.hpp) — to one
  /// representative component per equivalence class, carrying the class
  /// multiplicity. Predictions are bitwise identical to the unfolded run;
  /// only the event count shrinks. Folding is automatically disabled (every
  /// rank is its own class) when `monte_carlo` is set, because per-rank RNG
  /// streams make every rank behaviourally distinct, and when
  /// `use_des_network` is set, because ranks then occupy distinct network
  /// positions. See ARCHITECTURE.md, "Scaling the DES core".
  bool fold_symmetry = true;
  /// DES engine only: rank ids forced out of their fold group into
  /// singleton classes (clone-on-divergence) and instantiated individually
  /// — the hook for pinning fault-injection victims or locally perturbed
  /// ranks. Out-of-range ids are ignored.
  std::vector<std::int64_t> divergent_ranks;
};

struct RunResult {
  double total_seconds = 0.0;
  /// Cumulative wall-clock at each solver timestep boundary (the curves of
  /// the paper's Figs. 7-8).
  std::vector<double> timestep_end_times;
  /// Timestep indices (1-based) after which a checkpoint completed — the
  /// black dots of Figs. 7-8.
  std::vector<int> checkpoint_timesteps;
  std::uint64_t instructions_executed = 0;
  /// Events dispatched by the PDES kernel (0 for the coarse engine). A
  /// diagnostic, not a prediction: folding shrinks it while leaving every
  /// prediction field identical, so it is deliberately excluded from the
  /// verify corpus text format.
  std::uint64_t sim_events = 0;
  int faults = 0;           ///< faults that struck during execution
  int rollbacks = 0;        ///< recoveries from a checkpoint
  int full_restarts = 0;    ///< unrecoverable failures (restart from start)
  /// Wall-clock seconds of execution discarded by rollbacks: per fault, the
  /// window from the restored checkpoint's completion (application start
  /// for a full restart) to the fault's detection.
  double lost_work_seconds = 0.0;
  /// Successful rollbacks that restored a level-L checkpoint, at index L-1.
  std::array<int, 4> recoveries_by_level{};
  /// Per-fault campaign records (strike time, node, kind, recovery level
  /// chosen, lost work, restart cost). Trial ids are 0 here; the ensemble
  /// and campaign drivers re-tag per trial. Exportable as CSV and as the
  /// replayable `ftbesst-faultlog v1` text format (ft/fault_log.hpp).
  ft::FaultLog fault_log;
  bool completed = true;
};

/// Execute `app` on `arch`. Throws std::out_of_range if the AppBEO
/// references a kernel with no bound model, std::invalid_argument on
/// rank/architecture mismatches.
[[nodiscard]] RunResult run_bsp(const AppBEO& app, const ArchBEO& arch,
                                const EngineOptions& options = {});

}  // namespace ftbesst::core
