#include "core/workflow.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/task_pool.hpp"

namespace ftbesst::core {

void ModelSuite::bind_into(ArchBEO& arch) const {
  for (const auto& [name, fitted] : kernels)
    arch.bind_kernel(name, fitted.noisy_model);
}

ModelSuite develop_models(
    const std::map<std::string, model::Dataset>& calibration,
    const model::FitOptions& options) {
  if (calibration.empty())
    throw std::invalid_argument("no calibration datasets");
  ModelSuite suite;
  for (const auto& [kernel, dataset] : calibration) {
    model::FitOptions per_kernel = options;
    // Decorrelate the per-kernel splits/searches deterministically.
    per_kernel.seed = options.seed ^ std::hash<std::string>{}(kernel);
    auto fitted = model::fit_kernel_model(dataset, per_kernel);
    suite.reports.push_back(KernelModelReport{kernel, fitted.report});
    suite.kernels.emplace(kernel, std::move(fitted));
  }
  return suite;
}

std::vector<ft::PlanEntry> parse_plan(const std::string& text) {
  std::vector<ft::PlanEntry> plan;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    std::string part = text.substr(start, end - start);
    // Trim surrounding spaces so "L1:40, L2:40" parses.
    while (!part.empty() && part.front() == ' ') part.erase(0, 1);
    while (!part.empty() && part.back() == ' ') part.pop_back();
    if (!part.empty()) {
      const auto bad = [&part](const std::string& why) {
        return std::invalid_argument("bad plan entry '" + part + "': " + why +
                                     " (expected e.g. L1:40 or L4:100a)");
      };
      if (part[0] != 'L' && part[0] != 'l') throw bad("must start with L");
      const auto colon = part.find(':');
      if (colon == std::string::npos || colon < 2) throw bad("missing ':'");
      ft::PlanEntry entry;
      std::string period_text = part.substr(colon + 1);
      if (!period_text.empty() &&
          (period_text.back() == 'a' || period_text.back() == 'A')) {
        entry.async = true;
        period_text.pop_back();
      }
      std::size_t used = 0;
      int level = 0, period = 0;
      try {
        level = std::stoi(part.substr(1, colon - 1), &used);
        if (used != colon - 1) throw std::invalid_argument("trailing");
        period = std::stoi(period_text, &used);
        if (used != period_text.size()) throw std::invalid_argument("trailing");
      } catch (const std::invalid_argument&) {
        throw bad("level and period must be integers");
      } catch (const std::out_of_range&) {
        throw bad("level or period out of range");
      }
      if (level < 1 || level > 4) throw bad("checkpoint level must be 1-4");
      if (period < 1) throw bad("period must be >= 1 timestep");
      entry.level = static_cast<ft::Level>(level);
      entry.period = period;
      plan.push_back(entry);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  validate_plan(plan);
  return plan;
}

void validate_plan(const std::vector<ft::PlanEntry>& plan) {
  bool seen[5] = {};
  for (const ft::PlanEntry& e : plan) {
    const int level = static_cast<int>(e.level);
    if (level < 1 || level > 4)
      throw std::invalid_argument("checkpoint level must be 1-4, got L" +
                                  std::to_string(level));
    if (e.period < 1)
      throw std::invalid_argument("checkpoint period must be >= 1, got " +
                                  std::to_string(e.period) + " for L" +
                                  std::to_string(level));
    if (seen[level])
      throw std::invalid_argument("duplicate checkpoint level L" +
                                  std::to_string(level) + " in plan");
    seen[level] = true;
  }
}

namespace {

/// Shared body of run_dse / run_dse_cells: price the requested cells on
/// the pool. Per-cell seeds come from the cell's flat grid index, so any
/// subset evaluation is bit-identical to the matching slice of the
/// exhaustive sweep.
std::vector<DsePoint> run_cells(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::vector<double>>& parameter_points,
    const std::vector<DseCell>& cells,
    const std::function<AppBEO(const Scenario&, const std::vector<double>&)>&
        make_app,
    const ArchBEO& arch, const EngineOptions& options,
    std::size_t default_trials, unsigned threads) {
  if (!make_app) throw std::invalid_argument("make_app is required");
  // Points-per-second observability: each completed point bumps the counter
  // and records its wall-clock seconds (clocked only while obs is enabled).
  static const obs::Counter point_count = obs::counter("dse.points");
  static const obs::Histogram point_seconds = obs::histogram(
      "dse.point_seconds",
      {1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 300.0});
  const std::size_t point_count_per_scenario = parameter_points.size();
  std::vector<DsePoint> out(cells.size());
  // One shared-pool task per cell; each cell's run_ensemble fans its
  // trials onto the same pool, so the whole sweep flattens into
  // (cells x trials) dynamically-claimed tasks. Per-cell seeds are derived
  // here, before scheduling, so results are bit-identical to the serial
  // sweep regardless of scheduling.
  util::TaskGroup group;
  for (std::size_t slot = 0; slot < cells.size(); ++slot) {
    const DseCell& cell = cells[slot];
    if (cell.flat >= scenarios.size() * point_count_per_scenario)
      throw std::invalid_argument("run_dse_cells: flat index out of range");
    const Scenario* scenario_p = &scenarios[cell.flat / point_count_per_scenario];
    const std::vector<double>* params_p =
        &parameter_points[cell.flat % point_count_per_scenario];
    EngineOptions per_point = options;
    per_point.seed =
        options.seed + 0x9e37 * (static_cast<std::uint64_t>(cell.flat) + 1);
    const std::size_t trials = cell.trials != 0 ? cell.trials : default_trials;
    auto run_point = [&make_app, &arch, &out, scenario_p, params_p, per_point,
                      trials, threads, slot] {
      const bool observed = obs::enabled();
      const std::uint64_t t0 = observed ? obs::now_ns() : 0;
      const AppBEO app = make_app(*scenario_p, *params_p);
      DsePoint point;
      point.scenario = scenario_p->name;
      point.params = *params_p;
      point.ensemble = run_ensemble(app, arch, per_point, trials, threads);
      out[slot] = std::move(point);
      if (observed) {
        point_count.add();
        point_seconds.observe(static_cast<double>(obs::now_ns() - t0) * 1e-9);
      }
    };
    if (threads == 1)
      run_point();
    else
      group.run(std::move(run_point));
  }
  group.wait();
  return out;
}

}  // namespace

std::vector<DsePoint> run_dse(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::vector<double>>& parameter_points,
    const std::function<AppBEO(const Scenario&, const std::vector<double>&)>&
        make_app,
    const ArchBEO& arch, const EngineOptions& options, std::size_t trials,
    unsigned threads) {
  FTBESST_OBS_SPAN("core.run_dse");
  std::vector<DseCell> cells(scenarios.size() * parameter_points.size());
  for (std::size_t f = 0; f < cells.size(); ++f) cells[f].flat = f;
  return run_cells(scenarios, parameter_points, cells, make_app, arch, options,
                   trials, threads);
}

std::vector<DsePoint> run_dse_cells(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::vector<double>>& parameter_points,
    const std::vector<DseCell>& cells,
    const std::function<AppBEO(const Scenario&, const std::vector<double>&)>&
        make_app,
    const ArchBEO& arch, const EngineOptions& options,
    std::size_t default_trials, unsigned threads) {
  FTBESST_OBS_SPAN("core.run_dse_cells");
  if (default_trials == 0)
    for (const DseCell& cell : cells)
      if (cell.trials == 0)
        throw std::invalid_argument(
            "run_dse_cells: cell without trials and no default");
  return run_cells(scenarios, parameter_points, cells, make_app, arch, options,
                   default_trials, threads);
}

std::string format_plan(const std::vector<ft::PlanEntry>& plan) {
  std::string out;
  for (const ft::PlanEntry& e : plan) {
    if (!out.empty()) out += ',';
    out += 'L';
    out += std::to_string(static_cast<int>(e.level));
    out += ':';
    out += std::to_string(e.period);
    if (e.async) out += 'a';
  }
  return out;
}

std::vector<double> quantize_params(const std::vector<double>& params) {
  std::vector<double> out(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", params[i]);
    out[i] = std::strtod(buf, nullptr);
  }
  return out;
}

std::map<std::string, std::map<std::vector<double>, double>> overhead_grid(
    const std::vector<DsePoint>& points, const std::string& baseline_scenario,
    const std::vector<double>& baseline_params) {
  // Keys are quantized so that coordinates recomputed elsewhere (parsed
  // back from a report, say) still find their cell: exact-double keys made
  // lookups fail on any value that did not round-trip bit-for-bit.
  const std::vector<double> base_key = quantize_params(baseline_params);
  const DsePoint* baseline = nullptr;
  for (const DsePoint& p : points)
    if (p.scenario == baseline_scenario && quantize_params(p.params) == base_key)
      baseline = &p;
  if (!baseline)
    throw std::invalid_argument("baseline point not found in DSE results");
  const double base = baseline->ensemble.total.mean;
  if (base <= 0.0) throw std::logic_error("baseline runtime is zero");

  std::map<std::string, std::map<std::vector<double>, double>> grid;
  for (const DsePoint& p : points)
    grid[p.scenario][quantize_params(p.params)] =
        100.0 * p.ensemble.total.mean / base;
  return grid;
}

}  // namespace ftbesst::core
