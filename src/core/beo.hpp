#pragma once
// Behavioral Emulation Objects (BEOs).
//
// An AppBEO is "a list of abstract instructions that represents the major
// functions and control flow of the application under study". Instructions
// carry only the parameters that affect performance. The FT-aware extension
// adds checkpoint instructions (with their FTI level) to the instruction
// set — the red boxes of the paper's Fig. 2/Fig. 3.
//
// Programs are SPMD: every rank executes the same instruction list; the
// engine resolves per-rank behaviour (neighbours, collectives, noise).

#include <cstdint>
#include <string>
#include <vector>

#include "ft/fti.hpp"

namespace ftbesst::core {

enum class InstrKind {
  kCompute,           ///< named kernel, duration from a bound PerfModel
  kNeighborExchange,  ///< halo exchange with `degree` neighbours
  kAllReduce,         ///< global reduction of `bytes`
  kBarrier,           ///< global synchronization
  kCheckpoint,        ///< coordinated FTI checkpoint at `level`
  kTimestepEnd        ///< marks a solver timestep boundary (trace point)
};

struct Instr {
  InstrKind kind = InstrKind::kCompute;
  std::string kernel;          ///< kCompute / kCheckpoint: bound model name
  std::vector<double> params;  ///< model arguments (e.g. {epr, ranks})
  std::uint64_t bytes = 0;     ///< comm volume for exchange/allreduce
  int degree = 0;              ///< kNeighborExchange fan-out
  ft::Level level = ft::Level::kL1;  ///< kCheckpoint level
  bool async = false;                ///< kCheckpoint: staged background flush
};

class AppBEO {
 public:
  AppBEO(std::string name, std::int64_t ranks);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t ranks() const noexcept { return ranks_; }
  [[nodiscard]] const std::vector<Instr>& program() const noexcept {
    return program_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return program_.size(); }
  /// Number of kTimestepEnd markers in the program.
  [[nodiscard]] int timesteps() const noexcept { return timesteps_; }
  /// FNV-1a digest of the full instruction list (every performance-relevant
  /// field, plus checkpoint_bytes_per_rank). Two AppBEOs with equal digests
  /// describe the same per-rank behaviour — the behaviour axis of symmetry
  /// folding (sim::FoldSignature::behavior_digest).
  [[nodiscard]] std::uint64_t plan_digest() const noexcept;
  /// Bytes of protected application state per rank (checkpoint volume).
  [[nodiscard]] std::uint64_t checkpoint_bytes_per_rank() const noexcept {
    return ckpt_bytes_;
  }
  void set_checkpoint_bytes_per_rank(std::uint64_t bytes) noexcept {
    ckpt_bytes_ = bytes;
  }

  // --- builder interface (fluent) ---
  AppBEO& compute(std::string kernel, std::vector<double> params);
  AppBEO& neighbor_exchange(int degree, std::uint64_t bytes);
  AppBEO& allreduce(std::uint64_t bytes);
  AppBEO& barrier();
  /// Coordinated checkpoint; `kernel` names the bound checkpoint cost model
  /// (e.g. "ckpt_l1") and `params` are its arguments. With `async`, only a
  /// staging fraction of the cost lands on the critical path (see
  /// ft::PlanEntry::async).
  AppBEO& checkpoint(ft::Level level, std::string kernel,
                     std::vector<double> params, bool async = false);
  AppBEO& end_timestep();

 private:
  std::string name_;
  std::int64_t ranks_;
  std::vector<Instr> program_;
  int timesteps_ = 0;
  std::uint64_t ckpt_bytes_ = 0;
};

}  // namespace ftbesst::core
