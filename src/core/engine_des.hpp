#pragma once
// Discrete-event BE engine: the same AppBEO/ArchBEO contract as run_bsp,
// executed as a component-based simulation on the PDES kernel (sim/) the
// way BE-SST rides on SST.
//
// One RankComponent per simulated MPI rank walks the program; local compute
// advances that rank's clock via self-events; every synchronizing
// instruction (exchange, allreduce, barrier, checkpoint, timestep boundary)
// routes through a Coordinator component that waits for all ranks, applies
// the phase cost from the ArchBEO models, and releases them — exactly the
// coordinated semantics of the bulk-synchronous fast path. In deterministic
// mode (monte_carlo == false) run_des and run_bsp produce identical
// timelines; the test suite enforces this engine equivalence. In
// Monte-Carlo mode ranks draw compute durations independently (per-rank
// noise), which the coarse path intentionally aggregates away.
//
// With EngineOptions::use_des_network set (and a fat-tree topology), the
// neighbor-exchange instructions are *executed* through the DES network
// substrate (net::DesNetwork) — switch components, per-port serialization,
// emergent contention — instead of the analytic collective model; the
// coordinator releases the ranks when the last halo message is delivered.
//
// With EngineOptions::inject_faults set, the injection engine (src/inject)
// drives in-simulation fault replay: a fault schedule is pre-materialized
// from per-node splittable streams (or taken verbatim from
// EngineOptions::fault_trace), the coordinator self-schedules each fault's
// detection event, resolves recovery through the shared
// inject::RecoveryLedger (downtime, deepest surviving FTI level, restart
// cost, faults that kill recovery), and broadcasts an epoch-tagged rollback
// that rewinds every rank's plan cursor to the restored checkpoint. Events
// from the discarded timeline are dropped by epoch checks. Injection
// composes with symmetry folding (rollback is coordinated, so fold groups
// stay symmetric; struck nodes' ranks are broken out of their orbits as a
// safety invariant) but not with use_des_network — in-flight flow
// deliveries cannot be rolled back, so that combination throws
// std::invalid_argument.

#include "core/engine_bsp.hpp"

namespace ftbesst::core {

[[nodiscard]] RunResult run_des(const AppBEO& app, const ArchBEO& arch,
                                const EngineOptions& options = {});

}  // namespace ftbesst::core
