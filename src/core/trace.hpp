#pragma once
// CSV export for simulation results — the figure-data artifacts behind the
// benches (per-timestep cumulative traces with checkpoint markers, ensemble
// distributions). Plot-tool-agnostic plain CSV.

#include <iosfwd>

#include "core/engine_bsp.hpp"
#include "core/montecarlo.hpp"

namespace ftbesst::core {

/// One row per timestep: `timestep,cumulative_seconds,checkpoint_after`
/// (checkpoint_after is 1 when a checkpoint instance completed right after
/// that timestep — the black dots of Figs. 7-8).
void write_run_csv(std::ostream& os, const RunResult& result);

/// Ensemble distribution: one row per trial total plus a trailing
/// mean-trace block. Columns: `kind,index,value`.
void write_ensemble_csv(std::ostream& os, const EnsembleResult& ensemble);

}  // namespace ftbesst::core
