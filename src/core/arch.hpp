#pragma once
// ArchBEO: "describes the system hardware architecture that is simulated,
// defines system operations, and connects the performance models to the
// instructions listed in the AppBEO."
//
// The FT-aware extension (label "C" in the paper's Fig. 2) adds checkpoint
// cost models, restart cost models, and hardware fault parameters to the
// architecture description.

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ft/checkpoint_cost.hpp"
#include "ft/faults.hpp"
#include "ft/fti.hpp"
#include "inject/sdc.hpp"
#include "model/perf_model.hpp"
#include "net/comm.hpp"
#include "net/topology.hpp"

namespace ftbesst::core {

class ArchBEO {
 public:
  ArchBEO(std::string name, std::shared_ptr<const net::Topology> topology,
          net::CommParams comm_params, int ranks_per_node);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const net::Topology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] const net::CommModel& comm() const noexcept { return comm_; }
  [[nodiscard]] int ranks_per_node() const noexcept { return ranks_per_node_; }
  [[nodiscard]] std::int64_t max_ranks() const noexcept {
    return topology_->num_nodes() * ranks_per_node_;
  }

  /// Node hosting a rank under block assignment.
  [[nodiscard]] net::NodeId node_of_rank(std::int64_t rank) const {
    return rank / ranks_per_node_;
  }

  // --- performance-model bindings ---
  void bind_kernel(const std::string& kernel, model::PerfModelPtr model);
  [[nodiscard]] const model::PerfModel& kernel(const std::string& name) const;
  [[nodiscard]] bool has_kernel(const std::string& name) const noexcept;

  /// Restart cost model per checkpoint level (optional; engines fall back
  /// to zero restart cost when absent). Same parameter convention as the
  /// checkpoint kernels.
  void bind_restart(ft::Level level, model::PerfModelPtr model);
  [[nodiscard]] const model::PerfModel* restart(ft::Level level) const;

  // --- FT-aware hardware parameters ---
  void set_fti(ft::FtiConfig config) noexcept { fti_ = config; }
  [[nodiscard]] const ft::FtiConfig& fti() const noexcept { return fti_; }
  void set_fault_process(std::optional<ft::FaultProcess> fp) {
    faults_ = std::move(fp);
  }
  [[nodiscard]] const std::optional<ft::FaultProcess>& fault_process()
      const noexcept {
    return faults_;
  }
  /// Silent-data-corruption (soft error) process, injected alongside the
  /// fail-stop fault process by the DES injection engine. Optional: absent
  /// means no SDC faults.
  void set_sdc_process(std::optional<inject::SdcProcess> sp) {
    sdc_ = std::move(sp);
  }
  [[nodiscard]] const std::optional<inject::SdcProcess>& sdc_process()
      const noexcept {
    return sdc_;
  }

  /// FNV-1a digest of the architecture configuration a rank's timing is
  /// parameterized by: name, ranks-per-node, comm parameters, FTI layout,
  /// and the set of bound kernel/restart model names. The config axis of
  /// symmetry folding (sim::FoldSignature::config_digest). Model *names*
  /// are digested, not fitted coefficients: two ArchBEOs binding different
  /// models under the same name on the same machine description are not
  /// distinguished — callers folding across architectures must compare
  /// whole ArchBEO instances.
  [[nodiscard]] std::uint64_t fold_config_digest() const noexcept;

 private:
  std::string name_;
  std::shared_ptr<const net::Topology> topology_;
  net::CommModel comm_;
  int ranks_per_node_;
  std::map<std::string, model::PerfModelPtr> kernels_;
  std::map<ft::Level, model::PerfModelPtr> restart_;
  ft::FtiConfig fti_;
  std::optional<ft::FaultProcess> faults_;
  std::optional<inject::SdcProcess> sdc_;
};

}  // namespace ftbesst::core
