#include "core/arch.hpp"

#include <stdexcept>

#include "sim/fold.hpp"

namespace ftbesst::core {

namespace {
// The CommModel member is constructed from the topology in the initializer
// list, i.e. before the constructor body can reject a null pointer — so the
// null check has to happen here, ahead of the dereference.
const net::Topology& require_topology(
    const std::shared_ptr<const net::Topology>& t) {
  if (!t) throw std::invalid_argument("ArchBEO needs a topology");
  return *t;
}
}  // namespace

ArchBEO::ArchBEO(std::string name,
                 std::shared_ptr<const net::Topology> topology,
                 net::CommParams comm_params, int ranks_per_node)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      comm_(require_topology(topology_), comm_params),
      ranks_per_node_(ranks_per_node) {
  if (ranks_per_node_ < 1)
    throw std::invalid_argument("ranks_per_node must be >= 1");
}

void ArchBEO::bind_kernel(const std::string& kernel,
                          model::PerfModelPtr model) {
  if (!model) throw std::invalid_argument("null model for " + kernel);
  kernels_[kernel] = std::move(model);
}

const model::PerfModel& ArchBEO::kernel(const std::string& name) const {
  const auto it = kernels_.find(name);
  if (it == kernels_.end())
    throw std::out_of_range("no model bound for kernel '" + name + "' on " +
                            name_);
  return *it->second;
}

bool ArchBEO::has_kernel(const std::string& name) const noexcept {
  return kernels_.count(name) > 0;
}

void ArchBEO::bind_restart(ft::Level level, model::PerfModelPtr model) {
  if (!model) throw std::invalid_argument("null restart model");
  restart_[level] = std::move(model);
}

const model::PerfModel* ArchBEO::restart(ft::Level level) const {
  const auto it = restart_.find(level);
  return it == restart_.end() ? nullptr : it->second.get();
}

std::uint64_t ArchBEO::fold_config_digest() const noexcept {
  std::uint64_t h = sim::kFoldDigestSeed;
  h = sim::fold_digest_string(h, name_);
  h = sim::fold_digest_u64(h, static_cast<std::uint64_t>(ranks_per_node_));
  h = sim::fold_digest_u64(h, static_cast<std::uint64_t>(topology_->num_nodes()));
  const net::CommParams& p = comm_.params();
  h = sim::fold_digest_f64(h, p.sw_latency);
  h = sim::fold_digest_f64(h, p.injection_latency);
  h = sim::fold_digest_f64(h, p.bandwidth);
  h = sim::fold_digest_f64(h, p.congestion_gamma);
  h = sim::fold_digest_u64(h, static_cast<std::uint64_t>(fti_.group_size));
  h = sim::fold_digest_u64(h, static_cast<std::uint64_t>(fti_.node_size));
  h = sim::fold_digest_u64(h, static_cast<std::uint64_t>(fti_.l2_partners));
  h = sim::fold_digest_u64(h, kernels_.size());
  for (const auto& [kernel_name, model] : kernels_)
    h = sim::fold_digest_string(h, kernel_name);
  h = sim::fold_digest_u64(h, restart_.size());
  for (const auto& [level, model] : restart_)
    h = sim::fold_digest_u64(h, static_cast<std::uint64_t>(level));
  return h;
}

}  // namespace ftbesst::core
