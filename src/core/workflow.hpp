#pragma once
// The two-phase BE-SST workflow (Fig. 2), FT-aware:
//
//   Phase 1 — Model Development: fit a performance model per instrumented
//   kernel from its calibration dataset (symbolic regression by default,
//   matching the paper's case study), validate each (MAPE, Table III), and
//   bind the results into an ArchBEO.
//
//   Phase 2 — HW/SW Co-Design: run full-system simulations over the design
//   space (scenarios x parameters), compare FT levels, and produce the
//   overhead grids used for DSE (Fig. 9).

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/arch.hpp"
#include "core/beo.hpp"
#include "core/montecarlo.hpp"
#include "model/dataset.hpp"
#include "model/fitting.hpp"

namespace ftbesst::core {

/// Result of developing one kernel's model.
struct KernelModelReport {
  std::string kernel;
  model::FitReport fit;
};

/// Phase-1 output: per-kernel models (deterministic + Monte-Carlo) plus
/// the validation reports.
struct ModelSuite {
  std::map<std::string, model::FittedKernel> kernels;
  std::vector<KernelModelReport> reports;

  /// Bind every fitted kernel into `arch` (noisy variants, so Monte-Carlo
  /// simulation reproduces calibration variance).
  void bind_into(ArchBEO& arch) const;
};

/// Fit models for every (kernel name -> calibration dataset) pair.
[[nodiscard]] ModelSuite develop_models(
    const std::map<std::string, model::Dataset>& calibration,
    const model::FitOptions& options = {});

/// A named fault-tolerance scenario of the co-design phase: which
/// checkpoint levels run, at what period (e.g. "No FT", "L1", "L1 & L2").
struct Scenario {
  std::string name;
  std::vector<ft::PlanEntry> plan;
};

/// Parse a textual checkpoint plan: comma-separated `L<level>:<period>`
/// entries, e.g. "L1:40,L2:40"; a trailing `a` marks an asynchronous
/// (staged) checkpoint ("L4:100a"). Empty text is the valid "No FT" plan.
/// This is the single plan grammar shared by the CLI and the prediction
/// service, so malformed client input fails here with a clean
/// std::invalid_argument naming the offending entry — never deeper in the
/// engine. Rejected: bad syntax, levels outside 1-4, periods < 1, and
/// duplicate levels.
[[nodiscard]] std::vector<ft::PlanEntry> parse_plan(const std::string& text);

/// Validate an already-built plan with the same rules as parse_plan
/// (duplicate levels, period < 1, level range). Throws
/// std::invalid_argument with the reason.
void validate_plan(const std::vector<ft::PlanEntry>& plan);

/// Canonical textual spelling of a plan — the inverse of parse_plan
/// ("L1:40,L4:100a"; empty string for the No-FT plan). Round-trips:
/// parse_plan(format_plan(p)) == p for any valid plan.
[[nodiscard]] std::string format_plan(const std::vector<ft::PlanEntry>& plan);

/// One cell of the co-design sweep.
struct DsePoint {
  std::string scenario;
  std::vector<double> params;  ///< sweep coordinates (e.g. {epr, ranks})
  EnsembleResult ensemble;
};

/// Full-system DSE sweep: for every scenario and parameter point, build an
/// application via `make_app` and run a Monte-Carlo ensemble. Points run as
/// tasks on the shared util::TaskPool and their ensembles fan trials onto
/// the same pool (threads: 0 = pool, 1 = fully serial on the calling
/// thread). Per-point seeds are pre-derived, so results are bit-identical
/// for any threads value. `make_app` and the bound models must be safe to
/// invoke concurrently (pure functions of their arguments, as all bundled
/// builders are).
[[nodiscard]] std::vector<DsePoint> run_dse(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::vector<double>>& parameter_points,
    const std::function<AppBEO(const Scenario&, const std::vector<double>&)>&
        make_app,
    const ArchBEO& arch, const EngineOptions& options, std::size_t trials,
    unsigned threads = 0);

/// One requested cell of a (possibly partial) DSE evaluation.
struct DseCell {
  /// Scenario-major grid index: scenario_index * parameter_points.size() +
  /// point_index — the submission order of the exhaustive run_dse sweep.
  std::size_t flat = 0;
  /// Monte-Carlo trials for this cell; 0 means the sweep-wide default.
  /// Per-trial seeds are split from the cell seed by trial index, so a
  /// t-trial evaluation is a bit-exact prefix of the T-trial one.
  std::size_t trials = 0;
};

/// Evaluate an arbitrary subset of the {scenario x point} grid. Cell
/// `flat` receives the exact per-point seed the exhaustive run_dse sweep
/// would give it (options.seed + 0x9e37 * (flat + 1)), so a cell priced
/// here at full trials is bit-identical to the matching entry of
/// run_dse's output — guided search results are verifiable against the
/// exhaustive grid down to the last bit. Results are returned in `cells`
/// order; threads semantics match run_dse (0 = shared pool, 1 = serial).
[[nodiscard]] std::vector<DsePoint> run_dse_cells(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::vector<double>>& parameter_points,
    const std::vector<DseCell>& cells,
    const std::function<AppBEO(const Scenario&, const std::vector<double>&)>&
        make_app,
    const ArchBEO& arch, const EngineOptions& options,
    std::size_t default_trials, unsigned threads = 0);

/// Trial-unit ledger for budget-aware search: one unit = one Monte-Carlo
/// trial of one cell, so a full-trials evaluation costs `trials` units and
/// the exhaustive sweep costs cells * trials. Plain accounting — callers
/// decide what to do when the budget is exhausted.
class DseBudget {
 public:
  explicit DseBudget(double total_units) : total_(total_units) {}
  /// Budget for evaluating `fraction` of an exhaustive cells x trials sweep.
  [[nodiscard]] static DseBudget fraction_of(std::size_t cells,
                                             std::size_t trials,
                                             double fraction) {
    return DseBudget(fraction * static_cast<double>(cells) *
                     static_cast<double>(trials));
  }
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double used() const noexcept { return used_; }
  [[nodiscard]] double remaining() const noexcept {
    return total_ > used_ ? total_ - used_ : 0.0;
  }
  [[nodiscard]] bool can_afford(double units) const noexcept {
    return used_ + units <= total_;
  }
  void charge(double units) noexcept { used_ += units; }

 private:
  double total_ = 0.0;
  double used_ = 0.0;
};

/// Quantize sweep coordinates for use as lookup keys: each value is
/// rounded to 12 significant decimal digits (round-tripped through %.12g).
/// Coordinates that differ only below that precision — e.g. a value
/// recomputed through text formatting — map to the same key, while any
/// difference a human would write down survives.
[[nodiscard]] std::vector<double> quantize_params(
    const std::vector<double>& params);

/// Overhead (%) of each DSE point relative to the point with scenario
/// `baseline_scenario` and parameters `baseline_params` (Fig. 9 reports
/// every cell as a percentage of the cheapest configuration). Keys are
/// quantized with quantize_params, so lookups with coordinates that went
/// through text formatting (or any computation agreeing to 12 significant
/// digits) find their cell; query with grid[s].find(quantize_params(p)).
[[nodiscard]] std::map<std::string, std::map<std::vector<double>, double>>
overhead_grid(const std::vector<DsePoint>& points,
              const std::string& baseline_scenario,
              const std::vector<double>& baseline_params);

}  // namespace ftbesst::core
