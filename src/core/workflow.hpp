#pragma once
// The two-phase BE-SST workflow (Fig. 2), FT-aware:
//
//   Phase 1 — Model Development: fit a performance model per instrumented
//   kernel from its calibration dataset (symbolic regression by default,
//   matching the paper's case study), validate each (MAPE, Table III), and
//   bind the results into an ArchBEO.
//
//   Phase 2 — HW/SW Co-Design: run full-system simulations over the design
//   space (scenarios x parameters), compare FT levels, and produce the
//   overhead grids used for DSE (Fig. 9).

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/arch.hpp"
#include "core/beo.hpp"
#include "core/montecarlo.hpp"
#include "model/dataset.hpp"
#include "model/fitting.hpp"

namespace ftbesst::core {

/// Result of developing one kernel's model.
struct KernelModelReport {
  std::string kernel;
  model::FitReport fit;
};

/// Phase-1 output: per-kernel models (deterministic + Monte-Carlo) plus
/// the validation reports.
struct ModelSuite {
  std::map<std::string, model::FittedKernel> kernels;
  std::vector<KernelModelReport> reports;

  /// Bind every fitted kernel into `arch` (noisy variants, so Monte-Carlo
  /// simulation reproduces calibration variance).
  void bind_into(ArchBEO& arch) const;
};

/// Fit models for every (kernel name -> calibration dataset) pair.
[[nodiscard]] ModelSuite develop_models(
    const std::map<std::string, model::Dataset>& calibration,
    const model::FitOptions& options = {});

/// A named fault-tolerance scenario of the co-design phase: which
/// checkpoint levels run, at what period (e.g. "No FT", "L1", "L1 & L2").
struct Scenario {
  std::string name;
  std::vector<ft::PlanEntry> plan;
};

/// Parse a textual checkpoint plan: comma-separated `L<level>:<period>`
/// entries, e.g. "L1:40,L2:40"; a trailing `a` marks an asynchronous
/// (staged) checkpoint ("L4:100a"). Empty text is the valid "No FT" plan.
/// This is the single plan grammar shared by the CLI and the prediction
/// service, so malformed client input fails here with a clean
/// std::invalid_argument naming the offending entry — never deeper in the
/// engine. Rejected: bad syntax, levels outside 1-4, periods < 1, and
/// duplicate levels.
[[nodiscard]] std::vector<ft::PlanEntry> parse_plan(const std::string& text);

/// Validate an already-built plan with the same rules as parse_plan
/// (duplicate levels, period < 1, level range). Throws
/// std::invalid_argument with the reason.
void validate_plan(const std::vector<ft::PlanEntry>& plan);

/// One cell of the co-design sweep.
struct DsePoint {
  std::string scenario;
  std::vector<double> params;  ///< sweep coordinates (e.g. {epr, ranks})
  EnsembleResult ensemble;
};

/// Full-system DSE sweep: for every scenario and parameter point, build an
/// application via `make_app` and run a Monte-Carlo ensemble. Points run as
/// tasks on the shared util::TaskPool and their ensembles fan trials onto
/// the same pool (threads: 0 = pool, 1 = fully serial on the calling
/// thread). Per-point seeds are pre-derived, so results are bit-identical
/// for any threads value. `make_app` and the bound models must be safe to
/// invoke concurrently (pure functions of their arguments, as all bundled
/// builders are).
[[nodiscard]] std::vector<DsePoint> run_dse(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::vector<double>>& parameter_points,
    const std::function<AppBEO(const Scenario&, const std::vector<double>&)>&
        make_app,
    const ArchBEO& arch, const EngineOptions& options, std::size_t trials,
    unsigned threads = 0);

/// Overhead (%) of each DSE point relative to the point with scenario
/// `baseline_scenario` and parameters `baseline_params` (Fig. 9 reports
/// every cell as a percentage of the cheapest configuration).
[[nodiscard]] std::map<std::string, std::map<std::vector<double>, double>>
overhead_grid(const std::vector<DsePoint>& points,
              const std::string& baseline_scenario,
              const std::vector<double>& baseline_params);

}  // namespace ftbesst::core
