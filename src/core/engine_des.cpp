#include "core/engine_des.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "net/des_network.hpp"
#include "net/des_torus.hpp"
#include "obs/obs.hpp"
#include "sim/fold.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace ftbesst::core {

namespace {

using sim::Component;
using sim::Payload;
using sim::PortId;
using sim::SimTime;

constexpr PortId kSelfWake = 0;
constexpr PortId kArrive = 1;
constexpr PortId kRelease = 2;
constexpr PortId kNetDone = 3;

bool is_collective(InstrKind kind) { return kind != InstrKind::kCompute; }

/// Uniform facade over the executed network substrates (fat-tree / torus).
class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;
  virtual void send(net::NodeId src, net::NodeId dst, std::uint64_t bytes,
                    SimTime time) = 0;
  virtual void on_delivery(net::NodeId node,
                           net::DeliveryHandler handler) = 0;
  [[nodiscard]] virtual net::NodeId num_nodes() const = 0;
};

class FatTreeBackend final : public NetworkBackend {
 public:
  FatTreeBackend(sim::Simulation& sim, const net::TwoStageFatTree& topo,
                 net::CommParams params)
      : net_(sim, topo, params) {}
  void send(net::NodeId src, net::NodeId dst, std::uint64_t bytes,
            SimTime time) override {
    net_.send(src, dst, bytes, time);
  }
  void on_delivery(net::NodeId node, net::DeliveryHandler handler) override {
    net_.on_delivery(node, std::move(handler));
  }
  [[nodiscard]] net::NodeId num_nodes() const override {
    return net_.topology().num_nodes();
  }

 private:
  net::DesNetwork net_;
};

class TorusBackend final : public NetworkBackend {
 public:
  TorusBackend(sim::Simulation& sim, const net::Torus& topo,
               net::CommParams params)
      : net_(sim, topo, params) {}
  void send(net::NodeId src, net::NodeId dst, std::uint64_t bytes,
            SimTime time) override {
    net_.send(src, dst, bytes, time);
  }
  void on_delivery(net::NodeId node, net::DeliveryHandler handler) override {
    net_.on_delivery(node, std::move(handler));
  }
  [[nodiscard]] net::NodeId num_nodes() const override {
    return net_.topology().num_nodes();
  }

 private:
  net::DesTorus net_;
};

/// Neighbour ranks for an exchange of the given degree: the 3-D cubic
/// decomposition's +-x/+-y/+-z neighbours (periodic) when the rank count is
/// a perfect cube and degree is 6; a ring otherwise.
std::vector<std::int64_t> exchange_neighbors(std::int64_t rank,
                                             std::int64_t ranks,
                                             int degree) {
  std::vector<std::int64_t> out;
  if (degree <= 0 || ranks < 2) return out;
  const auto side = static_cast<std::int64_t>(
      std::llround(std::cbrt(static_cast<double>(ranks))));
  if (degree == 6 && side * side * side == ranks && side > 1) {
    const std::int64_t x = rank % side;
    const std::int64_t y = (rank / side) % side;
    const std::int64_t z = rank / (side * side);
    auto at = [side](std::int64_t i, std::int64_t j, std::int64_t k) {
      return ((k + side) % side) * side * side + ((j + side) % side) * side +
             ((i + side) % side);
    };
    out = {at(x - 1, y, z), at(x + 1, y, z), at(x, y - 1, z),
           at(x, y + 1, z), at(x, y, z - 1), at(x, y, z + 1)};
    return out;
  }
  for (int d = 1; d <= (degree + 1) / 2 && out.size() <
                                               static_cast<std::size_t>(degree);
       ++d) {
    out.push_back((rank + d) % ranks);
    if (out.size() < static_cast<std::size_t>(degree))
      out.push_back((rank - d + ranks) % ranks);
  }
  return out;
}

/// Executes the SPMD program for one rank.
class RankComponent final : public Component {
 public:
  RankComponent(std::int64_t rank, const AppBEO& app, const ArchBEO& arch,
                bool monte_carlo, util::Rng rng)
      : Component("rank" + std::to_string(rank)),
        app_(&app),
        arch_(&arch),
        monte_carlo_(monte_carlo),
        rng_(rng) {}

  void set_coordinator(sim::ComponentId coord) { coord_ = coord; }

  void init() override { advance(); }

  void handle_event(PortId port, std::unique_ptr<Payload>) override {
    // Both a self-wake (compute done) and a coordinator release mean: move
    // to the next instruction.
    (void)port;
    ++pc_;
    advance();
  }

  std::uint64_t instructions_executed = 0;

 private:
  void advance() {
    const auto& program = app_->program();
    while (pc_ < program.size()) {
      const Instr& instr = program[pc_];
      ++instructions_executed;
      if (is_collective(instr.kind)) {
        // Tell the coordinator we reached this sync point; it releases us.
        schedule_to(coord_, kArrive, 0);
        return;
      }
      const model::PerfModel& m = arch_->kernel(instr.kernel);
      const double seconds = monte_carlo_ ? m.sample(instr.params, rng_)
                                          : m.predict(instr.params);
      schedule_self(sim::from_seconds(seconds), nullptr, kSelfWake);
      return;
    }
  }

  const AppBEO* app_;
  const ArchBEO* arch_;
  bool monte_carlo_;
  util::Rng rng_;
  sim::ComponentId coord_ = sim::kNoComponent;
  std::size_t pc_ = 0;
};

/// Coordinates every synchronizing instruction and records the run trace.
class Coordinator final : public Component {
 public:
  Coordinator(const AppBEO& app, const ArchBEO& arch, bool monte_carlo,
              util::Rng rng)
      : Component("coordinator"),
        app_(&app),
        arch_(&arch),
        monte_carlo_(monte_carlo),
        rng_(rng) {
    result_.timestep_end_times.assign(
        static_cast<std::size_t>(app.timesteps()), 0.0);
  }

  void set_ranks(std::vector<sim::ComponentId> ranks) {
    ranks_ = std::move(ranks);
  }
  void set_network(NetworkBackend* network, std::int64_t ranks_per_node) {
    network_ = network;
    net_ranks_per_node_ = ranks_per_node;
  }

  void init() override {
    // Position the rendezvous pointer on the first collective instruction.
    const auto& program = app_->program();
    while (sync_pc_ < program.size() && !is_collective(program[sync_pc_].kind))
      ++sync_pc_;
  }

  void handle_event(PortId port, std::unique_ptr<Payload>) override {
    if (port == kNetDone) {
      if (--pending_deliveries_ == 0) finish_collective(0);
      return;
    }
    if (port != kArrive) return;
    if (++arrived_ < ranks_.size()) return;
    arrived_ = 0;

    // All ranks reached the collective at program counter `sync_pc_`.
    const Instr& instr = app_->program()[sync_pc_];
    switch (instr.kind) {
      case InstrKind::kNeighborExchange:
        if (network_ != nullptr && instr.degree > 0 && app_->ranks() > 1) {
          start_network_exchange(instr);
          return;  // finish_collective fires on the last delivery
        }
        finish_collective(arch_->comm().neighbor_exchange_time(
            app_->ranks(), instr.degree, instr.bytes));
        return;
      case InstrKind::kAllReduce:
        finish_collective(
            arch_->comm().allreduce_time(app_->ranks(), instr.bytes));
        return;
      case InstrKind::kBarrier:
        finish_collective(arch_->comm().barrier_time(app_->ranks()));
        return;
      case InstrKind::kCheckpoint: {
        const model::PerfModel& m = arch_->kernel(instr.kernel);
        finish_collective(monte_carlo_ ? m.sample(instr.params, rng_)
                                       : m.predict(instr.params));
        return;
      }
      case InstrKind::kTimestepEnd:
      case InstrKind::kCompute:
        finish_collective(0.0);
        return;
    }
  }

  RunResult result_;

 private:
  /// Neighbour lists for every rank at this degree, computed once per
  /// (ranks, degree) and reused — exchanges repeat every timestep, and the
  /// cbrt/modulo walk per rank per timestep showed up in sweep profiles.
  const std::vector<std::vector<std::int64_t>>& neighbors_for(int degree) {
    auto it = neighbor_cache_.find(degree);
    if (it == neighbor_cache_.end()) {
      std::vector<std::vector<std::int64_t>> all(
          static_cast<std::size_t>(app_->ranks()));
      for (std::int64_t rank = 0; rank < app_->ranks(); ++rank)
        all[static_cast<std::size_t>(rank)] =
            exchange_neighbors(rank, app_->ranks(), degree);
      it = neighbor_cache_.emplace(degree, std::move(all)).first;
    }
    return it->second;
  }

  void start_network_exchange(const Instr& instr) {
    pending_deliveries_ = 0;
    const SimTime start = now();
    const auto& neighbors = neighbors_for(instr.degree);
    for (std::int64_t rank = 0; rank < app_->ranks(); ++rank) {
      const net::NodeId src_node =
          static_cast<net::NodeId>(rank / net_ranks_per_node_);
      for (std::int64_t peer : neighbors[static_cast<std::size_t>(rank)]) {
        const net::NodeId dst_node =
            static_cast<net::NodeId>(peer / net_ranks_per_node_);
        network_->send(src_node, dst_node, instr.bytes, start);
        ++pending_deliveries_;
      }
    }
    if (pending_deliveries_ == 0) finish_collective(0.0);
  }

  /// Complete the collective `extra_seconds` from now: record trace
  /// entries, advance the rendezvous pointer, release all ranks.
  void finish_collective(double extra_seconds) {
    const Instr& instr = app_->program()[sync_pc_];
    const SimTime duration = sim::from_seconds(extra_seconds);
    const double end_seconds = sim::to_seconds(now() + duration);

    if (instr.kind == InstrKind::kTimestepEnd) {
      if (ts_done_ < app_->timesteps())
        result_.timestep_end_times[static_cast<std::size_t>(ts_done_)] =
            end_seconds;
      ++ts_done_;
    } else if (instr.kind == InstrKind::kCheckpoint) {
      if (result_.checkpoint_timesteps.empty() ||
          result_.checkpoint_timesteps.back() != ts_done_)
        result_.checkpoint_timesteps.push_back(ts_done_);
    }
    result_.total_seconds = end_seconds;
    ++sync_pc_;
    // Skip forward past local instructions to the next collective; ranks do
    // that walk themselves, we just track where the next rendezvous is.
    const auto& program = app_->program();
    while (sync_pc_ < program.size() && !is_collective(program[sync_pc_].kind))
      ++sync_pc_;
    for (sim::ComponentId r : ranks_) schedule_to(r, kRelease, duration);
  }

  const AppBEO* app_;
  const ArchBEO* arch_;
  bool monte_carlo_;
  util::Rng rng_;
  std::vector<sim::ComponentId> ranks_;
  /// degree -> per-rank neighbour lists (see neighbors_for).
  std::map<int, std::vector<std::vector<std::int64_t>>> neighbor_cache_;
  NetworkBackend* network_ = nullptr;
  std::int64_t net_ranks_per_node_ = 1;
  std::size_t arrived_ = 0;
  std::size_t pending_deliveries_ = 0;
  std::size_t sync_pc_ = 0;
  int ts_done_ = 0;
};

}  // namespace

RunResult run_des(const AppBEO& app, const ArchBEO& arch,
                  const EngineOptions& options) {
  FTBESST_OBS_SPAN("core.run_des");
  if (options.inject_faults)
    throw std::invalid_argument(
        "fault injection is handled by the coarse path (run_bsp)");
  if (app.ranks() > arch.max_ranks())
    throw std::invalid_argument(
        "application ranks exceed architecture capacity");

  sim::Simulation simulation;
  util::Rng root(options.seed);

  auto* coord = simulation.add_component<Coordinator>(
      app, arch, options.monte_carlo, root.split(0xc0));

  std::unique_ptr<NetworkBackend> network;
  if (options.use_des_network) {
    if (const auto* fat_tree =
            dynamic_cast<const net::TwoStageFatTree*>(&arch.topology())) {
      network = std::make_unique<FatTreeBackend>(simulation, *fat_tree,
                                                 arch.comm().params());
    } else if (const auto* torus =
                   dynamic_cast<const net::Torus*>(&arch.topology())) {
      network = std::make_unique<TorusBackend>(simulation, *torus,
                                               arch.comm().params());
    } else {
      throw std::invalid_argument(
          "use_des_network requires a TwoStageFatTree or Torus topology");
    }
    // Ranks pack by the FTI run configuration when it divides evenly
    // (matching the coarse engine's node universe), else physically.
    const std::int64_t rpn =
        (arch.fti().node_size > 0 &&
         app.ranks() % arch.fti().node_size == 0)
            ? arch.fti().node_size
            : arch.ranks_per_node();
    const std::int64_t nodes_needed = (app.ranks() + rpn - 1) / rpn;
    if (nodes_needed > network->num_nodes())
      throw std::invalid_argument("too many ranks for the DES network");
    coord->set_network(network.get(), rpn);
    // Every delivery notifies the coordinator at its arrival time.
    for (net::NodeId n = 0; n < nodes_needed; ++n)
      network->on_delivery(
          n, [&simulation, coord](const net::FlowMsg&, SimTime arrival) {
            simulation.schedule(sim::kNoComponent, coord->id(), kNetDone,
                                arrival, nullptr);
          });
  }

  // Symmetry folding: in a deterministic, analytically-routed run every
  // rank executes the same SPMD plan against the same architecture config
  // from an indistinguishable position, so one representative per
  // equivalence class stands for the whole class and the coordinator's
  // rendezvous shrinks from N arrivals to one per class — predictions are
  // bitwise identical, only the event count drops. Monte-Carlo mode gives
  // every rank its own RNG stream and the executed network substrate gives
  // every rank its own physical position; both break the symmetry, so the
  // specs are marked non-foldable there (each rank stays a singleton
  // class). divergent_ranks breaks individual ranks out instead of
  // disabling the whole class (clone-on-divergence).
  const bool fold = options.fold_symmetry && !options.monte_carlo &&
                    !options.use_des_network;
  sim::FoldPlan plan;
  {
    std::vector<sim::FoldSpec> specs(static_cast<std::size_t>(app.ranks()));
    const std::uint64_t behavior = app.plan_digest();
    const std::uint64_t config = arch.fold_config_digest();
    for (auto& spec : specs) {
      spec.signature.type = "rank";
      spec.signature.behavior_digest = behavior;
      spec.signature.config_digest = config;
      spec.signature.foldable = fold;
    }
    plan = sim::plan_folds(specs);
    for (std::int64_t r : options.divergent_ranks)
      if (r >= 0 && r < app.ranks())
        plan.break_out(static_cast<std::size_t>(r));
  }

  std::vector<RankComponent*> ranks;
  std::vector<sim::ComponentId> rank_ids;
  ranks.reserve(plan.groups().size());
  for (const sim::FoldGroup& group : plan.groups()) {
    const auto r = static_cast<std::int64_t>(group.representative);
    auto* rc = simulation.add_component<RankComponent>(
        r, app, arch, options.monte_carlo,
        root.split(static_cast<std::uint64_t>(r) + 1));
    rc->set_coordinator(coord->id());
    rc->set_multiplicity(group.multiplicity());
    ranks.push_back(rc);
    rank_ids.push_back(rc->id());
  }
  coord->set_ranks(std::move(rank_ids));

  const sim::SimStats stats = simulation.run();
  if (obs::enabled()) {
    static const obs::Counter runs = obs::counter("des.runs");
    static const obs::Counter events = obs::counter("des.events");
    static const obs::Counter folded = obs::counter("des.folded_ranks");
    static const obs::Gauge heap_hw = obs::gauge("des.heap_high_water");
    runs.add();
    events.add(stats.events_processed);
    folded.add(plan.folded_away());
    heap_hw.max(static_cast<double>(stats.heap_high_water));
  }

  RunResult result = std::move(coord->result_);
  for (const RankComponent* rc : ranks)
    result.instructions_executed +=
        rc->instructions_executed * rc->multiplicity();
  result.sim_events = stats.events_processed;
  return result;
}

}  // namespace ftbesst::core
