#include "core/engine_des.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "inject/ledger.hpp"
#include "inject/obs_hooks.hpp"
#include "inject/schedule.hpp"
#include "net/des_network.hpp"
#include "net/des_torus.hpp"
#include "obs/obs.hpp"
#include "sim/fold.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace ftbesst::core {

namespace {

using sim::Component;
using sim::Payload;
using sim::PortId;
using sim::SimTime;

constexpr PortId kSelfWake = 0;
constexpr PortId kArrive = 1;
constexpr PortId kRelease = 2;
constexpr PortId kNetDone = 3;
constexpr PortId kRollback = 4;  ///< coordinator -> rank: rewind plan cursor
constexpr PortId kFault = 5;     ///< coordinator self: fault detection fires

/// Rollback command broadcast to every rank when a recovery resolves: rewind
/// the plan cursor to `pc` and adopt epoch `epoch`. Events tagged with an
/// older epoch belong to the discarded timeline and are dropped on receipt.
struct RollbackCmd {
  std::uint64_t epoch = 0;
  std::size_t pc = 0;
};

bool is_collective(InstrKind kind) { return kind != InstrKind::kCompute; }

/// Uniform facade over the executed network substrates (fat-tree / torus).
class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;
  virtual void send(net::NodeId src, net::NodeId dst, std::uint64_t bytes,
                    SimTime time) = 0;
  virtual void on_delivery(net::NodeId node,
                           net::DeliveryHandler handler) = 0;
  [[nodiscard]] virtual net::NodeId num_nodes() const = 0;
};

class FatTreeBackend final : public NetworkBackend {
 public:
  FatTreeBackend(sim::Simulation& sim, const net::TwoStageFatTree& topo,
                 net::CommParams params)
      : net_(sim, topo, params) {}
  void send(net::NodeId src, net::NodeId dst, std::uint64_t bytes,
            SimTime time) override {
    net_.send(src, dst, bytes, time);
  }
  void on_delivery(net::NodeId node, net::DeliveryHandler handler) override {
    net_.on_delivery(node, std::move(handler));
  }
  [[nodiscard]] net::NodeId num_nodes() const override {
    return net_.topology().num_nodes();
  }

 private:
  net::DesNetwork net_;
};

class TorusBackend final : public NetworkBackend {
 public:
  TorusBackend(sim::Simulation& sim, const net::Torus& topo,
               net::CommParams params)
      : net_(sim, topo, params) {}
  void send(net::NodeId src, net::NodeId dst, std::uint64_t bytes,
            SimTime time) override {
    net_.send(src, dst, bytes, time);
  }
  void on_delivery(net::NodeId node, net::DeliveryHandler handler) override {
    net_.on_delivery(node, std::move(handler));
  }
  [[nodiscard]] net::NodeId num_nodes() const override {
    return net_.topology().num_nodes();
  }

 private:
  net::DesTorus net_;
};

/// Neighbour ranks for an exchange of the given degree: the 3-D cubic
/// decomposition's +-x/+-y/+-z neighbours (periodic) when the rank count is
/// a perfect cube and degree is 6; a ring otherwise.
std::vector<std::int64_t> exchange_neighbors(std::int64_t rank,
                                             std::int64_t ranks,
                                             int degree) {
  std::vector<std::int64_t> out;
  if (degree <= 0 || ranks < 2) return out;
  const auto side = static_cast<std::int64_t>(
      std::llround(std::cbrt(static_cast<double>(ranks))));
  if (degree == 6 && side * side * side == ranks && side > 1) {
    const std::int64_t x = rank % side;
    const std::int64_t y = (rank / side) % side;
    const std::int64_t z = rank / (side * side);
    auto at = [side](std::int64_t i, std::int64_t j, std::int64_t k) {
      return ((k + side) % side) * side * side + ((j + side) % side) * side +
             ((i + side) % side);
    };
    out = {at(x - 1, y, z), at(x + 1, y, z), at(x, y - 1, z),
           at(x, y + 1, z), at(x, y, z - 1), at(x, y, z + 1)};
    return out;
  }
  for (int d = 1; d <= (degree + 1) / 2 && out.size() <
                                               static_cast<std::size_t>(degree);
       ++d) {
    out.push_back((rank + d) % ranks);
    if (out.size() < static_cast<std::size_t>(degree))
      out.push_back((rank - d + ranks) % ranks);
  }
  return out;
}

/// Executes the SPMD program for one rank.
class RankComponent final : public Component {
 public:
  RankComponent(std::int64_t rank, const AppBEO& app, const ArchBEO& arch,
                bool monte_carlo, util::Rng rng)
      : Component("rank" + std::to_string(rank)),
        app_(&app),
        arch_(&arch),
        monte_carlo_(monte_carlo),
        rng_(rng) {}

  void set_coordinator(sim::ComponentId coord) { coord_ = coord; }
  /// Injected runs tag every event with the current rollback epoch so that
  /// events from a discarded timeline are recognized and dropped.
  void enable_injection() { injected_ = true; }

  void init() override { advance(); }

  void handle_event(PortId port, std::unique_ptr<Payload> payload) override {
    if (injected_) {
      if (port == kRollback) {
        const auto* cmd = sim::unbox<RollbackCmd>(payload.get());
        epoch_ = cmd->epoch;
        pc_ = cmd->pc;
        advance();
        return;
      }
      // A self-wake or release scheduled before the rollback carries the
      // old epoch: it completes work on the discarded timeline. Drop it.
      const auto* epoch = sim::unbox<std::uint64_t>(payload.get());
      if (epoch != nullptr && *epoch != epoch_) return;
    }
    // Both a self-wake (compute done) and a coordinator release mean: move
    // to the next instruction.
    ++pc_;
    advance();
  }

  std::uint64_t instructions_executed = 0;

 private:
  void advance() {
    const auto& program = app_->program();
    while (pc_ < program.size()) {
      const Instr& instr = program[pc_];
      ++instructions_executed;
      if (is_collective(instr.kind)) {
        // Tell the coordinator we reached this sync point; it releases us.
        schedule_to(coord_, kArrive, 0,
                    injected_ ? sim::box<std::uint64_t>(epoch_) : nullptr);
        return;
      }
      const model::PerfModel& m = arch_->kernel(instr.kernel);
      const double seconds = monte_carlo_ ? m.sample(instr.params, rng_)
                                          : m.predict(instr.params);
      schedule_self(sim::from_seconds(seconds),
                    injected_ ? sim::box<std::uint64_t>(epoch_) : nullptr,
                    kSelfWake);
      return;
    }
  }

  const AppBEO* app_;
  const ArchBEO* arch_;
  bool monte_carlo_;
  util::Rng rng_;
  sim::ComponentId coord_ = sim::kNoComponent;
  std::size_t pc_ = 0;
  bool injected_ = false;
  std::uint64_t epoch_ = 0;
};

/// Coordinates every synchronizing instruction and records the run trace.
class Coordinator final : public Component {
 public:
  Coordinator(const AppBEO& app, const ArchBEO& arch, bool monte_carlo,
              util::Rng rng)
      : Component("coordinator"),
        app_(&app),
        arch_(&arch),
        monte_carlo_(monte_carlo),
        rng_(rng) {
    result_.timestep_end_times.assign(
        static_cast<std::size_t>(app.timesteps()), 0.0);
  }

  void set_ranks(std::vector<sim::ComponentId> ranks) {
    ranks_ = std::move(ranks);
  }
  void set_network(NetworkBackend* network, std::int64_t ranks_per_node) {
    network_ = network;
    net_ranks_per_node_ = ranks_per_node;
  }
  /// Arm fault injection: replay `schedule` (absolute strike times,
  /// time-ordered) with recovery resolved through the checkpoint ledger.
  void set_injection(std::vector<ft::FaultEvent> schedule,
                     double downtime_seconds, double max_sim_seconds) {
    injected_ = true;
    schedule_ = std::move(schedule);
    downtime_ = downtime_seconds;
    max_sim_seconds_ = max_sim_seconds;
  }

  void init() override {
    // Position the rendezvous pointer on the first collective instruction.
    const auto& program = app_->program();
    while (sync_pc_ < program.size() && !is_collective(program[sync_pc_].kind))
      ++sync_pc_;
    if (injected_) schedule_next_fault();
  }

  void handle_event(PortId port, std::unique_ptr<Payload> payload) override {
    if (port == kFault) {
      on_fault();
      return;
    }
    if (port == kNetDone) {
      if (--pending_deliveries_ == 0) finish_collective(0);
      return;
    }
    if (port != kArrive) return;
    if (injected_) {
      // An arrival from the discarded timeline (sent before the rollback
      // rewound its rank) carries the old epoch: drop it.
      const auto* epoch = sim::unbox<std::uint64_t>(payload.get());
      if (epoch != nullptr && *epoch != epoch_) return;
    }
    if (++arrived_ < ranks_.size()) return;
    arrived_ = 0;

    // All ranks reached the collective at program counter `sync_pc_`.
    const Instr& instr = app_->program()[sync_pc_];
    switch (instr.kind) {
      case InstrKind::kNeighborExchange:
        if (network_ != nullptr && instr.degree > 0 && app_->ranks() > 1) {
          start_network_exchange(instr);
          return;  // finish_collective fires on the last delivery
        }
        finish_collective(arch_->comm().neighbor_exchange_time(
            app_->ranks(), instr.degree, instr.bytes));
        return;
      case InstrKind::kAllReduce:
        finish_collective(
            arch_->comm().allreduce_time(app_->ranks(), instr.bytes));
        return;
      case InstrKind::kBarrier:
        finish_collective(arch_->comm().barrier_time(app_->ranks()));
        return;
      case InstrKind::kCheckpoint: {
        const model::PerfModel& m = arch_->kernel(instr.kernel);
        finish_collective(monte_carlo_ ? m.sample(instr.params, rng_)
                                       : m.predict(instr.params));
        return;
      }
      case InstrKind::kTimestepEnd:
      case InstrKind::kCompute:
        finish_collective(0.0);
        return;
    }
  }

  RunResult result_;

 private:
  /// Neighbour lists for every rank at this degree, computed once per
  /// (ranks, degree) and reused — exchanges repeat every timestep, and the
  /// cbrt/modulo walk per rank per timestep showed up in sweep profiles.
  const std::vector<std::vector<std::int64_t>>& neighbors_for(int degree) {
    auto it = neighbor_cache_.find(degree);
    if (it == neighbor_cache_.end()) {
      std::vector<std::vector<std::int64_t>> all(
          static_cast<std::size_t>(app_->ranks()));
      for (std::int64_t rank = 0; rank < app_->ranks(); ++rank)
        all[static_cast<std::size_t>(rank)] =
            exchange_neighbors(rank, app_->ranks(), degree);
      it = neighbor_cache_.emplace(degree, std::move(all)).first;
    }
    return it->second;
  }

  void start_network_exchange(const Instr& instr) {
    pending_deliveries_ = 0;
    const SimTime start = now();
    const auto& neighbors = neighbors_for(instr.degree);
    for (std::int64_t rank = 0; rank < app_->ranks(); ++rank) {
      const net::NodeId src_node =
          static_cast<net::NodeId>(rank / net_ranks_per_node_);
      for (std::int64_t peer : neighbors[static_cast<std::size_t>(rank)]) {
        const net::NodeId dst_node =
            static_cast<net::NodeId>(peer / net_ranks_per_node_);
        network_->send(src_node, dst_node, instr.bytes, start);
        ++pending_deliveries_;
      }
    }
    if (pending_deliveries_ == 0) finish_collective(0.0);
  }

  /// Complete the collective `extra_seconds` from now: record trace
  /// entries, advance the rendezvous pointer, release all ranks.
  void finish_collective(double extra_seconds) {
    const Instr& instr = app_->program()[sync_pc_];
    const SimTime duration = sim::from_seconds(extra_seconds);
    const double end_seconds = sim::to_seconds(now() + duration);

    if (injected_ && end_seconds > max_sim_seconds_) {
      // Horizon exceeded (the no-FT + high-fault-rate regime can thrash
      // forever): abandon the run, mirroring the coarse engine.
      abandon(end_seconds);
      return;
    }
    if (instr.kind == InstrKind::kTimestepEnd) {
      if (ts_done_ < app_->timesteps())
        result_.timestep_end_times[static_cast<std::size_t>(ts_done_)] =
            end_seconds;
      ++ts_done_;
    } else if (instr.kind == InstrKind::kCheckpoint) {
      if (result_.checkpoint_timesteps.empty() ||
          result_.checkpoint_timesteps.back() != ts_done_)
        result_.checkpoint_timesteps.push_back(ts_done_);
      if (injected_) {
        // The DES models checkpoints as synchronous collectives (no async
        // staging split), so a record is usable the instant it completes.
        // If a fault strikes before end_seconds, the record is discarded by
        // the strike-time purge — it never actually completed.
        inject::CheckpointRecord rec;
        rec.resume_pc = sync_pc_ + 1;
        rec.timesteps_done = ts_done_;
        rec.params = instr.params;
        rec.available_at = end_seconds;
        rec.completed_at = end_seconds;
        ledger_.record(instr.level, std::move(rec));
      }
    }
    result_.total_seconds = end_seconds;
    ++sync_pc_;
    // Skip forward past local instructions to the next collective; ranks do
    // that walk themselves, we just track where the next rendezvous is.
    const auto& program = app_->program();
    while (sync_pc_ < program.size() && !is_collective(program[sync_pc_].kind))
      ++sync_pc_;
    if (sync_pc_ >= program.size()) done_ = true;  // past the last rendezvous
    for (sim::ComponentId r : ranks_)
      schedule_to(r, kRelease, duration,
                  injected_ ? sim::box<std::uint64_t>(epoch_) : nullptr);
  }

  /// A fault's detection event fired: resolve recovery synchronously (the
  /// same retry loop as the coarse engine — downtime, ledger selection,
  /// restart cost, further faults that kill the recovery itself) and
  /// broadcast the rollback. Wall clock never rolls back; the rewound
  /// timeline's in-flight events are orphaned by the epoch bump.
  void on_fault() {
    if (done_) return;  // application already past its last rendezvous
    ft::FaultEvent fault = schedule_[sched_pos_++];
    double clock = sim::to_seconds(now());
    for (;;) {
      if (clock > max_sim_seconds_) {
        abandon(clock);
        return;
      }
      ++result_.faults;
      const bool sdc = fault.kind == ft::FailureKind::kSilentCorruption;
      const double strike = fault.time;
      const double detect = fault.time + fault.detect_after;
      inject::obs_note_fault(fault.kind);
      ft::FaultRecord rec;
      rec.time = strike;
      rec.node = fault.node;
      rec.kind = fault.kind;
      rec.detect_after = fault.detect_after;
      ft::FailureSet failures;
      failures.nodes = {fault.node};
      failures.kind = fault.kind;
      // Checkpoints completed after the strike either never happened (the
      // rollback rewinds the timeline before their completion) or snapshot
      // corrupted state (SDC): drop them for good.
      ledger_.purge_after(strike);
      clock = detect + downtime_;
      // Faults striking during the outage are absorbed by it (matching the
      // coarse engine's replay semantics).
      while (sched_pos_ < schedule_.size() &&
             schedule_[sched_pos_].time < clock)
        ++sched_pos_;
      const double next_strike = sched_pos_ < schedule_.size()
                                     ? schedule_[sched_pos_].time
                                     : 1e300;
      const inject::RecoverySelection best = ledger_.select(
          arch_->fti(), app_->ranks(), failures, detect,
          sdc ? strike : inject::RecoveryLedger::no_freshness_limit());
      if (best.record == nullptr) {
        // Unrecoverable: restart the application from the beginning.
        ++result_.full_restarts;
        ledger_.clear();
        rec.recovery_level = 0;
        rec.lost_work_seconds = detect;
        result_.lost_work_seconds += detect;
        result_.fault_log.add(rec);
        inject::obs_note_recovery(0, detect);
        resume(clock, 0, 0);
        return;
      }
      double restart_cost = 0.0;
      if (const model::PerfModel* rm = arch_->restart(best.level))
        restart_cost = monte_carlo_ ? rm->sample(best.record->params, rng_)
                                    : rm->predict(best.record->params);
      rec.recovery_level = static_cast<int>(best.level);
      rec.lost_work_seconds = detect - best.record->completed_at;
      rec.restart_cost_seconds = restart_cost;
      if (clock + restart_cost > next_strike) {
        // Recovery killed by the next fault: log the voided attempt, but
        // leave the lost-work total to the fault that finally resolves
        // (its discarded window subsumes this one).
        result_.fault_log.add(rec);
        fault = schedule_[sched_pos_++];
        continue;
      }
      ++result_.rollbacks;
      ++result_.recoveries_by_level[static_cast<int>(best.level) - 1];
      result_.lost_work_seconds += rec.lost_work_seconds;
      result_.fault_log.add(rec);
      inject::obs_note_recovery(rec.recovery_level, rec.lost_work_seconds);
      resume(clock + restart_cost, best.record->resume_pc,
             best.record->timesteps_done);
      return;
    }
  }

  /// Rewind every rank to `pc` at wall-clock `resume_clock`: bump the epoch
  /// (orphaning the discarded timeline's events), reset the rendezvous
  /// state, broadcast the rollback command, and arm the next fault.
  void resume(double resume_clock, std::size_t pc, int ts) {
    ++epoch_;
    arrived_ = 0;
    ts_done_ = ts;
    done_ = false;
    const auto& program = app_->program();
    sync_pc_ = pc;
    while (sync_pc_ < program.size() && !is_collective(program[sync_pc_].kind))
      ++sync_pc_;
    const SimTime at = sim::from_seconds(resume_clock);
    const SimTime delay = at > now() ? at - now() : 0;
    for (sim::ComponentId r : ranks_)
      schedule_to(r, kRollback, delay,
                  sim::box<RollbackCmd>({epoch_, pc}));
    schedule_next_fault();
  }

  /// Horizon exceeded: mark the run incomplete and drain. The epoch bump
  /// orphans in-flight rank events; no rollback or further fault is armed.
  void abandon(double clock_seconds) {
    result_.completed = false;
    result_.total_seconds = std::max(result_.total_seconds, clock_seconds);
    ++epoch_;
    done_ = true;
    simulation().request_stop();
  }

  /// Self-schedule the pending fault's detection event (at most one is in
  /// flight at any time; on_fault consumes it and resume() arms the next).
  void schedule_next_fault() {
    if (sched_pos_ >= schedule_.size()) return;
    const ft::FaultEvent& next = schedule_[sched_pos_];
    const SimTime at = sim::from_seconds(next.time + next.detect_after);
    // Priority -1: a fault at tick T pre-empts same-tick completions.
    schedule_self(at > now() ? at - now() : 0, nullptr, kFault, -1);
  }

  const AppBEO* app_;
  const ArchBEO* arch_;
  bool monte_carlo_;
  util::Rng rng_;
  std::vector<sim::ComponentId> ranks_;
  /// degree -> per-rank neighbour lists (see neighbors_for).
  std::map<int, std::vector<std::vector<std::int64_t>>> neighbor_cache_;
  NetworkBackend* network_ = nullptr;
  std::int64_t net_ranks_per_node_ = 1;
  std::size_t arrived_ = 0;
  std::size_t pending_deliveries_ = 0;
  std::size_t sync_pc_ = 0;
  int ts_done_ = 0;
  // --- injection state (inactive unless set_injection was called) ---
  bool injected_ = false;
  bool done_ = false;
  std::vector<ft::FaultEvent> schedule_;
  std::size_t sched_pos_ = 0;
  std::uint64_t epoch_ = 0;
  inject::RecoveryLedger ledger_;
  double downtime_ = 0.0;
  double max_sim_seconds_ = 1e8;
};

}  // namespace

RunResult run_des(const AppBEO& app, const ArchBEO& arch,
                  const EngineOptions& options) {
  FTBESST_OBS_SPAN("core.run_des");
  if (options.inject_faults && options.use_des_network)
    throw std::invalid_argument(
        "fault injection cannot run through the DES network substrate: "
        "in-flight flow deliveries cannot be rolled back");
  if (app.ranks() > arch.max_ranks())
    throw std::invalid_argument(
        "application ranks exceed architecture capacity");

  sim::Simulation simulation;
  util::Rng root(options.seed);

  // Fault schedule: pre-materialized from per-node splittable streams (or
  // taken verbatim from a replay trace), so it is a pure function of the
  // seed — independent of thread count and event interleaving. The node
  // universe matches the coarse engine: the FTI run configuration when it
  // divides the rank count, else physical packing.
  std::vector<ft::FaultEvent> schedule;
  std::int64_t fault_rpn = 1;
  if (options.inject_faults) {
    fault_rpn =
        (arch.fti().node_size > 0 && app.ranks() % arch.fti().node_size == 0)
            ? arch.fti().node_size
            : arch.ranks_per_node();
    const std::int64_t fault_nodes =
        (app.ranks() + fault_rpn - 1) / fault_rpn;
    if (!options.fault_trace.empty()) {
      schedule = options.fault_trace;
      inject::validate_schedule(schedule, fault_nodes);
    } else {
      const ft::FaultProcess* crashes =
          arch.fault_process() ? &*arch.fault_process() : nullptr;
      const inject::SdcProcess* sdc =
          arch.sdc_process() ? &*arch.sdc_process() : nullptr;
      if (crashes == nullptr && sdc == nullptr)
        throw std::invalid_argument(
            "fault injection requested but ArchBEO has no fault process");
      schedule = inject::make_schedule(crashes, sdc, fault_nodes,
                                       options.max_sim_seconds,
                                       root.split(0xfa417u));
    }
  }

  auto* coord = simulation.add_component<Coordinator>(
      app, arch, options.monte_carlo, root.split(0xc0));

  std::unique_ptr<NetworkBackend> network;
  if (options.use_des_network) {
    if (const auto* fat_tree =
            dynamic_cast<const net::TwoStageFatTree*>(&arch.topology())) {
      network = std::make_unique<FatTreeBackend>(simulation, *fat_tree,
                                                 arch.comm().params());
    } else if (const auto* torus =
                   dynamic_cast<const net::Torus*>(&arch.topology())) {
      network = std::make_unique<TorusBackend>(simulation, *torus,
                                               arch.comm().params());
    } else {
      throw std::invalid_argument(
          "use_des_network requires a TwoStageFatTree or Torus topology");
    }
    // Ranks pack by the FTI run configuration when it divides evenly
    // (matching the coarse engine's node universe), else physically.
    const std::int64_t rpn =
        (arch.fti().node_size > 0 &&
         app.ranks() % arch.fti().node_size == 0)
            ? arch.fti().node_size
            : arch.ranks_per_node();
    const std::int64_t nodes_needed = (app.ranks() + rpn - 1) / rpn;
    if (nodes_needed > network->num_nodes())
      throw std::invalid_argument("too many ranks for the DES network");
    coord->set_network(network.get(), rpn);
    // Every delivery notifies the coordinator at its arrival time.
    for (net::NodeId n = 0; n < nodes_needed; ++n)
      network->on_delivery(
          n, [&simulation, coord](const net::FlowMsg&, SimTime arrival) {
            simulation.schedule(sim::kNoComponent, coord->id(), kNetDone,
                                arrival, nullptr);
          });
  }

  // Symmetry folding: in a deterministic, analytically-routed run every
  // rank executes the same SPMD plan against the same architecture config
  // from an indistinguishable position, so one representative per
  // equivalence class stands for the whole class and the coordinator's
  // rendezvous shrinks from N arrivals to one per class — predictions are
  // bitwise identical, only the event count drops. Monte-Carlo mode gives
  // every rank its own RNG stream and the executed network substrate gives
  // every rank its own physical position; both break the symmetry, so the
  // specs are marked non-foldable there (each rank stays a singleton
  // class). divergent_ranks breaks individual ranks out instead of
  // disabling the whole class (clone-on-divergence).
  //
  // Fault injection composes with folding: recovery is *coordinated* (every
  // rank rolls back to the same checkpoint at the same instant, exactly the
  // Fig. 3 semantics), so fold groups never diverge behaviourally and the
  // folded prediction stays bitwise identical to the unfolded one — the
  // test suite enforces this for injected runs. The ranks of every struck
  // node are still broken out of their fold orbits below
  // (clone-on-divergence) as a safety invariant: any future asymmetric
  // recovery model (per-victim read-back, partner-node traffic) then
  // perturbs only singleton classes, not a whole orbit.
  const bool fold = options.fold_symmetry && !options.monte_carlo &&
                    !options.use_des_network;
  sim::FoldPlan plan;
  {
    std::vector<sim::FoldSpec> specs(static_cast<std::size_t>(app.ranks()));
    const std::uint64_t behavior = app.plan_digest();
    const std::uint64_t config = arch.fold_config_digest();
    for (auto& spec : specs) {
      spec.signature.type = "rank";
      spec.signature.behavior_digest = behavior;
      spec.signature.config_digest = config;
      spec.signature.foldable = fold;
    }
    plan = sim::plan_folds(specs);
    for (std::int64_t r : options.divergent_ranks)
      if (r >= 0 && r < app.ranks())
        plan.break_out(static_cast<std::size_t>(r));
    // Injection victims: every rank of every struck node.
    for (const ft::FaultEvent& ev : schedule)
      for (std::int64_t r = ev.node * fault_rpn;
           r < std::min((ev.node + 1) * fault_rpn, app.ranks()); ++r)
        plan.break_out(static_cast<std::size_t>(r));
  }

  std::vector<RankComponent*> ranks;
  std::vector<sim::ComponentId> rank_ids;
  ranks.reserve(plan.groups().size());
  for (const sim::FoldGroup& group : plan.groups()) {
    const auto r = static_cast<std::int64_t>(group.representative);
    auto* rc = simulation.add_component<RankComponent>(
        r, app, arch, options.monte_carlo,
        root.split(static_cast<std::uint64_t>(r) + 1));
    rc->set_coordinator(coord->id());
    rc->set_multiplicity(group.multiplicity());
    if (options.inject_faults) rc->enable_injection();
    ranks.push_back(rc);
    rank_ids.push_back(rc->id());
  }
  coord->set_ranks(std::move(rank_ids));
  if (options.inject_faults)
    coord->set_injection(std::move(schedule), options.downtime_seconds,
                         options.max_sim_seconds);

  const sim::SimStats stats = simulation.run();
  if (obs::enabled()) {
    static const obs::Counter runs = obs::counter("des.runs");
    static const obs::Counter events = obs::counter("des.events");
    static const obs::Counter folded = obs::counter("des.folded_ranks");
    static const obs::Gauge heap_hw = obs::gauge("des.heap_high_water");
    runs.add();
    events.add(stats.events_processed);
    folded.add(plan.folded_away());
    heap_hw.max(static_cast<double>(stats.heap_high_water));
  }

  RunResult result = std::move(coord->result_);
  for (const RankComponent* rc : ranks)
    result.instructions_executed +=
        rc->instructions_executed * rc->multiplicity();
  result.sim_events = stats.events_processed;
  return result;
}

}  // namespace ftbesst::core
