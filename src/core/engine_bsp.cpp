#include "core/engine_bsp.hpp"

#include <algorithm>
#include <stdexcept>

#include "inject/ledger.hpp"
#include "inject/obs_hooks.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace ftbesst::core {

namespace {

using inject::CheckpointRecord;

double instr_duration(const Instr& instr, const AppBEO& app,
                      const ArchBEO& arch, bool monte_carlo,
                      util::Rng& rng) {
  switch (instr.kind) {
    case InstrKind::kCompute:
    case InstrKind::kCheckpoint: {
      const model::PerfModel& m = arch.kernel(instr.kernel);
      return monte_carlo ? m.sample(instr.params, rng)
                         : m.predict(instr.params);
    }
    case InstrKind::kNeighborExchange:
      return arch.comm().neighbor_exchange_time(app.ranks(), instr.degree,
                                                instr.bytes);
    case InstrKind::kAllReduce:
      return arch.comm().allreduce_time(app.ranks(), instr.bytes);
    case InstrKind::kBarrier:
      return arch.comm().barrier_time(app.ranks());
    case InstrKind::kTimestepEnd:
      return 0.0;
  }
  return 0.0;
}

}  // namespace

RunResult run_bsp(const AppBEO& app, const ArchBEO& arch,
                  const EngineOptions& options) {
  // Counter only, no span: run_bsp is the per-trial engine (thousands of
  // μs-scale calls per ensemble), so a span here would dominate the obs
  // enabled cost and flood the trace rings; the ensemble/DSE spans already
  // bracket this path at a useful granularity.
  if (obs::enabled()) {
    static const obs::Counter runs = obs::counter("bsp.runs");
    runs.add();
  }
  if (app.ranks() > arch.max_ranks())
    throw std::invalid_argument(
        "application ranks exceed architecture capacity");
  const bool replay = !options.fault_trace.empty();
  if (options.inject_faults && !replay && !arch.fault_process())
    throw std::invalid_argument(
        "fault injection requested but ArchBEO has no fault process");
  for (std::size_t i = 1; i < options.fault_trace.size(); ++i)
    if (options.fault_trace[i].time < options.fault_trace[i - 1].time)
      throw std::invalid_argument("fault trace must be time-ordered");

  const auto& program = app.program();
  util::Rng rng(options.seed);
  util::Rng fault_rng = rng.split(0x0fau);
  // Node universe for faults/recoverability: the FTI run configuration
  // (node_size ranks per node) when it applies, else physical packing.
  const std::int64_t nodes =
      (arch.fti().node_size > 0 && app.ranks() % arch.fti().node_size == 0)
          ? app.ranks() / arch.fti().node_size
          : (app.ranks() + arch.ranks_per_node() - 1) / arch.ranks_per_node();

  RunResult result;
  result.timestep_end_times.assign(
      static_cast<std::size_t>(app.timesteps()), 0.0);

  double clock = 0.0;
  std::size_t pc = 0;
  int ts_done = 0;
  // Background-flush channel for asynchronous checkpoints.
  double async_busy_until = 0.0;
  // Completed checkpoints and recovery selection (shared with the DES
  // injection engine; see inject/ledger.hpp).
  inject::RecoveryLedger ledger;

  // The pending fault event (time/node/kind); re-drawn (or advanced along
  // the replay trace) after each strike.
  std::size_t trace_pos = 0;
  auto draw_next_fault = [&](double from) {
    ft::FaultEvent ev;
    ev.time = -1.0;
    if (!options.inject_faults) return ev;
    if (replay) {
      while (trace_pos < options.fault_trace.size() &&
             options.fault_trace[trace_pos].time < from)
        ++trace_pos;
      if (trace_pos < options.fault_trace.size())
        ev = options.fault_trace[trace_pos++];
      return ev;
    }
    return arch.fault_process()->next_after(from, nodes, fault_rng);
  };
  ft::FaultEvent pending = draw_next_fault(0.0);

  // Handle the pending fault (and any further faults that strike during
  // recovery itself — recovery work is lost and retried, so wall clock is
  // strictly monotone). Silent corruptions (only possible via a replay
  // trace here; the sampled process is fail-stop) are simplified by the
  // coarse engine: the interrupted instruction stops at the strike and the
  // detection latency is charged as extra outage before the downtime, so
  // no poisoned checkpoints are ever taken — the freshness filter then
  // excludes anything completed after the corruption instant. The DES
  // engine models the full corrupted-execution window.
  auto handle_fault = [&]() {
    for (;;) {
      if (clock > options.max_sim_seconds) {
        result.completed = false;
        pc = program.size();  // abandon the run
        return;
      }
      ++result.faults;
      ft::FailureSet failures;
      failures.nodes = {pending.node};
      failures.kind = pending.kind;
      const bool sdc = pending.kind == ft::FailureKind::kSilentCorruption;
      // Strike = when state is damaged; detect = when recovery can react.
      // Identical for fail-stop faults (detect_after is 0).
      const double strike_time = pending.time;
      const double detect_time = pending.time + pending.detect_after;
      inject::obs_note_fault(pending.kind);
      ft::FaultRecord fault_rec;
      fault_rec.time = strike_time;
      fault_rec.node = pending.node;
      fault_rec.kind = pending.kind;
      fault_rec.detect_after = pending.detect_after;

      clock = detect_time + options.downtime_seconds;
      async_busy_until = clock;  // any in-flight background flush is moot
      pending = draw_next_fault(clock);
      if (pending.time < 0.0) pending.time = 1e300;  // trace exhausted

      // Best (most progressed, then highest) recoverable checkpoint whose
      // (possibly background) write had completed before the fault struck
      // — and, for SDC, that snapshotted state from before the corruption.
      const inject::RecoverySelection best = ledger.select(
          arch.fti(), app.ranks(), failures, detect_time,
          sdc ? strike_time : inject::RecoveryLedger::no_freshness_limit());
      if (best.record == nullptr) {
        // Unrecoverable: restart the application from the beginning.
        ++result.full_restarts;
        pc = 0;
        ts_done = 0;
        ledger.clear();
        fault_rec.recovery_level = 0;
        fault_rec.lost_work_seconds = detect_time;
        result.lost_work_seconds += detect_time;
        result.fault_log.add(fault_rec);
        inject::obs_note_recovery(0, detect_time);
        return;
      }
      double restart_cost = 0.0;
      if (const model::PerfModel* rm = arch.restart(best.level))
        restart_cost = options.monte_carlo
                           ? rm->sample(best.record->params, rng)
                           : rm->predict(best.record->params);
      fault_rec.recovery_level = static_cast<int>(best.level);
      fault_rec.lost_work_seconds = detect_time - best.record->completed_at;
      fault_rec.restart_cost_seconds = restart_cost;
      if (clock + restart_cost > pending.time) {
        // Recovery killed by the next fault: log the voided attempt, but
        // leave the lost-work total to the fault that finally resolves (its
        // discarded window subsumes this one).
        result.fault_log.add(fault_rec);
        continue;
      }
      clock += restart_cost;
      ++result.rollbacks;
      ++result.recoveries_by_level[static_cast<int>(best.level) - 1];
      result.lost_work_seconds += fault_rec.lost_work_seconds;
      result.fault_log.add(fault_rec);
      inject::obs_note_recovery(static_cast<int>(best.level),
                                fault_rec.lost_work_seconds);
      pc = best.record->resume_pc;
      ts_done = best.record->timesteps_done;
      return;
    }
  };

  while (pc < program.size()) {
    if (clock > options.max_sim_seconds) {
      result.completed = false;
      break;
    }
    const Instr& instr = program[pc];
    double duration =
        instr_duration(instr, app, arch, options.monte_carlo, rng);
    double background = 0.0;
    if (instr.kind == InstrKind::kCheckpoint && instr.async) {
      // Stall until the previous background flush drains, stage locally,
      // and push the remainder of the write off the critical path.
      const double stall = std::max(0.0, async_busy_until - clock);
      const double stage = options.async_stage_fraction * duration;
      background = duration - stage;
      duration = stall + stage;
    }
    if (pending.time >= 0.0 && clock + duration > pending.time) {
      handle_fault();
      continue;  // re-execute from the rollback point
    }
    clock += duration;
    ++result.instructions_executed;
    switch (instr.kind) {
      case InstrKind::kTimestepEnd:
        if (ts_done < app.timesteps())
          result.timestep_end_times[static_cast<std::size_t>(ts_done)] =
              clock;
        ++ts_done;
        break;
      case InstrKind::kCheckpoint: {
        CheckpointRecord rec;
        rec.resume_pc = pc + 1;
        rec.timesteps_done = ts_done;
        rec.params = instr.params;
        rec.available_at = clock + background;
        rec.completed_at = clock;
        if (instr.async) async_busy_until = clock + background;
        ledger.record(instr.level, std::move(rec));
        if (result.checkpoint_timesteps.empty() ||
            result.checkpoint_timesteps.back() != ts_done)
          result.checkpoint_timesteps.push_back(ts_done);
        break;
      }
      default:
        break;
    }
    ++pc;
  }

  // FTI finalization waits for any trailing background flush.
  if (result.completed) clock = std::max(clock, async_busy_until);
  result.total_seconds = clock;
  return result;
}

}  // namespace ftbesst::core
