#include "core/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace ftbesst::core {

void write_run_csv(std::ostream& os, const RunResult& result) {
  os << std::setprecision(12);
  os << "timestep,cumulative_seconds,checkpoint_after\n";
  for (std::size_t i = 0; i < result.timestep_end_times.size(); ++i) {
    const int step = static_cast<int>(i) + 1;
    const bool ckpt =
        std::find(result.checkpoint_timesteps.begin(),
                  result.checkpoint_timesteps.end(),
                  step) != result.checkpoint_timesteps.end();
    os << step << ',' << result.timestep_end_times[i] << ','
       << (ckpt ? 1 : 0) << '\n';
  }
}

void write_ensemble_csv(std::ostream& os, const EnsembleResult& ensemble) {
  os << std::setprecision(12);
  os << "kind,index,value\n";
  for (std::size_t i = 0; i < ensemble.totals.size(); ++i)
    os << "total," << i << ',' << ensemble.totals[i] << '\n';
  for (std::size_t i = 0; i < ensemble.mean_timestep_end.size(); ++i)
    os << "mean_trace," << i + 1 << ',' << ensemble.mean_timestep_end[i]
       << '\n';
}

}  // namespace ftbesst::core
