#include "core/beo.hpp"

#include <stdexcept>

#include "sim/fold.hpp"

namespace ftbesst::core {

std::uint64_t AppBEO::plan_digest() const noexcept {
  std::uint64_t h = sim::kFoldDigestSeed;
  h = sim::fold_digest_u64(h, program_.size());
  for (const Instr& instr : program_) {
    h = sim::fold_digest_u64(h, static_cast<std::uint64_t>(instr.kind));
    h = sim::fold_digest_string(h, instr.kernel);
    h = sim::fold_digest_u64(h, instr.params.size());
    for (double p : instr.params) h = sim::fold_digest_f64(h, p);
    h = sim::fold_digest_u64(h, instr.bytes);
    h = sim::fold_digest_u64(h,
                             static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(instr.degree)));
    h = sim::fold_digest_u64(h, static_cast<std::uint64_t>(instr.level));
    h = sim::fold_digest_u64(h, instr.async ? 1 : 0);
  }
  h = sim::fold_digest_u64(h, ckpt_bytes_);
  return h;
}

AppBEO::AppBEO(std::string name, std::int64_t ranks)
    : name_(std::move(name)), ranks_(ranks) {
  if (ranks_ < 1) throw std::invalid_argument("AppBEO needs >= 1 rank");
}

AppBEO& AppBEO::compute(std::string kernel, std::vector<double> params) {
  if (kernel.empty()) throw std::invalid_argument("kernel name required");
  Instr i;
  i.kind = InstrKind::kCompute;
  i.kernel = std::move(kernel);
  i.params = std::move(params);
  program_.push_back(std::move(i));
  return *this;
}

AppBEO& AppBEO::neighbor_exchange(int degree, std::uint64_t bytes) {
  if (degree < 0) throw std::invalid_argument("degree must be >= 0");
  Instr i;
  i.kind = InstrKind::kNeighborExchange;
  i.degree = degree;
  i.bytes = bytes;
  program_.push_back(std::move(i));
  return *this;
}

AppBEO& AppBEO::allreduce(std::uint64_t bytes) {
  Instr i;
  i.kind = InstrKind::kAllReduce;
  i.bytes = bytes;
  program_.push_back(std::move(i));
  return *this;
}

AppBEO& AppBEO::barrier() {
  Instr i;
  i.kind = InstrKind::kBarrier;
  program_.push_back(std::move(i));
  return *this;
}

AppBEO& AppBEO::checkpoint(ft::Level level, std::string kernel,
                           std::vector<double> params, bool async) {
  if (kernel.empty())
    throw std::invalid_argument("checkpoint model name required");
  Instr i;
  i.kind = InstrKind::kCheckpoint;
  i.level = level;
  i.kernel = std::move(kernel);
  i.params = std::move(params);
  i.async = async;
  program_.push_back(std::move(i));
  return *this;
}

AppBEO& AppBEO::end_timestep() {
  Instr i;
  i.kind = InstrKind::kTimestepEnd;
  program_.push_back(std::move(i));
  ++timesteps_;
  return *this;
}

}  // namespace ftbesst::core
